"""Tests for the CPU cost engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.backends import get_backend
from repro.errors import SimulationError
from repro.execution.policy import PAR
from repro.machines import get_machine
from repro.memory.layout import PagePlacement
from repro.sim.engine import simulate_cpu
from repro.sim.work import ChunkWork, Phase, PhaseKind, WorkProfile
from repro.types import FLOAT64


def _compute_profile(threads=4, instr_per_elem=100.0, elems=1_000_000, fp=0.0):
    """A pure-compute parallel profile with even chunks."""
    per = elems // threads
    chunks = tuple(
        ChunkWork(
            thread=t,
            elems=per,
            instr=per * instr_per_elem,
            fp_ops=per * fp,
        )
        for t in range(threads)
    )
    phase = Phase(name="work", kind=PhaseKind.PARALLEL, chunks=chunks)
    return WorkProfile(
        alg="for_each",
        n=elems,
        elem=FLOAT64,
        threads=threads,
        policy=PAR,
        phases=(phase,),
        regions=1,
    )


def _memory_profile(machine, threads=32, nbytes=8 << 30, policy="first-touch"):
    per = nbytes / threads
    placement = (
        PagePlacement.proportional([1.0] * machine.topology.num_nodes, policy)
        if policy == "first-touch"
        else PagePlacement.single_node(0, machine.topology.num_nodes, policy)
    )
    chunks = tuple(
        ChunkWork(thread=t, elems=per / 8, instr=0.0, bytes_read=per)
        for t in range(threads)
    )
    phase = Phase(
        name="stream",
        kind=PhaseKind.PARALLEL,
        chunks=chunks,
        placement=placement,
        working_set=float(nbytes),
    )
    return WorkProfile(
        alg="reduce",
        n=nbytes // 8,
        elem=FLOAT64,
        threads=threads,
        policy=PAR,
        phases=(phase,),
        regions=1,
    )


class TestComputeScaling:
    def test_compute_time_matches_rate(self, mach_a, seq_backend):
        prof = _compute_profile(threads=1, instr_per_elem=10, elems=1_000_000)
        rep = simulate_cpu(mach_a, seq_backend, prof)
        rate = mach_a.frequency_hz * mach_a.ipc * mach_a.seq_turbo_factor
        assert rep.seconds == pytest.approx(1e7 / rate, rel=1e-6)

    def test_parallel_speedup(self, mach_a, tbb):
        t1 = simulate_cpu(mach_a, tbb, _compute_profile(threads=1)).seconds
        t16 = simulate_cpu(mach_a, tbb, _compute_profile(threads=16)).seconds
        assert 8 < t1 / t16 <= 16 * mach_a.seq_turbo_factor + 1e-9

    def test_fork_join_charged_once_per_region(self, mach_a, tbb):
        prof = _compute_profile(threads=8, elems=8)  # tiny work
        rep = simulate_cpu(mach_a, tbb, prof)
        assert rep.fork_join_seconds == pytest.approx(
            tbb.fork_overhead(8) + tbb.join_overhead(8)
        )

    def test_turbo_only_single_thread(self, mach_b, tbb):
        # Same total work, but single-thread profiles run at boost clock.
        prof1 = _compute_profile(threads=1, elems=1_000_000)
        rate_boost = simulate_cpu(mach_b, tbb, prof1).phases[0].compute_seconds
        prof2 = _compute_profile(threads=2, elems=2_000_000)
        rate_base = simulate_cpu(mach_b, tbb, prof2).phases[0].compute_seconds
        # per-thread work equal; 2-thread phase is slower per element by turbo.
        assert rate_base / rate_boost == pytest.approx(
            mach_b.seq_turbo_factor, rel=1e-6
        )


class TestMemoryModel:
    def test_matched_faster_than_default(self, mach_a, tbb):
        t_default = simulate_cpu(
            mach_a, tbb, _memory_profile(mach_a, policy="default")
        ).seconds
        t_custom = simulate_cpu(
            mach_a, tbb, _memory_profile(mach_a, policy="first-touch")
        ).seconds
        assert t_default > t_custom

    def test_cache_resident_faster_than_dram(self, mach_a, tbb):
        small = _memory_profile(mach_a, threads=8, nbytes=1 << 20)
        big = _memory_profile(mach_a, threads=8, nbytes=8 << 30)
        t_small = simulate_cpu(mach_a, tbb, small).phases[0].memory_seconds
        t_big = simulate_cpu(mach_a, tbb, big).phases[0].memory_seconds
        # Per-byte service cost must be lower when cache-resident.
        assert t_small / (1 << 20) < t_big / (8 << 30)

    def test_memory_bound_speedup_capped_by_stream(self, mach_b, tbb):
        t1 = simulate_cpu(mach_b, tbb, _memory_profile(mach_b, threads=1)).seconds
        t64 = simulate_cpu(mach_b, tbb, _memory_profile(mach_b, threads=64)).seconds
        assert t1 / t64 < mach_b.ideal_bandwidth_speedup() * 1.35


class TestCounters:
    def test_instruction_accounting_includes_overhead(self, mach_a, tbb):
        prof = _compute_profile(threads=2, instr_per_elem=10, elems=1000)
        rep = simulate_cpu(mach_a, tbb, prof)
        expected = 1000 * (10 + tbb.instr_overhead_for("for_each", 2))
        assert rep.counters.instructions == pytest.approx(expected)

    def test_vectorized_fp_recorded_packed(self, mach_a):
        icc = get_backend("icc-tbb")
        prof = _compute_profile(threads=2, instr_per_elem=1, elems=1024, fp=1.0)
        prof = WorkProfile(
            alg="reduce",
            n=prof.n,
            elem=prof.elem,
            threads=prof.threads,
            policy=prof.policy,
            phases=prof.phases,
            regions=prof.regions,
        )
        rep = simulate_cpu(mach_a, icc, prof)
        assert rep.counters.fp_packed_256 == pytest.approx(1024 / 4)
        assert rep.counters.fp_scalar == 0.0

    def test_scalar_fp_recorded_scalar(self, mach_a, tbb):
        prof = _compute_profile(threads=2, instr_per_elem=1, elems=1024, fp=1.0)
        rep = simulate_cpu(mach_a, tbb, prof)
        assert rep.counters.fp_scalar == pytest.approx(1024)
        assert rep.counters.fp_packed_256 == 0.0


class TestValidation:
    def test_too_many_threads(self, mach_a, tbb):
        prof = _compute_profile(threads=64)
        with pytest.raises(SimulationError):
            simulate_cpu(mach_a, tbb, prof)


@given(
    threads=st.sampled_from([1, 2, 4, 8, 16, 32]),
    instr=st.floats(min_value=1.0, max_value=1000.0),
)
def test_time_monotone_in_work(threads, instr):
    """Doubling per-element instructions never makes the phase faster."""
    m = get_machine("A")
    b = get_backend("gcc-tbb")
    t1 = simulate_cpu(m, b, _compute_profile(threads, instr)).seconds
    t2 = simulate_cpu(m, b, _compute_profile(threads, instr * 2)).seconds
    assert t2 >= t1 - 1e-15


@given(nbytes=st.sampled_from([1 << 26, 1 << 28, 1 << 30, 1 << 33]))
def test_memory_time_monotone_in_bytes(nbytes):
    """More traffic never takes less time (fixed machine/threads)."""
    m = get_machine("A")
    b = get_backend("gcc-tbb")
    t1 = simulate_cpu(m, b, _memory_profile(m, nbytes=nbytes)).seconds
    t2 = simulate_cpu(m, b, _memory_profile(m, nbytes=nbytes * 2)).seconds
    assert t2 >= t1
