"""Tests for the WorkProfile IR."""

import pytest

from repro.errors import SimulationError
from repro.execution.policy import PAR
from repro.sim.work import ChunkWork, Phase, PhaseKind, WorkProfile
from repro.types import FLOAT64


def _chunk(thread=0, elems=10.0, instr=10.0, **kw):
    return ChunkWork(thread=thread, elems=elems, instr=instr, **kw)


def _phase(kind=PhaseKind.PARALLEL, chunks=None, **kw):
    return Phase(name="p", kind=kind, chunks=chunks or (_chunk(),), **kw)


class TestChunkWork:
    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            _chunk(instr=-1.0)
        with pytest.raises(SimulationError):
            ChunkWork(thread=-1, elems=1, instr=1)


class TestPhase:
    def test_requires_chunks(self):
        with pytest.raises(SimulationError):
            Phase(name="p", kind=PhaseKind.PARALLEL, chunks=())

    def test_sequential_single_thread_enforced(self):
        with pytest.raises(SimulationError):
            Phase(
                name="p",
                kind=PhaseKind.SEQUENTIAL,
                chunks=(_chunk(thread=0), _chunk(thread=1)),
            )

    def test_totals(self):
        p = _phase(
            chunks=(
                _chunk(elems=5, bytes_read=40.0),
                _chunk(thread=1, elems=3, bytes_written=24.0),
            )
        )
        assert p.total_elems == 8
        assert p.total_bytes == 64

    def test_spread_penalty_lower_bound(self):
        with pytest.raises(SimulationError):
            _phase(spread_penalty=0.5)


class TestWorkProfile:
    def _profile(self, threads=2, phases=None, regions=1):
        return WorkProfile(
            alg="reduce",
            n=100,
            elem=FLOAT64,
            threads=threads,
            policy=PAR,
            phases=phases or (_phase(chunks=(_chunk(), _chunk(thread=1))),),
            regions=regions,
        )

    def test_valid(self):
        p = self._profile()
        assert p.is_parallel

    def test_thread_ids_bounded(self):
        with pytest.raises(SimulationError):
            self._profile(threads=1)

    def test_needs_phases(self):
        with pytest.raises(SimulationError):
            WorkProfile(
                alg="x", n=1, elem=FLOAT64, threads=1, policy=PAR, phases=()
            )

    def test_zero_regions_not_parallel(self):
        p = WorkProfile(
            alg="x",
            n=1,
            elem=FLOAT64,
            threads=1,
            policy=PAR,
            phases=(_phase(kind=PhaseKind.SEQUENTIAL),),
            regions=0,
        )
        assert not p.is_parallel
