"""Focused tests for individual cost-engine mechanisms."""

import dataclasses

import pytest

from repro import pstl
from repro.backends import get_backend
from repro.execution.context import ExecutionContext
from repro.machines import get_machine
from repro.suite.kernels import listing1_kernel
from repro.types import FLOAT64


def _ctx(machine="A", backend="gcc-tbb", threads=32, **backend_changes):
    b = get_backend(backend)
    if backend_changes:
        b = dataclasses.replace(b, **backend_changes)
    return ExecutionContext(get_machine(machine), b, threads=threads)


class TestSeqCodegenFactor:
    def test_nvc_sequential_reduce_slower(self):
        """Section 5.5: NVC's sequential code trails GCC's."""
        n = 1 << 24
        gcc = ExecutionContext(get_machine("A"), get_backend("gcc-seq"), threads=1)
        nvc = ExecutionContext(get_machine("A"), get_backend("nvc-omp"), threads=1)
        t_gcc = pstl.reduce(gcc, gcc.allocate(n, FLOAT64)).seconds
        t_nvc = pstl.reduce(nvc, nvc.allocate(n, FLOAT64)).seconds
        assert t_nvc > t_gcc

    def test_factor_scales_sequential_time(self):
        n = 1 << 20
        base = _ctx(threads=1)
        slow = _ctx(threads=1, default_seq_codegen=2.0)
        t_base = pstl.for_each(base, base.allocate(n, FLOAT64), listing1_kernel(1000)).seconds
        t_slow = pstl.for_each(slow, slow.allocate(n, FLOAT64), listing1_kernel(1000)).seconds
        assert t_slow == pytest.approx(2.0 * t_base, rel=0.01)


class TestIpcFactor:
    def test_hpx_ipc_penalty_visible_in_compute(self):
        n = 1 << 22
        hpx = _ctx(backend="gcc-hpx", threads=16)
        fast_hpx = _ctx(backend="gcc-hpx", threads=16, default_ipc_factor=1.0)
        kernel = listing1_kernel(1000)
        t = pstl.for_each(hpx, hpx.allocate(n, FLOAT64), kernel).seconds
        t_fast = pstl.for_each(fast_hpx, fast_hpx.allocate(n, FLOAT64), kernel).seconds
        assert t > t_fast


class TestEffectiveThreads:
    def test_cap_slows_wide_teams(self):
        n = 1 << 24
        capped = _ctx(eff_thread_cap=8, eff_thread_exp=0.5)
        free = _ctx()
        kernel = listing1_kernel(1000)
        t_capped = pstl.for_each(capped, capped.allocate(n, FLOAT64), kernel).seconds
        t_free = pstl.for_each(free, free.allocate(n, FLOAT64), kernel).seconds
        assert t_capped > 2 * t_free

    def test_cap_inactive_below_threshold(self):
        n = 1 << 22
        capped = _ctx(threads=8, eff_thread_cap=8, eff_thread_exp=0.5)
        free = _ctx(threads=8)
        kernel = listing1_kernel(1000)
        t_capped = pstl.for_each(capped, capped.allocate(n, FLOAT64), kernel).seconds
        t_free = pstl.for_each(free, free.allocate(n, FLOAT64), kernel).seconds
        assert t_capped == pytest.approx(t_free, rel=1e-9)


class TestSchedContention:
    def test_contention_multiplies_sched_cost(self):
        n = 1 << 22
        calm = _ctx(
            backend="gcc-hpx", threads=32, contention_exp=0.0, fixed_chunk_elems=4096
        )
        contended = _ctx(
            backend="gcc-hpx", threads=32, contention_exp=2.0, fixed_chunk_elems=4096
        )
        kernel = listing1_kernel(1)
        t_calm = pstl.for_each(calm, calm.allocate(n, FLOAT64), kernel).seconds
        t_cont = pstl.for_each(
            contended, contended.allocate(n, FLOAT64), kernel
        ).seconds
        assert t_cont > t_calm


class TestSpreadPenaltyScaling:
    def test_penalty_weight_shrinks_with_node_count(self):
        """The find penalty is full on 2-node A, quartered on 8-node B."""
        n = 1 << 28
        t = {}
        for mach in ("A", "B"):
            machine = get_machine(mach)
            ctx = ExecutionContext(machine, get_backend("gcc-tbb"), threads=2)
            plain = pstl.count(ctx, ctx.allocate(n, FLOAT64), 1.0).seconds
            # count has no penalty; find does. Compare their ratio per machine.
            found = pstl.find(ctx, ctx.allocate(n, FLOAT64), 1.0).seconds
            t[mach] = found / plain
        # find scans half the data; without penalty the ratio would be ~0.5
        # everywhere. The penalty lifts A's ratio more than B's.
        assert t["A"] > t["B"]


class TestDeterminism:
    def test_identical_runs_bit_identical(self, model_ctx):
        arr1 = model_ctx.allocate(1 << 26, FLOAT64)
        arr2 = model_ctx.allocate(1 << 26, FLOAT64)
        r1 = pstl.inclusive_scan(model_ctx, arr1).report
        r2 = pstl.inclusive_scan(model_ctx, arr2).report
        assert r1.seconds == r2.seconds
        assert r1.counters == r2.counters

    def test_fresh_contexts_agree(self):
        t1 = pstl.reduce(_ctx(), _ctx().allocate(1 << 24, FLOAT64)).seconds
        t2 = pstl.reduce(_ctx(), _ctx().allocate(1 << 24, FLOAT64)).seconds
        assert t1 == t2


class TestCrossMachineConsistency:
    def test_more_bandwidth_less_memory_time(self):
        """Same memory-bound work is faster on the higher-bandwidth box."""
        n = 1 << 28
        times = {}
        for mach in ("A", "C"):
            machine = get_machine(mach)
            ctx = ExecutionContext(machine, get_backend("gcc-tbb"), threads=32)
            times[mach] = pstl.reduce(ctx, ctx.allocate(n, FLOAT64)).seconds
        assert times["C"] < times["A"]

    def test_more_cores_less_compute_time(self):
        n = 1 << 22
        kernel = listing1_kernel(1000)
        t = {}
        for mach in ("A", "C"):
            machine = get_machine(mach)
            ctx = ExecutionContext(
                machine, get_backend("gcc-tbb"), threads=machine.total_cores
            )
            t[mach] = pstl.for_each(ctx, ctx.allocate(n, FLOAT64), kernel).seconds
        assert t["C"] < t["A"]
