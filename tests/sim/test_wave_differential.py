"""Differential harness: the wave-fused path must match batch (and scalar) bitwise.

Mirrors ``test_batch_differential.py`` one tier up: the batch engine is
already pinned to the scalar engine there, so pinning the wave engine to
the batch engine closes the scalar == batch == wave triangle. Layers:

1. engine equivalence -- ``simulate_wave`` over a heterogeneous fused
   program (every machine x backend x case cell in one wave, mixed
   sizes) reproduces per-profile ``simulate_cpu_arrays`` field for
   field, including the degenerate single-entry and empty waves;
2. the GPU array path -- ``simulate_gpu_arrays`` reproduces
   ``simulate_gpu`` on captured profiles, including unified-memory
   residency mutation across chained calls;
3. the randomized sweep (marker ``diffcheck``, shared with
   ``tools/diffcheck.py`` and the CI job): seeded random configuration
   groups fused wave-style and diffed entry by entry;
4. the observability contract: fusing/executing a wave emits the
   ``wave.fuse`` / ``wave.execute`` spans on the ``wave`` track, and
   the engine stays span-silent when no tracer is installed.
"""

from __future__ import annotations

import copy
import dataclasses
import importlib.util
from pathlib import Path

import pytest

from repro.errors import SimulationError
from repro.execution.context import ExecutionContext
from repro.experiments.common import make_ctx
from repro.sim.batch import simulate_cpu_arrays
from repro.sim.gpu import simulate_gpu
from repro.sim.wave import (
    WAVE_TRACK,
    WaveEntry,
    fuse_wave,
    simulate_gpu_arrays,
    simulate_wave,
    simulate_wave_entries,
)
from repro.sim.batch import profile_to_arrays
from repro.suite.batch import BATCH_CASES, build_array_profile
from repro.suite.cases import get_case
from repro.suite.wrappers import measure_case
from repro.trace import Tracer, use_tracer
from repro.types import elem_type

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "diffcheck.py"


def _load_diffcheck():
    import sys

    spec = importlib.util.spec_from_file_location("diffcheck", _TOOL)
    module = importlib.util.module_from_spec(spec)
    sys.modules["diffcheck"] = module  # dataclasses resolve via sys.modules
    spec.loader.exec_module(module)
    return module


diffcheck = _load_diffcheck()


def _assert_reports_identical(wave, batch):
    left = diffcheck._report_fields(wave)
    right = diffcheck._report_fields(batch)
    assert len(left) == len(right)
    for (name_w, value_w), (name_b, value_b) in zip(left, right):
        assert name_w == name_b
        assert value_w == value_b, f"{name_w}: wave={value_w} batch={value_b}"


def _mixed_wave():
    """A deliberately heterogeneous wave: every cell of a mini-campaign."""
    entries = []
    expected = []
    for machine in ("A", "B", "C"):
        for backend in ("GCC-TBB", "GCC-GNU", "GCC-SEQ"):
            for case in BATCH_CASES:
                for n in (1, 63, 1 << 12):
                    ctx = make_ctx(machine, backend, threads=8)
                    try:
                        profile = build_array_profile(
                            case, ctx, n, elem_type("double")
                        )
                    except Exception:
                        continue  # N/A cells: parity is diffcheck's job
                    entries.append(WaveEntry(ctx.machine, ctx.backend, profile))
                    expected.append(
                        simulate_cpu_arrays(ctx.machine, ctx.backend, profile)
                    )
    assert len(entries) > 100  # the wave really is campaign-shaped
    return entries, expected


# --- 1. engine equivalence -------------------------------------------------


def test_fused_wave_matches_batch_per_entry():
    entries, expected = _mixed_wave()
    reports = simulate_wave(fuse_wave(entries))
    assert len(reports) == len(expected)
    for wave_report, batch_report in zip(reports, expected):
        _assert_reports_identical(wave_report, batch_report)


def test_single_entry_wave_matches_batch():
    ctx = make_ctx("A", "GCC-TBB", threads=16)
    profile = build_array_profile("reduce", ctx, 1 << 16)
    (report,) = simulate_wave_entries(
        [WaveEntry(ctx.machine, ctx.backend, profile)]
    )
    _assert_reports_identical(
        report, simulate_cpu_arrays(ctx.machine, ctx.backend, profile)
    )


def test_empty_wave_is_empty():
    program = fuse_wave([])
    assert len(program) == 0
    assert simulate_wave(program) == ()


def test_wave_and_scalar_agree_end_to_end():
    """Close the triangle directly: wave seconds == scalar measured seconds."""
    ctx = make_ctx("B", "GCC-TBB", threads=12)
    entries = []
    scalar_seconds = []
    for case in ("reduce", "find", "inclusive_scan"):
        profile = build_array_profile(case, ctx, 1 << 14)
        entries.append(WaveEntry(ctx.machine, ctx.backend, profile))
        scalar_seconds.append(
            measure_case(get_case(case), ctx, 1 << 14, elem_type("double"))
        )
    for report, seconds in zip(simulate_wave(fuse_wave(entries)), scalar_seconds):
        assert report.seconds.hex() == float(seconds).hex()


def test_fuse_rejects_oversubscribed_profile_like_batch():
    ctx = make_ctx("A", "GCC-TBB", threads=4)
    profile = build_array_profile("reduce", ctx, 1 << 10)
    bad = dataclasses.replace(profile, threads=ctx.machine.total_cores + 1)
    with pytest.raises(SimulationError):
        fuse_wave([WaveEntry(ctx.machine, ctx.backend, bad)])
    with pytest.raises(SimulationError):
        simulate_cpu_arrays(ctx.machine, ctx.backend, bad)


# --- 2. the GPU array path -------------------------------------------------


def _gpu_profiles(gpu_ctx):
    """WorkProfiles + arrays captured from scalar GPU case invocations."""
    captured = []
    original = ExecutionContext.simulate

    def spy(self, profile, arrays=()):
        # Snapshot residency *before* the real call migrates these arrays.
        captured.append((profile, copy.deepcopy(tuple(arrays))))
        return original(self, profile, arrays)

    ExecutionContext.simulate = spy
    try:
        for case in ("reduce", "transform", "inclusive_scan"):
            measure_case(get_case(case), gpu_ctx, 1 << 14, elem_type("double"))
    finally:
        ExecutionContext.simulate = original
    assert captured
    return captured


def test_gpu_arrays_engine_matches_scalar_gpu():
    gpu_ctx = make_ctx("D", "NVC-CUDA")
    for profile, arrays in _gpu_profiles(gpu_ctx):
        scalar = simulate_gpu(
            gpu_ctx.machine, profile, copy.deepcopy(arrays), gpu_ctx.gpu_options
        )
        vectorized = simulate_gpu_arrays(
            gpu_ctx.machine,
            profile_to_arrays(profile),
            copy.deepcopy(arrays),
            gpu_ctx.gpu_options,
        )
        _assert_reports_identical(vectorized, scalar)


def test_gpu_arrays_mutates_residency_like_scalar():
    """Chained calls on the same arrays pay migration once (Fig. 9b shape)."""
    gpu_ctx = make_ctx("D", "NVC-CUDA")
    profile, arrays = _gpu_profiles(gpu_ctx)[0]
    arrays = copy.deepcopy(arrays)
    arrow = profile_to_arrays(profile)
    first = simulate_gpu_arrays(gpu_ctx.machine, arrow, arrays, gpu_ctx.gpu_options)
    second = simulate_gpu_arrays(gpu_ctx.machine, arrow, arrays, gpu_ctx.gpu_options)
    assert first.migration_seconds > 0.0
    assert second.migration_seconds == 0.0
    assert second.seconds < first.seconds


# --- 3. randomized sweep (shared with tools/diffcheck.py and CI) -----------


@pytest.mark.diffcheck
def test_randomized_wave_groups_agree_with_batch():
    sample = diffcheck.random_configs(96, seed=7)
    for start in range(0, len(sample), diffcheck.WAVE_GROUP):
        group = sample[start:start + diffcheck.WAVE_GROUP]
        divergences = diffcheck.compare_wave(group)
        assert not divergences, "\n".join(divergences)


# --- 4. observability contract ---------------------------------------------


def test_wave_spans_emitted_under_tracing():
    ctx = make_ctx("A", "GCC-TBB", threads=8)
    entries = [
        WaveEntry(ctx.machine, ctx.backend,
                  build_array_profile(case, ctx, 1 << 12))
        for case in ("reduce", "find")
    ]
    tracer = Tracer()
    with use_tracer(tracer):
        reports = simulate_wave_entries(entries)
    spans = {s.name: s for s in tracer.spans}
    fuse = spans["wave.fuse"]
    execute = spans["wave.execute"]
    assert fuse.track == WAVE_TRACK and execute.track == WAVE_TRACK
    assert fuse.category == "wave" and execute.category == "wave"
    assert fuse.attributes["points"] == 2
    assert fuse.duration == 0.0
    total = 0.0
    for report in reports:
        total += report.seconds
    assert execute.duration == total
    assert tracer.clock == total  # wave.execute advances simulated time


def test_no_spans_without_tracer():
    ctx = make_ctx("A", "GCC-TBB", threads=8)
    entries = [WaveEntry(ctx.machine, ctx.backend,
                         build_array_profile("reduce", ctx, 1 << 12))]
    tracer = Tracer()
    reports = simulate_wave_entries(entries)  # no use_tracer: must not record
    assert len(reports) == 1
    assert not tracer.spans
