"""Differential harness: the vectorized batch path must match scalar bitwise.

Three layers of evidence, mirroring the batch engine's structure:

1. engine equivalence -- ``simulate_cpu_arrays`` on a converted profile
   reproduces ``simulate_cpu`` field-for-field, both directions of the
   ``profile_to_arrays`` / ``arrays_to_profile`` converters;
2. builder equivalence -- ``measure_case_batch`` equals ``measure_case``
   on the paper's grid corners, including exception parity for N/A cells;
3. the randomized sweep (marker ``diffcheck``, shared with
   ``tools/diffcheck.py`` and the CI job): hundreds of seeded random
   configurations across machines x backends x allocators x cases x
   sizes x threads x dtypes, comparing the full SimReport.

Plus the observability contract: batch sweeps emit ``sim.batch`` spans,
and auto mode defers to the scalar path while a tracer is installed so
per-phase golden traces stay byte-stable.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

from repro.errors import UnsupportedOperationError
from repro.execution.context import ExecutionContext
from repro.sim.batch import (
    arrays_to_profile,
    partition_arrays,
    profile_to_arrays,
    simulate_cpu_arrays,
)
from repro.sim.engine import simulate_cpu
from repro.suite.batch import (
    BATCH_CASES,
    batch_problem_scaling,
    batch_strong_scaling,
    batch_supported,
    build_array_profile,
    measure_case_batch,
    use_batch_path,
)
from repro.suite.cases import get_case
from repro.suite.sweeps import problem_scaling, strong_scaling
from repro.suite.wrappers import measure_case
from repro.trace import Tracer, use_tracer

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "diffcheck.py"


def _load_diffcheck():
    import sys

    spec = importlib.util.spec_from_file_location("diffcheck", _TOOL)
    module = importlib.util.module_from_spec(spec)
    sys.modules["diffcheck"] = module  # dataclasses resolve via sys.modules
    spec.loader.exec_module(module)
    return module


diffcheck = _load_diffcheck()


def _assert_reports_identical(scalar, batch):
    """Field-by-field bitwise comparison of two SimReports."""
    left = diffcheck._report_fields(scalar)
    right = diffcheck._report_fields(batch)
    assert len(left) == len(right)
    for (name_s, value_s), (name_b, value_b) in zip(left, right):
        assert name_s == name_b
        assert value_s == value_b, f"{name_s}: scalar={value_s} batch={value_b}"


# --- 1. engine equivalence -------------------------------------------------


def _scalar_profiles(model_ctx):
    """Real WorkProfiles captured from scalar algorithm invocations."""
    from repro.types import FLOAT64

    profiles = []
    for case_name in BATCH_CASES:
        if not batch_supported(case_name, model_ctx):
            continue
        case = get_case(case_name)
        arrays = case.setup(model_ctx, 4097, FLOAT64)
        result = case.invoke(model_ctx, arrays, 0)
        profiles.append(result.profile)
    return profiles


def test_engine_matches_on_converted_scalar_profiles(model_ctx):
    """simulate_cpu_arrays(profile_to_arrays(p)) == simulate_cpu(p)."""
    profiles = _scalar_profiles(model_ctx)
    assert profiles
    for profile in profiles:
        scalar = simulate_cpu(model_ctx.machine, model_ctx.backend, profile)
        batch = simulate_cpu_arrays(
            model_ctx.machine, model_ctx.backend, profile_to_arrays(profile)
        )
        _assert_reports_identical(scalar, batch)


def test_engine_matches_on_converted_array_profiles(model_ctx):
    """simulate_cpu(arrays_to_profile(ap)) == simulate_cpu_arrays(ap)."""
    for case_name in BATCH_CASES:
        array_profile = build_array_profile(case_name, model_ctx, 4097)
        batch = simulate_cpu_arrays(
            model_ctx.machine, model_ctx.backend, array_profile
        )
        scalar = simulate_cpu(
            model_ctx.machine, model_ctx.backend, arrays_to_profile(array_profile)
        )
        _assert_reports_identical(scalar, batch)


def test_partition_arrays_matches_scalar_partitions(mach_a, tbb, gnu, hpx):
    """The array partitioner reproduces each backend's chunk layout."""
    import numpy as np

    for backend in (tbb, gnu, hpx):
        for n in (1, 7, 1024, 4097):
            for threads in (1, 3, 8):
                part = backend.make_partition(n, threads)
                starts, sizes, thread_ids, parts = partition_arrays(
                    backend, n, threads
                )
                assert parts == part.num_chunks
                assert np.array_equal(starts, [c.start for c in part.chunks])
                assert np.array_equal(sizes, [len(c) for c in part.chunks])
                assert np.array_equal(thread_ids, [c.thread for c in part.chunks])


# --- 2. builder equivalence ------------------------------------------------


@pytest.mark.parametrize("case_name", BATCH_CASES)
def test_builders_match_scalar_measurements(case_name, model_ctx, seq_ctx):
    """measure_case_batch == measure_case bitwise on grid corners."""
    case = get_case(case_name)
    for ctx in (model_ctx, seq_ctx):
        for n in (1, 2, 63, 4096, 1 << 20):
            assert measure_case_batch(case_name, ctx, n) == measure_case(
                case, ctx, n
            )


def test_na_cells_agree(mach_a, gnu):
    """Capability gaps raise UnsupportedOperationError on both paths."""
    ctx = ExecutionContext(mach_a, gnu, threads=8, mode="model")
    case = get_case("inclusive_scan")  # GNU has no parallel scan
    with pytest.raises(UnsupportedOperationError):
        measure_case(case, ctx, 1 << 12)
    with pytest.raises(UnsupportedOperationError):
        measure_case_batch("inclusive_scan", ctx, 1 << 12)


def test_sweeps_agree_between_paths(model_ctx):
    """suite.sweeps with batch=True equals batch=False point-for-point."""
    case = get_case("reduce")
    sizes = [1 << e for e in range(3, 16, 3)]
    scalar = problem_scaling(case, model_ctx, sizes, batch=False)
    batch = problem_scaling(case, model_ctx, sizes, batch=True)
    assert scalar == batch
    scalar = strong_scaling(case, model_ctx, 1 << 14, [1, 2, 8, 32], batch=False)
    batch = strong_scaling(case, model_ctx, 1 << 14, [1, 2, 8, 32], batch=True)
    assert scalar == batch


# --- 3. the randomized differential sweep ----------------------------------


@pytest.mark.diffcheck
def test_randomized_configs_bit_identical():
    """>= 200 seeded random configurations, zero divergences."""
    divergences = diffcheck.run_diffcheck(configs=200, seed=0)
    assert not divergences, "\n".join(divergences)


def test_random_configs_are_deterministic():
    """The sampled sweep is reproducible for a given seed."""
    assert diffcheck.random_configs(25, 7) == diffcheck.random_configs(25, 7)
    assert diffcheck.random_configs(25, 7) != diffcheck.random_configs(25, 8)


def test_compare_point_flags_a_real_divergence(monkeypatch):
    """The comparator is not vacuous: a perturbed batch path is caught."""
    import repro.suite.batch as batch_mod

    config = diffcheck.DiffConfig(
        machine="A", backend="GCC-TBB", allocator=None,
        case="reduce", n=4096, threads=8, dtype="double",
    )
    assert diffcheck.compare_point(config) == []
    real = batch_mod.simulate_case_batch

    def skewed(case_name, ctx, n, elem=None, **kwargs):
        report = real(case_name, ctx, n) if elem is None else real(
            case_name, ctx, n, elem
        )
        return report.with_extra_seconds(1e-9)

    monkeypatch.setattr("repro.suite.batch.simulate_case_batch", skewed)
    assert diffcheck.compare_point(config)


# --- observability ---------------------------------------------------------


def test_batch_sweep_records_curve_span(model_ctx):
    """An explicit batch sweep emits one clocked ``sim.batch`` span."""
    tracer = Tracer()
    with use_tracer(tracer):
        points = batch_problem_scaling(
            "reduce", model_ctx, [1 << 10, 1 << 12, 1 << 14]
        )
    spans = [s for s in tracer.spans if s.name == "sim.batch"]
    assert len(spans) == 1
    (span,) = spans
    assert span.category == "batch"
    assert span.track == "batch"
    assert span.attributes["points"] == 3
    total = sum(seconds for _, seconds, ok in points if ok)
    assert span.duration == total
    assert tracer.clock == total


def test_batch_strong_scaling_records_curve_span(model_ctx):
    """The thread sweep emits the span too, tagged with the variable."""
    tracer = Tracer()
    with use_tracer(tracer):
        batch_strong_scaling("reduce", model_ctx, 1 << 12, [1, 2, 4])
    spans = [s for s in tracer.spans if s.name == "sim.batch"]
    assert len(spans) == 1
    assert spans[0].attributes["variable"] == "threads"


def test_auto_mode_defers_to_scalar_under_tracing(model_ctx):
    """batch=None keeps golden per-phase traces scalar; True overrides."""
    assert use_batch_path(None, "reduce", model_ctx) is True
    tracer = Tracer()
    with use_tracer(tracer):
        assert use_batch_path(None, "reduce", model_ctx) is False
        assert use_batch_path(True, "reduce", model_ctx) is True
        assert use_batch_path(False, "reduce", model_ctx) is False
