"""Tests for the GPU cost engine."""

import pytest

from repro.execution.policy import PAR
from repro.memory.array import SimArray
from repro.memory.layout import PagePlacement
from repro.sim.gpu import GpuExecution, simulate_gpu
from repro.sim.work import ChunkWork, Phase, PhaseKind, WorkProfile
from repro.types import FLOAT32


def _arr(n=1 << 20):
    return SimArray(
        n=n, elem=FLOAT32, placement=PagePlacement.single_node(0, 1, "default")
    )


def _profile(n=1 << 20, fp_per_elem=1.0, bytes_per_elem=8.0):
    chunk = ChunkWork(
        thread=0,
        elems=n,
        instr=n * 1.0,
        fp_ops=n * fp_per_elem,
        bytes_read=n * bytes_per_elem / 2,
        bytes_written=n * bytes_per_elem / 2,
    )
    phase = Phase(name="kernel", kind=PhaseKind.PARALLEL, chunks=(chunk,))
    return WorkProfile(
        alg="for_each",
        n=n,
        elem=FLOAT32,
        threads=1,
        policy=PAR,
        phases=(phase,),
        regions=1,
    )


class TestMigration:
    def test_first_call_pays_h2d(self, mach_d):
        arr = _arr()
        rep = simulate_gpu(mach_d, _profile(), (arr,))
        assert rep.migration_seconds == pytest.approx(
            arr.nbytes / mach_d.pcie_bandwidth
        )
        assert arr.device_resident_fraction == 1.0

    def test_chained_call_pays_nothing(self, mach_d):
        arr = _arr()
        simulate_gpu(mach_d, _profile(), (arr,))
        rep2 = simulate_gpu(mach_d, _profile(), (arr,))
        assert rep2.migration_seconds == 0.0

    def test_forced_transfer_back(self, mach_d):
        arr = _arr()
        opts = GpuExecution(transfer_back=True)
        rep = simulate_gpu(mach_d, _profile(), (arr,), opts)
        assert rep.migration_seconds == pytest.approx(
            2 * arr.nbytes / mach_d.pcie_bandwidth
        )
        assert arr.device_resident_fraction == 0.0

    def test_transfer_dominates_light_kernels(self, mach_d):
        arr = _arr()
        opts = GpuExecution(transfer_back=True)
        rep = simulate_gpu(mach_d, _profile(fp_per_elem=1.0), (arr,), opts)
        assert rep.migration_seconds > 0.5 * rep.seconds


class TestKernelRoofline:
    def test_launch_latency_charged(self, mach_d):
        arr = _arr(1024)
        rep = simulate_gpu(mach_d, _profile(n=1024), (arr,))
        assert rep.fork_join_seconds == pytest.approx(mach_d.kernel_launch_latency)

    def test_compute_bound_scales_with_fp(self, mach_d):
        def kernel_only(fp):
            rep = simulate_gpu(mach_d, _profile(fp_per_elem=fp), (_arr(),))
            return rep.seconds - rep.migration_seconds - rep.fork_join_seconds

        assert kernel_only(10000) > 10 * kernel_only(10)

    def test_memory_bound_floor(self, mach_d):
        arr = _arr()
        rep = simulate_gpu(mach_d, _profile(fp_per_elem=0.0, bytes_per_elem=8.0), (arr,))
        kernel = rep.seconds - rep.migration_seconds - rep.fork_join_seconds
        assert kernel >= (arr.n * 8.0) / mach_d.mem_bandwidth * 0.99

    def test_fp64_slower_than_fp32(self, mach_d):
        from repro.types import FLOAT64

        arr32 = _arr()
        p32 = _profile(fp_per_elem=1000)
        t32 = simulate_gpu(mach_d, p32, (arr32,)).seconds

        arr64 = SimArray(
            n=1 << 20,
            elem=FLOAT64,
            placement=PagePlacement.single_node(0, 1, "default"),
        )
        p64 = WorkProfile(
            alg="for_each",
            n=p32.n,
            elem=FLOAT64,
            threads=1,
            policy=PAR,
            phases=p32.phases,
            regions=1,
        )
        t64 = simulate_gpu(mach_d, p64, (arr64,)).seconds
        assert t64 > t32
