"""Tests for the NUMA bandwidth-sharing model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.memory.layout import PagePlacement
from repro.sim.bandwidth import dram_memory_time


def _single_node(num=2):
    return PagePlacement.single_node(0, num, "default")


def _spread(num=2):
    return PagePlacement.proportional([1.0] * num, "first-touch")


class TestDefaultAllocatorBound:
    """All pages on node 0: the node constraint dominates (Fig. 1)."""

    def test_node0_bound(self, mach_a):
        nbytes = 1e9
        times = dram_memory_time(
            mach_a,
            _single_node(),
            thread_bytes={t: nbytes / 32 for t in range(32)},
            thread_nodes={t: t % 2 for t in range(32)},
            matched_quality=None,
            bw_efficiency=1.0,
        )
        node_cap = mach_a.node_bw_boost * mach_a.node_bandwidth
        assert times.per_node == pytest.approx(nbytes / node_cap)
        assert times.total >= times.global_dram
        assert times.bottleneck in ("per-node", "interconnect")

    def test_remote_half_crosses_interconnect(self, mach_a):
        times = dram_memory_time(
            mach_a,
            _single_node(),
            thread_bytes={0: 100.0, 1: 100.0},
            thread_nodes={0: 0, 1: 1},
            matched_quality=None,
            bw_efficiency=1.0,
        )
        # Thread 1's 100 bytes are all remote.
        assert times.interconnect == pytest.approx(100.0 / mach_a.interconnect_bw)


class TestMatchedPlacement:
    """Parallel first-touch: the global constraint dominates."""

    def test_full_bandwidth_at_perfect_quality(self, mach_a):
        nbytes = 1e9
        times = dram_memory_time(
            mach_a,
            _spread(),
            thread_bytes={t: nbytes / 32 for t in range(32)},
            thread_nodes={t: t % 2 for t in range(32)},
            matched_quality=1.0,
            bw_efficiency=1.0,
        )
        assert times.total == pytest.approx(nbytes / mach_a.stream_bw_allcores)

    def test_allocator_effect_direction(self, mach_a):
        """Custom allocator must be faster than default for balanced maps."""
        kwargs = dict(
            thread_bytes={t: 1e8 for t in range(32)},
            thread_nodes={t: t % 2 for t in range(32)},
            bw_efficiency=1.0,
        )
        t_default = dram_memory_time(
            mach_a, _single_node(), matched_quality=None, **kwargs
        ).total
        t_custom = dram_memory_time(
            mach_a, _spread(), matched_quality=0.93, **kwargs
        ).total
        assert t_default > t_custom
        # Fig 1 magnitude: ~1.6x, certainly < 2x.
        assert 1.2 < t_default / t_custom < 2.0

    def test_lower_quality_is_slower(self, mach_b):
        kwargs = dict(
            thread_bytes={t: 1e8 for t in range(64)},
            thread_nodes={t: t % 8 for t in range(64)},
            bw_efficiency=1.0,
        )
        t_good = dram_memory_time(
            mach_b, _spread(8), matched_quality=0.95, **kwargs
        ).total
        t_bad = dram_memory_time(
            mach_b, _spread(8), matched_quality=0.3, **kwargs
        ).total
        assert t_bad > t_good


class TestValidation:
    def test_requires_traffic(self, mach_a):
        with pytest.raises(SimulationError):
            dram_memory_time(mach_a, _single_node(), {}, {}, None, 1.0)

    def test_bw_efficiency_bounds(self, mach_a):
        with pytest.raises(SimulationError):
            dram_memory_time(
                mach_a, _single_node(), {0: 1.0}, {0: 0}, None, 0.0
            )

    def test_quality_bounds(self, mach_a):
        with pytest.raises(SimulationError):
            dram_memory_time(
                mach_a, _spread(), {0: 1.0}, {0: 0}, 1.5, 1.0
            )

    def test_negative_bytes_rejected(self, mach_a):
        with pytest.raises(SimulationError):
            dram_memory_time(
                mach_a, _single_node(), {0: -1.0}, {0: 0}, None, 1.0
            )


@given(
    nbytes=st.floats(min_value=1e6, max_value=1e10),
    threads=st.integers(min_value=1, max_value=32),
    quality=st.floats(min_value=0.1, max_value=1.0),
)
def test_time_positive_and_bounded_below_by_peak(nbytes, threads, quality):
    """Memory time is positive and never beats the machine's peak bandwidth."""
    from repro.machines import get_machine

    m = get_machine("A")
    times = dram_memory_time(
        m,
        _spread(),
        thread_bytes={t: nbytes / threads for t in range(threads)},
        thread_nodes={t: t % 2 for t in range(threads)},
        matched_quality=quality,
        bw_efficiency=1.0,
    )
    assert times.total > 0
    assert times.total >= nbytes / m.stream_bw_allcores - 1e-12
