"""Tests for Counters and SimReport."""

import pytest

from repro.errors import SimulationError
from repro.sim.report import Counters, PhaseReport, SimReport


class TestCounters:
    def test_addition(self):
        a = Counters(instructions=10, fp_scalar=5, bytes_read=100)
        b = Counters(instructions=1, fp_packed_256=2, bytes_written=50)
        c = a + b
        assert c.instructions == 11
        assert c.fp_scalar == 5
        assert c.fp_packed_256 == 2
        assert c.data_volume == 150

    def test_scaled(self):
        c = Counters(instructions=3, bytes_read=8).scaled(100)
        assert c.instructions == 300
        assert c.bytes_read == 800

    def test_scaled_rejects_negative(self):
        with pytest.raises(SimulationError):
            Counters().scaled(-1)

    def test_negative_counter_rejected(self):
        with pytest.raises(SimulationError):
            Counters(instructions=-1)

    def test_flops_weights_packed_lanes(self):
        c = Counters(fp_scalar=4, fp_packed_128=2, fp_packed_256=1)
        assert c.flops == 4 + 2 * 2 + 4 * 1

    def test_gflops(self):
        c = Counters(fp_scalar=2e9)
        assert c.gflops(1.0) == pytest.approx(2.0)

    def test_bandwidth_gib(self):
        c = Counters(bytes_read=1 << 30)
        assert c.bandwidth_gib(1.0) == pytest.approx(1.0)

    def test_rates_require_positive_time(self):
        with pytest.raises(SimulationError):
            Counters().gflops(0.0)
        with pytest.raises(SimulationError):
            Counters().bandwidth_gib(-1.0)


class TestSimReport:
    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            SimReport(seconds=-1.0, counters=Counters())

    def test_with_extra_seconds(self):
        r = SimReport(seconds=1.0, counters=Counters())
        r2 = r.with_extra_seconds(0.5, migration=0.5)
        assert r2.seconds == 1.5
        assert r2.migration_seconds == 0.5
        assert r.seconds == 1.0  # original untouched

    def test_extra_must_be_nonnegative(self):
        r = SimReport(seconds=1.0, counters=Counters())
        with pytest.raises(SimulationError):
            r.with_extra_seconds(-0.1)

    def test_phase_report_validation(self):
        with pytest.raises(SimulationError):
            PhaseReport(
                name="p",
                seconds=-1.0,
                compute_seconds=0,
                memory_seconds=0,
                overhead_seconds=0,
                counters=Counters(),
            )
