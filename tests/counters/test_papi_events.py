"""Tests for the PAPI high-level emulation and the event vocabulary."""

import pytest

from repro.counters.events import EVENTS, read_event
from repro.counters.papi import PapiHighLevel
from repro.errors import CounterError
from repro.sim.report import Counters, SimReport


def _report():
    return SimReport(
        seconds=0.1,
        counters=Counters(
            instructions=1000.0,
            fp_scalar=10.0,
            fp_packed_256=5.0,
            bytes_read=64.0,
            bytes_written=32.0,
        ),
    )


class TestEvents:
    def test_tot_ins(self):
        assert read_event(_report().counters, "PAPI_TOT_INS") == 1000.0

    def test_fp_ops_weighted(self):
        # 10 scalar + 5 * 4 lanes packed-256
        assert read_event(_report().counters, "PAPI_FP_OPS") == 30.0

    def test_volume(self):
        assert read_event(_report().counters, "MEM_DATA_VOLUME") == 96.0

    def test_unknown_event(self):
        with pytest.raises(CounterError):
            read_event(Counters(), "PAPI_L1_DCM")

    def test_all_events_callable(self):
        c = _report().counters
        for name in EVENTS:
            assert read_event(c, name) >= 0.0


class TestPapiHighLevel:
    def test_region_flow(self):
        papi = PapiHighLevel(events=("PAPI_TOT_INS", "FP_PACKED_256"))
        papi.hl_region_begin("r")
        papi.record(_report())
        papi.record(_report())
        papi.hl_region_end("r")
        values = papi.read("r")
        assert values["PAPI_TOT_INS"] == 2000.0
        assert values["FP_PACKED_256"] == 10.0
        assert papi.calls("r") == 2

    def test_no_nesting(self):
        papi = PapiHighLevel()
        papi.hl_region_begin("a")
        with pytest.raises(CounterError):
            papi.hl_region_begin("b")

    def test_end_must_match(self):
        papi = PapiHighLevel()
        papi.hl_region_begin("a")
        with pytest.raises(CounterError):
            papi.hl_region_end("b")

    def test_record_needs_open_region(self):
        with pytest.raises(CounterError):
            PapiHighLevel().record(_report())

    def test_unknown_event_rejected_at_init(self):
        with pytest.raises(CounterError):
            PapiHighLevel(events=("PAPI_MADE_UP",))

    def test_read_unknown_region(self):
        with pytest.raises(CounterError):
            PapiHighLevel().read("r")
