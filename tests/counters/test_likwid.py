"""Tests for the Likwid Marker API emulation."""

import pytest

from repro.counters.likwid import LikwidMarkers
from repro.errors import CounterError
from repro.sim.report import Counters, SimReport


def _report(instr=100.0, seconds=0.5):
    return SimReport(
        seconds=seconds,
        counters=Counters(instructions=instr, fp_scalar=10.0, bytes_read=1 << 20),
    )


class TestRegions:
    def test_record_accumulates(self):
        m = LikwidMarkers()
        with m.region("r") as region:
            region.record(_report())
            region.record(_report())
        stats = m.get("r")
        assert stats.calls == 2
        assert stats.counters.instructions == 200.0
        assert stats.seconds == 1.0

    def test_reentrant_across_calls(self):
        m = LikwidMarkers()
        for _ in range(3):
            with m.region("r") as region:
                region.record(_report())
        assert m.get("r").calls == 3

    def test_nested_same_region_rejected(self):
        m = LikwidMarkers()
        with m.region("r"):
            with pytest.raises(CounterError):
                m.start("r")

    def test_imperative_start_stop(self):
        m = LikwidMarkers()
        region = m.start("r")
        region.record(_report())
        m.stop("r")
        assert m.get("r").calls == 1

    def test_stop_unopened_rejected(self):
        m = LikwidMarkers()
        with pytest.raises(CounterError):
            m.stop("r")

    def test_unknown_region(self):
        with pytest.raises(CounterError):
            LikwidMarkers().get("missing")

    def test_regions_in_creation_order(self):
        m = LikwidMarkers()
        with m.region("b"):
            pass
        with m.region("a"):
            pass
        assert [r.name for r in m.regions()] == ["b", "a"]


class TestMetrics:
    def test_gflops(self):
        m = LikwidMarkers()
        with m.region("r") as region:
            region.record(_report(seconds=1.0))
        assert m.get("r").gflops == pytest.approx(10.0 / 1e9)

    def test_bandwidth(self):
        m = LikwidMarkers()
        with m.region("r") as region:
            region.record(_report(seconds=1.0))
        assert m.get("r").bandwidth_gib == pytest.approx(1 / 1024)

    def test_zero_time_safe(self):
        m = LikwidMarkers()
        with m.region("r"):
            pass
        assert m.get("r").gflops == 0.0

    def test_table_renders_paper_columns(self):
        m = LikwidMarkers()
        with m.region("reduce") as region:
            region.record(_report())
        table = m.table()
        for column in ("Instructions", "FP scalar", "FP 256-bit packed", "GFLOP/s"):
            assert column in table
