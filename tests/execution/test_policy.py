"""Tests for execution policies."""

import pytest

from repro.execution.policy import PAR, PAR_UNSEQ, SEQ, ExecutionPolicy


class TestProperties:
    def test_seq_not_parallel(self):
        assert not SEQ.is_parallel
        assert not SEQ.allows_vectorization

    def test_par(self):
        assert PAR.is_parallel
        assert not PAR.allows_vectorization

    def test_par_unseq(self):
        assert PAR_UNSEQ.is_parallel
        assert PAR_UNSEQ.allows_vectorization


class TestParse:
    @pytest.mark.parametrize(
        "text,expect",
        [
            ("seq", SEQ),
            ("par", PAR),
            ("par_unseq", PAR_UNSEQ),
            ("par-unseq", PAR_UNSEQ),
            ("std::execution::par", PAR),
            ("execution::seq", SEQ),
            ("  PAR  ", PAR),
        ],
    )
    def test_spellings(self, text, expect):
        assert ExecutionPolicy.parse(text) is expect

    def test_unknown(self):
        with pytest.raises(ValueError):
            ExecutionPolicy.parse("unseq_par")
