"""Tests for ExecutionContext: dispatch, allocation, validation."""

import numpy as np
import pytest

from repro.backends import get_backend
from repro.errors import ConfigurationError
from repro.execution.context import RUN_MODE_MAX_ELEMS, ExecutionContext
from repro.machines import get_machine
from repro.types import FLOAT64


class TestConstruction:
    def test_threads_capped_by_cores(self, mach_a, tbb):
        with pytest.raises(ConfigurationError):
            ExecutionContext(mach_a, tbb, threads=64)

    def test_bad_mode(self, mach_a, tbb):
        with pytest.raises(ConfigurationError):
            ExecutionContext(mach_a, tbb, threads=1, mode="simulate")

    def test_gpu_machine_needs_cuda_backend(self, mach_d, tbb):
        with pytest.raises(ConfigurationError):
            ExecutionContext(mach_d, tbb, threads=1)

    def test_cuda_backend_needs_gpu(self, mach_a):
        with pytest.raises(ConfigurationError):
            ExecutionContext(mach_a, get_backend("nvc-cuda"), threads=1)

    def test_gpu_context_ok(self, mach_d):
        ctx = ExecutionContext(mach_d, get_backend("nvc-cuda"))
        assert ctx.is_gpu

    def test_with_copies(self, model_ctx):
        sub = model_ctx.with_(threads=4)
        assert sub.threads == 4
        assert model_ctx.threads == 32


class TestDefaultAllocator:
    def test_parallel_backend_gets_first_touch(self, model_ctx):
        assert model_ctx.allocator.name == "first-touch"

    def test_hpx_gets_own_allocator(self, mach_a, hpx):
        ctx = ExecutionContext(mach_a, hpx, threads=8)
        assert ctx.allocator.name == "hpx-numa"

    def test_sequential_gets_default(self, seq_ctx):
        assert seq_ctx.allocator.name == "default"


class TestDispatch:
    def test_seq_policy_never_parallel(self, mach_a, tbb):
        from repro.execution.policy import SEQ

        ctx = ExecutionContext(mach_a, tbb, threads=8, policy=SEQ)
        assert not ctx.runs_parallel("for_each", 1 << 20)

    def test_single_thread_never_parallel(self, mach_a, tbb):
        ctx = ExecutionContext(mach_a, tbb, threads=1)
        assert not ctx.runs_parallel("for_each", 1 << 20)

    def test_gnu_fallback_thresholds(self, mach_a, gnu):
        ctx = ExecutionContext(mach_a, gnu, threads=8)
        assert not ctx.runs_parallel("for_each", 1 << 10)  # Section 5.2
        assert ctx.runs_parallel("for_each", (1 << 10) + 1)
        assert not ctx.runs_parallel("find", 1 << 9)  # Section 5.3
        assert ctx.runs_parallel("find", (1 << 9) + 1)

    def test_nvc_scan_falls_back(self, mach_a):
        ctx = ExecutionContext(mach_a, get_backend("nvc-omp"), threads=8)
        assert not ctx.runs_parallel("inclusive_scan", 1 << 30)
        assert ctx.runs_parallel("reduce", 1 << 30)

    def test_hpx_sort_threshold(self, mach_a, hpx):
        ctx = ExecutionContext(mach_a, hpx, threads=8)
        assert not ctx.runs_parallel("sort", 1 << 15)  # Section 5.6
        assert ctx.runs_parallel("sort", (1 << 15) + 1)


class TestAllocation:
    def test_model_mode_is_lazy(self, model_ctx):
        arr = model_ctx.allocate(1 << 30, FLOAT64)
        assert arr.data is None
        assert arr.nbytes == 8 << 30

    def test_run_mode_materializes(self, run_ctx):
        arr = run_ctx.allocate(128, FLOAT64)
        assert arr.data is not None

    def test_run_mode_size_cap(self, run_ctx):
        with pytest.raises(ConfigurationError):
            run_ctx.allocate(RUN_MODE_MAX_ELEMS + 1, FLOAT64)

    def test_array_from(self, run_ctx):
        arr = run_ctx.array_from(np.arange(8, dtype=np.float64), FLOAT64)
        assert arr.data.tolist() == list(range(8))

    def test_placement_follows_threads(self, mach_a, tbb):
        ctx = ExecutionContext(mach_a, tbb, threads=8)
        arr = ctx.allocate(1 << 20, FLOAT64)
        assert arr.placement.node_fractions == (0.5, 0.5)

    def test_rng_deterministic(self, model_ctx):
        assert model_ctx.rng().integers(0, 100) == model_ctx.rng().integers(0, 100)


class TestGpuContext:
    def test_no_thread_placement(self, mach_d):
        ctx = ExecutionContext(mach_d, get_backend("nvc-cuda"))
        with pytest.raises(ConfigurationError):
            _ = ctx.thread_placement

    def test_gpu_allocate(self, mach_d):
        ctx = ExecutionContext(mach_d, get_backend("nvc-cuda"))
        arr = ctx.allocate(1 << 20, FLOAT64)
        assert arr.device_resident_fraction == 0.0
