"""Tests for chunk partitioners, including hypothesis invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.execution.partition import (
    BlockCyclicPartitioner,
    Chunk,
    Partition,
    StaticPartitioner,
    WorkStealingPartitioner,
)

PARTITIONERS = [
    StaticPartitioner(),
    BlockCyclicPartitioner(chunks_per_thread=4),
    WorkStealingPartitioner(split_factor=8),
]


class TestStatic:
    def test_one_chunk_per_thread(self):
        p = StaticPartitioner().partition(100, 4)
        assert p.num_chunks == 4
        assert p.elements_per_thread() == [25, 25, 25, 25]

    def test_uneven_split_balanced(self):
        p = StaticPartitioner().partition(10, 4)
        assert sorted(len(c) for c in p.chunks) == [2, 2, 3, 3]

    def test_more_threads_than_elements(self):
        p = StaticPartitioner().partition(2, 4)
        assert sum(len(c) for c in p.chunks) == 2


class TestBlockCyclic:
    def test_chunk_count(self):
        p = BlockCyclicPartitioner(chunks_per_thread=4).partition(1000, 4)
        assert p.num_chunks == 16

    def test_round_robin_assignment(self):
        p = BlockCyclicPartitioner(chunks_per_thread=2).partition(100, 2)
        assert [c.thread for c in p.chunks] == [0, 1, 0, 1]

    def test_small_n_capped(self):
        p = BlockCyclicPartitioner(chunks_per_thread=8).partition(3, 4)
        assert p.num_chunks == 3

    def test_invalid_chunks_per_thread(self):
        with pytest.raises(ConfigurationError):
            BlockCyclicPartitioner(chunks_per_thread=0)


class TestWorkStealing:
    def test_balanced_threads(self):
        p = WorkStealingPartitioner(split_factor=8).partition(1 << 16, 8)
        per = p.elements_per_thread()
        assert max(per) - min(per) <= (1 << 16) // 32

    def test_contiguous_runs_per_thread(self):
        p = WorkStealingPartitioner(split_factor=4).partition(64, 4)
        threads = [c.thread for c in p.chunks]
        assert threads == sorted(threads)


class TestChunkValidation:
    def test_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            Chunk(index=0, start=5, stop=3, thread=0)

    def test_partition_requires_contiguity(self):
        chunks = (
            Chunk(index=0, start=0, stop=4, thread=0),
            Chunk(index=1, start=5, stop=8, thread=1),
        )
        with pytest.raises(ConfigurationError):
            Partition(n=8, threads=2, chunks=chunks, strategy="x")

    def test_partition_requires_cover(self):
        chunks = (Chunk(index=0, start=0, stop=4, thread=0),)
        with pytest.raises(ConfigurationError):
            Partition(n=8, threads=1, chunks=chunks, strategy="x")

    def test_thread_range_enforced(self):
        chunks = (Chunk(index=0, start=0, stop=4, thread=5),)
        with pytest.raises(ConfigurationError):
            Partition(n=4, threads=2, chunks=chunks, strategy="x")

    def test_chunks_of_thread(self):
        p = BlockCyclicPartitioner(chunks_per_thread=2).partition(8, 2)
        mine = p.chunks_of_thread(0)
        assert all(c.thread == 0 for c in mine)
        assert len(mine) == 2

    def test_accepts_per_thread_interleaved_order(self):
        """A block-cyclic tiling listed grouped by thread (each thread's
        chunks consecutive, so global starts are out of order) is a valid
        partition of [0, n) and must be accepted."""
        chunks = (
            Chunk(index=0, start=0, stop=2, thread=0),
            Chunk(index=2, start=4, stop=6, thread=0),
            Chunk(index=1, start=2, stop=4, thread=1),
            Chunk(index=3, start=6, stop=8, thread=1),
        )
        p = Partition(n=8, threads=2, chunks=chunks, strategy="x")
        assert p.elements_per_thread() == [4, 4]

    def test_accepts_reversed_order(self):
        chunks = (
            Chunk(index=1, start=4, stop=8, thread=1),
            Chunk(index=0, start=0, stop=4, thread=0),
        )
        Partition(n=8, threads=2, chunks=chunks, strategy="x")

    def test_accepts_empty_chunks_anywhere(self):
        chunks = (
            Chunk(index=0, start=3, stop=3, thread=1),
            Chunk(index=1, start=0, stop=8, thread=0),
        )
        Partition(n=8, threads=2, chunks=chunks, strategy="x")

    def test_rejects_overlap_regardless_of_order(self):
        chunks = (
            Chunk(index=0, start=2, stop=6, thread=1),
            Chunk(index=1, start=0, stop=4, thread=0),
            Chunk(index=2, start=6, stop=8, thread=0),
        )
        with pytest.raises(ConfigurationError, match="overlap"):
            Partition(n=8, threads=2, chunks=chunks, strategy="x")

    def test_rejects_gap_regardless_of_order(self):
        chunks = (
            Chunk(index=0, start=5, stop=8, thread=1),
            Chunk(index=1, start=0, stop=4, thread=0),
        )
        with pytest.raises(ConfigurationError, match="uncovered"):
            Partition(n=8, threads=2, chunks=chunks, strategy="x")

    def test_rejects_chunk_past_n(self):
        chunks = (Chunk(index=0, start=0, stop=9, thread=0),)
        with pytest.raises(ConfigurationError, match="exceeds"):
            Partition(n=8, threads=1, chunks=chunks, strategy="x")


@pytest.mark.parametrize("partitioner", PARTITIONERS, ids=lambda p: p.name)
@given(n=st.integers(min_value=0, max_value=100_000), threads=st.integers(1, 64))
def test_partition_invariants(partitioner, n, threads):
    """Every partitioner covers [0, n) exactly, in order, within threads."""
    p = partitioner.partition(n, threads)
    assert p.n == n
    assert sum(len(c) for c in p.chunks) == n
    prev = 0
    for c in p.chunks:
        assert c.start == prev
        assert 0 <= c.thread < threads
        prev = c.stop
    assert prev == n
    assert sum(p.elements_per_thread()) == n
