"""Tests for the thread-placement model."""

import pytest

from repro.errors import ConfigurationError, PlacementError
from repro.execution.affinity import ThreadPlacement


class TestScatter:
    def test_round_robin(self, mach_a):
        p = ThreadPlacement(mach_a, 4, "scatter")
        assert [p.node_of_thread(t) for t in range(4)] == [0, 1, 0, 1]

    def test_balanced_counts(self, mach_b):
        p = ThreadPlacement(mach_b, 12, "scatter")
        counts = p.threads_per_node
        assert sum(counts) == 12
        assert max(counts) - min(counts) <= 1

    def test_nodes_used(self, mach_b):
        assert ThreadPlacement(mach_b, 3, "scatter").nodes_used == 3
        assert ThreadPlacement(mach_b, 64, "scatter").nodes_used == 8


class TestCompact:
    def test_fills_node_zero_first(self, mach_a):
        p = ThreadPlacement(mach_a, 16, "compact")
        assert p.threads_per_node == (16, 0)

    def test_spills_to_next(self, mach_a):
        p = ThreadPlacement(mach_a, 20, "compact")
        assert p.threads_per_node == (16, 4)

    def test_hpx_single_node_until_cores(self, mach_c):
        # Compact placement keeps <=16 threads on one Zen 3 node.
        assert ThreadPlacement(mach_c, 16, "compact").nodes_used == 1
        assert ThreadPlacement(mach_c, 17, "compact").nodes_used == 2


class TestValidation:
    def test_unknown_strategy(self, mach_a):
        with pytest.raises(ConfigurationError):
            ThreadPlacement(mach_a, 2, "hilbert")

    def test_thread_bounds(self, mach_a):
        with pytest.raises(ConfigurationError):
            ThreadPlacement(mach_a, 0)
        with pytest.raises(ConfigurationError):
            ThreadPlacement(mach_a, 33)

    def test_thread_id_bounds(self, mach_a):
        p = ThreadPlacement(mach_a, 2)
        with pytest.raises(PlacementError):
            p.node_of_thread(2)
