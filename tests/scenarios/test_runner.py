"""Runner end-to-end: user-defined scenarios, determinism, and the
campaign bridge.

The registered scenarios are covered bit-for-bit by the equivalence
harness; this module covers the paths with no legacy counterpart --
``campaign-grid`` user sweeps (including the shipped example spec),
store reuse, and the scenario -> campaign-payload conversion the
service consumes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ScenarioError
from repro.scenarios.runner import (
    RunOptions,
    campaign_payload,
    describe_scenario,
    resolve_spec,
    run_scenario,
    service_payload,
)
from repro.scenarios.schema import load_scenario_file

REPO = Path(__file__).resolve().parents[2]
EXAMPLE_SPEC = REPO / "examples" / "scenarios" / "custom_sweep.json"

USER_SWEEP = {
    "name": "runner-sweep",
    "analysis": "campaign-grid",
    "machines": ["A"],
    "backends": ["GCC-SEQ", "GCC-TBB"],
    "cases": ["reduce"],
    "size_exps": [12],
    "threads": [None, 4],
}


def _hex(value):
    return None if value is None else float(value).hex()


def test_user_campaign_grid_runs_end_to_end():
    run = run_scenario(USER_SWEEP)
    # one seconds + one speedup cell per planned point; the planner
    # collapses the sequential backend's thread axis to a single point
    assert sorted(run.cells) == [
        "GCC-SEQ/reduce/A/2^12/1t/seconds",
        "GCC-SEQ/reduce/A/2^12/1t/speedup",
        "GCC-TBB/reduce/A/2^12/32t/seconds",
        "GCC-TBB/reduce/A/2^12/32t/speedup",
        "GCC-TBB/reduce/A/2^12/4t/seconds",
        "GCC-TBB/reduce/A/2^12/4t/speedup",
    ]
    assert run.curves == {}
    for key, value in run.cells.items():
        assert key.endswith(("/seconds", "/speedup"))
        if key.endswith("/seconds"):
            assert value is not None and value > 0


def test_user_sweep_is_self_consistent():
    run = run_scenario(USER_SWEEP)
    cells = dict(run.cells)
    baseline = cells["GCC-SEQ/reduce/A/2^12/1t/seconds"]
    for key, speedup in cells.items():
        if not key.endswith("/speedup") or speedup is None:
            continue
        seconds = cells[key.removesuffix("/speedup") + "/seconds"]
        assert _hex(speedup) == _hex(baseline / seconds)
    # the sequential row's speedup is exactly 1
    assert cells["GCC-SEQ/reduce/A/2^12/1t/speedup"] == 1.0


def test_runs_are_deterministic():
    first = run_scenario(USER_SWEEP)
    second = run_scenario(USER_SWEEP)
    assert {k: _hex(v) for k, v in first.cells.items()} == \
        {k: _hex(v) for k, v in second.cells.items()}


def test_store_reuse_is_bit_identical(tmp_path):
    from repro.campaign.store import ResultStore

    store = ResultStore(tmp_path / "cache")
    cold = run_scenario(USER_SWEEP, RunOptions(store=store))
    warm = run_scenario(USER_SWEEP, RunOptions(store=store))
    assert {k: _hex(v) for k, v in cold.cells.items()} == \
        {k: _hex(v) for k, v in warm.cells.items()}


def test_shipped_example_spec_runs_end_to_end():
    spec = load_scenario_file(EXAMPLE_SPEC)
    run = run_scenario(spec)
    # per machine/case: 1 sequential point + 2 parallel backends x 2
    # thread counts, each yielding a seconds and a speedup cell
    assert len(run.cells) == 2 * 2 * (1 + 2 * 2) * 2
    assert all(
        v is not None and v > 0
        for k, v in run.cells.items() if k.endswith("/seconds")
    )
    # ...and it is service-submittable
    payload = campaign_payload(spec)
    assert payload["name"] == "custom-sweep-2^20"


def test_artifact_uses_claims_binding_or_the_spec_name():
    run = run_scenario(USER_SWEEP)
    assert run.artifact().artifact == "runner-sweep"
    assert "runner-sweep" in run.rendered()


def test_resolve_spec_rejects_unsupported_types():
    with pytest.raises(ScenarioError, match="cannot interpret int"):
        resolve_spec(42)


# -- the campaign/service bridge --------------------------------------------


def test_campaign_payload_matches_inline_service_payload():
    via_name = campaign_payload("table5", {"size_exps": [12]})
    via_payload = service_payload({"scenario": "table5", "size_exps": [12]})
    assert via_name == via_payload
    assert via_name["name"] == "table5-2^12"


def test_service_payload_accepts_inline_spec_dicts():
    assert service_payload({"scenario": USER_SWEEP}) == \
        campaign_payload(USER_SWEEP)


def test_campaign_payload_rejects_non_campaign_kinds():
    with pytest.raises(ScenarioError, match="no.*campaign form"):
        campaign_payload("fig1")


def test_campaign_payload_rejects_unknown_override_fields():
    with pytest.raises(ScenarioError, match="non-axis.*bogus"):
        campaign_payload("table5", {"bogus": [1]})


def test_override_changes_the_campaign_identity():
    from repro.campaign.spec import CampaignSpec
    from repro.service.scheduler import campaign_id

    full = campaign_id(CampaignSpec.from_dict(campaign_payload("table6")))
    narrowed = campaign_id(CampaignSpec.from_dict(
        campaign_payload("table6", {"size_exps": [12]})))
    assert full != narrowed


def test_describe_mentions_service_capability_only_for_campaign_kinds():
    from repro.scenarios.registry import get_scenario

    assert "service" in describe_scenario(get_scenario("table5"))
    assert "service: submittable" not in describe_scenario(get_scenario("fig1"))


def test_described_canonical_json_parses_back():
    spec = resolve_spec(USER_SWEEP)
    text = describe_scenario(spec)
    canonical = text.splitlines()[-1].split("spec: ", 1)[1]
    assert resolve_spec(json.loads(canonical)) == spec
