"""Property suite (Hypothesis) for the scenario schema.

Two families of properties:

1. **Round-trip**: any valid spec survives ``to_dict`` -> JSON ->
   ``from_dict`` bit-identically, and its canonical JSON is a fixed
   point (parsing and re-canonicalising changes nothing). This is what
   makes content-derived campaign ids stable.
2. **Rejection**: randomly corrupted specs (unknown machine/backend/
   case, duplicated axis entries, stray axes, unknown option keys,
   empty required grids) are rejected with a
   :class:`~repro.errors.ScenarioError` that names the offending field.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScenarioError
from repro.scenarios.schema import scenario_from_dict

MACHINES = ["A", "B", "C"]
BACKENDS = ["GCC-SEQ", "GCC-TBB", "GCC-GNU", "GCC-HPX", "ICC-TBB", "NVC-OMP"]
CASES = ["find", "for_each_k1", "for_each_k1000", "inclusive_scan",
         "reduce", "sort"]
ALLOCATORS = ["default", "first-touch", "hpx", "interleaved"]


def _axis(values, min_size=1, max_size=None):
    """A duplicate-free, order-preserving sample of ``values``."""
    return st.lists(st.sampled_from(values), min_size=min_size,
                    max_size=max_size or len(values), unique=True)


@st.composite
def campaign_grid_payloads(draw):
    """Valid ``campaign-grid`` spec payloads over the real registries."""
    machines = draw(_axis(MACHINES))
    backends = draw(_axis(BACKENDS))
    payload = {
        "name": draw(st.sampled_from(["prop-a", "prop-b", "prop-c"])),
        "analysis": "campaign-grid",
        "title": draw(st.sampled_from(["", "a title", "Sweep"])),
        "machines": machines,
        "backends": backends,
        "cases": draw(_axis(CASES, max_size=3)),
        "size_exps": [draw(st.integers(min_value=4, max_value=16))],
        "threads": draw(st.lists(
            st.one_of(st.none(), st.integers(min_value=1, max_value=128)),
            min_size=1, max_size=3, unique=True)),
    }
    if draw(st.booleans()):
        payload["allocators"] = draw(_axis(ALLOCATORS, max_size=2))
    if len(machines) > 1 and len(backends) > 1 and draw(st.booleans()):
        payload["exclude"] = [[machines[0], backends[0]]]
    return payload


@settings(max_examples=60, deadline=None)
@given(payload=campaign_grid_payloads())
def test_valid_specs_roundtrip_canonical_json(payload):
    spec = scenario_from_dict(payload)
    # to_dict -> from_dict is the identity
    assert scenario_from_dict(spec.to_dict()) == spec
    # canonical JSON is a fixed point of parse + re-canonicalise
    canonical = spec.canonical()
    reparsed = scenario_from_dict(json.loads(canonical))
    assert reparsed == spec
    assert reparsed.canonical() == canonical


@settings(max_examples=60, deadline=None)
@given(payload=campaign_grid_payloads(), data=st.data())
def test_corrupted_specs_are_rejected_naming_the_field(payload, data):
    corruption = data.draw(st.sampled_from([
        "unknown_machine", "unknown_backend", "unknown_case",
        "duplicate_axis", "stray_axis", "unknown_option",
        "empty_required", "unknown_field",
    ]))
    expect: str
    if corruption == "unknown_machine":
        payload["machines"] = payload["machines"] + ["Z9"]
        expect = "machine 'Z9'"
    elif corruption == "unknown_backend":
        payload["backends"] = payload["backends"] + ["MSVC-PPL"]
        expect = "backend 'MSVC-PPL'"
    elif corruption == "unknown_case":
        payload["cases"] = payload["cases"] + ["bogosort"]
        expect = "case 'bogosort'"
    elif corruption == "duplicate_axis":
        payload["cases"] = payload["cases"] + [payload["cases"][0]]
        expect = "'cases'"
    elif corruption == "stray_axis":
        payload["k_values"] = [1]
        expect = "'k_values'"
    elif corruption == "unknown_option":
        payload["options"] = {"warp_speed": 9}
        expect = "warp_speed"
    elif corruption == "empty_required":
        payload["backends"] = []
        expect = "'backends'"
    else:  # unknown_field
        payload["frobnicate"] = True
        expect = "frobnicate"
    with pytest.raises(ScenarioError, match=expect):
        scenario_from_dict(payload)


@settings(max_examples=40, deadline=None)
@given(payload=campaign_grid_payloads(),
       exp=st.integers(min_value=4, max_value=16))
def test_axis_overrides_preserve_validity_and_identity(payload, exp):
    from repro.scenarios.schema import validate_scenario

    spec = scenario_from_dict(payload)
    narrowed = validate_scenario(spec.with_axes(size_exps=[exp]))
    assert narrowed.size_exps == (exp,)
    # overriding back to the original values restores the exact identity
    restored = narrowed.with_axes(size_exps=list(spec.size_exps))
    assert restored.canonical() == spec.canonical()
