"""Resolver parity: one construction path for every context builder.

``repro.scenarios.resolve.make_context`` is the single home of the
"all physical cores unless sequential" thread rule; the legacy shims
(``experiments.common.make_ctx``, ``experiments.fig8.gpu_ctx``) must
resolve identically to it for every (machine, backend) the paper uses.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    ScenarioError,
    UnknownBackendError,
    UnknownMachineError,
)
from repro.experiments.common import make_ctx
from repro.experiments.fig8 import gpu_ctx
from repro.memory.allocators import (
    DefaultAllocator,
    ParallelFirstTouchAllocator,
)
from repro.scenarios.resolve import (
    ALLOCATOR_FACTORIES,
    make_context,
    resolve_allocator,
    resolve_backend,
    resolve_machine,
    resolve_threads,
)

MACHINES = ("A", "B", "C", "gpu-host")
BACKENDS = ("GCC-SEQ", "GCC-TBB", "GCC-GNU", "GCC-HPX", "ICC-TBB", "NVC-OMP")


def _same_ctx(a, b) -> None:
    assert a.machine.name == b.machine.name
    assert a.backend.name == b.backend.name
    assert a.threads == b.threads
    assert a.mode == b.mode
    assert type(a.allocator) is type(b.allocator)


@pytest.mark.parametrize("machine", MACHINES)
@pytest.mark.parametrize("backend", BACKENDS)
def test_legacy_make_ctx_matches_the_shared_resolver(machine, backend):
    _same_ctx(make_ctx(machine, backend), make_context(machine, backend))


@pytest.mark.parametrize("threads", [None, 1, 2, 16])
def test_explicit_thread_counts_resolve_identically(threads):
    _same_ctx(make_ctx("A", "gcc-tbb", threads=threads),
              make_context("A", "gcc-tbb", threads=threads))


def test_default_threads_are_all_physical_cores():
    for machine in ("A", "B", "C"):
        ctx = make_context(machine, "gcc-tbb")
        assert ctx.threads == resolve_machine(machine).total_cores


def test_sequential_backends_always_run_single_threaded():
    assert make_context("A", "gcc-seq", threads=8).threads == 1
    assert resolve_threads(resolve_machine("A"),
                           resolve_backend("gcc-seq"), 8) == 1


@pytest.mark.parametrize("machine", ["D", "E"])
@pytest.mark.parametrize("transfer_back", [True, False])
def test_gpu_ctx_matches_the_shared_resolver(machine, transfer_back):
    from repro.sim.gpu import GpuExecution

    legacy = gpu_ctx(machine, transfer_back=transfer_back)
    shared = make_context(
        machine, "nvc-cuda", threads=1,
        gpu_options=GpuExecution(transfer_back=transfer_back),
    )
    _same_ctx(legacy, shared)
    assert legacy.gpu_options.transfer_back is transfer_back
    assert shared.gpu_options.transfer_back is transfer_back


def test_allocator_names_resolve_to_fresh_instances():
    first = resolve_allocator("first-touch")
    assert isinstance(first, ParallelFirstTouchAllocator)
    assert resolve_allocator("first-touch") is not first
    assert isinstance(resolve_allocator("default"), DefaultAllocator)
    assert resolve_allocator(None) is None


def test_allocator_name_accepted_by_make_context():
    by_name = make_context("A", "gcc-tbb", allocator="first-touch")
    by_instance = make_context(
        "A", "gcc-tbb", allocator=ParallelFirstTouchAllocator()
    )
    assert type(by_name.allocator) is type(by_instance.allocator)


def test_unknown_names_raise_the_registry_errors():
    with pytest.raises(UnknownMachineError):
        make_context("Z9", "gcc-tbb")
    with pytest.raises(UnknownBackendError):
        make_context("A", "msvc-ppl")
    with pytest.raises(ScenarioError, match="unknown allocator"):
        resolve_allocator("tcmalloc")


def test_allocator_factories_cover_the_campaign_executor_names():
    # the campaign layer accepts exactly these allocator spellings
    assert set(ALLOCATOR_FACTORIES) == {
        "default", "first-touch", "hpx", "interleaved",
    }
