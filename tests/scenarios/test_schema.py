"""Schema validation: every rejection names the offending field.

The two validation layers are exercised separately: structural failures
(:meth:`ScenarioSpec.__post_init__` / ``from_dict``) and registry-backed
failures (:func:`validate_scenario` resolving names and enforcing the
analysis kind's axis/option contract).
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError, ScenarioError
from repro.scenarios.schema import (
    AXIS_FIELDS,
    ScenarioSpec,
    load_scenario_file,
    scenario_from_dict,
    validate_scenario,
)


def _payload(**over) -> dict:
    """A small, fully valid campaign-grid spec payload."""
    base = {
        "name": "unit-sweep",
        "analysis": "campaign-grid",
        "machines": ["A"],
        "backends": ["GCC-SEQ", "GCC-TBB"],
        "cases": ["reduce"],
        "size_exps": [10],
        "threads": [None, 2],
    }
    base.update(over)
    return base


def test_valid_payload_parses_and_validates():
    spec = scenario_from_dict(_payload())
    assert spec.name == "unit-sweep"
    assert spec.machines == ("A",)
    assert spec.threads == (None, 2)


def test_roundtrip_preserves_canonical_identity():
    spec = scenario_from_dict(_payload())
    again = scenario_from_dict(spec.to_dict())
    assert again == spec
    assert again.canonical() == spec.canonical()
    # and canonical JSON itself parses back to the same spec
    assert scenario_from_dict(json.loads(spec.canonical())) == spec


def test_scenario_error_is_a_repro_error():
    assert issubclass(ScenarioError, ReproError)


# -- structural layer -------------------------------------------------------


def test_missing_name_rejected():
    with pytest.raises(ScenarioError, match="'name'"):
        ScenarioSpec(name="", analysis="campaign-grid")


def test_missing_analysis_rejected():
    with pytest.raises(ScenarioError, match="'analysis'"):
        ScenarioSpec(name="x", analysis="")


def test_unknown_top_level_field_rejected_by_name():
    with pytest.raises(ScenarioError, match="bogus_field"):
        scenario_from_dict(_payload(bogus_field=1))


def test_duplicate_axis_entries_rejected_naming_the_axis():
    with pytest.raises(ScenarioError, match="'backends'.*overlapping"):
        scenario_from_dict(_payload(backends=["GCC-TBB", "GCC-TBB"]))


def test_non_list_axis_rejected():
    with pytest.raises(ScenarioError, match="'machines'"):
        scenario_from_dict(_payload(machines="A"))


@pytest.mark.parametrize("bad", [-1, True, "30"])
def test_bad_size_exp_rejected(bad):
    with pytest.raises(ScenarioError, match="'size_exps'"):
        scenario_from_dict(_payload(size_exps=[bad]))


@pytest.mark.parametrize("bad", [0, -2, True, "4"])
def test_bad_thread_count_rejected(bad):
    with pytest.raises(ScenarioError, match="'threads'"):
        scenario_from_dict(_payload(threads=[bad]))


def test_malformed_exclude_pair_rejected():
    with pytest.raises(ScenarioError, match="'exclude'"):
        scenario_from_dict(_payload(exclude=[["A"]]))


def test_duplicate_exclude_pairs_rejected():
    payload = _payload(exclude=[["A", "GCC-TBB"], ["A", "GCC-TBB"]])
    with pytest.raises(ScenarioError, match="'exclude'.*overlapping"):
        scenario_from_dict(payload)


def test_options_must_be_an_object():
    with pytest.raises(ScenarioError, match="'options'"):
        scenario_from_dict(_payload(options=[1, 2]))


# -- registry-backed layer --------------------------------------------------


def test_unknown_machine_rejected_naming_the_field():
    with pytest.raises(ScenarioError, match="'machines'.*|machine 'Z'"):
        scenario_from_dict(_payload(machines=["Z"]))


def test_unknown_backend_rejected_naming_the_field():
    with pytest.raises(ScenarioError, match="backend 'MSVC'"):
        scenario_from_dict(_payload(backends=["MSVC", "GCC-SEQ"]))


def test_unknown_case_rejected_naming_the_field():
    with pytest.raises(ScenarioError, match="case 'quicksort3'"):
        scenario_from_dict(_payload(cases=["quicksort3"]))


def test_unknown_allocator_rejected():
    with pytest.raises(ScenarioError, match="allocator 'tcmalloc'"):
        scenario_from_dict(_payload(allocators=["tcmalloc"]))


def test_exclude_must_reference_declared_machines():
    with pytest.raises(ScenarioError, match="absent from field 'machines'"):
        scenario_from_dict(_payload(exclude=[["B", "GCC-TBB"]]))


def test_exclude_must_reference_declared_backends():
    with pytest.raises(ScenarioError, match="absent from field 'backends'"):
        scenario_from_dict(_payload(exclude=[["A", "ICC-TBB"]]))


def test_unknown_analysis_kind_rejected():
    with pytest.raises(ScenarioError, match="'analysis'"):
        scenario_from_dict(_payload(analysis="quantum-annealing"))


def test_empty_required_axis_rejected_as_empty_grid():
    with pytest.raises(ScenarioError, match="'cases' is empty"):
        scenario_from_dict(_payload(cases=[]))


def test_stray_axis_rejected_instead_of_ignored():
    # binary-sizes only uses 'backends'; a machines axis is an error
    payload = {
        "name": "stray",
        "analysis": "binary-sizes",
        "backends": ["GCC-SEQ"],
        "machines": ["A"],
    }
    with pytest.raises(ScenarioError, match="'machines' is not used"):
        scenario_from_dict(payload)


def test_singleton_axis_rejects_multiple_entries():
    with pytest.raises(ScenarioError, match="'size_exps' must hold exactly one"):
        scenario_from_dict(_payload(size_exps=[10, 12]))


def test_unknown_option_key_rejected_by_name():
    with pytest.raises(ScenarioError, match="'options'.*turbo"):
        scenario_from_dict(_payload(options={"turbo": True}))


def test_k_value_must_map_to_a_registered_case():
    payload = {
        "name": "bad-k",
        "analysis": "problem-panels",
        "machines": ["A"],
        "backends": ["GCC-SEQ", "GCC-TBB"],
        "k_values": [7],
    }
    with pytest.raises(ScenarioError, match="'k_values' entry 7"):
        scenario_from_dict(payload)


def test_gpu_series_must_reference_declared_axes():
    payload = {
        "name": "bad-series",
        "analysis": "gpu-problem",
        "machines": ["gpu-host"],
        "backends": ["GCC-SEQ"],
        "k_values": [1],
        "options": {
            "series": [
                {"key": "t4", "machine": "D", "backend": "NVC-CUDA"},
            ],
        },
    }
    with pytest.raises(ScenarioError, match="machine 'D' absent"):
        scenario_from_dict(payload)


def test_with_axes_rejects_non_axis_fields():
    spec = scenario_from_dict(_payload())
    with pytest.raises(ScenarioError, match="non-axis.*title"):
        spec.with_axes(title="nope")
    narrowed = validate_scenario(spec.with_axes(size_exps=[8]))
    assert narrowed.size_exps == (8,)
    assert spec.size_exps == (10,)  # original untouched


def test_axis_fields_constant_matches_the_spec_dataclass():
    spec = scenario_from_dict(_payload())
    for axis in AXIS_FIELDS:
        assert isinstance(getattr(spec, axis), tuple)


# -- file loading -----------------------------------------------------------


def test_load_scenario_file_roundtrip(tmp_path):
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps(_payload()), encoding="utf-8")
    assert load_scenario_file(path) == scenario_from_dict(_payload())


def test_load_scenario_file_missing(tmp_path):
    with pytest.raises(ScenarioError, match="does not exist"):
        load_scenario_file(tmp_path / "nope.json")


def test_load_scenario_file_bad_json(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(ScenarioError, match="not valid JSON"):
        load_scenario_file(path)
