"""``pytest -m scenario_equiv``: the registry vs the legacy drivers.

Runs :mod:`tools.scenario_equiv`'s differential comparison one scenario
per test case: every registered scenario's cells and curves must be
**bit-identical** (float hex encodings, like ``tools/diffcheck.py``) to
the output of its pinned legacy driver in ``repro.experiments``.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "scenario_equiv.py"


def _load_tool():
    spec = importlib.util.spec_from_file_location("scenario_equiv", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


scenario_equiv = _load_tool()

pytestmark = pytest.mark.scenario_equiv


def test_every_claimed_scenario_is_comparable():
    from repro.fidelity.refdata import ARTIFACT_IDS

    assert set(scenario_equiv.comparable_scenarios()) == set(ARTIFACT_IDS)


@pytest.mark.parametrize("name", scenario_equiv.comparable_scenarios())
def test_scenario_is_bit_identical_to_its_legacy_driver(name):
    problems = scenario_equiv.diff_scenario(name)
    assert problems == [], "\n".join(problems)


def test_harness_list_mode(capsys):
    assert scenario_equiv.main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in scenario_equiv.comparable_scenarios():
        assert name in out


def test_harness_rejects_unknown_scenarios(capsys):
    assert scenario_equiv.main(["--scenario", "fig99"]) == 2
    assert "unknown scenario" in capsys.readouterr().err
