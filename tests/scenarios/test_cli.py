"""``pstl-scenario`` CLI: auto-discovery, help sync, and end-to-end runs.

The regression target: the registry, ``pstl-scenario list`` and the
parser help text can never disagree about which scenarios exist -- a
scenario added to the registry is discoverable everywhere at once, with
no hand-maintained subcommand lists to forget.
"""

from __future__ import annotations

import json

import pytest

from repro.scenarios.analyses import analysis_kinds
from repro.scenarios.cli import build_parser, main
from repro.scenarios.registry import get_scenario, scenario_names


def test_list_stays_in_sync_with_the_registry(capsys):
    assert main(["list"]) == 0
    lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
    assert [l.split("\t")[0] for l in lines] == list(scenario_names())
    # no orphaned or shadowed names in either direction
    assert len(lines) == len(scenario_names())


def test_list_marks_service_submittable_scenarios(capsys):
    main(["list"])
    out = capsys.readouterr().out
    kinds = analysis_kinds()
    for line in out.splitlines():
        if not line.strip():
            continue
        name = line.split("\t")[0]
        campaign_shaped = (
            kinds[get_scenario(name).analysis].campaign_spec_for is not None
        )
        assert ("[service]" in line) == campaign_shaped


def test_parser_help_names_every_registered_scenario():
    description = build_parser().description
    for name in scenario_names():
        assert name in description


def test_describe_prints_axes_and_canonical_json(capsys):
    assert main(["describe", "table5"]) == 0
    out = capsys.readouterr().out
    assert "campaign-speedup" in out
    assert '"name": "table5"' in out or "table5" in out
    assert "spec: {" in out


def test_run_quiet_summarises(capsys):
    assert main(["run", "fig1", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("fig1: ")
    assert "24 cells" in out


def test_run_scenario_file_writes_json(tmp_path, capsys):
    spec = {
        "name": "cli-sweep",
        "analysis": "campaign-grid",
        "machines": ["A"],
        "backends": ["GCC-SEQ", "GCC-TBB"],
        "cases": ["reduce"],
        "size_exps": [10],
        "threads": [2],
    }
    spec_path = tmp_path / "sweep.json"
    spec_path.write_text(json.dumps(spec), encoding="utf-8")
    out_path = tmp_path / "out.json"
    assert main(["run", "--scenario-file", str(spec_path),
                 "--json", str(out_path)]) == 0
    payload = json.loads(out_path.read_text(encoding="utf-8"))
    assert payload["scenario"]["name"] == "cli-sweep"
    assert payload["cells"]
    assert "cli-sweep" in capsys.readouterr().out


def test_run_with_campaign_dir_reuses_the_cache(tmp_path, capsys):
    args = ["run", "table5", "--quiet",
            "--campaign-dir", str(tmp_path / "c")]
    # table5 at full size runs in under a second on the model; the
    # second invocation must serve every point from the shared cache
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0
    assert capsys.readouterr().out == first
    assert (tmp_path / "c" / "cache").exists()


def test_unknown_scenario_name_fails_with_the_known_list(capsys):
    assert main(["run", "fig99"]) == 1
    err = capsys.readouterr().err
    assert "unknown scenario" in err and "fig1" in err


def test_name_and_file_are_mutually_exclusive(tmp_path, capsys):
    spec_path = tmp_path / "x.json"
    spec_path.write_text("{}", encoding="utf-8")
    assert main(["run", "fig1", "--scenario-file", str(spec_path)]) == 1
    assert "exactly one" in capsys.readouterr().err
    assert main(["describe"]) == 1


def test_invalid_scenario_file_fails_cleanly(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"name": "x", "analysis": "nope"}),
                   encoding="utf-8")
    assert main(["run", "--scenario-file", str(bad)]) == 1
    assert "'analysis'" in capsys.readouterr().err


def test_bad_invocation_exits_2():
    with pytest.raises(SystemExit) as exc:
        main(["frobnicate"])
    assert exc.value.code == 2
