"""Registry pins: the declarative specs cannot drift from the legacy
constants, the fidelity artifact ids, or the campaign identities.

``tools/scenario_equiv.py`` pins the registry against the legacy
drivers' *outputs*; this module pins the *inputs* (axis values spelled
out literally in the registry) against the constants those drivers use,
so an edit to either side fails loudly.
"""

from __future__ import annotations

import pytest

from repro.errors import ScenarioError
from repro.scenarios.analyses import analysis_kinds, get_analysis
from repro.scenarios.registry import (
    BUILTIN_SCENARIOS,
    builtin_scenarios,
    get_scenario,
    scenario_names,
)

EXPECTED_NAMES = (
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    "table3", "table4", "table5", "table6", "table7",
)


def test_registry_carries_every_paper_artifact_in_report_order():
    assert scenario_names() == EXPECTED_NAMES


def test_every_builtin_spec_validates():
    specs = builtin_scenarios()
    assert set(specs) == set(EXPECTED_NAMES)
    for name, spec in specs.items():
        assert spec.name == name
        assert spec.title


def test_claims_bind_exactly_the_fidelity_artifacts():
    from repro.fidelity.refdata import ARTIFACT_IDS

    claims = {get_scenario(n).claims for n in scenario_names()}
    assert claims == set(ARTIFACT_IDS)
    for name in scenario_names():
        assert get_scenario(name).claims == name


def test_unknown_scenario_raises_with_the_known_list():
    with pytest.raises(ScenarioError, match="unknown scenario 'fig99'"):
        get_scenario("fig99")


def test_get_scenario_is_cached():
    assert get_scenario("fig1") is get_scenario("fig1")


def test_every_analysis_kind_is_exercised_by_a_builtin():
    used = {get_scenario(n).analysis for n in scenario_names()}
    # campaign-grid is the user-facing kind; every other kind carries a
    # paper artifact
    assert set(analysis_kinds()) - used == {"campaign-grid"}


def test_builtin_entries_are_plain_json_payloads():
    import json

    for entry in BUILTIN_SCENARIOS:
        assert json.loads(json.dumps(entry)) == dict(entry)


# -- pins against the legacy driver constants --------------------------------


def test_fig1_axes_match_the_legacy_constants():
    from repro.experiments.fig1 import FIG1_BACKENDS, FIG1_CASES

    spec = get_scenario("fig1")
    assert spec.backends == tuple(FIG1_BACKENDS)
    assert spec.cases == tuple(FIG1_CASES)
    assert spec.machines == ("A",)
    assert spec.threads == (32,)
    assert spec.size_exps == (30,)


def test_fig2_backends_match_the_legacy_constant():
    from repro.experiments.fig2 import FIG2_BACKENDS

    assert get_scenario("fig2").backends == tuple(FIG2_BACKENDS)


@pytest.mark.parametrize("name", ["fig3", "fig4", "fig5", "fig6", "fig7",
                                  "table3", "table4", "table5", "table6"])
def test_parallel_cpu_backends_match_the_registry_constant(name):
    from repro.backends.registry import PARALLEL_CPU_BACKENDS

    assert get_scenario(name).backends == tuple(PARALLEL_CPU_BACKENDS)


def test_headline_cases_match_the_suite_constant():
    from repro.suite.cases import HEADLINE_CASES

    assert get_scenario("fig1").cases == tuple(HEADLINE_CASES)
    assert get_scenario("table5").cases == tuple(HEADLINE_CASES)
    assert get_scenario("table6").cases == tuple(HEADLINE_CASES)


def test_table3_backends_match_the_legacy_constant():
    from repro.experiments.table3 import TABLE3_BACKENDS

    assert get_scenario("table3").backends == tuple(TABLE3_BACKENDS)
    assert get_scenario("table4").backends == tuple(TABLE3_BACKENDS)


def test_table7_backends_match_the_legacy_constant():
    from repro.experiments.table7 import TABLE7_BACKENDS

    assert get_scenario("table7").backends == tuple(TABLE7_BACKENDS)


def test_fig8_sweep_options_match_the_legacy_driver():
    from repro.experiments.fig8 import FIG8_KITS, GPU_MAX_EXP

    spec = get_scenario("fig8")
    assert spec.k_values == tuple(FIG8_KITS)
    assert spec.option("max_exp") == GPU_MAX_EXP
    assert spec.option("size_step") == 2


# -- campaign identity pins --------------------------------------------------


def test_table5_scenario_produces_the_legacy_campaign_spec():
    from repro.experiments.table5 import table5_campaign_spec

    spec = get_scenario("table5")
    kind = get_analysis(spec.analysis)
    assert kind.campaign_spec_for is not None
    assert kind.campaign_spec_for(spec) == table5_campaign_spec()


def test_table6_scenario_produces_the_legacy_campaign_spec():
    from repro.experiments.table6 import table6_campaign_spec

    spec = get_scenario("table6")
    kind = get_analysis(spec.analysis)
    assert kind.campaign_spec_for(spec) == table6_campaign_spec()


def test_campaign_shaped_scenarios_share_the_content_derived_id():
    from repro.campaign.spec import CampaignSpec
    from repro.scenarios.runner import campaign_payload
    from repro.service.scheduler import campaign_id

    from repro.experiments.table5 import table5_campaign_spec

    via_scenario = CampaignSpec.from_dict(campaign_payload("table5"))
    assert campaign_id(via_scenario) == campaign_id(table5_campaign_spec())
