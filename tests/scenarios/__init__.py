"""Scenario registry suite: schema, registry pins, resolver parity,
runner end-to-end, CLI sync, and the legacy-driver equivalence harness
(``pytest -m scenario_equiv`` / ``tools/scenario_equiv.py``)."""
