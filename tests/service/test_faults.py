"""Service-side fault injection: spurious rejections and slow clients.

The two request-side sites added for the service follow the same
transient-then-converge contract as every worker/storage site: an
injected 503 fires at most once per submission identity (so an honest
retry is admitted), and a ``slow_client`` stall delays a bounded number
of responses without corrupting any of them.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import QuotaExceededError
from repro.faults import FaultInjector, FaultPlan
from repro.service import ServiceClient, start_background

pytestmark = pytest.mark.chaos

SPEC = {
    "name": "faulty",
    "machines": ["A"],
    "backends": ["GCC-TBB"],
    "cases": ["reduce"],
    "size_exps": [8],
    "threads": [2],
}


def test_service_sites_are_rated_and_deterministic():
    plan = FaultPlan(seed=7, service_reject=1.0, slow_client=1.0,
                     slow_client_seconds=0.01)
    assert plan.rate("service_reject") == 1.0
    assert plan.fires("service_reject", "abc") is plan.fires("service_reject", "abc")
    injector = FaultInjector(plan)
    assert injector.claim_service_reject("abc")
    assert not injector.claim_service_reject("abc")  # at most once per ident
    assert injector.slow_client_delay("req-1") == 0.01
    assert injector.slow_client_delay("req-1") == 0.0


def test_injected_reject_is_transient_and_the_retry_is_admitted(tmp_path):
    faults = FaultPlan(seed=3, service_reject=1.0)
    with start_background(tmp_path / "svc", faults=faults) as svc:
        client = ServiceClient(svc.base_url)
        # first attempt: the injected 503, carrying a Retry-After hint
        with pytest.raises(QuotaExceededError) as err:
            client.submit(SPEC)
        assert err.value.retry_after > 0
        # the retry is admitted (the site fired for this campaign id)
        doc = client.submit(SPEC, max_attempts=2)
        assert doc["_status"] == 202
        assert client.wait(doc["id"], timeout=60)["state"] == "complete"
        metrics = client.metrics()
        assert metrics["service_injected_rejects"] == 1


def test_slow_client_stalls_one_response_without_breaking_it(tmp_path):
    faults = FaultPlan(seed=3, slow_client=1.0, slow_client_seconds=0.2,
                       max_faults=1)
    with start_background(tmp_path / "svc", faults=faults) as svc:
        client = ServiceClient(svc.base_url)
        t0 = time.perf_counter()
        doc = client.healthz()  # the first request eats the stall
        slow = time.perf_counter() - t0
        assert doc["status"] == "ok"
        assert slow >= 0.2
        t0 = time.perf_counter()
        client.healthz()  # budget spent: back to normal speed
        assert time.perf_counter() - t0 < 0.2
