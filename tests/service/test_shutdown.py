"""Graceful shutdown end-to-end: SIGTERM a live daemon, restart, converge.

The service's durability claim extends crash recovery to the daemon
itself: a SIGTERM mid-campaign drains running waves (never killing them
mid-write), persists every journal, and a *restarted* daemon adopts the
leftover campaign directories, resumes the unfinished ones, and reaches
results bit-identical to a never-interrupted run. In-process tests
cannot check the signal path honestly, so this one runs the real
``pstl-service`` CLI in a subprocess and SIGTERMs it while a queue of
campaigns is still draining.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.errors import ServiceError
from repro.service import ServiceClient

REPO = Path(__file__).resolve().parents[2]

#: Each campaign runs real repetitions (~0.5s): a queue of four keeps the
#: daemon busy long enough that SIGTERM lands mid-drain deterministically.
def _spec(i: int) -> dict:
    return {
        "name": f"shutdown-{i}",
        "machines": ["A"],
        "backends": ["GCC-TBB"],
        "cases": ["sort", "stable_sort", "merge"],
        "size_exps": [17, 18],
        "threads": [2, 4],
        "modes": ["run"],
    }


def _serve(root: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [sys.executable, "-m", "repro.service.cli", "serve", str(root),
           "--concurrent", "1"]
    return subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)


def _wait_for_daemon(root: Path, timeout: float = 20.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            meta = json.loads((root / "service.json").read_text())
            url = f"http://{meta['host']}:{meta['port']}"
            ServiceClient(url).healthz()
            return url
        except (FileNotFoundError, json.JSONDecodeError, ServiceError):
            time.sleep(0.05)
    raise AssertionError("daemon did not come up")


@pytest.mark.chaos
def test_sigterm_drains_then_a_restart_resumes_bit_identically(tmp_path):
    root = tmp_path / "svc"
    daemon = _serve(root)
    try:
        url = _wait_for_daemon(root)
        client = ServiceClient(url)
        ids = [client.submit(_spec(i))["id"] for i in range(4)]
        assert len(set(ids)) == 4
        # let the first campaign make progress, then pull the plug
        time.sleep(0.3)
        daemon.send_signal(signal.SIGTERM)
        out, err = daemon.communicate(timeout=60)
        assert daemon.returncode == 0, err  # drained, not crashed
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.communicate()

    # every submitted campaign left a durable directory with a spec, and
    # whatever was journaled parses cleanly (no torn mid-drain writes)
    for cid in ids:
        assert (root / "campaigns" / cid / "spec.json").exists()
    from repro.campaign.store import Journal
    journaled = sum(
        len(Journal(root / "campaigns" / cid / "journal.jsonl").entries())
        for cid in ids)
    assert journaled >= 1  # SIGTERM landed after real progress
    for cid in ids:
        journal = Journal(root / "campaigns" / cid / "journal.jsonl")
        assert journal.torn_lines() == 0

    # restart on the same root: the daemon adopts and resumes leftovers
    daemon = _serve(root)
    try:
        url = _wait_for_daemon(root)
        meta = json.loads((root / "service.json").read_text())
        assert meta["resumed"] >= 1  # at least one campaign was unfinished
        client = ServiceClient(url)
        for cid in ids:
            doc = client.wait(cid, timeout=120)
            assert doc["state"] == "complete"
        # bit-identical convergence: the service's rows equal a direct,
        # never-interrupted run of the same spec
        for i, cid in enumerate(ids):
            rows = client.results(cid)["rows"]
            direct = run_campaign(CampaignSpec.from_dict(_spec(i)))
            by_task = {r["task_id"]: (r["status"], r["seconds"]) for r in rows}
            assert set(by_task) == set(direct.results)
            for tid, result in direct.results.items():
                assert by_task[tid] == (result.status, result.seconds)
    finally:
        if daemon.poll() is None:
            daemon.send_signal(signal.SIGTERM)
            try:
                daemon.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                daemon.kill()
                daemon.communicate()
