"""Scenario submissions through the service: dedup + durable resume.

A ``{"scenario": name, ...overrides}`` payload resolves through the
scenario registry *inside* the scheduler, so its campaign id is derived
from the resolved spec's content -- a scenario submission and the
equivalent inline spec are the same campaign, dedup included. The chaos
test SIGTERMs a real daemon mid-queue and checks that scenario-submitted
campaigns resume to bit-identical results, mirroring
``tests/service/test_shutdown.py`` for the scenario path.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.errors import ServiceError
from repro.scenarios.runner import service_payload
from repro.service import ServiceClient, start_background

REPO = Path(__file__).resolve().parents[2]


@pytest.fixture
def service(tmp_path):
    with start_background(tmp_path / "svc", concurrent=2) as svc:
        yield svc


def test_scenario_submission_runs_to_completion(service):
    client = ServiceClient(service.base_url)
    doc = client.submit_scenario("table5", {"size_exps": [12]})
    assert doc["_status"] == 202
    done = client.wait(doc["id"], timeout=120)
    assert done["state"] == "complete"
    # the daemon computed exactly what a direct run of the resolved
    # campaign computes
    resolved = CampaignSpec.from_dict(
        service_payload({"scenario": "table5", "size_exps": [12]}))
    direct = run_campaign(resolved)
    rows = client.results(doc["id"])["rows"]
    by_task = {r["task_id"]: r["seconds"] for r in rows}
    assert set(by_task) == set(direct.results)
    for tid, result in direct.results.items():
        assert by_task[tid] == result.seconds


def test_scenario_dedups_against_the_equivalent_inline_spec(service):
    client = ServiceClient(service.base_url)
    inline = service_payload({"scenario": "table5", "size_exps": [12]})
    first = client.submit(inline)
    assert first["_status"] == 202
    # same content, submitted as a scenario name + override: same id
    dup = client.submit_scenario("table5", {"size_exps": [12]})
    assert dup["_status"] == 200
    assert dup["deduped"] is True
    assert dup["id"] == first["id"]
    assert client.metrics()["service_deduped"] == 1


def test_inline_spec_dedups_against_a_prior_scenario_submission(service):
    client = ServiceClient(service.base_url)
    first = client.submit({"scenario": "table6", "size_exps": [12]})
    dup = client.submit(service_payload({"scenario": "table6",
                                         "size_exps": [12]}))
    assert dup["deduped"] is True and dup["id"] == first["id"]


def test_unknown_scenario_is_a_400(service):
    client = ServiceClient(service.base_url)
    with pytest.raises(ServiceError, match="HTTP 400"):
        client.submit({"scenario": "fig99"})


def test_non_campaign_scenario_is_a_400(service):
    client = ServiceClient(service.base_url)
    with pytest.raises(ServiceError, match="HTTP 400"):
        client.submit_scenario("fig1")


def test_bad_override_is_a_400(service):
    client = ServiceClient(service.base_url)
    with pytest.raises(ServiceError, match="HTTP 400"):
        client.submit_scenario("table5", {"turbo": True})


def test_cli_submit_scenario_flag(service, capsys):
    from repro.service.cli import main as service_main

    rc = service_main(["submit", "--scenario", "table5",
                       "--override", '{"size_exps": [12]}',
                       "--url", service.base_url, "--wait"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["state"] == "complete"


def test_cli_submit_requires_exactly_one_source(service, capsys):
    from repro.service.cli import main as service_main

    assert service_main(["submit", "--url", service.base_url]) == 1
    assert "exactly one" in capsys.readouterr().err
    assert service_main(["submit", "--scenario", "fig99",
                         "--url", service.base_url]) == 1
    assert "unknown scenario" in capsys.readouterr().err


# -- SIGTERM drain + resume (subprocess daemon, like test_shutdown) ----------


def _serve(root: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [sys.executable, "-m", "repro.service.cli", "serve", str(root),
           "--concurrent", "1"]
    return subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)


def _wait_for_daemon(root: Path, timeout: float = 20.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            meta = json.loads((root / "service.json").read_text())
            url = f"http://{meta['host']}:{meta['port']}"
            ServiceClient(url).healthz()
            return url
        except (FileNotFoundError, json.JSONDecodeError, ServiceError):
            time.sleep(0.05)
    raise AssertionError("daemon did not come up")


#: Distinct size exponents make each scenario submission its own
#: campaign; a single-slot daemon keeps the later ones queued so the
#: SIGTERM lands with work still pending.
_RESUME_EXPS = (14, 15, 16, 17)


@pytest.mark.chaos
def test_scenario_campaigns_survive_sigterm_and_resume_bit_identically(tmp_path):
    root = tmp_path / "svc"
    daemon = _serve(root)
    try:
        url = _wait_for_daemon(root)
        client = ServiceClient(url)
        ids = [client.submit_scenario("table6", {"size_exps": [exp]})["id"]
               for exp in _RESUME_EXPS]
        assert len(set(ids)) == len(_RESUME_EXPS)
        time.sleep(0.2)  # let the head of the queue make progress
        daemon.send_signal(signal.SIGTERM)
        out, err = daemon.communicate(timeout=60)
        assert daemon.returncode == 0, err  # drained, not crashed
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.communicate()

    # every scenario submission left a durable campaign dir whose
    # spec.json is the *resolved* campaign spec (restart needs no
    # scenario registry to adopt it)
    for exp, cid in zip(_RESUME_EXPS, ids):
        spec = json.loads(
            (root / "campaigns" / cid / "spec.json").read_text())
        assert spec["name"] == f"table6-2^{exp}"
        assert "scenario" not in spec

    daemon = _serve(root)
    try:
        url = _wait_for_daemon(root)
        client = ServiceClient(url)
        for exp, cid in zip(_RESUME_EXPS, ids):
            done = client.wait(cid, timeout=120)
            assert done["state"] == "complete"
            resolved = CampaignSpec.from_dict(
                service_payload({"scenario": "table6", "size_exps": [exp]}))
            direct = run_campaign(resolved)
            rows = client.results(cid)["rows"]
            by_task = {r["task_id"]: (r["status"], r["seconds"])
                       for r in rows}
            assert set(by_task) == set(direct.results)
            for tid, result in direct.results.items():
                assert by_task[tid] == (result.status, result.seconds)
        # a re-submission after restart still dedups against the
        # recovered campaign
        dup = client.submit_scenario("table6",
                                     {"size_exps": [_RESUME_EXPS[0]]})
        assert dup["deduped"] is True and dup["id"] == ids[0]
    finally:
        if daemon.poll() is None:
            daemon.send_signal(signal.SIGTERM)
            try:
                daemon.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                daemon.kill()
                daemon.communicate()
