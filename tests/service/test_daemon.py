"""Daemon end-to-end: the HTTP surface against a live background service.

Each test boots a real :class:`ServiceDaemon` on a loopback port (via
``start_background``) and talks to it with the stdlib client -- the same
wire path production traffic takes. Specs stay tiny (one or two model
points) so the suite runs in seconds; the *slow* campaign used for
quota-timing tests runs real benchmark repetitions (``mode=run``) to
hold its admission slot for a deterministic window.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.errors import QuotaExceededError, ServiceError
from repro.service import QuotaPolicy, ServiceClient, start_background

SPEC = {
    "name": "daemon-e2e",
    "machines": ["A"],
    "backends": ["GCC-TBB"],
    "cases": ["reduce", "transform"],
    "size_exps": [8],
    "threads": [2],
}

#: Real repetitions (~0.5s wall) so the campaign holds its slot while a
#: second submission races it.
SLOW_SPEC = {
    "name": "daemon-slow",
    "machines": ["A"],
    "backends": ["GCC-TBB"],
    "cases": ["sort", "stable_sort", "merge"],
    "size_exps": [17, 18],
    "threads": [2, 4],
    "modes": ["run"],
}


@pytest.fixture
def service(tmp_path):
    with start_background(tmp_path / "svc", concurrent=2) as svc:
        yield svc


def test_healthz_reports_live(service):
    doc = ServiceClient(service.base_url).healthz()
    assert doc["status"] == "ok"
    assert doc["draining"] is False


def test_submit_run_results_roundtrip(service, tmp_path):
    client = ServiceClient(service.base_url)
    doc = client.submit(SPEC)
    assert doc["_status"] == 202 and doc["state"] == "queued"
    done = client.wait(doc["id"], timeout=60)
    assert done["state"] == "complete"
    assert done["progress"].get("done") == done["points"]
    rows = client.results(doc["id"])["rows"]
    assert len(rows) == done["points"]
    assert all(row["status"] == "done" for row in rows)
    # the service computed exactly what a direct run computes
    direct = run_campaign(CampaignSpec.from_dict(SPEC))
    by_task = {r["task_id"]: r["seconds"] for r in rows}
    for tid, result in direct.results.items():
        assert by_task[tid] == result.seconds


def test_duplicate_submission_returns_the_existing_campaign(service):
    client = ServiceClient(service.base_url)
    first = client.submit(SPEC)
    dup = client.submit(SPEC)
    assert dup["_status"] == 200
    assert dup["deduped"] is True
    assert dup["id"] == first["id"]
    metrics = client.metrics()
    assert metrics["service_deduped"] == 1


def test_warm_grid_under_a_new_name_hits_the_shared_cache(service):
    client = ServiceClient(service.base_url)
    cold = client.submit(SPEC)
    client.wait(cold["id"], timeout=60)
    warm_spec = dict(SPEC, name="daemon-e2e-warm")
    warm = client.submit(warm_spec)
    assert warm["id"] != cold["id"]  # a different campaign...
    done = client.wait(warm["id"], timeout=60)
    assert done["state"] == "complete"
    assert f"{done['points']} cache hits" in done["stats"]
    assert "0 executed" in done["stats"]  # ...served entirely warm


def test_events_stream_is_offset_resumable(service):
    client = ServiceClient(service.base_url)
    doc = client.submit(SPEC)
    client.wait(doc["id"], timeout=60)
    full = client.events(doc["id"])
    assert len(full["events"]) == doc["points"]
    # resuming from next_offset yields nothing new...
    tail = client.events(doc["id"], offset=full["next_offset"])
    assert tail["events"] == []
    # ...and an offset mid-stream yields only the remainder
    partial = client.events(doc["id"], offset=0)
    assert partial["events"] == full["events"]


def test_results_of_a_running_campaign_are_409(service):
    client = ServiceClient(service.base_url)
    doc = client.submit(SLOW_SPEC)
    with pytest.raises(ServiceError, match="HTTP 409"):
        client.results(doc["id"])
    client.wait(doc["id"], timeout=120)
    assert len(client.results(doc["id"])["rows"]) == doc["points"]


def test_unknown_campaign_is_404(service):
    client = ServiceClient(service.base_url)
    with pytest.raises(ServiceError, match="HTTP 404"):
        client.status("deadbeefdeadbeef")
    with pytest.raises(ServiceError, match="HTTP 404"):
        client.events("deadbeefdeadbeef")


def test_malformed_body_is_400(service):
    conn = HTTPConnection("127.0.0.1", ServiceClient(service.base_url).port)
    conn.request("POST", "/campaigns", body=b"not json",
                 headers={"Content-Type": "application/json"})
    response = conn.getresponse()
    assert response.status == 400
    conn.close()


def test_invalid_spec_is_400(service):
    client = ServiceClient(service.base_url)
    with pytest.raises(ServiceError, match="HTTP 400"):
        client.submit({"name": "bad"})  # missing required grid fields


def test_wrong_method_is_405_and_unknown_route_404(service):
    client = ServiceClient(service.base_url)
    conn = HTTPConnection("127.0.0.1", client.port)
    conn.request("DELETE", "/campaigns")
    assert conn.getresponse().status == 405
    conn.close()
    conn = HTTPConnection("127.0.0.1", client.port)
    conn.request("GET", "/nope")
    assert conn.getresponse().status == 404
    conn.close()


def test_every_response_carries_handle_time(service):
    conn = HTTPConnection("127.0.0.1", ServiceClient(service.base_url).port)
    conn.request("GET", "/healthz")
    response = conn.getresponse()
    assert float(response.getheader("X-Handle-Ms")) >= 0.0
    conn.close()


def test_metrics_expose_the_counters(service):
    client = ServiceClient(service.base_url)
    client.submit(SPEC)
    metrics = client.metrics()
    for name in ("service_requests", "service_submitted", "service_admitted",
                 "service_rejected", "service_inflight", "service_draining"):
        assert name in metrics


def test_oversized_campaign_is_rejected_413(tmp_path):
    policy = QuotaPolicy(max_points_per_campaign=2)
    with start_background(tmp_path / "svc", policy=policy) as svc:
        client = ServiceClient(svc.base_url)
        with pytest.raises(ServiceError, match="HTTP 413"):
            client.submit(SPEC)  # plans 3 points (2 measures + baseline)
        assert client.metrics()["service_rejected_points"] == 1


def test_per_key_quota_answers_429_with_retry_after(tmp_path):
    policy = QuotaPolicy(max_inflight_per_key=1, retry_after=0.05)
    with start_background(tmp_path / "svc", policy=policy,
                          concurrent=1) as svc:
        client = ServiceClient(svc.base_url, api_key="greedy")
        client.submit(SLOW_SPEC)  # holds the key's only slot for ~0.5s
        with pytest.raises(QuotaExceededError) as err:
            client.submit(SPEC)
        assert err.value.retry_after == pytest.approx(0.05)
        # a different key is admitted immediately
        other = ServiceClient(svc.base_url, api_key="patient")
        assert other.submit(SPEC)["_status"] == 202
        # and the greedy key recovers once its campaign finishes
        doc = client.submit(SPEC, max_attempts=100)
        assert doc["_status"] in (200, 202)


def test_submit_retries_absorb_the_quota_rejection(tmp_path):
    policy = QuotaPolicy(max_inflight_per_key=1, retry_after=0.05)
    with start_background(tmp_path / "svc", policy=policy,
                          concurrent=1) as svc:
        client = ServiceClient(svc.base_url, api_key="greedy")
        client.submit(SLOW_SPEC)
        doc = client.submit(SPEC, max_attempts=100)  # backs off, then lands
        assert doc["_status"] == 202
        assert client.wait(doc["id"], timeout=120)["state"] == "complete"


def test_drain_rejects_new_submissions_with_503(tmp_path):
    with start_background(tmp_path / "svc") as svc:
        client = ServiceClient(svc.base_url)
        before = client.submit(SPEC)
        client.wait(before["id"], timeout=60)
        # ask the daemon to drain, then race one more submission in
        # before the listener closes; either answer is protocol-correct:
        # a 503 + Retry-After or a refused connection
        svc.daemon.request_stop()
        try:
            doc = client.submit(dict(SPEC, name="late"))
        except QuotaExceededError as exc:
            assert exc.retry_after > 0
        except ServiceError:
            pass  # listener already closed
        else:
            assert doc.get("deduped") in (False, True)
    # context exit: drain completed, thread joined


def test_service_json_is_published_and_removed(tmp_path):
    root = tmp_path / "svc"
    with start_background(root) as svc:
        meta = json.loads((root / "service.json").read_text())
        assert svc.base_url.endswith(str(meta["port"]))
        assert meta["resumed"] == 0
    assert not (root / "service.json").exists()


def test_scheduler_rejects_while_draining_without_a_loop(tmp_path):
    # unit-level pin for the drain rejection the HTTP race above can
    # only observe opportunistically
    from repro.service import CampaignService

    service = CampaignService(tmp_path / "svc")
    service._draining.set()
    record, deduped, rejection = service.submit(SPEC)
    assert record is None and not deduped
    assert rejection is not None
    assert rejection.status == 503 and rejection.retryable


def test_store_endpoint_reports_index_backed_stats(service):
    client = ServiceClient(service.base_url)
    empty = client.store()
    assert empty["objects"] == 0
    assert empty["indexed"] is True  # fresh service roots are v2 stores
    assert empty["shards"] == 0 and empty["quarantined"] == 0

    doc = client.submit(SPEC)
    client.wait(doc["id"], timeout=60)
    stats = client.store()
    assert stats["objects"] == client.status(doc["id"])["points"]
    assert stats["shards"] >= 1  # every object landed in an indexed shard

    metrics = client.metrics()
    assert metrics["service_store_objects"] == stats["objects"]
    assert metrics["service_store_indexed"] == 1.0
