"""Admission control unit tests: the quota gate, deterministic and alone.

The daemon tests exercise quotas over HTTP where timing allows; here the
controller is driven directly so every rejection branch -- oversized
campaign, full queue, per-key cap -- is pinned without races.
"""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service.quotas import AdmissionController, QuotaPolicy, Rejection


def test_policy_validates_limits():
    with pytest.raises(ServiceError):
        QuotaPolicy(max_inflight_per_key=0)
    with pytest.raises(ServiceError):
        QuotaPolicy(max_points_per_campaign=0)
    with pytest.raises(ServiceError):
        QuotaPolicy(max_queue=0)
    with pytest.raises(ServiceError):
        QuotaPolicy(retry_after=-1.0)


def test_rejection_retryability_follows_the_hint():
    assert Rejection(status=429, reason="busy", retry_after=0.5).retryable
    assert not Rejection(status=413, reason="too big").retryable


def test_admit_charges_and_release_refunds():
    gate = AdmissionController(QuotaPolicy(max_inflight_per_key=2))
    assert gate.admit("alice", points=10) is None
    assert gate.admit("alice", points=10) is None
    assert gate.inflight_by_key == {"alice": 2}
    assert gate.inflight_total == 2
    gate.release("alice")
    gate.release("alice")
    assert gate.inflight_by_key == {}
    assert gate.inflight_total == 0
    assert gate.admitted == 2


def test_oversized_campaign_is_a_permanent_413():
    gate = AdmissionController(QuotaPolicy(max_points_per_campaign=100))
    rejection = gate.admit("alice", points=101)
    assert rejection is not None
    assert rejection.status == 413
    assert not rejection.retryable
    assert gate.rejected_points == 1
    assert gate.inflight_total == 0  # nothing was charged


def test_per_key_cap_rejects_the_overflow_with_429():
    gate = AdmissionController(QuotaPolicy(max_inflight_per_key=1))
    assert gate.admit("alice", points=1) is None
    rejection = gate.admit("alice", points=1)
    assert rejection is not None and rejection.status == 429
    assert rejection.retryable
    # another key is unaffected
    assert gate.admit("bob", points=1) is None
    gate.release("alice")
    assert gate.admit("alice", points=1) is None  # slot freed


def test_full_queue_rejects_everyone_with_429():
    gate = AdmissionController(QuotaPolicy(max_queue=2,
                                           max_inflight_per_key=10))
    assert gate.admit("a", points=1) is None
    assert gate.admit("b", points=1) is None
    for key in ("a", "b", "c"):
        rejection = gate.admit(key, points=1)
        assert rejection is not None and rejection.status == 429
    assert gate.rejected_queue == 3
    gate.release("a")
    assert gate.admit("c", points=1) is None  # drained one slot


def test_unbalanced_release_is_an_error():
    gate = AdmissionController(QuotaPolicy())
    with pytest.raises(ServiceError):
        gate.release("nobody")


def test_rejection_counters_sum():
    gate = AdmissionController(QuotaPolicy(max_points_per_campaign=5,
                                           max_inflight_per_key=1))
    gate.admit("a", points=50)
    gate.admit("a", points=1)
    gate.admit("a", points=1)
    assert gate.rejected_total() == 2
    assert gate.rejected_points == 1
    assert gate.rejected_key == 1
