"""Tests for the Google-Benchmark-like state machine."""

import pytest

from repro.bench.state import BenchState
from repro.errors import BenchmarkError
from repro.sim.report import Counters, SimReport


def _report(seconds=1.0, instr=10.0):
    return SimReport(seconds=seconds, counters=Counters(instructions=instr))


class TestMeasurementLoop:
    def test_runs_until_min_time(self):
        state = BenchState(min_time=5.0)
        while state.keep_running():
            state.set_iteration_time(1.0)
        assert state.iterations == 5

    def test_min_one_iteration(self):
        state = BenchState(min_time=1e-9)
        ran = 0
        while state.keep_running():
            state.set_iteration_time(100.0)
            ran += 1
        assert ran == 1

    def test_iterator_protocol(self):
        state = BenchState(min_time=2.0)
        for _ in state:
            state.set_iteration_time(1.0)
        assert state.iterations == 2

    def test_max_iterations_cap(self):
        state = BenchState(min_time=100.0, max_iterations=3)
        while state.keep_running():
            state.set_iteration_time(1.0)
        assert state.iterations == 3

    def test_wrap_timing_contract_enforced(self):
        state = BenchState()
        assert state.keep_running()
        with pytest.raises(BenchmarkError, match="WRAP_TIMING"):
            state.keep_running()

    def test_time_outside_iteration_rejected(self):
        with pytest.raises(BenchmarkError):
            BenchState().set_iteration_time(1.0)


class TestRecordReport:
    def test_accumulates_counters_and_time(self):
        state = BenchState(min_time=1.5)
        while state.keep_running():
            state.record_report(_report())
        result = state.finish("b")
        assert result.iterations == 2
        assert result.counters.instructions == 20.0
        assert result.mean_time == 1.0

    def test_batch_repeat(self):
        state = BenchState(min_time=100.0)
        assert state.keep_running()
        state.record_report(_report(seconds=1.0), repeat=100)
        result = state.finish("b")
        assert result.iterations == 100
        assert result.total_time == 100.0
        assert result.counters.instructions == 1000.0

    def test_repeat_validated(self):
        state = BenchState()
        state.keep_running()
        with pytest.raises(BenchmarkError):
            state.record_report(_report(), repeat=0)


class TestResults:
    def test_bytes_per_second(self):
        state = BenchState(min_time=1.0)
        while state.keep_running():
            state.set_iteration_time(2.0)
        state.set_bytes_processed(4 << 30)
        result = state.finish("b")
        assert result.bytes_per_second == pytest.approx((4 << 30) / 2.0)

    def test_zero_bytes_throughput(self):
        state = BenchState(min_time=0.5)
        while state.keep_running():
            state.set_iteration_time(1.0)
        assert state.finish("b").bytes_per_second == 0.0

    def test_finish_requires_iterations(self):
        with pytest.raises(BenchmarkError):
            BenchState().finish("b")

    def test_finish_mid_iteration_rejected(self):
        state = BenchState()
        state.keep_running()
        with pytest.raises(BenchmarkError):
            state.finish("b")

    def test_ranges(self):
        state = BenchState(ranges=(1 << 20, 7))
        assert state.range(0) == 1 << 20
        assert state.range(1) == 7
        with pytest.raises(BenchmarkError):
            state.range(2)

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            BenchState(min_time=0.0)
        with pytest.raises(BenchmarkError):
            BenchState(min_iterations=5, max_iterations=1)
