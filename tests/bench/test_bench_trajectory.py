"""tools/bench_trajectory.py: the append-and-gate benchmark ledger.

The trajectory tool is itself CI-gating, so its failure modes need
pinning as much as its happy path: an append that duplicated entries,
a gate that silently passed malformed JSON, or a regression rule that
never fired would all rot the performance story without anyone
noticing. Covered here with injected metrics (no real benchmarks run):

* idempotent append -- re-running on the same commit replaces that
  commit's entry, distinct commits accumulate in order;
* schema round-trip -- what ``run`` writes, ``load_trajectory`` and
  ``check`` accept verbatim;
* the gate -- floors fire, a synthetic >10% ratio slowdown fires, a
  within-tolerance dip does not, and an empty/missing ledger fails;
* malformed ledgers -- invalid JSON, wrong schema version, wrong
  benchmark name, missing entry keys and non-numeric gated metrics are
  all rejected with errors that name the file and the problem;
* the CLI -- exit code 0 / 1 / 2 mapping for OK / gate / malformed.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "bench_trajectory.py"


def _load_tool():
    spec = importlib.util.spec_from_file_location("bench_trajectory", _TOOL)
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_trajectory"] = module
    spec.loader.exec_module(module)
    return module


bt = _load_tool()


def _sweep_metrics(speedup=6.0):
    return {"scalar_s": 1.2, "batch_s": 1.2 / speedup, "batch_speedup": speedup}


def _campaign_metrics(wave_over_batch=1.7, warm_speedup=40.0):
    return {
        "cold_batch_s": 0.08, "cold_wave_s": 0.08 / wave_over_batch,
        "warm_s": 0.002, "wave_over_batch": wave_over_batch,
        "warm_speedup": warm_speedup,
    }


def _service_metrics(p99=120.0, dedup=1.0, completed=1.0):
    return {
        "submissions": 1000, "campaigns": 750, "throughput_rps": 350.0,
        "submit_p50_ms": 50.0, "submit_p99_ms": p99,
        "request_overhead_ms": 40.0, "dedup_hit_rate": dedup,
        "completed_rate": completed,
    }


def _store_metrics(speedup_100k=60.0):
    return {
        "cold_scan_s_10k": 0.8, "indexed_s_10k": 0.02,
        "lookup_speedup_10k": 40.0,
        "cold_scan_s_100k": 8.0, "indexed_s_100k": 8.0 / speedup_100k,
        "lookup_speedup_100k": speedup_100k,
        "compact_rows_per_s": 35_000.0,
    }


def _remote_metrics(completed=1.0, exactly_once=1.0, rows_per_s=300.0,
                    overhead_ms=40.0):
    return {
        "fleet": 4, "remote_rows": 60, "remote_wall_s": 0.2,
        "remote_completed_rate": completed,
        "exactly_once_rate": exactly_once,
        "scaleout_rows_per_s": rows_per_s,
        "ship_ingest_overhead_ms": overhead_ms,
    }


# --- append -----------------------------------------------------------------


def test_append_is_idempotent_per_commit(tmp_path):
    path = tmp_path / "BENCH_SWEEP.json"
    bt.append_entry(path, "sweep", _sweep_metrics(6.0), "aaa111", "2026-08-08")
    bt.append_entry(path, "sweep", _sweep_metrics(6.5), "aaa111", "2026-08-08")
    data = bt.load_trajectory(path, "sweep")
    assert len(data["entries"]) == 1  # same commit: replaced, not duplicated
    assert data["entries"][0]["metrics"]["batch_speedup"] == 6.5

    bt.append_entry(path, "sweep", _sweep_metrics(7.0), "bbb222", "2026-08-09")
    data = bt.load_trajectory(path, "sweep")
    assert [e["commit"] for e in data["entries"]] == ["aaa111", "bbb222"]


def test_schema_round_trip(tmp_path):
    path = tmp_path / "BENCH_CAMPAIGN.json"
    written = bt.append_entry(path, "campaign", _campaign_metrics(),
                              "cafe01", "2026-08-08T12:00:00+00:00")
    loaded = bt.load_trajectory(path, "campaign")
    assert loaded == written
    assert loaded["schema"] == bt.SCHEMA_VERSION
    assert loaded["benchmark"] == "campaign"
    entry = loaded["entries"][0]
    assert entry["commit"] == "cafe01"
    assert entry["recorded"] == "2026-08-08T12:00:00+00:00"
    assert set(bt.GATES["campaign"]) <= set(entry["metrics"])


# --- gate -------------------------------------------------------------------


def test_missing_ledger_is_a_gate_failure(tmp_path):
    with pytest.raises(bt.GateError, match="no entries"):
        bt.check_trajectory(tmp_path / "BENCH_SWEEP.json", "sweep")


def test_floor_fires(tmp_path):
    path = tmp_path / "BENCH_SWEEP.json"
    bt.append_entry(path, "sweep", _sweep_metrics(4.9), "aaa", "t")
    with pytest.raises(bt.GateError, match="below the floor"):
        bt.check_trajectory(path, "sweep")


def test_regression_fires_on_synthetic_slowdown(tmp_path):
    path = tmp_path / "BENCH_CAMPAIGN.json"
    bt.append_entry(path, "campaign", _campaign_metrics(2.0, 40.0), "aaa", "t0")
    bt.append_entry(path, "campaign", _campaign_metrics(1.7, 40.0), "bbb", "t1")
    with pytest.raises(bt.GateError, match="wave_over_batch regressed"):
        bt.check_trajectory(path, "campaign")  # 15% drop > 10% tolerance


def test_within_tolerance_dip_passes(tmp_path):
    path = tmp_path / "BENCH_CAMPAIGN.json"
    bt.append_entry(path, "campaign", _campaign_metrics(2.0, 40.0), "aaa", "t0")
    bt.append_entry(path, "campaign", _campaign_metrics(1.85, 38.0), "bbb", "t1")
    lines = bt.check_trajectory(path, "campaign")  # 7.5% drop: allowed
    assert any("wave_over_batch" in line for line in lines)


def test_service_floor_fires_on_imperfect_dedup(tmp_path):
    path = tmp_path / "BENCH_SERVICE.json"
    bt.append_entry(path, "service", _service_metrics(dedup=0.99), "aaa", "t")
    with pytest.raises(bt.GateError, match="dedup_hit_rate.*below the floor"):
        bt.check_trajectory(path, "service")


def test_service_ceiling_fires_on_slow_p99(tmp_path):
    path = tmp_path / "BENCH_SERVICE.json"
    bt.append_entry(path, "service", _service_metrics(p99=600.0), "aaa", "t")
    with pytest.raises(bt.GateError, match="submit_p99_ms.*over the ceiling"):
        bt.check_trajectory(path, "service")


def test_service_p99_upward_regression_fires(tmp_path):
    path = tmp_path / "BENCH_SERVICE.json"
    bt.append_entry(path, "service", _service_metrics(p99=100.0), "aaa", "t0")
    bt.append_entry(path, "service", _service_metrics(p99=115.0), "bbb", "t1")
    with pytest.raises(bt.GateError, match="submit_p99_ms regressed"):
        bt.check_trajectory(path, "service")  # +15% > 10% tolerance


def test_service_p99_improvement_and_small_drift_pass(tmp_path):
    path = tmp_path / "BENCH_SERVICE.json"
    bt.append_entry(path, "service", _service_metrics(p99=100.0), "aaa", "t0")
    bt.append_entry(path, "service", _service_metrics(p99=106.0), "bbb", "t1")
    lines = bt.check_trajectory(path, "service")  # +6%: within tolerance
    assert any("ceiling" in line for line in lines)
    bt.append_entry(path, "service", _service_metrics(p99=60.0), "ccc", "t2")
    bt.check_trajectory(path, "service")  # getting faster is always fine


def test_gate_compares_against_previous_entry_only(tmp_path):
    path = tmp_path / "BENCH_SWEEP.json"
    bt.append_entry(path, "sweep", _sweep_metrics(9.0), "aaa", "t0")
    bt.append_entry(path, "sweep", _sweep_metrics(6.0), "bbb", "t1")
    bt.append_entry(path, "sweep", _sweep_metrics(5.8), "ccc", "t2")
    bt.check_trajectory(path, "sweep")  # 6.0 -> 5.8 is fine; 9.0 is history


# --- malformed ledgers ------------------------------------------------------


def test_invalid_json_rejected_with_clear_error(tmp_path):
    path = tmp_path / "BENCH_SWEEP.json"
    path.write_text("{not json")
    with pytest.raises(bt.TrajectoryError, match="BENCH_SWEEP.json.*not valid JSON"):
        bt.load_trajectory(path, "sweep")


@pytest.mark.parametrize("mutate, message", [
    (lambda d: d.update(schema=99), "unsupported schema"),
    (lambda d: d.update(benchmark="campaign"), "benchmark is 'campaign'"),
    (lambda d: d.update(entries="nope"), "'entries' must be a list"),
    (lambda d: d["entries"][0].pop("commit"), "missing 'commit'"),
    (lambda d: d["entries"][0].pop("recorded"), "missing 'recorded'"),
    (lambda d: d["entries"][0].pop("metrics"), "missing 'metrics'"),
    (lambda d: d["entries"][0]["metrics"].update(batch_speedup="fast"),
     "batch_speedup must be a number"),
])
def test_malformed_ledger_rejected(tmp_path, mutate, message):
    path = tmp_path / "BENCH_SWEEP.json"
    bt.append_entry(path, "sweep", _sweep_metrics(), "aaa", "t")
    data = json.loads(path.read_text())
    mutate(data)
    path.write_text(json.dumps(data))
    with pytest.raises(bt.TrajectoryError, match=message):
        bt.load_trajectory(path, "sweep")


# --- CLI --------------------------------------------------------------------


def _seed_both(root, **overrides):
    bt.append_entry(root / "BENCH_SWEEP.json", "sweep",
                    _sweep_metrics(overrides.get("batch_speedup", 6.0)),
                    "aaa", "t")
    bt.append_entry(root / "BENCH_CAMPAIGN.json", "campaign",
                    _campaign_metrics(overrides.get("wave_over_batch", 1.7)),
                    "aaa", "t")
    bt.append_entry(root / "BENCH_SERVICE.json", "service",
                    _service_metrics(overrides.get("submit_p99_ms", 120.0)),
                    "aaa", "t")
    bt.append_entry(root / "BENCH_STORE.json", "store",
                    _store_metrics(overrides.get("lookup_speedup_100k", 60.0)),
                    "aaa", "t")
    bt.append_entry(root / "BENCH_REMOTE.json", "remote",
                    _remote_metrics(overrides.get("remote_completed_rate", 1.0)),
                    "aaa", "t")


def test_cli_check_ok(tmp_path, capsys):
    _seed_both(tmp_path)
    assert bt.main(["check", "--root", str(tmp_path)]) == 0
    assert "benchmark trajectory OK" in capsys.readouterr().out


def test_cli_check_gate_failure_exits_1(tmp_path, capsys):
    _seed_both(tmp_path, wave_over_batch=1.2)
    assert bt.main(["check", "--root", str(tmp_path)]) == 1
    assert "GATE FAILED" in capsys.readouterr().err


def test_cli_check_malformed_exits_2(tmp_path, capsys):
    _seed_both(tmp_path)
    (tmp_path / "BENCH_CAMPAIGN.json").write_text("[]")
    assert bt.main(["check", "--root", str(tmp_path)]) == 2
    assert "MALFORMED" in capsys.readouterr().err


def test_cli_run_with_injected_measures(tmp_path, monkeypatch):
    """The run subcommand end-to-end, with benchmarks stubbed out."""
    monkeypatch.setitem(bt.MEASURES, "sweep",
                        lambda repeats: _sweep_metrics(6.2))
    monkeypatch.setitem(bt.MEASURES, "campaign",
                        lambda repeats: _campaign_metrics(1.8, 35.0))
    monkeypatch.setitem(bt.MEASURES, "service",
                        lambda repeats: _service_metrics(110.0))
    monkeypatch.setitem(bt.MEASURES, "store",
                        lambda repeats: _store_metrics(55.0))
    monkeypatch.setitem(bt.MEASURES, "remote",
                        lambda repeats: _remote_metrics())
    rc = bt.main(["run", "--root", str(tmp_path), "--commit", "deadbeef",
                  "--recorded", "2026-08-08T00:00:00+00:00"])
    assert rc == 0
    assert bt.main(["check", "--root", str(tmp_path)]) == 0
    # idempotence through the CLI too: same commit, still one entry each
    assert bt.main(["run", "--root", str(tmp_path), "--commit", "deadbeef",
                    "--recorded", "2026-08-08T00:00:00+00:00"]) == 0
    for name, family in (("BENCH_SWEEP.json", "sweep"),
                         ("BENCH_CAMPAIGN.json", "campaign"),
                         ("BENCH_SERVICE.json", "service"),
                         ("BENCH_STORE.json", "store"),
                         ("BENCH_REMOTE.json", "remote")):
        data = bt.load_trajectory(tmp_path / name, family)
        assert [e["commit"] for e in data["entries"]] == ["deadbeef"]


def test_store_floor_fires_below_10x_lookup_speedup(tmp_path):
    path = tmp_path / "BENCH_STORE.json"
    bt.append_entry(path, "store", _store_metrics(speedup_100k=9.5), "aaa", "t")
    with pytest.raises(bt.GateError,
                       match="lookup_speedup_100k.*below the floor"):
        bt.check_trajectory(path, "store")


def test_store_regression_fires_on_speedup_drop(tmp_path):
    path = tmp_path / "BENCH_STORE.json"
    bt.append_entry(path, "store", _store_metrics(60.0), "aaa", "t0")
    bt.append_entry(path, "store", _store_metrics(50.0), "bbb", "t1")
    with pytest.raises(bt.GateError, match="lookup_speedup_100k regressed"):
        bt.check_trajectory(path, "store")  # ~17% drop > 10% tolerance


def test_store_within_tolerance_dip_passes(tmp_path):
    path = tmp_path / "BENCH_STORE.json"
    bt.append_entry(path, "store", _store_metrics(60.0), "aaa", "t0")
    bt.append_entry(path, "store", _store_metrics(56.0), "bbb", "t1")
    lines = bt.check_trajectory(path, "store")
    assert any("lookup_speedup_100k" in line for line in lines)


# --- remote family ----------------------------------------------------------


def test_remote_floor_fires_on_lost_wave(tmp_path):
    path = tmp_path / "BENCH_REMOTE.json"
    bt.append_entry(path, "remote", _remote_metrics(completed=0.9), "aaa", "t")
    with pytest.raises(bt.GateError,
                       match="remote_completed_rate.*below the floor"):
        bt.check_trajectory(path, "remote")


def test_remote_floor_fires_on_double_landed_rows(tmp_path):
    path = tmp_path / "BENCH_REMOTE.json"
    bt.append_entry(path, "remote", _remote_metrics(exactly_once=0.98),
                    "aaa", "t")
    with pytest.raises(bt.GateError,
                       match="exactly_once_rate.*below the floor"):
        bt.check_trajectory(path, "remote")


def test_remote_overhead_ceiling_fires(tmp_path):
    path = tmp_path / "BENCH_REMOTE.json"
    bt.append_entry(path, "remote", _remote_metrics(overhead_ms=300.0),
                    "aaa", "t")
    with pytest.raises(bt.GateError,
                       match="ship_ingest_overhead_ms.*over the ceiling"):
        bt.check_trajectory(path, "remote")


def test_remote_throughput_regression_fires(tmp_path):
    path = tmp_path / "BENCH_REMOTE.json"
    bt.append_entry(path, "remote", _remote_metrics(rows_per_s=300.0),
                    "aaa", "t0")
    bt.append_entry(path, "remote", _remote_metrics(rows_per_s=250.0),
                    "bbb", "t1")
    with pytest.raises(bt.GateError, match="scaleout_rows_per_s regressed"):
        bt.check_trajectory(path, "remote")  # ~17% drop > 10% tolerance


def test_remote_within_tolerance_dip_passes(tmp_path):
    path = tmp_path / "BENCH_REMOTE.json"
    bt.append_entry(path, "remote", _remote_metrics(rows_per_s=300.0,
                                                    overhead_ms=40.0),
                    "aaa", "t0")
    bt.append_entry(path, "remote", _remote_metrics(rows_per_s=280.0,
                                                    overhead_ms=43.0),
                    "bbb", "t1")
    lines = bt.check_trajectory(path, "remote")
    assert any("scaleout_rows_per_s" in line for line in lines)
