"""Tests for benchmark registration, running and reporters."""

import json

import pytest

from repro.bench.registry import BenchmarkRegistry
from repro.bench.reporters import console_report, csv_report, json_report
from repro.bench.runner import run_benchmarks, run_one
from repro.bench.state import BenchState
from repro.errors import BenchmarkError


def _timed(seconds: float):
    def fn(state: BenchState) -> None:
        while state.keep_running():
            state.set_iteration_time(seconds)
        state.set_bytes_processed(state.iterations * 1024)

    return fn


class TestRegistry:
    def test_register_and_filter(self):
        reg = BenchmarkRegistry()
        reg.register("suite/sort", _timed(1.0))
        reg.register("suite/find", _timed(1.0))
        assert len(reg.filter("sort")) == 1
        assert len(reg.filter("suite")) == 2

    def test_duplicate_rejected(self):
        reg = BenchmarkRegistry()
        reg.register("a", _timed(1.0))
        with pytest.raises(BenchmarkError):
            reg.register("a", _timed(1.0))

    def test_decorator(self):
        reg = BenchmarkRegistry()

        @reg.benchmark("deco")
        def bench(state):
            while state.keep_running():
                state.set_iteration_time(1.0)

        assert reg.filter("deco")

    def test_instances_expand_ranges(self):
        reg = BenchmarkRegistry()
        d = reg.register("b", _timed(1.0), ranges=[(8,), (16,)])
        names = [label for label, _ in d.instances()]
        assert names == ["b/8", "b/16"]

    def test_empty_ranges_rejected(self):
        reg = BenchmarkRegistry()
        with pytest.raises(BenchmarkError):
            reg.register("b", _timed(1.0), ranges=[])


class TestRunner:
    def test_run_one(self):
        reg = BenchmarkRegistry()
        d = reg.register("b", _timed(0.5), min_time=2.0)
        result = run_one(d, ())
        assert result.iterations == 4
        assert result.mean_time == 0.5

    def test_run_benchmarks_expands(self):
        reg = BenchmarkRegistry()
        reg.register("b", _timed(1.0), ranges=[(1,), (2,)], min_time=1.0)
        results = run_benchmarks(reg)
        assert [r.name for r in results] == ["b/1", "b/2"]

    def test_pattern_filter(self):
        reg = BenchmarkRegistry()
        reg.register("keep", _timed(1.0), min_time=1.0)
        reg.register("drop", _timed(1.0), min_time=1.0)
        results = run_benchmarks(reg, pattern="keep")
        assert len(results) == 1

    def test_min_time_override(self):
        reg = BenchmarkRegistry()
        d = reg.register("b", _timed(1.0), min_time=10.0)
        result = run_one(d, (), min_time=2.0)
        assert result.iterations == 2


class TestReporters:
    def _results(self):
        reg = BenchmarkRegistry()
        reg.register("bench/x", _timed(0.5), min_time=1.0)
        return run_benchmarks(reg)

    def test_console(self):
        out = console_report(self._results(), title="T")
        assert "bench/x" in out and out.splitlines()[0] == "T"
        assert "Iterations" in out

    def test_csv_parses(self):
        out = csv_report(self._results())
        lines = out.strip().splitlines()
        assert lines[0].startswith("name,")
        assert lines[1].startswith("bench/x,")

    def test_json_schema(self):
        payload = json.loads(json_report(self._results()))
        entry = payload["benchmarks"][0]
        assert entry["name"] == "bench/x"
        assert entry["time_unit"] == "s"
        assert "counters" in entry
