"""Tests for JSON export and phase breakdowns."""

import json

import pytest

from repro import pstl
from repro.analysis.breakdown import breakdown, render_breakdown
from repro.analysis.export import (
    bench_result_to_dict,
    curve_to_dict,
    dump_json,
    experiment_to_dict,
    sweep_to_dict,
)
from repro.analysis.speedup import ScalingCurve
from repro.errors import ConfigurationError
from repro.suite.cases import get_case
from repro.suite.kernels import listing1_kernel
from repro.suite.sweeps import problem_scaling
from repro.suite.wrappers import run_case
from repro.types import FLOAT64


class TestSweepExport:
    def test_round_trips_through_json(self, model_ctx):
        sweep = problem_scaling(
            get_case("reduce"), model_ctx, sizes=[1 << 10, 1 << 14]
        )
        payload = json.loads(dump_json(sweep_to_dict(sweep)))
        assert payload["variable"] == "size"
        assert len(payload["points"]) == 2
        assert payload["points"][0]["x"] == 1 << 10

    def test_unsupported_points_are_null(self, mach_a, gnu):
        from repro.execution.context import ExecutionContext

        ctx = ExecutionContext(mach_a, gnu, threads=8)
        sweep = problem_scaling(get_case("inclusive_scan"), ctx, sizes=[64])
        payload = sweep_to_dict(sweep)
        assert payload["points"][0]["seconds"] is None
        json.loads(dump_json(payload))  # NaN never leaks into the JSON


class TestCurveAndBenchExport:
    def test_curve(self):
        curve = ScalingCurve("x", (1, 2), (4.0, 2.0), baseline_seconds=4.0)
        payload = curve_to_dict(curve)
        assert payload["speedups"] == [1.0, 2.0]
        assert payload["efficiencies"] == [1.0, 1.0]

    def test_bench_result(self, model_ctx):
        result = run_case(get_case("reduce"), model_ctx, 1 << 18, min_time=0.0)
        payload = bench_result_to_dict(result)
        assert payload["iterations"] == result.iterations
        assert payload["counters"]["instructions"] > 0
        json.loads(dump_json(payload))


class TestExperimentExport:
    def test_fig1_exports(self):
        from repro.experiments.fig1 import run_fig1

        payload = experiment_to_dict(run_fig1(size_exp=20))
        text = dump_json(payload)
        parsed = json.loads(text)
        assert parsed["experiment_id"] == "fig1"
        assert parsed["data"]["GCC-TBB/reduce"] > 0

    def test_counter_stats_export(self):
        from repro.experiments.table3 import counters_for_case

        stats = counters_for_case("A", "GCC-TBB", "reduce", calls=1, size_exp=18)
        payload = experiment_to_dict(
            type(
                "R",
                (),
                {"experiment_id": "x", "title": "t", "data": {"s": stats}},
            )()
        )
        assert payload["data"]["s"]["instructions"] > 0


class TestBreakdown:
    def test_shares_sum_near_one(self, model_ctx):
        arr = model_ctx.allocate(1 << 26, FLOAT64)
        report = pstl.inclusive_scan(model_ctx, arr).report
        shares = breakdown(report)
        assert sum(s.share for s in shares) == pytest.approx(1.0, abs=0.02)

    def test_memory_bound_phase_labelled(self, model_ctx):
        arr = model_ctx.allocate(1 << 28, FLOAT64)
        report = pstl.for_each(model_ctx, arr, listing1_kernel(1)).report
        shares = {s.name: s for s in breakdown(report)}
        assert shares["map"].bound_by == "memory"

    def test_compute_bound_phase_labelled(self, model_ctx):
        arr = model_ctx.allocate(1 << 24, FLOAT64)
        report = pstl.for_each(model_ctx, arr, listing1_kernel(1000)).report
        shares = {s.name: s for s in breakdown(report)}
        assert shares["map"].bound_by == "compute"

    def test_fork_join_row_present(self, model_ctx):
        arr = model_ctx.allocate(1 << 20, FLOAT64)
        report = pstl.reduce(model_ctx, arr).report
        names = [s.name for s in breakdown(report)]
        assert "(fork/join)" in names

    def test_gpu_migration_row(self, mach_d):
        from repro.backends import get_backend
        from repro.execution.context import ExecutionContext

        ctx = ExecutionContext(mach_d, get_backend("nvc-cuda"))
        arr = ctx.allocate(1 << 24, FLOAT64)
        report = pstl.reduce(ctx, arr).report
        names = [s.name for s in breakdown(report)]
        assert "(migration)" in names

    def test_render(self, model_ctx):
        arr = model_ctx.allocate(1 << 20, FLOAT64)
        report = pstl.reduce(model_ctx, arr).report
        out = render_breakdown(report, title="reduce")
        assert "Bound by" in out and out.splitlines()[0] == "reduce"

    def test_zero_time_rejected(self):
        from repro.sim.report import Counters, SimReport

        with pytest.raises(ConfigurationError):
            breakdown(SimReport(seconds=0.0, counters=Counters()))
