"""Property-based invariants of the analysis layer (hypothesis).

The example-based tests pin specific numbers; these pin the *algebra*:
speedup/efficiency identities, roofline bound monotonicity and range,
and the breakdown's shares partitioning the invocation exactly.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    Boundedness,
    ScalingCurve,
    analyze_profile,
    breakdown,
    efficiency,
    machine_balance,
    speedup,
    speedup_series,
)
from repro.backends import get_backend
from repro.execution.policy import PAR
from repro.machines import get_machine
from repro.sim.engine import simulate_cpu
from repro.sim.work import ChunkWork, Phase, PhaseKind, WorkProfile
from repro.types import FLOAT64

times = st.floats(min_value=1e-9, max_value=1e6,
                  allow_nan=False, allow_infinity=False)
machines = st.sampled_from(["A", "B", "C"])


@given(baseline=times, seconds=times, threads=st.integers(1, 512))
def test_efficiency_is_speedup_over_threads(baseline, seconds, threads):
    assert efficiency(baseline, seconds, threads) == (
        speedup(baseline, seconds) / threads
    )


@given(a=times, b=times)
def test_speedup_antisymmetry(a, b):
    assert speedup(a, b) * speedup(b, a) == 1.0 or abs(
        speedup(a, b) * speedup(b, a) - 1.0
    ) < 1e-12


@given(baseline=times, series=st.lists(times, min_size=1, max_size=16))
def test_speedup_series_matches_pointwise(baseline, series):
    assert speedup_series(baseline, series) == [
        speedup(baseline, s) for s in series
    ]


@given(
    baseline=times,
    pairs=st.lists(
        st.tuples(st.integers(1, 128), times), min_size=1, max_size=12,
        unique_by=lambda p: p[0],
    ),
)
def test_scaling_curve_identities(baseline, pairs):
    threads = tuple(t for t, _ in pairs)
    seconds = tuple(s for _, s in pairs)
    curve = ScalingCurve(label="p", threads=threads, seconds=seconds,
                         baseline_seconds=baseline)
    speeds = curve.speedups()
    assert curve.max_speedup() == max(speeds)
    for t, s, e in zip(threads, speeds, curve.efficiencies()):
        assert e == s / t


def _profile(instr: float, nbytes: float) -> WorkProfile:
    chunk = ChunkWork(thread=0, elems=1024.0, instr=instr, bytes_read=nbytes)
    phase = Phase(name="w", kind=PhaseKind.PARALLEL, chunks=(chunk,))
    return WorkProfile(alg="for_each", n=1024, elem=FLOAT64, threads=1,
                       policy=PAR, phases=(phase,))


@given(name=machines, instr=st.floats(1e0, 1e12), nbytes=st.floats(1e0, 1e12))
def test_roofline_bound_range_and_classification(name, instr, nbytes):
    machine = get_machine(name)
    point = analyze_profile(machine, _profile(instr, nbytes))
    stream_ratio = machine.stream_bw_allcores / machine.stream_bw_1core
    assert 1.0 <= point.speedup_bound <= max(
        machine.total_cores, stream_ratio
    ) * (1 + 1e-12)
    assert point.balance == machine_balance(machine)
    # the verdict agrees with the point's own coordinates
    if point.boundedness is Boundedness.COMPUTE_BOUND:
        assert point.intensity > point.balance
    elif point.boundedness is Boundedness.MEMORY_BOUND:
        assert point.intensity < point.balance
    else:
        assert point.balance / 1.25 <= point.intensity <= point.balance * 1.25


@given(name=machines, nbytes=st.floats(1e3, 1e9))
def test_roofline_bound_monotone_in_intensity(name, nbytes):
    """More compute per byte never lowers the parallel speedup bound,
    sweeping from deep memory-bound to deep compute-bound."""
    machine = get_machine(name)
    bounds = [
        analyze_profile(machine, _profile(nbytes * scale, nbytes)).speedup_bound
        for scale in (1e-4, 1e-2, 1.0, 1e2, 1e4)
    ]
    assert all(a <= b * (1 + 1e-12) for a, b in zip(bounds, bounds[1:]))
    # the extremes hit the STREAM ratio and the core count
    assert abs(bounds[0] - machine.stream_bw_allcores / machine.stream_bw_1core) < 1e-6 * bounds[0]
    assert abs(bounds[-1] - machine.total_cores) < 1e-6 * bounds[-1]


@given(
    name=machines,
    threads=st.sampled_from([1, 2, 4, 8]),
    instr_per_elem=st.floats(1.0, 1e4),
    bytes_per_elem=st.floats(0.0, 64.0),
)
def test_breakdown_shares_partition_the_invocation(
    name, threads, instr_per_elem, bytes_per_elem
):
    elems = 1 << 16
    per = elems // threads
    chunks = tuple(
        ChunkWork(thread=t, elems=per, instr=per * instr_per_elem,
                  bytes_read=per * bytes_per_elem)
        for t in range(threads)
    )
    profile = WorkProfile(
        alg="for_each", n=elems, elem=FLOAT64, threads=threads, policy=PAR,
        phases=(Phase(name="work", kind=PhaseKind.PARALLEL, chunks=chunks),),
    )
    report = simulate_cpu(get_machine(name), get_backend("GCC-TBB"), profile)
    shares = breakdown(report)
    assert abs(sum(s.share for s in shares) - 1.0) < 1e-9
    assert all(s.share >= 0 for s in shares)
    assert {s.bound_by for s in shares} <= {"compute", "memory", "overhead"}
