"""Tests for speedup/efficiency analysis."""

import pytest

from repro.analysis.speedup import (
    ScalingCurve,
    efficiency,
    max_threads_above_efficiency,
    speedup,
    speedup_series,
)
from repro.errors import ConfigurationError


class TestBasics:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0

    def test_speedup_validates(self):
        with pytest.raises(ConfigurationError):
            speedup(0.0, 1.0)

    def test_efficiency(self):
        assert efficiency(16.0, 2.0, 8) == 1.0
        assert efficiency(16.0, 4.0, 8) == 0.5

    def test_series(self):
        assert speedup_series(10.0, [10.0, 5.0, 2.0]) == [1.0, 2.0, 5.0]


class TestScalingCurve:
    def _curve(self):
        return ScalingCurve(
            label="x",
            threads=(1, 2, 4, 8, 16, 32),
            seconds=(10.0, 5.0, 2.6, 1.5, 1.1, 1.0),
            baseline_seconds=10.0,
        )

    def test_speedups(self):
        s = self._curve().speedups()
        assert s[0] == 1.0
        assert s[-1] == 10.0

    def test_max_speedup(self):
        assert self._curve().max_speedup() == 10.0

    def test_efficiencies_decreasing_here(self):
        e = self._curve().efficiencies()
        assert e[0] == 1.0
        assert e[-1] == pytest.approx(10.0 / 32)

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            ScalingCurve("x", (1, 2), (1.0,), 1.0)


class TestTable6Statistic:
    def test_max_threads_above_threshold(self):
        curve = ScalingCurve(
            label="x",
            threads=(1, 2, 4, 8, 16, 32),
            seconds=(10.0, 5.0, 2.6, 1.5, 1.1, 1.0),
            baseline_seconds=10.0,
        )
        # efficiencies: 1, 1, .96, .83, .57, .31 -> last >= 0.7 is 8 threads
        assert max_threads_above_efficiency(curve, 0.70) == 8

    def test_returns_one_when_never_efficient(self):
        curve = ScalingCurve(
            label="x", threads=(1, 2), seconds=(20.0, 15.0), baseline_seconds=10.0
        )
        assert max_threads_above_efficiency(curve) == 1

    def test_threshold_validated(self):
        curve = ScalingCurve("x", (1,), (1.0,), 1.0)
        with pytest.raises(ConfigurationError):
            max_threads_above_efficiency(curve, 0.0)

    def test_non_monotone_curves_handled(self):
        # Efficiency can recover (NUMA cliffs); take the max passing count.
        curve = ScalingCurve(
            label="x",
            threads=(1, 2, 4, 8),
            seconds=(10.0, 9.0, 3.4, 1.7),
            baseline_seconds=10.0,
        )
        # efficiencies: 1.0, 0.56, 0.74, 0.74 -> 8
        assert max_threads_above_efficiency(curve, 0.70) == 8
