"""Tests for the roofline analysis module."""

import pytest

from repro import pstl
from repro.analysis.roofline import (
    Boundedness,
    analyze_profile,
    machine_balance,
)
from repro.errors import ConfigurationError
from repro.suite.kernels import listing1_kernel
from repro.types import FLOAT64


class TestMachineBalance:
    def test_parallel_balance_positive(self, mach_a):
        assert machine_balance(mach_a) > 0

    def test_sequential_balance_lower(self, mach_a):
        # One core has relatively more bandwidth per instruction.
        assert machine_balance(mach_a, parallel=False) < machine_balance(mach_a)


class TestClassification:
    def test_for_each_k1_memory_bound(self, mach_a, model_ctx):
        arr = model_ctx.allocate(1 << 24, FLOAT64)
        prof = pstl.for_each(model_ctx, arr, listing1_kernel(1)).profile
        point = analyze_profile(mach_a, prof)
        assert point.boundedness is Boundedness.MEMORY_BOUND

    def test_for_each_k1000_compute_bound(self, mach_a, model_ctx):
        arr = model_ctx.allocate(1 << 24, FLOAT64)
        prof = pstl.for_each(model_ctx, arr, listing1_kernel(1000)).profile
        point = analyze_profile(mach_a, prof)
        assert point.boundedness is Boundedness.COMPUTE_BOUND

    def test_reduce_memory_bound(self, mach_a, model_ctx):
        arr = model_ctx.allocate(1 << 24, FLOAT64)
        prof = pstl.reduce(model_ctx, arr).profile
        point = analyze_profile(mach_a, prof)
        assert point.boundedness is Boundedness.MEMORY_BOUND

    def test_no_traffic_is_compute_bound(self, mach_a):
        from repro.execution.policy import PAR
        from repro.sim.work import ChunkWork, Phase, PhaseKind, WorkProfile

        prof = WorkProfile(
            alg="x",
            n=100,
            elem=FLOAT64,
            threads=1,
            policy=PAR,
            phases=(
                Phase(
                    name="p",
                    kind=PhaseKind.SEQUENTIAL,
                    chunks=(ChunkWork(thread=0, elems=100, instr=1000),),
                ),
            ),
            regions=0,
        )
        point = analyze_profile(mach_a, prof)
        assert point.boundedness is Boundedness.COMPUTE_BOUND
        assert point.speedup_bound == mach_a.total_cores

    def test_slack_validated(self, mach_a, model_ctx):
        arr = model_ctx.allocate(1 << 10, FLOAT64)
        prof = pstl.reduce(model_ctx, arr).profile
        with pytest.raises(ConfigurationError):
            analyze_profile(mach_a, prof, slack=0.9)


class TestSpeedupBound:
    def test_bound_between_stream_ratio_and_cores(self, mach_a, model_ctx):
        arr = model_ctx.allocate(1 << 24, FLOAT64)
        prof = pstl.reduce(model_ctx, arr).profile
        bound = analyze_profile(mach_a, prof).speedup_bound
        assert bound <= mach_a.total_cores + 1e-9
        assert bound >= 1.0

    def test_simulator_respects_bound(self, mach_a, model_ctx, seq_ctx):
        """The cost engine never beats the analytic roofline bound (with
        slack for the turbo-clocked baseline and codegen factors)."""
        for k in (1, 1000):
            kernel = listing1_kernel(k)
            n = 1 << 28
            prof = pstl.for_each(
                model_ctx, model_ctx.allocate(n, FLOAT64), kernel
            ).profile
            bound = analyze_profile(mach_a, prof).speedup_bound
            ts = pstl.for_each(seq_ctx, seq_ctx.allocate(n, FLOAT64), kernel).seconds
            tp = pstl.for_each(
                model_ctx, model_ctx.allocate(n, FLOAT64), kernel
            ).seconds
            assert ts / tp <= bound * 1.6

    def test_compute_bound_work_bounded_by_cores(self, mach_c):
        from repro.backends import get_backend
        from repro.execution.context import ExecutionContext

        ctx = ExecutionContext(mach_c, get_backend("gcc-tbb"), threads=128)
        arr = ctx.allocate(1 << 24, FLOAT64)
        prof = pstl.for_each(ctx, arr, listing1_kernel(1000)).profile
        bound = analyze_profile(mach_c, prof).speedup_bound
        assert bound == pytest.approx(128, rel=0.05)
