"""Query layer: campaign outcomes reproduce the legacy grid values."""

from __future__ import annotations

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.query import (
    bench_rows,
    cell_curves,
    efficiency_grid,
    filter_results,
    speedup_grid,
    store_query,
)
from repro.campaign.store import DONE, NA, ResultStore
from repro.experiments.table5 import cell_speedup, table5_campaign_spec
from repro.experiments.table6 import (
    EFFICIENCY_THRESHOLD,
    cell_max_threads,
    table6_campaign_spec,
)

SIZE_EXP = 14


@pytest.fixture(scope="module")
def table5_outcome():
    return run_campaign(table5_campaign_spec(SIZE_EXP))


@pytest.fixture(scope="module")
def table6_outcome():
    return run_campaign(table6_campaign_spec(SIZE_EXP))


def test_speedup_grid_matches_single_cell_path(table5_outcome):
    grid = speedup_grid(table5_outcome)
    assert len(grid) == 90
    # exact equality: the campaign runs the same simulator on the same points
    assert grid["GCC-TBB/reduce/A"] == cell_speedup("A", "GCC-TBB", "reduce", SIZE_EXP)
    assert grid["NVC-OMP/sort/C"] == cell_speedup("C", "NVC-OMP", "sort", SIZE_EXP)
    assert grid["GCC-GNU/inclusive_scan/B"] is None  # capability N/A
    assert grid["ICC-TBB/reduce/B"] is None  # ICC absent on Mach B


def test_full_grid_equality_with_legacy(table5_outcome):
    grid = speedup_grid(table5_outcome)
    for key, value in grid.items():
        backend, case, machine = key.split("/")
        legacy = cell_speedup(machine, backend, case, SIZE_EXP)
        assert value == legacy, key


def test_efficiency_grid_matches_single_cell_path(table6_outcome):
    grid = efficiency_grid(table6_outcome, EFFICIENCY_THRESHOLD)
    for key, value in grid.items():
        backend, case, machine = key.split("/")
        legacy = cell_max_threads(machine, backend, case, SIZE_EXP)
        assert value == legacy, key


def test_cell_curves_shape(table6_outcome):
    curves = cell_curves(table6_outcome)
    curve = curves["GCC-TBB/reduce/C"]
    # Mach C sweeps 1..128 in powers of two
    assert curve.threads == (1, 2, 4, 8, 16, 32, 64, 128)
    assert len(curve.seconds) == 8
    assert curve.baseline_seconds > 0
    assert curve.scaling_curve().threads == curve.threads


def test_filter_results(table5_outcome):
    pairs = filter_results(table5_outcome, machine="a", backend="gcc-tbb")
    assert len(pairs) == 6  # six cases
    assert all(t.point.machine == "A" for t, _ in pairs)
    nas = filter_results(table5_outcome, status=NA)
    assert len(nas) == 9
    everything = filter_results(table5_outcome, kind=None)
    assert len(everything) == 108


def test_bench_rows_shape(table5_outcome):
    pairs = filter_results(table5_outcome, machine="A", case="reduce", status=DONE)
    rows = bench_rows(pairs)
    assert rows
    for row in rows:
        assert "reduce<" in row.name and "@MachA" in row.name
        assert row.iterations == 1
        assert row.mean_time > 0


def test_store_shared_across_specs_reuses_baselines():
    """Table 5 and Table 6 share (machine, case, n) baselines via the cache."""
    store = ResultStore(None)
    run_campaign(table5_campaign_spec(SIZE_EXP), store=store)
    before = store.writes
    second = run_campaign(table6_campaign_spec(SIZE_EXP), store=store)
    # every Table 6 baseline was already cached by Table 5
    assert second.stats.cache_hits >= len(second.plan.baselines)
    assert store.writes > before  # but the thread sweep itself was new


def test_store_query_walks_the_index_not_the_objects(tmp_path):
    store = ResultStore(tmp_path / "cache")
    run_campaign(table5_campaign_spec(SIZE_EXP), store=store)

    rows = store_query(store, machine="a", case="reduce", status=DONE)
    assert rows
    for row in rows:
        assert row["point"]["machine"] == "A"  # matching is case-insensitive
        assert row["point"]["case"] == "reduce"
        assert row["status"] == DONE and row["seconds"] > 0
        assert row["path"] == f"objects/{row['key'][:2]}/{row['key']}.json"
        assert (tmp_path / "cache" / row["path"]).exists()
    assert [r["key"] for r in rows] == sorted(
        (r["key"] for r in rows), key=lambda k: (k[:2], k))

    # the index covers everything a plan replay answers (plus shared
    # baseline points the plan does not surface as task pairs)
    outcome = run_campaign(table5_campaign_spec(SIZE_EXP), store=store)
    pairs = filter_results(outcome, machine="A", case="reduce", status=DONE)
    keys = {row["key"] for row in rows}
    assert {store.key_for(task.point) for task, _ in pairs} <= keys

    assert store_query(store, backend="no-such-backend") == []


def test_store_query_requires_an_index():
    from repro.errors import CampaignError

    with pytest.raises(CampaignError):
        store_query(ResultStore(None))
