"""Planner: deterministic expansion, pruning, baseline dedup."""

from __future__ import annotations

import pytest

from repro.campaign.plan import BASELINE, MEASURE, plan_campaign, task_id_for
from repro.campaign.spec import CampaignSpec
from repro.errors import CampaignError
from repro.experiments.table5 import table5_campaign_spec


def tiny_spec(**kwargs) -> CampaignSpec:
    base = dict(name="tiny", machines=("A",), backends=("GCC-TBB",),
                cases=("reduce",), size_exps=(12,))
    base.update(kwargs)
    return CampaignSpec(**base)


def test_plan_is_deterministic():
    spec = table5_campaign_spec(16)
    a = plan_campaign(spec)
    b = plan_campaign(spec)
    assert [t.task_id for t in a.tasks] == [t.task_id for t in b.tasks]
    assert [t.point for t in a.tasks] == [t.point for t in b.tasks]


def test_table5_plan_shape():
    """5 backends x 6 cases x 3 machines = 90 measures + 18 shared baselines."""
    plan = plan_campaign(table5_campaign_spec(16))
    assert len(plan.tasks) == 108
    assert len(plan.baselines) == 18  # one per (machine, case)
    assert len(plan.measures) == 90
    # GNU lacks parallel inclusive_scan (3 machines) + ICC absent on B (6 cases)
    assert len(plan.pruned) == 9
    reasons = {t.pruned for t in plan.pruned}
    assert any("Mach B" in r for r in reasons)
    assert any("inclusive_scan" in t.point.case for t in plan.pruned)


def test_baselines_are_shared():
    plan = plan_campaign(table5_campaign_spec(16))
    baseline_ids = {t.task_id for t in plan.baselines}
    for measure in plan.measures:
        if measure.pruned is None:
            assert measure.baseline_id in baseline_ids
            assert measure.depends_on == (measure.baseline_id,)
    # every non-pruned measure on Mach A/reduce shares ONE denominator
    reduce_a = [t for t in plan.measures
                if t.point.machine == "A" and t.point.case == "reduce"
                and t.pruned is None]
    assert len({t.baseline_id for t in reduce_a}) == 1


def test_threads_none_resolves_to_machine_cores():
    plan = plan_campaign(tiny_spec(machines=("A", "C")))
    by_machine = {t.point.machine: t.point.threads for t in plan.measures}
    assert by_machine == {"A": 32, "C": 128}


def test_threads_wider_than_machine_are_skipped():
    plan = plan_campaign(tiny_spec(threads=(16, 64)))  # Mach A has 32 cores
    assert [t.point.threads for t in plan.measures] == [16]


def test_baseline_runs_single_threaded():
    plan = plan_campaign(tiny_spec())
    for task in plan.baselines:
        assert task.point.backend == "GCC-SEQ"
        assert task.point.threads == 1


def test_excluded_pairs_are_pruned_not_executed():
    plan = plan_campaign(tiny_spec(exclude=(("A", "GCC-TBB"),)))
    assert len(plan.runnable) == 0  # no baseline needed for a pruned cell
    assert len(plan.pruned) == 1
    assert plan.pruned[0].baseline_id is None


def test_waves_order_baselines_first():
    plan = plan_campaign(table5_campaign_spec(16))
    waves = list(plan.waves())
    assert len(waves) == 2
    assert {t.kind for t in waves[0]} == {BASELINE}
    assert {t.kind for t in waves[1]} == {MEASURE}


def test_task_ids_are_content_addressed():
    plan = plan_campaign(tiny_spec())
    for task in plan.tasks:
        assert task.task_id == task_id_for(task.point)
        assert len(task.task_id) == 16


def test_unknown_names_fail_at_plan_time():
    with pytest.raises(CampaignError):
        plan_campaign(tiny_spec(machines=("Z",)))
    with pytest.raises(CampaignError):
        plan_campaign(tiny_spec(backends=("GCC-FOO",)))


def test_non_sequential_baseline_rejected():
    with pytest.raises(CampaignError, match="not sequential"):
        plan_campaign(tiny_spec(baseline_backend="GCC-TBB"))
