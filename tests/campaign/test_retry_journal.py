"""Retry + journal interaction: failure -> retry -> success leaves no scars.

A point that times out or fails and is later retried successfully must
end up indistinguishable from one that succeeded first try: bit-identical
seconds, exactly one terminal journal row, and a resume that does not
re-execute it. These tests drive the failure through the batch executor
(curve-at-a-time submissions with per-point scalar retries) as well as
the pool plumbing, complementing the scalar-path injection tests in
``test_executor.py``.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.campaign import executor as executor_mod
from repro.campaign.executor import run_campaign
from repro.campaign.plan import plan_campaign
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import DONE, FAILED, NA, Journal

from tests.campaign.test_executor import tiny_spec


def _failed(payloads):
    return [
        {"status": FAILED, "seconds": None, "error": "injected curve failure"}
        for _ in payloads
    ]


def test_curve_failure_retries_scalar_and_recovers(monkeypatch):
    """Every point of a failed curve retries through execute_point."""
    monkeypatch.setattr(executor_mod, "execute_curve", _failed)
    outcome = run_campaign(tiny_spec(), retries=1, wave=False)
    assert outcome.stats.failed == 0
    executed = [r for r in outcome.results.values() if not r.cached]
    assert executed
    for result in executed:
        if result.status == DONE:
            assert result.attempts == 2  # curve failure + scalar retry

    clean = run_campaign(tiny_spec(), batch=False)
    for tid, result in clean.results.items():
        assert outcome.results[tid].status == result.status
        assert outcome.results[tid].seconds == result.seconds  # no stale state


def test_recovered_points_journal_single_terminal_row(tmp_path, monkeypatch):
    """Retry happens before journaling: one row per task, all done."""
    monkeypatch.setattr(executor_mod, "execute_curve", _failed)
    cdir = tmp_path / "camp"
    outcome = run_campaign(tiny_spec(), campaign_dir=cdir, retries=1, wave=False)
    assert outcome.stats.failed == 0
    entries = Journal(cdir / "journal.jsonl").entries()
    per_task: dict[str, list[dict]] = {}
    for entry in entries:
        per_task.setdefault(entry["task_id"], []).append(entry)
    assert set(per_task) == set(outcome.results)
    for tid, rows in per_task.items():
        assert len(rows) == 1, f"{tid}: duplicate journal rows"
        assert rows[0]["status"] == outcome.results[tid].status


def test_journaled_failure_resumes_to_success_without_duplicates(
    tmp_path, monkeypatch
):
    """timeout/failure -> journaled FAILED -> resume retries -> one DONE row."""
    cdir = tmp_path / "camp"

    def timed_out(payloads):
        return [
            {"status": FAILED, "seconds": None, "error": "timeout after 1s"}
            for _ in payloads
        ]

    monkeypatch.setattr(executor_mod, "execute_curve", timed_out)
    first = run_campaign(tiny_spec(), campaign_dir=cdir, retries=0, wave=False)
    assert first.stats.failed == first.stats.executed > 0
    monkeypatch.undo()

    resumed = run_campaign(tiny_spec(), campaign_dir=cdir, resume=True)
    assert resumed.stats.failed == 0
    assert resumed.stats.executed == first.stats.failed  # only failures re-ran

    clean = run_campaign(tiny_spec())
    for tid, result in clean.results.items():
        assert resumed.results[tid].status == result.status
        assert resumed.results[tid].seconds == result.seconds

    per_task: dict[str, list[str]] = {}
    for entry in Journal(cdir / "journal.jsonl").entries():
        per_task.setdefault(entry["task_id"], []).append(entry["status"])
    for tid, statuses in per_task.items():
        terminal = [s for s in statuses if s != FAILED]
        assert len(terminal) == 1, f"{tid}: duplicate terminal rows {statuses}"
        assert statuses[-1] == terminal[0]  # failure rows precede the recovery

    again = run_campaign(tiny_spec(), campaign_dir=cdir, resume=True)
    assert again.stats.executed == 0  # fully journaled; nothing re-runs


def _wave_tasks():
    plan = plan_campaign(tiny_spec())
    return [t for wave in plan.waves() for t in wave]


def test_pool_batch_timeout_fails_all_pending_points(monkeypatch):
    """A curve stuck past the budget marks each of its points failed."""
    monkeypatch.setattr(
        executor_mod, "execute_curve",
        lambda payloads: time.sleep(0.5) or [],
    )
    tasks = _wave_tasks()
    with ThreadPoolExecutor(max_workers=2) as pool:
        payloads = executor_mod._execute_pool_batch(
            tasks, pool, timeout=0.05, retries=0
        )
    assert set(payloads) == {t.task_id for t in tasks}
    for payload in payloads.values():
        assert payload["status"] == FAILED
        assert "timeout" in payload["error"]


def test_pool_batch_curve_exception_retries_each_point(monkeypatch):
    """A crashing curve future degrades to per-point scalar retries."""

    def boom(payloads):
        raise RuntimeError("worker died")

    monkeypatch.setattr(executor_mod, "execute_curve", boom)
    tasks = _wave_tasks()
    with ThreadPoolExecutor(max_workers=2) as pool:
        payloads = executor_mod._execute_pool_batch(
            tasks, pool, timeout=None, retries=1
        )
    assert set(payloads) == {t.task_id for t in tasks}
    for task in tasks:
        payload = payloads[task.task_id]
        assert payload["status"] in (DONE, NA)
        assert payload["attempts"] == 2
