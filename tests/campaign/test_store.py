"""Store: content addressing, fingerprint invalidation, journal tolerance."""

from __future__ import annotations

import json

import pytest

from repro.campaign.fingerprint import model_fingerprint
from repro.campaign.store import (
    DONE,
    FAILED,
    Journal,
    NA,
    PointResult,
    ResultStore,
    cache_key,
    record_checksum,
)
from repro.campaign.spec import PointSpec
from repro.errors import CampaignError


POINT = PointSpec(machine="A", backend="GCC-TBB", case="reduce",
                  size_exp=12, threads=32)


def test_cache_key_depends_on_point_and_fingerprint():
    other = PointSpec(machine="A", backend="GCC-TBB", case="reduce",
                      size_exp=12, threads=16)
    assert cache_key(POINT, "f1") == cache_key(POINT, "f1")
    assert cache_key(POINT, "f1") != cache_key(other, "f1")
    assert cache_key(POINT, "f1") != cache_key(POINT, "f2")


def test_model_fingerprint_is_stable():
    assert model_fingerprint() == model_fingerprint()
    assert len(model_fingerprint()) == 20


def test_disk_roundtrip(tmp_path):
    store = ResultStore(tmp_path / "cache")
    payload = {"status": DONE, "seconds": 1.5, "error": None}
    key = store.put(POINT, payload)
    assert store.load_key(key)["result"] == payload
    assert store.get(POINT)["result"] == payload
    # objects are fanned out under a two-hex-digit level
    assert (tmp_path / "cache" / "objects" / key[:2] / f"{key}.json").exists()


def test_memory_store_roundtrip():
    store = ResultStore(None)
    store.put(POINT, {"status": DONE, "seconds": 2.0, "error": None})
    result = store.result_for("tid", POINT)
    assert result.seconds == 2.0
    assert result.cached is True
    assert store.hits == 1 and store.writes == 1


def test_fingerprint_change_invalidates(tmp_path):
    old = ResultStore(tmp_path / "cache", fingerprint="model-v1")
    old.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})
    new = ResultStore(tmp_path / "cache", fingerprint="model-v2")
    assert new.get(POINT) is None
    assert new.misses == 1


def test_corrupt_object_is_a_miss(tmp_path):
    store = ResultStore(tmp_path / "cache")
    key = store.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})
    path = tmp_path / "cache" / "objects" / key[:2] / f"{key}.json"
    path.write_text("{torn", encoding="utf-8")
    assert store.get(POINT) is None


def test_cached_payload_excludes_run_bookkeeping():
    fresh = PointResult(task_id="t", point=POINT, status=DONE, seconds=3.0,
                        cached=False, attempts=2)
    served = PointResult(task_id="t", point=POINT, status=DONE, seconds=3.0,
                         cached=True, attempts=0)
    assert fresh.payload() == served.payload()


def test_journal_append_and_replay(tmp_path):
    journal = Journal(tmp_path / "journal.jsonl")
    journal.append({"task_id": "a", "status": DONE, "seconds": 1.0})
    journal.append({"task_id": "b", "status": NA})
    assert [e["task_id"] for e in journal.entries()] == ["a", "b"]
    done = journal.completed_ids()
    assert set(done) == {"a", "b"}


def test_journal_tolerates_torn_tail(tmp_path):
    journal = Journal(tmp_path / "journal.jsonl")
    journal.append({"task_id": "a", "status": DONE, "seconds": 1.0})
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write('{"task_id": "b", "sta')  # killed mid-write
    assert [e["task_id"] for e in journal.entries()] == ["a"]
    assert set(journal.completed_ids()) == {"a"}


def test_journal_failed_entries_are_not_terminal(tmp_path):
    journal = Journal(tmp_path / "journal.jsonl")
    journal.append({"task_id": "a", "status": DONE, "seconds": 1.0})
    journal.append({"task_id": "b", "status": FAILED, "error": "boom"})
    assert set(journal.completed_ids()) == {"a"}  # b will be retried on resume
    # a later success supersedes the failure
    journal.append({"task_id": "b", "status": DONE, "seconds": 2.0})
    assert set(journal.completed_ids()) == {"a", "b"}


def test_missing_journal_is_empty(tmp_path):
    journal = Journal(tmp_path / "nope.jsonl")
    assert journal.entries() == []
    assert journal.completed_ids() == {}


def test_append_after_torn_tail_heals_the_line(tmp_path):
    # regression: appending to a newline-less torn tail used to fuse the
    # torn fragment and the new entry into one unparseable line
    journal = Journal(tmp_path / "journal.jsonl")
    journal.append({"task_id": "a", "status": DONE, "seconds": 1.0})
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write('{"task_id": "b", "sta')  # killed mid-write, no newline
    journal.append({"task_id": "c", "status": DONE, "seconds": 3.0})
    assert [e["task_id"] for e in journal.entries()] == ["a", "c"]
    assert journal.torn_lines() == 1


def test_result_for_tolerates_schema_drifted_records(tmp_path):
    # regression: a record whose `result` slice comes from another schema
    # version used to raise KeyError from result_for; it must be a miss
    store = ResultStore(tmp_path / "cache")
    key = store.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})
    path = store.object_path(key)
    record = json.loads(path.read_text(encoding="utf-8"))
    record["result"] = {"note": "written by a newer schema"}
    record["checksum"] = record_checksum(record)  # intact, just drifted
    path.write_text(json.dumps(record, sort_keys=True), encoding="utf-8")

    assert store.result_for("tid", POINT) is None
    assert store.misses == 1 and store.quarantined == 0  # a miss, not damage
    scan = store.scan()
    assert scan.drifted == 1 and scan.errors == 0


def test_checksum_mismatch_is_quarantined_not_served(tmp_path):
    store = ResultStore(tmp_path / "cache")
    key = store.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})
    path = store.object_path(key)
    record = json.loads(path.read_text(encoding="utf-8"))
    record["result"]["seconds"] = 99.0  # tampered value, stale checksum
    path.write_text(json.dumps(record, sort_keys=True), encoding="utf-8")

    assert store.get(POINT) is None
    assert store.quarantined == 1
    assert not path.exists()  # moved aside, evidence preserved
    assert (tmp_path / "cache" / "quarantine" / f"{key}.json").exists()


def test_legacy_records_without_checksum_are_accepted(tmp_path):
    store = ResultStore(tmp_path / "cache")
    key = store.put(POINT, {"status": DONE, "seconds": 2.5, "error": None})
    path = store.object_path(key)
    record = json.loads(path.read_text(encoding="utf-8"))
    del record["checksum"]  # written before checksums existed
    path.write_text(json.dumps(record, sort_keys=True), encoding="utf-8")

    result = store.result_for("tid", POINT)
    assert result is not None and result.seconds == 2.5
    scan = store.scan()
    assert scan.legacy == 1 and scan.errors == 0


def test_scan_flags_misfiled_and_mismatched_objects(tmp_path):
    store = ResultStore(tmp_path / "cache")
    key = store.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})
    record = json.loads(store.object_path(key).read_text(encoding="utf-8"))
    # file the record under a name that is not its content hash
    fake = "ab" + "0" * (len(key) - 2)
    record["key"] = fake
    record["checksum"] = record_checksum(record)
    misfiled = store.object_path(fake)
    misfiled.parent.mkdir(parents=True, exist_ok=True)
    misfiled.write_text(json.dumps(record, sort_keys=True), encoding="utf-8")

    scan = store.scan()
    reasons = dict(scan.corrupt)
    assert reasons == {fake: "content hash != object name"}

    scan = store.scan(quarantine=True)
    assert scan.quarantined == 1
    assert not misfiled.exists()
    assert store.scan().errors == 0  # a second audit comes back clean


# -- sharded index (v2 layout) ----------------------------------------------


def _same_shard_point(store, prefix, *, skip=()):
    """A point whose cache key lands in shard ``prefix`` (and is not in
    ``skip``) -- scans the thread axis until the content hash cooperates."""
    for threads in range(1, 20_000):
        point = PointSpec(machine="A", backend="GCC-TBB", case="reduce",
                          size_exp=12, threads=threads)
        key = cache_key(point, store.fingerprint)
        if key[:2] == prefix and key not in skip:
            return point, key
    raise AssertionError(f"no key under shard {prefix!r} found")


def test_fresh_disk_store_is_indexed(tmp_path):
    store = ResultStore(tmp_path / "cache")
    assert store.indexed is True
    assert (tmp_path / "cache" / "STORE_META.json").exists()
    key = store.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})
    row = store.index.lookup(key)
    record = json.loads(store.object_path(key).read_text(encoding="utf-8"))
    assert row["checksum"] == record["checksum"]
    assert row["path"] == f"objects/{key[:2]}/{key}.json"
    assert row["status"] == DONE and row["seconds"] == 1.0
    assert store.count_objects() == 1


def test_preexisting_flat_store_reads_as_v1_unindexed(tmp_path):
    store = ResultStore(tmp_path / "cache")
    store.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})
    (tmp_path / "cache" / "STORE_META.json").unlink()
    for path in sorted((tmp_path / "cache" / "index").glob("*")):
        path.unlink()

    v1 = ResultStore(tmp_path / "cache")
    assert v1.indexed is False
    assert v1.get(POINT)["result"]["seconds"] == 1.0  # reads still work
    assert v1.count_objects() == 1  # tree-walk fallback
    scan = v1.scan()
    assert scan.ok == 1 and scan.errors == 0
    assert scan.unindexed == 0  # no index, no cross-check
    with pytest.raises(CampaignError):
        v1.compact()


def test_memory_store_has_no_index_to_compact():
    store = ResultStore(None)
    store.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})
    assert store.indexed is False
    assert store.count_objects() == 1
    with pytest.raises(CampaignError):
        store.compact()


def test_quarantine_drops_the_index_row(tmp_path):
    store = ResultStore(tmp_path / "cache")
    key = store.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})
    assert store.count_objects() == 1
    store.corrupt(key, at=0.5)
    assert store.get(POINT) is None  # quarantining read
    assert store.index.lookup(key) is None
    assert store.count_objects() == 0
    report = store.compact()
    assert report.quarantined_dropped == 1 and report.rows_kept == 0


def test_requarantine_does_not_overwrite_earlier_evidence(tmp_path):
    # Regression: heal-recompute-corrupt cycles used to clobber the first
    # quarantined object because the destination name was always <key>.json.
    store = ResultStore(tmp_path / "cache")
    key = store.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})
    store.corrupt(key, at=0.25)
    first_bytes = store.object_path(key).read_bytes()
    assert store.get(POINT) is None  # first quarantine

    key2 = store.put(POINT, {"status": DONE, "seconds": 2.0, "error": None})
    assert key2 == key  # same point, same content address
    store.corrupt(key, at=0.75)
    second_bytes = store.object_path(key).read_bytes()
    assert store.get(POINT) is None  # second quarantine, same key

    qdir = tmp_path / "cache" / "quarantine"
    assert (qdir / f"{key}.json").read_bytes() == first_bytes
    assert (qdir / f"{key}.1.json").read_bytes() == second_bytes
    assert store.quarantined == 2


def test_memory_requarantine_preserves_both_records():
    store = ResultStore(None)
    key = store.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})
    store.quarantine(key, "first")
    store.put(POINT, {"status": DONE, "seconds": 2.0, "error": None})
    store.quarantine(key, "second")
    parked = store._memory_quarantine
    assert set(parked) == {key, f"{key}.1"}
    assert parked[key]["result"]["seconds"] == 1.0
    assert parked[f"{key}.1"]["result"]["seconds"] == 2.0


def test_corrupt_clamps_out_of_range_at(tmp_path):
    store = ResultStore(tmp_path / "cache")
    key = store.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})
    pristine = store.object_path(key).read_bytes()
    store.corrupt(key, at=-5.0)  # used to raise / index before the file
    assert store.object_path(key).read_bytes() != pristine
    store.corrupt(key, at=-5.0)  # XOR is an involution at the same spot
    assert store.object_path(key).read_bytes() == pristine
    store.corrupt(key, at=7.5)  # clamps to the final byte
    assert store.object_path(key).read_bytes() != pristine

    # empty and missing objects are no-ops, never errors
    store.object_path(key).write_bytes(b"")
    store.corrupt(key, at=-1.0)
    assert store.object_path(key).read_bytes() == b""
    store.corrupt("ff" + "0" * 62, at=2.0)


def test_tear_tail_clamps_out_of_range_at(tmp_path):
    journal = Journal(tmp_path / "journal.jsonl")
    journal.append({"task_id": "a", "status": DONE})
    size = journal.path.stat().st_size
    # Regression: a negative ``at`` used to *grow* the file -- truncate
    # past EOF pads with zero bytes the reader then chokes on.
    assert journal.tear_tail(at=-3.0) == 1
    assert journal.path.stat().st_size == size - 1
    assert journal.tear_tail(at=99.0) == size - 1  # clamps to the whole line
    assert journal.path.stat().st_size == 0
    assert journal.tear_tail(at=-1.0) == 0  # empty journal: no-op
    assert journal.tear_tail(at=0.5) == 0
    assert Journal(tmp_path / "missing.jsonl").tear_tail(at=-2.0) == 0


def test_legacy_and_v2_records_share_a_shard_without_double_count(tmp_path):
    # Satellite: one pre-checksum (legacy) record and one current record
    # forced into the *same* shard -- the scan must flag, not quarantine,
    # and repeated audits must not double-count either of them.
    store = ResultStore(tmp_path / "cache")
    key = store.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})
    sibling, key2 = _same_shard_point(store, key[:2], skip={key})
    store.put(sibling, {"status": DONE, "seconds": 2.0, "error": None})
    path = store.object_path(key2)
    record = json.loads(path.read_text(encoding="utf-8"))
    del record["checksum"]  # written before checksums existed
    path.write_text(json.dumps(record, sort_keys=True), encoding="utf-8")

    for _ in range(2):  # audit twice: the counts must be stable
        scan = store.scan(quarantine=True)
        assert scan.objects == 2
        assert scan.ok == 1 and scan.legacy == 1
        assert scan.errors == 0 and scan.quarantined == 0
        # the index still holds the put-time checksum: advisory, not fatal
        assert scan.index_stale == 1 and scan.unindexed == 0
    assert path.exists()  # the legacy record was never quarantined
    assert store.result_for("tid", sibling).seconds == 2.0
    assert store.result_for("tid", POINT).seconds == 1.0


def test_scan_cross_checks_index_against_tree(tmp_path):
    store = ResultStore(tmp_path / "cache")
    key = store.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})

    # an object dropped in by hand has no index row -> unindexed
    other = PointSpec(machine="B", backend="GCC-TBB", case="reduce",
                      size_exp=12, threads=2)
    okey = cache_key(other, store.fingerprint)
    record = {"key": okey, "point": other.to_dict(),
              "fingerprint": store.fingerprint,
              "result": {"status": DONE, "seconds": 3.0, "error": None}}
    record["checksum"] = record_checksum(record)
    opath = store.object_path(okey)
    opath.parent.mkdir(parents=True, exist_ok=True)
    opath.write_text(json.dumps(record, sort_keys=True), encoding="utf-8")

    scan = store.scan()
    assert scan.unindexed == 1 and scan.index_stale == 0
    assert scan.errors == 0
    assert "1 unindexed" in scan.summary()

    # a row whose object vanished out-of-band -> index-stale
    store.object_path(key).unlink()
    scan = store.scan()
    assert scan.index_stale == 1 and scan.unindexed == 1
    assert "1 index-stale" in scan.summary()

    # a clean store keeps the short summary
    clean = ResultStore(tmp_path / "clean")
    clean.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})
    assert "unindexed" not in clean.scan().summary()
