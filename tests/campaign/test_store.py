"""Store: content addressing, fingerprint invalidation, journal tolerance."""

from __future__ import annotations

from repro.campaign.fingerprint import model_fingerprint
from repro.campaign.store import DONE, FAILED, Journal, NA, PointResult, ResultStore, cache_key
from repro.campaign.spec import PointSpec


POINT = PointSpec(machine="A", backend="GCC-TBB", case="reduce",
                  size_exp=12, threads=32)


def test_cache_key_depends_on_point_and_fingerprint():
    other = PointSpec(machine="A", backend="GCC-TBB", case="reduce",
                      size_exp=12, threads=16)
    assert cache_key(POINT, "f1") == cache_key(POINT, "f1")
    assert cache_key(POINT, "f1") != cache_key(other, "f1")
    assert cache_key(POINT, "f1") != cache_key(POINT, "f2")


def test_model_fingerprint_is_stable():
    assert model_fingerprint() == model_fingerprint()
    assert len(model_fingerprint()) == 20


def test_disk_roundtrip(tmp_path):
    store = ResultStore(tmp_path / "cache")
    payload = {"status": DONE, "seconds": 1.5, "error": None}
    key = store.put(POINT, payload)
    assert store.load_key(key)["result"] == payload
    assert store.get(POINT)["result"] == payload
    # objects are fanned out under a two-hex-digit level
    assert (tmp_path / "cache" / "objects" / key[:2] / f"{key}.json").exists()


def test_memory_store_roundtrip():
    store = ResultStore(None)
    store.put(POINT, {"status": DONE, "seconds": 2.0, "error": None})
    result = store.result_for("tid", POINT)
    assert result.seconds == 2.0
    assert result.cached is True
    assert store.hits == 1 and store.writes == 1


def test_fingerprint_change_invalidates(tmp_path):
    old = ResultStore(tmp_path / "cache", fingerprint="model-v1")
    old.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})
    new = ResultStore(tmp_path / "cache", fingerprint="model-v2")
    assert new.get(POINT) is None
    assert new.misses == 1


def test_corrupt_object_is_a_miss(tmp_path):
    store = ResultStore(tmp_path / "cache")
    key = store.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})
    path = tmp_path / "cache" / "objects" / key[:2] / f"{key}.json"
    path.write_text("{torn", encoding="utf-8")
    assert store.get(POINT) is None


def test_cached_payload_excludes_run_bookkeeping():
    fresh = PointResult(task_id="t", point=POINT, status=DONE, seconds=3.0,
                        cached=False, attempts=2)
    served = PointResult(task_id="t", point=POINT, status=DONE, seconds=3.0,
                         cached=True, attempts=0)
    assert fresh.payload() == served.payload()


def test_journal_append_and_replay(tmp_path):
    journal = Journal(tmp_path / "journal.jsonl")
    journal.append({"task_id": "a", "status": DONE, "seconds": 1.0})
    journal.append({"task_id": "b", "status": NA})
    assert [e["task_id"] for e in journal.entries()] == ["a", "b"]
    done = journal.completed_ids()
    assert set(done) == {"a", "b"}


def test_journal_tolerates_torn_tail(tmp_path):
    journal = Journal(tmp_path / "journal.jsonl")
    journal.append({"task_id": "a", "status": DONE, "seconds": 1.0})
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write('{"task_id": "b", "sta')  # killed mid-write
    assert [e["task_id"] for e in journal.entries()] == ["a"]
    assert set(journal.completed_ids()) == {"a"}


def test_journal_failed_entries_are_not_terminal(tmp_path):
    journal = Journal(tmp_path / "journal.jsonl")
    journal.append({"task_id": "a", "status": DONE, "seconds": 1.0})
    journal.append({"task_id": "b", "status": FAILED, "error": "boom"})
    assert set(journal.completed_ids()) == {"a"}  # b will be retried on resume
    # a later success supersedes the failure
    journal.append({"task_id": "b", "status": DONE, "seconds": 2.0})
    assert set(journal.completed_ids()) == {"a", "b"}


def test_missing_journal_is_empty(tmp_path):
    journal = Journal(tmp_path / "nope.jsonl")
    assert journal.entries() == []
    assert journal.completed_ids() == {}
