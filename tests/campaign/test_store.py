"""Store: content addressing, fingerprint invalidation, journal tolerance."""

from __future__ import annotations

import json

from repro.campaign.fingerprint import model_fingerprint
from repro.campaign.store import (
    DONE,
    FAILED,
    Journal,
    NA,
    PointResult,
    ResultStore,
    cache_key,
    record_checksum,
)
from repro.campaign.spec import PointSpec


POINT = PointSpec(machine="A", backend="GCC-TBB", case="reduce",
                  size_exp=12, threads=32)


def test_cache_key_depends_on_point_and_fingerprint():
    other = PointSpec(machine="A", backend="GCC-TBB", case="reduce",
                      size_exp=12, threads=16)
    assert cache_key(POINT, "f1") == cache_key(POINT, "f1")
    assert cache_key(POINT, "f1") != cache_key(other, "f1")
    assert cache_key(POINT, "f1") != cache_key(POINT, "f2")


def test_model_fingerprint_is_stable():
    assert model_fingerprint() == model_fingerprint()
    assert len(model_fingerprint()) == 20


def test_disk_roundtrip(tmp_path):
    store = ResultStore(tmp_path / "cache")
    payload = {"status": DONE, "seconds": 1.5, "error": None}
    key = store.put(POINT, payload)
    assert store.load_key(key)["result"] == payload
    assert store.get(POINT)["result"] == payload
    # objects are fanned out under a two-hex-digit level
    assert (tmp_path / "cache" / "objects" / key[:2] / f"{key}.json").exists()


def test_memory_store_roundtrip():
    store = ResultStore(None)
    store.put(POINT, {"status": DONE, "seconds": 2.0, "error": None})
    result = store.result_for("tid", POINT)
    assert result.seconds == 2.0
    assert result.cached is True
    assert store.hits == 1 and store.writes == 1


def test_fingerprint_change_invalidates(tmp_path):
    old = ResultStore(tmp_path / "cache", fingerprint="model-v1")
    old.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})
    new = ResultStore(tmp_path / "cache", fingerprint="model-v2")
    assert new.get(POINT) is None
    assert new.misses == 1


def test_corrupt_object_is_a_miss(tmp_path):
    store = ResultStore(tmp_path / "cache")
    key = store.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})
    path = tmp_path / "cache" / "objects" / key[:2] / f"{key}.json"
    path.write_text("{torn", encoding="utf-8")
    assert store.get(POINT) is None


def test_cached_payload_excludes_run_bookkeeping():
    fresh = PointResult(task_id="t", point=POINT, status=DONE, seconds=3.0,
                        cached=False, attempts=2)
    served = PointResult(task_id="t", point=POINT, status=DONE, seconds=3.0,
                         cached=True, attempts=0)
    assert fresh.payload() == served.payload()


def test_journal_append_and_replay(tmp_path):
    journal = Journal(tmp_path / "journal.jsonl")
    journal.append({"task_id": "a", "status": DONE, "seconds": 1.0})
    journal.append({"task_id": "b", "status": NA})
    assert [e["task_id"] for e in journal.entries()] == ["a", "b"]
    done = journal.completed_ids()
    assert set(done) == {"a", "b"}


def test_journal_tolerates_torn_tail(tmp_path):
    journal = Journal(tmp_path / "journal.jsonl")
    journal.append({"task_id": "a", "status": DONE, "seconds": 1.0})
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write('{"task_id": "b", "sta')  # killed mid-write
    assert [e["task_id"] for e in journal.entries()] == ["a"]
    assert set(journal.completed_ids()) == {"a"}


def test_journal_failed_entries_are_not_terminal(tmp_path):
    journal = Journal(tmp_path / "journal.jsonl")
    journal.append({"task_id": "a", "status": DONE, "seconds": 1.0})
    journal.append({"task_id": "b", "status": FAILED, "error": "boom"})
    assert set(journal.completed_ids()) == {"a"}  # b will be retried on resume
    # a later success supersedes the failure
    journal.append({"task_id": "b", "status": DONE, "seconds": 2.0})
    assert set(journal.completed_ids()) == {"a", "b"}


def test_missing_journal_is_empty(tmp_path):
    journal = Journal(tmp_path / "nope.jsonl")
    assert journal.entries() == []
    assert journal.completed_ids() == {}


def test_append_after_torn_tail_heals_the_line(tmp_path):
    # regression: appending to a newline-less torn tail used to fuse the
    # torn fragment and the new entry into one unparseable line
    journal = Journal(tmp_path / "journal.jsonl")
    journal.append({"task_id": "a", "status": DONE, "seconds": 1.0})
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write('{"task_id": "b", "sta')  # killed mid-write, no newline
    journal.append({"task_id": "c", "status": DONE, "seconds": 3.0})
    assert [e["task_id"] for e in journal.entries()] == ["a", "c"]
    assert journal.torn_lines() == 1


def test_result_for_tolerates_schema_drifted_records(tmp_path):
    # regression: a record whose `result` slice comes from another schema
    # version used to raise KeyError from result_for; it must be a miss
    store = ResultStore(tmp_path / "cache")
    key = store.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})
    path = store.object_path(key)
    record = json.loads(path.read_text(encoding="utf-8"))
    record["result"] = {"note": "written by a newer schema"}
    record["checksum"] = record_checksum(record)  # intact, just drifted
    path.write_text(json.dumps(record, sort_keys=True), encoding="utf-8")

    assert store.result_for("tid", POINT) is None
    assert store.misses == 1 and store.quarantined == 0  # a miss, not damage
    scan = store.scan()
    assert scan.drifted == 1 and scan.errors == 0


def test_checksum_mismatch_is_quarantined_not_served(tmp_path):
    store = ResultStore(tmp_path / "cache")
    key = store.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})
    path = store.object_path(key)
    record = json.loads(path.read_text(encoding="utf-8"))
    record["result"]["seconds"] = 99.0  # tampered value, stale checksum
    path.write_text(json.dumps(record, sort_keys=True), encoding="utf-8")

    assert store.get(POINT) is None
    assert store.quarantined == 1
    assert not path.exists()  # moved aside, evidence preserved
    assert (tmp_path / "cache" / "quarantine" / f"{key}.json").exists()


def test_legacy_records_without_checksum_are_accepted(tmp_path):
    store = ResultStore(tmp_path / "cache")
    key = store.put(POINT, {"status": DONE, "seconds": 2.5, "error": None})
    path = store.object_path(key)
    record = json.loads(path.read_text(encoding="utf-8"))
    del record["checksum"]  # written before checksums existed
    path.write_text(json.dumps(record, sort_keys=True), encoding="utf-8")

    result = store.result_for("tid", POINT)
    assert result is not None and result.seconds == 2.5
    scan = store.scan()
    assert scan.legacy == 1 and scan.errors == 0


def test_scan_flags_misfiled_and_mismatched_objects(tmp_path):
    store = ResultStore(tmp_path / "cache")
    key = store.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})
    record = json.loads(store.object_path(key).read_text(encoding="utf-8"))
    # file the record under a name that is not its content hash
    fake = "ab" + "0" * (len(key) - 2)
    record["key"] = fake
    record["checksum"] = record_checksum(record)
    misfiled = store.object_path(fake)
    misfiled.parent.mkdir(parents=True, exist_ok=True)
    misfiled.write_text(json.dumps(record, sort_keys=True), encoding="utf-8")

    scan = store.scan()
    reasons = dict(scan.corrupt)
    assert reasons == {fake: "content hash != object name"}

    scan = store.scan(quarantine=True)
    assert scan.quarantined == 1
    assert not misfiled.exists()
    assert store.scan().errors == 0  # a second audit comes back clean
