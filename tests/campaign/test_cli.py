"""`pstl-campaign` CLI: run/status/resume/query and exit codes."""

from __future__ import annotations

import json

import pytest

from repro.campaign import executor as executor_mod
from repro.campaign.cli import main
from repro.campaign.store import FAILED


SPEC = {
    "name": "cli-tiny",
    "machines": ["A"],
    "backends": ["GCC-TBB", "GCC-GNU"],
    "cases": ["reduce", "inclusive_scan"],
    "size_exps": [12],
}


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC), encoding="utf-8")
    return path


def test_run_spec_file(spec_file, tmp_path, capsys):
    rc = main(["run", "--spec-file", str(spec_file),
               "--dir", str(tmp_path / "c"), "--workers", "0"])
    assert rc == 0
    captured = capsys.readouterr()
    assert "GCC-TBB/reduce/A" in captured.out
    assert "inclusive_scan" in captured.out  # N/A cell still listed
    assert "executed" in captured.err


def test_run_requires_exactly_one_spec_source(spec_file, capsys):
    assert main(["run"]) == 2
    assert main(["run", "--spec", "table5", "--spec-file", str(spec_file)]) == 2


def test_run_named_spec_renders_table(tmp_path, capsys):
    rc = main(["run", "--spec", "table5", "--size-exp", "12",
               "--dir", str(tmp_path / "t5"), "--workers", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Table 5" in out
    assert "N/A" in out  # ICC-on-B / GNU-scan cells


def test_status_and_query(spec_file, tmp_path, capsys):
    cdir = tmp_path / "c"
    main(["run", "--spec-file", str(spec_file), "--dir", str(cdir),
          "--workers", "0"])
    capsys.readouterr()

    assert main(["status", str(cdir)]) == 0
    out = capsys.readouterr().out
    assert "cli-tiny" in out
    assert "pending:  0" in out
    assert "wall:" in out and "task(s)" in out
    assert "slowest" in out and "@MachA" in out

    assert main(["query", str(cdir), "--case", "reduce"]) == 0
    out = capsys.readouterr().out
    assert "reduce<GCC-TBB>@MachA" in out

    assert main(["query", str(cdir), "--format", "csv"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("name,iterations,")

    assert main(["query", str(cdir), "--format", "json"]) == 0
    rows = json.loads(capsys.readouterr().out)["benchmarks"]
    assert rows and all(row["iterations"] == 1 for row in rows)


def test_warm_rerun_and_resume(spec_file, tmp_path, capsys):
    cdir = tmp_path / "c"
    main(["run", "--spec-file", str(spec_file), "--dir", str(cdir),
          "--workers", "0"])
    capsys.readouterr()
    rc = main(["run", "--spec-file", str(spec_file), "--dir", str(cdir),
               "--workers", "0", "--resume"])
    assert rc == 0
    assert "0 executed" in capsys.readouterr().err
    rc = main(["resume", str(cdir), "--workers", "0"])
    assert rc == 0
    assert "0 executed" in capsys.readouterr().err


def test_trace_output(spec_file, tmp_path):
    trace = tmp_path / "trace.json"
    rc = main(["run", "--spec-file", str(spec_file),
               "--dir", str(tmp_path / "c"), "--workers", "0",
               "--trace", str(trace)])
    assert rc == 0
    events = json.loads(trace.read_text(encoding="utf-8"))["traceEvents"]
    names = {e.get("name") for e in events}
    assert {"campaign.run", "campaign.plan", "cache-miss"} <= names


def test_failures_exit_code_1(spec_file, tmp_path, monkeypatch, capsys):
    def always_fail(payload):
        return {"status": FAILED, "seconds": None, "error": "boom"}

    monkeypatch.setattr(executor_mod, "execute_point", always_fail)
    rc = main(["run", "--spec-file", str(spec_file),
               "--dir", str(tmp_path / "c"), "--workers", "0",
               "--retries", "0", "--no-batch"])
    assert rc == 1


def test_bad_state_exit_code_2(tmp_path, capsys):
    assert main(["status", str(tmp_path / "nothing")]) == 2
    assert "error:" in capsys.readouterr().err
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    assert main(["run", "--spec-file", str(bad), "--workers", "0"]) == 2


def test_faulted_run_verify_resume_cycle(spec_file, tmp_path, capsys):
    plan = tmp_path / "plan.json"
    plan.write_text(json.dumps({"cache_corrupt": 1.0}), encoding="utf-8")
    cdir = tmp_path / "c"
    rc = main(["run", "--spec-file", str(spec_file), "--dir", str(cdir),
               "--workers", "0", "--retries", "2",
               "--faults", str(plan), "--fault-seed", "7"])
    assert rc == 0  # faults degrade the store, never the run itself
    assert "faults injected" in capsys.readouterr().err

    assert main(["verify", str(cdir)]) == 1
    out = capsys.readouterr()
    assert "corrupt" in out.out
    assert "--quarantine" in out.err  # points at the recovery path

    assert main(["resume", str(cdir), "--workers", "0"]) == 0
    assert "quarantined" in capsys.readouterr().err

    assert main(["verify", str(cdir)]) == 0
    assert "verify: OK" in capsys.readouterr().out


def test_verify_quarantine_pulls_corrupt_objects(spec_file, tmp_path, capsys):
    cdir = tmp_path / "c"
    main(["run", "--spec-file", str(spec_file), "--dir", str(cdir),
          "--workers", "0"])
    capsys.readouterr()
    victim = next((cdir / "cache" / "objects").rglob("*.json"))
    victim.write_text("{torn", encoding="utf-8")

    assert main(["verify", str(cdir), "--quarantine"]) == 1
    assert "unparseable" in capsys.readouterr().out
    assert not victim.exists()
    assert main(["verify", str(cdir)]) == 0  # the audit now comes back clean


def test_fault_seed_requires_a_plan(spec_file, tmp_path, capsys):
    rc = main(["run", "--spec-file", str(spec_file),
               "--dir", str(tmp_path / "c"), "--workers", "0",
               "--fault-seed", "3"])
    assert rc == 2
    assert "--fault-seed requires --faults" in capsys.readouterr().err


def test_verify_outside_a_campaign_dir_exit_2(tmp_path, capsys):
    assert main(["verify", str(tmp_path / "nothing")]) == 2
    assert "error:" in capsys.readouterr().err


def test_run_accepts_backoff_flags(spec_file, tmp_path, capsys):
    rc = main(["run", "--spec-file", str(spec_file),
               "--dir", str(tmp_path / "c"), "--workers", "0",
               "--backoff-base", "0.001", "--backoff-factor", "3",
               "--backoff-max", "0.01", "--backoff-jitter", "0.5"])
    assert rc == 0


def test_compact_folds_the_index_and_status_reports_it(spec_file, tmp_path, capsys):
    cdir = tmp_path / "c"
    main(["run", "--spec-file", str(spec_file), "--dir", str(cdir),
          "--workers", "0"])
    capsys.readouterr()

    # fresh runs leave rows in the shard logs; compact folds them away
    assert main(["compact", str(cdir)]) == 0
    out = capsys.readouterr().out
    assert "compact:" in out and "row(s) kept" in out
    assert "shard(s)" in out
    for log in (cdir / "cache" / "index").glob("*.log.jsonl"):
        assert log.stat().st_size == 0

    # a bare store root (no spec.json) is accepted too; idempotent
    assert main(["compact", str(cdir / "cache")]) == 0
    assert "0 log byte(s) merged" in capsys.readouterr().out

    assert main(["status", str(cdir)]) == 0
    assert "(indexed)" in capsys.readouterr().out

    assert main(["verify", str(cdir)]) == 0
    out = capsys.readouterr().out
    assert "index:" in out and "shard(s)" in out
    assert "verify: OK" in out


def test_compact_outside_a_store_exit_2(tmp_path, capsys):
    assert main(["compact", str(tmp_path)]) == 2
    assert "neither a campaign directory" in capsys.readouterr().err
