"""Executor: serial/pool runs, caching, resume, retry, degradation."""

from __future__ import annotations

import pytest

from repro.campaign import executor as executor_mod
from repro.campaign.executor import load_campaign, run_campaign
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import DONE, FAILED, Journal, NA, ResultStore
from repro.errors import CampaignError
from repro.trace import Tracer, use_tracer


def tiny_spec(**kwargs) -> CampaignSpec:
    base = dict(name="tiny", machines=("A",), backends=("GCC-TBB", "GCC-GNU"),
                cases=("reduce", "inclusive_scan"), size_exps=(12,))
    base.update(kwargs)
    return CampaignSpec(**base)


def test_serial_run_completes_all_tasks():
    outcome = run_campaign(tiny_spec())
    # 4 cells + 2 shared baselines; GNU/inclusive_scan pruned at plan time
    assert outcome.stats.planned == len(outcome.plan.tasks)
    assert outcome.stats.pruned == 1
    assert outcome.stats.executed == outcome.stats.planned - 1
    assert all(t.task_id in outcome.results for t in outcome.plan.tasks)
    for task in outcome.plan.runnable:
        result = outcome.results[task.task_id]
        assert result.status == DONE
        assert result.seconds > 0


def test_pruned_tasks_are_na_without_execution():
    outcome = run_campaign(tiny_spec())
    (pruned,) = outcome.plan.pruned
    result = outcome.results[pruned.task_id]
    assert result.status == NA
    assert result.attempts == 0
    assert "inclusive_scan" in result.error


def test_shared_store_turns_rerun_into_cache_hits():
    store = ResultStore(None)
    first = run_campaign(tiny_spec(), store=store)
    second = run_campaign(tiny_spec(), store=store)
    assert second.stats.executed == 0
    assert second.stats.cache_hits == first.stats.executed
    for tid, result in first.results.items():
        again = second.results[tid]
        assert again.status == result.status
        assert again.seconds == result.seconds  # bit-identical, not approximate


def test_pool_run_matches_serial():
    serial = run_campaign(tiny_spec())
    pooled = run_campaign(tiny_spec(), workers=2)
    assert pooled.stats.executed == serial.stats.executed
    for tid, result in serial.results.items():
        assert pooled.results[tid].status == result.status
        assert pooled.results[tid].seconds == result.seconds


def test_campaign_dir_resume_skips_journaled_tasks(tmp_path):
    cdir = tmp_path / "camp"
    first = run_campaign(tiny_spec(), campaign_dir=cdir)
    assert first.stats.executed > 0
    resumed = run_campaign(tiny_spec(), campaign_dir=cdir, resume=True)
    assert resumed.stats.executed == 0
    assert resumed.stats.journal_hits == first.stats.executed
    for tid, result in first.results.items():
        assert resumed.results[tid].seconds == result.seconds


def test_interrupted_campaign_resumes_remainder(tmp_path):
    cdir = tmp_path / "camp"
    full = run_campaign(tiny_spec(), campaign_dir=cdir)
    # simulate a kill halfway: keep only the first half of the journal
    journal_path = cdir / "journal.jsonl"
    lines = journal_path.read_text(encoding="utf-8").splitlines(keepends=True)
    keep = len(lines) // 2
    journal_path.write_text("".join(lines[:keep]), encoding="utf-8")
    # drop the cache too, so the cut tasks genuinely recompute
    import shutil

    shutil.rmtree(cdir / "cache")
    resumed = run_campaign(tiny_spec(), campaign_dir=cdir, resume=True)
    assert resumed.stats.executed > 0
    assert resumed.stats.executed < full.stats.executed + 1
    for tid, result in full.results.items():
        assert resumed.results[tid].status == result.status
        assert resumed.results[tid].seconds == result.seconds


def test_campaign_dir_rejects_mismatched_spec(tmp_path):
    cdir = tmp_path / "camp"
    run_campaign(tiny_spec(), campaign_dir=cdir)
    with pytest.raises(CampaignError, match="different campaign"):
        run_campaign(tiny_spec(size_exps=(13,)), campaign_dir=cdir)


def test_resume_requires_campaign_dir():
    with pytest.raises(CampaignError, match="campaign_dir"):
        run_campaign(tiny_spec(), resume=True)


def test_failure_degrades_gracefully(monkeypatch):
    real = executor_mod.execute_point

    def flaky(payload):
        if payload["case"] == "reduce" and payload["backend"] == "GCC-TBB":
            return {"status": FAILED, "seconds": None, "error": "injected"}
        return real(payload)

    monkeypatch.setattr(executor_mod, "execute_point", flaky)
    outcome = run_campaign(tiny_spec(), retries=0, batch=False)
    assert outcome.stats.failed == 1
    # the rest of the grid still completed
    done = [r for r in outcome.results.values() if r.status == DONE]
    assert len(done) == outcome.stats.executed - 1


def test_bounded_retry_recovers_transient_failures(monkeypatch):
    real = executor_mod.execute_point
    calls = {"n": 0}

    def flaky(payload):
        if payload["case"] == "reduce" and payload["backend"] == "GCC-TBB":
            calls["n"] += 1
            if calls["n"] == 1:
                return {"status": FAILED, "seconds": None, "error": "transient"}
        return real(payload)

    monkeypatch.setattr(executor_mod, "execute_point", flaky)
    outcome = run_campaign(tiny_spec(), retries=1, batch=False)
    assert outcome.stats.failed == 0
    assert calls["n"] == 2
    recovered = [r for r in outcome.results.values() if r.attempts == 2]
    assert len(recovered) == 1


def test_failed_results_are_not_cached(monkeypatch):
    def always_fail(payload):
        return {"status": FAILED, "seconds": None, "error": "boom"}

    monkeypatch.setattr(executor_mod, "execute_point", always_fail)
    store = ResultStore(None)
    run_campaign(tiny_spec(), store=store, retries=0, batch=False)
    assert store.writes == 0


def test_resume_retries_journaled_failures(tmp_path, monkeypatch):
    cdir = tmp_path / "camp"

    def always_fail(payload):
        return {"status": FAILED, "seconds": None, "error": "boom"}

    monkeypatch.setattr(executor_mod, "execute_point", always_fail)
    first = run_campaign(tiny_spec(), campaign_dir=cdir, retries=0, batch=False)
    assert first.stats.failed == first.stats.executed
    monkeypatch.undo()
    resumed = run_campaign(tiny_spec(), campaign_dir=cdir, resume=True)
    assert resumed.stats.failed == 0
    assert resumed.stats.executed == first.stats.failed


def test_load_campaign_reconstructs_without_executing(tmp_path):
    cdir = tmp_path / "camp"
    ran = run_campaign(tiny_spec(), campaign_dir=cdir)
    loaded = load_campaign(cdir)
    assert loaded.stats.executed == 0
    assert set(loaded.results) == set(ran.results)
    for tid, result in ran.results.items():
        assert loaded.results[tid].status == result.status
        assert loaded.results[tid].seconds == result.seconds


def test_progress_callback_sees_every_task():
    seen = []
    run_campaign(tiny_spec(), progress=lambda task, result: seen.append(task.task_id))
    assert len(seen) == len(plan_ids := run_campaign(tiny_spec()).results)
    assert set(seen) == set(plan_ids)


def test_trace_spans_cover_plan_execute_and_cache():
    tracer = Tracer()
    store = ResultStore(None)
    with use_tracer(tracer):
        run_campaign(tiny_spec(), store=store)
        run_campaign(tiny_spec(), store=store)
    names = [s.name for s in tracer.spans if s.category == "campaign"]
    assert names.count("campaign.run") == 2
    assert names.count("campaign.plan") == 2
    assert names.count("campaign.execute") == 2
    misses = [s for s in tracer.spans if s.name == "cache-miss"]
    hits = [s for s in tracer.spans if s.name == "cache-hit"]
    pruned = [s for s in tracer.spans if s.name == "pruned"]
    assert len(misses) == len(hits)  # second run served every executed point
    assert len(pruned) == 2  # the GNU/inclusive_scan cell, once per run
    assert all(s.duration > 0 for s in misses)
    assert all(s.duration == 0 for s in hits)


def test_journal_entries_carry_cache_keys(tmp_path):
    cdir = tmp_path / "camp"
    run_campaign(tiny_spec(), campaign_dir=cdir)
    entries = Journal(cdir / "journal.jsonl").entries()
    executed = [e for e in entries if e["status"] == DONE]
    assert executed
    assert all(e["key"] for e in executed)


@pytest.mark.parametrize("kwargs", [{"retries": -1}, {"workers": -2}])
def test_invalid_run_arguments(kwargs):
    with pytest.raises(CampaignError):
        run_campaign(tiny_spec(), **kwargs)


def test_wall_time_is_journaled_not_cached(tmp_path):
    cdir = tmp_path / "c"
    outcome = run_campaign(tiny_spec(), campaign_dir=cdir)
    executed = [r for r in outcome.results.values()
                if not r.cached and r.attempts > 0]
    assert executed and all(r.wall_ms is not None and r.wall_ms >= 0
                            for r in executed)
    entries = Journal(cdir / "journal.jsonl").entries()
    timed = [e for e in entries if e.get("wall_ms") is not None]
    assert len(timed) == len(executed)
    # the cacheable payload stays machine-independent
    assert "wall_ms" not in executed[0].payload()
    store = ResultStore(cdir / "cache")
    cached = store.result_for(executed[0].task_id, executed[0].point)
    assert cached is not None and cached.wall_ms is None


def test_wall_time_present_in_scalar_and_batch_paths():
    for batch in (True, False):
        outcome = run_campaign(tiny_spec(), batch=batch)
        for task in outcome.plan.runnable:
            assert outcome.results[task.task_id].wall_ms is not None, (
                f"batch={batch} lost wall_ms"
            )
