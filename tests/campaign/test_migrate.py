"""tools/migrate_store.py: in-place v1 -> v2 upgrade, proven bit-identical.

The migration is the only bridge old flat stores have into the sharded
index, so its failure modes get pinned alongside the happy path: the
commit point (``STORE_META.json`` lands last), corrupt/misfiled objects
staying unindexed, ``--verify`` actually failing on tampering, and
idempotence (a second run is a no-op without ``--force``).
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.campaign.spec import PointSpec
from repro.campaign.store import DONE, ResultStore, record_checksum

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "migrate_store.py"


def _load_tool():
    spec = importlib.util.spec_from_file_location("migrate_store", _TOOL)
    module = importlib.util.module_from_spec(spec)
    sys.modules["migrate_store"] = module
    spec.loader.exec_module(module)
    return module


ms = _load_tool()


def _point(i):
    return PointSpec(machine="A", backend="GCC-TBB", case="reduce",
                     size_exp=12, threads=1 + i)


def _v1_store(root: Path, count: int = 6) -> tuple[ResultStore, list[str]]:
    """A flat (pre-index) store: build v2, then strip the marker + index."""
    store = ResultStore(root)
    keys = [store.put(_point(i), {"status": DONE, "seconds": float(i + 1),
                                  "error": None})
            for i in range(count)]
    (root / "STORE_META.json").unlink()
    for path in sorted((root / "index").glob("*")):
        path.unlink()
    (root / "index").rmdir()
    assert ResultStore(root).indexed is False
    return store, keys


def test_migrate_stamps_v2_and_indexes_every_object(tmp_path, capsys):
    root = tmp_path / "cache"
    _v1_store(root)
    before = {p: p.read_bytes()
              for p in sorted((root / "objects").rglob("*.json"))}

    assert ms.main([str(root)]) == 0
    out = capsys.readouterr().out
    assert "6 row(s) indexed" in out

    store = ResultStore(root)
    assert store.indexed is True
    assert store.count_objects() == 6
    for i in range(6):
        assert store.get(_point(i))["result"]["seconds"] == float(i + 1)
    # migration is additive: not one object byte rewritten
    assert before == {p: p.read_bytes()
                      for p in sorted((root / "objects").rglob("*.json"))}


def test_migrate_verify_and_compact_pass_clean(tmp_path, capsys):
    root = tmp_path / "cache"
    _v1_store(root)
    assert ms.main([str(root), "--verify", "--compact"]) == 0
    out = capsys.readouterr().out
    assert "verify: OK" in out
    assert "compacted:" in out
    # compaction left every shard folded: logs empty, snapshots answer
    store = ResultStore(root)
    assert store.count_objects() == 6
    for log in (root / "index").glob("*.log.jsonl"):
        assert log.stat().st_size == 0


def test_second_run_is_a_noop_unless_forced(tmp_path, capsys):
    root = tmp_path / "cache"
    _v1_store(root)
    assert ms.main([str(root)]) == 0
    capsys.readouterr()
    assert ms.main([str(root)]) == 0
    assert "already v2" in capsys.readouterr().out
    assert ms.main([str(root), "--force", "--verify"]) == 0
    assert "row(s) indexed" in capsys.readouterr().out


def test_campaign_directory_resolves_to_its_cache(tmp_path):
    cdir = tmp_path / "campaign"
    _v1_store(cdir / "cache")
    (cdir / "spec.json").write_text("{}", encoding="utf-8")
    assert ms.main([str(cdir), "--verify"]) == 0
    assert ResultStore(cdir / "cache").indexed is True


def test_not_a_store_exits_2(tmp_path, capsys):
    with pytest.raises(SystemExit) as err:
        ms.resolve_store_root(tmp_path / "nowhere")
    assert err.value.code == 2
    assert "not a result store" in capsys.readouterr().err


def test_corrupt_and_misfiled_objects_stay_unindexed(tmp_path, capsys):
    root = tmp_path / "cache"
    store, keys = _v1_store(root)
    # one object torn mid-write, one misfiled under a foreign name
    store.object_path(keys[0]).write_text('{"key": "torn', encoding="utf-8")
    record = json.loads(store.object_path(keys[1]).read_text(encoding="utf-8"))
    fake = "ab" + "0" * (len(keys[1]) - 2)
    misfiled = root / "objects" / "ab" / f"{fake}.json"
    misfiled.parent.mkdir(parents=True, exist_ok=True)
    misfiled.write_text(json.dumps(record, sort_keys=True), encoding="utf-8")
    # and one record whose checksum no longer verifies
    tampered = json.loads(store.object_path(keys[2]).read_text(encoding="utf-8"))
    tampered["result"]["seconds"] = 99.0
    store.object_path(keys[2]).write_text(
        json.dumps(tampered, sort_keys=True), encoding="utf-8")

    assert ms.main([str(root), "--verify"]) == 0
    out = capsys.readouterr().out
    assert "3 object(s) left unindexed" in out
    migrated = ResultStore(root)
    assert migrated.count_objects() == 4  # the intact ones, and only those
    assert migrated.index.lookup(keys[0]) is None
    assert migrated.index.lookup(keys[2]) is None
    scan = migrated.scan()  # the scan machinery still owns the damage
    assert scan.errors == 3


def test_legacy_records_are_indexed_with_null_checksum(tmp_path):
    root = tmp_path / "cache"
    store, keys = _v1_store(root, count=2)
    path = store.object_path(keys[0])
    record = json.loads(path.read_text(encoding="utf-8"))
    del record["checksum"]  # written before checksums existed
    path.write_text(json.dumps(record, sort_keys=True), encoding="utf-8")

    assert ms.main([str(root), "--verify", "--compact"]) == 0
    migrated = ResultStore(root)
    assert migrated.count_objects() == 2  # legacy rows are served => counted
    row = migrated.index.lookup(keys[0])
    assert row["checksum"] is None
    scan = migrated.scan()
    assert scan.legacy == 1 and scan.index_stale == 0 and scan.errors == 0


def test_verify_catches_post_migration_tampering(tmp_path, capsys):
    root = tmp_path / "cache"
    _v1_store(root, count=3)
    inventory = ms.inventory_objects(root)
    ms.build_index(root, inventory)
    # tamper with one object *after* the inventory was taken
    victim = sorted(inventory)[0]
    path = root / "objects" / victim[:2] / f"{victim}.json"
    record = json.loads(path.read_text(encoding="utf-8"))
    record["result"]["seconds"] = 123.0
    record["checksum"] = record_checksum(record)
    path.write_text(json.dumps(record, sort_keys=True), encoding="utf-8")

    problems = ms.verify_store(root, inventory)
    assert any("object bytes changed" in p for p in problems)


def test_verify_catches_index_coverage_gaps(tmp_path):
    root = tmp_path / "cache"
    _v1_store(root, count=3)
    inventory = ms.inventory_objects(root)
    ms.build_index(root, inventory)
    # drop one shard's snapshot: its keys vanish from the index
    victim = sorted(inventory)[0]
    (root / "index" / f"{victim[:2]}.idx.json").unlink()
    problems = ms.verify_store(root, inventory)
    assert any("missing from the index" in p for p in problems)
