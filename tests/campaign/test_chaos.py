"""Chaos suite: seeded fault schedules must converge to bit-identical grids.

Every test here drives the full campaign pipeline under a deterministic
:class:`~repro.faults.FaultPlan` and checks the headline invariant from
docs/ROBUSTNESS.md: for any fault schedule below the retry budget,

    run -> (faults) -> resume -> query

produces results *bit-identical* to a fault-free run, and the store
verifies clean afterwards. The matrix is 3 seeds x 4 fault kinds; each
cell is fully reproducible (a failing seed is a repro recipe, not a
flake). Marked ``chaos`` so CI can run the matrix as its own job.
"""

from __future__ import annotations

import pytest

from repro.campaign.cli import main
from repro.campaign.executor import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.faults import FaultPlan

pytestmark = pytest.mark.chaos

SEEDS = (1, 2, 3)

#: kind -> (plan kwargs, pool width). Kill needs a real process pool (it
#: breaks one); the rest run serial for speed. Kill is capped so a hostile
#: seed cannot exceed the executor's MAX_POOL_REBUILDS bound.
KINDS = {
    "worker_exception": ({"worker_exception": 0.5}, 0),
    "worker_kill": ({"worker_kill": 0.4, "max_faults": 4}, 2),
    "cache_corrupt": ({"cache_corrupt": 0.5}, 0),
    "journal_torn_tail": ({"journal_torn_tail": 0.5}, 0),
}


def chaos_spec() -> CampaignSpec:
    return CampaignSpec(name="chaos", machines=("A",),
                        backends=("GCC-TBB", "GCC-GNU"),
                        cases=("reduce", "transform", "find"),
                        size_exps=(12, 13))


def assert_bit_identical(clean, recovered) -> None:
    for task in clean.plan.tasks:
        a = clean.results[task.task_id]
        b = recovered.results[task.task_id]
        assert b.status == a.status, task.task_id
        assert b.seconds == a.seconds, task.task_id  # exact, not approximate


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("kind", sorted(KINDS))
def test_faulted_run_then_resume_is_bit_identical(tmp_path, seed, kind):
    plan_kwargs, workers = KINDS[kind]
    plan = FaultPlan(seed=seed, **plan_kwargs)
    clean = run_campaign(chaos_spec())

    cdir = tmp_path / "camp"
    faulted = run_campaign(chaos_spec(), campaign_dir=cdir, workers=workers,
                           retries=2, faults=plan)
    assert faulted.stats.faults_injected > 0  # the schedule actually hit
    assert faulted.stats.failed == 0  # every injection stayed under budget

    resumed = run_campaign(chaos_spec(), campaign_dir=cdir, resume=True)
    assert resumed.stats.failed == 0
    assert_bit_identical(clean, resumed)

    # After recovery the store holds no corrupt objects. A flip that lands
    # inside the "checksum" field itself demotes the record to legacy
    # (accepted, counted, content untouched) rather than corrupt.
    scan = ResultStore(cdir / "cache").scan()
    assert scan.errors == 0
    assert scan.ok + scan.legacy == len(clean.plan.runnable)


@pytest.mark.parametrize("seed", SEEDS)
def test_every_site_at_once_still_converges(tmp_path, seed):
    plan = FaultPlan(seed=seed, worker_exception=0.3, cache_corrupt=0.3,
                     journal_torn_tail=0.3)
    clean = run_campaign(chaos_spec())
    cdir = tmp_path / "camp"
    faulted = run_campaign(chaos_spec(), campaign_dir=cdir, retries=2,
                           faults=plan)
    assert faulted.stats.failed == 0
    resumed = run_campaign(chaos_spec(), campaign_dir=cdir, resume=True)
    assert_bit_identical(clean, resumed)
    assert main(["verify", str(cdir)]) == 0  # the CLI agrees the store is clean


def test_hung_worker_times_out_retries_and_converges(tmp_path):
    # One worker stalls well past the per-task timeout; the executor must
    # surface it as a timed-out attempt, retry it, and still converge.
    plan = FaultPlan(seed=5, worker_hang=1.0, max_faults=1, hang_seconds=1.0)
    clean = run_campaign(chaos_spec())
    faulted = run_campaign(chaos_spec(), campaign_dir=tmp_path / "camp",
                           workers=2, timeout=0.25, retries=2, faults=plan)
    assert faulted.stats.faults_injected == 1
    assert faulted.stats.failed == 0
    assert_bit_identical(clean, faulted)


def test_kill_schedule_rebuilds_the_pool(tmp_path):
    plan = FaultPlan(seed=1, worker_kill=1.0, max_faults=2)
    outcome = run_campaign(chaos_spec(), campaign_dir=tmp_path / "camp",
                           workers=2, retries=2, faults=plan)
    assert outcome.stats.faults_injected == 2
    assert outcome.stats.pool_rebuilds >= 1
    assert "pool rebuilds" in outcome.stats.summary()
    assert outcome.stats.failed == 0
