"""Shard index: append/merge semantics, O(1) counts, locked compaction."""

from __future__ import annotations

import json

import pytest

from repro.campaign.shard import (
    SHARD_COUNT,
    STORE_LAYOUT_VERSION,
    CompactionReport,
    ShardIndex,
    StoreIndex,
    read_store_meta,
    shard_prefix,
    write_store_meta,
)
from repro.errors import CampaignError


def _put(key, seconds=1.0, **extra):
    row = {"op": "put", "key": key, "path": f"objects/{key[:2]}/{key}.json",
           "checksum": f"c-{key}-{seconds}", "point": {}, "status": "done",
           "seconds": seconds, "wall_ms": None}
    row.update(extra)
    return row


def test_shard_prefix_validates_two_hex_digits():
    assert shard_prefix("ab12ff") == "ab"
    assert shard_prefix("AB12FF") == "ab"
    for bad in ("", "a", "zz99", "g0aa"):
        with pytest.raises(CampaignError):
            shard_prefix(bad)
    assert SHARD_COUNT == 256  # two hex digits, the objects/ fan-out


def test_append_lookup_last_wins_and_tombstones(tmp_path):
    shard = ShardIndex(tmp_path, "ab")
    shard.append(_put("ab01", seconds=1.0))
    shard.append(_put("ab02", seconds=2.0))
    shard.append(_put("ab01", seconds=3.0))  # supersedes the first row
    assert shard.lookup("ab01")["seconds"] == 3.0
    assert shard.lookup("ab02")["seconds"] == 2.0
    assert shard.count() == 2

    shard.append({"op": "quarantine", "key": "ab02", "reason": "tampered"})
    assert shard.lookup("ab02") is None
    assert shard.count() == 1


def test_cache_invalidates_on_cross_instance_writes(tmp_path):
    writer = ShardIndex(tmp_path, "ab")
    reader = ShardIndex(tmp_path, "ab")
    writer.append(_put("ab01"))
    assert reader.count() == 1  # prime the reader's cache
    writer.append(_put("ab02"))  # a different handle, same files
    assert reader.count() == 2
    assert set(reader.rows()) == {"ab01", "ab02"}


def test_torn_log_line_is_skipped_not_fatal(tmp_path):
    shard = ShardIndex(tmp_path, "ab")
    shard.append(_put("ab01"))
    with open(shard.log_path, "ab") as fh:
        fh.write(b'{"op": "put", "key": "ab02", "trunc')  # crash mid-append
    assert set(shard.rows()) == {"ab01"}
    shard.append(_put("ab03"))  # heals the torn tail before writing
    assert set(shard.rows()) == {"ab01", "ab03"}


def test_compact_folds_log_and_reports_drops(tmp_path):
    shard = ShardIndex(tmp_path, "ab")
    shard.append(_put("ab01", seconds=1.0))
    shard.append(_put("ab01", seconds=2.0))  # superseded
    shard.append(_put("ab02"))
    shard.append({"op": "quarantine", "key": "ab02", "reason": "bad"})
    log_bytes = shard.log_path.stat().st_size

    report = shard.compact()
    assert report.shards == 1
    assert report.rows_kept == 1
    assert report.superseded == 1
    assert report.quarantined_dropped == 1
    assert report.log_bytes_merged == log_bytes
    assert shard.log_path.stat().st_size == 0  # log folded away

    snapshot = json.loads(shard.compact_path.read_text(encoding="utf-8"))
    assert snapshot["layout"] == STORE_LAYOUT_VERSION
    assert snapshot["count"] == 1
    assert set(snapshot["rows"]) == {"ab01"}
    assert snapshot["rows"]["ab01"]["seconds"] == 2.0


def test_compacted_count_is_read_from_the_snapshot_head(tmp_path):
    shard = ShardIndex(tmp_path, "ab")
    for i in range(5):
        shard.append(_put(f"ab{i:02x}"))
    shard.compact()
    # "count" sorts first, so a fresh handle answers from a 64-byte read
    head = shard.compact_path.read_bytes()[:64]
    assert head.startswith(b'{"count": 5')
    fresh = ShardIndex(tmp_path, "ab")
    assert fresh.count() == 5
    assert fresh._cache is None  # count() never parsed the rows
    # a pending log entry forces the full merge again
    fresh.append({"op": "quarantine", "key": "ab00", "reason": "x"})
    assert fresh.count() == 4


def test_compact_is_idempotent_and_survives_reopen(tmp_path):
    shard = ShardIndex(tmp_path, "ab")
    shard.append(_put("ab01"))
    shard.compact()
    second = shard.compact()  # nothing left to fold
    assert second.rows_kept == 1 and second.superseded == 0
    assert ShardIndex(tmp_path, "ab").lookup("ab01") is not None


def test_store_index_routes_counts_and_iterates_in_order(tmp_path):
    index = StoreIndex(tmp_path)
    index.record_put("ff01", checksum="c1", point={"case": "reduce"},
                     status="done", seconds=1.0, wall_ms=4.5)
    index.record_put("ab02", checksum="c2", point={"case": "sort"},
                     status="done", seconds=2.0)
    index.record_put("ab03", checksum="c3", point={"case": "merge"},
                     status="failed", seconds=None)
    assert index.prefixes() == ["ab", "ff"]
    assert index.count() == 3
    assert index.lookup("ff01")["wall_ms"] == 4.5
    assert index.lookup("ab02")["path"] == "objects/ab/ab02.json"
    assert [key for key, _ in index.rows()] == ["ab02", "ab03", "ff01"]

    index.record_quarantine("ab02", "tampered")
    report = index.compact()
    assert report.shards == 2
    assert report.rows_kept == 2 and report.quarantined_dropped == 1
    assert [key for key, _ in index.rows()] == ["ab03", "ff01"]


def test_compaction_report_merge_and_summary():
    total = CompactionReport()
    total.merge(CompactionReport(shards=1, rows_kept=3, superseded=1,
                                 quarantined_dropped=0, log_bytes_merged=10))
    total.merge(CompactionReport(shards=1, rows_kept=2, superseded=0,
                                 quarantined_dropped=2, log_bytes_merged=5))
    assert total.shards == 2 and total.rows_kept == 5
    assert "2 shard(s) compacted: 5 row(s) kept" in total.summary()
    assert "1 superseded" in total.summary()
    assert "2 quarantined row(s) dropped" in total.summary()


def test_store_meta_roundtrip_and_torn_marker(tmp_path):
    assert read_store_meta(tmp_path) is None
    write_store_meta(tmp_path)
    meta = read_store_meta(tmp_path)
    assert meta == {"layout": STORE_LAYOUT_VERSION, "shards": SHARD_COUNT}
    (tmp_path / "STORE_META.json").write_text('{"layout": 2', encoding="utf-8")
    assert read_store_meta(tmp_path) is None  # torn marker reads as v1
