"""Spec serialisation: canonical identity, roundtrips, validation."""

from __future__ import annotations

import pytest

from repro.campaign.spec import CampaignSpec, PointSpec, canonical_json
from repro.errors import CampaignError


def test_point_roundtrip():
    point = PointSpec(machine="A", backend="GCC-TBB", case="reduce",
                      size_exp=20, threads=8)
    assert PointSpec.from_dict(point.to_dict()) == point


def test_point_canonical_is_deterministic():
    a = PointSpec(machine="A", backend="GCC-TBB", case="reduce",
                  size_exp=20, threads=8)
    b = PointSpec(machine="A", backend="GCC-TBB", case="reduce",
                  size_exp=20, threads=8)
    assert a.canonical() == b.canonical()
    assert '"machine":"A"' in a.canonical()  # compact, sorted keys


def test_point_n_property():
    point = PointSpec(machine="A", backend="GCC-TBB", case="reduce",
                      size_exp=10, threads=1)
    assert point.n == 1024


def test_point_rejects_unknown_fields():
    payload = {"machine": "A", "backend": "GCC-TBB", "case": "reduce",
               "size_exp": 20, "threads": 8, "bogus": 1}
    with pytest.raises(CampaignError, match="bogus"):
        PointSpec.from_dict(payload)


@pytest.mark.parametrize("kwargs", [
    {"threads": 0},
    {"size_exp": -1},
    {"mode": "hardware"},
    {"allocator": "slab"},
    {"min_time": -0.1},
])
def test_point_validation(kwargs):
    base = dict(machine="A", backend="GCC-TBB", case="reduce",
                size_exp=20, threads=8)
    base.update(kwargs)
    with pytest.raises(CampaignError):
        PointSpec(**base)


def test_campaign_roundtrip_normalises_to_tuples():
    spec = CampaignSpec(name="t", machines=["A", "B"], backends=["GCC-TBB"],
                        cases=["reduce"], threads=[None, 4],
                        exclude=[["B", "ICC-TBB"]])
    assert spec.machines == ("A", "B")
    assert spec.threads == (None, 4)
    assert spec.exclude == (("B", "ICC-TBB"),)
    again = CampaignSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.canonical() == spec.canonical()


@pytest.mark.parametrize("kwargs", [
    {"name": ""},
    {"machines": ()},
    {"threads": (0,)},
    {"size_exps": (-3,)},
    {"modes": ("hardware",)},
    {"exclude": (("B",),)},
])
def test_campaign_validation(kwargs):
    base = dict(name="t", machines=("A",), backends=("GCC-TBB",),
                cases=("reduce",))
    base.update(kwargs)
    with pytest.raises(CampaignError):
        CampaignSpec(**base)


def test_canonical_json_is_order_independent():
    assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
