"""JournalReader: offset-resumable reads stay O(new rows), not O(journal).

The service's status endpoint and event stream poll journals once per
client request; re-reading the whole file each time would make polling
cost quadratic in campaign size. These tests pin the reader's contract:
each poll reads only the bytes appended since the last one, an
unterminated tail fragment is left unconsumed until its writer finishes
the line, and a healed torn line is skipped exactly once.
"""

from __future__ import annotations

from pathlib import Path

from repro.campaign.store import DONE, FAILED, Journal, JournalReader


def _fill(journal: Journal, n: int, prefix: str = "task") -> None:
    for i in range(n):
        journal.append({"task_id": f"{prefix}-{i:05d}", "status": DONE,
                        "seconds": 1.0 + i})


def test_poll_returns_entries_in_append_order(tmp_path: Path):
    journal = Journal(tmp_path / "journal.jsonl")
    _fill(journal, 10)
    reader = JournalReader(journal.path)
    entries = reader.poll()
    assert [e["task_id"] for e in entries] == [f"task-{i:05d}" for i in range(10)]
    assert reader.poll() == []  # nothing new


def test_missing_file_polls_empty(tmp_path: Path):
    reader = JournalReader(tmp_path / "absent.jsonl")
    assert reader.poll() == []
    assert reader.offset == 0


def test_repeated_polls_are_o_new_bytes_not_o_journal(tmp_path: Path):
    # the regression bar: after a large journal is consumed once, every
    # further poll costs only the bytes appended since -- 200 polls over
    # a 2000-row journal must not re-read ~200x the file
    journal = Journal(tmp_path / "journal.jsonl")
    _fill(journal, 2000)
    size = journal.path.stat().st_size
    reader = JournalReader(journal.path)
    assert len(reader.poll()) == 2000
    assert reader.bytes_read == size
    baseline = reader.bytes_read
    appended = 0
    for i in range(200):
        journal.append({"task_id": f"late-{i:03d}", "status": DONE,
                        "seconds": 1.0})
        assert len(reader.poll()) == 1
    appended = journal.path.stat().st_size - size
    incremental = reader.bytes_read - baseline
    assert incremental == appended  # not a byte more than what appended
    assert incremental < size  # and far from re-reading the whole journal


def test_offset_cursor_survives_reader_recreation(tmp_path: Path):
    # the /events endpoint builds a fresh reader per request from the
    # client's offset; the cursor must be transplantable
    journal = Journal(tmp_path / "journal.jsonl")
    _fill(journal, 5)
    first = JournalReader(journal.path)
    assert len(first.poll()) == 5
    _fill(journal, 3, prefix="more")
    second = JournalReader(journal.path, offset=first.offset)
    entries = second.poll()
    assert [e["task_id"] for e in entries] == [f"more-{i:05d}" for i in range(3)]


def test_unterminated_fragment_is_not_consumed(tmp_path: Path):
    journal = Journal(tmp_path / "journal.jsonl")
    _fill(journal, 2)
    with open(journal.path, "ab") as fh:
        fh.write(b'{"task_id": "partial", "status": "do')  # mid-write
    reader = JournalReader(journal.path)
    assert len(reader.poll()) == 2
    offset_before = reader.offset
    assert reader.poll() == []  # fragment stays pending, offset parked
    assert reader.offset == offset_before
    # the writer finishes the line: the entry appears exactly once
    with open(journal.path, "ab") as fh:
        fh.write(b'ne", "seconds": 1.0}\n')
    entries = reader.poll()
    assert [e["task_id"] for e in entries] == ["partial"]
    assert reader.torn == 0


def test_healed_torn_line_is_skipped_once_and_counted(tmp_path: Path):
    journal = Journal(tmp_path / "journal.jsonl")
    _fill(journal, 1)
    journal.tear_tail(0.5)  # damage the only line
    reader = JournalReader(journal.path)
    assert reader.poll() == []  # torn fragment has no newline yet
    # the next locked append heals the tail with a newline first
    journal.append({"task_id": "after", "status": FAILED, "seconds": None,
                    "error": "boom"})
    entries = reader.poll()
    assert [e["task_id"] for e in entries] == ["after"]
    assert reader.torn == 1  # the healed fragment was counted, once
    assert reader.poll() == []


def test_reader_agrees_with_full_journal_replay(tmp_path: Path):
    journal = Journal(tmp_path / "journal.jsonl")
    _fill(journal, 50)
    reader = JournalReader(journal.path)
    streamed = reader.poll()
    assert streamed == journal.entries()
