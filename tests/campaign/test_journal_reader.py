"""JournalReader: offset-resumable reads stay O(new rows), not O(journal).

The service's status endpoint and event stream poll journals once per
client request; re-reading the whole file each time would make polling
cost quadratic in campaign size. These tests pin the reader's contract:
each poll reads only the bytes appended since the last one, an
unterminated tail fragment is left unconsumed until its writer finishes
the line, and a healed torn line is skipped exactly once.
"""

from __future__ import annotations

from pathlib import Path

from repro.campaign.store import DONE, FAILED, Journal, JournalReader


def _fill(journal: Journal, n: int, prefix: str = "task") -> None:
    for i in range(n):
        journal.append({"task_id": f"{prefix}-{i:05d}", "status": DONE,
                        "seconds": 1.0 + i})


def test_poll_returns_entries_in_append_order(tmp_path: Path):
    journal = Journal(tmp_path / "journal.jsonl")
    _fill(journal, 10)
    reader = JournalReader(journal.path)
    entries = reader.poll()
    assert [e["task_id"] for e in entries] == [f"task-{i:05d}" for i in range(10)]
    assert reader.poll() == []  # nothing new


def test_missing_file_polls_empty(tmp_path: Path):
    reader = JournalReader(tmp_path / "absent.jsonl")
    assert reader.poll() == []
    assert reader.offset == 0


def test_repeated_polls_are_o_new_bytes_not_o_journal(tmp_path: Path):
    # the regression bar: after a large journal is consumed once, every
    # further poll costs only the bytes appended since -- 200 polls over
    # a 2000-row journal must not re-read ~200x the file
    journal = Journal(tmp_path / "journal.jsonl")
    _fill(journal, 2000)
    size = journal.path.stat().st_size
    reader = JournalReader(journal.path)
    assert len(reader.poll()) == 2000
    assert reader.bytes_read == size
    baseline = reader.bytes_read
    appended = 0
    for i in range(200):
        journal.append({"task_id": f"late-{i:03d}", "status": DONE,
                        "seconds": 1.0})
        assert len(reader.poll()) == 1
    appended = journal.path.stat().st_size - size
    incremental = reader.bytes_read - baseline
    assert incremental == appended  # not a byte more than what appended
    assert incremental < size  # and far from re-reading the whole journal


def test_offset_cursor_survives_reader_recreation(tmp_path: Path):
    # the /events endpoint builds a fresh reader per request from the
    # client's offset; the cursor must be transplantable
    journal = Journal(tmp_path / "journal.jsonl")
    _fill(journal, 5)
    first = JournalReader(journal.path)
    assert len(first.poll()) == 5
    _fill(journal, 3, prefix="more")
    second = JournalReader(journal.path, offset=first.offset)
    entries = second.poll()
    assert [e["task_id"] for e in entries] == [f"more-{i:05d}" for i in range(3)]


def test_unterminated_fragment_is_not_consumed(tmp_path: Path):
    journal = Journal(tmp_path / "journal.jsonl")
    _fill(journal, 2)
    with open(journal.path, "ab") as fh:
        fh.write(b'{"task_id": "partial", "status": "do')  # mid-write
    reader = JournalReader(journal.path)
    assert len(reader.poll()) == 2
    offset_before = reader.offset
    assert reader.poll() == []  # fragment stays pending, offset parked
    assert reader.offset == offset_before
    # the writer finishes the line: the entry appears exactly once
    with open(journal.path, "ab") as fh:
        fh.write(b'ne", "seconds": 1.0}\n')
    entries = reader.poll()
    assert [e["task_id"] for e in entries] == ["partial"]
    assert reader.torn == 0


def test_healed_torn_line_is_skipped_once_and_counted(tmp_path: Path):
    journal = Journal(tmp_path / "journal.jsonl")
    _fill(journal, 1)
    journal.tear_tail(0.5)  # damage the only line
    reader = JournalReader(journal.path)
    assert reader.poll() == []  # torn fragment has no newline yet
    # the next locked append heals the tail with a newline first
    journal.append({"task_id": "after", "status": FAILED, "seconds": None,
                    "error": "boom"})
    entries = reader.poll()
    assert [e["task_id"] for e in entries] == ["after"]
    assert reader.torn == 1  # the healed fragment was counted, once
    assert reader.poll() == []


def test_reader_agrees_with_full_journal_replay(tmp_path: Path):
    journal = Journal(tmp_path / "journal.jsonl")
    _fill(journal, 50)
    reader = JournalReader(journal.path)
    streamed = reader.poll()
    assert streamed == journal.entries()


def test_tear_below_consumed_offset_resyncs_instead_of_losing_entries(tmp_path: Path):
    # Regression: a tear that cut into bytes the reader had already
    # consumed left ``offset`` parked past EOF. The old reader then read
    # the re-delivered entry from mid-line, discarded it as garbage and
    # lost it for good; the fix re-syncs the offset to the shrunken end.
    journal = Journal(tmp_path / "journal.jsonl")
    _fill(journal, 2)
    reader = JournalReader(journal.path)
    assert len(reader.poll()) == 2  # fully consumed
    journal.tear_tail(0.9)  # crash rewind: cuts below the consumed offset
    assert reader.poll() == []  # nothing new, but the cursor re-synced
    assert reader.resyncs == 1
    # the writer re-runs the lost task and journals it again
    journal.append({"task_id": "task-00001", "status": DONE, "seconds": 2.0})
    entries = reader.poll()
    assert [e["task_id"] for e in entries] == ["task-00001"]
    assert entries[0]["seconds"] == 2.0  # the rewrite, delivered whole
    # the re-synced cursor sits past the torn stub, so nothing re-parses
    assert reader.torn == 0


def test_resync_never_fires_without_a_tear(tmp_path: Path):
    journal = Journal(tmp_path / "journal.jsonl")
    _fill(journal, 100)
    reader = JournalReader(journal.path)
    reader.poll()
    _fill(journal, 100, prefix="more")
    reader.poll()
    assert reader.resyncs == 0


def test_interleaved_appends_and_tears_property(tmp_path: Path):
    # Property test: under any seeded interleaving of appends, tears and
    # polls, (a) every delivered entry is byte-identical to one the
    # writer appended -- never a spliced hybrid -- and (b) every entry
    # still standing in the journal at the end was delivered to the
    # poller. (b) is exactly what the resync fix buys: the old reader
    # permanently lost the first entry re-written after a deep tear.
    import random

    for seed in range(6):
        rng = random.Random(seed)
        root = tmp_path / f"seed-{seed}"
        root.mkdir()
        journal = Journal(root / "journal.jsonl")
        reader = JournalReader(journal.path)
        appended: list[dict] = []
        delivered: list[dict] = []
        serial = 0
        for _ in range(120):
            op = rng.random()
            if op < 0.55:
                entry = {"task_id": f"t-{seed}-{serial:04d}", "status": DONE,
                         "seconds": float(rng.randrange(1, 100))}
                serial += 1
                journal.append(entry)
                appended.append(entry)
            else:
                journal.tear_tail(rng.uniform(-0.5, 1.5))  # clamps in range
            delivered.extend(reader.poll())  # the service polls constantly
        delivered.extend(reader.poll())

        # (a) no spliced hybrids: everything delivered was appended verbatim
        appended_ids = {e["task_id"]: e for e in appended}
        for entry in delivered:
            assert appended_ids[entry["task_id"]] == entry
        # (b) whatever survives in the journal reached the poller
        delivered_ids = {e["task_id"] for e in delivered}
        for entry in journal.entries():
            assert entry["task_id"] in delivered_ids
        # last-wins folding stays well-defined over any re-deliveries
        assert set(journal.completed_ids()) <= delivered_ids
