"""Property tests: journal tear/replay and store corruption invariants.

Hypothesis drives the store's two durability surfaces with randomized
damage and checks the safety properties the executor relies on:

* a torn journal tail never loses *earlier* entries, and replay matches
  a pure-logic fold of the intact prefix;
* arbitrarily interleaved failed/done entries fold to the same terminal
  set as the reference semantics (failed pops, done/na pins);
* a single flipped byte in a stored object is never served as a
  different value -- the read is either a miss (quarantined) or the
  original record, bit-identical.

Stores touch real files, so tests open their own TemporaryDirectory per
example instead of using pytest's function-scoped ``tmp_path`` (which
Hypothesis would reuse across examples).
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.campaign.spec import PointSpec
from repro.campaign.store import DONE, FAILED, NA, Journal, ResultStore


task_ids = st.sampled_from([f"task-{i}" for i in range(6)])
entries = st.lists(
    st.tuples(task_ids, st.sampled_from([DONE, FAILED, NA])),
    min_size=1, max_size=12,
)


def fold_terminal(events: list[tuple[str, str]]) -> set[str]:
    """Reference semantics of Journal.completed_ids (failed pops the id)."""
    done: set[str] = set()
    for tid, status in events:
        if status == FAILED:
            done.discard(tid)
        else:
            done.add(tid)
    return done


def append_all(journal: Journal, events: list[tuple[str, str]]) -> None:
    for tid, status in events:
        seconds = 1.0 if status == DONE else None
        journal.append({"task_id": tid, "status": status, "seconds": seconds})


@settings(max_examples=40, deadline=None)
@given(events=entries, at=st.floats(min_value=0.0, max_value=0.999))
def test_torn_tail_loses_at_most_the_last_entry(events, at):
    with tempfile.TemporaryDirectory() as tmp:
        journal = Journal(Path(tmp) / "journal.jsonl")
        append_all(journal, events)
        cut = journal.tear_tail(at)
        assert cut >= 1  # a tear always removes something
        assert journal.torn_lines() <= 1  # only the tail can be damaged
        # a 1-byte cut removes only the trailing newline: the line's
        # content was fully written, so the entry is still durable
        expected = events if cut == 1 else events[:-1]
        assert set(journal.completed_ids()) == fold_terminal(expected)


@settings(max_examples=40, deadline=None)
@given(events=entries)
def test_interleaved_entries_replay_to_the_reference_fold(events):
    with tempfile.TemporaryDirectory() as tmp:
        journal = Journal(Path(tmp) / "journal.jsonl")
        append_all(journal, events)
        assert len(journal.entries()) == len(events)
        assert set(journal.completed_ids()) == fold_terminal(events)


@settings(max_examples=40, deadline=None)
@given(events=entries, at=st.floats(min_value=0.0, max_value=0.999))
def test_appending_after_a_tear_recovers(events, at):
    with tempfile.TemporaryDirectory() as tmp:
        journal = Journal(Path(tmp) / "journal.jsonl")
        append_all(journal, events)
        journal.tear_tail(at)
        tid, status = events[-1]
        journal.append({"task_id": tid, "status": status,
                        "seconds": 1.0 if status == DONE else None})
        # the re-append supersedes the torn line; nothing earlier was lost
        assert set(journal.completed_ids()) == fold_terminal(events)


POINT = PointSpec(machine="A", backend="GCC-TBB", case="reduce",
                  size_exp=12, threads=32)
PAYLOAD = {"status": DONE, "seconds": 1.25, "error": None}


@settings(max_examples=60, deadline=None)
@given(pos=st.floats(min_value=0.0, max_value=0.999),
       mask=st.integers(min_value=1, max_value=255))
def test_flipped_byte_is_never_served_as_a_different_value(pos, mask):
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp) / "cache")
        key = store.put(POINT, PAYLOAD)
        path = store.object_path(key)
        data = bytearray(path.read_bytes())
        data[min(int(pos * len(data)), len(data) - 1)] ^= mask
        path.write_bytes(bytes(data))

        record = store.get(POINT)
        if record is None:
            # detected: unparseable or checksum mismatch, quarantined or
            # schema-drifted into a miss -- but never an exception
            assert store.quarantined <= 1
        else:
            # served: then the result slice must be bit-identical (the
            # flip landed in bookkeeping such as the checksum field name)
            assert record["result"] == PAYLOAD
            assert record["point"] == POINT.to_dict()


@settings(max_examples=30, deadline=None)
@given(at=st.floats(min_value=0.0, max_value=0.999))
def test_corrupt_hook_is_always_detected_or_harmless(at):
    # the store's own fault hook flips exactly one low bit at `at`
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp) / "cache")
        store.put(POINT, PAYLOAD)
        store.corrupt(store.key_for(POINT), at=at)
        record = store.get(POINT)
        if record is not None:
            assert record["result"] == PAYLOAD


@settings(max_examples=30, deadline=None)
@given(at=st.floats(min_value=0.0, max_value=0.999))
def test_scan_flags_what_reads_would_quarantine(at):
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp) / "cache")
        store.put(POINT, PAYLOAD)
        store.corrupt(store.key_for(POINT), at=at)
        scan = store.scan()
        assert scan.objects == 1
        reader = ResultStore(Path(tmp) / "cache")
        served = reader.get(POINT)
        if scan.errors:
            assert served is None  # what scan flags, reads refuse
        elif served is not None:
            assert served["result"] == PAYLOAD


# -- concurrent writers ------------------------------------------------------
#
# The service runs many campaigns against ONE journal-per-campaign but one
# SHARED store, and restarts can briefly overlap an old and a new daemon on
# the same directory. The append path must therefore be safe across
# *processes*: each entry lands as exactly one intact line no matter how many
# writers race (flock + single O_APPEND write).

def _append_batch(args):
    """Worker: append one process's batch of entries to the shared journal."""
    path, batch = args
    journal = Journal(Path(path))
    for tid, status in batch:
        journal.append({"task_id": tid, "status": status,
                        "seconds": 1.0 if status == DONE else None})
    return len(batch)


def _run_appenders(path: Path, batches) -> None:
    """Run one appender process per batch, all racing on ``path``."""
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(processes=len(batches)) as pool:
        counts = pool.map(_append_batch,
                          [(str(path), batch) for batch in batches])
    assert counts == [len(batch) for batch in batches]


@settings(max_examples=8, deadline=None)
@given(data=st.data())
def test_eight_racing_appenders_lose_and_tear_nothing(data):
    # 8 processes, each with its own disjoint task ids so the expected
    # terminal fold is order-independent across interleavings
    batches = []
    for proc in range(8):
        ids = st.sampled_from([f"p{proc}-t{i}" for i in range(3)])
        batches.append(data.draw(st.lists(
            st.tuples(ids, st.sampled_from([DONE, NA])),
            min_size=1, max_size=4)))
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "journal.jsonl"
        _run_appenders(path, batches)
        journal = Journal(path)
        entries = journal.entries()
        # every appended line survived, fully intact
        assert len(entries) == sum(len(b) for b in batches)
        assert journal.torn_lines() == 0
        # and the fold matches a single-writer reference journal
        reference = Journal(Path(tmp) / "reference.jsonl")
        for batch in batches:
            append_all(reference, batch)
        assert journal.completed_ids() == reference.completed_ids()


def test_concurrent_appenders_match_single_writer_bit_for_bit():
    # deterministic (non-hypothesis) witness for the acceptance bar:
    # 8 simultaneous appenders, query output identical to a single writer
    batches = [[(f"p{proc}-t{i}", DONE) for i in range(8)]
               for proc in range(8)]
    with tempfile.TemporaryDirectory() as tmp:
        racing = Path(tmp) / "racing.jsonl"
        _run_appenders(racing, batches)
        single = Journal(Path(tmp) / "single.jsonl")
        for batch in batches:
            append_all(single, batch)
        racy = Journal(racing)
        assert racy.torn_lines() == 0
        assert racy.completed_ids() == single.completed_ids()
        # same multiset of lines, byte-for-byte, just maybe reordered
        racing_lines = sorted(racing.read_bytes().splitlines())
        single_lines = sorted(single.path.read_bytes().splitlines())
        assert racing_lines == single_lines


def _run_same_campaign(args):
    """Worker: run the shared campaign spec against the shared directory."""
    path, = args
    from repro.campaign.executor import run_campaign
    from repro.campaign.spec import CampaignSpec

    spec = CampaignSpec(name="racers", machines=["A"], backends=["GCC-TBB"],
                        cases=["reduce", "transform"], size_exps=[8],
                        threads=[2])
    outcome = run_campaign(spec, campaign_dir=Path(path), resume=True)
    return outcome.stats.failed


def test_concurrent_same_dir_campaigns_converge_bit_identically():
    # two processes racing run_campaign on ONE campaign_dir (the service's
    # shared-store shape); both finish, and the final directory queries
    # identically to a fresh single run
    import multiprocessing

    from repro.campaign.executor import load_campaign, run_campaign
    from repro.campaign.spec import CampaignSpec

    ctx = multiprocessing.get_context("fork")
    with tempfile.TemporaryDirectory() as tmp:
        shared = Path(tmp) / "shared"
        with ctx.Pool(processes=4) as pool:
            failed = pool.map(_run_same_campaign, [(str(shared),)] * 4)
        assert failed == [0, 0, 0, 0]
        outcome = load_campaign(shared)
        spec = CampaignSpec(name="racers", machines=["A"],
                            backends=["GCC-TBB"],
                            cases=["reduce", "transform"], size_exps=[8],
                            threads=[2])
        solo = run_campaign(spec, campaign_dir=Path(tmp) / "solo")
        assert set(outcome.results) == set(solo.results)
        for tid, result in solo.results.items():
            assert outcome.results[tid].seconds == result.seconds
            assert outcome.results[tid].status == result.status
