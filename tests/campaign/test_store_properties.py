"""Property tests: journal tear/replay and store corruption invariants.

Hypothesis drives the store's two durability surfaces with randomized
damage and checks the safety properties the executor relies on:

* a torn journal tail never loses *earlier* entries, and replay matches
  a pure-logic fold of the intact prefix;
* arbitrarily interleaved failed/done entries fold to the same terminal
  set as the reference semantics (failed pops, done/na pins);
* a single flipped byte in a stored object is never served as a
  different value -- the read is either a miss (quarantined) or the
  original record, bit-identical.

Stores touch real files, so tests open their own TemporaryDirectory per
example instead of using pytest's function-scoped ``tmp_path`` (which
Hypothesis would reuse across examples).
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.campaign.spec import PointSpec
from repro.campaign.store import DONE, FAILED, NA, Journal, ResultStore


task_ids = st.sampled_from([f"task-{i}" for i in range(6)])
entries = st.lists(
    st.tuples(task_ids, st.sampled_from([DONE, FAILED, NA])),
    min_size=1, max_size=12,
)


def fold_terminal(events: list[tuple[str, str]]) -> set[str]:
    """Reference semantics of Journal.completed_ids (failed pops the id)."""
    done: set[str] = set()
    for tid, status in events:
        if status == FAILED:
            done.discard(tid)
        else:
            done.add(tid)
    return done


def append_all(journal: Journal, events: list[tuple[str, str]]) -> None:
    for tid, status in events:
        seconds = 1.0 if status == DONE else None
        journal.append({"task_id": tid, "status": status, "seconds": seconds})


@settings(max_examples=40, deadline=None)
@given(events=entries, at=st.floats(min_value=0.0, max_value=0.999))
def test_torn_tail_loses_at_most_the_last_entry(events, at):
    with tempfile.TemporaryDirectory() as tmp:
        journal = Journal(Path(tmp) / "journal.jsonl")
        append_all(journal, events)
        cut = journal.tear_tail(at)
        assert cut >= 1  # a tear always removes something
        assert journal.torn_lines() <= 1  # only the tail can be damaged
        # a 1-byte cut removes only the trailing newline: the line's
        # content was fully written, so the entry is still durable
        expected = events if cut == 1 else events[:-1]
        assert set(journal.completed_ids()) == fold_terminal(expected)


@settings(max_examples=40, deadline=None)
@given(events=entries)
def test_interleaved_entries_replay_to_the_reference_fold(events):
    with tempfile.TemporaryDirectory() as tmp:
        journal = Journal(Path(tmp) / "journal.jsonl")
        append_all(journal, events)
        assert len(journal.entries()) == len(events)
        assert set(journal.completed_ids()) == fold_terminal(events)


@settings(max_examples=40, deadline=None)
@given(events=entries, at=st.floats(min_value=0.0, max_value=0.999))
def test_appending_after_a_tear_recovers(events, at):
    with tempfile.TemporaryDirectory() as tmp:
        journal = Journal(Path(tmp) / "journal.jsonl")
        append_all(journal, events)
        journal.tear_tail(at)
        tid, status = events[-1]
        journal.append({"task_id": tid, "status": status,
                        "seconds": 1.0 if status == DONE else None})
        # the re-append supersedes the torn line; nothing earlier was lost
        assert set(journal.completed_ids()) == fold_terminal(events)


POINT = PointSpec(machine="A", backend="GCC-TBB", case="reduce",
                  size_exp=12, threads=32)
PAYLOAD = {"status": DONE, "seconds": 1.25, "error": None}


@settings(max_examples=60, deadline=None)
@given(pos=st.floats(min_value=0.0, max_value=0.999),
       mask=st.integers(min_value=1, max_value=255))
def test_flipped_byte_is_never_served_as_a_different_value(pos, mask):
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp) / "cache")
        key = store.put(POINT, PAYLOAD)
        path = store.object_path(key)
        data = bytearray(path.read_bytes())
        data[min(int(pos * len(data)), len(data) - 1)] ^= mask
        path.write_bytes(bytes(data))

        record = store.get(POINT)
        if record is None:
            # detected: unparseable or checksum mismatch, quarantined or
            # schema-drifted into a miss -- but never an exception
            assert store.quarantined <= 1
        else:
            # served: then the result slice must be bit-identical (the
            # flip landed in bookkeeping such as the checksum field name)
            assert record["result"] == PAYLOAD
            assert record["point"] == POINT.to_dict()


@settings(max_examples=30, deadline=None)
@given(at=st.floats(min_value=0.0, max_value=0.999))
def test_corrupt_hook_is_always_detected_or_harmless(at):
    # the store's own fault hook flips exactly one low bit at `at`
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp) / "cache")
        store.put(POINT, PAYLOAD)
        store.corrupt(store.key_for(POINT), at=at)
        record = store.get(POINT)
        if record is not None:
            assert record["result"] == PAYLOAD


@settings(max_examples=30, deadline=None)
@given(at=st.floats(min_value=0.0, max_value=0.999))
def test_scan_flags_what_reads_would_quarantine(at):
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp) / "cache")
        store.put(POINT, PAYLOAD)
        store.corrupt(store.key_for(POINT), at=at)
        scan = store.scan()
        assert scan.objects == 1
        reader = ResultStore(Path(tmp) / "cache")
        served = reader.get(POINT)
        if scan.errors:
            assert served is None  # what scan flags, reads refuse
        elif served is not None:
            assert served["result"] == PAYLOAD
