"""Wave-fused campaign execution: same answers, fewer and bigger submissions.

The executor's default path now fuses every eligible point of a wave
into one struct-of-arrays program (``repro.sim.wave``). These tests pin
the properties that make that safe to default on:

* **bit-identity** -- wave, per-curve batch and scalar campaigns produce
  identical statuses and bit-identical seconds, serial and pooled;
* **escape hatches** -- ``wave=False`` really falls back to curve-at-a-
  time batch submission (the ``--no-wave`` CLI contract);
* **retry parity** -- a failed fused wave degrades to per-point scalar
  retries exactly like a failed curve does;
* **observability** -- a traced wave campaign carries ``wave.fuse`` /
  ``wave.execute`` spans on the ``wave`` track;
* **profile gates** -- the wave path reuses contexts and thread layouts
  instead of rebuilding them per point, which is where its speedup over
  the per-curve batch path comes from.
"""

from __future__ import annotations

from repro.campaign import executor as executor_mod
from repro.campaign.executor import run_campaign
from repro.campaign.plan import plan_campaign
from repro.campaign.store import DONE, FAILED
from repro.sim import batch as batch_mod
from repro.trace import Tracer, use_tracer

from tests.campaign.test_executor import tiny_spec


def wider_spec(**kwargs):
    base = dict(name="wider", machines=("A", "B"),
                backends=("GCC-TBB", "GCC-GNU", "GCC-SEQ"),
                cases=("reduce", "inclusive_scan", "sort", "find"),
                size_exps=(10, 12))
    base.update(kwargs)
    return tiny_spec(**base)


def _assert_outcomes_identical(left, right):
    assert set(left.results) == set(right.results)
    for tid, a in left.results.items():
        b = right.results[tid]
        assert a.status == b.status, tid
        if a.seconds is None or b.seconds is None:
            assert a.seconds == b.seconds, tid
        else:
            assert a.seconds.hex() == b.seconds.hex(), tid


def test_wave_batch_and_scalar_campaigns_bit_identical():
    spec = wider_spec()
    wave = run_campaign(spec)  # wave fusion is the default
    batch = run_campaign(spec, wave=False)
    scalar = run_campaign(spec, batch=False)
    assert wave.stats.failed == 0
    _assert_outcomes_identical(wave, batch)
    _assert_outcomes_identical(wave, scalar)


def test_pool_wave_matches_serial_wave():
    spec = wider_spec()
    serial = run_campaign(spec)
    pooled = run_campaign(spec, workers=2)
    assert pooled.stats.failed == 0
    _assert_outcomes_identical(pooled, serial)


def test_no_wave_forces_curve_submissions(monkeypatch):
    """``wave=False`` must route through execute_curve, never execute_wave."""
    curves, waves = [], []
    real_curve = executor_mod.execute_curve

    def spy_curve(payloads):
        curves.append(len(payloads))
        return real_curve(payloads)

    def spy_wave(payloads):  # pragma: no cover - failure mode
        waves.append(len(payloads))
        return executor_mod.execute_wave(payloads)

    monkeypatch.setattr(executor_mod, "execute_curve", spy_curve)
    monkeypatch.setattr(executor_mod, "execute_wave", spy_wave)
    outcome = run_campaign(tiny_spec(), wave=False)
    assert outcome.stats.failed == 0
    assert curves and not waves


def test_batch_false_implies_no_wave(monkeypatch):
    """batch=False disables fusion too; everything goes through execute_point."""
    called = []
    monkeypatch.setattr(
        executor_mod, "execute_wave",
        lambda payloads: called.append(len(payloads)),
    )
    outcome = run_campaign(tiny_spec(), batch=False)
    assert outcome.stats.failed == 0
    assert not called


def test_wave_failure_retries_scalar_and_recovers(monkeypatch):
    """Every point of a failed fused wave retries through execute_point."""

    def failed(payloads):
        return [
            {"status": FAILED, "seconds": None, "error": "injected wave failure"}
            for _ in payloads
        ]

    monkeypatch.setattr(executor_mod, "execute_wave", failed)
    outcome = run_campaign(tiny_spec(), retries=1)
    assert outcome.stats.failed == 0
    executed = [r for r in outcome.results.values() if not r.cached]
    assert executed
    for result in executed:
        if result.status == DONE:
            assert result.attempts == 2  # wave failure + scalar retry
    monkeypatch.undo()

    clean = run_campaign(tiny_spec(), batch=False)
    _assert_outcomes_identical(outcome, clean)


def test_wave_fused_stage_exception_falls_back_per_point(monkeypatch):
    """A crash inside fusion degrades execute_wave itself to scalar points."""
    from repro.sim import wave as wave_mod

    def boom(entries):
        raise RuntimeError("fusion blew up")

    # execute_wave imports fuse_wave lazily, so the module patch is seen.
    monkeypatch.setattr(wave_mod, "fuse_wave", boom)
    outcome = run_campaign(tiny_spec())
    assert outcome.stats.failed == 0
    clean = run_campaign(tiny_spec(), batch=False)
    _assert_outcomes_identical(outcome, clean)


def test_shard_wave_is_balanced_and_complete():
    plan = plan_campaign(wider_spec())
    for tasks in plan.waves():
        tasks = list(tasks)
        for shards in (1, 2, 3, 7, len(tasks), len(tasks) + 5):
            parts = executor_mod._shard_wave(tasks, shards)
            assert [t for part in parts for t in part] == tasks
            assert all(parts)  # no empty shards
            sizes = {len(part) for part in parts}
            assert max(sizes) - min(sizes) <= 1  # balanced


def test_traced_wave_campaign_emits_wave_spans():
    tracer = Tracer()
    with use_tracer(tracer):
        run_campaign(tiny_spec())
    names = [s.name for s in tracer.spans if s.track == "wave"]
    assert "wave.fuse" in names
    assert "wave.execute" in names
    fuse = next(s for s in tracer.spans if s.name == "wave.fuse")
    assert fuse.category == "wave"
    assert fuse.attributes["points"] >= 1


def test_wave_campaign_builds_one_context_per_cell():
    """Context construction is cached across a wave, not repeated per point."""
    spec = wider_spec()
    executor_mod._cached_context.cache_clear()
    run_campaign(spec)
    info = executor_mod._cached_context.cache_info()
    plan = plan_campaign(spec)
    cells = {
        (t.point.machine, t.point.backend, t.point.threads,
         t.point.allocator, t.point.mode)
        for t in plan.runnable
    }
    assert 0 < info.misses <= len(cells)
    assert info.hits > info.misses  # most points reuse a cached context


def test_wave_path_builds_fewer_thread_layouts_than_batch(monkeypatch):
    """The fused engine shares layout work the per-curve path repeats."""
    spec = wider_spec()
    counts = {"n": 0}
    real_layout = batch_mod._thread_layout

    def counting_layout(thread):
        counts["n"] += 1
        return real_layout(thread)

    monkeypatch.setattr(batch_mod, "_thread_layout", counting_layout)

    counts["n"] = 0
    run_campaign(spec, wave=False)
    batch_layouts = counts["n"]

    counts["n"] = 0
    run_campaign(spec)
    wave_layouts = counts["n"]

    assert 0 < wave_layouts < batch_layouts
