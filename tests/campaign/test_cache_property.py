"""Property tests: cache soundness of the campaign store.

Two invariants the content-addressed design promises, checked over
randomly drawn specs rather than the two paper grids:

* a re-run against a warm store is served entirely from cache and is
  **bit-identical** to the cold run (the simulator is deterministic, so
  equality is exact ``==`` on floats, not approximate);
* bumping the model fingerprint shifts every cache key, forcing a full
  recompute -- which, model unchanged, reproduces the same values.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.campaign.executor import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore

MACHINES = ("A", "B", "C")
BACKENDS = ("GCC-TBB", "GCC-GNU", "GCC-HPX", "ICC-TBB", "NVC-OMP")
CASES = ("reduce", "find", "sort", "inclusive_scan", "for_each_k1")


@st.composite
def campaign_specs(draw):
    """Small random sweeps over the paper's machines/backends/cases."""
    machines = draw(st.lists(st.sampled_from(MACHINES), min_size=1,
                             max_size=2, unique=True))
    backends = draw(st.lists(st.sampled_from(BACKENDS), min_size=1,
                             max_size=2, unique=True))
    cases = draw(st.lists(st.sampled_from(CASES), min_size=1, max_size=2,
                          unique=True))
    size_exp = draw(st.integers(min_value=8, max_value=14))
    threads = draw(st.sampled_from([(None,), (1, 4), (2,), (None, 8)]))
    return CampaignSpec(
        name="prop", machines=machines, backends=backends, cases=cases,
        size_exps=(size_exp,), threads=threads,
    )


def outcomes_identical(a, b) -> bool:
    """Same tasks, same statuses, bit-identical seconds."""
    if set(a.results) != set(b.results):
        return False
    return all(
        b.results[tid].status == r.status and b.results[tid].seconds == r.seconds
        for tid, r in a.results.items()
    )


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=campaign_specs())
def test_warm_rerun_is_bit_identical_and_fully_cached(spec):
    store = ResultStore(None)
    cold = run_campaign(spec, store=store)
    warm = run_campaign(spec, store=store)
    assert warm.stats.executed == 0  # zero simulator invocations
    assert warm.stats.cache_hits == cold.stats.executed
    assert outcomes_identical(cold, warm)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=campaign_specs())
def test_fingerprint_bump_forces_recompute(spec):
    old_store = ResultStore(None, fingerprint="model-v1")
    cold = run_campaign(spec, store=old_store)
    new_store = ResultStore(None, fingerprint="model-v2")
    new_store._memory = old_store._memory  # same object bag, shifted keys
    recomputed = run_campaign(spec, store=new_store)
    assert recomputed.stats.cache_hits == 0  # every old key missed
    assert recomputed.stats.executed == cold.stats.executed
    # the model didn't actually change, so values agree exactly
    assert outcomes_identical(cold, recomputed)
