"""repro.faults: plans, decisions, injector accounting, backoff, rebuild."""

from __future__ import annotations

import json

import pytest

from repro.campaign.executor import (
    BackoffPolicy,
    _PoolHandle,
    run_campaign,
)
from repro.campaign.spec import CampaignSpec, PointSpec
from repro.campaign.store import DONE, Journal, ResultStore
from repro.errors import CampaignError, FaultPlanError, InjectedFaultError
from repro.faults import (
    FAULT_SITES,
    WORKER_SITES,
    FaultInjector,
    FaultPlan,
    apply_directive,
    decision,
    faulty_curve,
    faulty_point,
    load_fault_plan,
)
from repro.trace import Tracer, use_tracer


POINT = PointSpec(machine="A", backend="GCC-TBB", case="reduce",
                  size_exp=12, threads=32)


def tiny_spec(**kwargs) -> CampaignSpec:
    base = dict(name="tiny", machines=("A",), backends=("GCC-TBB", "GCC-GNU"),
                cases=("reduce", "inclusive_scan"), size_exps=(12,))
    base.update(kwargs)
    return CampaignSpec(**base)


# ---------------------------------------------------------------- decisions


def test_decision_is_a_deterministic_unit_draw():
    draws = [decision(7, "worker_kill", f"task-{i}") for i in range(200)]
    assert all(0.0 <= d < 1.0 for d in draws)
    assert draws == [decision(7, "worker_kill", f"task-{i}") for i in range(200)]
    # seed, site and ident all shift the draw
    assert decision(7, "worker_kill", "t") != decision(8, "worker_kill", "t")
    assert decision(7, "worker_kill", "t") != decision(7, "worker_hang", "t")
    assert decision(7, "worker_kill", "t") != decision(7, "worker_kill", "u")


def test_fires_respects_rates():
    never = FaultPlan(seed=1)
    always = FaultPlan(seed=1, **{site: 1.0 for site in FAULT_SITES})
    for site in FAULT_SITES:
        assert not never.fires(site, "t")
        assert always.fires(site, "t")


def test_with_seed_changes_the_schedule():
    plan = FaultPlan(seed=0, worker_exception=0.5)
    idents = [f"task-{i}" for i in range(64)]
    a = [plan.fires("worker_exception", i) for i in idents]
    b = [plan.with_seed(1).fires("worker_exception", i) for i in idents]
    assert a != b  # same rate, different schedule


# --------------------------------------------------------------- validation


@pytest.mark.parametrize("bad", [
    {"worker_kill": 1.5},
    {"cache_corrupt": -0.1},
    {"worker_exception": "lots"},
    {"hang_seconds": -1.0},
    {"max_faults": -1},
])
def test_fault_plan_rejects_bad_values(bad):
    with pytest.raises(FaultPlanError):
        FaultPlan(**bad)


def test_fault_plan_roundtrip_and_unknown_keys():
    plan = FaultPlan(seed=3, worker_kill=0.25, journal_torn_tail=0.5,
                     hang_seconds=2.0, max_faults=4)
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    with pytest.raises(FaultPlanError, match="unknown FaultPlan fields"):
        FaultPlan.from_dict({"worker_krash": 1.0})
    with pytest.raises(FaultPlanError, match="unknown fault site"):
        plan.rate("worker_krash")


def test_load_fault_plan(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps({"seed": 9, "cache_corrupt": 1.0}),
                    encoding="utf-8")
    plan = load_fault_plan(path)
    assert plan.seed == 9 and plan.cache_corrupt == 1.0
    with pytest.raises(FaultPlanError, match="no fault plan"):
        load_fault_plan(tmp_path / "missing.json")
    path.write_text("{torn", encoding="utf-8")
    with pytest.raises(FaultPlanError, match="invalid fault plan"):
        load_fault_plan(path)
    path.write_text("[1, 2]", encoding="utf-8")
    with pytest.raises(FaultPlanError, match="JSON object"):
        load_fault_plan(path)


# ----------------------------------------------------------------- injector


def test_injector_fires_at_most_once_per_site_and_ident():
    injector = FaultInjector(FaultPlan(worker_exception=1.0))
    assert injector.claim_worker_fault("t1") == "worker_exception"
    assert injector.claim_worker_fault("t1") is None  # a retry runs clean
    assert injector.claim_worker_fault("t2") == "worker_exception"
    assert injector.total_injected == 2


def test_worker_sites_claim_in_priority_order():
    everything = FaultInjector(FaultPlan(
        worker_exception=1.0, worker_hang=1.0, worker_kill=1.0))
    assert everything.claim_worker_fault("t") == "worker_kill"
    no_kill = FaultInjector(FaultPlan(worker_exception=1.0, worker_hang=1.0))
    assert no_kill.claim_worker_fault("t") == "worker_hang"
    assert WORKER_SITES == ("worker_kill", "worker_hang", "worker_exception")


def test_inline_claims_consider_only_exceptions():
    # kill/hang in the driver process would take the campaign down with it
    injector = FaultInjector(FaultPlan(worker_kill=1.0, worker_hang=1.0))
    assert injector.claim_worker_fault("t", pool=False) is None
    both = FaultInjector(FaultPlan(worker_kill=1.0, worker_exception=1.0))
    assert both.claim_worker_fault("t", pool=False) == "worker_exception"


def test_max_faults_caps_total_injections():
    injector = FaultInjector(FaultPlan(worker_exception=1.0, max_faults=2))
    claims = [injector.claim_worker_fault(f"t{i}") for i in range(4)]
    assert claims == ["worker_exception", "worker_exception", None, None]
    assert injector.total_injected == 2


def test_was_killed_tracks_kill_claims():
    injector = FaultInjector(FaultPlan(worker_kill=1.0))
    assert not injector.was_killed("t")
    assert injector.claim_worker_fault("t") == "worker_kill"
    assert injector.was_killed("t")
    assert not injector.was_killed("other")


def test_after_put_corrupts_and_the_store_quarantines():
    store = ResultStore(None)
    key = store.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})
    injector = FaultInjector(FaultPlan(cache_corrupt=1.0))
    injector.after_put(store, key)
    assert store.get(POINT) is None  # tampered record is never served
    assert store.quarantined == 1
    assert injector.counts == {"cache_corrupt": 1}


def test_after_journal_tears_only_the_tail(tmp_path):
    journal = Journal(tmp_path / "journal.jsonl")
    journal.append({"task_id": "a", "status": DONE, "seconds": 1.0})
    journal.append({"task_id": "b", "status": DONE, "seconds": 2.0})
    injector = FaultInjector(FaultPlan(journal_torn_tail=1.0))
    injector.after_journal(journal, "b")
    assert set(journal.completed_ids()) == {"a"}
    assert journal.torn_lines() <= 1  # a full tear deletes the line outright


def test_injections_emit_trace_spans():
    tracer = Tracer()
    injector = FaultInjector(FaultPlan(worker_exception=1.0, cache_corrupt=1.0))
    store = ResultStore(None)
    key = store.put(POINT, {"status": DONE, "seconds": 1.0, "error": None})
    with use_tracer(tracer):
        injector.claim_worker_fault("t1")
        injector.after_put(store, key)
    spans = [s for s in tracer.spans if s.name == "fault.injected"]
    assert [s.attributes["site"] for s in spans] == ["worker_exception",
                                                     "cache_corrupt"]
    assert all(s.category == "faults" for s in spans)


def test_injector_summary_lines():
    injector = FaultInjector(FaultPlan(worker_exception=1.0))
    assert injector.summary() == "no faults injected"
    injector.claim_worker_fault("t1")
    injector.claim_worker_fault("t2")
    assert injector.summary() == "injected worker_exception=2"


# ----------------------------------------------------------- worker wrappers


def test_apply_directive_exception_and_unknown():
    with pytest.raises(InjectedFaultError, match="injected worker exception"):
        apply_directive("worker_exception", 0.0)
    with pytest.raises(InjectedFaultError, match="unknown fault directive"):
        apply_directive("worker_meltdown", 0.0)


def test_faulty_wrappers_raise_or_delegate():
    payload = POINT.to_dict()
    with pytest.raises(InjectedFaultError):
        faulty_point(payload, "worker_exception", 0.0)
    with pytest.raises(InjectedFaultError):
        faulty_curve([payload, payload], [None, "worker_exception"], 0.0)
    # a zero-second hang is a no-op stall: the real evaluation still runs
    out = faulty_point(payload, "worker_hang", 0.0)
    assert out["status"] == DONE and out["seconds"] > 0


# ------------------------------------------------------------------ backoff


def test_backoff_default_is_zero_delay():
    policy = BackoffPolicy()
    assert policy.delay("t", 1) == 0.0
    assert policy.sleep("t", 3) == 0.0


def test_backoff_grows_exponentially_and_caps():
    policy = BackoffPolicy(base=0.5, factor=2.0, max_delay=1.5)
    assert [policy.delay("t", k) for k in (1, 2, 3, 4)] == [0.5, 1.0, 1.5, 1.5]


def test_backoff_jitter_is_bounded_and_deterministic():
    policy = BackoffPolicy(base=1.0, factor=1.0, jitter=0.5, seed=4)
    delays = {tid: policy.delay(tid, 1) for tid in ("a", "b", "c", "d")}
    assert all(0.5 <= d <= 1.5 for d in delays.values())
    assert len(set(delays.values())) > 1  # tasks de-correlate
    assert delays == {tid: policy.delay(tid, 1) for tid in delays}


@pytest.mark.parametrize("bad", [
    {"base": -1.0}, {"factor": 0.5}, {"max_delay": -1.0}, {"jitter": 1.5},
])
def test_backoff_rejects_bad_values(bad):
    with pytest.raises(CampaignError):
        BackoffPolicy(**bad)


# ------------------------------------------------------------- pool rebuild


def test_pool_handle_counts_and_traces_rebuilds():
    tracer = Tracer()
    handle = _PoolHandle(2)
    with use_tracer(tracer):
        handle.rebuild()
        handle.rebuild()
    handle.shutdown()
    handle.shutdown()  # idempotent
    assert handle.rebuilds == 2
    spans = [s for s in tracer.spans if s.name == "pool.rebuild"]
    assert [s.attributes["rebuilds"] for s in spans] == [1, 2]


# --------------------------------------------------- campaign-level plumbing


def test_run_campaign_surfaces_fault_counters_in_stats():
    plan = FaultPlan(seed=11, worker_exception=1.0)
    outcome = run_campaign(tiny_spec(), retries=2, faults=plan)
    assert outcome.stats.failed == 0  # every injection retried to success
    assert outcome.stats.faults_injected > 0
    assert "faults injected" in outcome.stats.summary()
    for task in outcome.plan.runnable:
        assert outcome.results[task.task_id].status == DONE


def test_run_campaign_without_faults_mentions_no_degradation():
    outcome = run_campaign(tiny_spec())
    assert outcome.stats.faults_injected == 0
    assert "faults injected" not in outcome.stats.summary()
