"""Tests for sort / stable_sort / is_sorted and the merge primitive."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import pstl
from repro.algorithms.sort import merge_sorted_arrays
from repro.types import FLOAT64


class TestSortSemantics:
    def test_sorts_permutation(self, run_ctx):
        data = np.random.default_rng(1).permutation(10_000).astype(np.float64)
        arr = run_ctx.array_from(data, FLOAT64)
        pstl.sort(run_ctx, arr)
        assert np.all(arr.data == np.arange(10_000))

    def test_already_sorted(self, run_ctx):
        arr = run_ctx.array_from(np.arange(100, dtype=np.float64), FLOAT64)
        pstl.sort(run_ctx, arr)
        assert np.all(arr.data == np.arange(100))

    def test_duplicates(self, run_ctx):
        arr = run_ctx.array_from(np.array([3.0, 1.0, 3.0, 1.0]), FLOAT64)
        pstl.sort(run_ctx, arr)
        assert arr.data.tolist() == [1, 1, 3, 3]

    def test_stable_sort_sorts(self, run_ctx):
        data = np.random.default_rng(2).permutation(1000).astype(np.float64)
        arr = run_ctx.array_from(data, FLOAT64)
        pstl.stable_sort(run_ctx, arr)
        assert np.all(np.diff(arr.data) >= 0)


class TestMergePrimitive:
    def test_merge(self):
        a = np.array([1.0, 3.0, 5.0])
        b = np.array([2.0, 4.0, 6.0])
        assert merge_sorted_arrays(a, b).tolist() == [1, 2, 3, 4, 5, 6]

    def test_merge_with_ties_stable(self):
        a = np.array([1.0, 2.0])
        b = np.array([2.0, 3.0])
        assert merge_sorted_arrays(a, b).tolist() == [1, 2, 2, 3]

    def test_merge_empty_side(self):
        a = np.array([1.0])
        assert merge_sorted_arrays(a, np.array([])).tolist() == [1.0]
        assert merge_sorted_arrays(np.array([]), a).tolist() == [1.0]


class TestIsSorted:
    def test_true(self, run_ctx):
        arr = run_ctx.array_from(np.arange(100, dtype=np.float64), FLOAT64)
        assert pstl.is_sorted(run_ctx, arr).value is True

    def test_false(self, run_ctx):
        arr = run_ctx.array_from(np.array([1.0, 3.0, 2.0]), FLOAT64)
        assert pstl.is_sorted(run_ctx, arr).value is False

    def test_until(self, run_ctx):
        arr = run_ctx.array_from(np.array([1.0, 2.0, 3.0, 0.0, 9.0]), FLOAT64)
        assert pstl.is_sorted_until(run_ctx, arr).value == 3

    def test_until_full(self, run_ctx):
        arr = run_ctx.array_from(np.arange(10, dtype=np.float64), FLOAT64)
        assert pstl.is_sorted_until(run_ctx, arr).value == 10


class TestSortCostModel:
    def test_paper_speedup_bands_mach_c(self, mach_c):
        """Fig. 7 / Table 5: GNU >> quicksort family on 128 cores."""
        from repro.backends import get_backend
        from repro.execution.context import ExecutionContext

        n = 1 << 30
        seq = ExecutionContext(mach_c, get_backend("gcc-seq"), threads=1)
        ts = pstl.sort(seq, seq.allocate(n, FLOAT64)).seconds
        speedups = {}
        for name in ("gcc-tbb", "gcc-gnu", "nvc-omp", "gcc-hpx"):
            ctx = ExecutionContext(mach_c, get_backend(name), threads=128)
            speedups[name] = ts / pstl.sort(ctx, ctx.allocate(n, FLOAT64)).seconds
        assert speedups["gcc-gnu"] > 2.5 * speedups["gcc-tbb"]
        assert speedups["nvc-omp"] < speedups["gcc-tbb"]
        assert 5 < speedups["gcc-tbb"] < 15

    def test_tbb_seq_fallback_small(self, model_ctx):
        arr = model_ctx.allocate(512, FLOAT64)  # Section 5.6 threshold
        assert pstl.sort(model_ctx, arr).profile.threads == 1

    def test_hpx_seq_below_2_15(self, mach_a, hpx):
        from repro.execution.context import ExecutionContext

        ctx = ExecutionContext(mach_a, hpx, threads=32)
        assert pstl.sort(ctx, ctx.allocate(1 << 15, FLOAT64)).profile.threads == 1
        assert pstl.sort(ctx, ctx.allocate(1 << 16, FLOAT64)).profile.threads == 32

    def test_stable_sort_slower(self, model_ctx):
        arr = model_ctx.allocate(1 << 26, FLOAT64)
        t = pstl.sort(model_ctx, arr).seconds
        ts = pstl.stable_sort(model_ctx, arr).seconds
        assert ts > t

    def test_nlogn_scaling(self, seq_ctx):
        t1 = pstl.sort(seq_ctx, seq_ctx.allocate(1 << 20, FLOAT64)).seconds
        t2 = pstl.sort(seq_ctx, seq_ctx.allocate(1 << 24, FLOAT64)).seconds
        ratio = t2 / t1
        assert 16 < ratio < 16 * 1.5  # n log n: 16 * (24/20)


@settings(max_examples=20, deadline=None)
@given(
    data=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=500,
    ),
    threads=st.sampled_from([1, 2, 5, 8]),
)
def test_sort_is_permutation_sorted(data, threads):
    """Property: output is ascending and a permutation of the input."""
    from repro.backends import get_backend
    from repro.execution.context import ExecutionContext
    from repro.machines import get_machine

    ctx = ExecutionContext(
        get_machine("A"), get_backend("gcc-tbb"), threads=threads, mode="run"
    )
    arr = ctx.array_from(np.array(data), FLOAT64)
    pstl.sort(ctx, arr)
    assert np.all(np.diff(arr.data) >= 0)
    assert np.allclose(np.sort(np.array(data)), arr.data)
