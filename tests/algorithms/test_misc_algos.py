"""Tests for minmax, adjacent, merge, compare and reverse families."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import pstl
from repro.errors import ConfigurationError
from repro.types import FLOAT64


class TestMinMax:
    def test_min_element(self, run_ctx):
        arr = run_ctx.array_from(np.array([5.0, 1.0, 3.0]), FLOAT64)
        assert pstl.min_element(run_ctx, arr).value == 1

    def test_max_element(self, run_ctx):
        arr = run_ctx.array_from(np.array([5.0, 9.0, 3.0]), FLOAT64)
        assert pstl.max_element(run_ctx, arr).value == 1

    def test_minmax(self, run_ctx):
        arr = run_ctx.array_from(np.array([5.0, 1.0, 9.0]), FLOAT64)
        assert pstl.minmax_element(run_ctx, arr).value == (1, 2)

    def test_reduce_cost_family(self, model_ctx):
        arr = model_ctx.allocate(1 << 20, FLOAT64)
        prof = pstl.min_element(model_ctx, arr).profile
        assert prof.alg == "reduce"
        assert len(prof.phases) == 2


class TestAdjacent:
    def test_adjacent_difference(self, run_ctx):
        src = run_ctx.array_from(np.array([1.0, 4.0, 9.0, 16.0]), FLOAT64)
        dst = run_ctx.allocate(4, FLOAT64)
        pstl.adjacent_difference(run_ctx, src, dst)
        assert dst.data.tolist() == [1, 3, 5, 7]

    def test_adjacent_find(self, run_ctx):
        arr = run_ctx.array_from(np.array([1.0, 2.0, 2.0, 3.0]), FLOAT64)
        assert pstl.adjacent_find(run_ctx, arr).value == 1

    def test_adjacent_find_none(self, run_ctx):
        arr = run_ctx.array_from(np.arange(8, dtype=np.float64), FLOAT64)
        assert pstl.adjacent_find(run_ctx, arr).value is None

    def test_size_checked(self, run_ctx):
        with pytest.raises(ConfigurationError):
            pstl.adjacent_difference(
                run_ctx, run_ctx.allocate(8, FLOAT64), run_ctx.allocate(4, FLOAT64)
            )


class TestMerge:
    def test_merge_two_sorted(self, run_ctx):
        a = run_ctx.array_from(np.array([1.0, 4.0, 7.0]), FLOAT64)
        b = run_ctx.array_from(np.array([2.0, 5.0, 6.0]), FLOAT64)
        out = run_ctx.allocate(6, FLOAT64)
        pstl.merge(run_ctx, a, b, out)
        assert out.data.tolist() == [1, 2, 4, 5, 6, 7]

    def test_destination_size_checked(self, run_ctx):
        a = run_ctx.allocate(4, FLOAT64)
        b = run_ctx.allocate(4, FLOAT64)
        with pytest.raises(ConfigurationError):
            pstl.merge(run_ctx, a, b, run_ctx.allocate(7, FLOAT64))

    def test_parallel_profile_has_corank(self, model_ctx):
        a = model_ctx.allocate(1 << 20, FLOAT64)
        b = model_ctx.allocate(1 << 20, FLOAT64)
        out = model_ctx.allocate(1 << 21, FLOAT64)
        prof = pstl.merge(model_ctx, a, b, out).profile
        assert [p.name for p in prof.phases] == ["corank", "merge"]


class TestCompare:
    def test_equal_true(self, run_ctx):
        data = np.arange(64, dtype=np.float64)
        a = run_ctx.array_from(data, FLOAT64)
        b = run_ctx.array_from(data, FLOAT64)
        assert pstl.equal(run_ctx, a, b).value is True

    def test_equal_false(self, run_ctx):
        a = run_ctx.array_from(np.zeros(8), FLOAT64)
        b = run_ctx.array_from(np.ones(8), FLOAT64)
        assert pstl.equal(run_ctx, a, b).value is False

    def test_equal_requires_same_length(self, run_ctx):
        with pytest.raises(ConfigurationError):
            pstl.equal(run_ctx, run_ctx.allocate(4, FLOAT64), run_ctx.allocate(5, FLOAT64))

    def test_mismatch_position(self, run_ctx):
        a = run_ctx.array_from(np.array([1.0, 2.0, 3.0]), FLOAT64)
        b = run_ctx.array_from(np.array([1.0, 9.0, 3.0]), FLOAT64)
        assert pstl.mismatch(run_ctx, a, b).value == 1

    def test_mismatch_none(self, run_ctx):
        a = run_ctx.array_from(np.ones(4), FLOAT64)
        b = run_ctx.array_from(np.ones(4), FLOAT64)
        assert pstl.mismatch(run_ctx, a, b).value is None

    def test_lexicographical(self, run_ctx):
        a = run_ctx.array_from(np.array([1.0, 2.0]), FLOAT64)
        b = run_ctx.array_from(np.array([1.0, 3.0]), FLOAT64)
        assert pstl.lexicographical_compare(run_ctx, a, b).value is True
        assert pstl.lexicographical_compare(run_ctx, b, a).value is False

    def test_lexicographical_equal_prefix(self, run_ctx):
        a = run_ctx.array_from(np.array([1.0]), FLOAT64)
        b = run_ctx.array_from(np.array([1.0, 2.0]), FLOAT64)
        assert pstl.lexicographical_compare(run_ctx, a, b).value is True

    def test_early_exit_cheaper(self, run_ctx):
        n = 1 << 16
        base = np.arange(n, dtype=np.float64)
        early = base.copy()
        early[1] += 1
        a1 = run_ctx.array_from(base, FLOAT64)
        b_same = run_ctx.array_from(base, FLOAT64)
        b_early = run_ctx.array_from(early, FLOAT64)
        t_full = pstl.equal(run_ctx, a1, b_same).seconds
        t_early = pstl.equal(run_ctx, a1, b_early).seconds
        assert t_early < t_full


class TestReverse:
    def test_reverse(self, run_ctx):
        arr = run_ctx.array_from(np.arange(9, dtype=np.float64), FLOAT64)
        pstl.reverse(run_ctx, arr)
        assert arr.data.tolist() == list(map(float, range(8, -1, -1)))

    def test_swap_ranges(self, run_ctx):
        a = run_ctx.array_from(np.zeros(8), FLOAT64)
        b = run_ctx.array_from(np.ones(8), FLOAT64)
        pstl.swap_ranges(run_ctx, a, b)
        assert np.all(a.data == 1.0)
        assert np.all(b.data == 0.0)

    def test_swap_requires_equal_length(self, run_ctx):
        with pytest.raises(ConfigurationError):
            pstl.swap_ranges(
                run_ctx, run_ctx.allocate(4, FLOAT64), run_ctx.allocate(5, FLOAT64)
            )


@settings(max_examples=20)
@given(
    a=st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=1, max_size=100),
    b=st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=1, max_size=100),
)
def test_merge_property(a, b):
    """Property: merge of two sorted lists equals sorting the union."""
    from repro.backends import get_backend
    from repro.execution.context import ExecutionContext
    from repro.machines import get_machine

    ctx = ExecutionContext(
        get_machine("A"), get_backend("gcc-tbb"), threads=4, mode="run"
    )
    sa, sb = np.sort(np.array(a)), np.sort(np.array(b))
    arr_a = ctx.array_from(sa, FLOAT64)
    arr_b = ctx.array_from(sb, FLOAT64)
    out = ctx.allocate(len(a) + len(b), FLOAT64)
    pstl.merge(ctx, arr_a, arr_b, out)
    assert np.allclose(out.data, np.sort(np.concatenate([sa, sb])))


@settings(max_examples=20)
@given(data=st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=1, max_size=100))
def test_reverse_involution(data):
    """Property: reversing twice restores the input."""
    from repro.backends import get_backend
    from repro.execution.context import ExecutionContext
    from repro.machines import get_machine

    ctx = ExecutionContext(
        get_machine("A"), get_backend("gcc-tbb"), threads=4, mode="run"
    )
    arr = ctx.array_from(np.array(data), FLOAT64)
    pstl.reverse(ctx, arr)
    pstl.reverse(ctx, arr)
    assert np.allclose(arr.data, np.array(data))
