"""Tests for the subsequence-search family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import pstl
from repro.errors import ConfigurationError
from repro.types import FLOAT64


class TestSearch:
    def test_finds_first_occurrence(self, run_ctx):
        hay = run_ctx.array_from(np.array([5.0, 1.0, 2.0, 9.0, 1.0, 2.0]), FLOAT64)
        assert pstl.search(run_ctx, hay, [1.0, 2.0]).value == 1

    def test_absent_needle(self, run_ctx):
        hay = run_ctx.array_from(np.arange(16, dtype=np.float64), FLOAT64)
        assert pstl.search(run_ctx, hay, [99.0]).value is None

    def test_needle_longer_than_haystack(self, run_ctx):
        hay = run_ctx.array_from(np.ones(2), FLOAT64)
        assert pstl.search(run_ctx, hay, [1.0, 1.0, 1.0]).value is None

    def test_whole_haystack_match(self, run_ctx):
        hay = run_ctx.array_from(np.array([3.0, 4.0]), FLOAT64)
        assert pstl.search(run_ctx, hay, [3.0, 4.0]).value == 0

    def test_empty_needle_rejected(self, run_ctx):
        hay = run_ctx.array_from(np.ones(4), FLOAT64)
        with pytest.raises(ConfigurationError):
            pstl.search(run_ctx, hay, [])

    def test_model_mode_full_scan(self, model_ctx):
        hay = model_ctx.allocate(1 << 20, FLOAT64)
        r = pstl.search(model_ctx, hay, [1.0, 2.0])
        assert r.value is None
        assert r.profile.phases[0].total_elems == pytest.approx(1 << 20)


class TestFindEnd:
    def test_last_occurrence(self, run_ctx):
        hay = run_ctx.array_from(np.array([1.0, 2.0, 8.0, 1.0, 2.0]), FLOAT64)
        assert pstl.find_end(run_ctx, hay, [1.0, 2.0]).value == 3

    def test_absent(self, run_ctx):
        hay = run_ctx.array_from(np.zeros(8), FLOAT64)
        assert pstl.find_end(run_ctx, hay, [1.0]).value is None

    def test_always_full_scan(self, run_ctx):
        """find_end can never early-exit, even with a hit at the start."""
        hay = run_ctx.array_from(np.arange(1 << 14, dtype=np.float64), FLOAT64)
        with_hit = pstl.find_end(run_ctx, hay, [0.0, 1.0])
        assert with_hit.profile.phases[0].total_elems == pytest.approx(1 << 14)


class TestFindFirstOf:
    def test_first_of_set(self, run_ctx):
        hay = run_ctx.array_from(np.array([7.0, 3.0, 5.0]), FLOAT64)
        assert pstl.find_first_of(run_ctx, hay, [5.0, 3.0]).value == 1

    def test_none_of_set(self, run_ctx):
        hay = run_ctx.array_from(np.zeros(4), FLOAT64)
        assert pstl.find_first_of(run_ctx, hay, [1.0]).value is None

    def test_empty_set_rejected(self, run_ctx):
        hay = run_ctx.array_from(np.zeros(4), FLOAT64)
        with pytest.raises(ConfigurationError):
            pstl.find_first_of(run_ctx, hay, [])


class TestSearchN:
    def test_run_found(self, run_ctx):
        arr = run_ctx.array_from(np.array([1.0, 4.0, 4.0, 4.0, 2.0]), FLOAT64)
        assert pstl.search_n(run_ctx, arr, 3, 4.0).value == 1

    def test_run_too_short(self, run_ctx):
        arr = run_ctx.array_from(np.array([4.0, 4.0, 1.0]), FLOAT64)
        assert pstl.search_n(run_ctx, arr, 3, 4.0).value is None

    def test_count_one_is_find(self, run_ctx):
        arr = run_ctx.array_from(np.array([1.0, 7.0]), FLOAT64)
        assert pstl.search_n(run_ctx, arr, 1, 7.0).value == 1

    def test_count_validated(self, run_ctx):
        arr = run_ctx.array_from(np.ones(4), FLOAT64)
        with pytest.raises(ConfigurationError):
            pstl.search_n(run_ctx, arr, 0, 1.0)


@settings(max_examples=25)
@given(
    hay=st.lists(st.integers(0, 5), min_size=2, max_size=60),
    needle=st.lists(st.integers(0, 5), min_size=1, max_size=4),
)
def test_search_matches_naive(hay, needle):
    """Property: search equals a naive O(n*m) subsequence scan."""
    from repro.backends import get_backend
    from repro.execution.context import ExecutionContext
    from repro.machines import get_machine

    ctx = ExecutionContext(
        get_machine("A"), get_backend("gcc-tbb"), threads=4, mode="run"
    )
    arr = ctx.array_from(np.array(hay, dtype=float), FLOAT64)
    expected = None
    for i in range(len(hay) - len(needle) + 1):
        if hay[i : i + len(needle)] == needle:
            expected = i
            break
    assert pstl.search(ctx, arr, [float(x) for x in needle]).value == expected
