"""Tests for the partitioning family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import pstl
from repro.errors import ConfigurationError
from repro.types import FLOAT64


class TestStablePartition:
    def test_partitions_and_preserves_order(self, run_ctx):
        data = np.array([5.0, 1.0, 6.0, 2.0, 7.0, 3.0])
        arr = run_ctx.array_from(data, FLOAT64)
        r = pstl.stable_partition(run_ctx, arr, pstl.less_than(4.0))
        assert r.value == 3
        assert arr.data.tolist() == [1, 2, 3, 5, 6, 7]  # relative order kept

    def test_all_true(self, run_ctx):
        arr = run_ctx.array_from(np.zeros(4), FLOAT64)
        assert pstl.stable_partition(run_ctx, arr, pstl.less_than(1.0)).value == 4

    def test_all_false(self, run_ctx):
        arr = run_ctx.array_from(np.ones(4), FLOAT64)
        assert pstl.stable_partition(run_ctx, arr, pstl.less_than(0.0)).value == 0

    def test_scan_family_cost(self, model_ctx):
        arr = model_ctx.allocate(1 << 22, FLOAT64)
        prof = pstl.stable_partition(model_ctx, arr, pstl.less_than(10.0)).profile
        assert prof.alg == "inclusive_scan"
        assert len(prof.phases) == 3  # count / offsets / scatter


class TestPartitionCopy:
    def test_splits(self, run_ctx):
        src = run_ctx.array_from(np.arange(6, dtype=np.float64), FLOAT64)
        t = run_ctx.allocate(6, FLOAT64)
        f = run_ctx.allocate(6, FLOAT64)
        r = pstl.partition_copy(run_ctx, src, t, f, pstl.less_than(2.0))
        assert r.value == (2, 4)
        assert t.data[:2].tolist() == [0, 1]
        assert f.data[:4].tolist() == [2, 3, 4, 5]

    def test_sizes_checked(self, run_ctx):
        src = run_ctx.allocate(8, FLOAT64)
        small = run_ctx.allocate(4, FLOAT64)
        with pytest.raises(ConfigurationError):
            pstl.partition_copy(run_ctx, src, small, small, pstl.less_than(0.0))


class TestIsPartitioned:
    def test_true(self, run_ctx):
        arr = run_ctx.array_from(np.array([1.0, 2.0, 9.0, 8.0]), FLOAT64)
        assert pstl.is_partitioned(run_ctx, arr, pstl.less_than(5.0)).value is True

    def test_false(self, run_ctx):
        arr = run_ctx.array_from(np.array([1.0, 9.0, 2.0]), FLOAT64)
        assert pstl.is_partitioned(run_ctx, arr, pstl.less_than(5.0)).value is False

    def test_empty_prefix_ok(self, run_ctx):
        arr = run_ctx.array_from(np.array([9.0, 8.0]), FLOAT64)
        assert pstl.is_partitioned(run_ctx, arr, pstl.less_than(5.0)).value is True


class TestPartitionPoint:
    def test_point(self, run_ctx):
        arr = run_ctx.array_from(np.array([1.0, 2.0, 9.0]), FLOAT64)
        assert pstl.partition_point(run_ctx, arr, pstl.less_than(5.0)).value == 2

    def test_all_true_returns_n(self, run_ctx):
        arr = run_ctx.array_from(np.zeros(5), FLOAT64)
        assert pstl.partition_point(run_ctx, arr, pstl.less_than(1.0)).value == 5

    def test_logarithmic_cost(self, seq_ctx):
        arr = seq_ctx.allocate(1 << 24, FLOAT64)
        r = pstl.partition_point(seq_ctx, arr, pstl.less_than(0.5))
        assert r.profile.phases[0].total_elems <= 32  # log2(2^24) + slack


@settings(max_examples=25)
@given(
    data=st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=120),
    threshold=st.floats(-100, 100),
    threads=st.sampled_from([1, 4, 8]),
)
def test_partition_invariants(data, threshold, threads):
    """Property: output is a permutation, split at the returned point."""
    from repro.backends import get_backend
    from repro.execution.context import ExecutionContext
    from repro.machines import get_machine

    ctx = ExecutionContext(
        get_machine("A"), get_backend("gcc-tbb"), threads=threads, mode="run"
    )
    arr = ctx.array_from(np.array(data), FLOAT64)
    r = pstl.stable_partition(ctx, arr, pstl.less_than(threshold))
    point = r.value
    assert np.all(arr.data[:point] < threshold)
    assert np.all(arr.data[point:] >= threshold)
    assert sorted(arr.data.tolist()) == sorted(data)
    # And is_partitioned must agree.
    assert pstl.is_partitioned(ctx, arr, pstl.less_than(threshold)).value is True
