"""Tests for reduce / transform_reduce."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import pstl
from repro.types import FLOAT64


class TestSemantics:
    def test_sum(self, run_ctx):
        arr = run_ctx.array_from(np.arange(1, 101, dtype=np.float64), FLOAT64)
        assert pstl.reduce(run_ctx, arr).value == pytest.approx(5050.0)

    def test_init_added(self, run_ctx):
        arr = run_ctx.array_from(np.ones(10), FLOAT64)
        assert pstl.reduce(run_ctx, arr, init=5.0).value == pytest.approx(15.0)

    def test_product(self, run_ctx):
        arr = run_ctx.array_from(np.array([2.0, 3.0, 4.0]), FLOAT64)
        assert pstl.reduce(
            run_ctx, arr, op=pstl.MULTIPLIES, init=1.0
        ).value == pytest.approx(24.0)

    def test_transform_reduce(self, run_ctx):
        arr = run_ctx.array_from(np.array([1.0, 2.0, 3.0]), FLOAT64)
        r = pstl.transform_reduce(run_ctx, arr, pstl.SQUARE)
        assert r.value == pytest.approx(14.0)

    def test_matches_sequential(self, run_ctx, mach_a, seq_backend):
        from repro.execution.context import ExecutionContext

        data = np.random.default_rng(3).normal(size=4096)
        arr_p = run_ctx.array_from(data, FLOAT64)
        seq = ExecutionContext(mach_a, seq_backend, threads=1, mode="run")
        arr_s = seq.array_from(data, FLOAT64)
        vp = pstl.reduce(run_ctx, arr_p).value
        vs = pstl.reduce(seq, arr_s).value
        assert vp == pytest.approx(vs, rel=1e-12)


class TestProfileShape:
    def test_parallel_has_combine_phase(self, model_ctx):
        arr = model_ctx.allocate(1 << 24, FLOAT64)
        prof = pstl.reduce(model_ctx, arr).profile
        assert [p.name for p in prof.phases] == ["chunk-reduce", "combine"]

    def test_sequential_single_phase(self, seq_ctx):
        arr = seq_ctx.allocate(1 << 20, FLOAT64)
        prof = pstl.reduce(seq_ctx, arr).profile
        assert len(prof.phases) == 1

    def test_read_only_traffic(self, seq_ctx):
        n = 1 << 20
        rep = pstl.reduce(seq_ctx, seq_ctx.allocate(n, FLOAT64)).report
        assert rep.counters.bytes_written == 0.0
        assert rep.counters.bytes_read == pytest.approx(8 * n)

    def test_one_fp_op_per_element(self, seq_ctx):
        n = 1 << 20
        rep = pstl.reduce(seq_ctx, seq_ctx.allocate(n, FLOAT64)).report
        assert rep.counters.fp_scalar == pytest.approx(n, rel=0.01)


class TestPaperShapes:
    def test_speedup_near_bandwidth_ratio_on_a(self, model_ctx, seq_ctx):
        """Section 5.5 / Table 5: reduce speedup ~10 on Mach A."""
        n = 1 << 30
        ts = pstl.reduce(seq_ctx, seq_ctx.allocate(n, FLOAT64)).seconds
        tp = pstl.reduce(model_ctx, model_ctx.allocate(n, FLOAT64)).seconds
        assert 7 < ts / tp < 13

    def test_icc_vectorizes(self, mach_a):
        from repro.backends import get_backend
        from repro.execution.context import ExecutionContext

        ctx = ExecutionContext(mach_a, get_backend("icc-tbb"), threads=32)
        rep = pstl.reduce(ctx, ctx.allocate(1 << 24, FLOAT64)).report
        assert rep.counters.fp_packed_256 > 0
        assert rep.counters.fp_scalar < rep.counters.fp_packed_256


@settings(max_examples=25)
@given(
    data=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=512,
    ),
    threads=st.sampled_from([1, 2, 7, 16]),
)
def test_reduce_matches_numpy(data, threads):
    """Property: parallel chunked reduce equals np.sum within tolerance."""
    from repro.backends import get_backend
    from repro.execution.context import ExecutionContext
    from repro.machines import get_machine

    ctx = ExecutionContext(
        get_machine("A"), get_backend("gcc-tbb"), threads=threads, mode="run"
    )
    arr = ctx.array_from(np.array(data), FLOAT64)
    got = pstl.reduce(ctx, arr).value
    assert got == pytest.approx(float(np.sum(np.array(data))), rel=1e-9, abs=1e-6)
