"""Tests for transform, transform_binary and the data-movement family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import pstl
from repro.errors import ConfigurationError
from repro.types import FLOAT64


class TestTransform:
    def test_unary(self, run_ctx):
        src = run_ctx.array_from(np.arange(100, dtype=np.float64), FLOAT64)
        dst = run_ctx.allocate(100, FLOAT64)
        pstl.transform(run_ctx, src, dst, pstl.SQUARE)
        assert np.allclose(dst.data, np.arange(100.0) ** 2)

    def test_binary(self, run_ctx):
        a = run_ctx.array_from(np.arange(10, dtype=np.float64), FLOAT64)
        b = run_ctx.array_from(np.full(10, 2.0), FLOAT64)
        dst = run_ctx.allocate(10, FLOAT64)
        pstl.transform_binary(run_ctx, a, b, dst, pstl.PLUS)
        assert np.allclose(dst.data, np.arange(10.0) + 2.0)

    def test_size_checked(self, run_ctx):
        src = run_ctx.allocate(10, FLOAT64)
        dst = run_ctx.allocate(5, FLOAT64)
        with pytest.raises(ConfigurationError):
            pstl.transform(run_ctx, src, dst, pstl.SQUARE)

    def test_binary_lengths_checked(self, run_ctx):
        a = run_ctx.allocate(10, FLOAT64)
        b = run_ctx.allocate(5, FLOAT64)
        with pytest.raises(ConfigurationError):
            pstl.transform_binary(run_ctx, a, b, a, pstl.PLUS)

    def test_traffic_src_plus_dst(self, seq_ctx):
        n = 1 << 18
        src, dst = seq_ctx.allocate(n, FLOAT64), seq_ctx.allocate(n, FLOAT64)
        rep = pstl.transform(seq_ctx, src, dst, pstl.SQUARE).report
        assert rep.counters.bytes_read == pytest.approx(8 * n)
        assert rep.counters.bytes_written == pytest.approx(8 * n)


class TestCopyFamily:
    def test_copy(self, run_ctx):
        src = run_ctx.array_from(np.arange(64, dtype=np.float64), FLOAT64)
        dst = run_ctx.allocate(64, FLOAT64)
        pstl.copy(run_ctx, src, dst)
        assert np.all(dst.data == src.data)

    def test_copy_n_prefix(self, run_ctx):
        src = run_ctx.array_from(np.arange(64, dtype=np.float64), FLOAT64)
        dst = run_ctx.allocate(64, FLOAT64)
        pstl.copy_n(run_ctx, src, 16, dst)
        assert np.all(dst.data[:16] == src.data[:16])

    def test_copy_if_keeps_matching(self, run_ctx):
        src = run_ctx.array_from(np.arange(100, dtype=np.float64), FLOAT64)
        dst = run_ctx.allocate(100, FLOAT64)
        r = pstl.copy_if(run_ctx, src, dst, pstl.less_than(10.0))
        assert r.value == 10
        assert sorted(dst.data[:10].tolist()) == list(map(float, range(10)))

    def test_move_aliases_copy(self, run_ctx):
        src = run_ctx.array_from(np.ones(8), FLOAT64)
        dst = run_ctx.allocate(8, FLOAT64)
        pstl.move(run_ctx, src, dst)
        assert np.all(dst.data == 1.0)

    def test_fill(self, run_ctx):
        arr = run_ctx.allocate(32, FLOAT64)
        pstl.fill(run_ctx, arr, 3.5)
        assert np.all(arr.data == 3.5)

    def test_fill_n(self, run_ctx):
        arr = run_ctx.allocate(32, FLOAT64)
        pstl.fill_n(run_ctx, arr, 8, 1.0)
        assert np.all(arr.data[:8] == 1.0)
        assert np.all(arr.data[8:] == 0.0)

    def test_generate(self, run_ctx):
        arr = run_ctx.allocate(64, FLOAT64)
        pstl.generate(
            run_ctx, arr, lambda lo, hi: np.arange(lo, hi, dtype=np.float64)
        )
        assert np.all(arr.data == np.arange(64.0))

    def test_fill_write_only_traffic(self, seq_ctx):
        n = 1 << 18
        rep = pstl.fill(seq_ctx, seq_ctx.allocate(n, FLOAT64), 0.0).report
        assert rep.counters.bytes_read == 0.0
        assert rep.counters.bytes_written == pytest.approx(8 * n)

    def test_bounds_validated(self, run_ctx):
        arr = run_ctx.allocate(8, FLOAT64)
        with pytest.raises(ConfigurationError):
            pstl.fill_n(run_ctx, arr, 9, 0.0)
        with pytest.raises(ConfigurationError):
            pstl.copy_n(run_ctx, arr, 0, arr)


@settings(max_examples=20)
@given(
    data=st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=200),
    threshold=st.floats(-100, 100),
)
def test_copy_if_matches_filter(data, threshold):
    """Property: copy_if output equals the order-preserving NumPy filter."""
    from repro.backends import get_backend
    from repro.execution.context import ExecutionContext
    from repro.machines import get_machine

    ctx = ExecutionContext(
        get_machine("A"), get_backend("gcc-tbb"), threads=4, mode="run"
    )
    src = ctx.array_from(np.array(data), FLOAT64)
    dst = ctx.allocate(len(data), FLOAT64)
    r = pstl.copy_if(ctx, src, dst, pstl.less_than(threshold))
    expected = np.array(data)[np.array(data) < threshold]
    assert r.value == len(expected)
    assert np.allclose(dst.data[: len(expected)], expected)
