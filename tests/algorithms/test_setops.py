"""Tests for the set operations (multiset semantics, like the STL)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import pstl
from repro.types import FLOAT64


def _arr(ctx, values):
    return ctx.array_from(np.array(values, dtype=float), FLOAT64)


class TestIncludes:
    def test_subset_true(self, run_ctx):
        a = _arr(run_ctx, [1, 2, 2, 3])
        b = _arr(run_ctx, [2, 3])
        assert pstl.includes(run_ctx, a, b).value is True

    def test_count_semantics(self, run_ctx):
        a = _arr(run_ctx, [1, 2, 3])
        b = _arr(run_ctx, [2, 2])  # needs two 2s
        assert pstl.includes(run_ctx, a, b).value is False

    def test_missing_value(self, run_ctx):
        a = _arr(run_ctx, [1, 3])
        b = _arr(run_ctx, [2])
        assert pstl.includes(run_ctx, a, b).value is False


class TestSetUnion:
    def test_union_max_counts(self, run_ctx):
        a = _arr(run_ctx, [1, 2, 2, 3])
        b = _arr(run_ctx, [2, 3, 4])
        out = run_ctx.allocate(8, FLOAT64)
        r = pstl.set_union(run_ctx, a, b, out)
        assert r.value == 5
        assert out.data[:5].tolist() == [1, 2, 2, 3, 4]

    def test_disjoint(self, run_ctx):
        a = _arr(run_ctx, [1, 3])
        b = _arr(run_ctx, [2, 4])
        out = run_ctx.allocate(4, FLOAT64)
        assert pstl.set_union(run_ctx, a, b, out).value == 4
        assert out.data.tolist() == [1, 2, 3, 4]


class TestSetIntersection:
    def test_min_counts(self, run_ctx):
        a = _arr(run_ctx, [1, 2, 2, 2])
        b = _arr(run_ctx, [2, 2, 5])
        out = run_ctx.allocate(8, FLOAT64)
        r = pstl.set_intersection(run_ctx, a, b, out)
        assert r.value == 2
        assert out.data[:2].tolist() == [2, 2]

    def test_empty_result(self, run_ctx):
        a = _arr(run_ctx, [1])
        b = _arr(run_ctx, [2])
        out = run_ctx.allocate(2, FLOAT64)
        assert pstl.set_intersection(run_ctx, a, b, out).value == 0


class TestSetDifferences:
    def test_difference(self, run_ctx):
        a = _arr(run_ctx, [1, 2, 2, 3])
        b = _arr(run_ctx, [2, 3])
        out = run_ctx.allocate(8, FLOAT64)
        r = pstl.set_difference(run_ctx, a, b, out)
        assert r.value == 2
        assert out.data[:2].tolist() == [1, 2]

    def test_symmetric_difference(self, run_ctx):
        a = _arr(run_ctx, [1, 2, 2])
        b = _arr(run_ctx, [2, 4])
        out = run_ctx.allocate(8, FLOAT64)
        r = pstl.set_symmetric_difference(run_ctx, a, b, out)
        assert r.value == 3
        assert out.data[:3].tolist() == [1, 2, 4]


class TestCostShape:
    def test_merge_family_profile(self, model_ctx):
        a = model_ctx.allocate(1 << 20, FLOAT64)
        b = model_ctx.allocate(1 << 20, FLOAT64)
        out = model_ctx.allocate(1 << 21, FLOAT64)
        prof = pstl.set_union(model_ctx, a, b, out).profile
        assert prof.alg == "merge"
        assert prof.threads == model_ctx.threads


@settings(max_examples=25)
@given(
    a=st.lists(st.integers(0, 8), max_size=40),
    b=st.lists(st.integers(0, 8), max_size=40),
)
def test_setops_against_counter_reference(a, b):
    """Property: all four ops match a Counter-based multiset reference."""
    from collections import Counter

    from repro.backends import get_backend
    from repro.execution.context import ExecutionContext
    from repro.machines import get_machine

    if not a or not b:
        return
    ctx = ExecutionContext(
        get_machine("A"), get_backend("gcc-tbb"), threads=4, mode="run"
    )
    sa, sb = sorted(a), sorted(b)
    ca, cb = Counter(sa), Counter(sb)
    arr_a = ctx.array_from(np.array(sa, dtype=float), FLOAT64)
    arr_b = ctx.array_from(np.array(sb, dtype=float), FLOAT64)
    out = ctx.allocate(len(a) + len(b), FLOAT64)

    expect_union = sum((ca | cb).values())
    expect_inter = sum((ca & cb).values())
    expect_diff = sum((ca - cb).values())
    expect_sym = sum(((ca - cb) + (cb - ca)).values())

    assert pstl.set_union(ctx, arr_a, arr_b, out).value == expect_union
    assert pstl.set_intersection(ctx, arr_a, arr_b, out).value == expect_inter
    assert pstl.set_difference(ctx, arr_a, arr_b, out).value == expect_diff
    assert (
        pstl.set_symmetric_difference(ctx, arr_a, arr_b, out).value == expect_sym
    )
