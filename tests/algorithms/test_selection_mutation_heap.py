"""Tests for selection (nth_element/partial_sort/inplace_merge),
mutation (replace/remove/unique/rotate) and heap checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import pstl
from repro.errors import ConfigurationError
from repro.types import FLOAT64


class TestNthElement:
    def test_median(self, run_ctx):
        data = np.random.default_rng(0).permutation(101).astype(np.float64)
        arr = run_ctx.array_from(data, FLOAT64)
        r = pstl.nth_element(run_ctx, arr, 50)
        assert r.value == 50.0
        assert np.all(arr.data[:50] <= 50.0)
        assert np.all(arr.data[51:] >= 50.0)

    def test_bounds(self, run_ctx):
        arr = run_ctx.allocate(4, FLOAT64)
        with pytest.raises(ConfigurationError):
            pstl.nth_element(run_ctx, arr, 4)

    def test_cheaper_than_sort(self, model_ctx):
        arr = model_ctx.allocate(1 << 26, FLOAT64)
        t_nth = pstl.nth_element(model_ctx, arr, 1 << 25).seconds
        t_sort = pstl.sort(model_ctx, arr).seconds
        assert t_nth < t_sort


class TestPartialSort:
    def test_front_sorted(self, run_ctx):
        data = np.random.default_rng(1).permutation(50).astype(np.float64)
        arr = run_ctx.array_from(data, FLOAT64)
        pstl.partial_sort(run_ctx, arr, 10)
        assert arr.data[:10].tolist() == list(map(float, range(10)))
        assert sorted(arr.data.tolist()) == list(map(float, range(50)))

    def test_copy_variant(self, run_ctx):
        data = np.random.default_rng(2).permutation(64).astype(np.float64)
        src = run_ctx.array_from(data, FLOAT64)
        dst = run_ctx.allocate(8, FLOAT64)
        pstl.partial_sort_copy(run_ctx, src, dst)
        assert dst.data.tolist() == list(map(float, range(8)))

    def test_copy_dst_larger_rejected(self, run_ctx):
        src = run_ctx.allocate(4, FLOAT64)
        dst = run_ctx.allocate(8, FLOAT64)
        with pytest.raises(ConfigurationError):
            pstl.partial_sort_copy(run_ctx, src, dst)

    def test_small_k_cheaper_than_sort(self, model_ctx):
        arr = model_ctx.allocate(1 << 26, FLOAT64)
        t_partial = pstl.partial_sort(model_ctx, arr, 1 << 10).seconds
        t_sort = pstl.sort(model_ctx, arr).seconds
        assert t_partial < t_sort


class TestInplaceMerge:
    def test_merges_halves(self, run_ctx):
        arr = run_ctx.array_from(np.array([1.0, 4.0, 7.0, 2.0, 3.0, 9.0]), FLOAT64)
        pstl.inplace_merge(run_ctx, arr, 3)
        assert arr.data.tolist() == [1, 2, 3, 4, 7, 9]

    def test_middle_validated(self, run_ctx):
        arr = run_ctx.allocate(4, FLOAT64)
        with pytest.raises(ConfigurationError):
            pstl.inplace_merge(run_ctx, arr, 0)


class TestReplaceRemoveUnique:
    def test_replace(self, run_ctx):
        arr = run_ctx.array_from(np.array([1.0, 5.0, 1.0]), FLOAT64)
        pstl.replace(run_ctx, arr, 1.0, 2.0)
        assert arr.data.tolist() == [2, 5, 2]

    def test_replace_if(self, run_ctx):
        arr = run_ctx.array_from(np.arange(6, dtype=np.float64), FLOAT64)
        pstl.replace_if(run_ctx, arr, pstl.less_than(3.0), -1.0)
        assert arr.data.tolist() == [-1, -1, -1, 3, 4, 5]

    def test_replace_copy(self, run_ctx):
        src = run_ctx.array_from(np.array([1.0, 2.0, 1.0]), FLOAT64)
        dst = run_ctx.allocate(3, FLOAT64)
        pstl.replace_copy(run_ctx, src, dst, 1.0, 7.0)
        assert dst.data.tolist() == [7, 2, 7]
        assert src.data.tolist() == [1, 2, 1]  # source untouched

    def test_remove_if(self, run_ctx):
        arr = run_ctx.array_from(np.arange(8, dtype=np.float64), FLOAT64)
        r = pstl.remove_if(run_ctx, arr, pstl.less_than(4.0))
        assert r.value == 4
        assert arr.data[:4].tolist() == [4, 5, 6, 7]

    def test_remove_copy(self, run_ctx):
        src = run_ctx.array_from(np.array([1.0, 0.0, 2.0, 0.0]), FLOAT64)
        dst = run_ctx.allocate(4, FLOAT64)
        r = pstl.remove_copy(run_ctx, src, dst, 0.0)
        assert r.value == 2
        assert dst.data[:2].tolist() == [1, 2]

    def test_unique(self, run_ctx):
        arr = run_ctx.array_from(np.array([1.0, 1.0, 2.0, 3.0, 3.0, 3.0]), FLOAT64)
        r = pstl.unique(run_ctx, arr)
        assert r.value == 3
        assert arr.data[:3].tolist() == [1, 2, 3]

    def test_unique_nonconsecutive_kept(self, run_ctx):
        arr = run_ctx.array_from(np.array([1.0, 2.0, 1.0]), FLOAT64)
        assert pstl.unique(run_ctx, arr).value == 3

    def test_unique_copy(self, run_ctx):
        src = run_ctx.array_from(np.array([5.0, 5.0, 6.0]), FLOAT64)
        dst = run_ctx.allocate(3, FLOAT64)
        assert pstl.unique_copy(run_ctx, src, dst).value == 2
        assert dst.data[:2].tolist() == [5, 6]


class TestRotate:
    def test_rotate(self, run_ctx):
        arr = run_ctx.array_from(np.arange(5, dtype=np.float64), FLOAT64)
        pstl.rotate(run_ctx, arr, 2)
        assert arr.data.tolist() == [2, 3, 4, 0, 1]

    def test_rotate_zero_noop(self, run_ctx):
        arr = run_ctx.array_from(np.arange(4, dtype=np.float64), FLOAT64)
        pstl.rotate(run_ctx, arr, 0)
        assert arr.data.tolist() == [0, 1, 2, 3]

    def test_rotate_copy(self, run_ctx):
        src = run_ctx.array_from(np.arange(4, dtype=np.float64), FLOAT64)
        dst = run_ctx.allocate(4, FLOAT64)
        pstl.rotate_copy(run_ctx, src, dst, 1)
        assert dst.data.tolist() == [1, 2, 3, 0]

    def test_middle_validated(self, run_ctx):
        arr = run_ctx.allocate(4, FLOAT64)
        with pytest.raises(ConfigurationError):
            pstl.rotate(run_ctx, arr, 5)


class TestHeap:
    def test_valid_heap(self, run_ctx):
        arr = run_ctx.array_from(np.array([9.0, 7.0, 8.0, 1.0, 6.0]), FLOAT64)
        assert pstl.is_heap(run_ctx, arr).value is True
        assert pstl.is_heap_until(run_ctx, arr).value == 5

    def test_violation_position(self, run_ctx):
        arr = run_ctx.array_from(np.array([9.0, 7.0, 8.0, 10.0]), FLOAT64)
        assert pstl.is_heap(run_ctx, arr).value is False
        assert pstl.is_heap_until(run_ctx, arr).value == 3

    def test_singleton_is_heap(self, run_ctx):
        arr = run_ctx.array_from(np.array([1.0]), FLOAT64)
        assert pstl.is_heap(run_ctx, arr).value is True

    def test_sorted_descending_is_heap(self, run_ctx):
        arr = run_ctx.array_from(np.arange(16, 0, -1, dtype=np.float64), FLOAT64)
        assert pstl.is_heap(run_ctx, arr).value is True


@settings(max_examples=25)
@given(
    data=st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=1, max_size=100),
    frac=st.floats(0.0, 1.0),
)
def test_nth_element_matches_sorted(data, frac):
    """Property: nth_element returns sorted(data)[nth]."""
    from repro.backends import get_backend
    from repro.execution.context import ExecutionContext
    from repro.machines import get_machine

    ctx = ExecutionContext(
        get_machine("A"), get_backend("gcc-tbb"), threads=4, mode="run"
    )
    nth = min(len(data) - 1, int(frac * len(data)))
    arr = ctx.array_from(np.array(data), FLOAT64)
    assert pstl.nth_element(ctx, arr, nth).value == sorted(data)[nth]


@settings(max_examples=25)
@given(data=st.lists(st.integers(0, 4), min_size=1, max_size=80))
def test_unique_matches_itertools_groupby(data):
    """Property: unique equals collapsing consecutive runs."""
    from itertools import groupby

    from repro.backends import get_backend
    from repro.execution.context import ExecutionContext
    from repro.machines import get_machine

    ctx = ExecutionContext(
        get_machine("A"), get_backend("gcc-tbb"), threads=4, mode="run"
    )
    arr = ctx.array_from(np.array(data, dtype=float), FLOAT64)
    expected = [float(k) for k, _ in groupby(data)]
    r = pstl.unique(ctx, arr)
    assert r.value == len(expected)
    assert arr.data[: r.value].tolist() == expected
