"""Tests for the operation/predicate cost descriptors."""

import numpy as np
import pytest

from repro.algorithms._ops import (
    MAXIMUM,
    MINIMUM,
    MULTIPLIES,
    NEGATE,
    PLUS,
    SQUARE,
    BinaryOp,
    ElementOp,
    Predicate,
    always_true,
    equals,
    greater_than,
    less_than,
)
from repro.errors import ConfigurationError


class TestElementOp:
    def test_apply(self):
        assert NEGATE(np.array([1.0, -2.0])).tolist() == [-1.0, 2.0]
        assert SQUARE(np.array([3.0])).tolist() == [9.0]

    def test_model_only_op_raises_on_call(self):
        op = ElementOp("m", 1.0, 0.0)
        with pytest.raises(ConfigurationError):
            op(np.array([1.0]))

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            ElementOp("x", -1.0, 0.0)


class TestBinaryOp:
    def test_plus_reduce(self):
        assert PLUS.reduce(np.arange(1, 5, dtype=float)) == 10.0

    def test_reduce_empty_gives_identity(self):
        assert PLUS.reduce(np.array([])) == 0.0
        assert MULTIPLIES.reduce(np.array([])) == 1.0

    def test_accumulate(self):
        acc = PLUS.accumulate(np.array([1.0, 2.0, 3.0]))
        assert acc.tolist() == [1.0, 3.0, 6.0]

    def test_combine(self):
        assert PLUS.combine(2.0, 3.0) == 5.0
        assert MULTIPLIES.combine(2.0, 3.0) == 6.0

    def test_min_max(self):
        data = np.array([3.0, 1.0, 2.0])
        assert MINIMUM.reduce(data) == 1.0
        assert MAXIMUM.reduce(data) == 3.0

    def test_model_only_raises(self):
        op = BinaryOp("m", 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            op.reduce(np.array([1.0]))


class TestPredicate:
    def test_less_than(self):
        p = less_than(2.0)
        assert p(np.array([1.0, 2.0, 3.0])).tolist() == [True, False, False]

    def test_greater_than(self):
        assert greater_than(0.0)(np.array([1.0, -1.0])).tolist() == [True, False]

    def test_equals(self):
        assert equals(5.0)(np.array([5.0, 4.0])).tolist() == [True, False]

    def test_always_true(self):
        p = always_true()
        assert p(np.zeros(3)).all()
        assert p.selectivity == 1.0

    def test_selectivity_bounds(self):
        with pytest.raises(ConfigurationError):
            Predicate("p", 1.0, selectivity=1.5)

    def test_model_only_raises(self):
        p = Predicate("p", 1.0)
        with pytest.raises(ConfigurationError):
            p(np.array([1.0]))
