"""Tests for the search family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import pstl
from repro.types import FLOAT64


def _incr(ctx, n):
    return ctx.array_from(np.arange(1, n + 1, dtype=np.float64), FLOAT64)


class TestFind:
    def test_finds_first_index(self, run_ctx):
        arr = _incr(run_ctx, 1000)
        assert pstl.find(run_ctx, arr, 500.0).value == 499

    def test_absent_returns_none(self, run_ctx):
        arr = _incr(run_ctx, 100)
        assert pstl.find(run_ctx, arr, 1e9).value is None

    def test_duplicate_returns_first(self, run_ctx):
        data = np.array([3.0, 7.0, 7.0, 1.0])
        arr = run_ctx.array_from(data, FLOAT64)
        assert pstl.find(run_ctx, arr, 7.0).value == 1

    def test_model_mode_uses_expectation(self, model_ctx):
        arr = model_ctx.allocate(1 << 20, FLOAT64)
        r = pstl.find(model_ctx, arr, 42.0)
        assert r.value == (1 << 19)  # n // 2

    def test_early_hit_cheaper_than_late_hit(self, model_ctx):
        arr = model_ctx.allocate(1 << 24, FLOAT64)
        early = pstl.find(model_ctx, arr, 0.0, expected_position=100).seconds
        late = pstl.find(
            model_ctx, arr, 0.0, expected_position=(1 << 24) - 1
        ).seconds
        assert late > early

    def test_scanned_work_half_of_full(self, seq_ctx):
        n = 1 << 20
        arr = seq_ctx.allocate(n, FLOAT64)
        rep = pstl.find(seq_ctx, arr, 1.0).report
        assert rep.counters.bytes_read == pytest.approx(8 * (n // 2 + 1), rel=0.01)


class TestFindIfFamily:
    def test_find_if(self, run_ctx):
        arr = _incr(run_ctx, 100)
        assert pstl.find_if(run_ctx, arr, pstl.greater_than(50.0)).value == 50

    def test_find_if_not(self, run_ctx):
        arr = _incr(run_ctx, 100)
        assert pstl.find_if_not(run_ctx, arr, pstl.less_than(10.0)).value == 9

    def test_any_of_true(self, run_ctx):
        arr = _incr(run_ctx, 64)
        assert pstl.any_of(run_ctx, arr, pstl.equals(7.0)).value is True

    def test_any_of_false(self, run_ctx):
        arr = _incr(run_ctx, 64)
        assert pstl.any_of(run_ctx, arr, pstl.equals(-1.0)).value is False

    def test_all_of(self, run_ctx):
        arr = _incr(run_ctx, 64)
        assert pstl.all_of(run_ctx, arr, pstl.greater_than(0.0)).value is True
        assert pstl.all_of(run_ctx, arr, pstl.less_than(10.0)).value is False

    def test_none_of(self, run_ctx):
        arr = _incr(run_ctx, 64)
        assert pstl.none_of(run_ctx, arr, pstl.equals(-1.0)).value is True
        assert pstl.none_of(run_ctx, arr, pstl.equals(5.0)).value is False


class TestCount:
    def test_count_value(self, run_ctx):
        data = np.array([1.0, 2.0, 1.0, 1.0])
        arr = run_ctx.array_from(data, FLOAT64)
        assert pstl.count(run_ctx, arr, 1.0).value == 3

    def test_count_if(self, run_ctx):
        arr = _incr(run_ctx, 100)
        assert pstl.count_if(run_ctx, arr, pstl.less_than(11.0)).value == 10

    def test_count_scans_everything(self, seq_ctx):
        n = 1 << 18
        arr = seq_ctx.allocate(n, FLOAT64)
        rep = pstl.count(seq_ctx, arr, 1.0).report
        assert rep.counters.bytes_read == pytest.approx(8 * n)


class TestBandwidthBound:
    def test_find_speedup_capped_by_stream(self, mach_b):
        """Section 5.3: find speedup ~6 at 64 threads, STREAM cap ~7.8."""
        from repro.backends import get_backend
        from repro.execution.context import ExecutionContext

        n = 1 << 30
        seq = ExecutionContext(mach_b, get_backend("gcc-seq"), threads=1)
        par = ExecutionContext(mach_b, get_backend("gcc-tbb"), threads=64)
        ts = pstl.find(seq, seq.allocate(n, FLOAT64), 1.0).seconds
        tp = pstl.find(par, par.allocate(n, FLOAT64), 1.0).seconds
        assert 3.0 < ts / tp < mach_b.ideal_bandwidth_speedup()


@settings(max_examples=25)
@given(
    n=st.integers(min_value=2, max_value=2000),
    pos=st.integers(min_value=0, max_value=1999),
    threads=st.sampled_from([1, 3, 8]),
)
def test_find_correct_for_any_position(n, pos, threads):
    """Property: find locates a unique sentinel wherever it is."""
    from repro.backends import get_backend
    from repro.execution.context import ExecutionContext
    from repro.machines import get_machine

    pos = pos % n
    ctx = ExecutionContext(
        get_machine("A"), get_backend("gcc-tbb"), threads=threads, mode="run"
    )
    data = np.zeros(n)
    data[pos] = 1.0
    arr = ctx.array_from(data, FLOAT64)
    assert pstl.find(ctx, arr, 1.0).value == pos
