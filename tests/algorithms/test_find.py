"""Tests for the search family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import pstl
from repro.types import FLOAT64


def _incr(ctx, n):
    return ctx.array_from(np.arange(1, n + 1, dtype=np.float64), FLOAT64)


class TestFind:
    def test_finds_first_index(self, run_ctx):
        arr = _incr(run_ctx, 1000)
        assert pstl.find(run_ctx, arr, 500.0).value == 499

    def test_absent_returns_none(self, run_ctx):
        arr = _incr(run_ctx, 100)
        assert pstl.find(run_ctx, arr, 1e9).value is None

    def test_duplicate_returns_first(self, run_ctx):
        data = np.array([3.0, 7.0, 7.0, 1.0])
        arr = run_ctx.array_from(data, FLOAT64)
        assert pstl.find(run_ctx, arr, 7.0).value == 1

    def test_model_mode_uses_expectation(self, model_ctx):
        arr = model_ctx.allocate(1 << 20, FLOAT64)
        r = pstl.find(model_ctx, arr, 42.0)
        assert r.value == (1 << 19)  # n // 2

    def test_early_hit_cheaper_than_late_hit(self, model_ctx):
        arr = model_ctx.allocate(1 << 24, FLOAT64)
        early = pstl.find(model_ctx, arr, 0.0, expected_position=100).seconds
        late = pstl.find(
            model_ctx, arr, 0.0, expected_position=(1 << 24) - 1
        ).seconds
        assert late > early

    def test_scanned_work_half_of_full(self, seq_ctx):
        n = 1 << 20
        arr = seq_ctx.allocate(n, FLOAT64)
        rep = pstl.find(seq_ctx, arr, 1.0).report
        assert rep.counters.bytes_read == pytest.approx(8 * (n // 2 + 1), rel=0.01)


class TestFindIfFamily:
    def test_find_if(self, run_ctx):
        arr = _incr(run_ctx, 100)
        assert pstl.find_if(run_ctx, arr, pstl.greater_than(50.0)).value == 50

    def test_find_if_not(self, run_ctx):
        arr = _incr(run_ctx, 100)
        assert pstl.find_if_not(run_ctx, arr, pstl.less_than(10.0)).value == 9

    def test_any_of_true(self, run_ctx):
        arr = _incr(run_ctx, 64)
        assert pstl.any_of(run_ctx, arr, pstl.equals(7.0)).value is True

    def test_any_of_false(self, run_ctx):
        arr = _incr(run_ctx, 64)
        assert pstl.any_of(run_ctx, arr, pstl.equals(-1.0)).value is False

    def test_all_of(self, run_ctx):
        arr = _incr(run_ctx, 64)
        assert pstl.all_of(run_ctx, arr, pstl.greater_than(0.0)).value is True
        assert pstl.all_of(run_ctx, arr, pstl.less_than(10.0)).value is False

    def test_none_of(self, run_ctx):
        arr = _incr(run_ctx, 64)
        assert pstl.none_of(run_ctx, arr, pstl.equals(-1.0)).value is True
        assert pstl.none_of(run_ctx, arr, pstl.equals(5.0)).value is False


class TestCount:
    def test_count_value(self, run_ctx):
        data = np.array([1.0, 2.0, 1.0, 1.0])
        arr = run_ctx.array_from(data, FLOAT64)
        assert pstl.count(run_ctx, arr, 1.0).value == 3

    def test_count_if(self, run_ctx):
        arr = _incr(run_ctx, 100)
        assert pstl.count_if(run_ctx, arr, pstl.less_than(11.0)).value == 10

    def test_count_scans_everything(self, seq_ctx):
        n = 1 << 18
        arr = seq_ctx.allocate(n, FLOAT64)
        rep = pstl.count(seq_ctx, arr, 1.0).report
        assert rep.counters.bytes_read == pytest.approx(8 * n)


class TestBandwidthBound:
    def test_find_speedup_capped_by_stream(self, mach_b):
        """Section 5.3: find speedup ~6 at 64 threads, STREAM cap ~7.8."""
        from repro.backends import get_backend
        from repro.execution.context import ExecutionContext

        n = 1 << 30
        seq = ExecutionContext(mach_b, get_backend("gcc-seq"), threads=1)
        par = ExecutionContext(mach_b, get_backend("gcc-tbb"), threads=64)
        ts = pstl.find(seq, seq.allocate(n, FLOAT64), 1.0).seconds
        tp = pstl.find(par, par.allocate(n, FLOAT64), 1.0).seconds
        assert 3.0 < ts / tp < mach_b.ideal_bandwidth_speedup()


@settings(max_examples=25)
@given(
    n=st.integers(min_value=2, max_value=2000),
    pos=st.integers(min_value=0, max_value=1999),
    threads=st.sampled_from([1, 3, 8]),
)
def test_find_correct_for_any_position(n, pos, threads):
    """Property: find locates a unique sentinel wherever it is."""
    from repro.backends import get_backend
    from repro.execution.context import ExecutionContext
    from repro.machines import get_machine

    pos = pos % n
    ctx = ExecutionContext(
        get_machine("A"), get_backend("gcc-tbb"), threads=threads, mode="run"
    )
    data = np.zeros(n)
    data[pos] = 1.0
    arr = ctx.array_from(data, FLOAT64)
    assert pstl.find(ctx, arr, 1.0).value == pos


class TestExpectedHit:
    """Edge cases of the model-mode expected first-hit position."""

    def test_empty_input_has_no_hit(self):
        """n = 0 must yield None, not min(n - 1, ...) = -1."""
        from repro.algorithms.find import _expected_hit

        assert _expected_hit(0, 0.5) is None
        assert _expected_hit(-3, 0.5) is None

    def test_zero_selectivity_scans_everything(self):
        from repro.algorithms.find import _expected_hit

        assert _expected_hit(100, 0.0) is None
        assert _expected_hit(100, -0.1) is None

    def test_full_selectivity_hits_first_element(self):
        from repro.algorithms.find import _expected_hit

        assert _expected_hit(100, 1.0) == 0
        assert _expected_hit(1, 1.0) == 0

    def test_denormal_selectivity_does_not_overflow(self):
        """1/s overflows to inf for denormal s; must clamp, not raise."""
        from repro.algorithms.find import _expected_hit

        assert _expected_hit(100, 5e-324) == 99

    @given(
        n=st.integers(min_value=0, max_value=1 << 30),
        selectivity=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_hit_always_in_range(self, n, selectivity):
        """Property: the result is None or a valid index in [0, n)."""
        from repro.algorithms.find import _expected_hit

        hit = _expected_hit(n, selectivity)
        if hit is not None:
            assert 0 <= hit < n


@settings(max_examples=30)
@given(
    n=st.integers(min_value=1, max_value=512),
    pos=st.integers(min_value=0, max_value=511),
    threads=st.sampled_from([1, 4, 7]),
)
def test_early_exit_family_agrees_on_position(n, pos, threads):
    """Property: find/find_if/any_of agree on the first-hit position and
    early-exit consistently (tiny n and boundary positions included)."""
    from repro.backends import get_backend
    from repro.execution.context import ExecutionContext
    from repro.machines import get_machine

    pos = pos % n
    ctx = ExecutionContext(
        get_machine("A"), get_backend("gcc-tbb"), threads=threads, mode="run"
    )
    data = np.zeros(n)
    data[pos:] = 2.0  # predicate x > 1 first satisfied exactly at pos
    arr = ctx.array_from(data, FLOAT64)
    pred = pstl.greater_than(1.0)
    assert pstl.find(ctx, arr, 2.0).value == pos
    assert pstl.find_if(ctx, arr, pred).value == pos
    assert pstl.any_of(ctx, arr, pred).value is True
    # the scan stops at the hit: a later sentinel must not change cost
    if pos < n - 1:
        report_at_hit = pstl.find_if(ctx, arr, pred).report
        data2 = data.copy()
        data2[-1] = 3.0
        arr2 = ctx.array_from(data2, FLOAT64)
        assert pstl.find_if(ctx, arr2, pred).report.seconds == (
            report_at_hit.seconds
        )


@settings(max_examples=20)
@given(
    n=st.integers(min_value=1, max_value=300),
    selectivity=st.floats(min_value=0.0, max_value=1.0),
)
def test_model_mode_find_if_never_crashes_on_edge_selectivity(n, selectivity):
    """Property: model-mode find_if is well-defined for any selectivity."""
    from repro.backends import get_backend
    from repro.execution.context import ExecutionContext
    from repro.machines import get_machine
    from repro.algorithms._ops import Predicate

    ctx = ExecutionContext(
        get_machine("A"), get_backend("gcc-tbb"), threads=4, mode="model"
    )
    arr = ctx.allocate(n, FLOAT64)
    pred = Predicate("p", instr_per_elem=1.0, selectivity=selectivity)
    result = pstl.find_if(ctx, arr, pred)
    assert result.report.seconds >= 0.0
