"""Tests for the scan family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import pstl
from repro.errors import UnsupportedOperationError
from repro.types import FLOAT64


class TestInclusiveScan:
    def test_prefix_sum(self, run_ctx):
        arr = run_ctx.array_from(np.arange(1, 9, dtype=np.float64), FLOAT64)
        out = run_ctx.allocate(8, FLOAT64)
        pstl.inclusive_scan(run_ctx, arr, out=out)
        assert out.data.tolist() == [1, 3, 6, 10, 15, 21, 28, 36]

    def test_in_place_default(self, run_ctx):
        arr = run_ctx.array_from(np.ones(4), FLOAT64)
        r = pstl.inclusive_scan(run_ctx, arr)
        assert arr.data.tolist() == [1, 2, 3, 4]
        assert r.value == 4.0

    def test_multiply_scan(self, run_ctx):
        arr = run_ctx.array_from(np.full(4, 2.0), FLOAT64)
        pstl.inclusive_scan(run_ctx, arr, op=pstl.MULTIPLIES)
        assert arr.data.tolist() == [2, 4, 8, 16]


class TestExclusiveScan:
    def test_shifted_with_init(self, run_ctx):
        arr = run_ctx.array_from(np.arange(1, 5, dtype=np.float64), FLOAT64)
        out = run_ctx.allocate(4, FLOAT64)
        pstl.exclusive_scan(run_ctx, arr, init=10.0, out=out)
        assert out.data.tolist() == [10, 11, 13, 16]

    def test_sequential_matches_parallel(self, run_ctx, mach_a, seq_backend):
        from repro.execution.context import ExecutionContext

        data = np.random.default_rng(0).random(1000)
        seq = ExecutionContext(mach_a, seq_backend, threads=1, mode="run")
        a1, o1 = run_ctx.array_from(data, FLOAT64), run_ctx.allocate(1000, FLOAT64)
        a2, o2 = seq.array_from(data, FLOAT64), seq.allocate(1000, FLOAT64)
        pstl.exclusive_scan(run_ctx, a1, init=1.5, out=o1)
        pstl.exclusive_scan(seq, a2, init=1.5, out=o2)
        assert np.allclose(o1.data, o2.data)


class TestTransformScans:
    def test_transform_inclusive(self, run_ctx):
        arr = run_ctx.array_from(np.array([1.0, 2.0, 3.0]), FLOAT64)
        out = run_ctx.allocate(3, FLOAT64)
        pstl.transform_inclusive_scan(run_ctx, arr, pstl.SQUARE, out=out)
        assert out.data.tolist() == [1, 5, 14]

    def test_transform_exclusive(self, run_ctx):
        arr = run_ctx.array_from(np.array([1.0, 2.0, 3.0]), FLOAT64)
        out = run_ctx.allocate(3, FLOAT64)
        pstl.transform_exclusive_scan(run_ctx, arr, pstl.SQUARE, init=0.0, out=out)
        assert out.data.tolist() == [0, 1, 5]


class TestCapabilityGaps:
    def test_gnu_raises(self, mach_a, gnu):
        """Section 5.4: GNU has no parallel inclusive_scan -> paper's N/A."""
        from repro.execution.context import ExecutionContext

        ctx = ExecutionContext(mach_a, gnu, threads=8)
        with pytest.raises(UnsupportedOperationError):
            pstl.inclusive_scan(ctx, ctx.allocate(1 << 20, FLOAT64))

    def test_nvc_sequential_fallback(self, mach_a):
        """Section 5.4: NVC-OMP scan runs sequentially (speedup ~0.9)."""
        from repro.backends import get_backend
        from repro.execution.context import ExecutionContext

        ctx = ExecutionContext(mach_a, get_backend("nvc-omp"), threads=32)
        prof = pstl.inclusive_scan(ctx, ctx.allocate(1 << 24, FLOAT64)).profile
        assert prof.threads == 1


class TestProfileShape:
    def test_three_phase_parallel_scan(self, model_ctx):
        arr = model_ctx.allocate(1 << 24, FLOAT64)
        prof = pstl.inclusive_scan(model_ctx, arr).profile
        assert [p.name for p in prof.phases] == [
            "chunk-reduce",
            "carry-scan",
            "rescan",
        ]
        assert prof.regions == 2

    def test_parallel_reads_twice(self, model_ctx, seq_ctx):
        n = 1 << 24
        par = pstl.inclusive_scan(model_ctx, model_ctx.allocate(n, FLOAT64)).report
        seq = pstl.inclusive_scan(seq_ctx, seq_ctx.allocate(n, FLOAT64)).report
        assert par.counters.bytes_read > 1.8 * seq.counters.bytes_read

    def test_speedup_well_below_bandwidth_ratio(self, model_ctx, seq_ctx):
        """Section 5.4: scan's extra pass keeps the speedup near ~4-5."""
        n = 1 << 30
        ts = pstl.inclusive_scan(seq_ctx, seq_ctx.allocate(n, FLOAT64)).seconds
        tp = pstl.inclusive_scan(model_ctx, model_ctx.allocate(n, FLOAT64)).seconds
        assert 2.5 < ts / tp < 7.0


@settings(max_examples=25)
@given(
    data=st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=1,
        max_size=300,
    ),
    threads=st.sampled_from([1, 2, 5, 8]),
)
def test_inclusive_scan_matches_cumsum(data, threads):
    """Property: chunked scan equals np.cumsum for any input and team size."""
    from repro.backends import get_backend
    from repro.execution.context import ExecutionContext
    from repro.machines import get_machine

    ctx = ExecutionContext(
        get_machine("A"), get_backend("gcc-tbb"), threads=threads, mode="run"
    )
    arr = ctx.array_from(np.array(data), FLOAT64)
    out = ctx.allocate(len(data), FLOAT64)
    pstl.inclusive_scan(ctx, arr, out=out)
    assert np.allclose(out.data, np.cumsum(np.array(data)), atol=1e-6)
