"""Model-mode profiles must agree with run-mode profiles.

This is the core validity argument of DESIGN.md section 1: the paper-scale
sweeps run in model mode, so model mode must emit the same work profiles
(hence the same costs) as actually executing the algorithm, for every
deterministic algorithm. Early-exit algorithms agree whenever the actual
hit matches the modeled expectation.
"""

import numpy as np
import pytest

from repro import pstl
from repro.backends import get_backend
from repro.execution.context import ExecutionContext
from repro.machines import get_machine
from repro.suite.kernels import listing1_kernel
from repro.types import FLOAT64

N = 1 << 14


@pytest.fixture(params=["gcc-tbb", "gcc-gnu", "gcc-hpx", "nvc-omp"])
def ctx_pair(request):
    machine = get_machine("A")
    backend = get_backend(request.param)
    run = ExecutionContext(machine, backend, threads=8, mode="run")
    model = ExecutionContext(machine, backend, threads=8, mode="model")
    return run, model


def _assert_profiles_equal(p_run, p_model):
    assert p_run.alg == p_model.alg
    assert p_run.threads == p_model.threads
    assert p_run.regions == p_model.regions
    assert len(p_run.phases) == len(p_model.phases)
    for a, b in zip(p_run.phases, p_model.phases):
        assert a.name == b.name
        assert a.chunks == b.chunks
        assert a.working_set == b.working_set
        assert a.sched_chunks == b.sched_chunks


def test_for_each_parity(ctx_pair):
    run, model = ctx_pair
    kernel = listing1_kernel(5)
    arr_r = run.array_from(np.arange(N, dtype=np.float64), FLOAT64)
    arr_m = model.allocate(N, FLOAT64)
    _assert_profiles_equal(
        pstl.for_each(run, arr_r, kernel).profile,
        pstl.for_each(model, arr_m, kernel).profile,
    )


def test_reduce_parity(ctx_pair):
    run, model = ctx_pair
    arr_r = run.array_from(np.ones(N), FLOAT64)
    arr_m = model.allocate(N, FLOAT64)
    _assert_profiles_equal(
        pstl.reduce(run, arr_r).profile, pstl.reduce(model, arr_m).profile
    )


def test_scan_parity(ctx_pair):
    run, model = ctx_pair
    if run.backend.name == "GCC-GNU":
        pytest.skip("GNU has no parallel scan (paper N/A)")
    arr_r = run.array_from(np.ones(N), FLOAT64)
    out_r = run.allocate(N, FLOAT64)
    arr_m = model.allocate(N, FLOAT64)
    out_m = model.allocate(N, FLOAT64)
    _assert_profiles_equal(
        pstl.inclusive_scan(run, arr_r, out=out_r).profile,
        pstl.inclusive_scan(model, arr_m, out=out_m).profile,
    )


def test_sort_parity(ctx_pair):
    run, model = ctx_pair
    data = np.random.default_rng(0).permutation(N).astype(np.float64)
    arr_r = run.array_from(data, FLOAT64)
    arr_m = model.allocate(N, FLOAT64)
    _assert_profiles_equal(
        pstl.sort(run, arr_r).profile, pstl.sort(model, arr_m).profile
    )


def test_find_expected_work_matches_average_run_work(ctx_pair):
    """Model-mode find work equals run-mode work averaged over targets.

    Model mode budgets the scan with the *expectation* over a uniform
    target; sampling many run-mode hits must converge to it.
    """
    run, model = ctx_pair
    rng = np.random.default_rng(7)
    samples = []
    for _ in range(40):
        hit = int(rng.integers(0, N))
        data = np.zeros(N)
        data[hit] = 1.0
        arr_r = run.array_from(data, FLOAT64)
        samples.append(pstl.find(run, arr_r, 1.0).profile.phases[0].total_elems)
    arr_m = model.allocate(N, FLOAT64)
    expected = pstl.find(model, arr_m, 1.0).profile.phases[0].total_elems
    assert np.mean(samples) == pytest.approx(expected, rel=0.35)


def test_simulated_times_identical(ctx_pair):
    """Same profile -> bit-identical simulated seconds."""
    run, model = ctx_pair
    arr_r = run.array_from(np.ones(N), FLOAT64)
    arr_m = model.allocate(N, FLOAT64)
    t_run = pstl.reduce(run, arr_r).seconds
    t_model = pstl.reduce(model, arr_m).seconds
    assert t_run == t_model
