"""Tests for for_each / for_each_n."""

import numpy as np
import pytest

from repro import pstl
from repro.errors import ConfigurationError
from repro.suite.kernels import listing1_kernel
from repro.types import FLOAT64


class TestSemantics:
    def test_listing1_result_is_k_it(self, run_ctx):
        arr = run_ctx.array_from(np.arange(100, dtype=np.float64), FLOAT64)
        pstl.for_each(run_ctx, arr, listing1_kernel(7))
        assert np.all(arr.data == 7.0)

    def test_custom_op_applied_per_chunk(self, run_ctx):
        arr = run_ctx.array_from(np.arange(1000, dtype=np.float64), FLOAT64)
        pstl.for_each(run_ctx, arr, pstl.SQUARE)
        assert np.allclose(arr.data, np.arange(1000, dtype=np.float64) ** 2)

    def test_for_each_n_prefix_only(self, run_ctx):
        arr = run_ctx.array_from(np.ones(16), FLOAT64)
        pstl.for_each_n(run_ctx, arr, 8, pstl.NEGATE)
        assert np.all(arr.data[:8] == -1.0)
        assert np.all(arr.data[8:] == 1.0)

    def test_for_each_n_bounds(self, run_ctx):
        arr = run_ctx.allocate(8, FLOAT64)
        with pytest.raises(ConfigurationError):
            pstl.for_each_n(run_ctx, arr, 9, pstl.NEGATE)

    def test_returns_none_value(self, run_ctx):
        arr = run_ctx.allocate(8, FLOAT64)
        assert pstl.for_each(run_ctx, arr, listing1_kernel(1)).value is None


class TestCostModel:
    def test_k1000_costs_more_than_k1(self, model_ctx):
        arr = model_ctx.allocate(1 << 24, FLOAT64)
        t1 = pstl.for_each(model_ctx, arr, listing1_kernel(1)).seconds
        t1000 = pstl.for_each(model_ctx, arr, listing1_kernel(1000)).seconds
        assert t1000 > 50 * t1

    def test_fp_counter_is_k_per_element(self, model_ctx):
        n = 1 << 20
        arr = model_ctx.allocate(n, FLOAT64)
        rep = pstl.for_each(model_ctx, arr, listing1_kernel(3)).report
        assert rep.counters.fp_scalar == pytest.approx(3 * n)

    def test_traffic_read_plus_write(self, seq_ctx):
        n = 1 << 20
        arr = seq_ctx.allocate(n, FLOAT64)
        rep = pstl.for_each(seq_ctx, arr, listing1_kernel(1)).report
        assert rep.counters.data_volume == pytest.approx(16 * n)

    def test_parallel_faster_at_scale(self, model_ctx, seq_ctx):
        big = 1 << 28
        tp = pstl.for_each(
            model_ctx, model_ctx.allocate(big, FLOAT64), listing1_kernel(1)
        ).seconds
        ts = pstl.for_each(
            seq_ctx, seq_ctx.allocate(big, FLOAT64), listing1_kernel(1)
        ).seconds
        assert ts > 3 * tp

    def test_sequential_faster_at_tiny_sizes(self, model_ctx, seq_ctx):
        tiny = 1 << 6
        tp = pstl.for_each(
            model_ctx, model_ctx.allocate(tiny, FLOAT64), listing1_kernel(1)
        ).seconds
        ts = pstl.for_each(
            seq_ctx, seq_ctx.allocate(tiny, FLOAT64), listing1_kernel(1)
        ).seconds
        assert ts < tp

    def test_profile_single_parallel_phase(self, model_ctx):
        arr = model_ctx.allocate(1 << 20, FLOAT64)
        prof = pstl.for_each(model_ctx, arr, listing1_kernel(1)).profile
        assert prof.alg == "for_each"
        assert len(prof.phases) == 1
        assert prof.threads == 32

    def test_gnu_fallback_profile_is_sequential(self, mach_a, gnu):
        from repro.execution.context import ExecutionContext

        ctx = ExecutionContext(mach_a, gnu, threads=8, mode="model")
        arr = ctx.allocate(1 << 9, FLOAT64)  # below the 2^10 threshold
        prof = pstl.for_each(ctx, arr, listing1_kernel(1)).profile
        assert prof.threads == 1
        assert prof.regions == 0
