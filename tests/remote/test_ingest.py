"""Segment ingest: the three dedup layers that make shipping exactly-once."""

from __future__ import annotations

import pytest

from repro.campaign.spec import PointSpec
from repro.campaign.store import ResultStore
from repro.errors import SegmentError
from repro.remote.segment import (
    SegmentManifest,
    result_row,
    rows_checksum,
)
from repro.remote.ship import SegmentIngestor, SegmentLedger


def _point(i: int) -> dict:
    return {"machine": "A", "backend": "GCC-TBB", "case": "reduce",
            "size_exp": 8 + i, "threads": 2, "mode": "model",
            "allocator": None, "min_time": 0.0}


def _segment(name: str, rows: list[dict], *,
             executor: str = "ex-1", epoch: int = 1,
             wave: str = "c/w1") -> tuple[SegmentManifest, list[dict]]:
    manifest = SegmentManifest(segment=name, executor=executor, epoch=epoch,
                               wave=wave, rows=len(rows), size=0,
                               checksum=rows_checksum(rows))
    return manifest, rows


def _done_rows(n: int, start: int = 0) -> list[dict]:
    return [
        result_row(f"t{i}", _point(i),
                   {"status": "done", "seconds": 0.25, "error": None},
                   wall_ms=2.0)
        for i in range(start, start + n)
    ]


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "cache")


@pytest.fixture
def ingestor(store, tmp_path):
    return SegmentIngestor(store, tmp_path / "ingest.jsonl")


def test_fresh_segment_lands_every_storable_row(ingestor, store):
    manifest, rows = _segment("s1", _done_rows(3))
    report = ingestor.ingest(manifest, rows)
    assert report.segments == 1
    assert report.ingested == 3
    assert report.deduped == 0
    for row in rows:
        point = PointSpec.from_dict(row["point"])
        record = store.get(point)
        assert record is not None
        assert record["result"]["seconds"] == 0.25


def test_reshipped_segment_is_skipped_whole_by_the_ledger(ingestor):
    manifest, rows = _segment("s1", _done_rows(3))
    ingestor.ingest(manifest, rows)
    report = ingestor.ingest(manifest, rows)
    assert report.duplicate_segments == 1
    assert report.ingested == 3  # unchanged: nothing landed twice


def test_recomputed_identical_segment_dedups_even_under_a_new_name(ingestor):
    """A reassigned executor's recomputed segment hashes identically."""
    rows = _done_rows(3)
    first, _ = _segment("s1-e1-l1", rows, executor="ex-1")
    second, _ = _segment("s1-e2-l1", [dict(r) for r in rows], executor="ex-2")
    assert first.checksum == second.checksum
    ingestor.ingest(first, rows)
    report = ingestor.ingest(second, rows)
    assert report.duplicate_segments == 1
    assert report.ingested == 3


def test_overlapping_segments_dedup_row_by_row(ingestor):
    """Different shardings overlap; the index layer absorbs the overlap."""
    a_manifest, a_rows = _segment("a", _done_rows(3))
    b_manifest, b_rows = _segment("b", _done_rows(3, start=1))  # t1..t3
    ingestor.ingest(a_manifest, a_rows)
    report = ingestor.ingest(b_manifest, b_rows)
    assert report.ingested == 3 + 1  # only t3 was new
    assert report.deduped == 2


def test_failed_rows_are_skipped_not_stored(ingestor, store):
    rows = _done_rows(1) + [
        result_row("t9", _point(9),
                   {"status": "failed", "seconds": None, "error": "boom"})
    ]
    manifest, rows = _segment("s", rows)
    report = ingestor.ingest(manifest, rows)
    assert report.ingested == 1
    assert report.skipped == 1
    assert store.get(PointSpec.from_dict(_point(9))) is None


def test_drifted_point_schema_is_skipped(ingestor):
    bad = result_row("t0", {"machine": "A"},  # not a full point spec
                     {"status": "done", "seconds": 0.1, "error": None})
    manifest, rows = _segment("s", [bad])
    report = ingestor.ingest(manifest, rows)
    assert report.skipped == 1
    assert report.ingested == 0


def test_corrupt_shipment_is_rejected_whole(ingestor, store):
    manifest, rows = _segment("s", _done_rows(3))
    rows[0]["result"]["seconds"] = 123.0  # tampered after sealing
    with pytest.raises(SegmentError, match="checksum mismatch"):
        ingestor.ingest(manifest, rows)
    assert ingestor.report.ingested == 0
    assert store.get(PointSpec.from_dict(_point(1))) is None


def test_ledger_survives_process_restart(tmp_path, store):
    manifest, rows = _segment("s", _done_rows(2))
    SegmentIngestor(store, tmp_path / "ledger.jsonl").ingest(manifest, rows)
    # a fresh ingestor (fresh process) still recognises the segment
    reborn = SegmentIngestor(store, tmp_path / "ledger.jsonl")
    report = reborn.ingest(manifest, rows)
    assert report.duplicate_segments == 1
    assert report.ingested == 0


def test_ledger_records_are_queryable(tmp_path):
    ledger = SegmentLedger(tmp_path / "ledger.jsonl")
    manifest, _ = _segment("s", _done_rows(1))
    assert not ledger.seen(manifest.checksum)
    ledger.record(manifest, ingested=1, deduped=0)
    assert ledger.seen(manifest.checksum)


def test_by_executor_attribution(ingestor):
    m1, r1 = _segment("a", _done_rows(2), executor="ex-1")
    m2, r2 = _segment("b", _done_rows(2, start=5), executor="ex-2")
    ingestor.ingest(m1, r1)
    ingestor.ingest(m2, r2)
    assert ingestor.report.by_executor == {"ex-1": 2, "ex-2": 2}
