"""Property test: concurrent fenced appenders + chaos, exactly-once ingest.

Hypothesis drives randomized scenarios of the full shipping pipeline:

- N appender threads concurrently write their shard of result rows into
  lease-fenced private segments (real threads, real flocked files);
- random chaos per shard: a mid-write lease *expiry* (the appender's
  next fenced append raises ``LeaseExpiredError``, it re-acquires and
  rewrites) or a *takeover* (another holder claims the lapsed lease,
  the original appender's append raises ``StaleWriterError`` and the
  new holder recomputes the shard -- reassignment in miniature);
- random shard overlap (two appenders own some of the same points) and
  random re-shipping of every sealed segment.

Whatever the interleaving, ingest must be exactly-once: every expected
point present, no point landed twice (no superseded index rows), and
the ingested-row count equal to the number of unique points. Three
fixed derandomization seeds keep CI deterministic while varying the
explored scenarios (satellite of docs/DISTRIBUTION.md).
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, seed, settings, strategies as st  # noqa: E402

from repro.campaign.spec import PointSpec  # noqa: E402
from repro.campaign.store import ResultStore  # noqa: E402
from repro.errors import LeaseExpiredError, StaleWriterError  # noqa: E402
from repro.remote.lease import LeaseFile  # noqa: E402
from repro.remote.segment import SegmentWriter, result_row  # noqa: E402
from repro.remote.ship import SegmentIngestor  # noqa: E402

CASES = ("reduce", "transform", "sort", "copy", "find", "merge")


class FakeClock:
    """Thread-owned settable clock driving one lease file's expiry."""

    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now


def _point(i: int) -> dict:
    return PointSpec(machine="A", backend="GCC-TBB",
                     case=CASES[i % len(CASES)],
                     size_exp=8 + i // len(CASES), threads=2).to_dict()


def _row(i: int) -> dict:
    return result_row(f"t{i}", _point(i),
                      {"status": "done", "seconds": 0.5 + i, "error": None},
                      wall_ms=1.0)


def _append_shard(root: Path, shard_id: int, rows: list[dict],
                  chaos: str, chaos_at: int, sealed: list) -> None:
    """One appender thread: fenced writes, chaos mid-write, seal, collect.

    ``chaos`` is ``"none"``, ``"expire"`` (lease lapses mid-write, the
    holder re-acquires and rewrites) or ``"takeover"`` (a second holder
    claims the lapsed lease and recomputes the shard).
    """
    clock = FakeClock()
    lease_file = LeaseFile(root / "leases" / f"s{shard_id}.json", clock=clock)
    holder = f"ex-{shard_id}"

    lease = lease_file.acquire(holder, ttl=5.0)
    writer = SegmentWriter(root / "segments", f"s{shard_id}-l{lease.epoch}",
                           executor=holder, epoch=1, wave=f"c/w{shard_id}",
                           fence=lease_file.guard(lease))
    fired = False
    for n, row in enumerate(rows):
        if chaos != "none" and n == chaos_at:
            clock.now += 10.0  # the lease lapses mid-write
            if chaos == "takeover":
                break
            with pytest.raises(LeaseExpiredError):
                writer.append(row)
            fired = True
            # re-acquire (epoch bump) and rewrite into a fresh segment
            lease = lease_file.acquire(holder, ttl=5.0)
            writer = SegmentWriter(
                root / "segments", f"s{shard_id}-l{lease.epoch}",
                executor=holder, epoch=1, wave=f"c/w{shard_id}",
                fence=lease_file.guard(lease))
            for replay in rows[:n]:
                writer.append(replay)
        writer.append(row)
    if chaos == "takeover":
        # reassignment: a new holder fences the original out and recomputes
        takeover = lease_file.acquire(f"re-{shard_id}", ttl=5.0)
        with pytest.raises(StaleWriterError):
            writer.append(rows[min(chaos_at, len(rows) - 1)])
        writer = SegmentWriter(
            root / "segments", f"s{shard_id}-re-l{takeover.epoch}",
            executor=f"re-{shard_id}", epoch=2, wave=f"c/w{shard_id}",
            fence=lease_file.guard(takeover))
        for row in rows:
            writer.append(row)
    elif chaos == "expire":
        assert fired or chaos_at >= len(rows)
    sealed.append((writer.seal(), writer.rows()))


def _run_scenario(data) -> None:
    n_exec = data.draw(st.integers(2, 4), label="executors")
    n_points = data.draw(st.integers(3, 12), label="points")
    owners = data.draw(
        st.lists(st.integers(0, n_exec - 1), min_size=n_points,
                 max_size=n_points), label="owner_per_point")
    # overlap: some points are *also* computed by a second executor
    overlap = data.draw(
        st.lists(st.booleans(), min_size=n_points, max_size=n_points),
        label="overlap_per_point")
    chaos = [
        data.draw(st.sampled_from(["none", "expire", "takeover"]),
                  label=f"chaos_{e}")
        for e in range(n_exec)
    ]
    chaos_at = [
        data.draw(st.integers(0, max(0, n_points - 1)), label=f"chaos_at_{e}")
        for e in range(n_exec)
    ]
    reships = None  # drawn after sealing, one per sealed segment

    shards: list[list[dict]] = [[] for _ in range(n_exec)]
    for i in range(n_points):
        shards[owners[i]].append(_row(i))
        if overlap[i]:
            shards[(owners[i] + 1) % n_exec].append(_row(i))

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        sealed: list = []
        failures: list[BaseException] = []

        def run_shard(e: int) -> None:
            try:
                _append_shard(root, e, shards[e], chaos[e],
                              min(chaos_at[e], max(0, len(shards[e]) - 1)),
                              sealed)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)

        threads = [
            threading.Thread(target=run_shard, args=(e,))
            for e in range(n_exec) if shards[e]
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive(), "appender thread deadlocked"
        assert not failures, f"appender thread raised: {failures[0]!r}"

        store = ResultStore(root / "cache")
        ingestor = SegmentIngestor(store, root / "ingest.jsonl")
        reships = [
            data.draw(st.integers(1, 3), label=f"ships_{k}")
            for k in range(len(sealed))
        ]
        for (manifest, rows), ships in zip(sealed, reships):
            for _ in range(ships):
                ingestor.ingest(manifest, rows)

        # -- exactly-once: nothing lost ...
        for i in range(n_points):
            record = store.get(PointSpec.from_dict(_point(i)))
            assert record is not None, f"point {i} was lost"
            assert record["result"]["seconds"] == 0.5 + i
        # ... and nothing landed twice
        assert ingestor.report.ingested == n_points
        assert store.index is not None
        assert store.index.count() == n_points
        assert store.compact().superseded == 0


@pytest.mark.chaos
@pytest.mark.parametrize("derandomize_seed", [101, 202, 303])
def test_concurrent_appenders_ingest_exactly_once(derandomize_seed):
    @seed(derandomize_seed)
    @settings(max_examples=12, deadline=None, database=None)
    @given(data=st.data())
    def scenario(data):
        _run_scenario(data)

    scenario()
