"""Lease protocol: acquire, renew, expiry, takeover, and journal fencing.

Every test drives expiry through an injectable fake clock -- no
sleeping -- which is exactly how the protocol is meant to be exercised:
the lease file's semantics depend only on the timestamps it records,
never on wall time observed in passing.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign.store import Journal
from repro.errors import LeaseError, LeaseExpiredError, StaleWriterError
from repro.remote.lease import Lease, LeaseFile


class FakeClock:
    """A settable clock: ``clock()`` returns whatever the test put there."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def lease_file(tmp_path, clock):
    return LeaseFile(tmp_path / "wave.json", clock=clock)


def test_acquire_grants_epoch_one_and_persists(lease_file):
    lease = lease_file.acquire("ex-1", ttl=5.0)
    assert lease.holder == "ex-1"
    assert lease.epoch == 1
    assert lease.ttl == 5.0
    on_disk = lease_file.read()
    assert on_disk == lease


def test_acquire_rejects_nonpositive_ttl(lease_file):
    with pytest.raises(LeaseError, match="ttl must be positive"):
        lease_file.acquire("ex-1", ttl=0.0)


def test_live_foreign_lease_cannot_be_acquired(lease_file):
    lease_file.acquire("ex-1", ttl=5.0)
    with pytest.raises(LeaseError, match="held by 'ex-1'"):
        lease_file.acquire("ex-2", ttl=5.0)


def test_expired_lease_is_taken_over_with_epoch_bump(lease_file, clock):
    first = lease_file.acquire("ex-1", ttl=5.0)
    clock.advance(5.0)  # exactly at the deadline: takeover allowed
    second = lease_file.acquire("ex-2", ttl=5.0)
    assert second.holder == "ex-2"
    assert second.epoch == first.epoch + 1


def test_reacquire_by_same_holder_bumps_epoch(lease_file):
    first = lease_file.acquire("ex-1", ttl=5.0)
    again = lease_file.acquire("ex-1", ttl=5.0)
    assert again.epoch == first.epoch + 1
    # the old grant is now fenced out even though the holder matches
    with pytest.raises(StaleWriterError):
        lease_file.check(first)


def test_renew_extends_from_now(lease_file, clock):
    lease = lease_file.acquire("ex-1", ttl=5.0)
    clock.advance(3.0)
    renewed = lease_file.renew(lease)
    assert renewed.epoch == lease.epoch  # renewal is not a new grant
    assert renewed.expires_at == clock.now + 5.0
    lease_file.check(renewed)  # still live


def test_renew_after_expiry_raises_expired(lease_file, clock):
    lease = lease_file.acquire("ex-1", ttl=5.0)
    clock.advance(6.0)
    with pytest.raises(LeaseExpiredError):
        lease_file.renew(lease)


def test_renew_after_takeover_raises_stale(lease_file, clock):
    lease = lease_file.acquire("ex-1", ttl=5.0)
    clock.advance(6.0)
    lease_file.acquire("ex-2", ttl=5.0)
    with pytest.raises(StaleWriterError):
        lease_file.renew(lease)


def test_check_distinguishes_expired_from_superseded(lease_file, clock):
    lease = lease_file.acquire("ex-1", ttl=5.0)
    clock.advance(6.0)
    # lapsed but not taken over: expired
    with pytest.raises(LeaseExpiredError):
        lease_file.check(lease)
    lease_file.acquire("ex-2", ttl=5.0)
    # taken over: stale, regardless of timing
    with pytest.raises(StaleWriterError):
        lease_file.check(lease)


def test_torn_lease_file_reads_as_free(lease_file, clock, tmp_path):
    lease_file.acquire("ex-1", ttl=5.0)
    (tmp_path / "wave.json").write_text("{not json", encoding="utf-8")
    assert lease_file.read() is None
    fresh = lease_file.acquire("ex-2", ttl=5.0)
    assert fresh.epoch == 1  # history was lost with the torn file


def test_lease_roundtrips_through_json():
    lease = Lease(name="w", holder="ex-1", epoch=3, granted_at=10.0, ttl=5.0)
    assert Lease.from_dict(json.loads(json.dumps(lease.to_dict()))) == lease


def test_malformed_lease_payload_raises():
    with pytest.raises(LeaseError, match="malformed"):
        Lease.from_dict({"holder": "ex-1"})


# -- satellite: the stale-writer guard on Journal.append -----------------


def test_fenced_journal_append_succeeds_while_lease_live(lease_file, tmp_path):
    lease = lease_file.acquire("ex-1", ttl=5.0)
    journal = Journal(tmp_path / "seg.jsonl", fence=lease_file.guard(lease))
    journal.append({"row": 1})
    assert journal.entries() == [{"row": 1}]


def test_expired_holder_append_raises_and_writes_nothing(
        lease_file, clock, tmp_path):
    lease = lease_file.acquire("ex-1", ttl=5.0)
    journal = Journal(tmp_path / "seg.jsonl", fence=lease_file.guard(lease))
    journal.append({"row": 1})
    clock.advance(6.0)
    with pytest.raises(LeaseExpiredError):
        journal.append({"row": 2})
    assert journal.entries() == [{"row": 1}]  # the fenced write never landed


def test_superseded_holder_append_raises_stale_writer(
        lease_file, clock, tmp_path):
    lease = lease_file.acquire("ex-1", ttl=5.0)
    journal = Journal(tmp_path / "seg.jsonl", fence=lease_file.guard(lease))
    clock.advance(6.0)
    takeover = lease_file.acquire("ex-2", ttl=5.0)
    with pytest.raises(StaleWriterError):
        journal.append({"row": 1})
    assert journal.entries() == []
    # the new holder's fenced journal writes fine
    journal2 = Journal(tmp_path / "seg.jsonl",
                       fence=lease_file.guard(takeover))
    journal2.append({"row": "new"})
    assert journal2.entries() == [{"row": "new"}]
