"""Registry state machine: claims, deliveries, expiry, and reassignment."""

from __future__ import annotations

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.remote.registry import DONE, LEASED, PENDING, ExecutorRegistry
from repro.remote.segment import SegmentManifest, rows_checksum


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _manifest(wave: str, rows: list[dict], *, executor: str = "ex-1",
              epoch: int = 1) -> SegmentManifest:
    return SegmentManifest(segment=f"{wave}-seg", executor=executor,
                           epoch=epoch, wave=wave, rows=len(rows), size=0,
                           checksum=rows_checksum(rows))


ROWS = [{"task_id": "t0", "point": {}, "result": {"status": "done"}}]


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def registry(clock):
    return ExecutorRegistry(lease_ttl=5.0, executor_ttl=10.0, clock=clock)


def test_register_assigns_serial_ids_and_ttls(registry):
    doc = registry.register("host-a", 123)
    assert doc["id"] == "ex-1"
    assert doc["lease_ttl"] == 5.0
    assert registry.register("host-b", 124)["id"] == "ex-2"
    assert len(registry.live()) == 2


def test_liveness_lapses_without_heartbeat(registry, clock):
    eid = registry.register("host", 1)["id"]
    clock.advance(11.0)
    assert registry.live() == []
    assert registry.heartbeat(eid) is True
    assert len(registry.live()) == 1


def test_claim_leases_oldest_pending_wave(registry):
    eid = registry.register("host", 1)["id"]
    first = registry.offer("c", [{"task_id": "t0"}])
    registry.offer("c", [{"task_id": "t1"}])
    doc = registry.claim(eid)
    assert doc["wave"] == first.wave_id
    assert doc["epoch"] == 1
    assert registry.state_of([first.wave_id])[first.wave_id] == LEASED


def test_claim_with_nothing_pending_returns_none(registry):
    eid = registry.register("host", 1)["id"]
    assert registry.claim(eid) is None


def test_unregistered_executor_cannot_claim(registry):
    registry.offer("c", [{"task_id": "t0"}])
    assert registry.claim("ex-99") is None


def test_current_epoch_delivery_completes_the_wave(registry):
    eid = registry.register("host", 1)["id"]
    offer = registry.offer("c", [{"task_id": "t0"}])
    doc = registry.claim(eid)
    status = registry.deliver(eid, doc["wave"], doc["epoch"],
                              _manifest(doc["wave"], ROWS), ROWS)
    assert status == "accepted"
    assert registry.state_of([offer.wave_id])[offer.wave_id] == DONE
    drained = registry.drain_deliveries([offer.wave_id])
    assert len(drained) == 1
    assert registry.counters()["waves_completed"] == 1


def test_expired_lease_returns_to_pending_and_bumps_epoch(registry, clock):
    eid = registry.register("host", 1)["id"]
    offer = registry.offer("c", [{"task_id": "t0"}])
    first = registry.claim(eid)
    clock.advance(6.0)  # past lease_ttl
    assert registry.expire_stale() == [offer.wave_id]
    assert registry.state_of([offer.wave_id])[offer.wave_id] == PENDING
    registry.heartbeat(eid)
    second = registry.claim(eid)
    assert second["epoch"] == first["epoch"] + 1
    assert registry.counters()["waves_reassigned"] == 1


def test_stale_epoch_delivery_is_queued_but_does_not_complete(registry, clock):
    ex1 = registry.register("host-a", 1)["id"]
    ex2 = registry.register("host-b", 2)["id"]
    offer = registry.offer("c", [{"task_id": "t0"}])
    old = registry.claim(ex1)
    clock.advance(6.0)
    registry.expire_stale()
    registry.heartbeat(ex2)
    new = registry.claim(ex2)
    # the fenced-out corpse ships late
    status = registry.deliver(ex1, old["wave"], old["epoch"],
                              _manifest(old["wave"], ROWS), ROWS)
    assert status == "stale"
    assert registry.state_of([offer.wave_id])[offer.wave_id] == LEASED
    # its rows are still queued: dedup makes ingesting them harmless
    assert len(registry.drain_deliveries([offer.wave_id])) == 1
    # the current holder completes normally
    assert registry.deliver(ex2, new["wave"], new["epoch"],
                            _manifest(new["wave"], ROWS), ROWS) == "accepted"
    counters = registry.counters()
    assert counters["stale_ships"] == 1
    assert counters["waves_completed"] == 1


def test_delivery_to_a_done_wave_is_a_duplicate(registry):
    eid = registry.register("host", 1)["id"]
    registry.offer("c", [{"task_id": "t0"}])
    doc = registry.claim(eid)
    manifest = _manifest(doc["wave"], ROWS)
    registry.deliver(eid, doc["wave"], doc["epoch"], manifest, ROWS)
    status = registry.deliver(eid, doc["wave"], doc["epoch"], manifest, ROWS)
    assert status == "duplicate"
    assert registry.counters()["duplicate_ships"] == 1


def test_delivery_to_a_reclaimed_wave_is_unknown(registry):
    eid = registry.register("host", 1)["id"]
    offer = registry.offer("c", [{"task_id": "t0"}])
    doc = registry.claim(eid)
    assert registry.take_back(offer.wave_id) is not None
    status = registry.deliver(eid, doc["wave"], doc["epoch"],
                              _manifest(doc["wave"], ROWS), ROWS)
    assert status == "unknown"


def test_take_back_refuses_a_done_wave(registry):
    eid = registry.register("host", 1)["id"]
    offer = registry.offer("c", [{"task_id": "t0"}])
    doc = registry.claim(eid)
    registry.deliver(eid, doc["wave"], doc["epoch"],
                     _manifest(doc["wave"], ROWS), ROWS)
    assert registry.take_back(offer.wave_id) is None


def test_injected_lease_expire_fires_once_per_epoch(clock):
    plan = FaultPlan(seed=7, lease_expire=1.0)
    registry = ExecutorRegistry(lease_ttl=1000.0, executor_ttl=10.0,
                                clock=clock, injector=FaultInjector(plan))
    eid = registry.register("host", 1)["id"]
    offer = registry.offer("c", [{"task_id": "t0"}])
    registry.claim(eid)
    # deadline is nowhere near, but the chaos site expires the lease
    assert registry.expire_stale() == [offer.wave_id]
    second = registry.claim(eid)
    assert second["epoch"] == 2
    # p=1.0 fires per (wave, epoch): the reclaimed lease lapses too
    assert registry.expire_stale() == [offer.wave_id]


def test_injected_segment_lost_drops_the_delivery(clock):
    plan = FaultPlan(seed=7, segment_lost=1.0)
    registry = ExecutorRegistry(lease_ttl=5.0, executor_ttl=10.0,
                                clock=clock, injector=FaultInjector(plan))
    eid = registry.register("host", 1)["id"]
    offer = registry.offer("c", [{"task_id": "t0"}])
    doc = registry.claim(eid)
    manifest = _manifest(doc["wave"], ROWS)
    assert registry.deliver(eid, doc["wave"], doc["epoch"],
                            manifest, ROWS) == "lost"
    assert registry.drain_deliveries([offer.wave_id]) == []
    # the fault fires at most once per (wave, checksum): the re-ship lands
    assert registry.deliver(eid, doc["wave"], doc["epoch"],
                            manifest, ROWS) == "accepted"
    counters = registry.counters()
    assert counters["lost_ships"] == 1
    assert counters["waves_completed"] == 1
