"""Segments and manifests: sealing, verification, and content identity."""

from __future__ import annotations

import json

import pytest

from repro.errors import SegmentError
from repro.remote.segment import (
    SegmentManifest,
    SegmentWriter,
    iter_segments,
    read_segment,
    result_row,
    rows_checksum,
    verify_rows,
)

POINT = {"machine": "A", "backend": "GCC-TBB", "case": "reduce",
         "size_exp": 8, "threads": 2, "mode": "model",
         "allocator": None, "min_time": 0.0}


def _rows(n: int) -> list[dict]:
    return [
        result_row(f"t{i}", POINT,
                   {"status": "done", "seconds": 0.1 * i, "error": None},
                   wall_ms=1.5)
        for i in range(n)
    ]


def test_writer_seals_a_verifiable_segment(tmp_path):
    writer = SegmentWriter(tmp_path, "w1-e1-l1",
                           executor="ex-1", epoch=1, wave="c/w1")
    for row in _rows(3):
        writer.append(row)
    manifest = writer.seal()
    assert manifest.rows == 3
    assert manifest.executor == "ex-1"
    loaded_manifest, loaded_rows = read_segment(writer.path)
    assert loaded_manifest == manifest
    assert loaded_rows == writer.rows()


def test_sealed_segment_rejects_appends(tmp_path):
    writer = SegmentWriter(tmp_path, "w1", executor="ex-1", epoch=1, wave="w")
    writer.append(_rows(1)[0])
    writer.seal()
    with pytest.raises(SegmentError, match="sealed"):
        writer.append(_rows(1)[0])


def test_verify_rejects_row_count_mismatch(tmp_path):
    rows = _rows(3)
    manifest = SegmentManifest(segment="s", executor="e", epoch=1, wave="w",
                               rows=3, size=0, checksum=rows_checksum(rows))
    with pytest.raises(SegmentError, match="manifest says 3"):
        verify_rows(manifest, rows[:2])


def test_verify_rejects_mutated_content(tmp_path):
    rows = _rows(3)
    manifest = SegmentManifest(segment="s", executor="e", epoch=1, wave="w",
                               rows=3, size=0, checksum=rows_checksum(rows))
    rows[1]["result"]["seconds"] = 99.0
    with pytest.raises(SegmentError, match="checksum mismatch"):
        verify_rows(manifest, rows)


def test_checksum_depends_only_on_content_not_writer(tmp_path):
    """Two executors computing the same rows seal identical checksums."""
    a = SegmentWriter(tmp_path / "a", "seg", executor="ex-1", epoch=1, wave="w")
    b = SegmentWriter(tmp_path / "b", "seg", executor="ex-2", epoch=4, wave="w")
    for row in _rows(4):
        a.append(row)
        b.append(dict(row))
    assert a.seal().checksum == b.seal().checksum


def test_read_segment_without_manifest_raises(tmp_path):
    writer = SegmentWriter(tmp_path, "w1", executor="e", epoch=1, wave="w")
    writer.append(_rows(1)[0])
    with pytest.raises(SegmentError, match="no manifest"):
        read_segment(writer.path)


def test_read_segment_detects_post_seal_tampering(tmp_path):
    writer = SegmentWriter(tmp_path, "w1", executor="e", epoch=1, wave="w")
    for row in _rows(2):
        writer.append(row)
    writer.seal()
    with open(writer.path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps({"task_id": "evil", "point": POINT,
                             "result": {"status": "done", "seconds": 0.0,
                                        "error": None}}) + "\n")
    with pytest.raises(SegmentError):
        read_segment(writer.path)


def test_iter_segments_yields_only_sealed(tmp_path):
    sealed = SegmentWriter(tmp_path, "a", executor="e", epoch=1, wave="w")
    sealed.append(_rows(1)[0])
    sealed.seal()
    unsealed = SegmentWriter(tmp_path, "b", executor="e", epoch=1, wave="w")
    unsealed.append(_rows(1)[0])
    assert [p.name for p in iter_segments(tmp_path)] == ["a.seg.jsonl"]


def test_manifest_roundtrip_and_malformed():
    manifest = SegmentManifest(segment="s", executor="e", epoch=2, wave="w",
                               rows=1, size=10, checksum="ab")
    assert SegmentManifest.from_dict(manifest.to_dict()) == manifest
    with pytest.raises(SegmentError, match="malformed"):
        SegmentManifest.from_dict({"segment": "s"})
