"""Executor end-to-end over HTTP: the full claim/compute/seal/ship wire.

A real daemon on a loopback port, real :class:`RemoteExecutor` instances
on background threads, and the bit-identity oracle: whatever the fleet
and the chaos plan, the finished campaign's result rows must serialize
to exactly the bytes a single-process fault-free ``run_campaign``
produces.
"""

from __future__ import annotations

import re
import threading

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.spec import CampaignSpec, canonical_json
from repro.faults import FaultPlan
from repro.remote.executor import RemoteExecutor
from repro.service import ServiceClient, start_background

SPEC = {
    "name": "remote-e2e",
    "machines": ["A"],
    "backends": ["GCC-SEQ", "GCC-TBB"],
    "cases": ["reduce", "transform", "sort"],
    "size_exps": [8, 9],
    "threads": [2, 4],
}


def _control_rows() -> list[dict]:
    """The single-process fault-free oracle, shaped like /results rows."""
    outcome = run_campaign(CampaignSpec.from_dict(SPEC))
    rows = []
    for task in outcome.plan.tasks:
        result = outcome.results.get(task.task_id)
        if result is None:
            continue
        p = task.point
        rows.append({
            "task_id": task.task_id, "kind": task.kind,
            "machine": p.machine, "backend": p.backend, "case": p.case,
            "size_exp": p.size_exp, "threads": p.threads,
            "status": result.status, "seconds": result.seconds,
            "error": result.error,
        })
    return rows


def _fleet(base_url: str, tmp_path, n: int, *,
           faults: FaultPlan | None = None):
    """Register ``n`` executor threads; returns (executors, threads, stop)."""
    stop = threading.Event()
    executors, threads = [], []
    for i in range(n):
        ex = RemoteExecutor(base_url, tmp_path / f"ex{i}",
                            host=f"e2e-{i}", faults=faults, poll=0.01)
        ex.register()  # registered before any submission: no startup race
        thread = threading.Thread(
            target=ex.run,
            kwargs={"max_idle": 30.0, "should_stop": stop.is_set},
            daemon=True)
        thread.start()
        executors.append(ex)
        threads.append(thread)
    return executors, threads, stop


def _finish(threads, stop):
    stop.set()
    for thread in threads:
        thread.join(timeout=10)


def test_fleet_runs_the_campaign_and_matches_local_bytes(tmp_path):
    with start_background(tmp_path / "svc", concurrent=2) as svc:
        executors, threads, stop = _fleet(svc.base_url, tmp_path, 2)
        try:
            client = ServiceClient(svc.base_url)
            doc = client.submit(SPEC)
            done = client.wait(doc["id"], timeout=120)
            assert done["state"] == "complete"
            assert "remote" in done["stats"]
            remote_rows = client.results(doc["id"])["rows"]
        finally:
            _finish(threads, stop)
    assert canonical_json(remote_rows) == canonical_json(_control_rows())
    assert sum(ex.waves for ex in executors) >= 1
    # every executed task ran remotely (the rest were cache hits --
    # GCC-SEQ measures share their baselines' points)
    executed = int(re.search(r"(\d+) executed", done["stats"]).group(1))
    assert f"({executed} remote)" in done["stats"]
    assert sum(ex.rows for ex in executors) == executed


def test_chaos_fleet_is_still_bit_identical(tmp_path):
    """Lost ships, duplicate ships and lease-expiry injection all at once.

    ``segment_lost=1.0`` drops every segment's first delivery (the
    executor re-ships); ``segment_dup_ship=1.0`` makes every executor
    ship its sealed segment twice; ``lease_expire`` fires on a claimed
    lease whenever the coordinator sweeps before the ship lands. The
    ledger + index dedup must collapse all of it to exactly-once.
    """
    service_faults = FaultPlan(seed=11, segment_lost=1.0, lease_expire=0.5)
    executor_faults = FaultPlan(seed=13, segment_dup_ship=1.0)
    with start_background(tmp_path / "svc", concurrent=2,
                          faults=service_faults) as svc:
        executors, threads, stop = _fleet(
            svc.base_url, tmp_path, 3, faults=executor_faults)
        try:
            client = ServiceClient(svc.base_url)
            doc = client.submit(SPEC)
            done = client.wait(doc["id"], timeout=120)
            assert done["state"] == "complete"
            remote_rows = client.results(doc["id"])["rows"]
            metrics = client.metrics()
        finally:
            _finish(threads, stop)
    assert canonical_json(remote_rows) == canonical_json(_control_rows())
    # every chaos path actually ran
    assert metrics["service_remote_lost_ships"] >= 1
    assert metrics["service_remote_duplicate_ships"] \
        + metrics["service_remote_stale_ships"] >= 1
    assert sum(ex.reships for ex in executors) >= 1
    assert sum(ex.dup_ships for ex in executors) >= 1
    # and ingest stayed exactly-once: every unique point landed one row
    assert metrics["service_remote_ingest_deduped"] \
        + metrics["service_remote_ingest_duplicate_segments"] >= 1


def test_registry_surface_over_http(tmp_path):
    with start_background(tmp_path / "svc") as svc:
        client = ServiceClient(svc.base_url)
        ex = RemoteExecutor(svc.base_url, tmp_path / "ex", host="solo")
        ex.register()
        doc = client.executors()
        assert [e["host"] for e in doc["executors"]] == ["solo"]
        assert doc["counters"]["executors_live"] == 1
        assert client.executor_heartbeat(ex.id)["_status"] == 200
        assert client.claim_wave(ex.id) is None  # nothing pending


def test_warm_cache_serves_a_second_fleet_campaign_without_executors(tmp_path):
    """Remote-ingested rows are first-class cache entries."""
    with start_background(tmp_path / "svc", concurrent=2) as svc:
        client = ServiceClient(svc.base_url)
        executors, threads, stop = _fleet(svc.base_url, tmp_path, 2)
        try:
            cold = client.submit(SPEC)
            client.wait(cold["id"], timeout=120)
        finally:
            _finish(threads, stop)
        # no executors left: the warm re-run must be served by the cache
        warm = client.submit(dict(SPEC, name="remote-e2e-warm"))
        done = client.wait(warm["id"], timeout=120)
        assert done["state"] == "complete"
        assert f"{done['points']} cache hits" in done["stats"]
        assert "0 executed" in done["stats"]
