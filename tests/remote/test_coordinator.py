"""Coordinator dispatch: remote rows, reassignment, and local fallback.

These tests drive the coordinator against an in-process registry with a
scripted "executor" thread -- no HTTP -- so each degradation rung is
exercised in isolation. The full wire path lives in
``test_executor_e2e.py``.
"""

from __future__ import annotations

import threading

import pytest

from repro.campaign.plan import PointTask
from repro.campaign.spec import PointSpec
from repro.campaign.store import ResultStore
from repro.remote.coordinator import RemoteCoordinator
from repro.remote.registry import ExecutorRegistry
from repro.remote.segment import SegmentManifest, result_row, rows_checksum


def _task(i: int) -> PointTask:
    point = PointSpec(machine="A", backend="GCC-TBB", case="reduce",
                      size_exp=8 + i, threads=2)
    return PointTask(task_id=f"t{i}", point=point, kind="measure")


def _segment_for(doc: dict, *,
                 status: str = "done") -> tuple[SegmentManifest, list[dict]]:
    rows = [
        result_row(p["task_id"], p["point"],
                   {"status": status, "seconds": 0.5, "error": None},
                   wall_ms=1.0)
        for p in doc["payloads"]
    ]
    manifest = SegmentManifest(
        segment=f"{doc['wave']}-seg", executor="ex-1", epoch=doc["epoch"],
        wave=doc["wave"], rows=len(rows), size=0,
        checksum=rows_checksum(rows))
    return manifest, rows


def _serve_once(registry: ExecutorRegistry, eid: str, *,
                status: str = "done"):
    """A background 'executor': claim waves and ship them until stopped."""
    stop = threading.Event()

    def loop() -> None:
        while not stop.is_set():
            doc = registry.claim(eid)
            if doc is None:
                registry.wait(0.01)
                continue
            manifest, rows = _segment_for(doc, status=status)
            registry.deliver(eid, doc["wave"], doc["epoch"], manifest, rows)

    thread = threading.Thread(target=loop, daemon=True)
    thread.start()
    return thread, stop


@pytest.fixture
def registry():
    return ExecutorRegistry(lease_ttl=5.0, executor_ttl=10.0)


def _coordinator(registry, tmp_path, **kwargs) -> RemoteCoordinator:
    return RemoteCoordinator(
        registry, store=ResultStore(tmp_path / "cache"), campaign="c",
        ledger_path=tmp_path / "ingest.jsonl", poll=0.01, **kwargs)


def test_no_live_executors_means_dispatch_declines(registry, tmp_path):
    coordinator = _coordinator(registry, tmp_path)
    assert coordinator.dispatch([_task(0)]) is None
    assert coordinator.dispatch([]) == {}


def test_remote_rows_come_back_persisted(registry, tmp_path):
    eid = registry.register("host", 1)["id"]
    coordinator = _coordinator(registry, tmp_path)
    tasks = [_task(i) for i in range(3)]
    thread, stop = _serve_once(registry, eid)
    payloads = coordinator.dispatch(tasks)
    stop.set()
    thread.join(timeout=5)
    assert set(payloads) == {"t0", "t1", "t2"}
    for payload in payloads.values():
        assert payload["persisted"] is True
        assert payload["status"] == "done"
        assert payload["seconds"] == 0.5
    # the rows really landed in the store at ingest time
    store = coordinator.ingestor.store
    for task in tasks:
        assert store.get(task.point)["result"]["seconds"] == 0.5
    assert coordinator.counters()["ingest_ingested"] == 3


def test_wave_deadline_reclaims_for_local_execution(registry, tmp_path):
    registry.register("host", 1)  # live but never claims
    coordinator = _coordinator(registry, tmp_path, wave_timeout=0.1)
    tasks = [_task(0)]
    payloads = coordinator.dispatch(tasks)
    assert payloads["t0"]["status"] == "done"
    assert "persisted" not in payloads["t0"]  # computed locally
    assert coordinator.waves_local >= 1


def test_dead_fleet_exits_before_the_deadline(registry, tmp_path):
    clock = [0.0]
    registry_dead = ExecutorRegistry(
        lease_ttl=5.0, executor_ttl=10.0, clock=lambda: clock[0])
    registry_dead.register("host", 1)
    clock[0] = 60.0  # fleet lapsed after the liveness probe in dispatch()
    coordinator = RemoteCoordinator(
        registry_dead, store=ResultStore(tmp_path / "cache"), campaign="c",
        ledger_path=tmp_path / "ingest.jsonl", poll=0.01,
        wave_timeout=3600.0, clock=lambda: clock[0])
    # live() is empty by dispatch time -> decline, not a one-hour stall
    assert coordinator.dispatch([_task(0)]) is None


def test_remote_failure_is_retried_locally(registry, tmp_path):
    eid = registry.register("host", 1)["id"]
    coordinator = _coordinator(registry, tmp_path)
    tasks = [_task(0)]
    thread, stop = _serve_once(registry, eid, status="failed")
    payloads = coordinator.dispatch(tasks)
    stop.set()
    thread.join(timeout=5)
    # the deterministic model succeeds locally; the failed row was not
    # ingested and the local result is the one that counts
    assert payloads["t0"]["status"] == "done"
    assert "persisted" not in payloads["t0"]
    assert coordinator.counters()["ingest_skipped"] == 1


def test_counters_shape(registry, tmp_path):
    coordinator = _coordinator(registry, tmp_path)
    counters = coordinator.counters()
    assert counters["waves_dispatched"] == 0
    assert counters["ingest_segments"] == 0
    assert "by_executor" not in counters
