"""Tests for the binary-size (compile/link) model against Table 7."""

import pytest

from repro.binaries import (
    BUILD_SPECS,
    LinkerModel,
    ObjectFile,
    RuntimeArchive,
    binary_size,
)
from repro.errors import ConfigurationError
from repro.util.units import MIB

#: Table 7 of the paper, in MiB.
PAPER_TABLE7 = {
    "GCC-SEQ": 2.52,
    "GCC-TBB": 17.21,
    "GCC-GNU": 5.31,
    "GCC-HPX": 61.98,
    "ICC-TBB": 16.64,
    "NVC-OMP": 1.81,
    "NVC-CUDA": 7.80,
}


class TestTable7Reproduction:
    @pytest.mark.parametrize("backend,paper_mib", sorted(PAPER_TABLE7.items()))
    def test_within_five_percent(self, backend, paper_mib):
        assert binary_size(backend) / MIB == pytest.approx(paper_mib, rel=0.05)

    def test_paper_ordering(self):
        sizes = {b: binary_size(b) for b in PAPER_TABLE7}
        assert (
            sizes["NVC-OMP"]
            < sizes["GCC-SEQ"]
            < sizes["GCC-GNU"]
            < sizes["NVC-CUDA"]
            < sizes["ICC-TBB"]
            < sizes["GCC-TBB"]
            < sizes["GCC-HPX"]
        )

    def test_hpx_dwarfs_everything(self):
        # Section 5.7: HPX binaries reach ~62 MiB.
        assert binary_size("GCC-HPX") > 3 * binary_size("GCC-TBB")

    def test_gnu_doubles_sequential(self):
        # Section 5.7: GNU parallel mode ~doubles the sequential binary.
        ratio = binary_size("GCC-GNU") / binary_size("GCC-SEQ")
        assert 1.8 < ratio < 2.5


class TestLinkerModel:
    def test_size_grows_per_algorithm(self):
        spec = BUILD_SPECS["GCC-TBB"]
        few = LinkerModel(spec)
        few.add_algorithm("a")
        many = LinkerModel(spec)
        for i in range(10):
            many.add_algorithm(f"a{i}")
        assert many.link() - few.link() == 9 * spec.per_algorithm

    def test_explicit_algorithm_list(self):
        assert binary_size("GCC-SEQ", ["sort", "find"]) < binary_size(
            "GCC-SEQ", ["sort", "find", "reduce"]
        )

    def test_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            binary_size("MSVC-PPL")

    def test_object_file_validation(self):
        with pytest.raises(ConfigurationError):
            ObjectFile("o", text_bytes=-1)

    def test_archive_retention(self):
        a = RuntimeArchive("lib", 1000, retained_fraction=0.25)
        assert a.linked_bytes == 250

    def test_archive_validation(self):
        with pytest.raises(ConfigurationError):
            RuntimeArchive("lib", 100, retained_fraction=1.5)
