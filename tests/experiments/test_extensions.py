"""Tests for the beyond-the-paper extensions: ARM machine, CLANG-OMP
backend, weak scaling."""

import pytest

from repro.backends import STUDY_BACKENDS, get_backend
from repro.experiments.fig1 import allocator_speedup
from repro.experiments.weak_scaling import run_weak_scaling, weak_scaling
from repro.machines import get_machine
from repro.machines.presets import ALL_CPU_MACHINES


class TestArmMachine:
    def test_registered_with_aliases(self):
        for name in ("arm", "altra", "mach-arm"):
            assert get_machine(name).name == "Mach ARM"

    def test_single_numa_node(self):
        arm = get_machine("arm")
        assert arm.num_numa_nodes == 1
        assert arm.total_cores == 80

    def test_no_turbo_no_boost(self):
        arm = get_machine("arm")
        assert arm.seq_turbo_factor == 1.0
        assert arm.node_bw_boost == 1.0

    def test_not_in_paper_machine_list(self):
        assert "ARM" not in ALL_CPU_MACHINES

    def test_allocator_effect_vanishes(self):
        """Model prediction: no NUMA -> no Fig. 1 effect."""
        ratio = allocator_speedup("arm", "GCC-TBB", "reduce", threads=80, size_exp=26)
        assert ratio == pytest.approx(1.0, abs=0.02)

    def test_stream_anchors(self):
        from repro.machines import stream_bandwidth

        arm = get_machine("arm")
        assert stream_bandwidth(arm, 1) == pytest.approx(36e9)
        assert stream_bandwidth(arm, 80) == pytest.approx(175e9)


class TestClangBackend:
    def test_registered(self):
        assert get_backend("clang-omp").name == "CLANG-OMP"
        assert get_backend("llvm-omp").name == "CLANG-OMP"

    def test_excluded_from_study(self):
        assert "CLANG-OMP" not in STUDY_BACKENDS

    def test_overhead_between_tbb_and_gnu(self):
        clang = get_backend("clang-omp").instr_overhead_per_elem("for_each")
        tbb = get_backend("gcc-tbb").instr_overhead_per_elem("for_each")
        gnu = get_backend("gcc-gnu").instr_overhead_per_elem("for_each")
        assert tbb < clang < gnu

    def test_runs_headline_cases(self):
        from repro.experiments.common import make_ctx
        from repro.suite.cases import HEADLINE_CASES, get_case
        from repro.suite.wrappers import measure_case

        ctx = make_ctx("A", "clang-omp")
        for case in HEADLINE_CASES:
            assert measure_case(get_case(case), ctx, 1 << 20) > 0


class TestWeakScaling:
    def test_curve_shape(self):
        curve = weak_scaling("A", "GCC-TBB", "reduce", base_exp=20)
        assert curve.threads[0] == 1 and curve.threads[-1] == 32
        assert curve.sizes == tuple((1 << 20) * t for t in curve.threads)
        assert curve.efficiencies()[0] == 1.0

    def test_run_weak_scaling_renders(self):
        result = run_weak_scaling(machine="A", base_exp=20, cases=("reduce",))
        assert "Weak scaling" in result.rendered
        assert result.data

    def test_unsupported_cases_skipped(self):
        result = run_weak_scaling(
            machine="A",
            base_exp=18,
            cases=("inclusive_scan",),
            backends=("GCC-GNU",),
        )
        assert result.data == {}
