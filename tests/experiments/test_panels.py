"""Tests for the shared two-panel driver behind Figures 4-7."""

import pytest

from repro.experiments.panels import AlgoPanels, run_panels


@pytest.fixture(scope="module")
def panels():
    return run_panels("A", "reduce", size_exp=22, size_step=6)


class TestRunPanels:
    def test_problem_panel_includes_sequential(self, panels):
        assert "GCC-SEQ" in panels.problem

    def test_scaling_panel_excludes_sequential(self, panels):
        assert "GCC-SEQ" not in panels.scaling

    def test_all_parallel_backends_present(self, panels):
        for backend in ("GCC-TBB", "GCC-GNU", "GCC-HPX", "ICC-TBB", "NVC-OMP"):
            assert backend in panels.scaling

    def test_icc_dropped_on_mach_b(self):
        panels_b = run_panels("B", "reduce", size_exp=20, size_step=8)
        assert "ICC-TBB" not in panels_b.scaling
        assert "ICC-TBB" not in panels_b.problem

    def test_unsupported_algorithm_dropped(self):
        panels_scan = run_panels("A", "inclusive_scan", size_exp=20, size_step=8)
        assert "GCC-GNU" not in panels_scan.scaling
        assert panels_scan.problem["GCC-GNU"].xs() == []

    def test_scaling_curves_start_at_one_thread(self, panels):
        for curve in panels.scaling.values():
            assert curve.threads[0] == 1

    def test_rendered_has_both_charts(self, panels):
        out = panels.rendered()
        assert "time vs size" in out
        assert "speedup vs threads" in out

    def test_is_dataclass_with_fields(self, panels):
        assert isinstance(panels, AlgoPanels)
        assert panels.machine == "A"
        assert panels.case_name == "reduce"
