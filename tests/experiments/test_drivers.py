"""Smoke + structure tests for every experiment driver (reduced sizes)."""

import math

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.common import make_ctx, paper_size, seq_baseline_seconds
from repro.experiments.fig1 import FIG1_BACKENDS, FIG1_CASES, allocator_speedup, run_fig1
from repro.experiments.fig2 import foreach_problem_series
from repro.experiments.fig3 import foreach_scaling_curve
from repro.experiments.fig8 import gpu_ctx, run_fig8
from repro.experiments.fig9 import chained_gpu_reduce_seconds
from repro.experiments.table3 import counters_for_case, run_table3
from repro.experiments.table5 import cell_speedup, run_table5
from repro.experiments.table6 import cell_max_threads
from repro.experiments.table7 import run_table7


class TestCommon:
    def test_paper_size(self):
        assert paper_size() == 1 << 30
        assert paper_size(10) == 1024

    def test_make_ctx_defaults_all_cores(self):
        ctx = make_ctx("A", "gcc-tbb")
        assert ctx.threads == 32

    def test_make_ctx_seq_forces_one_thread(self):
        ctx = make_ctx("A", "gcc-seq", threads=16)
        assert ctx.threads == 1

    def test_seq_baseline_positive(self):
        assert seq_baseline_seconds("A", "reduce", 1 << 20) > 0

    def test_registry_complete(self):
        paper = {f"fig{i}" for i in range(1, 10)} | {
            f"table{i}" for i in range(3, 8)
        }
        extensions = {"weak-scaling"}
        assert set(EXPERIMENTS) == paper | extensions


class TestFig1:
    def test_full_grid_renders(self):
        result = run_fig1(size_exp=24)
        assert "GCC-TBB" in result.rendered
        assert len(result.data) == len(FIG1_BACKENDS) * len(FIG1_CASES)

    def test_gnu_scan_cell_is_na(self):
        result = run_fig1(size_exp=22)
        assert result.data["GCC-GNU/inclusive_scan"] is None

    def test_memory_bound_cases_gain(self):
        assert allocator_speedup("A", "GCC-TBB", "for_each_k1", size_exp=28) > 1.3
        assert allocator_speedup("A", "GCC-TBB", "reduce", size_exp=28) > 1.3

    def test_compute_bound_case_neutral(self):
        ratio = allocator_speedup("A", "GCC-TBB", "for_each_k1000", size_exp=26)
        assert ratio == pytest.approx(1.0, abs=0.1)


class TestFig2Fig3:
    def test_fig2_series_structure(self):
        series = foreach_problem_series("A", 1, backends=("GCC-SEQ", "GCC-TBB"), size_step=6)
        assert set(series) == {"GCC-SEQ", "GCC-TBB"}
        assert len(series["GCC-TBB"].points) == 5

    def test_fig3_curve(self):
        curve = foreach_scaling_curve("A", "GCC-TBB", 1000, size_exp=24)
        assert curve.threads[0] == 1
        assert curve.threads[-1] == 32
        assert curve.max_speedup() > 10


class TestCounterTables:
    def test_table3_structure(self):
        result = run_table3(size_exp=24)
        assert "Instructions" in result.rendered
        assert "GCC-HPX" in result.rendered

    def test_counters_scale_with_calls(self):
        one = counters_for_case("A", "GCC-TBB", "for_each_k1", calls=1, size_exp=20)
        hundred = counters_for_case("A", "GCC-TBB", "for_each_k1", calls=100, size_exp=20)
        assert hundred.counters.instructions == pytest.approx(
            100 * one.counters.instructions
        )


class TestTable5Table6:
    def test_cell_speedup_small(self):
        v = cell_speedup("A", "GCC-TBB", "reduce", size_exp=24)
        assert v is not None and v > 1.0

    def test_icc_na_on_b(self):
        assert cell_speedup("B", "ICC-TBB", "reduce", size_exp=20) is None

    def test_gnu_scan_na(self):
        assert cell_speedup("A", "GCC-GNU", "inclusive_scan", size_exp=20) is None

    def test_table5_renders_na_cells(self):
        result = run_table5(size_exp=20)
        assert "N/A" in result.rendered

    def test_cell_max_threads_bounds(self):
        v = cell_max_threads("A", "GCC-TBB", "for_each_k1000", size_exp=24)
        assert v == 32  # compute-bound: efficient at full width

    def test_nvc_scan_max_threads_is_one(self):
        assert cell_max_threads("A", "NVC-OMP", "inclusive_scan", size_exp=24) == 1


class TestTable7:
    def test_rendered(self):
        result = run_table7()
        assert "61." in result.rendered  # HPX ~62 MiB
        assert len(result.data) == 7


class TestGpuExperiments:
    def test_gpu_ctx_transfer_flag(self):
        assert gpu_ctx("D").gpu_options.transfer_back is True
        assert gpu_ctx("D", transfer_back=False).gpu_options.transfer_back is False

    def test_fig8_panels(self):
        result = run_fig8(k_values=(1,), size_step=6)
        assert "k1" in result.data
        assert "NVC-CUDA (Mach D)" in result.data["k1"]

    def test_chained_cheaper_than_transfer(self):
        n = 1 << 26
        with_t = chained_gpu_reduce_seconds("D", n, True, min_time=1.0)
        without = chained_gpu_reduce_seconds("D", n, False, min_time=1.0)
        assert without < with_t / 5

    def test_results_have_ids(self):
        for key in ("fig1", "table7"):
            fn = EXPERIMENTS[key]
            result = fn() if key == "table7" else fn(size_exp=20)
            assert result.experiment_id == key
            assert not math.isnan(len(result.rendered))
