"""The harness must *notice* when the model changes.

A conformance suite that still passes after the simulated hardware is
halved proves nothing. This perturbs machine A's all-core STREAM
bandwidth by 0.5x and asserts that ordering-tier claims (who wins
across machines) actually flip to deviations -- the acceptance
criterion for the fidelity harness being sensitive, not vacuous.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.fidelity import run_fidelity
from repro.machines import registry
from repro.machines.presets import mach_a


@pytest.fixture
def halved_mach_a_bandwidth(monkeypatch):
    """Machine A with all-core STREAM bandwidth cut in half."""
    crippled = dataclasses.replace(
        mach_a(), stream_bw_allcores=mach_a().stream_bw_allcores * 0.5
    )
    for alias in ("a", "mach-a", "skylake"):
        assert alias in registry._FACTORIES, f"registry lost alias {alias!r}"
        monkeypatch.setitem(registry._FACTORIES, alias, lambda: crippled)


def test_halved_bandwidth_flips_ordering_claims(halved_mach_a_bandwidth):
    report = run_fidelity(["table5"])
    deviations = report.artifacts[0].deviations
    ordering = [r for r in deviations if r.claim.tier == "ordering"]
    assert len(ordering) >= 1, (
        "halving machine A's STREAM bandwidth must flip at least one "
        "ordering-tier claim; the harness is not sensitive to the model"
    )
    # the NUMA-inversion winners are exactly what a bandwidth cut flips
    assert any("numa-inversion" in r.claim.id for r in ordering)


def test_unperturbed_baseline_is_clean():
    """Guard: table5 is deviation-free without the perturbation."""
    report = run_fidelity(["table5"])
    assert report.artifacts[0].ok
