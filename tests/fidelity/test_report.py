"""Unit tests for report rendering, persistence and diffing."""

from __future__ import annotations

import json

import pytest

from repro.errors import FidelityError
from repro.fidelity.engine import (
    ArtifactReport,
    ClaimResult,
    FidelityReport,
)
from repro.fidelity.refdata import Claim, Waiver
from repro.fidelity.report import (
    MARKER_BEGIN,
    MARKER_END,
    REPORT_SCHEMA,
    diff_reports,
    load_report_json,
    render_markdown,
    render_text,
    report_to_json,
    update_experiments_md,
)


def synthetic_report(*, fail=True) -> FidelityReport:
    passing = ClaimResult(
        claim=Claim(id="c-pass", kind="na", cell="a"),
        status="pass", detail="a is N/A",
    )
    waived = ClaimResult(
        claim=Claim(id="c-waived", kind="ratio", cell="b", paper=2.0,
                    band=(0.9, 1.1)),
        status="waived", measured=9.0, detail="ratio 4.5",
        waiver=Waiver(claim="c-waived", reason="known", experiments_md="cite"),
    )
    results = [passing, waived]
    if fail:
        results.append(ClaimResult(
            claim=Claim(id="c-dev", kind="bound", cell="c", max=1.0),
            status="deviation", measured=3.0, detail="out of bound",
        ))
    art = ArtifactReport(artifact="fig1", title="Fig. 1", source="Figure 1",
                         results=tuple(results))
    return FidelityReport(artifacts=(art,), fingerprint="fp123",
                          elapsed_seconds=1.25)


def test_report_to_json_totals_and_waiver():
    doc = report_to_json(synthetic_report())
    assert doc["schema"] == REPORT_SCHEMA
    assert doc["fingerprint"] == "fp123"
    assert doc["totals"] == {"claims": 3, "pass": 1, "waived": 1, "deviation": 1}
    assert doc["ok"] is False
    art = doc["artifacts"][0]
    assert art["artifact"] == "fig1" and art["ok"] is False
    by_id = {c["id"]: c for c in art["claims"]}
    assert by_id["c-waived"]["waiver"]["experiments_md"] == "cite"
    assert by_id["c-pass"]["tier"] == "ordering"
    assert "waiver" not in by_id["c-pass"]


def test_render_text_lists_only_failures_unless_verbose():
    report = synthetic_report()
    text = render_text(report)
    assert "verdict: DEVIATIONS FOUND" in text
    assert "c-waived" in text and "c-dev" in text
    assert "c-pass" not in text
    assert "waived: known" in text
    verbose = render_text(report, verbose=True)
    assert "c-pass" in verbose
    assert "verdict: OK" in render_text(synthetic_report(fail=False))


def test_render_markdown_table():
    md = render_markdown(synthetic_report())
    assert "| Artifact | Source |" in md
    assert "| fig1 | Figure 1 | 3 | 1 | 1 | 1 | **deviation** |" in md
    assert "`fp123`" in md


def test_update_experiments_md_splices_between_markers(tmp_path):
    target = tmp_path / "EXPERIMENTS.md"
    target.write_text(
        f"# Doc\n\n{MARKER_BEGIN}\nstale table\n{MARKER_END}\n\ntail\n",
        encoding="utf-8",
    )
    out = update_experiments_md(synthetic_report(), target)
    assert "stale table" not in out
    assert "| fig1 |" in out
    assert out.startswith("# Doc") and out.rstrip().endswith("tail")
    assert MARKER_BEGIN in out and MARKER_END in out


def test_update_experiments_md_requires_markers(tmp_path):
    target = tmp_path / "EXPERIMENTS.md"
    target.write_text("no markers here\n", encoding="utf-8")
    with pytest.raises(FidelityError, match="marker pair"):
        update_experiments_md(synthetic_report(), target)


def test_diff_reports_flags_flips_and_membership():
    old = report_to_json(synthetic_report())
    new = report_to_json(synthetic_report(fail=False))
    new["fingerprint"] = "fp456"
    changes = diff_reports(old, new)
    assert any("fingerprint changed" in c for c in changes)
    assert any(c.startswith("claim removed: fig1:c-dev") for c in changes)
    assert diff_reports(old, old) == []
    flipped = json.loads(json.dumps(old))
    flipped["artifacts"][0]["claims"][0]["status"] = "deviation"
    assert any("c-pass: pass -> deviation" in c
               for c in diff_reports(old, flipped))
    with pytest.raises(FidelityError, match="schema"):
        diff_reports({"schema": "bogus"}, new)


def test_load_report_json_validates(tmp_path):
    path = tmp_path / "r.json"
    with pytest.raises(FidelityError, match="cannot read report"):
        load_report_json(path)
    path.write_text(json.dumps({"schema": "other"}))
    with pytest.raises(FidelityError, match="is not a"):
        load_report_json(path)
    path.write_text(json.dumps(report_to_json(synthetic_report())))
    assert load_report_json(path)["totals"]["claims"] == 3
