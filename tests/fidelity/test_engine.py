"""Unit tests for the claim-evaluation engine (synthetic artifacts)."""

from __future__ import annotations

import pytest

from repro.errors import FidelityError
from repro.fidelity.engine import (
    DEVIATION,
    PASS,
    WAIVED,
    check_artifact,
    check_claim,
)
from repro.fidelity.measure import MeasuredArtifact
from repro.fidelity.refdata import ArtifactRef, Claim, Waiver


def ref_with(*claims, waivers=(), goldens=None):
    return ArtifactRef(
        artifact="fig1", title="t", source="s",
        claims=tuple(claims), waivers=tuple(waivers), goldens=goldens or {},
    )


def measured(cells=None, curves=None, objects=None):
    return MeasuredArtifact(
        "fig1", cells=cells or {}, curves=curves or {}, objects=objects or {},
    )


def test_ordering_pass_and_fail():
    claim = Claim(id="o", kind="ordering", cell="a", expect="max",
                  group=("a", "b", "c"))
    m = measured(cells={"a": 3.0, "b": 2.0, "c": None})
    assert check_claim(claim, m, ref_with(claim)).status == PASS
    m2 = measured(cells={"a": 1.0, "b": 2.0, "c": None})
    result = check_claim(claim, m2, ref_with(claim))
    assert result.status == DEVIATION
    assert "group max is b" in result.detail


def test_ordering_min_and_na_cell():
    claim = Claim(id="o", kind="ordering", cell="a", expect="min",
                  group=("a", "b"))
    assert check_claim(claim, measured(cells={"a": 1.0, "b": 2.0}),
                       ref_with(claim)).status == PASS
    assert check_claim(claim, measured(cells={"a": None, "b": 2.0}),
                       ref_with(claim)).status == DEVIATION


def test_ratio_band():
    claim = Claim(id="r", kind="ratio", cell="a", paper=10.0, band=(0.8, 1.25))
    assert check_claim(claim, measured(cells={"a": 11.0}),
                       ref_with(claim)).status == PASS
    assert check_claim(claim, measured(cells={"a": 20.0}),
                       ref_with(claim)).status == DEVIATION
    assert check_claim(claim, measured(cells={"a": None}),
                       ref_with(claim)).status == DEVIATION


def test_bound_min_max():
    claim = Claim(id="b", kind="bound", cell="a", min=1.0, max=2.0)
    assert check_claim(claim, measured(cells={"a": 1.5}),
                       ref_with(claim)).status == PASS
    assert check_claim(claim, measured(cells={"a": 2.5}),
                       ref_with(claim)).status == DEVIATION
    assert check_claim(claim, measured(cells={"a": 0.5}),
                       ref_with(claim)).status == DEVIATION


def test_na_claim():
    claim = Claim(id="n", kind="na", cell="a")
    assert check_claim(claim, measured(cells={"a": None}),
                       ref_with(claim)).status == PASS
    assert check_claim(claim, measured(cells={"a": 1.0}),
                       ref_with(claim)).status == DEVIATION


def test_crossover_claim():
    claim = Claim(id="x", kind="crossover", curve_a="par", curve_b="seq",
                  paper_x=16.0, steps=1)
    curves = {
        "par": ((8.0, 9.0), (16.0, 5.0), (32.0, 1.0)),
        "seq": ((8.0, 4.0), (16.0, 6.0), (32.0, 8.0)),
    }
    assert check_claim(claim, measured(curves=curves),
                       ref_with(claim)).status == PASS
    tight = Claim(id="x", kind="crossover", curve_a="par", curve_b="seq",
                  paper_x=64.0, steps=0)
    m = measured(curves={
        "par": ((8.0, 9.0), (16.0, 5.0), (32.0, 1.0), (64.0, 1.0)),
        "seq": ((8.0, 4.0), (16.0, 6.0), (32.0, 8.0), (64.0, 8.0)),
    })
    assert check_claim(tight, m, ref_with(tight)).status == DEVIATION
    never = measured(curves={
        "par": ((8.0, 9.0), (16.0, 9.0)), "seq": ((8.0, 1.0), (16.0, 1.0)),
    })
    result = check_claim(claim, never, ref_with(claim))
    assert result.status == DEVIATION and "never beats" in result.detail


def test_golden_claim():
    claim = Claim(id="g", kind="golden", cell="obj")
    ref = ref_with(claim, goldens={"obj": {"k": 1}})
    assert check_claim(claim, measured(objects={"obj": {"k": 1}}),
                       ref).status == PASS
    result = check_claim(claim, measured(objects={"obj": {"k": 2}}), ref)
    assert result.status == DEVIATION and "fields: k" in result.detail
    with pytest.raises(FidelityError, match="no measured object"):
        check_claim(claim, measured(), ref)


def test_waiver_turns_deviation_into_waived():
    claim = Claim(id="r", kind="ratio", cell="a", paper=10.0, band=(0.9, 1.1))
    waiver = Waiver(claim="r", reason="known", experiments_md="cite")
    result = check_claim(claim, measured(cells={"a": 99.0}),
                         ref_with(claim, waivers=[waiver]))
    assert result.status == WAIVED
    assert result.waiver is waiver
    assert result.ok
    # a passing claim stays PASS even when waived
    ok = check_claim(claim, measured(cells={"a": 10.0}),
                     ref_with(claim, waivers=[waiver]))
    assert ok.status == PASS


def test_check_artifact_counts_and_mismatch():
    good = Claim(id="p", kind="na", cell="a")
    bad = Claim(id="d", kind="na", cell="b")
    ref = ref_with(good, bad)
    report = check_artifact(ref, measured(cells={"a": None, "b": 1.0}))
    assert report.count(PASS) == 1
    assert report.count(DEVIATION) == 1
    assert not report.ok
    assert [r.claim.id for r in report.deviations] == ["d"]
    with pytest.raises(FidelityError, match="refdata is for"):
        check_artifact(ref, MeasuredArtifact("fig2"))


def test_missing_cell_is_a_harness_error():
    claim = Claim(id="r", kind="ratio", cell="ghost", paper=1.0, band=(0.9, 1.1))
    with pytest.raises(FidelityError, match="no measured cell"):
        check_claim(claim, measured(cells={"a": 1.0}), ref_with(claim))
