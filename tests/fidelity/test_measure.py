"""Unit tests for the measurement-side primitives of ``repro.fidelity``."""

from __future__ import annotations

import pytest

from repro.errors import FidelityError
from repro.fidelity.measure import (
    MeasuredArtifact,
    crossover_x,
    step_distance,
    trace_structure_summary,
)


def curve(points):
    return tuple((float(x), float(y)) for x, y in points)


def test_cell_and_curve_lookup_errors():
    m = MeasuredArtifact("fig1", cells={"a": 1.0, "b": None})
    assert m.cell("a") == 1.0
    assert m.cell("b") is None
    with pytest.raises(FidelityError, match="no measured cell"):
        m.cell("ghost")
    with pytest.raises(FidelityError, match="no measured curve"):
        m.curve("ghost")


def test_crossover_x_first_win():
    a = curve([(8, 10.0), (16, 5.0), (32, 1.0)])
    b = curve([(8, 4.0), (16, 6.0), (32, 4.0)])
    assert crossover_x(a, b) == 16


def test_crossover_x_none_when_never_faster():
    a = curve([(8, 10.0), (16, 10.0)])
    b = curve([(8, 1.0), (16, 1.0)])
    assert crossover_x(a, b) is None


def test_crossover_x_uses_common_grid_only():
    a = curve([(8, 10.0), (16, 0.5), (64, 0.1)])
    b = curve([(16, 1.0), (32, 1.0), (64, 1.0)])
    assert crossover_x(a, b) == 16


def test_step_distance_counts_grid_steps():
    a = curve([(8, 1.0), (16, 1.0), (32, 1.0), (64, 1.0)])
    b = a
    assert step_distance(a, b, 8, 64) == 3
    assert step_distance(a, b, 32, 32) == 0


def test_step_distance_snaps_to_nearest_grid_point():
    a = curve([(8, 1.0), (16, 1.0), (32, 1.0)])
    # 20 snaps to 16, 30 snaps to 32
    assert step_distance(a, a, 20, 30) == 1


def test_trace_structure_summary_shape():
    doc = {
        "traceEvents": [
            {"ph": "M", "name": "thread_name", "args": {"name": "main"}},
            {"ph": "X", "cat": "call", "name": "for_each", "ts": 0, "dur": 1},
            {"ph": "X", "cat": "phase", "name": "compute", "ts": 0, "dur": 1},
            {"ph": "X", "cat": "phase", "name": "compute", "ts": 1, "dur": 1},
        ]
    }
    summary = trace_structure_summary(doc)
    assert summary["tracks"] == ["main"]
    assert summary["events_by_category"] == {"call": 1, "phase": 2}
    assert summary["call_span_names"] == ["for_each"]
    assert summary["phase_span_names"] == ["compute"]
    assert summary["overhead_span_names"] == []
    assert summary["total_events"] == 4
