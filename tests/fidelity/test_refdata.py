"""Schema and integrity tests for ``refdata/``.

The checked-in reference files are the contract between the paper and
the reproduction; these tests keep them loadable, internally consistent
and honestly cited (every waiver must quote EXPERIMENTS.md verbatim).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import FidelityError
from repro.fidelity.refdata import (
    ARTIFACT_IDS,
    ArtifactRef,
    Claim,
    Waiver,
    load_all_refdata,
    load_refdata,
    refdata_dir,
    save_refdata,
)

EXPERIMENTS = Path(__file__).resolve().parents[2] / "EXPERIMENTS.md"


def test_every_artifact_has_refdata():
    refs = load_all_refdata()
    assert [r.artifact for r in refs] == list(ARTIFACT_IDS)
    assert all(r.claims for r in refs), "no artifact may be claim-free"


def test_no_stray_refdata_files():
    names = {p.stem for p in refdata_dir().glob("*.json")}
    assert names == set(ARTIFACT_IDS)


def test_waivers_quote_experiments_md_verbatim():
    """Every waiver's citation must appear verbatim in EXPERIMENTS.md."""
    text = EXPERIMENTS.read_text(encoding="utf-8")
    for ref in load_all_refdata():
        for waiver in ref.waivers:
            assert waiver.experiments_md in text, (
                f"{ref.artifact}: waiver for {waiver.claim!r} cites text "
                f"not found in EXPERIMENTS.md: {waiver.experiments_md!r}"
            )


def test_all_claim_kinds_and_tiers_are_exercised():
    """The shipped refdata covers every claim kind (hence all 3 tiers)."""
    kinds = {c.kind for ref in load_all_refdata() for c in ref.claims}
    assert kinds == {"ordering", "ratio", "bound", "na", "crossover", "golden"}
    tiers = {c.tier for ref in load_all_refdata() for c in ref.claims}
    assert tiers == {"ordering", "ratio", "crossover"}


def test_refdata_round_trips(tmp_path):
    for ref in load_all_refdata():
        path = save_refdata(ref, tmp_path)
        again = load_refdata(ref.artifact, tmp_path)
        assert again == ref, f"{path} does not round-trip"


def test_claim_validation_rejects_malformed():
    with pytest.raises(FidelityError):
        Claim(id="x", kind="nope")
    with pytest.raises(FidelityError):
        Claim(id="x", kind="ordering", cell="a", group=("a",), expect="max")
    with pytest.raises(FidelityError):
        Claim(id="x", kind="ordering", cell="a", group=("b", "c"), expect="max")
    with pytest.raises(FidelityError):
        Claim(id="x", kind="ratio", cell="a", paper=2.0)  # no band
    with pytest.raises(FidelityError):
        Claim(id="x", kind="ratio", cell="a", paper=2.0, band=(1.5, 0.5))
    with pytest.raises(FidelityError):
        Claim(id="x", kind="bound", cell="a")  # neither min nor max
    with pytest.raises(FidelityError):
        Claim(id="x", kind="crossover", curve_a="a", curve_b="b")  # no paper_x
    with pytest.raises(FidelityError):
        Claim(id="x", kind="crossover", curve_a="a", curve_b="b",
              paper_x=8.0, steps=-1)


def test_claim_from_dict_rejects_unknown_fields():
    with pytest.raises(FidelityError):
        Claim.from_dict({"id": "x", "kind": "na", "cell": "a", "bogus": 1})
    with pytest.raises(FidelityError):
        Claim.from_dict({"kind": "na", "cell": "a"})


def test_waiver_requires_citation():
    with pytest.raises(FidelityError):
        Waiver(claim="x", reason="r", experiments_md="")


def test_artifact_ref_rejects_duplicate_ids_and_orphan_waivers():
    claim = Claim(id="c1", kind="na", cell="a")
    with pytest.raises(FidelityError):
        ArtifactRef(artifact="fig1", title="t", source="s",
                    claims=(claim, Claim(id="c1", kind="na", cell="b")))
    with pytest.raises(FidelityError):
        ArtifactRef(artifact="fig1", title="t", source="s", claims=(claim,),
                    waivers=(Waiver(claim="ghost", reason="r",
                                    experiments_md="e"),))
    with pytest.raises(FidelityError):
        ArtifactRef(artifact="fig1", title="t", source="s",
                    claims=(Claim(id="g", kind="golden", cell="obj"),))


def test_load_refdata_errors(tmp_path):
    with pytest.raises(FidelityError, match="no reference data"):
        load_refdata("fig1", tmp_path)
    (tmp_path / "fig1.json").write_text("{not json")
    with pytest.raises(FidelityError, match="corrupt"):
        load_refdata("fig1", tmp_path)
    (tmp_path / "fig2.json").write_text(json.dumps(
        {"artifact": "fig9", "title": "t", "source": "s", "claims": []}))
    with pytest.raises(FidelityError, match="declares artifact"):
        load_refdata("fig2", tmp_path)
    with pytest.raises(FidelityError, match="unknown artifacts"):
        load_all_refdata(["fig99"], tmp_path)


def test_experiments_md_carries_generated_summary():
    """EXPERIMENTS.md holds the generated conformance table (populated;
    ``pstl-fidelity report --write-experiments`` refreshes it)."""
    from repro.fidelity.report import MARKER_BEGIN, MARKER_END

    text = EXPERIMENTS.read_text(encoding="utf-8")
    assert MARKER_BEGIN in text and MARKER_END in text
    block = text.split(MARKER_BEGIN, 1)[1].split(MARKER_END, 1)[0]
    for ref in load_all_refdata():
        assert f"| {ref.artifact} |" in block
    assert "Totals:" in block and "unwaived deviations" in block


def test_refdata_matches_generator():
    """tools/gen_refdata.py and refdata/ must not drift apart.

    The generator is the authoring source; the JSON is what ships. This
    regenerates into a temp dir and compares (the fig3 golden is seeded
    from the checked-in file, so the comparison is exact).
    """
    import importlib.util

    tool = Path(__file__).resolve().parents[2] / "tools" / "gen_refdata.py"
    spec = importlib.util.spec_from_file_location("gen_refdata", tool)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    goldens = dict(load_refdata("fig3").goldens)
    regenerated = {
        "fig1": mod.fig1_ref(), "fig2": mod.fig2_ref(),
        "fig3": mod.fig3_ref(goldens), "fig4": mod.fig4_ref(),
        "fig5": mod.fig5_ref(), "fig6": mod.fig6_ref(),
        "fig7": mod.fig7_ref(), "fig8": mod.fig8_ref(),
        "fig9": mod.fig9_ref(), "table3": mod.table3_ref(),
        "table4": mod.table4_ref(), "table5": mod.table5_ref(),
        "table6": mod.table6_ref(), "table7": mod.table7_ref(),
    }
    for artifact, ref in regenerated.items():
        assert load_refdata(artifact) == ref, (
            f"refdata/{artifact}.json is stale; re-run tools/gen_refdata.py"
        )
