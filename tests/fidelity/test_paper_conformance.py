"""The ``pytest -m fidelity`` bridge: one conformance test per artifact.

Each test regenerates one figure/table and applies its refdata claims,
failing with the engine's per-claim detail when an unwaived deviation
appears. ``pytest -m fidelity`` runs exactly this paper-conformance
slice; the same checks back ``pstl-fidelity run --strict``.
"""

from __future__ import annotations

import pytest

from repro.fidelity import run_fidelity
from repro.fidelity.refdata import ARTIFACT_IDS

pytestmark = pytest.mark.fidelity


@pytest.mark.parametrize("artifact", ARTIFACT_IDS)
def test_artifact_conforms_to_paper(artifact):
    report = run_fidelity([artifact])
    art = report.artifacts[0]
    details = "\n".join(
        f"  [{r.claim.tier}] {r.claim.id}: {r.detail}" for r in art.deviations
    )
    assert art.ok, (
        f"{artifact} has {len(art.deviations)} unwaived deviation(s) "
        f"(fingerprint {report.fingerprint}):\n{details}"
    )
