"""End-to-end tests for the ``pstl-fidelity`` CLI.

These run against a temporary refdata directory holding a small fig1
reference, so each invocation only rebuilds the cheapest artifact.
"""

from __future__ import annotations

import json

import pytest

from repro.fidelity.artifacts import build_artifact
from repro.fidelity.cli import main
from repro.fidelity.refdata import ArtifactRef, Claim, Waiver, save_refdata

CELL = "GCC-TBB/for_each_k1000"


@pytest.fixture(scope="module")
def fig1_value():
    return build_artifact("fig1").cell(CELL)


@pytest.fixture
def write_refdata(tmp_path, fig1_value):
    """Write a fig1 reference whose single ratio claim passes or deviates."""

    def write(*, deviate=False, waived=False):
        claims = (Claim(id="c1", kind="ratio", cell=CELL,
                        paper=(fig1_value * 10 if deviate else fig1_value),
                        band=(0.9, 1.1)),)
        waivers = ()
        if waived:
            waivers = (Waiver(claim="c1", reason="testing",
                              experiments_md="known deviation snippet"),)
        save_refdata(
            ArtifactRef(artifact="fig1", title="Fig. 1", source="Figure 1",
                        claims=claims, waivers=waivers),
            tmp_path,
        )
        return tmp_path

    return write


def test_run_ok_exit_zero(write_refdata, capsys):
    tmp_path = write_refdata()
    assert main(["run", "--artifact", "fig1", "--refdata", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "verdict: OK" in out and "1 pass" in out


def test_run_strict_exit_one_on_deviation(write_refdata, capsys):
    tmp_path = write_refdata(deviate=True)
    args = ["run", "--artifact", "fig1", "--refdata", str(tmp_path)]
    assert main(args) == 0, "non-strict runs only report"
    assert main(args + ["--strict"]) == 1
    assert "DEVIATIONS FOUND" in capsys.readouterr().out


def test_run_strict_ok_when_waived(write_refdata, capsys):
    tmp_path = write_refdata(deviate=True, waived=True)
    args = ["run", "--artifact", "fig1", "--refdata", str(tmp_path), "--strict"]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "1 waived" in out and "waived: testing" in out


def test_run_writes_json_and_trace(write_refdata, capsys):
    tmp_path = write_refdata()
    report = tmp_path / "report.json"
    trace = tmp_path / "trace.json"
    assert main(["run", "--artifact", "fig1", "--refdata", str(tmp_path),
                 "--json", str(report), "--trace", str(trace)]) == 0
    doc = json.loads(report.read_text())
    assert doc["schema"] == "pstl-fidelity-report/1"
    assert doc["totals"] == {"claims": 1, "pass": 1, "waived": 0, "deviation": 0}
    events = json.loads(trace.read_text())["traceEvents"]
    assert any(e.get("name") == "fidelity.artifact" for e in events
               if e["ph"] == "X")


def test_diff_exit_codes(write_refdata, capsys):
    tmp_path = write_refdata()
    ok = tmp_path / "ok.json"
    main(["run", "--artifact", "fig1", "--refdata", str(tmp_path),
          "--json", str(ok)])
    write_refdata(deviate=True)
    bad = tmp_path / "bad.json"
    main(["run", "--artifact", "fig1", "--refdata", str(tmp_path),
          "--json", str(bad)])
    capsys.readouterr()
    assert main(["diff", str(ok), str(ok)]) == 0
    assert main(["diff", str(ok), str(bad)]) == 1
    assert "pass -> deviation" in capsys.readouterr().out


def test_waive_records_cited_waiver(write_refdata, capsys):
    tmp_path = write_refdata(deviate=True)
    experiments = tmp_path / "EXPERIMENTS.md"
    experiments.write_text("Deviations: the model overshoots here.\n")
    base = ["waive", "fig1", "c1", "--refdata", str(tmp_path),
            "--experiments", str(experiments), "--reason", "model overshoot"]
    assert main(base + ["--cite", "not in the doc"]) == 2
    assert main(base + ["--cite", "the model overshoots here"]) == 0
    # now strict passes, and re-waiving is rejected
    assert main(["run", "--artifact", "fig1", "--refdata", str(tmp_path),
                 "--strict"]) == 0
    assert main(base + ["--cite", "the model overshoots here"]) == 2
    err = capsys.readouterr().err
    assert "already waived" in err


def test_waive_unknown_claim(write_refdata, capsys):
    tmp_path = write_refdata()
    experiments = tmp_path / "EXPERIMENTS.md"
    experiments.write_text("snippet\n")
    assert main(["waive", "fig1", "ghost", "--refdata", str(tmp_path),
                 "--experiments", str(experiments),
                 "--reason", "r", "--cite", "snippet"]) == 2
    assert "no claim 'ghost'" in capsys.readouterr().err


def test_report_from_saved_json(write_refdata, capsys):
    tmp_path = write_refdata()
    saved = tmp_path / "r.json"
    main(["run", "--artifact", "fig1", "--refdata", str(tmp_path),
          "--json", str(saved)])
    capsys.readouterr()
    assert main(["report", "--from", str(saved)]) == 0
    assert json.loads(capsys.readouterr().out)["totals"]["claims"] == 1
    # --from is render-only; table modes need a fresh run
    assert main(["report", "--from", str(saved), "--markdown"]) == 2


def test_run_missing_refdata_is_exit_two(tmp_path, capsys):
    assert main(["run", "--artifact", "fig1", "--refdata",
                 str(tmp_path / "empty")]) == 2
    assert "no reference data" in capsys.readouterr().err


def test_update_golden_without_goldens(write_refdata, capsys):
    tmp_path = write_refdata()
    assert main(["run", "--artifact", "fig1", "--refdata", str(tmp_path),
                 "--update-golden"]) == 0
    assert "goldens already up to date" in capsys.readouterr().err
