"""Tests for the artifact builder registry (``repro.fidelity.artifacts``)."""

from __future__ import annotations

import pytest

from repro.campaign.store import ResultStore
from repro.errors import FidelityError
from repro.fidelity.artifacts import (
    MeasureOptions,
    artifact_builders,
    build_artifact,
)
from repro.fidelity.refdata import ARTIFACT_IDS


def test_registry_covers_every_artifact():
    builders = artifact_builders()
    assert list(builders) == list(ARTIFACT_IDS)
    assert all(callable(b) for b in builders.values())


def test_unknown_artifact_rejected():
    with pytest.raises(FidelityError, match="unknown artifact"):
        build_artifact("fig99")


def test_fig1_cells_match_refdata_keys():
    measured = build_artifact("fig1")
    assert measured.artifact == "fig1"
    assert measured.cell("GCC-TBB/for_each_k1000") is not None
    # NVC++ has no std::execution sort offload in the paper either
    assert "GCC-TBB/sort" in measured.cells


def test_fig2_size_step_coarsens_curves():
    fine = build_artifact("fig2", MeasureOptions(size_step=4))
    coarse = build_artifact("fig2", MeasureOptions(size_step=8))
    name = next(iter(fine.curves))
    assert len(coarse.curve(name)) < len(fine.curve(name))


def test_fig3_records_trace_summary_object():
    measured = build_artifact("fig3")
    summary = measured.objects["trace_summary"]
    assert summary["total_events"] > 0
    assert summary["call_span_names"]


def test_table5_builder_reuses_campaign_cache(tmp_path):
    store = ResultStore(tmp_path / "cache")
    build_artifact("table5", MeasureOptions(store=store))
    assert store.misses > 0
    warm = ResultStore(tmp_path / "cache")
    again = build_artifact("table5", MeasureOptions(store=warm))
    assert warm.misses == 0 and warm.hits > 0
    assert again.cells == build_artifact("table5").cells
