"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import TextTable, render_grid


class TestTextTable:
    def test_basic_render(self):
        table = TextTable(headers=["Name", "Value"])
        table.add_row(["a", 1])
        table.add_row(["bb", 22])
        out = table.render()
        lines = out.splitlines()
        assert lines[0].startswith("Name")
        assert "----" in lines[1]
        assert lines[2].startswith("a")
        assert lines[3].startswith("bb")

    def test_title(self):
        table = TextTable(headers=["x"], title="My Table")
        table.add_row([1])
        assert table.render().splitlines()[0] == "My Table"

    def test_alignment_default_right_for_values(self):
        table = TextTable(headers=["Name", "Val"])
        table.add_row(["a", 5])
        row = table.render().splitlines()[-1]
        assert row.endswith("5")

    def test_wrong_cell_count_rejected(self):
        table = TextTable(headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_bad_alignment_rejected(self):
        with pytest.raises(ValueError):
            TextTable(headers=["a"], aligns=["^"])

    def test_aligns_length_checked(self):
        with pytest.raises(ValueError):
            TextTable(headers=["a", "b"], aligns=["<"])

    def test_wide_cells_expand_columns(self):
        table = TextTable(headers=["h"])
        table.add_row(["wide-cell-content"])
        rule_line = table.render().splitlines()[1]
        assert len(rule_line) >= len("wide-cell-content")


class TestRenderGrid:
    def test_grid_shape(self):
        out = render_grid(["r1", "r2"], ["c1", "c2"], [[1, 2], [3, 4]])
        lines = out.splitlines()
        assert len(lines) == 4  # header + rule + 2 rows
        assert "c1" in lines[0] and "c2" in lines[0]
        assert lines[2].startswith("r1")

    def test_mismatched_rows_rejected(self):
        with pytest.raises(ValueError):
            render_grid(["r1"], ["c1"], [[1], [2]])

    def test_mismatched_cols_rejected(self):
        with pytest.raises(ValueError):
            render_grid(["r1"], ["c1", "c2"], [[1]])

    def test_title_rendered(self):
        out = render_grid(["r"], ["c"], [[0]], title="G")
        assert out.splitlines()[0] == "G"
