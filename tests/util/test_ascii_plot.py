"""Tests for repro.util.ascii_plot."""

import pytest

from repro.util.ascii_plot import Series, line_plot


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("s", [1, 2], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Series("s", [], [])


class TestLinePlot:
    def test_basic_plot_contains_markers_and_legend(self):
        s = Series("speedup", [1, 2, 4, 8], [1.0, 2.0, 3.5, 6.0])
        out = line_plot([s])
        assert "o" in out
        assert "speedup" in out

    def test_multiple_series_distinct_markers(self):
        a = Series("a", [1, 2], [1.0, 2.0])
        b = Series("b", [1, 2], [2.0, 1.0])
        out = line_plot([a, b])
        assert "o a" in out and "x b" in out

    def test_log_axes(self):
        s = Series("s", [8, 1 << 30], [1e-6, 1.0])
        out = line_plot([s], logx=True, logy=True)
        assert isinstance(out, str) and len(out.splitlines()) > 5

    def test_log_rejects_nonpositive(self):
        s = Series("s", [0, 1], [1.0, 2.0])
        with pytest.raises(ValueError):
            line_plot([s], logx=True)

    def test_no_series_rejected(self):
        with pytest.raises(ValueError):
            line_plot([])

    def test_tiny_canvas_rejected(self):
        s = Series("s", [1], [1.0])
        with pytest.raises(ValueError):
            line_plot([s], width=4, height=2)

    def test_constant_series_ok(self):
        s = Series("flat", [1, 2, 3], [5.0, 5.0, 5.0])
        out = line_plot([s])
        assert "flat" in out

    def test_title(self):
        s = Series("s", [1, 2], [1.0, 2.0])
        assert line_plot([s], title="T").splitlines()[0] == "T"
