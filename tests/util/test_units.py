"""Tests for repro.util.units."""

import pytest

from repro.util.units import (
    GIB,
    KIB,
    MIB,
    format_bytes,
    format_count,
    format_seconds,
    parse_size,
)


class TestFormatBytes:
    def test_mib(self):
        assert format_bytes(int(17.21 * MIB)) == "17.21 MiB"

    def test_gib(self):
        assert format_bytes(2 * GIB) == "2.00 GiB"

    def test_small(self):
        assert format_bytes(512) == "512 B"

    def test_kib_boundary(self):
        assert format_bytes(KIB) == "1.00 KiB"

    def test_precision(self):
        assert format_bytes(1536, precision=1) == "1.5 KiB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestFormatSeconds:
    def test_seconds(self):
        assert format_seconds(1.5) == "1.500 s"

    def test_millis(self):
        assert format_seconds(0.0042) == "4.200 ms"

    def test_micros(self):
        assert format_seconds(3.5e-6) == "3.500 us"

    def test_nanos(self):
        assert format_seconds(2e-9) == "2.000 ns"

    def test_zero(self):
        assert format_seconds(0) == "0 s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_seconds(-0.1)


class TestFormatCount:
    def test_tera(self):
        assert format_count(1.72e12) == "1.72T"

    def test_giga(self):
        assert format_count(107e9) == "107.00G"

    def test_small(self):
        assert format_count(42) == "42"

    def test_kilo(self):
        assert format_count(1500) == "1.50K"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_count(-5)


class TestParseSize:
    def test_power_of_two(self):
        assert parse_size("2^30") == 1 << 30

    def test_plain_integer(self):
        assert parse_size("1048576") == 1048576

    def test_mib_suffix(self):
        assert parse_size("64MiB") == 64 * MIB

    def test_decimal_suffix(self):
        assert parse_size("1.5gib") == int(1.5 * GIB)

    def test_short_suffix_is_binary(self):
        assert parse_size("4k") == 4 * KIB

    def test_whitespace_tolerated(self):
        assert parse_size(" 2^10 ") == 1024

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_size("")
