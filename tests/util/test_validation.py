"""Tests for repro.util.validation."""

import pytest

from repro.errors import ConfigurationError
from repro.util.validation import (
    check_in_range,
    check_positive,
    check_power_of_two,
    is_power_of_two,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive(0.1, "x")

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            check_positive(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive(-1, "x")


class TestCheckInRange:
    def test_accepts_bounds(self):
        check_in_range(0, 0, 1, "x")
        check_in_range(1, 0, 1, "x")

    def test_rejects_outside(self):
        with pytest.raises(ConfigurationError):
            check_in_range(1.1, 0, 1, "x")


class TestPowerOfTwo:
    @pytest.mark.parametrize("n", [1, 2, 4, 1 << 30])
    def test_powers(self, n):
        assert is_power_of_two(n)

    @pytest.mark.parametrize("n", [0, -2, 3, 6, (1 << 30) - 1])
    def test_non_powers(self, n):
        assert not is_power_of_two(n)

    def test_check_raises(self):
        with pytest.raises(ConfigurationError):
            check_power_of_two(3, "n")

    def test_check_accepts(self):
        check_power_of_two(8, "n")
