"""Tests for repro.util.stats."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    ConfidenceInterval,
    _erfinv,
    geomean,
    harmonic_mean,
    mean,
    median,
    percentile,
    stddev,
)


class TestBasicStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_median_odd(self):
        assert median([5.0, 1.0, 3.0]) == pytest.approx(3.0)

    def test_median_even(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == pytest.approx(2.5)

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_harmonic_mean(self):
        assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_mean([40.0, 60.0]) == pytest.approx(48.0)

    def test_stddev_single_sample_is_zero(self):
        assert stddev([3.0]) == 0.0

    def test_stddev_known(self):
        assert stddev([2.0, 4.0]) == pytest.approx(math.sqrt(2.0))

    def test_percentile(self):
        assert percentile(list(range(101)), 50) == pytest.approx(50.0)

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_empty_rejected(self):
        for fn in (mean, median, geomean, harmonic_mean, stddev):
            with pytest.raises(ValueError):
                fn([])


class TestConfidenceInterval:
    def test_single_sample_zero_width(self):
        ci = ConfidenceInterval.from_samples([5.0])
        assert ci.center == 5.0
        assert ci.halfwidth == 0.0

    def test_contains_center(self):
        ci = ConfidenceInterval.from_samples([1.0, 2.0, 3.0])
        assert ci.contains(ci.center)
        assert ci.low <= 2.0 <= ci.high

    def test_level_validated(self):
        with pytest.raises(ValueError):
            ConfidenceInterval.from_samples([1.0, 2.0], level=1.5)

    def test_wider_at_higher_level(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        ci90 = ConfidenceInterval.from_samples(samples, level=0.90)
        ci99 = ConfidenceInterval.from_samples(samples, level=0.99)
        assert ci99.halfwidth > ci90.halfwidth

    @pytest.mark.parametrize(
        "level,z",
        [(0.90, 1.6449), (0.95, 1.9600), (0.99, 2.5758)],
    )
    def test_z_values_match_normal_table(self, level, z):
        """Regression for the Winitzki-only erfinv: the two-sided z values
        must match the standard normal table to 4 decimal places (the old
        approximation gave z(0.95) = 1.9546)."""
        assert math.sqrt(2.0) * _erfinv(level) == pytest.approx(z, abs=5e-5)

    def test_halfwidth_uses_exact_z(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        ci = ConfidenceInterval.from_samples(samples, level=0.95)
        expected = 1.959964 * stddev(samples) / math.sqrt(len(samples))
        assert ci.halfwidth == pytest.approx(expected, rel=1e-5)


class TestErfinv:
    def test_domain_enforced(self):
        for x in (-1.0, 1.0, 2.0, -3.0):
            with pytest.raises(ValueError):
                _erfinv(x)

    def test_zero_and_symmetry(self):
        assert _erfinv(0.0) == 0.0
        assert _erfinv(-0.5) == -_erfinv(0.5)

    @given(st.floats(min_value=-0.999999, max_value=0.999999))
    def test_round_trip_to_machine_precision(self, x):
        """erf(erfinv(x)) == x to double precision across the domain."""
        assert math.erf(_erfinv(x)) == pytest.approx(x, abs=1e-14)


@given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=50))
def test_mean_bounds(values):
    """Mean lies within [min, max] of the sample."""
    m = mean(values)
    assert min(values) - 1e-9 <= m <= max(values) + 1e-9


@given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=50))
def test_hm_le_gm_le_am(values):
    """Classic mean inequality chain: harmonic <= geometric <= arithmetic."""
    hm = harmonic_mean(values)
    gm = geomean(values)
    am = mean(values)
    assert hm <= gm * (1 + 1e-9)
    assert gm <= am * (1 + 1e-9)
