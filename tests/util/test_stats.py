"""Tests for repro.util.stats."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    ConfidenceInterval,
    geomean,
    harmonic_mean,
    mean,
    median,
    percentile,
    stddev,
)


class TestBasicStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_median_odd(self):
        assert median([5.0, 1.0, 3.0]) == pytest.approx(3.0)

    def test_median_even(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == pytest.approx(2.5)

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_harmonic_mean(self):
        assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_mean([40.0, 60.0]) == pytest.approx(48.0)

    def test_stddev_single_sample_is_zero(self):
        assert stddev([3.0]) == 0.0

    def test_stddev_known(self):
        assert stddev([2.0, 4.0]) == pytest.approx(math.sqrt(2.0))

    def test_percentile(self):
        assert percentile(list(range(101)), 50) == pytest.approx(50.0)

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_empty_rejected(self):
        for fn in (mean, median, geomean, harmonic_mean, stddev):
            with pytest.raises(ValueError):
                fn([])


class TestConfidenceInterval:
    def test_single_sample_zero_width(self):
        ci = ConfidenceInterval.from_samples([5.0])
        assert ci.center == 5.0
        assert ci.halfwidth == 0.0

    def test_contains_center(self):
        ci = ConfidenceInterval.from_samples([1.0, 2.0, 3.0])
        assert ci.contains(ci.center)
        assert ci.low <= 2.0 <= ci.high

    def test_level_validated(self):
        with pytest.raises(ValueError):
            ConfidenceInterval.from_samples([1.0, 2.0], level=1.5)

    def test_wider_at_higher_level(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        ci90 = ConfidenceInterval.from_samples(samples, level=0.90)
        ci99 = ConfidenceInterval.from_samples(samples, level=0.99)
        assert ci99.halfwidth > ci90.halfwidth


@given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=50))
def test_mean_bounds(values):
    """Mean lies within [min, max] of the sample."""
    m = mean(values)
    assert min(values) - 1e-9 <= m <= max(values) + 1e-9


@given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=50))
def test_hm_le_gm_le_am(values):
    """Classic mean inequality chain: harmonic <= geometric <= arithmetic."""
    hm = harmonic_mean(values)
    gm = geomean(values)
    am = mean(values)
    assert hm <= gm * (1 + 1e-9)
    assert gm <= am * (1 + 1e-9)
