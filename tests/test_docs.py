"""Tier-1 shim for ``tools/check_docs.py``.

Runs the docs lint inside the test suite: the python fences of every
file in ``FENCE_FILES`` (README, OBSERVABILITY, CAMPAIGNS, FIDELITY,
ROBUSTNESS) must execute, and every public symbol of the packages in
``DOCSTRING_PACKAGES`` must be documented.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parents[1] / "tools" / "check_docs.py"


def _load_check_docs():
    spec = importlib.util.spec_from_file_location("check_docs", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_docs = _load_check_docs()


@pytest.mark.parametrize("rel", check_docs.FENCE_FILES)
def test_doc_fences_execute(rel):
    path = check_docs.REPO / rel
    assert path.exists(), f"{rel} missing"
    assert check_docs.extract_fences(path), f"{rel} has no python fences"
    errors = check_docs.run_fences(path)
    assert not errors, "\n".join(errors)


@pytest.mark.parametrize("package", check_docs.DOCSTRING_PACKAGES)
def test_public_api_documented(package):
    errors = check_docs.check_docstrings(package)
    assert not errors, "\n".join(errors)


def test_fidelity_layer_is_covered():
    assert "repro.fidelity" in check_docs.DOCSTRING_PACKAGES
    assert "docs/FIDELITY.md" in check_docs.FENCE_FILES


def test_faults_layer_is_covered():
    assert "repro.faults" in check_docs.DOCSTRING_PACKAGES
    assert "docs/ROBUSTNESS.md" in check_docs.FENCE_FILES


def test_scenarios_layer_is_covered():
    assert "repro.scenarios" in check_docs.DOCSTRING_PACKAGES
    assert "docs/SCENARIOS.md" in check_docs.FENCE_FILES


def test_list_mode_reports_coverage(capsys):
    assert check_docs.main(["--list"]) == 0
    out = capsys.readouterr().out
    for rel in check_docs.FENCE_FILES:
        assert rel in out
    for package in check_docs.DOCSTRING_PACKAGES:
        assert f"{package}:" in out
    assert "MISSING" not in out


def test_walk_modules_is_shared_by_lint_and_list():
    modules = [m.__name__ for m in check_docs.walk_modules("repro.fidelity")]
    assert "repro.fidelity" in modules
    assert "repro.fidelity.engine" in modules
