"""Chrome trace-event export: schema validity and track mapping."""

from __future__ import annotations

import json

import pytest

from repro.trace import (
    Tracer,
    chrome_trace_events,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.trace.chrome import TRACE_PID


def sample_tracer() -> Tracer:
    tr = Tracer()
    with tr.span("reduce", category="call", machine="Mach A", threads=2):
        tr.record("main-loop", 1.0, category="phase", track="phases", bound="memory")
        tr.record("main-loop", 0.9, category="lane", track="thread 0")
        tr.record("main-loop", 1.0, category="lane", track="thread 1")
        tr.advance(1.0)
        tr.record("fork/join", 0.1, category="overhead", track="phases")
        tr.advance(0.1)
    return tr


class TestSchema:
    def test_document_shape(self):
        doc = to_chrome_trace(sample_tracer())
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        json.dumps(doc)  # round-trippable

    def test_complete_events_have_required_keys(self):
        events = chrome_trace_events(sample_tracer())
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 5
        for e in xs:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"} <= set(e)
            assert e["pid"] == TRACE_PID
            assert isinstance(e["tid"], int)
            assert e["ts"] >= 0 and e["dur"] >= 0

    def test_timestamps_are_microseconds(self):
        events = chrome_trace_events(sample_tracer())
        loop = [e for e in events if e["ph"] == "X" and e["cat"] == "phase"][0]
        assert loop["dur"] == pytest.approx(1.0 * 1e6)
        fj = [e for e in events if e["name"] == "fork/join"][0]
        assert fj["ts"] == pytest.approx(1.0 * 1e6)

    def test_metadata_names_every_track(self):
        events = chrome_trace_events(sample_tracer())
        names = {
            e["args"]["name"] for e in events if e.get("name") == "thread_name"
        }
        assert names == {"main", "phases", "thread 0", "thread 1"}
        sort_events = [e for e in events if e.get("name") == "thread_sort_index"]
        assert len(sort_events) == 4

    def test_track_order_main_phases_threads(self):
        events = chrome_trace_events(sample_tracer())
        tid_of = {
            e["args"]["name"]: e["tid"]
            for e in events
            if e.get("name") == "thread_name"
        }
        assert tid_of["main"] < tid_of["phases"] < tid_of["thread 0"] < tid_of["thread 1"]

    def test_thread_tracks_sort_numerically(self):
        tr = Tracer()
        for t in (0, 2, 10, 1):
            tr.record("p", 1.0, category="lane", track=f"thread {t}")
        events = chrome_trace_events(tr)
        tid_of = {
            e["args"]["name"]: e["tid"]
            for e in events
            if e.get("name") == "thread_name"
        }
        assert (
            tid_of["thread 0"]
            < tid_of["thread 1"]
            < tid_of["thread 2"]
            < tid_of["thread 10"]
        )

    def test_args_are_jsonable(self):
        tr = Tracer()
        tr.record("s", 1.0, ranges=(1, 2), policy=object())
        (event,) = [e for e in chrome_trace_events(tr) if e["ph"] == "X"]
        json.dumps(event)
        assert event["args"]["ranges"] == [1, 2]
        assert isinstance(event["args"]["policy"], str)


class TestWrite:
    def test_write_returns_span_count_and_parses(self, tmp_path):
        out = tmp_path / "trace.json"
        n = write_chrome_trace(sample_tracer(), str(out))
        assert n == 5
        doc = json.loads(out.read_text())
        assert len([e for e in doc["traceEvents"] if e["ph"] == "X"]) == 5

    def test_accepts_span_iterables(self, tmp_path):
        spans = sample_tracer().spans
        out = tmp_path / "trace.json"
        assert write_chrome_trace(spans, str(out)) == len(spans)
