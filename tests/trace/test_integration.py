"""Instrumented layers: engine phases/lanes, context root spans, bench spans."""

from __future__ import annotations

import pytest

from repro import pstl
from repro.backends import get_backend
from repro.execution.context import ExecutionContext
from repro.machines import get_machine
from repro.suite.cases import get_case
from repro.suite.wrappers import run_case
from repro.trace import Tracer, use_tracer
from repro.types import FLOAT64


def traced_reduce(threads=8, n=1 << 22):
    ctx = ExecutionContext(
        get_machine("A"), get_backend("gcc-tbb"), threads=threads, mode="model"
    )
    with use_tracer(Tracer()) as tracer:
        result = pstl.reduce(ctx, ctx.allocate(n, FLOAT64))
    return tracer, result


class TestEngineSpans:
    def test_root_span_covers_the_call(self):
        tracer, result = traced_reduce()
        (call,) = [s for s in tracer.spans if s.category == "call"]
        assert call.name == "reduce"
        assert call.start == 0.0
        assert call.duration == pytest.approx(result.seconds)
        assert tracer.clock == pytest.approx(result.seconds)

    def test_root_span_attributes(self):
        tracer, result = traced_reduce(threads=8)
        (call,) = [s for s in tracer.spans if s.category == "call"]
        assert call.attributes["machine"] == get_machine("A").name
        assert call.attributes["backend"] == "GCC-TBB"
        assert call.attributes["threads"] == 8
        assert call.attributes["mode"] == "model"
        assert call.attributes["policy"] == "par"
        assert call.attributes["seconds"] == pytest.approx(result.seconds)

    def test_one_phase_span_per_report_phase(self):
        tracer, result = traced_reduce()
        phase_spans = [s for s in tracer.spans if s.category == "phase"]
        assert [s.name for s in phase_spans] == [p.name for p in result.report.phases]
        for span, phase in zip(phase_spans, result.report.phases):
            assert span.duration == pytest.approx(phase.seconds)
            assert span.attributes["compute_seconds"] == pytest.approx(
                phase.compute_seconds
            )
            assert span.attributes["memory_seconds"] == pytest.approx(
                phase.memory_seconds
            )
            assert span.attributes["bound"] in ("compute", "memory", "overhead")

    def test_phases_tile_the_timeline(self):
        tracer, result = traced_reduce()
        timeline = [
            s for s in tracer.spans if s.category in ("phase", "overhead")
        ]
        timeline.sort(key=lambda s: s.start)
        cursor = 0.0
        for span in timeline:
            assert span.start == pytest.approx(cursor)
            cursor = span.end
        assert cursor == pytest.approx(result.seconds)

    def test_lane_span_per_thread(self):
        tracer, _ = traced_reduce(threads=8)
        lanes = [s for s in tracer.spans if s.category == "lane"]
        main_phase_lanes = [s for s in lanes if s.name == "chunk-reduce"]
        assert {s.track for s in main_phase_lanes} == {
            f"thread {t}" for t in range(8)
        }
        for lane in lanes:
            expect = max(
                lane.attributes["instruction_seconds"],
                lane.attributes["memory_seconds"],
            )
            assert lane.duration == pytest.approx(expect)

    def test_fork_join_overhead_span(self):
        tracer, result = traced_reduce()
        (fj,) = [s for s in tracer.spans if s.name == "fork/join"]
        assert fj.category == "overhead"
        assert fj.duration == pytest.approx(result.report.fork_join_seconds)

    def test_disabled_tracer_emits_nothing(self):
        ctx = ExecutionContext(
            get_machine("A"), get_backend("gcc-tbb"), threads=8, mode="model"
        )
        result = pstl.reduce(ctx, ctx.allocate(1 << 22, FLOAT64))
        assert result.seconds > 0  # runs fine with the default null tracer


class TestGpuSpans:
    def test_gpu_phase_and_overhead_spans(self):
        ctx = ExecutionContext(
            get_machine("D"), get_backend("nvc-cuda"), threads=1, mode="model"
        )
        with use_tracer(Tracer()) as tracer:
            result = pstl.reduce(ctx, ctx.allocate(1 << 24, FLOAT64))
        assert tracer.clock == pytest.approx(result.seconds)
        names = {s.name for s in tracer.spans if s.category == "overhead"}
        assert "kernel-launch" in names
        assert any(s.category == "phase" for s in tracer.spans)


class TestBenchSpans:
    def test_run_case_emits_bench_structure(self):
        ctx = ExecutionContext(
            get_machine("A"), get_backend("gcc-tbb"), threads=8, mode="model"
        )
        with use_tracer(Tracer()) as tracer:
            row = run_case(
                get_case("for_each_k1"), ctx, 1 << 22, min_time=0.001
            )
        bench = [s for s in tracer.spans if s.category == "bench"]
        by_name = {s.name: s for s in bench}
        assert set(by_name) >= {"warmup", "measure"}
        assert by_name["measure"].attributes["iterations"] == row.iterations
        assert by_name["measure"].attributes["real_invocations"] >= 1
        calls = [s for s in tracer.spans if s.category == "call"]
        assert len(calls) == by_name["measure"].attributes["real_invocations"]

    def test_run_one_wraps_registry_instances(self):
        from repro.bench.registry import BenchmarkRegistry
        from repro.bench.runner import run_benchmarks

        reg = BenchmarkRegistry()

        def fn(state):
            while state.keep_running():
                state.set_iteration_time(0.25)

        reg.register("trivial", fn, ranges=[(4,), (8,)], min_time=0.5)
        with use_tracer(Tracer()) as tracer:
            results = run_benchmarks(reg)
        spans = [s for s in tracer.spans if s.name.startswith("bench:")]
        assert [s.name for s in spans] == ["bench:trivial/4", "bench:trivial/8"]
        for span, row in zip(spans, results):
            assert span.attributes["iterations"] == row.iterations
            assert span.attributes["simulated_seconds"] == pytest.approx(
                row.total_time
            )
