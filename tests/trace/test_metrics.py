"""Metrics views: flat rows, CSV, and phase aggregation."""

from __future__ import annotations

import csv
import io

import pytest

from repro.trace import Tracer, aggregate_phases, metrics_csv, metrics_rows
from repro.trace.metrics import BASE_COLUMNS


def sample_tracer() -> Tracer:
    tr = Tracer()
    with tr.span("reduce", category="call", threads=4):
        tr.record("main-loop", 3.0, category="phase", track="phases", bound="memory")
        tr.advance(3.0)
        tr.record("main-loop", 1.0, category="phase", track="phases", bound="compute")
        tr.advance(1.0)
        tr.record("fork/join", 0.5, category="overhead", track="phases")
        tr.advance(0.5)
    return tr


class TestRows:
    def test_one_row_per_span_with_base_columns(self):
        rows = metrics_rows(sample_tracer())
        assert len(rows) == 4
        for row in rows:
            assert set(BASE_COLUMNS) <= set(row)

    def test_attributes_are_inlined(self):
        rows = metrics_rows(sample_tracer(), category="call")
        (row,) = rows
        assert row["threads"] == 4
        assert row["duration"] == pytest.approx(4.5)

    def test_category_filter(self):
        rows = metrics_rows(sample_tracer(), category="phase")
        assert [r["name"] for r in rows] == ["main-loop", "main-loop"]
        assert all(r["category"] == "phase" for r in rows)

    def test_colliding_attribute_keys_get_prefixed(self):
        tr = Tracer()
        tr.record("s", 1.0, depth="shadow", extra=2)
        (row,) = metrics_rows(tr)
        assert row["depth"] == 0
        assert row["attr_depth"] == "shadow"
        assert row["extra"] == 2

    def test_accepts_span_iterables(self):
        spans = sample_tracer().spans
        assert len(metrics_rows(spans)) == len(spans)


class TestCsv:
    def test_csv_round_trips(self):
        text = metrics_csv(sample_tracer())
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 4
        assert parsed[0]["name"] == "main-loop"
        header = text.splitlines()[0].split(",")
        assert header[: len(BASE_COLUMNS)] == list(BASE_COLUMNS)

    def test_missing_attributes_are_blank(self):
        text = metrics_csv(sample_tracer())
        parsed = list(csv.DictReader(io.StringIO(text)))
        fj = [r for r in parsed if r["name"] == "fork/join"][0]
        assert fj["bound"] == ""


class TestAggregatePhases:
    def test_groups_by_name_and_sums_seconds(self):
        shares = aggregate_phases(sample_tracer())
        by_name = {s.name: s for s in shares}
        assert by_name["main-loop"].seconds == pytest.approx(4.0)
        assert by_name["fork/join"].seconds == pytest.approx(0.5)

    def test_shares_sum_to_one(self):
        shares = aggregate_phases(sample_tracer())
        assert sum(s.share for s in shares) == pytest.approx(1.0)

    def test_majority_bound_wins(self):
        shares = aggregate_phases(sample_tracer())
        by_name = {s.name: s for s in shares}
        assert by_name["main-loop"].bound_by == "memory"  # 3.0 memory vs 1.0 compute
        assert by_name["fork/join"].bound_by == "overhead"

    def test_call_and_lane_spans_are_excluded(self):
        shares = aggregate_phases(sample_tracer())
        assert {s.name for s in shares} == {"main-loop", "fork/join"}

    def test_empty_trace(self):
        assert aggregate_phases(Tracer()) == []

    def test_feeds_render_phase_shares(self):
        from repro.analysis.breakdown import render_phase_shares

        text = render_phase_shares(aggregate_phases(sample_tracer()))
        assert "main-loop" in text and "fork/join" in text
