"""Tracer core: spans, nesting, clock, the global tracer, the no-op path."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    thread_track,
    use_tracer,
)


class TestClock:
    def test_starts_at_zero(self):
        assert Tracer().clock == 0.0

    def test_advance_accumulates(self):
        tr = Tracer()
        tr.advance(1.5)
        tr.advance(0.25)
        assert tr.clock == 1.75

    def test_advance_rejects_negative(self):
        with pytest.raises(TraceError):
            Tracer().advance(-1.0)


class TestSpans:
    def test_enclosing_span_measures_clock_movement(self):
        tr = Tracer()
        with tr.span("outer", category="call"):
            tr.advance(2.0)
        (span,) = tr.spans
        assert span.name == "outer"
        assert span.start == 0.0
        assert span.duration == 2.0
        assert span.end == 2.0

    def test_nesting_depth_recorded(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                tr.advance(1.0)
            tr.record("leaf", 0.5)
        inner, leaf, outer = tr.spans
        assert (outer.name, outer.depth) == ("outer", 0)
        assert (inner.name, inner.depth) == ("inner", 1)
        assert leaf.depth == 1

    def test_attributes_at_begin_and_end(self):
        tr = Tracer()
        with tr.span("s", category="bench", machine="A") as handle:
            handle.set_attribute("iterations", 7)
        (span,) = tr.spans
        assert span.attributes == {"machine": "A", "iterations": 7}
        assert span.category == "bench"

    def test_record_leaf_with_explicit_start(self):
        tr = Tracer()
        tr.advance(1.0)
        span = tr.record("lane", 0.5, track=thread_track(3), start=0.25, x=1)
        assert span.start == 0.25
        assert span.duration == 0.5
        assert span.track == "thread 3"
        assert span.attributes == {"x": 1}
        assert tr.clock == 1.0  # record does not advance

    def test_record_rejects_negative_duration(self):
        with pytest.raises(TraceError):
            Tracer().record("bad", -0.1)

    def test_end_without_begin_raises(self):
        with pytest.raises(TraceError):
            Tracer().end()

    def test_span_closed_on_exception(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("failing"):
                tr.advance(1.0)
                raise ValueError("boom")
        assert tr.open_spans == 0
        (span,) = tr.spans
        assert span.duration == 1.0

    def test_clear_resets_everything(self):
        tr = Tracer()
        tr.record("x", 1.0)
        tr.advance(1.0)
        tr.clear()
        assert tr.spans == ()
        assert tr.clock == 0.0


class TestGlobalTracer:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_returns_previous(self):
        tr = Tracer()
        prev = set_tracer(tr)
        try:
            assert prev is NULL_TRACER
            assert get_tracer() is tr
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_scopes_and_restores(self):
        with use_tracer() as tr:
            assert get_tracer() is tr
            assert tr.enabled
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_tracer():
                raise RuntimeError("boom")
        assert get_tracer() is NULL_TRACER


class TestNullTracer:
    def test_disabled_and_silent(self):
        null = NullTracer()
        assert not null.enabled
        null.advance(5.0)
        null.record("ignored", 1.0, category="phase")
        with null.span("also-ignored", machine="A") as handle:
            handle.set_attribute("k", 1)
        null.end()  # no-op, does not raise
        assert null.spans == ()
        assert null.clock == 0.0

    def test_span_handle_is_shared_singleton(self):
        null = NullTracer()
        assert null.span("a") is null.span("b") is null.begin("c")
