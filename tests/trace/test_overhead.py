"""Disabled-path discipline: tracing off must cost (almost) nothing.

Guards the contract documented in docs/OBSERVABILITY.md §5: the global
tracer defaults to a no-op, instrumented hot paths bail out on a single
``enabled`` check, and a run with tracing disabled allocates no spans.
"""

from __future__ import annotations

import time

from repro.backends import get_backend
from repro.bench.registry import BenchmarkRegistry
from repro.bench.runner import run_benchmarks
from repro.execution.context import ExecutionContext
from repro.machines import get_machine
from repro.suite.cases import get_case
from repro.suite.wrappers import run_case
from repro.trace import NULL_TRACER, Tracer, get_tracer, use_tracer


def registry() -> BenchmarkRegistry:
    reg = BenchmarkRegistry()

    def fn(state):
        while state.keep_running():
            state.set_iteration_time(0.01)

    reg.register("noop", fn, ranges=[(1,), (2,)], min_time=0.1)
    return reg


def workload() -> None:
    ctx = ExecutionContext(
        get_machine("A"), get_backend("gcc-tbb"), threads=8, mode="model"
    )
    run_case(get_case("for_each_k1"), ctx, 1 << 20, min_time=0.001)


class TestDisabledPath:
    def test_default_tracer_is_disabled(self):
        tracer = get_tracer()
        assert tracer is NULL_TRACER
        assert not tracer.enabled

    def test_full_run_leaves_null_tracer_empty(self):
        run_benchmarks(registry())
        workload()
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.clock == 0.0
        assert NULL_TRACER.open_spans == 0

    def test_disabled_is_not_slower_than_enabled(self):
        """Enabled tracing does strictly more work; disabled must not lose.

        A generous bound (not the ±5 % acceptance check, which needs a
        quiet machine) that still catches the failure mode that matters:
        the *disabled* path growing allocations or bookkeeping.
        """

        def timed(enabled: bool) -> float:
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                if enabled:
                    with use_tracer(Tracer()):
                        run_benchmarks(registry())
                else:
                    run_benchmarks(registry())
                best = min(best, time.perf_counter() - t0)
            return best

        timed(False)  # warm caches before measuring
        disabled = timed(False)
        enabled = timed(True)
        assert disabled <= enabled * 1.5 + 0.01


class TestEnabledSanity:
    def test_enabled_run_does_emit(self):
        with use_tracer(Tracer()) as tracer:
            workload()
        assert tracer.spans
        assert get_tracer() is NULL_TRACER  # restored afterwards
