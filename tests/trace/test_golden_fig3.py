"""Golden-file test: a fig3 sweep produces a Perfetto-parseable trace.

The golden file (``tests/trace/golden/fig3_trace_summary.json``) pins the
*structure* of the trace -- track names, span names per category, event
counts -- not floating-point durations, so it stays stable across
cost-model tuning. Regenerate it with::

    PYTHONPATH=src python tests/trace/test_golden_fig3.py --regen
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.fig3 import foreach_scaling_curve
from repro.trace import Tracer, to_chrome_trace, use_tracer

GOLDEN = Path(__file__).resolve().parent / "golden" / "fig3_trace_summary.json"

MACHINE = "A"
BACKEND = "GCC-TBB"
K_IT = 1000
SIZE_EXP = 20  # small: keeps the test fast, structure is size-independent


def traced_sweep() -> Tracer:
    with use_tracer(Tracer()) as tracer:
        foreach_scaling_curve(MACHINE, BACKEND, K_IT, SIZE_EXP)
    return tracer


def summarize(doc: dict) -> dict:
    """Structure-level summary of a Chrome trace-event document."""
    events = doc["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]
    tracks = sorted(
        e["args"]["name"] for e in events if e.get("name") == "thread_name"
    )
    by_cat: dict[str, int] = {}
    for e in xs:
        by_cat[e["cat"]] = by_cat.get(e["cat"], 0) + 1
    return {
        "tracks": tracks,
        "events_by_category": dict(sorted(by_cat.items())),
        "call_span_names": sorted({e["name"] for e in xs if e["cat"] == "call"}),
        "phase_span_names": sorted({e["name"] for e in xs if e["cat"] == "phase"}),
        "overhead_span_names": sorted(
            {e["name"] for e in xs if e["cat"] == "overhead"}
        ),
        "total_events": len(events),
    }


def test_fig3_trace_matches_golden():
    doc = to_chrome_trace(traced_sweep())
    assert summarize(doc) == json.loads(GOLDEN.read_text())


def test_fig3_trace_is_perfetto_parseable(tmp_path):
    """The minimal contract a Chrome/Perfetto importer relies on."""
    doc = to_chrome_trace(traced_sweep())
    out = tmp_path / "fig3.json"
    out.write_text(json.dumps(doc))
    loaded = json.loads(out.read_text())
    assert isinstance(loaded["traceEvents"], list) and loaded["traceEvents"]
    for e in loaded["traceEvents"]:
        assert e["ph"] in ("X", "M")
        if e["ph"] == "X":
            assert isinstance(e["ts"], (int, float)) and e["ts"] >= 0
            assert isinstance(e["dur"], (int, float)) and e["dur"] >= 0
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)


def test_one_call_span_per_thread_count():
    tracer = traced_sweep()
    calls = [s for s in tracer.spans if s.category == "call"]
    threads = [s.attributes["threads"] for s in calls]
    curve_threads = foreach_scaling_curve(MACHINE, BACKEND, K_IT, SIZE_EXP).threads
    assert set(threads) == set(curve_threads)
    # one call per sweep point, plus the serial baseline at threads=1
    assert len(calls) == len(curve_threads) + 1


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        GOLDEN.parent.mkdir(exist_ok=True)
        summary = summarize(to_chrome_trace(traced_sweep()))
        GOLDEN.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"wrote {GOLDEN}")
