"""Fig. 3 trace-structure tests, backed by the fidelity golden.

The structure summary (track names, span names per category, event
counts -- not floating-point durations) is pinned as the ``golden``
claim of ``refdata/fig3.json`` and checked by the fidelity harness;
refresh it with::

    pstl-fidelity run --artifact fig3 --update-golden

This file keeps the trace-format contract tests and exercises the
golden claim through the same engine path ``pstl-fidelity run`` uses.
"""

from __future__ import annotations

import json

from repro.fidelity import build_artifact, check_claim, load_refdata
from repro.fidelity.artifacts import FIG3_TRACE_SIZE_EXP
from repro.experiments.fig3 import foreach_scaling_curve
from repro.trace import Tracer, to_chrome_trace, use_tracer

MACHINE = "A"
BACKEND = "GCC-TBB"
K_IT = 1000


def traced_sweep() -> Tracer:
    with use_tracer(Tracer()) as tracer:
        foreach_scaling_curve(MACHINE, BACKEND, K_IT, FIG3_TRACE_SIZE_EXP)
    return tracer


def test_fig3_trace_matches_refdata_golden():
    """The golden claim passes through the real engine path."""
    ref = load_refdata("fig3")
    golden_claims = [c for c in ref.claims if c.kind == "golden"]
    assert golden_claims, "fig3 refdata must pin the trace structure"
    measured = build_artifact("fig3")
    for claim in golden_claims:
        result = check_claim(claim, measured, ref)
        assert result.status == "pass", result.detail


def test_fig3_trace_is_perfetto_parseable(tmp_path):
    """The minimal contract a Chrome/Perfetto importer relies on."""
    doc = to_chrome_trace(traced_sweep())
    out = tmp_path / "fig3.json"
    out.write_text(json.dumps(doc))
    loaded = json.loads(out.read_text())
    assert isinstance(loaded["traceEvents"], list) and loaded["traceEvents"]
    for e in loaded["traceEvents"]:
        assert e["ph"] in ("X", "M")
        if e["ph"] == "X":
            assert isinstance(e["ts"], (int, float)) and e["ts"] >= 0
            assert isinstance(e["dur"], (int, float)) and e["dur"] >= 0
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)


def test_one_call_span_per_thread_count():
    tracer = traced_sweep()
    calls = [s for s in tracer.spans if s.category == "call"]
    threads = [s.attributes["threads"] for s in calls]
    curve = foreach_scaling_curve(MACHINE, BACKEND, K_IT, FIG3_TRACE_SIZE_EXP)
    assert set(threads) == set(curve.threads)
    # one call per sweep point, plus the serial baseline at threads=1
    assert len(calls) == len(curve.threads) + 1
