"""Shared fixtures: machines, backends and execution contexts."""

from __future__ import annotations

import pytest

from repro.backends import get_backend
from repro.execution.context import ExecutionContext
from repro.machines import get_machine


@pytest.fixture
def mach_a():
    """The 32-core Skylake machine (Table 2)."""
    return get_machine("A")


@pytest.fixture
def mach_b():
    """The 64-core Zen 1 machine."""
    return get_machine("B")


@pytest.fixture
def mach_c():
    """The 128-core Zen 3 machine."""
    return get_machine("C")


@pytest.fixture
def mach_d():
    """The Tesla T4 GPU."""
    return get_machine("D")


@pytest.fixture
def tbb():
    """GCC-TBB backend model."""
    return get_backend("gcc-tbb")


@pytest.fixture
def gnu():
    """GCC-GNU backend model."""
    return get_backend("gcc-gnu")


@pytest.fixture
def hpx():
    """GCC-HPX backend model."""
    return get_backend("gcc-hpx")


@pytest.fixture
def seq_backend():
    """Sequential GCC baseline backend."""
    return get_backend("gcc-seq")


@pytest.fixture
def run_ctx(mach_a, tbb):
    """A materialising (run-mode) context: 8 threads on Mach A, TBB."""
    return ExecutionContext(mach_a, tbb, threads=8, mode="run")


@pytest.fixture
def model_ctx(mach_a, tbb):
    """A model-mode context: 32 threads on Mach A, TBB."""
    return ExecutionContext(mach_a, tbb, threads=32, mode="model")


@pytest.fixture
def seq_ctx(mach_a, seq_backend):
    """The sequential baseline context on Mach A."""
    return ExecutionContext(mach_a, seq_backend, threads=1, mode="model")
