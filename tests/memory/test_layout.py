"""Tests for page placement descriptors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PlacementError
from repro.memory.layout import PAGE_SIZE, PagePlacement


class TestConstruction:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(PlacementError):
            PagePlacement((0.5, 0.2), "x")

    def test_negative_fraction_rejected(self):
        with pytest.raises(PlacementError):
            PagePlacement((1.5, -0.5), "x")

    def test_empty_rejected(self):
        with pytest.raises(PlacementError):
            PagePlacement((), "x")

    def test_single_node(self):
        p = PagePlacement.single_node(1, 4, "default")
        assert p.node_fractions == (0.0, 1.0, 0.0, 0.0)
        assert p.fraction_on(1) == 1.0

    def test_single_node_range_checked(self):
        with pytest.raises(PlacementError):
            PagePlacement.single_node(4, 4, "x")

    def test_proportional(self):
        p = PagePlacement.proportional([1, 3], "first-touch")
        assert p.node_fractions == (0.25, 0.75)

    def test_proportional_rejects_zero_weights(self):
        with pytest.raises(PlacementError):
            PagePlacement.proportional([0, 0], "x")

    def test_from_page_nodes(self):
        p = PagePlacement.from_page_nodes([0, 0, 1, 1], 2, "x")
        assert p.node_fractions == (0.5, 0.5)
        assert p.page_nodes == (0, 0, 1, 1)

    def test_from_page_nodes_validates_range(self):
        with pytest.raises(PlacementError):
            PagePlacement.from_page_nodes([0, 3], 2, "x")

    def test_fraction_on_range(self):
        p = PagePlacement.single_node(0, 2, "x")
        with pytest.raises(PlacementError):
            p.fraction_on(2)


class TestLocality:
    def test_matched_uniform(self):
        p = PagePlacement.proportional([1, 1], "first-touch")
        assert p.locality_for_threads([1, 1]) == pytest.approx(0.5)

    def test_all_on_node0(self):
        p = PagePlacement.single_node(0, 2, "default")
        assert p.locality_for_threads([2, 0]) == pytest.approx(1.0)
        assert p.locality_for_threads([0, 2]) == pytest.approx(0.0)

    def test_length_checked(self):
        p = PagePlacement.single_node(0, 2, "x")
        with pytest.raises(PlacementError):
            p.locality_for_threads([1])

    def test_requires_threads(self):
        p = PagePlacement.single_node(0, 2, "x")
        with pytest.raises(PlacementError):
            p.locality_for_threads([0, 0])


class TestPages:
    def test_pages_for_rounds_up(self):
        p = PagePlacement.single_node(0, 1, "x")
        assert p.pages_for(1) == 1
        assert p.pages_for(PAGE_SIZE) == 1
        assert p.pages_for(PAGE_SIZE + 1) == 2

    def test_pages_for_zero(self):
        p = PagePlacement.single_node(0, 1, "x")
        assert p.pages_for(0) == 1

    def test_pages_for_negative(self):
        p = PagePlacement.single_node(0, 1, "x")
        with pytest.raises(PlacementError):
            p.pages_for(-1)


@given(
    st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=8)
)
def test_proportional_always_valid(weights):
    """Any positive weight vector yields a valid placement summing to 1."""
    p = PagePlacement.proportional(weights, "x")
    assert abs(sum(p.node_fractions) - 1.0) < 1e-9
    assert all(f >= 0 for f in p.node_fractions)
