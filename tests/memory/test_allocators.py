"""Tests for the allocator models (the Fig. 1 mechanism)."""

import pytest

from repro.errors import AllocationError
from repro.memory.allocators import (
    DefaultAllocator,
    HpxNumaAllocator,
    InterleavedAllocator,
    ParallelFirstTouchAllocator,
    allocator_names,
    get_allocator,
)
from repro.types import FLOAT64


class TestDefaultAllocator:
    def test_all_pages_on_node0(self, mach_a):
        arr = DefaultAllocator().allocate(1024, FLOAT64, mach_a, (16, 16))
        assert arr.placement.node_fractions == (1.0, 0.0)
        assert arr.placement.policy == "default"

    def test_not_materialized_by_default(self, mach_a):
        arr = DefaultAllocator().allocate(1024, FLOAT64, mach_a, (1, 0))
        assert arr.data is None

    def test_materialize(self, mach_a):
        arr = DefaultAllocator().allocate(64, FLOAT64, mach_a, (1, 0), materialize=True)
        assert arr.data is not None and len(arr.data) == 64


class TestParallelFirstTouch:
    def test_follows_thread_distribution(self, mach_a):
        arr = ParallelFirstTouchAllocator().allocate(1024, FLOAT64, mach_a, (8, 24))
        assert arr.placement.node_fractions == (0.25, 0.75)
        assert arr.placement.policy == "first-touch"

    def test_requires_threads(self, mach_a):
        with pytest.raises(AllocationError):
            ParallelFirstTouchAllocator().allocate(16, FLOAT64, mach_a, (0, 0))

    def test_node_count_checked(self, mach_a):
        with pytest.raises(AllocationError):
            ParallelFirstTouchAllocator().allocate(16, FLOAT64, mach_a, (1, 1, 1))


class TestHpxAllocator:
    def test_same_distribution_own_policy_name(self, mach_a):
        arr = HpxNumaAllocator().allocate(1024, FLOAT64, mach_a, (16, 16))
        assert arr.placement.node_fractions == (0.5, 0.5)
        assert arr.placement.policy == "hpx-numa"


class TestInterleaved:
    def test_uniform(self, mach_b):
        arr = InterleavedAllocator().allocate(1024, FLOAT64, mach_b, (8,) * 8)
        assert all(f == pytest.approx(1 / 8) for f in arr.placement.node_fractions)


class TestCommonBehaviour:
    def test_capacity_enforced(self, mach_a):
        huge = (mach_a.topology.total_memory // FLOAT64.size) + 1
        with pytest.raises(AllocationError):
            DefaultAllocator().allocate(huge, FLOAT64, mach_a, (1, 0))

    def test_zero_size_rejected(self, mach_a):
        with pytest.raises(AllocationError):
            DefaultAllocator().allocate(0, FLOAT64, mach_a, (1, 0))

    def test_registry(self):
        names = allocator_names()
        assert {"default", "first-touch", "hpx-numa", "interleave"} <= set(names)
        assert get_allocator("default").name == "default"

    def test_registry_unknown(self):
        with pytest.raises(AllocationError):
            get_allocator("slab")
