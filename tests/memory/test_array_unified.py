"""Tests for SimArray and the CUDA unified-memory residency model."""

import numpy as np
import pytest

from repro.errors import AllocationError
from repro.memory.array import SimArray
from repro.memory.layout import PagePlacement
from repro.memory.unified import UnifiedMemory
from repro.types import FLOAT32, FLOAT64


def _arr(n=1024, elem=FLOAT64, data=False):
    return SimArray(
        n=n,
        elem=elem,
        placement=PagePlacement.single_node(0, 1, "default"),
        data=np.zeros(n, dtype=elem.dtype) if data else None,
    )


class TestSimArray:
    def test_nbytes(self):
        assert _arr(100).nbytes == 800
        assert _arr(100, FLOAT32).nbytes == 400

    def test_materialized_flag(self):
        assert not _arr().materialized
        assert _arr(data=True).materialized

    def test_require_data_raises_for_model_arrays(self):
        with pytest.raises(AllocationError):
            _arr().require_data()

    def test_view_returns_buffer(self):
        a = _arr(16, data=True)
        a.view()[0] = 3.0
        assert a.data[0] == 3.0

    def test_dtype_checked(self):
        with pytest.raises(AllocationError):
            SimArray(
                n=4,
                elem=FLOAT64,
                placement=PagePlacement.single_node(0, 1, "x"),
                data=np.zeros(4, dtype=np.float32),
            )

    def test_length_checked(self):
        with pytest.raises(AllocationError):
            SimArray(
                n=4,
                elem=FLOAT64,
                placement=PagePlacement.single_node(0, 1, "x"),
                data=np.zeros(5),
            )

    def test_size_positive(self):
        with pytest.raises(AllocationError):
            _arr(0)


class TestUnifiedMemory:
    def test_first_touch_migrates_everything(self, mach_d):
        um = UnifiedMemory(mach_d)
        a = _arr(1 << 20)
        cost = um.to_device(a)
        assert cost.bytes_moved == a.nbytes
        assert cost.seconds == pytest.approx(a.nbytes / mach_d.pcie_bandwidth)
        assert a.device_resident_fraction == 1.0

    def test_chained_call_is_free(self, mach_d):
        um = UnifiedMemory(mach_d)
        a = _arr(1 << 20)
        um.to_device(a)
        second = um.to_device(a)
        assert second.bytes_moved == 0
        assert second.seconds == 0.0

    def test_host_touch_resets_residency(self, mach_d):
        um = UnifiedMemory(mach_d)
        a = _arr(1 << 20)
        um.to_device(a)
        back = um.to_host(a)
        assert back.bytes_moved == a.nbytes
        assert a.device_resident_fraction == 0.0
        assert um.to_device(a).bytes_moved == a.nbytes

    def test_to_host_of_nonresident_is_free(self, mach_d):
        um = UnifiedMemory(mach_d)
        a = _arr(64)
        assert um.to_host(a).bytes_moved == 0

    def test_capacity_enforced(self, mach_d):
        um = UnifiedMemory(mach_d)
        too_big = (mach_d.mem_bytes // FLOAT64.size) + 1
        with pytest.raises(AllocationError):
            um.to_device(_arr(too_big))

    def test_evict_clears_without_transfer(self, mach_d):
        um = UnifiedMemory(mach_d)
        a = _arr(64)
        um.to_device(a)
        um.evict(a)
        assert a.device_resident_fraction == 0.0
