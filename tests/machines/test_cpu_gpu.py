"""Validation tests for the CpuMachine / GpuMachine dataclasses."""

import dataclasses

import pytest

from repro.errors import MachineError
from repro.machines import get_machine


class TestCpuValidation:
    def test_bad_simd_width(self, mach_a):
        with pytest.raises(MachineError):
            dataclasses.replace(mach_a, simd_width_bits=192)

    def test_allcore_below_single_rejected(self, mach_a):
        with pytest.raises(MachineError):
            dataclasses.replace(mach_a, stream_bw_allcores=1e9)

    def test_remote_factor_bounds(self, mach_a):
        with pytest.raises(MachineError):
            dataclasses.replace(mach_a, remote_bw_factor=0.0)

    def test_turbo_below_one_rejected(self, mach_a):
        with pytest.raises(MachineError):
            dataclasses.replace(mach_a, seq_turbo_factor=0.9)

    def test_node_boost_below_one_rejected(self, mach_a):
        with pytest.raises(MachineError):
            dataclasses.replace(mach_a, node_bw_boost=0.5)

    def test_node_bandwidth(self, mach_a):
        assert mach_a.node_bandwidth == pytest.approx(135e9 / 2)

    def test_scalar_rate(self, mach_a):
        assert mach_a.scalar_instr_rate == pytest.approx(2.1e9 * 2.0)

    def test_simd_lanes(self, mach_a):
        assert mach_a.simd_lanes(8) == 8  # 512-bit / 64-bit
        assert mach_a.simd_lanes(4) == 16

    def test_simd_lanes_validates(self, mach_a):
        with pytest.raises(MachineError):
            mach_a.simd_lanes(0)


class TestGpuValidation:
    def test_fp64_ratio_bounds(self, mach_d):
        with pytest.raises(MachineError):
            dataclasses.replace(mach_d, fp64_ratio=0.0)

    def test_compute_rate_validates_elem_size(self, mach_d):
        with pytest.raises(MachineError):
            mach_d.compute_rate(0)

    def test_total_cores_alias(self, mach_d):
        assert mach_d.total_cores == mach_d.cuda_cores

    def test_positive_fields_enforced(self, mach_d):
        from repro.errors import ConfigurationError

        with pytest.raises((MachineError, ConfigurationError)):
            dataclasses.replace(mach_d, pcie_bandwidth=0.0)
