"""Tests for the machine presets against the paper's Table 2."""

import pytest

from repro.machines import presets


class TestMachA:
    def test_table2_row(self, mach_a):
        assert mach_a.arch == "Skylake"
        assert mach_a.frequency_hz == pytest.approx(2.10e9)
        assert mach_a.total_cores == 32
        assert mach_a.topology.sockets == 2
        assert mach_a.num_numa_nodes == 2
        assert mach_a.stream_bw_1core == pytest.approx(11.7e9)
        assert mach_a.stream_bw_allcores == pytest.approx(135e9)

    def test_memory_totals(self, mach_a):
        # Table 2: 48 GiB, 1.5 GiB per core.
        assert mach_a.topology.total_memory == 48 << 30
        per_core = mach_a.topology.total_memory / mach_a.total_cores
        assert per_core == pytest.approx(1.5 * (1 << 30))


class TestMachB:
    def test_table2_row(self, mach_b):
        assert mach_b.arch == "Zen 1"
        assert mach_b.total_cores == 64
        assert mach_b.num_numa_nodes == 8
        assert mach_b.stream_bw_1core == pytest.approx(26.0e9)
        assert mach_b.stream_bw_allcores == pytest.approx(204e9)

    def test_bandwidth_ratio_near_seven(self, mach_b):
        # Section 5.3: STREAM predicts ~7x on Mach B.
        assert mach_b.ideal_bandwidth_speedup() == pytest.approx(7.85, rel=0.01)

    def test_memory_per_core(self, mach_b):
        per_core = mach_b.topology.total_memory / mach_b.total_cores
        assert per_core == pytest.approx(0.5 * (1 << 30))


class TestMachC:
    def test_table2_row(self, mach_c):
        assert mach_c.arch == "Zen 3"
        assert mach_c.total_cores == 128
        assert mach_c.num_numa_nodes == 8
        assert mach_c.stream_bw_allcores == pytest.approx(249e9)
        assert mach_c.topology.total_memory == 512 << 30

    def test_llc_capacity_near_2_26_doubles(self, mach_c):
        # Section 5.4: 2^26 doubles = 512 MiB is the LLC capacity scale.
        agg_l3 = mach_c.caches.llc.total_size(mach_c.total_cores)
        assert (1 << 29) / 2 <= agg_l3 <= (1 << 29) * 2


class TestGpus:
    def test_mach_d(self, mach_d):
        assert mach_d.cuda_cores == 2560
        assert mach_d.mem_bytes == 16 << 30
        assert mach_d.mem_bandwidth == pytest.approx(264e9)

    def test_mach_e(self):
        e = presets.mach_e()
        assert e.cuda_cores == 1280
        assert e.frequency_hz == pytest.approx(1.77e9)
        assert e.mem_bytes == 8 << 30

    def test_fp64_derated(self, mach_d):
        assert mach_d.compute_rate(8) < mach_d.compute_rate(4)

    def test_fp32_full_rate(self, mach_d):
        expected = (
            mach_d.cuda_cores
            * mach_d.frequency_hz
            * mach_d.flops_per_core_per_cycle
        )
        assert mach_d.compute_rate(4) == pytest.approx(expected)


class TestHostCpu:
    def test_modest_host(self):
        host = presets.gpu_host_cpu()
        assert host.total_cores == 16
        assert host.num_numa_nodes == 1
