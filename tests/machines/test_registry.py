"""Tests for the machine registry."""

import pytest

from repro.errors import UnknownMachineError
from repro.machines import get_machine, machine_names, register_machine
from repro.machines.cpu import CpuMachine
from repro.machines.gpu import GpuMachine


class TestLookup:
    @pytest.mark.parametrize("name", ["A", "a", "mach-a", "Mach A", "skylake"])
    def test_aliases_mach_a(self, name):
        assert get_machine(name).name == "Mach A"

    @pytest.mark.parametrize("name,expect", [("zen1", "Mach B"), ("zen3", "Mach C")])
    def test_arch_aliases(self, name, expect):
        assert get_machine(name).name == expect

    def test_gpus_are_gpu_machines(self):
        assert isinstance(get_machine("D"), GpuMachine)
        assert isinstance(get_machine("tesla"), GpuMachine)
        assert isinstance(get_machine("ampere"), GpuMachine)

    def test_cpus_are_cpu_machines(self):
        for name in ("A", "B", "C", "gpu-host"):
            assert isinstance(get_machine(name), CpuMachine)

    def test_unknown_raises_with_suggestions(self):
        with pytest.raises(UnknownMachineError, match="known"):
            get_machine("Mach Z")

    def test_names_listed(self):
        names = machine_names()
        assert "mach-a" in names and "zen3" in names

    def test_fresh_instances(self):
        assert get_machine("A") is not get_machine("A")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_machine(lambda: get_machine("A"), "a")

    def test_registration_requires_name(self):
        with pytest.raises(ValueError):
            register_machine(lambda: get_machine("A"))
