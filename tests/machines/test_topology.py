"""Tests for repro.machines.topology."""

import pytest

from repro.errors import MachineError, PlacementError
from repro.machines.topology import NumaNode, Topology


class TestNumaNode:
    def test_requires_cores(self):
        with pytest.raises(MachineError):
            NumaNode(0, (), 1 << 30)

    def test_requires_memory(self):
        with pytest.raises(MachineError):
            NumaNode(0, (0,), 0)


class TestTopology:
    def test_uniform_shape(self):
        t = Topology.uniform(2, 4, 8, 4 << 30)
        assert t.num_nodes == 8
        assert t.total_cores == 64
        assert t.cores_per_node == 8
        assert t.sockets == 2

    def test_total_memory(self):
        t = Topology.uniform(2, 1, 16, 24 << 30)
        assert t.total_memory == 48 << 30

    def test_node_of_core(self):
        t = Topology.uniform(2, 4, 8, 1 << 30)
        assert t.node_of_core(0) == 0
        assert t.node_of_core(8) == 1
        assert t.node_of_core(63) == 7

    def test_node_of_core_out_of_range(self):
        t = Topology.uniform(1, 1, 4, 1 << 30)
        with pytest.raises(PlacementError):
            t.node_of_core(4)

    def test_nodes_in_socket(self):
        t = Topology.uniform(2, 4, 8, 1 << 30)
        first = t.nodes_in_socket(0)
        assert [n.node_id for n in first] == [0, 1, 2, 3]
        second = t.nodes_in_socket(1)
        assert [n.node_id for n in second] == [4, 5, 6, 7]

    def test_nodes_in_socket_range(self):
        t = Topology.uniform(2, 1, 4, 1 << 30)
        with pytest.raises(PlacementError):
            t.nodes_in_socket(2)

    def test_nodes_must_divide_sockets(self):
        nodes = tuple(
            NumaNode(i, (i,), 1 << 30) for i in range(3)
        )
        with pytest.raises(MachineError):
            Topology(sockets=2, nodes=nodes)

    def test_core_ids_must_be_dense(self):
        nodes = (NumaNode(0, (0, 2), 1 << 30),)
        with pytest.raises(MachineError):
            Topology(sockets=1, nodes=nodes)

    def test_node_ids_must_be_dense(self):
        nodes = (NumaNode(1, (0,), 1 << 30),)
        with pytest.raises(MachineError):
            Topology(sockets=1, nodes=nodes)

    def test_smt_validated(self):
        with pytest.raises(MachineError):
            Topology.uniform(1, 1, 2, 1 << 30, smt=0)
