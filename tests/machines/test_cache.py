"""Tests for repro.machines.cache."""

import pytest

from repro.errors import MachineError
from repro.machines.cache import CacheHierarchy, CacheLevel


def _hier():
    return CacheHierarchy(
        (
            CacheLevel(1, 32 * 1024, 1, 100e9),
            CacheLevel(2, 1024 * 1024, 1, 50e9),
            CacheLevel(3, 16 * 1024 * 1024, 8, 25e9),
        )
    )


class TestCacheLevel:
    def test_total_size_private(self):
        lvl = CacheLevel(2, 1024, 1, 1e9)
        assert lvl.total_size(16) == 16 * 1024

    def test_total_size_shared(self):
        lvl = CacheLevel(3, 1 << 20, 8, 1e9)
        assert lvl.total_size(16) == 2 << 20

    def test_total_size_fewer_cores_than_sharing(self):
        lvl = CacheLevel(3, 1 << 20, 8, 1e9)
        assert lvl.total_size(4) == 1 << 20  # at least one instance

    def test_invalid_level(self):
        with pytest.raises(MachineError):
            CacheLevel(4, 1024, 1, 1e9)

    def test_invalid_size(self):
        with pytest.raises(MachineError):
            CacheLevel(1, 0, 1, 1e9)

    def test_total_size_rejects_nonpositive_cores(self):
        with pytest.raises(MachineError):
            CacheLevel(1, 1024, 1, 1e9).total_size(0)


class TestCacheHierarchy:
    def test_level_lookup(self):
        assert _hier().level(2).size_per_instance == 1024 * 1024

    def test_missing_level(self):
        h = CacheHierarchy((CacheLevel(1, 1024, 1, 1e9),))
        with pytest.raises(MachineError):
            h.level(3)

    def test_llc(self):
        assert _hier().llc.level == 3

    def test_ordering_enforced(self):
        with pytest.raises(MachineError):
            CacheHierarchy(
                (CacheLevel(2, 1024, 1, 1e9), CacheLevel(1, 512, 1, 1e9))
            )

    def test_duplicate_levels_rejected(self):
        with pytest.raises(MachineError):
            CacheHierarchy(
                (CacheLevel(1, 1024, 1, 1e9), CacheLevel(1, 512, 1, 1e9))
            )

    def test_empty_rejected(self):
        with pytest.raises(MachineError):
            CacheHierarchy(())

    def test_fitting_level_l1(self):
        assert _hier().fitting_level(16 * 1024, 1).level == 1

    def test_fitting_level_l3(self):
        assert _hier().fitting_level(12 << 20, 8).level == 3

    def test_fitting_level_aggregate_scales_with_cores(self):
        h = _hier()
        ws = 4 << 20  # 4 MiB: spills L2 of 1 core, fits aggregate L2 of 8
        assert h.fitting_level(ws, 1).level == 3
        assert h.fitting_level(ws, 8).level == 2

    def test_fitting_level_dram(self):
        assert _hier().fitting_level(1 << 34, 8) is None

    def test_fitting_level_negative_rejected(self):
        with pytest.raises(MachineError):
            _hier().fitting_level(-1, 1)
