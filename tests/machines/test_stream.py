"""Tests for the STREAM bandwidth model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.machines import get_machine
from repro.machines.stream import (
    run_stream_kernel,
    stream_bandwidth,
    stream_scaling_curve,
    threads_per_node,
)


class TestAnchors:
    """The curve must pass exactly through the two published points."""

    @pytest.mark.parametrize(
        "mach,bw1,bwall",
        [("A", 11.7e9, 135e9), ("B", 26.0e9, 204e9), ("C", 42.6e9, 249e9)],
    )
    def test_single_core_anchor(self, mach, bw1, bwall):
        m = get_machine(mach)
        assert stream_bandwidth(m, 1) == pytest.approx(bw1)

    @pytest.mark.parametrize(
        "mach,bwall", [("A", 135e9), ("B", 204e9), ("C", 249e9)]
    )
    def test_all_core_anchor(self, mach, bwall):
        m = get_machine(mach)
        assert stream_bandwidth(m, m.total_cores) == pytest.approx(bwall)


class TestCurveShape:
    def test_monotone_nondecreasing(self, mach_a):
        curve = stream_scaling_curve(mach_a)
        bws = [bw for _, bw in curve]
        assert all(b2 >= b1 for b1, b2 in zip(bws, bws[1:]))

    def test_default_thread_counts_are_powers_of_two(self, mach_b):
        counts = [t for t, _ in stream_scaling_curve(mach_b)]
        assert counts[0] == 1 and counts[-1] == 64
        assert counts == sorted(counts)

    def test_thread_range_validated(self, mach_a):
        with pytest.raises(ConfigurationError):
            stream_bandwidth(mach_a, 0)
        with pytest.raises(ConfigurationError):
            stream_bandwidth(mach_a, 33)


class TestThreadsPerNode:
    def test_scatter_balances(self, mach_a):
        assert threads_per_node(mach_a, 4) == [2, 2]

    def test_compact_fills_first(self, mach_a):
        assert threads_per_node(mach_a, 4, scatter=False) == [4, 0]

    def test_compact_spills(self, mach_a):
        assert threads_per_node(mach_a, 20, scatter=False) == [16, 4]

    def test_total_preserved(self, mach_c):
        assert sum(threads_per_node(mach_c, 77)) == 77


@given(st.integers(min_value=1, max_value=32))
def test_scatter_cover_property(threads):
    """Scatter placement always sums to the requested thread count."""
    m = get_machine("A")
    per = threads_per_node(m, threads)
    assert sum(per) == threads
    assert max(per) - min(per) <= 1  # balanced


class TestStreamKernels:
    def test_copy_bandwidth_matches_model(self, mach_a):
        res = run_stream_kernel(mach_a, "copy", 1 << 24, 32)
        assert res.bandwidth == pytest.approx(stream_bandwidth(mach_a, 32))

    def test_triad_moves_more_bytes(self, mach_a):
        copy = run_stream_kernel(mach_a, "copy", 1 << 20, 1)
        triad = run_stream_kernel(mach_a, "triad", 1 << 20, 1)
        assert triad.bytes_moved > copy.bytes_moved

    def test_unknown_kernel(self, mach_a):
        with pytest.raises(ConfigurationError):
            run_stream_kernel(mach_a, "daxpy", 1024, 1)

    def test_size_validated(self, mach_a):
        with pytest.raises(ConfigurationError):
            run_stream_kernel(mach_a, "copy", 0, 1)
