"""Tests for the input generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.suite.generators import (
    generate_increment,
    random_target,
    reshuffle,
    shuffled_permutation,
)
from repro.types import FLOAT64


class TestGenerateIncrement:
    def test_values_one_to_n(self, run_ctx):
        arr = generate_increment(run_ctx, 100)
        assert arr.data[0] == 1.0
        assert arr.data[-1] == 100.0

    def test_model_mode_lazy(self, model_ctx):
        arr = generate_increment(model_ctx, 1 << 30)
        assert arr.data is None
        assert arr.n == 1 << 30

    def test_size_validated(self, run_ctx):
        with pytest.raises(ConfigurationError):
            generate_increment(run_ctx, 0)


class TestShuffledPermutation:
    def test_is_permutation(self, run_ctx):
        arr = shuffled_permutation(run_ctx, 1000)
        assert sorted(arr.data.tolist()) == list(map(float, range(1, 1001)))

    def test_actually_shuffled(self, run_ctx):
        arr = shuffled_permutation(run_ctx, 1000)
        assert not np.all(arr.data == np.arange(1, 1001))

    def test_deterministic_per_seed(self, run_ctx):
        a = shuffled_permutation(run_ctx, 100)
        b = shuffled_permutation(run_ctx, 100)
        assert np.all(a.data == b.data)


class TestReshuffle:
    def test_changes_order_preserves_set(self, run_ctx):
        arr = shuffled_permutation(run_ctx, 500)
        before = arr.data.copy()
        reshuffle(run_ctx, arr, iteration=1)
        assert not np.all(arr.data == before)
        assert sorted(arr.data.tolist()) == sorted(before.tolist())

    def test_deterministic_per_iteration(self, run_ctx):
        a = shuffled_permutation(run_ctx, 100)
        b = shuffled_permutation(run_ctx, 100)
        reshuffle(run_ctx, a, 3)
        reshuffle(run_ctx, b, 3)
        assert np.all(a.data == b.data)

    def test_noop_in_model_mode(self, model_ctx):
        arr = model_ctx.allocate(100, FLOAT64)
        reshuffle(model_ctx, arr, 0)  # must not raise


class TestRandomTarget:
    def test_target_in_value_range(self, run_ctx):
        arr = generate_increment(run_ctx, 1000)
        for it in range(10):
            t = random_target(run_ctx, arr, it)
            assert 1.0 <= t <= 1000.0
            assert t == int(t)

    def test_deterministic(self, run_ctx):
        arr = generate_increment(run_ctx, 1000)
        assert random_target(run_ctx, arr, 5) == random_target(run_ctx, arr, 5)

    def test_varies_by_iteration(self, run_ctx):
        arr = generate_increment(run_ctx, 10_000)
        targets = {random_target(run_ctx, arr, it) for it in range(20)}
        assert len(targets) > 10
