"""Tests for the benchmark cases and Listing-3 wrappers."""

import pytest

from repro.counters.likwid import LikwidMarkers
from repro.errors import ConfigurationError, UnsupportedOperationError
from repro.suite.cases import HEADLINE_CASES, case_names, get_case
from repro.suite.wrappers import make_bench_fn, measure_case, run_case
from repro.bench.state import BenchState
from repro.types import FLOAT64


class TestCaseRegistry:
    def test_headline_cases_present(self):
        for name in HEADLINE_CASES:
            assert get_case(name).name == name

    def test_extended_set_present(self):
        for name in ("transform", "copy", "fill", "count", "merge", "min_element"):
            assert get_case(name) is not None

    def test_unknown_case(self):
        with pytest.raises(ConfigurationError):
            get_case("quantum_sort")

    def test_names_sorted(self):
        assert case_names() == sorted(case_names())

    def test_at_least_17_supported_cases(self):
        # Table 1 gray set: the suite supports a meaningful subset.
        assert len(case_names()) >= 17


class TestRunCase:
    @pytest.mark.parametrize("name", HEADLINE_CASES)
    def test_headline_cases_run_in_model_mode(self, model_ctx, name):
        result = run_case(get_case(name), model_ctx, 1 << 20, min_time=0.0)
        assert result.mean_time > 0
        assert result.iterations >= 1

    @pytest.mark.parametrize("name", ["reduce", "sort", "for_each_k1"])
    def test_cases_run_in_run_mode(self, run_ctx, name):
        result = run_case(get_case(name), run_ctx, 1 << 12, min_time=0.0)
        assert result.mean_time > 0

    def test_gnu_scan_raises(self, mach_a, gnu):
        from repro.execution.context import ExecutionContext

        ctx = ExecutionContext(mach_a, gnu, threads=8)
        with pytest.raises(UnsupportedOperationError):
            run_case(get_case("inclusive_scan"), ctx, 1 << 20, min_time=0.0)

    def test_min_time_loop_batches(self, model_ctx):
        result = run_case(get_case("reduce"), model_ctx, 1 << 26, min_time=5.0)
        assert result.total_time >= 5.0
        assert result.iterations > 3

    def test_bytes_processed_set(self, model_ctx):
        n = 1 << 20
        result = run_case(get_case("reduce"), model_ctx, n, min_time=0.0)
        assert result.bytes_processed == result.iterations * n * 8

    def test_markers_capture_regions(self, model_ctx):
        markers = LikwidMarkers()
        run_case(get_case("reduce"), model_ctx, 1 << 20, markers=markers, min_time=0.0)
        assert markers.get("reduce").calls >= 1


class TestMeasureCase:
    def test_deterministic(self, model_ctx):
        case = get_case("for_each_k1")
        t1 = measure_case(case, model_ctx, 1 << 24)
        t2 = measure_case(case, model_ctx, 1 << 24)
        assert t1 == t2

    def test_scales_with_n(self, model_ctx):
        case = get_case("reduce")
        t_small = measure_case(case, model_ctx, 1 << 20)
        t_big = measure_case(case, model_ctx, 1 << 28)
        assert t_big > 10 * t_small


class TestBenchFnContract:
    def test_bench_fn_obeys_state_protocol(self, model_ctx):
        fn = make_bench_fn(get_case("reduce"), model_ctx, 1 << 20)
        state = BenchState(ranges=(1 << 20,), min_time=0.5)
        fn(state)
        result = state.finish("x")
        assert result.total_time >= 0.5

    def test_invalid_n_rejected(self, model_ctx):
        with pytest.raises(ConfigurationError):
            make_bench_fn(get_case("reduce"), model_ctx, 0)

    def test_real_iterations_validated(self, model_ctx):
        with pytest.raises(ConfigurationError):
            make_bench_fn(get_case("reduce"), model_ctx, 8, real_iterations=0)

    def test_elem_override(self, model_ctx):
        from repro.types import FLOAT32

        result = run_case(get_case("reduce"), model_ctx, 1 << 20, elem=FLOAT32, min_time=0.0)
        assert result.bytes_processed == result.iterations * (1 << 20) * 4
