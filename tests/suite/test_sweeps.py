"""Tests for problem-size and strong-scaling sweeps."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.suite.cases import get_case
from repro.suite.sweeps import (
    problem_scaling,
    problem_sizes,
    strong_scaling,
    thread_counts,
)


class TestGrids:
    def test_default_sizes_paper_range(self):
        sizes = problem_sizes()
        assert sizes[0] == 8  # 2^3
        assert sizes[-1] == 1 << 30
        assert len(sizes) == 28

    def test_size_step(self):
        sizes = problem_sizes(step=3)
        assert sizes[0] == 8 and sizes[1] == 64

    def test_size_validation(self):
        with pytest.raises(ConfigurationError):
            problem_sizes(min_exp=5, max_exp=3)

    def test_thread_counts_powers_plus_max(self):
        assert thread_counts(32) == [1, 2, 4, 8, 16, 32]
        assert thread_counts(24) == [1, 2, 4, 8, 16, 24]
        assert thread_counts(1) == [1]

    def test_thread_counts_validated(self):
        with pytest.raises(ConfigurationError):
            thread_counts(0)


class TestProblemScaling:
    def test_monotone_at_scale(self, model_ctx):
        sweep = problem_scaling(
            get_case("reduce"), model_ctx, sizes=[1 << e for e in range(20, 29, 2)]
        )
        ys = sweep.ys()
        assert all(b > a for a, b in zip(ys, ys[1:]))

    def test_unsupported_marks_points(self, mach_a, gnu):
        from repro.execution.context import ExecutionContext

        ctx = ExecutionContext(mach_a, gnu, threads=8)
        sweep = problem_scaling(get_case("inclusive_scan"), ctx, sizes=[64, 128])
        assert sweep.xs() == []
        assert all(not p.supported for p in sweep.points)
        assert all(math.isnan(p.seconds) for p in sweep.points)


class TestStrongScaling:
    def test_speedup_improves_with_threads(self, model_ctx):
        sweep = strong_scaling(
            get_case("for_each_k1000"), model_ctx, 1 << 26, threads=[1, 4, 16, 32]
        )
        ys = sweep.ys()
        assert ys[0] > ys[-1]

    def test_label_carries_backend(self, model_ctx):
        sweep = strong_scaling(get_case("reduce"), model_ctx, 1 << 20, threads=[1, 2])
        assert "GCC-TBB" in sweep.label

    def test_gpu_rejected(self, mach_d):
        from repro.backends import get_backend
        from repro.execution.context import ExecutionContext

        ctx = ExecutionContext(mach_d, get_backend("nvc-cuda"))
        with pytest.raises(ConfigurationError):
            strong_scaling(get_case("reduce"), ctx, 1 << 20)
