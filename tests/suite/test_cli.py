"""Tests for the pstl-bench CLI."""

import pytest

from repro.suite.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.machine == "A"
        assert args.backend == "gcc-tbb"
        assert args.mode == "model"

    def test_all_flags(self):
        args = build_parser().parse_args(
            [
                "--machine", "C",
                "--backend", "all",
                "--case", "sort",
                "--threads", "64",
                "--size", "2^20",
                "--sweep", "threads",
                "--format", "json",
            ]
        )
        assert args.size == "2^20"
        assert args.sweep == "threads"


class TestMain:
    def test_single_point_console(self, capsys):
        rc = main(["--case", "reduce", "--size", "2^20", "--min-time", "0.001"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "reduce<GCC-TBB>" in out

    def test_csv_format(self, capsys):
        rc = main(
            ["--case", "reduce", "--size", "2^16", "--min-time", "0.001", "--format", "csv"]
        )
        assert rc == 0
        assert capsys.readouterr().out.startswith("name,")

    def test_json_format(self, capsys):
        import json

        rc = main(
            ["--case", "fill", "--size", "2^16", "--min-time", "0.001", "--format", "json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["benchmarks"]

    def test_all_backends_handles_na(self, capsys):
        rc = main(
            [
                "--backend", "all",
                "--case", "inclusive_scan",
                "--size", "2^16",
                "--min-time", "0.001",
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "N/A" in captured.err  # GNU's missing scan is reported
        assert "inclusive_scan<GCC-TBB>" in captured.out

    def test_size_sweep(self, capsys):
        rc = main(["--case", "reduce", "--sweep", "sizes", "--min-time", "0.001"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "n=8" in out and f"n={1 << 30}" in out

    def test_thread_sweep(self, capsys):
        rc = main(
            ["--case", "reduce", "--sweep", "threads", "--size", "2^20", "--machine", "A"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "t=1" in out and "t=32" in out

    def test_unknown_machine_exit_code(self, capsys):
        assert main(["--machine", "Z9"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_case_exit_code(self):
        assert main(["--case", "bogo_sort"]) == 2

    def test_all_backends_na_exits_3(self, capsys):
        # GNU has no parallel inclusive_scan: the single requested backend
        # yields nothing, which must not look like success (exit 0).
        rc = main(
            ["--backend", "gcc-gnu", "--case", "inclusive_scan",
             "--size", "2^16", "--min-time", "0.001"]
        )
        assert rc == 3
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "no data" in captured.err
        assert "GCC-GNU" in captured.err

    def test_all_na_sweep_exits_3(self, capsys):
        rc = main(
            ["--backend", "gcc-gnu", "--case", "inclusive_scan",
             "--sweep", "threads", "--size", "2^16"]
        )
        assert rc == 3
        assert "no data" in capsys.readouterr().err


class TestSweepFormats:
    def test_size_sweep_csv(self, capsys):
        rc = main(
            ["--case", "reduce", "--sweep", "sizes", "--format", "csv"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("name,")
        assert "/n=8," in out
        assert f"/n={1 << 30}," in out

    def test_thread_sweep_json(self, capsys):
        import json

        rc = main(
            ["--case", "reduce", "--sweep", "threads", "--size", "2^20",
             "--machine", "A", "--format", "json"]
        )
        assert rc == 0
        rows = json.loads(capsys.readouterr().out)["benchmarks"]
        assert len(rows) == 6  # 1, 2, 4, 8, 16, 32 threads on Mach A
        assert all("/t=" in row["name"] for row in rows)
        assert all(row["iterations"] == 1 for row in rows)

    def test_sweep_csv_skips_unsupported_points(self, capsys):
        # GNU sort is supported but GNU inclusive_scan is not; an all-backend
        # sweep keeps the supported backends' rows and reports N/A on stderr.
        rc = main(
            ["--backend", "all", "--case", "inclusive_scan",
             "--sweep", "threads", "--size", "2^16", "--format", "csv"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.out.startswith("name,")
        assert "GCC-GNU" not in captured.out
        assert "GCC-GNU" in captured.err
