"""Tests for the full-suite runner."""

import pytest

from repro.suite.cases import case_names
from repro.suite.report import run_suite


@pytest.fixture(scope="module")
def report():
    from repro.backends import get_backend
    from repro.execution.context import ExecutionContext
    from repro.machines import get_machine

    machine = get_machine("A")
    ctx = ExecutionContext(machine, get_backend("gcc-tbb"), threads=32)
    seq = ExecutionContext(machine, get_backend("gcc-seq"), threads=1)
    return run_suite(ctx, seq, n=1 << 20, min_time=0.0)


class TestRunSuite:
    def test_covers_all_cases(self, report):
        assert len(report.results) + len(report.unsupported) == len(case_names())

    def test_no_unsupported_for_tbb(self, report):
        assert report.unsupported == ()

    def test_speedups_computable(self, report):
        for case in report.results:
            assert report.speedup(case) > 0

    def test_render_mentions_every_case(self, report):
        rendered = report.render()
        for case in case_names():
            assert case in rendered

    def test_gnu_marks_scans_na(self):
        from repro.backends import get_backend
        from repro.execution.context import ExecutionContext
        from repro.machines import get_machine

        machine = get_machine("A")
        ctx = ExecutionContext(machine, get_backend("gcc-gnu"), threads=32)
        seq = ExecutionContext(machine, get_backend("gcc-seq"), threads=1)
        report = run_suite(
            ctx, seq, n=1 << 18, min_time=0.0, cases=["inclusive_scan", "reduce"]
        )
        assert report.unsupported == ("inclusive_scan",)
        assert report.speedup("inclusive_scan") is None
        assert "N/A" in report.render()

    def test_case_subset(self):
        from repro.backends import get_backend
        from repro.execution.context import ExecutionContext
        from repro.machines import get_machine

        machine = get_machine("A")
        ctx = ExecutionContext(machine, get_backend("gcc-tbb"), threads=8)
        seq = ExecutionContext(machine, get_backend("gcc-seq"), threads=1)
        report = run_suite(ctx, seq, n=1 << 16, min_time=0.0, cases=["sort"])
        assert set(report.results) == {"sort"}
