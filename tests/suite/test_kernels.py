"""Tests for the Listing 1 kernel and the GPU volatile-elision quirk."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.suite.kernels import (
    KERNEL_BASE_INSTR,
    KERNEL_INSTR_PER_ITER,
    NVC_GPU_DOUBLE_ELISION_LIMIT,
    gpu_loop_elided,
    listing1_kernel,
)
from repro.types import FLOAT32, FLOAT64, INT32


class TestCpuKernel:
    def test_cost_linear_in_k(self):
        k1 = listing1_kernel(1)
        k1000 = listing1_kernel(1000)
        assert k1.instr_per_elem == KERNEL_BASE_INSTR + KERNEL_INSTR_PER_ITER
        assert k1000.instr_per_elem == pytest.approx(
            KERNEL_BASE_INSTR + 1000 * KERNEL_INSTR_PER_ITER
        )

    def test_fp_ops_equal_k_for_floats(self):
        assert listing1_kernel(7, FLOAT64).fp_per_elem == 7.0
        assert listing1_kernel(7, FLOAT32).fp_per_elem == 7.0

    def test_int_increments_are_not_fp(self):
        k = listing1_kernel(7, INT32)
        assert k.fp_per_elem == 0.0
        # the increments are still executed, as ALU instructions
        assert k.instr_per_elem > listing1_kernel(7, FLOAT64).instr_per_elem

    def test_functional_result_is_k(self):
        k = listing1_kernel(42)
        out = k(np.zeros(4))
        assert np.all(out == 42.0)

    def test_k_zero(self):
        k = listing1_kernel(0)
        assert k.fp_per_elem == 0.0
        assert np.all(k(np.ones(3)) == 0.0)

    def test_negative_k_rejected(self):
        with pytest.raises(ConfigurationError):
            listing1_kernel(-1)

    def test_bad_target_rejected(self):
        with pytest.raises(ConfigurationError):
            listing1_kernel(1, FLOAT64, target="fpga")


class TestGpuVolatileQuirk:
    """Section 5.8: nvc++ ignores volatile on the GPU target."""

    def test_int_always_elided(self):
        assert gpu_loop_elided(1, INT32)
        assert gpu_loop_elided(10**9, INT32)

    def test_double_elided_below_magic_number(self):
        assert gpu_loop_elided(NVC_GPU_DOUBLE_ELISION_LIMIT - 1, FLOAT64)
        assert not gpu_loop_elided(NVC_GPU_DOUBLE_ELISION_LIMIT, FLOAT64)

    def test_float_never_elided(self):
        assert not gpu_loop_elided(1, FLOAT32)
        assert not gpu_loop_elided(10**6, FLOAT32)

    def test_gpu_double_kernel_cost_collapses(self):
        k = listing1_kernel(1000, FLOAT64, target="gpu")
        assert k.fp_per_elem == 0.0
        assert k.instr_per_elem == KERNEL_BASE_INSTR

    def test_gpu_double_kernel_above_limit_full_cost(self):
        k = listing1_kernel(70_000, FLOAT64, target="gpu")
        assert k.fp_per_elem == 70_000

    def test_gpu_float_kernel_keeps_cost(self):
        k = listing1_kernel(1000, FLOAT32, target="gpu")
        assert k.fp_per_elem == 1000.0

    def test_elision_preserves_functional_result(self):
        k = listing1_kernel(1000, FLOAT64, target="gpu")
        assert np.all(k(np.zeros(3)) == 1000.0)
