"""Tests for the backend registry."""

import pytest

from repro.backends import backend_names, get_backend, register_backend
from repro.backends.registry import PARALLEL_CPU_BACKENDS, STUDY_BACKENDS
from repro.errors import UnknownBackendError


class TestLookup:
    @pytest.mark.parametrize(
        "name,expect",
        [
            ("gcc-tbb", "GCC-TBB"),
            ("GCC_TBB", "GCC-TBB"),
            ("hpx", "GCC-HPX"),
            ("gnu", "GCC-GNU"),
            ("seq", "GCC-SEQ"),
            ("cuda", "NVC-CUDA"),
        ],
    )
    def test_aliases(self, name, expect):
        assert get_backend(name).name == expect

    def test_unknown(self):
        with pytest.raises(UnknownBackendError, match="known"):
            get_backend("msvc-ppl")

    def test_extension_backend_registered(self):
        # CLANG-OMP is the future-work extension; present but not in study.
        assert get_backend("clang-omp").name == "CLANG-OMP"
        assert "CLANG-OMP" not in STUDY_BACKENDS

    def test_fresh_instances(self):
        assert get_backend("gcc-tbb") is not get_backend("gcc-tbb")

    def test_study_lists(self):
        assert len(PARALLEL_CPU_BACKENDS) == 5
        assert STUDY_BACKENDS[0] == "GCC-SEQ"
        for name in STUDY_BACKENDS:
            assert get_backend(name).name == name

    def test_names_sorted(self):
        names = backend_names()
        assert names == sorted(names)

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            register_backend(lambda: get_backend("gcc-tbb"), "gcc-tbb")

    def test_registration_requires_name(self):
        with pytest.raises(ValueError):
            register_backend(lambda: get_backend("gcc-tbb"))
