"""Tests for the Backend model base class."""

import pytest

from repro.backends.base import Backend, SortStrategy, Support
from repro.errors import BackendError
from repro.execution.policy import PAR


def _mk(**kw) -> Backend:
    defaults = dict(name="X", compiler="cc", runtime="RT")
    defaults.update(kw)
    return Backend(**defaults)


class TestOverheads:
    def test_fork_scales_with_threads(self):
        b = _mk(fork_base=10e-6, fork_per_thread=1e-6)
        assert b.fork_overhead(4) == pytest.approx(14e-6)

    def test_single_thread_free(self):
        b = _mk()
        assert b.fork_overhead(1) == 0.0
        assert b.join_overhead(1) == 0.0

    def test_sequential_backend_free(self):
        b = _mk(is_sequential=True)
        assert b.fork_overhead(32) == 0.0

    def test_sched_no_contention(self):
        b = _mk(sched_per_chunk=1e-6)
        assert b.sched_overhead(100, 32) == pytest.approx(100e-6)

    def test_sched_contention(self):
        b = _mk(sched_per_chunk=1e-6, contention_exp=1.0, contention_threads=16)
        # 1 + 32/16 = 3x
        assert b.sched_overhead(100, 32) == pytest.approx(300e-6)

    def test_sched_zero_chunks(self):
        assert _mk().sched_overhead(0, 8) == 0.0

    def test_sync_cost(self):
        b = _mk(sync_base=1e-6, sync_per_thread=0.1e-6)
        assert b.sync_cost(10) == pytest.approx(2e-6)


class TestPerAlgorithmLookups:
    def test_instr_overhead_fallback(self):
        b = _mk(default_instr_overhead=3.0, instr_overhead={"sort": 7.0})
        assert b.instr_overhead_per_elem("sort") == 7.0
        assert b.instr_overhead_per_elem("reduce") == 3.0

    def test_instr_overhead_per_node(self):
        b = _mk(default_instr_overhead=2.0, instr_overhead_per_node=1.5)
        assert b.instr_overhead_for("x", 1) == 2.0
        assert b.instr_overhead_for("x", 8) == pytest.approx(2.0 + 7 * 1.5)

    def test_bw_efficiency_decay(self):
        b = _mk(default_bw_efficiency=0.8, numa_bw_decay=0.5)
        assert b.bw_efficiency_at("x", 1) == pytest.approx(0.8)
        assert b.bw_efficiency_at("x", 4) == pytest.approx(0.4)

    def test_bw_decay_disabled_by_default(self):
        b = _mk(default_bw_efficiency=0.8)
        assert b.bw_efficiency_at("x", 8) == pytest.approx(0.8)

    def test_vector_width_default_scalar(self):
        b = _mk(vector_widths={"reduce": 256})
        assert b.vector_width("reduce", PAR) == 256
        assert b.vector_width("for_each", PAR) == 0

    def test_seq_codegen_lookup(self):
        b = _mk(seq_codegen={"reduce": 1.25})
        assert b.seq_codegen_factor("reduce") == 1.25
        assert b.seq_codegen_factor("sort") == 1.0

    def test_mappings_frozen(self):
        b = _mk(instr_overhead={"a": 1.0})
        with pytest.raises(TypeError):
            b.instr_overhead["a"] = 2.0


class TestDispatchHelpers:
    def test_support_default_parallel(self):
        assert _mk().support("sort") is Support.PARALLEL

    def test_support_override(self):
        b = _mk(support_overrides={"inclusive_scan": Support.UNSUPPORTED})
        assert b.support("inclusive_scan") is Support.UNSUPPORTED

    def test_sequential_backend_support(self):
        assert _mk(is_sequential=True).support("sort") is Support.SEQUENTIAL_FALLBACK

    def test_runs_parallel_threshold(self):
        b = _mk(seq_fallback_thresholds={"find": 512})
        assert not b.runs_parallel("find", 512, 8)
        assert b.runs_parallel("find", 513, 8)

    def test_runs_parallel_needs_threads(self):
        assert not _mk().runs_parallel("sort", 1 << 20, 1)

    def test_effective_threads_uncapped(self):
        assert _mk().effective_threads(64) == 64.0

    def test_effective_threads_capped(self):
        b = _mk(eff_thread_cap=16, eff_thread_exp=0.5)
        assert b.effective_threads(16) == 16.0
        assert b.effective_threads(80) == pytest.approx(24.0)


class TestPartitioning:
    def test_static_for_single_chunk_backends(self):
        assert _mk(chunks_per_thread=1).partitioner().name == "static"

    def test_block_cyclic_for_multi_chunk(self):
        assert _mk(chunks_per_thread=8).partitioner().name == "block-cyclic"

    def test_fixed_grain(self):
        b = _mk(fixed_chunk_elems=1024)
        p = b.make_partition(10_000, 4)
        assert p.num_chunks == 10
        assert b.num_chunks(10_000, 4) == 10

    def test_num_chunks_matches_partition(self):
        b = _mk(chunks_per_thread=8)
        assert b.num_chunks(1 << 20, 16) == b.make_partition(1 << 20, 16).num_chunks

    def test_validation(self):
        with pytest.raises(BackendError):
            _mk(chunks_per_thread=0)
        with pytest.raises(BackendError):
            _mk(default_bw_efficiency=0.0)

    def test_sort_strategy_default(self):
        assert _mk().sort_strategy is SortStrategy.PARALLEL_QUICKSORT
