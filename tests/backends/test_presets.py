"""Tests asserting the backend presets encode the paper's facts."""

import pytest

from repro.backends import SortStrategy, Support, get_backend
from repro.backends.registry import PARALLEL_CPU_BACKENDS
from repro.execution.policy import PAR


class TestCapabilityMatrix:
    def test_gnu_has_no_parallel_scan(self, gnu):
        # Section 5.4: "GNU's collection does not implement inclusive_scan".
        assert gnu.support("inclusive_scan") is Support.UNSUPPORTED
        assert gnu.support("exclusive_scan") is Support.UNSUPPORTED

    def test_nvc_scan_sequential_fallback(self):
        nvc = get_backend("nvc-omp")
        assert nvc.support("inclusive_scan") is Support.SEQUENTIAL_FALLBACK
        assert not nvc.runs_parallel("inclusive_scan", 1 << 30, 64)

    def test_everyone_parallelizes_for_each(self):
        for name in PARALLEL_CPU_BACKENDS:
            assert get_backend(name).support("for_each") is Support.PARALLEL


class TestFallbackThresholds:
    def test_gnu_for_each_2_10(self, gnu):
        assert gnu.seq_fallback_threshold("for_each") == 1 << 10

    def test_gnu_find_2_9(self, gnu):
        assert gnu.seq_fallback_threshold("find") == 1 << 9

    def test_tbb_sort_2_9(self, tbb):
        assert tbb.seq_fallback_threshold("sort") == 512

    def test_hpx_sort_2_15(self, hpx):
        assert hpx.seq_fallback_threshold("sort") == 1 << 15


class TestInstructionCalibration:
    """Per-element instruction overheads back out Table 3's column ratios."""

    def test_table3_ordering(self):
        # ICC < GCC-TBB < NVC < GNU < HPX (instructions, Table 3)
        overheads = {
            name: get_backend(name).instr_overhead_per_elem("for_each")
            for name in PARALLEL_CPU_BACKENDS
        }
        assert (
            overheads["ICC-TBB"]
            < overheads["GCC-TBB"]
            < overheads["NVC-OMP"]
            < overheads["GCC-GNU"]
            < overheads["GCC-HPX"]
        )

    def test_hpx_biggest_reduce_overhead(self):
        # Table 4: HPX executes up to ~6x more instructions for reduce.
        hpx = get_backend("gcc-hpx").instr_overhead_per_elem("reduce")
        for other in ("GCC-TBB", "GCC-GNU", "ICC-TBB", "NVC-OMP"):
            assert hpx > 5 * get_backend(other).instr_overhead_per_elem("reduce")


class TestVectorization:
    def test_icc_and_hpx_vectorize_reduce(self):
        # Table 4: 26G 256-bit packed ops for ICC and HPX only.
        assert get_backend("icc-tbb").vector_width("reduce", PAR) == 256
        assert get_backend("gcc-hpx").vector_width("reduce", PAR) == 256

    def test_others_scalar_reduce(self):
        for name in ("gcc-tbb", "gcc-gnu", "nvc-omp"):
            assert get_backend(name).vector_width("reduce", PAR) == 0


class TestSortStrategies:
    @pytest.mark.parametrize(
        "name,strategy",
        [
            ("gcc-tbb", SortStrategy.PARALLEL_QUICKSORT),
            ("icc-tbb", SortStrategy.PARALLEL_QUICKSORT),
            ("gcc-gnu", SortStrategy.MULTIWAY_MERGESORT),
            ("gcc-hpx", SortStrategy.TASK_QUICKSORT),
            ("nvc-omp", SortStrategy.SERIAL_PARTITION_QUICKSORT),
            ("gcc-seq", SortStrategy.SEQUENTIAL),
        ],
    )
    def test_strategy(self, name, strategy):
        assert get_backend(name).sort_strategy is strategy


class TestMisc:
    def test_seq_baseline_is_sequential(self, seq_backend):
        assert seq_backend.is_sequential
        assert not seq_backend.runs_parallel("sort", 1 << 30, 32)

    def test_hpx_compact_affinity(self, hpx):
        assert hpx.affinity_strategy == "compact"

    def test_hpx_contention_model_active(self, hpx):
        flat = hpx.sched_overhead(1000, 1)
        contended = hpx.sched_overhead(1000, 64)
        assert contended > 2 * flat

    def test_nvc_best_bandwidth(self):
        # Table 3: NVC-OMP sustains the highest bandwidth (119.1 GiB/s).
        nvc = get_backend("nvc-omp").bw_efficiency("for_each")
        for other in ("gcc-tbb", "gcc-gnu", "gcc-hpx", "icc-tbb"):
            assert nvc > get_backend(other).bw_efficiency("for_each") - 1e-9

    def test_nvc_weak_sequential_reduce(self):
        # Section 5.5: NVC's sequential reduce codegen trails GCC's.
        assert get_backend("nvc-omp").seq_codegen_factor("reduce") > 1.0
