"""Crash recovery end-to-end: SIGKILL a live campaign, resume, compare.

The strongest robustness claim the pipeline makes (docs/ROBUSTNESS.md)
is that a campaign process dying *at any instant* -- nine bullets, no
atexit handlers, possibly mid-append -- loses at most in-flight work,
never recorded work, and that a resume converges to output bit-identical
to a never-interrupted run. In-process tests cannot check that claim
honestly, so this one runs the real ``pstl-campaign`` CLI in a
subprocess, SIGKILLs it mid-run, resumes, and diffs the query output
byte-for-byte against an untouched control run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

#: A grid big enough (~1400 tasks) that the run spends real wall-clock
#: executing after its first journal lines land -- the kill window.
SPEC = {
    "name": "crash-recovery",
    "machines": ["A"],
    "backends": ["GCC-SEQ", "GCC-TBB", "GCC-GNU"],
    "cases": [
        "adjacent_difference", "copy", "count", "equal", "exclusive_scan",
        "fill", "find", "for_each_k1", "for_each_k1000", "inclusive_scan",
        "inplace_merge", "is_heap", "is_partitioned", "max_element", "merge",
        "min_element", "minmax_element", "nth_element", "partial_sort",
        "reduce", "remove", "replace", "reverse", "rotate", "search",
        "set_intersection", "set_union", "sort", "stable_partition",
        "stable_sort", "transform", "transform_reduce", "unique",
    ],
    "size_exps": [12, 13, 14, 15],
    "threads": [1, 2, 8, 32],
}


def _cli(*args: str, **popen_kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [sys.executable, "-m", "repro.campaign.cli", *args]
    return subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True, **popen_kwargs)


def _run_cli(*args: str) -> subprocess.CompletedProcess:
    proc = _cli(*args)
    out, err = proc.communicate(timeout=120)
    return subprocess.CompletedProcess(proc.args, proc.returncode, out, err)


@pytest.mark.chaos
def test_sigkill_mid_campaign_resumes_bit_identical(tmp_path):
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps(SPEC), encoding="utf-8")
    killed_dir = tmp_path / "killed"
    control_dir = tmp_path / "control"

    # -- start the victim and kill it as soon as recorded work exists
    victim = _cli("run", "--spec-file", str(spec_file), "--dir",
                  str(killed_dir), "--workers", "2")
    journal = killed_dir / "journal.jsonl"
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if journal.exists() and journal.stat().st_size > 0:
            break
        if victim.poll() is not None:
            break
        time.sleep(0.002)
    if victim.poll() is not None:
        victim.communicate()
        if victim.returncode == 0:
            pytest.skip("campaign finished before the kill window opened")
        pytest.fail(f"campaign died on its own: rc={victim.returncode}")
    victim.kill()  # SIGKILL: no cleanup, no atexit, possibly mid-append
    victim.communicate()
    assert victim.returncode == -signal.SIGKILL

    # -- recorded work survived; at most the tail line is torn
    lines = journal.read_bytes().split(b"\n")
    intact = [ln for ln in lines if ln.strip()]
    assert intact, "journal lost its recorded entries"

    # -- resume converges, and the store audits clean afterwards
    resumed = _run_cli("resume", str(killed_dir), "--workers", "2")
    assert resumed.returncode == 0, resumed.stderr
    verified = _run_cli("verify", str(killed_dir))
    assert verified.returncode == 0, verified.stdout + verified.stderr
    assert "verify: OK" in verified.stdout

    # -- the control run never saw a fault
    control = _run_cli("run", "--spec-file", str(spec_file), "--dir",
                       str(control_dir), "--workers", "2")
    assert control.returncode == 0, control.stderr

    # -- byte-for-byte identical query output
    killed_query = _run_cli("query", str(killed_dir), "--format", "json")
    control_query = _run_cli("query", str(control_dir), "--format", "json")
    assert killed_query.returncode == 0 and control_query.returncode == 0
    assert killed_query.stdout == control_query.stdout
    rows = json.loads(killed_query.stdout)["benchmarks"]
    assert rows, "query returned an empty grid"
