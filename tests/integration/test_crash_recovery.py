"""Crash recovery end-to-end: SIGKILL a live campaign, resume, compare.

The strongest robustness claim the pipeline makes (docs/ROBUSTNESS.md)
is that a campaign process dying *at any instant* -- nine bullets, no
atexit handlers, possibly mid-append -- loses at most in-flight work,
never recorded work, and that a resume converges to output bit-identical
to a never-interrupted run. In-process tests cannot check that claim
honestly, so this one runs the real ``pstl-campaign`` CLI in a
subprocess, SIGKILLs it mid-run, resumes, and diffs the query output
byte-for-byte against an untouched control run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

#: A grid big enough (~1400 tasks) that the run spends real wall-clock
#: executing after its first journal lines land -- the kill window.
SPEC = {
    "name": "crash-recovery",
    "machines": ["A"],
    "backends": ["GCC-SEQ", "GCC-TBB", "GCC-GNU"],
    "cases": [
        "adjacent_difference", "copy", "count", "equal", "exclusive_scan",
        "fill", "find", "for_each_k1", "for_each_k1000", "inclusive_scan",
        "inplace_merge", "is_heap", "is_partitioned", "max_element", "merge",
        "min_element", "minmax_element", "nth_element", "partial_sort",
        "reduce", "remove", "replace", "reverse", "rotate", "search",
        "set_intersection", "set_union", "sort", "stable_partition",
        "stable_sort", "transform", "transform_reduce", "unique",
    ],
    "size_exps": [12, 13, 14, 15],
    "threads": [1, 2, 8, 32],
}


def _cli(*args: str, **popen_kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [sys.executable, "-m", "repro.campaign.cli", *args]
    return subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True, **popen_kwargs)


def _run_cli(*args: str) -> subprocess.CompletedProcess:
    proc = _cli(*args)
    out, err = proc.communicate(timeout=120)
    return subprocess.CompletedProcess(proc.args, proc.returncode, out, err)


@pytest.mark.chaos
def test_sigkill_mid_campaign_resumes_bit_identical(tmp_path):
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps(SPEC), encoding="utf-8")
    killed_dir = tmp_path / "killed"
    control_dir = tmp_path / "control"

    # -- start the victim and kill it as soon as recorded work exists
    victim = _cli("run", "--spec-file", str(spec_file), "--dir",
                  str(killed_dir), "--workers", "2")
    journal = killed_dir / "journal.jsonl"
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if journal.exists() and journal.stat().st_size > 0:
            break
        if victim.poll() is not None:
            break
        time.sleep(0.002)
    if victim.poll() is not None:
        victim.communicate()
        if victim.returncode == 0:
            pytest.skip("campaign finished before the kill window opened")
        pytest.fail(f"campaign died on its own: rc={victim.returncode}")
    victim.kill()  # SIGKILL: no cleanup, no atexit, possibly mid-append
    victim.communicate()
    assert victim.returncode == -signal.SIGKILL

    # -- recorded work survived; at most the tail line is torn
    lines = journal.read_bytes().split(b"\n")
    intact = [ln for ln in lines if ln.strip()]
    assert intact, "journal lost its recorded entries"

    # -- resume converges, and the store audits clean afterwards
    resumed = _run_cli("resume", str(killed_dir), "--workers", "2")
    assert resumed.returncode == 0, resumed.stderr
    verified = _run_cli("verify", str(killed_dir))
    assert verified.returncode == 0, verified.stdout + verified.stderr
    assert "verify: OK" in verified.stdout

    # -- the control run never saw a fault
    control = _run_cli("run", "--spec-file", str(spec_file), "--dir",
                       str(control_dir), "--workers", "2")
    assert control.returncode == 0, control.stderr

    # -- byte-for-byte identical query output
    killed_query = _run_cli("query", str(killed_dir), "--format", "json")
    control_query = _run_cli("query", str(control_dir), "--format", "json")
    assert killed_query.returncode == 0 and control_query.returncode == 0
    assert killed_query.stdout == control_query.stdout
    rows = json.loads(killed_query.stdout)["benchmarks"]
    assert rows, "query returned an empty grid"


# -- remote executor death ----------------------------------------------

#: Small enough to finish in seconds, large enough for several waves.
REMOTE_SPEC = {
    "name": "crash-remote",
    "machines": ["A"],
    "backends": ["GCC-SEQ", "GCC-TBB"],
    "cases": ["reduce", "transform", "sort", "find", "copy"],
    "size_exps": [10, 11],
    "threads": [2, 4],
}


def _executor_proc(base_url: str, root: Path, *, faults: Path | None = None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [sys.executable, "-m", "repro.remote.cli", "--url", base_url,
           "--root", str(root), "--max-idle", "30", "--poll", "0.01"]
    if faults is not None:
        cmd += ["--faults", str(faults)]
    return subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)


@pytest.mark.chaos
@pytest.mark.distributed
def test_sigkill_remote_executor_reassigns_and_stays_bit_identical(tmp_path):
    """A remote executor dying mid-wave must cost nothing but time.

    One executor runs with ``executor_dead=1.0`` -- it SIGKILLs itself
    the moment it claims its first wave, exactly like a host losing
    power. The coordinator must notice the lapsed lease, reassign the
    wave to the survivor, and finish a campaign whose results are
    byte-identical to a single-process fault-free run.
    """
    from repro.campaign.executor import run_campaign
    from repro.campaign.spec import CampaignSpec, canonical_json
    from repro.service import ServiceClient, start_background

    doomed_plan = tmp_path / "doomed.json"
    doomed_plan.write_text(json.dumps({"seed": 5, "executor_dead": 1.0}),
                           encoding="utf-8")
    with start_background(tmp_path / "svc", concurrent=2,
                          lease_ttl=0.5) as svc:
        client = ServiceClient(svc.base_url)
        doomed = _executor_proc(svc.base_url, tmp_path / "doomed",
                                faults=doomed_plan)
        survivor = _executor_proc(svc.base_url, tmp_path / "survivor")
        try:
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                if len(client.executors()["executors"]) == 2:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("executors never registered")
            doc = client.submit(REMOTE_SPEC)
            done = client.wait(doc["id"], timeout=120)
            assert done["state"] == "complete"
            remote_rows = client.results(doc["id"])["rows"]
            metrics = client.metrics()
        finally:
            survivor.kill()
            survivor.communicate()
            doomed.communicate()
    # the doomed executor really died by SIGKILL after claiming
    assert doomed.returncode == -signal.SIGKILL
    # its wave was reassigned rather than lost
    assert metrics["service_remote_waves_reassigned"] >= 1
    # and the outcome is indistinguishable from a fault-free local run
    outcome = run_campaign(CampaignSpec.from_dict(REMOTE_SPEC))
    control = []
    for task in outcome.plan.tasks:
        result = outcome.results.get(task.task_id)
        if result is None:
            continue
        p = task.point
        control.append({
            "task_id": task.task_id, "kind": task.kind,
            "machine": p.machine, "backend": p.backend, "case": p.case,
            "size_exp": p.size_exp, "threads": p.threads,
            "status": result.status, "seconds": result.seconds,
            "error": result.error,
        })
    assert canonical_json(remote_rows) == canonical_json(control)
