"""The distributed bit-identity harness (docs/DISTRIBUTION.md's headline).

Four real executor *processes* serve one campaign over HTTP while the
chaos plan attacks every layer of the shipping protocol at once:

- ``lease_expire`` sweeps claimed waves back to pending mid-flight;
- ``segment_lost`` eats first deliveries, forcing bounded re-ships;
- ``segment_dup_ship`` makes executors ship sealed segments twice;
- one executor runs ``executor_dead=1.0`` and SIGKILLs itself on its
  first claim -- a host dying without a goodbye.

The invariant under all of it: the finished campaign's result rows are
byte-identical to a single-process fault-free ``run_campaign``, and the
shared store holds exactly one index row per unique point (no lost
rows, no duplicates -- exactly-once ingest).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.spec import CampaignSpec, canonical_json
from repro.campaign.store import ResultStore
from repro.faults import FaultPlan
from repro.service import ServiceClient, start_background

REPO = Path(__file__).resolve().parents[2]

SPEC = {
    "name": "distributed-identity",
    "machines": ["A"],
    "backends": ["GCC-SEQ", "GCC-TBB", "GCC-GNU"],
    "cases": ["reduce", "transform", "sort", "find", "copy", "merge"],
    "size_exps": [10, 11],
    "threads": [2, 4],
}

FLEET = 4


def _spawn_executor(base_url: str, root: Path, *, faults: Path | None = None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [sys.executable, "-m", "repro.remote.cli", "--url", base_url,
           "--root", str(root), "--max-idle", "30", "--poll", "0.01"]
    if faults is not None:
        cmd += ["--faults", str(faults)]
    return subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)


def _control_rows() -> list[dict]:
    outcome = run_campaign(CampaignSpec.from_dict(SPEC))
    rows = []
    for task in outcome.plan.tasks:
        result = outcome.results.get(task.task_id)
        if result is None:
            continue
        p = task.point
        rows.append({
            "task_id": task.task_id, "kind": task.kind,
            "machine": p.machine, "backend": p.backend, "case": p.case,
            "size_exp": p.size_exp, "threads": p.threads,
            "status": result.status, "seconds": result.seconds,
            "error": result.error,
        })
    return rows


@pytest.mark.chaos
@pytest.mark.distributed
def test_four_executor_chaos_campaign_is_bit_identical(tmp_path):
    service_faults = FaultPlan(seed=23, segment_lost=1.0, lease_expire=0.4)
    dup_plan = tmp_path / "dup.json"
    dup_plan.write_text(json.dumps({"seed": 29, "segment_dup_ship": 1.0}),
                        encoding="utf-8")
    dead_plan = tmp_path / "dead.json"
    dead_plan.write_text(json.dumps({"seed": 31, "executor_dead": 1.0}),
                         encoding="utf-8")

    svc_root = tmp_path / "svc"
    with start_background(svc_root, concurrent=2, lease_ttl=0.5,
                          faults=service_faults) as svc:
        client = ServiceClient(svc.base_url)
        fleet = [
            _spawn_executor(svc.base_url, tmp_path / f"ex{i}",
                            faults=dead_plan if i == 0 else dup_plan)
            for i in range(FLEET)
        ]
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if len(client.executors()["executors"]) == FLEET:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("fleet never finished registering")
            doc = client.submit(SPEC)
            done = client.wait(doc["id"], timeout=180)
            assert done["state"] == "complete"
            remote_rows = client.results(doc["id"])["rows"]
            metrics = client.metrics()
        finally:
            for proc in fleet:
                if proc.poll() is None:
                    proc.kill()
                proc.communicate()

    # -- the chaos actually happened
    assert fleet[0].returncode == -signal.SIGKILL  # host death was real
    assert metrics["service_remote_lost_ships"] >= 1
    assert metrics["service_remote_waves_reassigned"] >= 1
    assert metrics["service_remote_duplicate_ships"] \
        + metrics["service_remote_stale_ships"] >= 1

    # -- headline: byte-identical to the single-process fault-free run
    assert canonical_json(remote_rows) == canonical_json(_control_rows())

    # -- exactly-once: one index row per unique point, nothing superseded
    store = ResultStore(svc_root / "cache")
    assert store.index is not None
    assert store.compact().superseded == 0
    scan = store.scan()
    assert scan.errors == 0
