"""Integration tests: the paper's headline qualitative claims, full scale.

Each test cites the paper section whose claim it checks. These run the
real experiment pipeline in model mode at n = 2^30 (fast: the simulator
is analytic).
"""

import pytest

from repro.experiments.common import make_ctx, seq_baseline_seconds
from repro.experiments.fig1 import allocator_speedup
from repro.experiments.fig3 import foreach_scaling_curve
from repro.experiments.table3 import counters_for_case
from repro.experiments.table5 import cell_speedup
from repro.experiments.table6 import cell_max_threads
from repro.suite.cases import get_case
from repro.suite.wrappers import measure_case

N30 = 1 << 30


class TestSection51Allocator:
    """Fig. 1: the custom allocator's wins and non-effects."""

    def test_for_each_k1_large_gain(self):
        # Paper: up to +63 %.
        ratio = allocator_speedup("A", "GCC-TBB", "for_each_k1")
        assert 1.4 < ratio < 1.9

    def test_reduce_large_gain(self):
        # Paper: up to +50 %.
        ratio = allocator_speedup("A", "GCC-TBB", "reduce")
        assert 1.3 < ratio < 1.9

    def test_k1000_no_effect(self):
        assert allocator_speedup("A", "GCC-TBB", "for_each_k1000") == pytest.approx(
            1.0, abs=0.05
        )

    def test_sort_small_effect(self):
        assert allocator_speedup("A", "GCC-TBB", "sort") < 1.3

    def test_find_and_scan_benefit_least(self):
        """Paper reports outright losses for find/scan; our model keeps
        them as the clearly smallest beneficiaries (see EXPERIMENTS.md)."""
        ratios = {
            case: allocator_speedup("A", "GCC-TBB", case)
            for case in ("find", "for_each_k1", "inclusive_scan", "reduce", "sort")
        }
        assert ratios["find"] < ratios["sort"] < ratios["for_each_k1"]
        assert ratios["inclusive_scan"] < ratios["sort"]


class TestSection52ForEach:
    """Figs. 2-3 and Table 3."""

    def test_nvc_fastest_parallel_k1(self):
        times = {
            b: measure_case(get_case("for_each_k1"), make_ctx("A", b), N30)
            for b in ("GCC-TBB", "GCC-GNU", "GCC-HPX", "ICC-TBB", "NVC-OMP")
        }
        assert times["NVC-OMP"] == min(times.values())

    def test_hpx_slowest_parallel_k1(self):
        times = {
            b: measure_case(get_case("for_each_k1"), make_ctx("A", b), N30)
            for b in ("GCC-TBB", "GCC-GNU", "GCC-HPX", "ICC-TBB", "NVC-OMP")
        }
        assert times["GCC-HPX"] == max(times.values())

    def test_k1000_near_ideal_on_c(self):
        """Section 5.2: 102-106.7 speedup for non-HPX; HPX ~84.8 (66 % eff)."""
        for backend in ("GCC-TBB", "GCC-GNU", "NVC-OMP"):
            s = cell_speedup("C", backend, "for_each_k1000")
            assert 90 < s < 120
        hpx = cell_speedup("C", "GCC-HPX", "for_each_k1000")
        assert 70 < hpx < 95
        assert hpx < cell_speedup("C", "GCC-TBB", "for_each_k1000")

    def test_hpx_flat_scaling_beyond_16_threads(self):
        """Fig. 3: HPX speedup nearly constant past 16 threads (k_it=1)."""
        curve = foreach_scaling_curve("B", "GCC-HPX", 1)
        by_threads = dict(zip(curve.threads, curve.speedups()))
        assert by_threads[64] < by_threads[16] * 2.0

    def test_table3_instruction_ordering(self):
        instr = {
            b: counters_for_case("A", b, "for_each_k1").counters.instructions
            for b in ("GCC-TBB", "GCC-GNU", "GCC-HPX", "ICC-TBB", "NVC-OMP")
        }
        assert instr["ICC-TBB"] < instr["GCC-TBB"] < instr["NVC-OMP"]
        assert instr["NVC-OMP"] < instr["GCC-GNU"] < instr["GCC-HPX"]
        # Paper: HPX up to 147 % more instructions than ICC-TBB.
        assert 2.0 < instr["GCC-HPX"] / instr["ICC-TBB"] < 3.0

    def test_table3_fp_scalar_identical_everywhere(self):
        # Table 3: 107G scalar FP for every backend (1 op/elem x 100 calls).
        for b in ("GCC-TBB", "GCC-GNU", "ICC-TBB", "NVC-OMP"):
            stats = counters_for_case("A", b, "for_each_k1")
            assert stats.counters.fp_scalar == pytest.approx(100 * N30)


class TestSection53Find:
    def test_max_speedup_about_six_on_b(self):
        s = cell_speedup("B", "GCC-TBB", "find")
        assert 4.0 < s < 8.0

    def test_speedup_below_stream_ratio(self, mach_b):
        s = cell_speedup("B", "GCC-TBB", "find")
        assert s < mach_b.ideal_bandwidth_speedup()


class TestSection54Scan:
    def test_tbb_scan_speedup_about_five_on_c(self):
        s = cell_speedup("C", "GCC-TBB", "inclusive_scan")
        assert 2.0 < s < 7.0

    def test_nvc_scan_no_speedup(self):
        for machine in ("A", "B", "C"):
            s = cell_speedup(machine, "NVC-OMP", "inclusive_scan")
            assert 0.6 < s < 1.2


class TestSection55Reduce:
    def test_group_one_near_ten_on_a(self):
        for backend in ("GCC-TBB", "GCC-GNU", "NVC-OMP"):
            s = cell_speedup("A", backend, "reduce")
            assert 8 < s < 13

    def test_hpx_worst_on_a(self):
        speedups = {
            b: cell_speedup("A", b, "reduce")
            for b in ("GCC-TBB", "GCC-GNU", "GCC-HPX", "ICC-TBB", "NVC-OMP")
        }
        assert speedups["GCC-HPX"] == min(speedups.values())

    def test_table4_vectorization_split(self):
        icc = counters_for_case("A", "ICC-TBB", "reduce").counters
        tbb = counters_for_case("A", "GCC-TBB", "reduce").counters
        hpx = counters_for_case("A", "GCC-HPX", "reduce").counters
        assert icc.fp_packed_256 > 0 and icc.fp_scalar < 1e9
        assert hpx.fp_packed_256 > 0
        assert tbb.fp_packed_256 == 0 and tbb.fp_scalar == pytest.approx(100 * N30)

    def test_table4_hpx_most_instructions(self):
        instr = {
            b: counters_for_case("A", b, "reduce").counters.instructions
            for b in ("GCC-TBB", "GCC-GNU", "GCC-HPX", "ICC-TBB", "NVC-OMP")
        }
        assert instr["GCC-HPX"] > 3 * max(
            v for b, v in instr.items() if b != "GCC-HPX"
        )
        assert instr["ICC-TBB"] == min(instr.values())


class TestSection56Sort:
    def test_gnu_dominates_at_high_threads(self):
        for machine in ("A", "B", "C"):
            speedups = {
                b: cell_speedup(machine, b, "sort")
                for b in ("GCC-TBB", "GCC-GNU", "GCC-HPX", "NVC-OMP")
            }
            assert speedups["GCC-GNU"] == max(speedups.values())
            assert speedups["GCC-GNU"] > 2 * speedups["GCC-TBB"]

    def test_nvc_weakest_scaling(self):
        assert cell_speedup("C", "NVC-OMP", "sort") < cell_speedup(
            "C", "GCC-TBB", "sort"
        )

    def test_quicksort_family_capped_near_ten(self):
        for machine in ("A", "B", "C"):
            s = cell_speedup(machine, "GCC-TBB", "sort")
            assert 6 < s < 14


class TestSection57Efficiency:
    def test_backends_rarely_efficient_past_16_threads(self):
        """Table 6: memory-bound algorithms stop being efficient around
        the per-NUMA-node core count."""
        inefficient = 0
        total = 0
        for case in ("find", "for_each_k1", "inclusive_scan", "reduce"):
            for backend in ("GCC-TBB", "GCC-GNU", "GCC-HPX", "NVC-OMP"):
                v = cell_max_threads("C", backend, case)
                if v is None:
                    continue
                total += 1
                if v <= 16:
                    inefficient += 1
        assert inefficient / total > 0.7

    def test_compute_bound_case_scales_fully(self):
        for machine, cores in (("A", 32), ("B", 64), ("C", 128)):
            assert (
                cell_max_threads(machine, "GCC-TBB", "for_each_k1000") == cores
            )
