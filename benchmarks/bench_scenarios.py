"""Scenario engine overhead: the registry path must not tax the drivers.

The registry is the product path for every artifact, so its cost
matters: running a figure through ``repro.scenarios`` must stay within
a small constant factor of the bespoke legacy driver (the work — the
simulated measurements — is identical; only the dispatch differs), and
campaign-shaped scenarios must inherit the warm-cache behaviour of the
campaign layer (a second run against the same store is pure hits).
"""

from __future__ import annotations

import time

import pytest

from repro.scenarios.runner import RunOptions, run_scenario


@pytest.fixture(scope="module")
def fig2_run():
    run = run_scenario("fig2")
    print(f"\nfig2 via registry: {len(run.cells)} cells, "
          f"{len(run.curves)} curves")
    return run


def test_bench_scenario_fig2(benchmark, fig2_run):
    result = benchmark.pedantic(run_scenario, args=("fig2",),
                                rounds=1, iterations=1)
    assert result.cells == fig2_run.cells


def test_registry_dispatch_overhead_is_small(fig2_run):
    from repro.experiments.fig2 import run_fig2

    started = time.perf_counter()
    run_fig2()
    legacy = time.perf_counter() - started
    started = time.perf_counter()
    run_scenario("fig2")
    registry = time.perf_counter() - started
    # identical measurement work; dispatch overhead bounded at 50 %
    assert registry < legacy * 1.5 + 0.1, (legacy, registry)


def test_bench_campaign_scenario_warm_store(benchmark, tmp_path_factory):
    from repro.campaign.store import ResultStore

    store = ResultStore(tmp_path_factory.mktemp("scenario-bench") / "cache")
    options = RunOptions(store=store)
    cold_started = time.perf_counter()
    cold = run_scenario("table5", options)
    cold_seconds = time.perf_counter() - cold_started
    warm = benchmark.pedantic(run_scenario, args=("table5", options),
                              rounds=1, iterations=1)
    assert warm.cells == cold.cells
    print(f"\ntable5 via registry: cold {cold_seconds:.3f}s, "
          f"cells {len(cold.cells)}")
