"""Ablation: the NUMA cost-model terms (DESIGN.md section 4).

The engine's memory time is the max of four constraints; two calibrated
mechanisms sit on top: geometric locality decay with node count and the
cross-node interconnect cap. This ablation turns each off (by synthetic
backend/machine surgery) and shows which paper behaviours each explains:

* without locality decay, the 8-node machines' for_each speedups balloon
  to ~2-3x the measured values (the Table 5 B/C mismatch we originally hit);
* without the interconnect cap, remote traffic becomes free and the
  default allocator's penalty collapses toward the naive 2x bandwidth split.
"""

import dataclasses

import pytest

from repro import pstl
from repro.backends import get_backend
from repro.execution.context import ExecutionContext
from repro.machines import get_machine
from repro.suite.kernels import listing1_kernel
from repro.types import FLOAT64

N = 1 << 30


def _foreach_seconds(machine, backend, threads):
    ctx = ExecutionContext(machine, backend, threads=threads)
    return pstl.for_each(ctx, ctx.allocate(N, FLOAT64), listing1_kernel(1)).seconds


def _no_decay(backend):
    """The same backend with perfect multi-node locality."""
    return dataclasses.replace(
        backend,
        default_numa_quality=1.0,
        numa_qualities={},
    )


@pytest.fixture(scope="module")
def times():
    out = {}
    for mach_name in ("A", "B", "C"):
        machine = get_machine(mach_name)
        tbb = get_backend("gcc-tbb")
        out[(mach_name, "full")] = _foreach_seconds(machine, tbb, machine.total_cores)
        out[(mach_name, "no-decay")] = _foreach_seconds(
            machine, _no_decay(tbb), machine.total_cores
        )
        fat_link = dataclasses.replace(machine, interconnect_bw=1e12)
        out[(mach_name, "free-interconnect")] = _foreach_seconds(
            fat_link, tbb, machine.total_cores
        )
    return out


def test_bench_ablation_numa(benchmark, times):
    benchmark.pedantic(
        lambda: _foreach_seconds(get_machine("B"), get_backend("gcc-tbb"), 64),
        rounds=1,
        iterations=1,
    )
    for key, value in sorted(times.items()):
        print(f"for_each_k1 {key}: {value:.4f}s")


def test_decay_explains_zen_slowdown(times):
    """Removing locality decay speeds the 8-node machines up a lot..."""
    for mach in ("B", "C"):
        assert times[(mach, "no-decay")] < times[(mach, "full")] / 1.5


def test_decay_barely_matters_on_two_nodes(times):
    """...but barely moves the 2-node Skylake: it is an 8-node mechanism."""
    ratio = times[("A", "full")] / times[("A", "no-decay")]
    assert ratio < 1.3


def test_interconnect_cap_binds_on_zen(times):
    """A free interconnect removes the remote-traffic bottleneck on B/C."""
    for mach in ("B", "C"):
        assert times[(mach, "free-interconnect")] < times[(mach, "full")] * 0.9


def test_numa_terms_explain_the_paper_inversion(times):
    """The paper's Table 5 implies 64-core Mach B is *absolutely slower*
    than 32-core Mach A for for_each k=1 (3.06s/6.1 = 0.50s vs
    3.57s/14.2 = 0.25s) despite having 1.5x the STREAM bandwidth. The
    full model reproduces that inversion; removing either NUMA term
    (locality decay or the interconnect cap) flips it back to the naive
    bandwidth ordering -- i.e., those two terms ARE the explanation."""
    assert times[("B", "full")] > times[("A", "full")]
    assert times[("B", "no-decay")] < times[("A", "no-decay")]
    assert times[("B", "free-interconnect")] < times[("A", "free-interconnect")]
