"""Figure 5: X::inclusive_scan on Mach C (paper Section 5.4).

Asserts: GNU is absent (no parallel scan); NVC-OMP shows no scaling
(sequential fallback, speedup ~0.9); TBB-based backends reach ~5 at 128
threads and scale monotonically; HPX stays near 1; sequential wins until
the working set leaves the caches.
"""

import pytest

from repro.experiments.fig5 import run_fig5


@pytest.fixture(scope="module")
def fig5():
    result = run_fig5()
    print("\n" + result.rendered)
    return result


def test_bench_fig5(benchmark):
    result = benchmark.pedantic(
        run_fig5, kwargs=dict(size_step=3), rounds=1, iterations=1
    )
    assert result.experiment_id == "fig5"


def test_gnu_absent(fig5):
    assert "GCC-GNU" not in fig5.data["scaling"]
    assert fig5.data["problem"]["GCC-GNU"].xs() == []


def test_nvc_no_scaling(fig5):
    curve = fig5.data["scaling"]["NVC-OMP"]
    speedups = curve.speedups()
    assert max(speedups) < 1.3
    # Sequential fallback: the curve is flat across all thread counts.
    assert max(speedups) - min(speedups) < 0.05


def test_tbb_scales_monotonically_to_about_five(fig5):
    """Paper: TBB-based backends reduce run time monotonically, ~5x max.

    Monotonicity is asserted from 2 threads on: at 1 thread the dispatch
    runs the (single-pass) sequential implementation, while >= 2 threads
    run the three-phase parallel scan with its extra read pass, so the
    2-thread point is legitimately slower than 1 thread.
    """
    for backend in ("GCC-TBB", "ICC-TBB"):
        curve = fig5.data["scaling"][backend]
        assert 2.0 < curve.max_speedup() < 7.0
        times = list(curve.seconds)[1:]
        assert all(b <= a * 1.02 for a, b in zip(times, times[1:])), backend


def test_hpx_near_one(fig5):
    assert fig5.data["scaling"]["GCC-HPX"].max_speedup() < 1.8


def test_sequential_wins_cache_resident_sizes(fig5):
    """Paper: seq wins up to ~L2 capacity (2^22 doubles on Mach C)."""
    seq = dict(zip(fig5.data["problem"]["GCC-SEQ"].xs(), fig5.data["problem"]["GCC-SEQ"].ys()))
    par = dict(zip(fig5.data["problem"]["GCC-TBB"].xs(), fig5.data["problem"]["GCC-TBB"].ys()))
    assert seq[1 << 14] < par[1 << 14]

    # ... and loses decisively beyond the LLC.
    assert par[1 << 30] < seq[1 << 30]
