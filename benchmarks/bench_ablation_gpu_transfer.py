"""Ablation: GPU transfer bandwidth and launch latency (Fig. 8/9 drivers).

The paper concludes the GPUs are transfer-bound at low intensity; this
ablation quantifies the claim by sweeping the unified-memory migration
bandwidth and the kernel-launch latency, and locating the intensity
crossover where the T4 starts beating the parallel host CPU.
"""

import dataclasses

import pytest

from repro.backends import get_backend
from repro.execution.context import ExecutionContext
from repro.experiments.common import make_ctx
from repro.machines import get_machine
from repro.sim.gpu import GpuExecution
from repro.suite.cases import _case_for_each
from repro.suite.wrappers import measure_case
from repro.types import FLOAT32

N = 1 << 28


def _gpu_time(k_it: int, pcie_bw: float | None = None, launch: float | None = None):
    gpu = get_machine("D")
    if pcie_bw is not None:
        gpu = dataclasses.replace(gpu, pcie_bandwidth=pcie_bw)
    if launch is not None:
        gpu = dataclasses.replace(gpu, kernel_launch_latency=launch)
    ctx = ExecutionContext(
        gpu,
        get_backend("nvc-cuda"),
        gpu_options=GpuExecution(transfer_back=True),
    )
    return measure_case(_case_for_each(k_it), ctx, N, FLOAT32)


def _cpu_time(k_it: int):
    return measure_case(_case_for_each(k_it), make_ctx("gpu-host", "nvc-omp"), N, FLOAT32)


def _crossover_k(pcie_bw: float | None = None) -> int:
    """Smallest k_it (powers of 2) where the GPU beats the parallel CPU."""
    for e in range(0, 15):
        k = 1 << e
        if _gpu_time(k, pcie_bw=pcie_bw) < _cpu_time(k):
            return k
    return 1 << 15


def test_bench_ablation_gpu_transfer(benchmark):
    k = benchmark.pedantic(_crossover_k, rounds=1, iterations=1)
    print(f"\nGPU-beats-CPU intensity crossover at default PCIe: k_it={k}")
    assert 2 <= k <= 4096


def test_low_intensity_time_is_mostly_transfer():
    baseline = _gpu_time(1)
    free_link = _gpu_time(1, pcie_bw=1e13)
    assert free_link < baseline / 5


def test_faster_link_moves_crossover_down():
    slow = _crossover_k(pcie_bw=3e9)
    fast = _crossover_k(pcie_bw=24e9)
    assert fast <= slow / 2


def test_high_intensity_insensitive_to_link():
    k = 1 << 14
    slow = _gpu_time(k, pcie_bw=3e9)
    fast = _gpu_time(k, pcie_bw=24e9)
    assert slow == pytest.approx(fast, rel=0.1)


def test_launch_latency_only_matters_for_tiny_problems():
    big_default = _gpu_time(1)
    big_slow_launch = _gpu_time(1, launch=2e-3)
    assert big_slow_launch == pytest.approx(big_default, rel=0.05)

    gpu = get_machine("D")
    tiny_ctx = lambda latency: ExecutionContext(  # noqa: E731
        dataclasses.replace(gpu, kernel_launch_latency=latency),
        get_backend("nvc-cuda"),
        gpu_options=GpuExecution(transfer_back=True),
    )
    tiny_default = measure_case(_case_for_each(1), tiny_ctx(20e-6), 1 << 8, FLOAT32)
    tiny_slow = measure_case(_case_for_each(1), tiny_ctx(2e-3), 1 << 8, FLOAT32)
    assert tiny_slow > 10 * tiny_default
