"""Figure 8: for_each on the GPUs, float data, forced D2H (Section 5.8).

Asserts: at k_it = 1 the GPU is transfer-bound and loses to the parallel
CPU (and, at small sizes, even to the sequential CPU); at high intensity
the Tesla T4 wins by ~23.5x and the A2 by ~13.3x over the parallel CPU;
small problem sizes never amortise the kernel launch; the float type
keeps its loop (volatile quirk).
"""

import pytest

from repro.experiments.common import make_ctx
from repro.experiments.fig8 import gpu_ctx, gpu_vs_cpu_ratio, run_fig8
from repro.suite.cases import _case_for_each
from repro.suite.wrappers import measure_case
from repro.types import FLOAT32


def test_bench_fig8(benchmark):
    result = benchmark.pedantic(
        run_fig8, kwargs=dict(k_values=(1, 10000), size_step=4), rounds=1, iterations=1
    )
    print("\n" + result.rendered)
    assert result.experiment_id == "fig8"


def test_low_intensity_gpu_loses_to_parallel_cpu():
    assert gpu_vs_cpu_ratio("D", 1) < 1.0
    assert gpu_vs_cpu_ratio("E", 1) < 1.0


def test_low_intensity_small_sizes_gpu_loses_even_to_sequential():
    n = 1 << 12  # launch + page-fault latency dwarf 16 KiB of work
    case = _case_for_each(1)
    t_seq = measure_case(case, make_ctx("gpu-host", "gcc-seq"), n, FLOAT32)
    t_gpu = measure_case(case, gpu_ctx("D"), n, FLOAT32)
    assert t_gpu > t_seq


def test_high_intensity_tesla_ratio():
    """Paper: 23.5x on Mach D."""
    ratio = gpu_vs_cpu_ratio("D", 10000)
    assert 15 < ratio < 32


def test_high_intensity_ampere_ratio():
    """Paper: 13.3x on Mach E."""
    ratio = gpu_vs_cpu_ratio("E", 10000)
    assert 9 < ratio < 19


def test_tesla_beats_ampere_at_high_intensity():
    assert gpu_vs_cpu_ratio("D", 10000) > gpu_vs_cpu_ratio("E", 10000)


def test_ratio_grows_with_intensity():
    ratios = [gpu_vs_cpu_ratio("D", k) for k in (1, 1000, 10000)]
    assert ratios[0] < ratios[1] < ratios[2]


def test_launch_cost_dominates_tiny_sizes():
    """Paper: 'input size is critical ... launching a kernel is costly'."""
    case = _case_for_each(1)
    ctx = gpu_ctx("D")
    t_small = measure_case(case, ctx, 1 << 3, FLOAT32)
    t_seq = measure_case(case, make_ctx("gpu-host", "gcc-seq"), 1 << 3, FLOAT32)
    assert t_small > 100 * t_seq
