"""Table 4: instructions executed in 100 calls to reduce, Mach A.

Asserts: HPX executes by far the most instructions; ICC the fewest (107G,
the pure vectorised kernel); ICC and HPX run the FP work as 256-bit
packed ops (~26.8G of them) with negligible scalar FP; the scalar
backends execute exactly 107G scalar FP ops and no packed.
"""

import pytest

from repro.experiments.table3 import TABLE3_BACKENDS, counters_for_case
from repro.experiments.table4 import run_table4

#: Paper Table 4, instructions per 100 calls.
PAPER_INSTRUCTIONS = {
    "GCC-TBB": 188e9,
    "GCC-GNU": 227e9,
    "ICC-TBB": 107e9,
    "NVC-OMP": 295e9,
}


@pytest.fixture(scope="module")
def stats():
    return {b: counters_for_case("A", b, "reduce") for b in TABLE3_BACKENDS}


def test_bench_table4(benchmark):
    result = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    print("\n" + result.rendered)
    assert result.experiment_id == "table4"


@pytest.mark.parametrize("backend,paper", sorted(PAPER_INSTRUCTIONS.items()))
def test_scalar_backend_instructions(stats, backend, paper):
    assert stats[backend].counters.instructions == pytest.approx(paper, rel=0.1)


def test_hpx_most_instructions(stats):
    """Paper: HPX executes up to 6x more instructions (1.74T)."""
    hpx = stats["GCC-HPX"].counters.instructions
    assert hpx > 0.9e12
    for other in ("GCC-TBB", "GCC-GNU", "ICC-TBB", "NVC-OMP"):
        assert hpx > 3 * stats[other].counters.instructions


def test_packed_fp_only_icc_and_hpx(stats):
    # Paper: 26G 256-bit packed for ICC and HPX; zero elsewhere.
    assert stats["ICC-TBB"].counters.fp_packed_256 == pytest.approx(26.8e9, rel=0.02)
    assert stats["GCC-HPX"].counters.fp_packed_256 == pytest.approx(26.8e9, rel=0.02)
    for backend in ("GCC-TBB", "GCC-GNU", "NVC-OMP"):
        assert stats[backend].counters.fp_packed_256 == 0


def test_scalar_fp_107g_for_scalar_backends(stats):
    for backend in ("GCC-TBB", "GCC-GNU", "NVC-OMP"):
        assert stats[backend].counters.fp_scalar == pytest.approx(107.4e9, rel=0.01)


def test_vectorized_backends_negligible_scalar_fp(stats):
    assert stats["ICC-TBB"].counters.fp_scalar < 1e9
    assert stats["GCC-HPX"].counters.fp_scalar < 1e9
