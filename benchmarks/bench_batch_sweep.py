"""Batch engine acceptance: vectorized sweeps are >= 5x faster, bitwise equal.

The vectorized path (``repro.sim.batch`` / ``repro.suite.batch``) exists
to make campaign-scale grids cheap: a whole sweep curve becomes a few
NumPy array expressions instead of one Python-object simulation per cell.
This module pins both halves of that contract on the Fig. 2 problem-size
sweep (the paper's densest curve family: 3 machines x 6 backends x
28 sizes x k_it in {1, 1000}):

* **speed** -- the batch path regenerates Fig. 2 at least 5x faster than
  the scalar per-point path (measured ~8x in this container);
* **fidelity** -- the regenerated figure is *bit-identical*, point for
  point, to the scalar path's output (the differential harness in
  ``tools/diffcheck.py`` enforces the same promise per SimReport field).
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.fig2 import foreach_problem_series, run_fig2

#: The acceptance floor for the vectorized path on the Fig. 2 sweep.
MIN_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def timed_paths():
    """(scalar_seconds, batch_seconds, scalar_result, batch_result)."""
    run_fig2(size_step=4, batch=True)  # warm imports outside the timings
    t0 = time.perf_counter()
    scalar = run_fig2(size_step=1, batch=False)
    t1 = time.perf_counter()
    batch = run_fig2(size_step=1, batch=True)
    t2 = time.perf_counter()
    return t1 - t0, t2 - t1, scalar, batch


def test_bench_batch_sweep(benchmark):
    """The benchmarked quantity: Fig. 2 through the vectorized path."""
    result = benchmark.pedantic(
        run_fig2, kwargs=dict(size_step=1, batch=True), rounds=1, iterations=1
    )
    assert result.experiment_id == "fig2"


def test_batch_path_at_least_5x_faster(timed_paths):
    scalar_s, batch_s, _, _ = timed_paths
    speedup = scalar_s / batch_s
    print(f"\nfig2 sweep: scalar {scalar_s:.3f}s, batch {batch_s:.3f}s, "
          f"speedup {speedup:.1f}x")
    assert speedup >= MIN_SPEEDUP


def test_batch_path_bit_identical(timed_paths):
    _, _, scalar, batch = timed_paths
    assert scalar.data.keys() == batch.data.keys()
    assert scalar.data == batch.data  # SweepResults compare exact floats
    assert scalar.rendered == batch.rendered


def test_panel_points_match_exactly():
    """Per-point spot check on one panel, both k_it regimes."""
    for k_it in (1, 1000):
        scalar = foreach_problem_series("A", k_it, size_step=2, batch=False)
        batch = foreach_problem_series("A", k_it, size_step=2, batch=True)
        assert scalar.keys() == batch.keys()
        for backend, sweep in scalar.items():
            assert batch[backend].points == sweep.points
