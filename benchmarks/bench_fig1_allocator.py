"""Figure 1: custom parallel allocator speedup (paper Section 5.1).

Regenerates the allocator-speedup grid on Mach A (32 threads, n = 2^30)
and asserts the paper's shape: large gains for the memory-bound
``for_each`` (paper: up to +63 %) and ``reduce`` (+50 %), no effect for
compute-bound ``for_each`` k_it=1000, little effect for ``sort``, and
``find``/``inclusive_scan`` as the clear non-beneficiaries (the paper
measures outright losses there; see EXPERIMENTS.md for the deviation
discussion).
"""

import pytest

from repro.experiments.fig1 import FIG1_BACKENDS, run_fig1


@pytest.fixture(scope="module")
def fig1(request):
    result = run_fig1()
    print("\n" + result.rendered)
    return result


def test_bench_fig1(benchmark, fig1):
    result = benchmark.pedantic(run_fig1, rounds=1, iterations=1)
    assert result.experiment_id == "fig1"


def test_for_each_k1_gain_matches_paper(fig1):
    # Paper: +63 % best case; all backends gain substantially.
    for backend in FIG1_BACKENDS:
        ratio = fig1.data[f"{backend}/for_each_k1"]
        assert 1.35 < ratio < 1.95, (backend, ratio)


def test_reduce_gain_matches_paper(fig1):
    for backend in FIG1_BACKENDS:
        ratio = fig1.data[f"{backend}/reduce"]
        assert 1.3 < ratio < 1.95, (backend, ratio)


def test_k1000_neutral(fig1):
    for backend in FIG1_BACKENDS:
        assert fig1.data[f"{backend}/for_each_k1000"] == pytest.approx(1.0, abs=0.07)


def test_sort_nearly_neutral(fig1):
    for backend in FIG1_BACKENDS:
        assert fig1.data[f"{backend}/sort"] < 1.35


def test_find_scan_benefit_least(fig1):
    for backend in ("GCC-TBB", "ICC-TBB"):
        find = fig1.data[f"{backend}/find"]
        scan = fig1.data[f"{backend}/inclusive_scan"]
        bigs = [fig1.data[f"{backend}/{c}"] for c in ("for_each_k1", "reduce")]
        assert find < min(bigs) - 0.3
        assert scan < min(bigs) - 0.3


def test_gnu_scan_is_na(fig1):
    assert fig1.data["GCC-GNU/inclusive_scan"] is None
