"""Shared helpers for the per-artifact benchmark modules.

Every module in this directory regenerates one table or figure of the
paper via ``pytest-benchmark`` (run with ``pytest benchmarks/
--benchmark-only``), prints the regenerated artifact, and asserts its
qualitative shape against the paper's claims. See EXPERIMENTS.md for the
recorded paper-vs-measured comparison.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an experiment driver with exactly one measured round.

    The experiments are deterministic and some take seconds; one round is
    both sufficient and honest (re-running cannot change the result).
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
