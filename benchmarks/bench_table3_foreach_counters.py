"""Table 3: instructions executed in 100 calls to for_each k_it=1, Mach A.

Asserts the instruction ordering and magnitudes (1.55T..3.83T), the
identical 107G scalar-FP column, the absence of packed FP, and the
bandwidth ordering (NVC best, HPX worst).
"""

import pytest

from repro.experiments.table3 import TABLE3_BACKENDS, counters_for_case, run_table3

#: Paper Table 3, instructions per 100 calls.
PAPER_INSTRUCTIONS = {
    "GCC-TBB": 1.72e12,
    "GCC-GNU": 2.41e12,
    "GCC-HPX": 3.83e12,
    "ICC-TBB": 1.55e12,
    "NVC-OMP": 2.24e12,
}


@pytest.fixture(scope="module")
def stats():
    return {b: counters_for_case("A", b, "for_each_k1") for b in TABLE3_BACKENDS}


def test_bench_table3(benchmark):
    result = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    print("\n" + result.rendered)
    assert result.experiment_id == "table3"


@pytest.mark.parametrize("backend,paper", sorted(PAPER_INSTRUCTIONS.items()))
def test_instruction_totals_close_to_paper(stats, backend, paper):
    ours = stats[backend].counters.instructions
    assert ours == pytest.approx(paper, rel=0.12), (backend, ours, paper)


def test_fp_scalar_107g_everywhere(stats):
    for backend in TABLE3_BACKENDS:
        assert stats[backend].counters.fp_scalar == pytest.approx(107.4e9, rel=0.01)


def test_no_packed_fp(stats):
    for backend in TABLE3_BACKENDS:
        assert stats[backend].counters.fp_packed_128 == 0
        assert stats[backend].counters.fp_packed_256 == 0


def test_bandwidth_ordering(stats):
    """Paper: NVC 119.1 > GNU 116.6 > TBB 107.6 > ICC 104.5 > HPX 75.6."""
    bw = {b: stats[b].bandwidth_gib for b in TABLE3_BACKENDS}
    assert bw["NVC-OMP"] > bw["GCC-TBB"] > bw["GCC-HPX"]
    assert bw["GCC-GNU"] > bw["GCC-HPX"]
    assert bw["GCC-HPX"] < 0.75 * bw["NVC-OMP"]


def test_data_volume_band(stats):
    """Paper: 1762..2151 GiB across backends."""
    for backend in TABLE3_BACKENDS:
        assert 1600 < stats[backend].data_volume_gib < 2300


def test_nvc_leanest_traffic(stats):
    vol = {b: stats[b].data_volume_gib for b in TABLE3_BACKENDS}
    assert min(vol, key=vol.get) == "NVC-OMP"
