"""Figure 4: X::find on Mach B (paper Section 5.3).

Asserts: sequential wins by orders of magnitude at tiny sizes; the
parallel version wins decisively past 2^18; GNU's sequential fallback is
active below 2^9; the best speedup is ~6 (GCC-TBB), below the STREAM
bandwidth ratio of ~7.8.
"""

import pytest

from repro.experiments.fig4 import run_fig4
from repro.machines import get_machine


@pytest.fixture(scope="module")
def fig4():
    result = run_fig4()
    print("\n" + result.rendered)
    return result


def test_bench_fig4(benchmark):
    result = benchmark.pedantic(
        run_fig4, kwargs=dict(size_step=3), rounds=1, iterations=1
    )
    assert result.experiment_id == "fig4"


def _series(fig4, backend):
    sweep = fig4.data["problem"][backend]
    return dict(zip(sweep.xs(), sweep.ys()))


def test_sequential_wins_by_orders_of_magnitude_small(fig4):
    seq = _series(fig4, "GCC-SEQ")
    par = _series(fig4, "GCC-TBB")
    assert par[1 << 6] > 20 * seq[1 << 6]


def test_parallel_wins_past_2_18(fig4):
    """Paper: beyond 2^18 the parallel implementations clearly win."""
    seq = _series(fig4, "GCC-SEQ")
    for backend in ("GCC-TBB", "GCC-GNU"):
        par = _series(fig4, backend)
        assert par[1 << 24] < seq[1 << 24]
        assert par[1 << 30] < seq[1 << 30] / 2


def test_max_speedup_about_six(fig4):
    curve = fig4.data["scaling"]["GCC-TBB"]
    assert 4.0 < curve.max_speedup() < 8.0


def test_speedup_below_stream_ratio(fig4):
    mach_b = get_machine("B")
    for backend, curve in fig4.data["scaling"].items():
        assert curve.max_speedup() < mach_b.ideal_bandwidth_speedup(), backend


def test_tbb_best_backend(fig4):
    best = {b: c.max_speedup() for b, c in fig4.data["scaling"].items()}
    assert max(best, key=best.get) == "GCC-TBB"


def test_hpx_and_nvc_trail(fig4):
    scaling = fig4.data["scaling"]
    assert scaling["GCC-HPX"].max_speedup() < 3.0
    assert scaling["NVC-OMP"].max_speedup() < 3.0
