"""Campaign cache: a warm Table 5 re-run is >=10x faster and bit-identical.

The orchestration subsystem's performance guarantee. The first run of
the Table 5 grid (108 tasks, 99 executed) costs real simulator work; the
second run against the same store must be served *entirely* from the
content-addressed cache -- zero simulator invocations -- which makes it
an order of magnitude faster and, because the simulator is
deterministic, numerically indistinguishable from the cold run.

Process-pool scaling is asserted only for *correctness* (identical
grids): wall-clock pool speedup tracks the host's core count, and CI
containers may expose a single core where a pool can only add overhead.
"""

import time

import pytest

from repro.campaign import ResultStore, run_campaign, speedup_grid
from repro.experiments.table5 import table5_campaign_spec, table5_result

SIZE_EXP = 26  # big enough for the cold run to dominate cache overhead


@pytest.fixture(scope="module")
def cold_and_warm():
    spec = table5_campaign_spec(SIZE_EXP)
    store = ResultStore(None)

    t0 = time.perf_counter()
    cold = run_campaign(spec, store=store)
    cold_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = run_campaign(spec, store=store)
    warm_wall = time.perf_counter() - t0

    print(f"\ncold: {cold.stats.summary()}  ({cold_wall:.3f}s wall)")
    print(f"warm: {warm.stats.summary()}  ({warm_wall:.3f}s wall)")
    print(f"cache speedup: {cold_wall / warm_wall:.1f}x")
    return cold, warm, cold_wall, warm_wall


def test_bench_campaign_cache(benchmark, cold_and_warm):
    """Benchmark the warm path: a full Table 5 run served from cache."""
    _, _, _, _ = cold_and_warm
    spec = table5_campaign_spec(SIZE_EXP)
    store = ResultStore(None)
    run_campaign(spec, store=store)  # populate
    warm = benchmark.pedantic(
        run_campaign, args=(spec,), kwargs=dict(store=store),
        rounds=1, iterations=1,
    )
    assert warm.stats.executed == 0


def test_warm_run_is_pure_cache(cold_and_warm):
    cold, warm, _, _ = cold_and_warm
    assert warm.stats.executed == 0  # zero simulator invocations
    assert warm.stats.cache_hits == cold.stats.executed == 99


def test_warm_run_at_least_10x_faster(cold_and_warm):
    _, _, cold_wall, warm_wall = cold_and_warm
    assert cold_wall >= 10 * warm_wall, (
        f"cache speedup only {cold_wall / warm_wall:.1f}x "
        f"({cold_wall:.3f}s cold vs {warm_wall:.3f}s warm)"
    )


def test_warm_values_bit_identical(cold_and_warm):
    cold, warm, _, _ = cold_and_warm
    cold_grid = speedup_grid(cold)
    warm_grid = speedup_grid(warm)
    assert cold_grid == warm_grid  # exact float equality, not approximate
    assert table5_result(cold, SIZE_EXP).rendered == \
        table5_result(warm, SIZE_EXP).rendered


def test_pool_grid_identical_to_serial():
    """workers=4 must change wall-clock only, never a single value."""
    spec = table5_campaign_spec(14)  # small: this is a correctness check
    serial = run_campaign(spec, workers=0)
    pooled = run_campaign(spec, workers=4)
    assert speedup_grid(serial) == speedup_grid(pooled)
    assert pooled.stats.executed == serial.stats.executed
    assert pooled.stats.failed == 0
