"""Extension bench: weak scaling (not in the paper; see the experiment doc).

Predictions checked: compute-bound for_each k=1000 weak-scales near
perfectly; bandwidth-bound kernels lose efficiency once the per-thread
share of the memory system stops growing; the loss is consistent with
the Fig. 3 strong-scaling story.
"""

import pytest

from repro.experiments.weak_scaling import run_weak_scaling, weak_scaling


@pytest.fixture(scope="module")
def result():
    r = run_weak_scaling(machine="C", base_exp=22)
    print("\n" + r.rendered)
    return r


def test_bench_weak_scaling(benchmark, result):
    r = benchmark.pedantic(
        run_weak_scaling,
        kwargs=dict(machine="A", base_exp=22, cases=("reduce",)),
        rounds=1,
        iterations=1,
    )
    assert r.experiment_id == "weak-scaling"


def test_compute_bound_weak_scales(result):
    """Flat from 2 threads up. (The t=1 point runs at single-thread turbo
    clock -- Zen 3's 1.27x boost -- so efficiency vs t=1 plateaus at
    ~1/1.27; that is the hardware, not a scaling loss.)"""
    for backend in ("GCC-TBB", "GCC-GNU", "NVC-OMP"):
        curve = result.data[f"{backend}/for_each_k1000/C"]
        assert curve.seconds[-1] <= curve.seconds[1] * 1.05, backend
        assert curve.efficiencies()[-1] > 0.70, backend


def test_memory_bound_loses_efficiency(result):
    for backend in ("GCC-TBB", "GCC-GNU"):
        curve = result.data[f"{backend}/for_each_k1/C"]
        assert curve.efficiencies()[-1] < 0.6, backend


def test_time_nondecreasing_with_team_size(result):
    """Weak-scaling time can only stay flat or rise (per-thread work fixed)."""
    for curve in result.data.values():
        times = list(curve.seconds)
        assert all(b >= a * 0.98 for a, b in zip(times, times[1:])), curve.label


def test_sizes_grow_linearly():
    curve = weak_scaling("A", "GCC-TBB", "reduce", base_exp=20)
    assert all(
        s == (1 << 20) * t for s, t in zip(curve.sizes, curve.threads)
    )
