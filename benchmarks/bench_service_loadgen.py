"""Service acceptance: 1000 concurrent submissions, zero lost, SLOs met.

The campaign service's headline claim is operational, not algorithmic:
one daemon multiplexing hundreds of concurrent clients over a single
shared content-addressed store must lose nothing, corrupt nothing, and
collapse every duplicate submission onto cached work. This module pins
that claim at full scale -- the same 1000-submission mixed
cold/warm/duplicate run that feeds the ``BENCH_SERVICE.json``
trajectory ledger (CI gates the p99 trend via
``tools/bench_trajectory.py``):

* **completeness** -- every accepted campaign reaches ``complete``;
  every result grid holds exactly its planned rows, none failed;
* **dedup** -- all duplicate submissions return the existing campaign
  (hit rate 1.0) and the shared store's object count stays bounded by
  the distinct grids, not the submission count;
* **latency** -- submit p99 stays under the ledger ceiling, with the
  server-side handle time (``X-Handle-Ms``) accounting for most of it.

The run happens over real loopback HTTP against a daemon on its own
thread; after the load completes, the store is audited directly
(``scan``) for quarantined or undecodable objects -- the disk-level
half of "zero corrupted".
"""

from __future__ import annotations

import pytest

from repro.campaign import ResultStore
from repro.service import start_background
from repro.service.loadgen import LoadgenConfig, assert_slo, run_loadgen

SUBMISSIONS = 1000
CONCURRENCY = 64

#: Absolute p99 bound (ms) -- mirrors CEILINGS in tools/bench_trajectory.py.
MAX_P99_MS = 500.0


@pytest.fixture(scope="module")
def load_run(tmp_path_factory):
    """One full load run: (report, service root) shared by the asserts."""
    root = tmp_path_factory.mktemp("service")
    with start_background(root, concurrent=8) as svc:
        config = LoadgenConfig(submissions=SUBMISSIONS,
                               concurrency=CONCURRENCY)
        report = run_loadgen(svc.base_url, config)
    return report, root


def test_nothing_lost_nothing_corrupted(load_run):
    report, _root = load_run
    assert report.accepted == SUBMISSIONS
    assert report.submit_failures == 0
    assert report.lost == 0
    assert report.corrupted == 0
    assert report.completed == report.campaigns


def test_duplicates_collapse_onto_cached_campaigns(load_run):
    report, _root = load_run
    assert report.dup > 0
    assert report.dedup_hit_rate == 1.0
    # dups never became new campaigns: unique ids == cold + warm specs
    assert report.campaigns == report.cold + report.warm


def test_store_audit_is_clean(load_run):
    _report, root = load_run
    scan = ResultStore(root / "cache").scan()
    assert scan.errors == 0, scan.summary()
    assert scan.objects > 0


def test_slos_hold_at_full_scale(load_run):
    report, _root = load_run
    assert_slo(report, max_p99_ms=MAX_P99_MS)
    assert report.submit_p50_ms <= report.submit_p99_ms
    assert report.request_overhead_ms >= 0.0


def test_report_is_ledger_shaped(load_run):
    report, _root = load_run
    doc = report.to_dict()
    for key in ("throughput_rps", "submit_p50_ms", "submit_p99_ms",
                "request_overhead_ms", "dedup_hit_rate", "completed_rate"):
        assert isinstance(doc[key], (int, float))
