"""Figure 6: X::reduce on Mach A (paper Section 5.5).

Asserts: the crossover falls near 2^15-2^19; the backends split into the
paper's two groups ({NVC, GCC-TBB, GCC-GNU} ~10-11 vs {ICC-TBB, HPX}
NUMA-limited, HPX worst); ICC scales well to 16 threads before the NUMA
boundary bites.
"""

import pytest

from repro.experiments.fig6 import run_fig6


@pytest.fixture(scope="module")
def fig6():
    result = run_fig6()
    print("\n" + result.rendered)
    return result


def test_bench_fig6(benchmark):
    result = benchmark.pedantic(
        run_fig6, kwargs=dict(size_step=3), rounds=1, iterations=1
    )
    assert result.experiment_id == "fig6"


def test_crossover_window(fig6):
    seq = dict(zip(fig6.data["problem"]["GCC-SEQ"].xs(), fig6.data["problem"]["GCC-SEQ"].ys()))
    par = dict(zip(fig6.data["problem"]["GCC-TBB"].xs(), fig6.data["problem"]["GCC-TBB"].ys()))
    crossover = next(e for e in range(3, 31) if par[1 << e] < seq[1 << e])
    assert 13 <= crossover <= 19  # paper: ~2^15


def test_group_one_speedups(fig6):
    for backend in ("NVC-OMP", "GCC-TBB", "GCC-GNU"):
        top = fig6.data["scaling"][backend].max_speedup()
        assert 8 < top < 13, (backend, top)


def test_hpx_worst(fig6):
    tops = {b: c.max_speedup() for b, c in fig6.data["scaling"].items()}
    assert min(tops, key=tops.get) == "GCC-HPX"
    assert tops["GCC-HPX"] < 0.75 * tops["GCC-TBB"]


def test_icc_scales_well_to_16_threads(fig6):
    curve = fig6.data["scaling"]["ICC-TBB"]
    by_threads = dict(zip(curve.threads, curve.speedups()))
    assert by_threads[16] > by_threads[2] * 2


def test_memory_bound_ceiling(fig6):
    """No backend beats the STREAM bandwidth ratio (~11.5 on Mach A)."""
    from repro.machines import get_machine

    cap = get_machine("A").ideal_bandwidth_speedup()
    for backend, curve in fig6.data["scaling"].items():
        assert curve.max_speedup() <= cap * 1.1, backend
