"""Wave engine acceptance: fused campaigns are >= 1.5x faster, bitwise equal.

The wave path (``repro.sim.wave``) exists to squeeze the last per-point
Python overhead out of campaign grids: where the per-curve batch path
still rebuilds contexts, profiles and thread layouts once per curve,
a fused wave packs every eligible point of a campaign wave into one
struct-of-arrays program with the shared baselines computed once. This
module pins both halves of that contract on the Table 5 grid (108
tasks, 99 executed -- the same workload ``bench_campaign_table5.py``
uses for the cache guarantee):

* **speed** -- the wave-fused cold run beats the per-curve batch cold
  run by at least 1.5x wall clock (measured ~1.7x in this container;
  the trajectory ledger ``BENCH_CAMPAIGN.json`` tracks the trend and
  CI gates regressions via ``tools/bench_trajectory.py``);
* **fidelity** -- the two runs produce identical statuses and
  bit-identical seconds for every task, so defaulting campaigns to
  wave fusion changes nothing but the wall clock.

Wall-clock ratios use best-of-3 minima: the simulator is deterministic,
so the min is the least-noise estimator of the true cost.
"""

from __future__ import annotations

import time

import pytest

from repro.campaign import ResultStore, run_campaign
from repro.experiments.table5 import table5_campaign_spec

SIZE_EXP = 26  # match bench_campaign_table5: cold work dominates overhead

#: The acceptance floor for wave fusion over per-curve batch submission.
MIN_WAVE_SPEEDUP = 1.5

REPEATS = 3


def _best_of(fn):
    best, result = float("inf"), None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.fixture(scope="module")
def timed_paths():
    """(batch_seconds, wave_seconds, batch_outcome, wave_outcome)."""
    spec = table5_campaign_spec(SIZE_EXP)
    run_campaign(spec)  # warm imports and module caches off the clock
    batch_s, batch = _best_of(
        lambda: run_campaign(spec, store=ResultStore(None), wave=False)
    )
    wave_s, wave = _best_of(
        lambda: run_campaign(spec, store=ResultStore(None))
    )
    print(f"\nper-curve batch: {batch_s:.3f}s  wave-fused: {wave_s:.3f}s  "
          f"speedup: {batch_s / wave_s:.2f}x")
    return batch_s, wave_s, batch, wave


def test_bench_wave_campaign(benchmark):
    """The benchmarked quantity: a cold Table 5 campaign, wave-fused."""
    spec = table5_campaign_spec(SIZE_EXP)
    run_campaign(spec)  # warm
    outcome = benchmark.pedantic(
        run_campaign, args=(spec,), kwargs=dict(store=ResultStore(None)),
        rounds=1, iterations=1,
    )
    assert outcome.stats.failed == 0


def test_wave_at_least_1_5x_faster_than_batch(timed_paths):
    batch_s, wave_s, _, _ = timed_paths
    speedup = batch_s / wave_s
    assert speedup >= MIN_WAVE_SPEEDUP, (
        f"wave fusion only {speedup:.2f}x over per-curve batch "
        f"(floor {MIN_WAVE_SPEEDUP}x)"
    )


def test_wave_grid_bit_identical_to_batch(timed_paths):
    _, _, batch, wave = timed_paths
    assert set(wave.results) == set(batch.results)
    for tid, w in wave.results.items():
        b = batch.results[tid]
        assert w.status == b.status, tid
        if w.seconds is None or b.seconds is None:
            assert w.seconds == b.seconds, tid
        else:
            assert w.seconds.hex() == b.seconds.hex(), tid
