"""Figure 7: X::sort on Mach C (paper Section 5.6).

Asserts: TBB's sequential fallback below 2^9 and HPX's single-thread
delegation up to 2^15; NVC-OMP competitive at low thread counts; GNU's
multiway mergesort by far the most efficient at high thread counts; the
quicksort-family backends capped near speedup ~10.
"""

import pytest

from repro.experiments.common import make_ctx
from repro.experiments.fig7 import run_fig7
from repro.suite.cases import get_case


@pytest.fixture(scope="module")
def fig7():
    result = run_fig7()
    print("\n" + result.rendered)
    return result


def test_bench_fig7(benchmark):
    result = benchmark.pedantic(
        run_fig7, kwargs=dict(size_step=3), rounds=1, iterations=1
    )
    assert result.experiment_id == "fig7"


def test_gnu_best_at_high_threads(fig7):
    tops = {b: c.max_speedup() for b, c in fig7.data["scaling"].items()}
    assert max(tops, key=tops.get) == "GCC-GNU"
    assert tops["GCC-GNU"] > 2.5 * tops["GCC-TBB"]
    assert tops["GCC-GNU"] > 30  # paper: 66.6


def test_quicksort_family_capped(fig7):
    for backend in ("GCC-TBB", "ICC-TBB", "GCC-HPX", "NVC-OMP"):
        assert fig7.data["scaling"][backend].max_speedup() < 15, backend


def test_nvc_weakest_at_full_width(fig7):
    scaling = fig7.data["scaling"]
    assert (
        scaling["NVC-OMP"].speedups()[-1] < scaling["GCC-TBB"].speedups()[-1]
    )


def test_nvc_competitive_at_low_threads(fig7):
    """Paper: NVC-OMP fastest for a small number of threads."""
    scaling = fig7.data["scaling"]
    nvc = dict(zip(scaling["NVC-OMP"].threads, scaling["NVC-OMP"].speedups()))
    tbb = dict(zip(scaling["GCC-TBB"].threads, scaling["GCC-TBB"].speedups()))
    assert nvc[2] > 0.6 * tbb[2]


def test_tbb_sequential_fallback_small(fig7):
    ctx = make_ctx("C", "GCC-TBB")
    assert not ctx.runs_parallel("sort", 1 << 9)
    assert ctx.runs_parallel("sort", 1 << 10)


def test_hpx_single_thread_to_2_15(fig7):
    ctx = make_ctx("C", "GCC-HPX")
    assert not ctx.runs_parallel("sort", 1 << 15)
    assert ctx.runs_parallel("sort", 1 << 16)


def test_parallel_sort_beats_sequential_at_scale(fig7):
    seq = dict(zip(fig7.data["problem"]["GCC-SEQ"].xs(), fig7.data["problem"]["GCC-SEQ"].ys()))
    for backend in ("GCC-TBB", "GCC-GNU", "NVC-OMP"):
        par = dict(
            zip(fig7.data["problem"][backend].xs(), fig7.data["problem"][backend].ys())
        )
        assert par[1 << 30] < seq[1 << 30] / 4
