"""Figure 9: reduce on the GPUs with and without D2H transfers (Section 5.8).

Asserts: with a device-to-host transfer after every call the execution is
communication-limited and the GPU loses even to the sequential CPU; with
chained device-resident calls the GPU beats both CPU variants; the
chained per-call time approaches the device-bandwidth floor.
"""

import pytest

from repro.experiments.common import make_ctx
from repro.experiments.fig9 import chained_gpu_reduce_seconds, run_fig9
from repro.machines import get_machine
from repro.suite.cases import get_case
from repro.suite.wrappers import measure_case
from repro.types import FLOAT32

N = 1 << 29  # 2 GiB of floats: fits both GPUs


@pytest.fixture(scope="module")
def times():
    return {
        "seq": measure_case(get_case("reduce"), make_ctx("gpu-host", "gcc-seq"), N, FLOAT32),
        "par": measure_case(get_case("reduce"), make_ctx("gpu-host", "nvc-omp"), N, FLOAT32),
        "gpu_transfer": chained_gpu_reduce_seconds("D", N, transfer_back=True),
        "gpu_chained": chained_gpu_reduce_seconds("D", N, transfer_back=False),
        "gpu_e_chained": chained_gpu_reduce_seconds("E", N, transfer_back=False),
    }


def test_bench_fig9(benchmark):
    result = benchmark.pedantic(
        run_fig9, kwargs=dict(size_step=4), rounds=1, iterations=1
    )
    print("\n" + result.rendered)
    assert result.experiment_id == "fig9"


def test_with_transfer_gpu_loses_to_sequential(times):
    """Paper: 'up to a point where the GPUs are slower than the CPU with
    sequential implementation'."""
    assert times["gpu_transfer"] > times["seq"]


def test_chained_gpu_beats_parallel_cpu(times):
    assert times["gpu_chained"] < times["par"] / 2


def test_chained_gpu_beats_sequential_cpu(times):
    assert times["gpu_chained"] < times["seq"] / 10


def test_chaining_saves_order_of_magnitude(times):
    assert times["gpu_transfer"] > 10 * times["gpu_chained"]


def test_chained_time_near_device_bandwidth_floor(times):
    gpu = get_machine("D")
    floor = (N * 4) / gpu.mem_bandwidth
    assert times["gpu_chained"] < 3 * floor


def test_t4_faster_than_a2_when_resident(times):
    # T4 has the higher device bandwidth (264 vs 172 GB/s).
    assert times["gpu_chained"] < times["gpu_e_chained"]
