"""Figure 2: for_each problem scaling on Mach A/B/C (paper Section 5.2).

Regenerates the six panels (3 machines x k_it in {1, 1000}) and asserts:
sequential wins at small sizes, parallel wins at large sizes, the
crossover falls in the paper's 2^10..2^16 window, NVC-OMP leads and HPX
trails at k_it = 1, and the backends converge at k_it = 1000.
"""

import pytest

from repro.experiments.fig2 import foreach_problem_series, run_fig2

SIZE_STEP = 1


@pytest.fixture(scope="module")
def panels():
    out = {}
    for machine in ("A", "B", "C"):
        for k in (1, 1000):
            out[(machine, k)] = foreach_problem_series(machine, k, size_step=SIZE_STEP)
    return out


def test_bench_fig2(benchmark):
    result = benchmark.pedantic(
        run_fig2, kwargs=dict(size_step=3), rounds=1, iterations=1
    )
    print("\n" + result.rendered)
    assert result.experiment_id == "fig2"


@pytest.mark.parametrize("machine", ["A", "B", "C"])
def test_sequential_wins_small_sizes(panels, machine):
    series = panels[(machine, 1)]
    seq = dict(zip(series["GCC-SEQ"].xs(), series["GCC-SEQ"].ys()))
    par = dict(zip(series["GCC-TBB"].xs(), series["GCC-TBB"].ys()))
    assert seq[1 << 8] < par[1 << 8]
    assert seq[1 << 10] < par[1 << 10]


@pytest.mark.parametrize("machine", ["A", "B", "C"])
def test_parallel_wins_large_sizes(panels, machine):
    series = panels[(machine, 1)]
    seq = dict(zip(series["GCC-SEQ"].xs(), series["GCC-SEQ"].ys()))
    for backend in ("GCC-TBB", "GCC-GNU", "NVC-OMP"):
        par = dict(zip(series[backend].xs(), series[backend].ys()))
        assert par[1 << 30] < seq[1 << 30] / 3


@pytest.mark.parametrize("machine", ["A", "B", "C"])
def test_crossover_in_paper_window(panels, machine):
    """Paper: parallel compensates around 2^16 elements (Section 5.2)."""
    series = panels[(machine, 1)]
    seq = dict(zip(series["GCC-SEQ"].xs(), series["GCC-SEQ"].ys()))
    par = dict(zip(series["GCC-TBB"].xs(), series["GCC-TBB"].ys()))
    crossover = next(e for e in range(3, 31) if par[1 << e] < seq[1 << e])
    assert 10 <= crossover <= 18


def test_nvc_fastest_at_k1_large(panels):
    for machine in ("A", "B", "C"):
        series = panels[(machine, 1)]
        at_max = {
            b: dict(zip(s.xs(), s.ys()))[1 << 30]
            for b, s in series.items()
            if b != "GCC-SEQ" and s.xs()
        }
        assert min(at_max, key=at_max.get) == "NVC-OMP"


def test_hpx_slowest_at_k1_large(panels):
    for machine in ("A", "B", "C"):
        series = panels[(machine, 1)]
        at_max = {
            b: dict(zip(s.xs(), s.ys()))[1 << 30]
            for b, s in series.items()
            if b != "GCC-SEQ" and s.xs()
        }
        assert max(at_max, key=at_max.get) == "GCC-HPX"


def test_k1000_backends_converge(panels):
    """Paper: at high intensity all compilers/backends are much closer."""
    for machine in ("A", "B", "C"):
        series = panels[(machine, 1000)]
        at_max = [
            dict(zip(s.xs(), s.ys()))[1 << 30]
            for b, s in series.items()
            if b != "GCC-SEQ" and s.xs()
        ]
        assert max(at_max) / min(at_max) < 1.5


def test_gnu_sequential_below_2_10(panels):
    """Paper: GNU uses sequential execution below 2^10 elements."""
    series = panels[("A", 1)]
    gnu = dict(zip(series["GCC-GNU"].xs(), series["GCC-GNU"].ys()))
    seq = dict(zip(series["GCC-SEQ"].xs(), series["GCC-SEQ"].ys()))
    # At/below the threshold GNU behaves like (slightly slower) sequential.
    assert gnu[1 << 9] < 2 * seq[1 << 9]
