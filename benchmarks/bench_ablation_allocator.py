"""Ablation: allocator policy across machines (extends Fig. 1).

DESIGN.md calls out page placement x bandwidth as the mechanism behind
Fig. 1. This ablation separates the two ingredients the paper's custom
allocator combines -- *spreading* pages and *matching* them to threads --
by adding an interleaving policy (spread but unmatched) and a third
machine axis: the single-NUMA-node ARM extension, where the whole effect
must vanish.
"""

import pytest

from repro.experiments.common import make_ctx, paper_size
from repro.memory.allocators import (
    DefaultAllocator,
    InterleavedAllocator,
    ParallelFirstTouchAllocator,
)
from repro.suite.cases import get_case
from repro.suite.wrappers import measure_case

ALLOCATORS = {
    "default": DefaultAllocator,
    "interleave": InterleavedAllocator,
    "first-touch": ParallelFirstTouchAllocator,
}


def _time(machine: str, allocator: str, case: str = "for_each_k1") -> float:
    ctx = make_ctx(machine, "gcc-tbb", allocator=ALLOCATORS[allocator]())
    return measure_case(get_case(case), ctx, paper_size())


@pytest.fixture(scope="module")
def grid():
    return {
        (m, a): _time(m, a)
        for m in ("A", "B", "C", "arm")
        for a in ALLOCATORS
    }


def test_bench_ablation_allocator(benchmark):
    result = benchmark.pedantic(
        lambda: {(m, a): _time(m, a) for m in ("A", "arm") for a in ALLOCATORS},
        rounds=1,
        iterations=1,
    )
    for (m, a), t in sorted(result.items()):
        print(f"for_each_k1 on {m} with {a}: {t:.4f}s")


def test_spreading_suffices_on_two_nodes(grid):
    """On 2-node Mach A, interleaving alone recovers most of the gain:
    both memory controllers serve traffic either way."""
    gain_ft = grid[("A", "default")] / grid[("A", "first-touch")]
    gain_il = grid[("A", "default")] / grid[("A", "interleave")]
    assert gain_il > 1.0 + 0.5 * (gain_ft - 1.0)


def test_matching_required_on_eight_nodes(grid):
    """On the 8-node Zen machines, interleaving does NOT help: unmatched
    pages make ~7/8 of accesses remote and the interconnect binds. Only
    thread-matched first touch pays off -- spreading alone is not the
    mechanism, locality is."""
    for machine in ("B", "C"):
        gain_il = grid[(machine, "default")] / grid[(machine, "interleave")]
        gain_ft = grid[(machine, "default")] / grid[(machine, "first-touch")]
        assert gain_il < 1.1, machine
        assert gain_ft > 1.5, machine


def test_matching_still_beats_interleaving(grid):
    """...but thread-matched pages avoid interconnect traffic entirely."""
    for machine in ("A", "B", "C"):
        assert grid[(machine, "first-touch")] <= grid[(machine, "interleave")] * 1.001


def test_effect_vanishes_without_numa(grid):
    """On the 1-node ARM extension, allocator choice is irrelevant."""
    times = [grid[("arm", a)] for a in ALLOCATORS]
    assert max(times) / min(times) < 1.02


def test_effect_grows_with_node_count(grid):
    """8-node Zen machines gain at least as much as 2-node Skylake."""
    gain = {
        m: grid[(m, "default")] / grid[(m, "first-touch")] for m in ("A", "B", "C")
    }
    assert gain["B"] > gain["A"] * 0.9
    assert gain["C"] > gain["A"] * 0.9
