"""Table 5: speedup vs GCC-SEQ for the full machine/backend/algorithm grid.

The central quantitative artifact. Asserts the N/A pattern (GNU scan, ICC
on Mach B), per-row orderings, and that the bulk of cells land within a
[0.5x, 2x] band of the paper's values (the handful of exceptions are the
machine-specific pathologies documented in EXPERIMENTS.md).
"""

import pytest

from repro.experiments.table5 import run_table5

#: Paper Table 5: (Mach A, Mach B, Mach C) per backend/case; None = N/A.
PAPER_TABLE5 = {
    ("GCC-TBB", "find"): (8.9, 5.8, 4.7),
    ("GCC-TBB", "for_each_k1"): (14.2, 6.1, 8.5),
    ("GCC-TBB", "for_each_k1000"): (32.5, 54.9, 102.0),
    ("GCC-TBB", "inclusive_scan"): (4.5, 3.1, 4.7),
    ("GCC-TBB", "reduce"): (10.0, 5.1, 6.9),
    ("GCC-TBB", "sort"): (9.7, 9.4, 10.6),
    ("GCC-GNU", "find"): (8.0, 3.2, 2.2),
    ("GCC-GNU", "for_each_k1"): (15.0, 7.8, 9.1),
    ("GCC-GNU", "for_each_k1000"): (32.5, 54.9, 106.5),
    ("GCC-GNU", "inclusive_scan"): None,
    ("GCC-GNU", "reduce"): (11.0, 4.7, 6.0),
    ("GCC-GNU", "sort"): (25.4, 26.9, 66.6),
    ("GCC-HPX", "find"): (6.4, 1.4, 1.1),
    ("GCC-HPX", "for_each_k1"): (7.2, 1.8, 1.4),
    ("GCC-HPX", "for_each_k1000"): (32.4, 43.7, 84.8),
    ("GCC-HPX", "inclusive_scan"): (3.0, 0.9, 1.0),
    ("GCC-HPX", "reduce"): (7.3, 0.9, 1.2),
    ("GCC-HPX", "sort"): (10.1, 8.0, 8.1),
    ("ICC-TBB", "find"): (9.0, None, 4.8),
    ("ICC-TBB", "for_each_k1"): (13.9, None, 8.2),
    ("ICC-TBB", "for_each_k1000"): (32.5, None, 106.7),
    ("ICC-TBB", "inclusive_scan"): (4.5, None, 4.7),
    ("ICC-TBB", "reduce"): (10.2, None, 6.8),
    ("ICC-TBB", "sort"): (10.1, None, 9.0),
    ("NVC-OMP", "find"): (6.1, 1.4, 1.2),
    ("NVC-OMP", "for_each_k1"): (22.1, 15.0, 13.0),
    ("NVC-OMP", "for_each_k1000"): (32.0, 54.8, 106.5),
    ("NVC-OMP", "inclusive_scan"): (0.9, 0.8, 0.9),
    ("NVC-OMP", "reduce"): (11.0, 4.8, 11.9),
    ("NVC-OMP", "sort"): (7.1, 6.3, 6.7),
}

MACHINES = ("A", "B", "C")


@pytest.fixture(scope="module")
def table5():
    result = run_table5()
    print("\n" + result.rendered)
    return result


def test_bench_table5(benchmark, table5):
    result = benchmark.pedantic(
        run_table5, kwargs=dict(size_exp=24), rounds=1, iterations=1
    )
    assert result.experiment_id == "table5"


def test_na_pattern(table5):
    for machine in MACHINES:
        assert table5.data[f"GCC-GNU/inclusive_scan/{machine}"] is None
    for case in ("find", "reduce", "sort"):
        assert table5.data[f"ICC-TBB/{case}/B"] is None


def test_bulk_of_grid_within_band(table5):
    """>=85 % of comparable cells within [0.5x, 2x] of the paper."""
    in_band = 0
    total = 0
    for (backend, case), paper in PAPER_TABLE5.items():
        if paper is None:
            continue
        for machine, expected in zip(MACHINES, paper):
            if expected is None:
                continue
            ours = table5.data[f"{backend}/{case}/{machine}"]
            total += 1
            if expected * 0.5 <= ours <= expected * 2.0:
                in_band += 1
    assert in_band / total >= 0.85, f"{in_band}/{total} cells in band"


def test_row_orderings_k1(table5):
    """for_each k1: NVC leads and HPX trails on every machine."""
    for machine in MACHINES:
        row = {
            b: table5.data[f"{b}/for_each_k1/{machine}"]
            for b in ("GCC-TBB", "GCC-GNU", "GCC-HPX", "NVC-OMP")
        }
        assert max(row, key=row.get) == "NVC-OMP"
        assert min(row, key=row.get) == "GCC-HPX"


def test_row_ordering_sort(table5):
    for machine in MACHINES:
        row = {
            b: table5.data[f"{b}/sort/{machine}"]
            for b in ("GCC-TBB", "GCC-GNU", "GCC-HPX", "NVC-OMP")
        }
        assert max(row, key=row.get) == "GCC-GNU"


def test_nvc_scan_never_speeds_up(table5):
    for machine in MACHINES:
        assert table5.data[f"NVC-OMP/inclusive_scan/{machine}"] < 1.2


def test_k1000_exceeds_half_core_count(table5):
    for machine, cores in zip(MACHINES, (32, 64, 128)):
        for backend in ("GCC-TBB", "GCC-GNU", "NVC-OMP"):
            assert table5.data[f"{backend}/for_each_k1000/{machine}"] > cores / 2
