"""Ablation: chunking granularity (DESIGN.md design choice).

The backends differ in scheduling units: OpenMP static (one chunk per
thread), TBB auto_partitioner (a few chunks per thread), HPX fixed fine
grains. This ablation sweeps both dials and shows the trade-off the
models encode: more chunks buy load-balance headroom for *irregular* work
(early-exit find) but cost scheduling overhead on small *regular* work.
"""

import dataclasses

import pytest

from repro import pstl
from repro.backends import get_backend
from repro.execution.context import ExecutionContext
from repro.machines import get_machine
from repro.suite.kernels import listing1_kernel
from repro.types import FLOAT64


def _with_chunks(backend, chunks_per_thread):
    return dataclasses.replace(
        backend, chunks_per_thread=chunks_per_thread, fixed_chunk_elems=0
    )


def _with_grain(backend, grain):
    return dataclasses.replace(backend, fixed_chunk_elems=grain)


def _foreach_seconds(backend, n):
    ctx = ExecutionContext(get_machine("A"), backend, threads=32)
    return pstl.for_each(ctx, ctx.allocate(n, FLOAT64), listing1_kernel(1)).seconds


def _find_total_scanned(backend, n):
    ctx = ExecutionContext(get_machine("A"), backend, threads=32)
    result = pstl.find(ctx, ctx.allocate(n, FLOAT64), 1.0)
    return result.profile.phases[0].total_elems


def test_bench_ablation_chunking(benchmark):
    tbb = get_backend("gcc-tbb")
    result = benchmark.pedantic(
        lambda: {
            c: _foreach_seconds(_with_chunks(tbb, c), 1 << 16) for c in (1, 8, 64)
        },
        rounds=1,
        iterations=1,
    )
    for c, t in sorted(result.items()):
        print(f"for_each_k1 n=2^16, {c} chunks/thread: {t * 1e6:.1f} us")


def test_more_chunks_cost_overhead_on_small_regular_work(benchmark_skipif=None):
    tbb = get_backend("gcc-tbb")
    small = 1 << 14
    t1 = _foreach_seconds(_with_chunks(tbb, 1), small)
    t64 = _foreach_seconds(_with_chunks(tbb, 64), small)
    assert t64 > t1


def test_chunk_count_irrelevant_for_large_regular_work():
    tbb = get_backend("gcc-tbb")
    big = 1 << 30
    t1 = _foreach_seconds(_with_chunks(tbb, 1), big)
    t64 = _foreach_seconds(_with_chunks(tbb, 64), big)
    assert t64 == pytest.approx(t1, rel=0.02)


def test_finer_chunks_reduce_find_overshoot():
    """Early-exit find: coarse chunks make every thread scan half its big
    chunk; fine chunks stop the team closer to the hit."""
    tbb = get_backend("gcc-tbb")
    n = 1 << 26
    coarse = _find_total_scanned(_with_chunks(tbb, 1), n)
    fine = _find_total_scanned(_with_chunks(tbb, 32), n)
    assert fine <= coarse * 1.05


def test_hpx_grain_tradeoff():
    """HPX fixed grains: tiny grains explode the chunk count and pay
    contention-scaled scheduling; huge grains serialise the range."""
    hpx = get_backend("gcc-hpx")
    n = 1 << 24
    tiny = _foreach_seconds(_with_grain(hpx, 512), n)
    default = _foreach_seconds(hpx, n)
    huge = _foreach_seconds(_with_grain(hpx, n), n)  # single task
    assert tiny > default
    assert huge > default


def test_static_partition_matches_tbb_steady_state():
    """For uniform work, static and work-stealing land within 5 %: the
    stealing machinery only pays off on irregular work."""
    tbb = get_backend("gcc-tbb")
    n = 1 << 28
    static = _foreach_seconds(_with_chunks(tbb, 1), n)
    stealing = _foreach_seconds(_with_chunks(tbb, 8), n)
    assert stealing == pytest.approx(static, rel=0.05)
