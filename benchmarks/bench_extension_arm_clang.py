"""Extension bench: the paper's future work, exercised.

Section 6 of the paper: "we would like to expand our benchmark suite, to
support more compilers and backends. Similarly, an extended analysis
could include other architectures, such as ARM processors." This bench
runs both extensions this reproduction ships:

* **Mach ARM** (Ampere Altra, 80 cores, single NUMA node) -- prediction:
  the NUMA effects that dominate the paper's Zen results disappear, and
  memory-bound speedups track the STREAM ratio (~4.9) closely;
* **CLANG-OMP** (libc++ PSTL on OpenMP) -- prediction: between GCC-TBB
  and GCC-GNU on maps, TBB-like on sort.

These are model predictions, not paper reproductions; they are what the
suite says *before* anyone measures the real hardware.
"""

import pytest

from repro.experiments.common import make_ctx, paper_size, seq_baseline_seconds
from repro.experiments.fig1 import allocator_speedup
from repro.machines import get_machine
from repro.suite.cases import get_case
from repro.suite.wrappers import measure_case


def _speedup(machine: str, backend: str, case: str) -> float:
    n = paper_size()
    base = seq_baseline_seconds(machine, case, n)
    return base / measure_case(get_case(case), make_ctx(machine, backend), n)


@pytest.fixture(scope="module")
def arm_speedups():
    return {
        (b, c): _speedup("arm", b, c)
        for b in ("GCC-TBB", "GCC-GNU", "CLANG-OMP")
        for c in ("for_each_k1", "reduce", "sort", "for_each_k1000")
    }


def test_bench_extension_arm(benchmark, arm_speedups):
    result = benchmark.pedantic(
        lambda: _speedup("arm", "GCC-TBB", "reduce"), rounds=1, iterations=1
    )
    print(f"\nARM GCC-TBB reduce speedup: {result:.1f}")
    for key, value in sorted(arm_speedups.items()):
        print(f"ARM {key[0]:10s} {key[1]:16s} {value:6.1f}x")


def test_arm_memory_bound_tracks_stream_ratio(arm_speedups):
    arm = get_machine("arm")
    ratio = arm.ideal_bandwidth_speedup()  # ~4.9
    got = arm_speedups[("GCC-TBB", "reduce")]
    assert 0.5 * ratio < got <= 1.1 * ratio


def test_arm_compute_bound_near_core_count(arm_speedups):
    got = arm_speedups[("GCC-TBB", "for_each_k1000")]
    assert 60 < got <= 81


def test_arm_allocator_effect_absent():
    """Single NUMA node: the headline Fig. 1 effect must vanish."""
    ratio = allocator_speedup("arm", "GCC-TBB", "for_each_k1", threads=80)
    assert ratio == pytest.approx(1.0, abs=0.02)


def test_clang_between_tbb_and_gnu_on_maps():
    times = {
        b: measure_case(
            get_case("for_each_k1"), make_ctx("A", b), paper_size()
        )
        for b in ("GCC-TBB", "GCC-GNU", "CLANG-OMP", "GCC-HPX")
    }
    assert times["CLANG-OMP"] < times["GCC-HPX"]
    assert (
        min(times["GCC-TBB"], times["GCC-GNU"]) * 0.8
        < times["CLANG-OMP"]
        < max(times["GCC-TBB"], times["GCC-GNU"]) * 1.2
    )


def test_clang_not_in_paper_study():
    from repro.backends import STUDY_BACKENDS

    assert "CLANG-OMP" not in STUDY_BACKENDS
