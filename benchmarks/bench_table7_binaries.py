"""Table 7: benchmark binary sizes (paper Section 5.7).

Asserts each modeled size against the paper's within 5 %, plus the
qualitative claims: HPX largest by far, NVC-OMP remarkably small, GNU
roughly doubling the sequential binary.
"""

import pytest

from repro.binaries import binary_size
from repro.experiments.table7 import run_table7
from repro.util.units import MIB

PAPER_TABLE7 = {
    "GCC-SEQ": 2.52,
    "GCC-TBB": 17.21,
    "GCC-GNU": 5.31,
    "GCC-HPX": 61.98,
    "ICC-TBB": 16.64,
    "NVC-OMP": 1.81,
    "NVC-CUDA": 7.80,
}


def test_bench_table7(benchmark):
    result = benchmark.pedantic(run_table7, rounds=1, iterations=1)
    print("\n" + result.rendered)
    assert result.experiment_id == "table7"


@pytest.mark.parametrize("backend,paper_mib", sorted(PAPER_TABLE7.items()))
def test_sizes_match_paper(backend, paper_mib):
    assert binary_size(backend) / MIB == pytest.approx(paper_mib, rel=0.05)


def test_hpx_largest(benchmark_skipif=None):
    sizes = {b: binary_size(b) for b in PAPER_TABLE7}
    assert max(sizes, key=sizes.get) == "GCC-HPX"
    assert sizes["GCC-HPX"] > 55 * MIB


def test_nvc_omp_smallest():
    sizes = {b: binary_size(b) for b in PAPER_TABLE7}
    assert min(sizes, key=sizes.get) == "NVC-OMP"
    assert sizes["NVC-OMP"] < 2 * MIB


def test_gnu_doubles_sequential():
    assert 1.8 < binary_size("GCC-GNU") / binary_size("GCC-SEQ") < 2.4
