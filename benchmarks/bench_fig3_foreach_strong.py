"""Figure 3: for_each strong scaling (paper Section 5.2).

Asserts: at k_it = 1, NVC-OMP reaches the best speedup and HPX is nearly
flat past 16 threads; at k_it = 1000, everyone is near-ideal except HPX,
and on Mach C the parallel efficiencies land in the paper's 66 % (HPX) vs
79-83 % (others) bands.

Also runnable as a script to capture an execution trace of the sweep
(see docs/OBSERVABILITY.md)::

    python benchmarks/bench_fig3_foreach_strong.py --trace fig3.json
"""

import sys

if __name__ == "__main__":  # allow running without an installed repro
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import pytest

from repro.experiments.fig3 import foreach_scaling_curve, run_fig3


@pytest.fixture(scope="module")
def curves():
    out = {}
    for machine in ("A", "B", "C"):
        for backend in ("GCC-TBB", "GCC-GNU", "GCC-HPX", "NVC-OMP"):
            for k in (1, 1000):
                out[(machine, backend, k)] = foreach_scaling_curve(
                    machine, backend, k
                )
    return out


def test_bench_fig3(benchmark):
    result = benchmark.pedantic(
        run_fig3, kwargs=dict(machines=("A",)), rounds=1, iterations=1
    )
    print("\n" + result.rendered)
    assert result.experiment_id == "fig3"


def test_speedup_monotone_for_k1000(curves):
    for machine in ("A", "B", "C"):
        s = curves[(machine, "GCC-TBB", 1000)].speedups()
        assert all(b >= a * 0.98 for a, b in zip(s, s[1:]))


def test_mach_c_k1000_efficiency_bands(curves):
    """Paper: HPX 84.8 (66 %) vs others 102.0-106.7 (79-83 %) at 128 threads."""
    for backend in ("GCC-TBB", "GCC-GNU", "NVC-OMP"):
        top = curves[("C", backend, 1000)].speedups()[-1]
        assert 90 <= top <= 120, (backend, top)
    hpx = curves[("C", "GCC-HPX", 1000)].speedups()[-1]
    assert 70 <= hpx <= 95
    assert hpx < curves[("C", "GCC-TBB", 1000)].speedups()[-1]


def test_nvc_best_speedup_at_k1(curves):
    for machine in ("A", "B", "C"):
        best = {
            b: curves[(machine, b, 1)].max_speedup()
            for b in ("GCC-TBB", "GCC-GNU", "GCC-HPX", "NVC-OMP")
        }
        assert max(best, key=best.get) == "NVC-OMP"


def test_hpx_flat_beyond_16_threads_k1(curves):
    """Paper: HPX speedup almost constant past 16 threads."""
    for machine in ("B", "C"):
        curve = curves[(machine, "GCC-HPX", 1)]
        by_threads = dict(zip(curve.threads, curve.speedups()))
        max_threads = curve.threads[-1]
        assert by_threads[max_threads] < by_threads[16] * 2.0


def test_k1_speedups_far_from_ideal(curves):
    """Paper: low intensity leaves speedups well under the core count."""
    for machine, cores in (("A", 32), ("B", 64), ("C", 128)):
        top = curves[(machine, "GCC-TBB", 1)].max_speedup()
        assert top < cores * 0.75


def main(argv=None) -> int:
    """Trace one fig3 strong-scaling curve and optionally export it.

    ``--trace out.json`` writes a Chrome trace-event file (open it in
    Perfetto): one ``for_each`` call span per thread count, each holding
    its phase spans and one lane per simulated thread.
    """
    import argparse

    from repro.trace import Tracer, use_tracer, write_chrome_trace

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--machine", default="A", help="machine preset (A/B/C)")
    parser.add_argument("--backend", default="GCC-TBB", help="parallel backend")
    parser.add_argument("--k", type=int, default=1000, choices=(1, 1000),
                        help="kernel intensity k_it")
    parser.add_argument("--size", type=int, default=30,
                        help="log2 problem size (paper uses 30)")
    parser.add_argument("--trace", metavar="OUT.json", default=None,
                        help="write a Chrome trace-event file of the sweep")
    args = parser.parse_args(argv)

    from repro.errors import ReproError

    tracer = Tracer()
    try:
        with use_tracer(tracer):
            curve = foreach_scaling_curve(
                args.machine, args.backend, args.k, args.size
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for threads, speedup in zip(curve.threads, curve.speedups()):
        print(f"t={threads:4d}  speedup={speedup:7.2f}")
    if args.trace:
        n_spans = write_chrome_trace(tracer, args.trace)
        print(f"trace: {n_spans} spans -> {args.trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
