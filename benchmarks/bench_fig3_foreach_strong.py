"""Figure 3: for_each strong scaling (paper Section 5.2).

Asserts: at k_it = 1, NVC-OMP reaches the best speedup and HPX is nearly
flat past 16 threads; at k_it = 1000, everyone is near-ideal except HPX,
and on Mach C the parallel efficiencies land in the paper's 66 % (HPX) vs
79-83 % (others) bands.
"""

import pytest

from repro.experiments.fig3 import foreach_scaling_curve, run_fig3


@pytest.fixture(scope="module")
def curves():
    out = {}
    for machine in ("A", "B", "C"):
        for backend in ("GCC-TBB", "GCC-GNU", "GCC-HPX", "NVC-OMP"):
            for k in (1, 1000):
                out[(machine, backend, k)] = foreach_scaling_curve(
                    machine, backend, k
                )
    return out


def test_bench_fig3(benchmark):
    result = benchmark.pedantic(
        run_fig3, kwargs=dict(machines=("A",)), rounds=1, iterations=1
    )
    print("\n" + result.rendered)
    assert result.experiment_id == "fig3"


def test_speedup_monotone_for_k1000(curves):
    for machine in ("A", "B", "C"):
        s = curves[(machine, "GCC-TBB", 1000)].speedups()
        assert all(b >= a * 0.98 for a, b in zip(s, s[1:]))


def test_mach_c_k1000_efficiency_bands(curves):
    """Paper: HPX 84.8 (66 %) vs others 102.0-106.7 (79-83 %) at 128 threads."""
    for backend in ("GCC-TBB", "GCC-GNU", "NVC-OMP"):
        top = curves[("C", backend, 1000)].speedups()[-1]
        assert 90 <= top <= 120, (backend, top)
    hpx = curves[("C", "GCC-HPX", 1000)].speedups()[-1]
    assert 70 <= hpx <= 95
    assert hpx < curves[("C", "GCC-TBB", 1000)].speedups()[-1]


def test_nvc_best_speedup_at_k1(curves):
    for machine in ("A", "B", "C"):
        best = {
            b: curves[(machine, b, 1)].max_speedup()
            for b in ("GCC-TBB", "GCC-GNU", "GCC-HPX", "NVC-OMP")
        }
        assert max(best, key=best.get) == "NVC-OMP"


def test_hpx_flat_beyond_16_threads_k1(curves):
    """Paper: HPX speedup almost constant past 16 threads."""
    for machine in ("B", "C"):
        curve = curves[(machine, "GCC-HPX", 1)]
        by_threads = dict(zip(curve.threads, curve.speedups()))
        max_threads = curve.threads[-1]
        assert by_threads[max_threads] < by_threads[16] * 2.0


def test_k1_speedups_far_from_ideal(curves):
    """Paper: low intensity leaves speedups well under the core count."""
    for machine, cores in (("A", 32), ("B", 64), ("C", 128)):
        top = curves[(machine, "GCC-TBB", 1)].max_speedup()
        assert top < cores * 0.75
