"""Table 6: max threads with >= 70 % parallel efficiency (paper Section 5.7).

Asserts the paper's takeaways: backends typically cannot use more than
~16 threads efficiently (the per-NUMA-node core count); the compute-bound
for_each k_it=1000 stays efficient at full machine width; NVC-OMP's
sequential-fallback scan reports 1.
"""

import pytest

from repro.experiments.table6 import run_table6


@pytest.fixture(scope="module")
def table6():
    result = run_table6()
    print("\n" + result.rendered)
    return result


def test_bench_table6(benchmark):
    result = benchmark.pedantic(
        run_table6, kwargs=dict(size_exp=24), rounds=1, iterations=1
    )
    assert result.experiment_id == "table6"


def test_k1000_full_width_everywhere(table6):
    for machine, cores in (("A", 32), ("B", 64), ("C", 128)):
        for backend in ("GCC-TBB", "GCC-GNU", "NVC-OMP"):
            assert table6.data[f"{backend}/for_each_k1000/{machine}"] == cores


def test_nvc_scan_is_one(table6):
    for machine in ("A", "B", "C"):
        assert table6.data[f"NVC-OMP/inclusive_scan/{machine}"] == 1


def test_gnu_scan_na(table6):
    for machine in ("A", "B", "C"):
        assert table6.data[f"GCC-GNU/inclusive_scan/{machine}"] is None


def test_memory_bound_rarely_past_16(table6):
    """Paper: 'backends typically fail to handle more than 16 threads
    efficiently', matching the cores per NUMA node."""
    over_16 = 0
    total = 0
    for machine in ("A", "B", "C"):
        for backend in ("GCC-TBB", "GCC-GNU", "GCC-HPX", "NVC-OMP"):
            for case in ("find", "inclusive_scan", "reduce", "sort"):
                v = table6.data[f"{backend}/{case}/{machine}"]
                if v is None:
                    continue
                total += 1
                if v > 16:
                    over_16 += 1
    assert over_16 / total < 0.35


def test_values_are_measured_thread_counts(table6):
    valid = {1, 2, 4, 8, 16, 32, 64, 128}
    for key, v in table6.data.items():
        if v is not None:
            assert v in valid, (key, v)


def test_hpx_never_efficient_at_full_width(table6):
    for machine, cores in (("A", 32), ("B", 64), ("C", 128)):
        for case in ("find", "reduce", "sort", "inclusive_scan"):
            v = table6.data[f"GCC-HPX/{case}/{machine}"]
            assert v is None or v < cores
