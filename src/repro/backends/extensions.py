"""Backend extensions beyond the paper: LLVM's parallel STL on OpenMP.

The paper's future work names "support [for] more compilers and backends"
(Section 6). This module adds **CLANG-OMP**: clang++ with libc++'s PSTL
configured for the OpenMP backend. Its parameters are set by analogy --
LLVM's PSTL shares the oneDPL/PSTL code structure with GCC's TBB build
(so similar per-element bookkeeping) but schedules via OpenMP static
loops like GNU (so GNU-like fork costs and placement behaviour). It is
**not** part of the paper's study: it is excluded from STUDY_BACKENDS and
from every paper-artifact bench, and appears only in the ablation/
extension benches.
"""

from __future__ import annotations

from repro.backends.base import Backend, SortStrategy
from repro.backends.registry import register_backend

__all__ = ["clang_omp"]


def clang_omp() -> Backend:
    """clang++ + libc++ PSTL with the OpenMP backend (extension)."""
    return Backend(
        name="CLANG-OMP",
        compiler="clang++",
        runtime="LLVM-OMP",
        fork_base=7e-6,
        fork_per_thread=0.2e-6,
        sched_per_chunk=0.1e-6,
        chunks_per_thread=1,  # OpenMP static scheduling
        default_instr_overhead=2.5,
        instr_overhead={
            "for_each": 5.0,  # PSTL-layer bookkeeping, leaner than GNU's
            "reduce": 0.6,
            "find": 0.8,
            "inclusive_scan": 2.2,
            "sort": 2.5,
        },
        default_bw_efficiency=0.83,
        bw_efficiencies={"find": 0.95, "sort": 0.52},
        default_traffic_factor=1.12,
        traffic_factors={"for_each": 1.25, "reduce": 1.03, "find": 1.03},
        default_numa_quality=0.92,
        numa_qualities={"find": 0.97, "reduce": 0.97, "inclusive_scan": 0.99},
        seq_fallback_thresholds={"sort": 512},
        sort_strategy=SortStrategy.PARALLEL_QUICKSORT,
    )


register_backend(clang_omp, "clang-omp", "llvm-omp")
