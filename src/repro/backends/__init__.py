"""Backend runtime models for the compiler/runtime pairs of the study."""

from repro.backends.base import Backend, SortStrategy, Support
from repro.backends.registry import (
    PARALLEL_CPU_BACKENDS,
    STUDY_BACKENDS,
    backend_names,
    get_backend,
    register_backend,
)

# Extensions beyond the paper (registers "clang-omp"; see the module doc).
from repro.backends import extensions as _extensions  # noqa: F401

__all__ = [
    "Backend",
    "SortStrategy",
    "Support",
    "PARALLEL_CPU_BACKENDS",
    "STUDY_BACKENDS",
    "backend_names",
    "get_backend",
    "register_backend",
]
