"""Backend model base: a data-driven description of a parallel STL runtime.

Each compiler+runtime combination the paper studies (GCC-TBB, GCC-GNU,
GCC-HPX, ICC-TBB, NVC-OMP, NVC-CUDA, plus the sequential GCC baseline) is
an instance of :class:`Backend` with calibrated parameters. Every knob
corresponds to a mechanism the paper names:

* fork/scheduling overheads -- why sequential wins below ~2^10..2^16
  elements (Figs 2, 4, 6);
* per-element runtime instructions -- Tables 3 and 4;
* bandwidth efficiency / NUMA quality -- why speedups saturate (Figs 3-7);
* sequential fallback thresholds -- GNU below 2^10 (for_each) and 2^9
  (find), TBB sort below 2^9, HPX sort at/below 2^15;
* capability gaps -- GNU has no parallel scan, NVC-OMP's scan is
  sequential (Section 5.4);
* vector widths -- ICC and HPX execute ``reduce`` with 256-bit packed FP
  (Table 4);
* scalability model -- HPX's task-queue contention keeps its speedup
  nearly flat past 16 threads (Fig. 3).
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.errors import BackendError
from repro.execution.partition import (
    BlockCyclicPartitioner,
    Partition,
    Partitioner,
    StaticPartitioner,
)
from repro.execution.policy import ExecutionPolicy

__all__ = ["Support", "SortStrategy", "Backend"]


class Support(enum.Enum):
    """How a backend implements a given algorithm."""

    PARALLEL = "parallel"
    SEQUENTIAL_FALLBACK = "sequential-fallback"
    UNSUPPORTED = "unsupported"


class SortStrategy(enum.Enum):
    """Parallel sort structure; drives the sort work profile."""

    #: TBB-style parallel quicksort: recursive partition, subranges in
    #: parallel; partition passes stream DRAM until subranges fit cache.
    PARALLEL_QUICKSORT = "parallel-quicksort"
    #: GNU multiway mergesort: cache-sized sorted runs + one k-way merge;
    #: two DRAM passes total, NUMA-friendly.
    MULTIWAY_MERGESORT = "multiway-mergesort"
    #: Task-based quicksort with small tasks (HPX).
    TASK_QUICKSORT = "task-quicksort"
    #: Quicksort whose top-level partition passes are serial (NVC-OMP).
    SERIAL_PARTITION_QUICKSORT = "serial-partition-quicksort"
    #: Sequential introsort.
    SEQUENTIAL = "sequential"


def _freeze(mapping: Mapping[str, object] | None) -> Mapping[str, object]:
    return MappingProxyType(dict(mapping or {}))


@dataclass(frozen=True)
class Backend:
    """A parallel STL backend's calibrated runtime model.

    Per-algorithm mappings fall back to the ``default_*`` value when the
    algorithm family is absent.
    """

    name: str
    compiler: str
    runtime: str
    is_sequential: bool = False
    affinity_strategy: str = "scatter"

    # --- fork/join & scheduling -------------------------------------------------
    fork_base: float = 8e-6
    fork_per_thread: float = 0.25e-6
    join_base: float = 2e-6
    join_per_thread: float = 0.1e-6
    sched_per_chunk: float = 0.4e-6
    #: Task-queue contention: scheduling cost is multiplied by
    #: ``1 + (threads / contention_threads) ** contention_exp`` when
    #: ``contention_exp > 0`` (HPX).
    contention_exp: float = 0.0
    contention_threads: int = 16
    sync_base: float = 0.05e-6
    sync_per_thread: float = 0.002e-6

    # --- chunking ----------------------------------------------------------------
    chunks_per_thread: int = 1
    #: Fixed chunk size in elements (HPX-style task grains); 0 = derive
    #: from chunks_per_thread.
    fixed_chunk_elems: int = 0
    max_chunks: int = 1 << 20

    # --- compute model -----------------------------------------------------------
    default_instr_overhead: float = 2.0
    instr_overhead: Mapping[str, float] = field(default_factory=dict)
    #: Extra per-element instructions per NUMA node of the machine beyond
    #: the first (captures runtimes whose bookkeeping grows with topology).
    instr_overhead_per_node: float = 0.0
    default_ipc_factor: float = 1.0
    ipc_factors: Mapping[str, float] = field(default_factory=dict)
    #: Effective-parallelism model: threads beyond ``eff_thread_cap``
    #: contribute only ``(p - cap) ** eff_thread_exp`` additional workers.
    eff_thread_cap: int = 0
    eff_thread_exp: float = 1.0

    # --- memory model ------------------------------------------------------------
    default_bw_efficiency: float = 0.85
    bw_efficiencies: Mapping[str, float] = field(default_factory=dict)
    #: Aggregate-bandwidth decay with active NUMA node count: caps are
    #: multiplied by ``active_nodes ** -numa_bw_decay``. Zero for runtimes
    #: that manage multi-node traffic well; ~0.5 for HPX, whose measured
    #: bandwidth (Table 3: 75.6 GiB/s vs. 104-119 for the others) and flat
    #: scaling past one NUMA node both point at cross-node traffic loss.
    numa_bw_decay: float = 0.0
    default_numa_quality: float = 0.90
    numa_qualities: Mapping[str, float] = field(default_factory=dict)
    default_traffic_factor: float = 1.15
    traffic_factors: Mapping[str, float] = field(default_factory=dict)

    # --- codegen -----------------------------------------------------------------
    vector_widths: Mapping[str, int] = field(default_factory=dict)
    default_seq_codegen: float = 1.0
    seq_codegen: Mapping[str, float] = field(default_factory=dict)

    # --- capabilities ------------------------------------------------------------
    seq_fallback_thresholds: Mapping[str, int] = field(default_factory=dict)
    support_overrides: Mapping[str, Support] = field(default_factory=dict)
    sort_strategy: SortStrategy = SortStrategy.PARALLEL_QUICKSORT

    def __post_init__(self) -> None:
        for fname in (
            "instr_overhead",
            "ipc_factors",
            "bw_efficiencies",
            "numa_qualities",
            "traffic_factors",
            "vector_widths",
            "seq_codegen",
            "seq_fallback_thresholds",
            "support_overrides",
        ):
            object.__setattr__(self, fname, _freeze(getattr(self, fname)))
        if not 0.0 < self.default_bw_efficiency <= 1.0:
            raise BackendError("default_bw_efficiency must be in (0, 1]")
        if not 0.0 < self.default_numa_quality <= 1.0:
            raise BackendError("default_numa_quality must be in (0, 1]")
        if self.chunks_per_thread <= 0:
            raise BackendError("chunks_per_thread must be positive")
        if self.fixed_chunk_elems < 0:
            raise BackendError("fixed_chunk_elems must be non-negative")

    def __hash__(self) -> int:
        """Value hash matching dataclass equality.

        The generated hash would choke on the mapping-proxy fields, but
        backends need to be dict/``lru_cache`` keys (the campaign
        executor's wave path memoizes contexts and profiles by resolved
        model objects, so a re-registered or perturbed model can never
        be served stale). Mappings are folded as sorted item tuples.
        The fold is computed once and memoized on the (frozen) instance:
        the wave executor hashes each model on every cache lookup, so a
        recomputed fold would tax the hot path it exists to serve.
        """
        cached = self.__dict__.get("_hash")
        if cached is not None:
            return cached
        parts = []
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Mapping):
                value = tuple(sorted(value.items()))
            parts.append(value)
        result = hash(tuple(parts))
        object.__setattr__(self, "_hash", result)
        return result

    # --- BackendModel protocol ----------------------------------------------------
    def fork_overhead(self, threads: int) -> float:
        """Seconds to open a parallel region."""
        if self.is_sequential or threads <= 1:
            return 0.0
        return self.fork_base + self.fork_per_thread * threads

    def join_overhead(self, threads: int) -> float:
        """Seconds to barrier/close a parallel region."""
        if self.is_sequential or threads <= 1:
            return 0.0
        return self.join_base + self.join_per_thread * threads

    def sched_overhead(self, chunks: int, threads: int) -> float:
        """Scheduling cost for ``chunks`` units, with optional contention."""
        if chunks <= 0:
            return 0.0
        cost = chunks * self.sched_per_chunk
        if self.contention_exp > 0.0 and threads > 1:
            cost *= 1.0 + (threads / self.contention_threads) ** self.contention_exp
        return cost

    def sync_cost(self, threads: int) -> float:
        """Cost of one synchronisation event."""
        return self.sync_base + self.sync_per_thread * threads

    def instr_overhead_per_elem(self, alg: str) -> float:
        """Runtime bookkeeping instructions per element for ``alg``."""
        base = float(self.instr_overhead.get(alg, self.default_instr_overhead))
        return base

    def instr_overhead_for(self, alg: str, numa_nodes: int) -> float:
        """Per-element overhead including the per-NUMA-node component."""
        return self.instr_overhead_per_elem(alg) + self.instr_overhead_per_node * max(
            0, numa_nodes - 1
        )

    def ipc_factor(self, alg: str) -> float:
        """Relative IPC for ``alg``."""
        return float(self.ipc_factors.get(alg, self.default_ipc_factor))

    def bw_efficiency(self, alg: str) -> float:
        """Sustained fraction of peak DRAM bandwidth for ``alg``."""
        return float(self.bw_efficiencies.get(alg, self.default_bw_efficiency))

    def bw_efficiency_at(self, alg: str, active_nodes: int) -> float:
        """Bandwidth efficiency derated by the NUMA decay model."""
        eff = self.bw_efficiency(alg)
        if self.numa_bw_decay > 0.0 and active_nodes > 1:
            eff *= active_nodes ** (-self.numa_bw_decay)
        return max(1e-6, min(1.0, eff))

    def numa_quality(self, alg: str) -> float:
        """Locality achieved under matched first-touch placement."""
        return float(self.numa_qualities.get(alg, self.default_numa_quality))

    def traffic_factor(self, alg: str) -> float:
        """DRAM traffic multiplier for ``alg``."""
        return float(self.traffic_factors.get(alg, self.default_traffic_factor))

    def vector_width(self, alg: str, policy: ExecutionPolicy) -> int:
        """SIMD width in bits used for ``alg`` under ``policy`` (0=scalar)."""
        del policy  # compilers vectorise under par as well as par_unseq
        return int(self.vector_widths.get(alg, 0))

    def seq_codegen_factor(self, alg: str) -> float:
        """Sequential-code slowdown vs. the GCC -O3 baseline."""
        return float(self.seq_codegen.get(alg, self.default_seq_codegen))

    # --- capability / dispatch helpers ---------------------------------------------
    def support(self, alg: str) -> Support:
        """Whether ``alg`` runs parallel, falls back, or is missing."""
        if self.is_sequential:
            return Support.SEQUENTIAL_FALLBACK
        return self.support_overrides.get(alg, Support.PARALLEL)

    def seq_fallback_threshold(self, alg: str) -> int:
        """Problem size at/below which the backend runs sequentially."""
        return int(self.seq_fallback_thresholds.get(alg, 0))

    def runs_parallel(self, alg: str, n: int, threads: int) -> bool:
        """Dispatch decision for one invocation."""
        if self.is_sequential or threads <= 1:
            return False
        if self.support(alg) is not Support.PARALLEL:
            return False
        return n > self.seq_fallback_threshold(alg)

    def effective_threads(self, threads: int) -> float:
        """Workers that contribute compute after the scalability cap."""
        if threads <= 1:
            return float(threads)
        if self.eff_thread_cap <= 0 or threads <= self.eff_thread_cap:
            return float(threads)
        return self.eff_thread_cap + (threads - self.eff_thread_cap) ** self.eff_thread_exp

    def partitioner(self) -> Partitioner:
        """Partitioner matching this backend's scheduling style."""
        if self.fixed_chunk_elems:
            return _FixedGrainPartitioner(self.fixed_chunk_elems, self.max_chunks)
        if self.chunks_per_thread <= 1:
            return StaticPartitioner()
        return BlockCyclicPartitioner(chunks_per_thread=self.chunks_per_thread)

    def make_partition(self, n: int, threads: int) -> Partition:
        """Partition [0, n) the way this backend's runtime would."""
        return self.partitioner().partition(n, threads)

    def num_chunks(self, n: int, threads: int) -> int:
        """Scheduling-unit count without materialising the partition."""
        if n <= 0:
            return 0
        if self.fixed_chunk_elems:
            return min(self.max_chunks, max(1, -(-n // self.fixed_chunk_elems)))
        return min(n, threads * self.chunks_per_thread)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


class _FixedGrainPartitioner(Partitioner):
    """Fixed-size grains dealt round-robin (HPX task granularity)."""

    name = "fixed-grain"

    def __init__(self, grain: int, max_chunks: int) -> None:
        if grain <= 0:
            raise BackendError("grain must be positive")
        self.grain = grain
        self.max_chunks = max_chunks

    def partition(self, n: int, threads: int) -> Partition:
        self._check(n, threads)
        from repro.execution.partition import Chunk

        parts = min(self.max_chunks, max(1, -(-n // self.grain))) if n else 1
        base, extra = divmod(n, parts)
        chunks = []
        start = 0
        for i in range(parts):
            size = base + (1 if i < extra else 0)
            chunks.append(
                Chunk(index=i, start=start, stop=start + size, thread=i % threads)
            )
            start += size
        return Partition(n=n, threads=threads, chunks=tuple(chunks), strategy=self.name)
