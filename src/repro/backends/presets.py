"""The seven backends of the paper's study, with calibrated models.

Calibration sources, per knob:

* per-element instruction overheads -- Tables 3 and 4 (instructions per
  element = column value / (100 calls x 2^30 elements));
* bandwidth efficiencies -- Table 3's measured bandwidths / the 135 GB/s
  STREAM peak of Mach A;
* sequential fallback thresholds -- Sections 5.2 (GNU for_each < 2^10),
  5.3 (GNU find < 2^9), 5.6 (TBB sort <= 2^9, HPX sort <= 2^15);
* capability gaps -- Section 5.4 (GNU: no parallel inclusive_scan;
  NVC-OMP: scan falls back to sequential);
* vector widths -- Table 4 (ICC and HPX execute reduce as 256-bit packed);
* fork/scheduling costs -- chosen to put the sequential/parallel crossover
  near the paper's 2^10..2^16 window (Figs 2, 4, 6);
* HPX contention/decay -- Fig. 3 (flat speedup past 16 threads) and
  Table 3 (2.2x instructions, 75.6 GiB/s bandwidth).
"""

from __future__ import annotations

from repro.backends.base import Backend, SortStrategy, Support

__all__ = [
    "gcc_seq",
    "gcc_tbb",
    "icc_tbb",
    "gcc_gnu",
    "gcc_hpx",
    "nvc_omp",
    "nvc_cuda",
]

#: Algorithm families that scan-like capability gaps apply to.
_SCAN_ALGS = (
    "inclusive_scan",
    "exclusive_scan",
    "transform_inclusive_scan",
    "transform_exclusive_scan",
)


def gcc_seq() -> Backend:
    """GCC -O3 sequential build: the paper's Table 5 baseline."""
    return Backend(
        name="GCC-SEQ",
        compiler="g++",
        runtime="seq",
        is_sequential=True,
        default_instr_overhead=0.0,
        default_traffic_factor=1.0,
        default_bw_efficiency=1.0,
        default_numa_quality=1.0,
        sort_strategy=SortStrategy.SEQUENTIAL,
    )


def gcc_tbb() -> Backend:
    """GCC's parallel STL on Intel TBB (libstdc++ PSTL)."""
    return Backend(
        name="GCC-TBB",
        compiler="g++",
        runtime="TBB",
        fork_base=10e-6,
        fork_per_thread=0.3e-6,
        sched_per_chunk=0.05e-6,
        chunks_per_thread=8,  # auto_partitioner steady state
        default_instr_overhead=2.0,
        instr_overhead={
            "for_each": 4.0,  # Table 3: 1.72T/(100*2^30) = 16 = 12 base + 4
            "reduce": 0.0,  # Table 4: 1.76/elem = 0.75 loop + 1 FP scalar
            "find": 0.5,
            "inclusive_scan": 2.0,
            "sort": 2.0,
        },
        default_bw_efficiency=0.80,  # Table 3: 107.6 / 135
        bw_efficiencies={"find": 0.95, "reduce": 0.85, "inclusive_scan": 0.72, "sort": 0.50},
        default_traffic_factor=1.15,
        traffic_factors={
            "for_each": 1.33,  # Table 3: 2128 GiB / 1600 GiB nominal
            "reduce": 1.05,
            "find": 1.05,
            "inclusive_scan": 0.95,  # streaming stores skip write-allocate
            "sort": 1.10,
        },
        default_numa_quality=0.90,
        numa_qualities={
            "for_each": 0.93,
            "find": 0.98,  # read-only scans keep locality on 8-node parts
            "reduce": 0.98,
            "inclusive_scan": 0.99,
            "sort": 0.97,
        },
        seq_fallback_thresholds={"sort": 512},  # Section 5.6
        sort_strategy=SortStrategy.PARALLEL_QUICKSORT,
    )


def icc_tbb() -> Backend:
    """Intel oneAPI icpx with TBB: leanest codegen, vectorised reductions."""
    return Backend(
        name="ICC-TBB",
        compiler="icpx",
        runtime="TBB",
        fork_base=10e-6,
        fork_per_thread=0.3e-6,
        sched_per_chunk=0.05e-6,
        chunks_per_thread=8,
        default_instr_overhead=1.5,
        instr_overhead={
            "for_each": 2.5,  # Table 3: 1.55T -> 14.5/elem, the leanest
            "reduce": 0.0,  # Table 4: 107G/2^30/100 ~ 1/elem, pure kernel
            "find": 0.4,
            "inclusive_scan": 1.8,
            "sort": 2.0,
        },
        default_bw_efficiency=0.77,  # Table 3: 104.5 / 135
        bw_efficiencies={"find": 0.95, "reduce": 0.85, "inclusive_scan": 0.72, "sort": 0.48},
        default_traffic_factor=1.15,
        traffic_factors={
            "for_each": 1.34,  # Table 3: 2151 GiB
            "reduce": 1.05,
            "find": 1.05,
            "inclusive_scan": 0.95,
            "sort": 1.10,
        },
        default_numa_quality=0.90,
        numa_qualities={
            "for_each": 0.93,
            "find": 0.98,
            "reduce": 0.98,
            "inclusive_scan": 0.99,
            "sort": 0.97,
        },
        vector_widths={"reduce": 256, "transform_reduce": 256},  # Table 4
        seq_fallback_thresholds={"sort": 512},
        sort_strategy=SortStrategy.PARALLEL_QUICKSORT,
    )


def gcc_gnu() -> Backend:
    """GNU libstdc++ parallel mode (MCSTL lineage) on OpenMP."""
    return Backend(
        name="GCC-GNU",
        compiler="g++",
        runtime="GOMP",
        fork_base=6e-6,
        fork_per_thread=0.2e-6,
        sched_per_chunk=0.3e-6,
        chunks_per_thread=1,  # schedule(static)
        default_instr_overhead=2.0,
        instr_overhead={
            "for_each": 10.5,  # Table 3: 2.41T -> 22.5/elem
            "reduce": 0.35,  # Table 4: 2.12/elem (accumulate substitute)
            "find": 1.0,
            "sort": 4.0,  # multiway-merge bookkeeping
        },
        default_bw_efficiency=0.86,  # Table 3: 116.6 / 135
        bw_efficiencies={"find": 0.95, "sort": 0.80},
        default_traffic_factor=1.10,
        traffic_factors={
            "for_each": 1.20,  # Table 3: 1925 GiB
            "reduce": 1.00,
            "find": 1.02,
            "sort": 1.00,
        },
        default_numa_quality=0.90,
        numa_qualities={
            "for_each": 0.93,
            "find": 0.95,
            "reduce": 0.98,
            "sort": 0.995,  # Section 5.6: best thread/data placement for sort
        },
        seq_fallback_thresholds={
            "for_each": 1 << 10,  # Section 5.2
            "find": 1 << 9,  # Section 5.3
            "sort": 1 << 9,
        },
        support_overrides={alg: Support.UNSUPPORTED for alg in _SCAN_ALGS},
        sort_strategy=SortStrategy.MULTIWAY_MERGESORT,
    )


def gcc_hpx() -> Backend:
    """HPX's parallel algorithms on its futures-based task runtime."""
    return Backend(
        name="GCC-HPX",
        compiler="g++",
        runtime="HPX",
        affinity_strategy="compact",  # HPX binds its worker pool densely
        fork_base=30e-6,
        fork_per_thread=1.0e-6,
        sched_per_chunk=0.15e-6,
        fixed_chunk_elems=32768,  # fine task grains
        contention_exp=1.3,
        contention_threads=16,

        default_instr_overhead=8.0,
        instr_overhead={
            "for_each": 23.8,  # Table 3: 3.83T -> 35.8/elem
            "reduce": 10.0,  # Table 4 direction (largest by far)
            "find": 2.0,
            "inclusive_scan": 8.0,
            "sort": 8.0,
        },
        instr_overhead_per_node=1.0,
        default_ipc_factor=0.9,  # pointer-heavy future/scheduler code
        default_bw_efficiency=0.70,
        bw_efficiencies={"for_each": 0.62, "reduce": 0.80, "find": 0.95},
        numa_bw_decay=0.5,  # Table 3: 75.6 GiB/s; Fig 3: flat past 1 node
        default_traffic_factor=1.10,
        traffic_factors={"for_each": 1.16, "reduce": 1.05},
        default_numa_quality=0.70,
        numa_qualities={
            "reduce": 0.80,
            "find": 0.85,
            "inclusive_scan": 0.97,
            "sort": 0.90,
        },
        vector_widths={"reduce": 256, "transform_reduce": 256},  # Table 4
        seq_fallback_thresholds={"sort": 1 << 15},  # Section 5.6
        sort_strategy=SortStrategy.TASK_QUICKSORT,
    )


def nvc_omp() -> Backend:
    """NVIDIA HPC SDK nvc++ with -stdpar=multicore (OpenMP/Thrust)."""
    return Backend(
        name="NVC-OMP",
        compiler="nvc++",
        runtime="NVOMP",
        fork_base=4e-6,
        fork_per_thread=0.1e-6,
        sched_per_chunk=0.2e-6,
        chunks_per_thread=1,
        default_instr_overhead=3.0,
        instr_overhead={
            "for_each": 8.9,  # Table 3: 2.24T -> 20.9/elem
            "reduce": 1.0,  # Table 4: 2.76/elem
            "find": 1.5,
            "sort": 5.0,
        },
        default_ipc_factor=1.1,  # simple streaming codegen sustains high IPC
        default_bw_efficiency=0.88,  # Table 3: 119.1 / 135 (the best)
        bw_efficiencies={"find": 0.95, "sort": 0.55},
        default_traffic_factor=1.08,
        traffic_factors={
            "for_each": 1.10,  # Table 3: 1762 GiB (the leanest)
            "reduce": 1.02,
            "find": 1.02,
        },
        default_numa_quality=0.92,
        numa_qualities={
            "for_each": 0.96,  # Thrust's static map keeps pages local...
            "find": 0.85,  # ...but its find cancellation thrashes nodes
            "reduce": 0.985,
        },
        seq_codegen={"reduce": 1.25},  # Section 5.5: weaker sequential code
        support_overrides={alg: Support.SEQUENTIAL_FALLBACK for alg in _SCAN_ALGS},
        sort_strategy=SortStrategy.SERIAL_PARTITION_QUICKSORT,
        seq_fallback_thresholds={"sort": 512},
    )


def nvc_cuda() -> Backend:
    """NVIDIA HPC SDK nvc++ with -stdpar=gpu (Thrust/CUDA).

    The CPU-side knobs are irrelevant; GPU invocations are costed by
    ``repro.sim.gpu``. The backend object still participates in dispatch
    (capability checks, names, binary sizes).
    """
    return Backend(
        name="NVC-CUDA",
        compiler="nvc++",
        runtime="CUDA",
        fork_base=20e-6,  # kernel-launch scale; actual cost in sim.gpu
        default_instr_overhead=0.0,
        default_traffic_factor=1.0,
        sort_strategy=SortStrategy.PARALLEL_QUICKSORT,
    )
