"""Backend lookup by name ("GCC-TBB", "gcc-tbb", "nvc-omp"...)."""

from __future__ import annotations

from typing import Callable

from repro.backends.base import Backend
from repro.backends import presets
from repro.errors import UnknownBackendError

__all__ = [
    "get_backend",
    "backend_names",
    "register_backend",
    "PARALLEL_CPU_BACKENDS",
    "STUDY_BACKENDS",
]

_FACTORIES: dict[str, Callable[[], Backend]] = {}

#: The five parallel CPU backends of the paper's study, in table order.
PARALLEL_CPU_BACKENDS = ("GCC-TBB", "GCC-GNU", "GCC-HPX", "ICC-TBB", "NVC-OMP")
#: Study backends incl. the sequential baseline.
STUDY_BACKENDS = ("GCC-SEQ",) + PARALLEL_CPU_BACKENDS


def _normalize(name: str) -> str:
    return name.strip().lower().replace("_", "-").replace(" ", "-")


def register_backend(factory: Callable[[], Backend], *names: str) -> None:
    """Register a backend factory under one or more lookup names."""
    if not names:
        raise ValueError("at least one name is required")
    for name in names:
        key = _normalize(name)
        if key in _FACTORIES:
            raise ValueError(f"backend name {name!r} already registered")
        _FACTORIES[key] = factory


def get_backend(name: str) -> Backend:
    """Return a fresh backend model for ``name``."""
    key = _normalize(name)
    try:
        factory = _FACTORIES[key]
    except KeyError:
        raise UnknownBackendError(
            f"unknown backend {name!r}; known: {backend_names()}"
        ) from None
    return factory()


def backend_names() -> list[str]:
    """Sorted list of registered lookup names."""
    return sorted(_FACTORIES)


register_backend(presets.gcc_seq, "gcc-seq", "seq")
register_backend(presets.gcc_tbb, "gcc-tbb")
register_backend(presets.icc_tbb, "icc-tbb")
register_backend(presets.gcc_gnu, "gcc-gnu", "gnu")
register_backend(presets.gcc_hpx, "gcc-hpx", "hpx")
register_backend(presets.nvc_omp, "nvc-omp")
register_backend(presets.nvc_cuda, "nvc-cuda", "cuda")
