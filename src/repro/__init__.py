"""pSTL-Bench (Python reproduction).

Reproduction of "Exploring Scalability in C++ Parallel STL
Implementations" (Laso, Krupitza, Hunold -- ICPP 2024) on a deterministic
performance-model simulator. See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quick start::

    from repro import pstl
    from repro.execution.context import ExecutionContext
    from repro.machines import get_machine
    from repro.backends import get_backend
    from repro.types import FLOAT64

    ctx = ExecutionContext(get_machine("A"), get_backend("gcc-tbb"),
                           threads=32, mode="model")
    arr = ctx.allocate(1 << 30, FLOAT64)
    result = pstl.reduce(ctx, arr)
    print(result.seconds)
"""

from repro import algorithms as pstl
from repro._version import __version__
from repro.execution.context import ExecutionContext
from repro.execution.policy import PAR, PAR_UNSEQ, SEQ

__all__ = ["pstl", "ExecutionContext", "PAR", "PAR_UNSEQ", "SEQ", "__version__"]
