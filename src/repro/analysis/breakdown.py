"""Phase/overhead breakdown of a simulated invocation.

Answers "where did the time go?" for one algorithm call: per phase, the
compute vs memory vs scheduling split, plus fork/join and (GPU)
migration costs -- rendered as a table. Used by examples and handy when
extending the backend models.

Two inputs produce the same :class:`PhaseShare` rows: a single
:class:`~repro.sim.report.SimReport` (:func:`breakdown`) or a whole
traced session aggregated by ``repro.trace.metrics.aggregate_phases``;
:func:`render_phase_shares` renders either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.sim.report import SimReport
from repro.util.tables import TextTable
from repro.util.units import format_seconds

__all__ = ["PhaseShare", "breakdown", "render_breakdown", "render_phase_shares"]


@dataclass(frozen=True)
class PhaseShare:
    """One phase's contribution to the total time."""

    name: str
    seconds: float
    share: float  # of the invocation total
    bound_by: str  # "compute" | "memory" | "overhead"


def breakdown(report: SimReport) -> list[PhaseShare]:
    """Per-phase shares, plus synthetic rows for fork/join and migration."""
    if report.seconds <= 0:
        raise ConfigurationError("cannot break down a zero-time report")
    shares: list[PhaseShare] = []
    for phase in report.phases:
        if phase.overhead_seconds >= max(
            phase.compute_seconds, phase.memory_seconds
        ):
            bound = "overhead"
        elif phase.compute_seconds >= phase.memory_seconds:
            bound = "compute"
        else:
            bound = "memory"
        shares.append(
            PhaseShare(
                name=phase.name,
                seconds=phase.seconds,
                share=phase.seconds / report.seconds,
                bound_by=bound,
            )
        )
    if report.fork_join_seconds > 0:
        shares.append(
            PhaseShare(
                name="(fork/join)",
                seconds=report.fork_join_seconds,
                share=report.fork_join_seconds / report.seconds,
                bound_by="overhead",
            )
        )
    if report.migration_seconds > 0:
        shares.append(
            PhaseShare(
                name="(migration)",
                seconds=report.migration_seconds,
                share=report.migration_seconds / report.seconds,
                bound_by="overhead",
            )
        )
    return shares


def render_phase_shares(
    shares: Sequence[PhaseShare], title: str | None = None
) -> str:
    """Aligned where-did-the-time-go table over prepared share rows.

    Accepts the output of :func:`breakdown` or of
    ``repro.trace.metrics.aggregate_phases`` (a traced session's
    phase totals), so one renderer serves both the single-invocation
    and the whole-trace views.
    """
    table = TextTable(
        headers=["Phase", "Time", "Share", "Bound by"], title=title
    )
    for share in shares:
        table.add_row(
            [
                share.name,
                format_seconds(share.seconds),
                f"{share.share:.0%}",
                share.bound_by,
            ]
        )
    return table.render()


def render_breakdown(report: SimReport, title: str | None = None) -> str:
    """Aligned where-did-the-time-go table for one invocation."""
    return render_phase_shares(breakdown(report), title=title)
