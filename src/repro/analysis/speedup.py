"""Speedup and parallel-efficiency math used throughout the evaluation.

The paper measures speedup against a fixed baseline -- GCC's sequential
implementation -- so values can exceed the core count (Table 5's caption
says so explicitly). Efficiency is speedup / threads, and Table 6 reports
the maximum thread count keeping efficiency >= 70 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError

__all__ = [
    "speedup",
    "efficiency",
    "speedup_series",
    "max_threads_above_efficiency",
    "ScalingCurve",
]


def speedup(baseline_seconds: float, seconds: float) -> float:
    """Classic T_base / T."""
    if baseline_seconds <= 0 or seconds <= 0:
        raise ConfigurationError("times must be positive for speedup")
    return baseline_seconds / seconds


def efficiency(baseline_seconds: float, seconds: float, threads: int) -> float:
    """Parallel efficiency vs. the (sequential) baseline."""
    if threads <= 0:
        raise ConfigurationError("threads must be positive")
    return speedup(baseline_seconds, seconds) / threads


@dataclass(frozen=True)
class ScalingCurve:
    """A strong-scaling curve: thread counts with times and a baseline."""

    label: str
    threads: tuple[int, ...]
    seconds: tuple[float, ...]
    baseline_seconds: float

    def __post_init__(self) -> None:
        if len(self.threads) != len(self.seconds):
            raise ConfigurationError("threads/seconds length mismatch")
        if self.baseline_seconds <= 0:
            raise ConfigurationError("baseline must be positive")

    def speedups(self) -> list[float]:
        """Speedup at each thread count."""
        return [speedup(self.baseline_seconds, s) for s in self.seconds]

    def efficiencies(self) -> list[float]:
        """Efficiency at each thread count."""
        return [
            efficiency(self.baseline_seconds, s, t)
            for t, s in zip(self.threads, self.seconds)
        ]

    def max_speedup(self) -> float:
        """Best speedup along the curve."""
        return max(self.speedups())


def speedup_series(
    baseline_seconds: float, seconds: Sequence[float]
) -> list[float]:
    """Speedups of a whole series against one baseline."""
    return [speedup(baseline_seconds, s) for s in seconds]


def max_threads_above_efficiency(
    curve: ScalingCurve, threshold: float = 0.70
) -> int:
    """Largest measured thread count with efficiency >= threshold.

    This is Table 6's statistic. Returns 1 when even the single-thread
    parallel run misses the threshold (e.g., NVC-OMP's sequential-fallback
    scan, which the paper reports as 1).
    """
    if not 0.0 < threshold <= 1.0:
        raise ConfigurationError("threshold must be in (0, 1]")
    best = 1
    for t, eff in zip(curve.threads, curve.efficiencies()):
        if eff >= threshold and t > best:
            best = t
    return best
