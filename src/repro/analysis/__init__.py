"""Analysis utilities: speedups, efficiency, roofline, exports, breakdowns."""

from repro.analysis.breakdown import PhaseShare, breakdown, render_breakdown
from repro.analysis.export import (
    bench_result_to_dict,
    curve_to_dict,
    dump_json,
    experiment_to_dict,
    sweep_to_dict,
)
from repro.analysis.roofline import (
    Boundedness,
    RooflinePoint,
    analyze_profile,
    machine_balance,
)
from repro.analysis.speedup import (
    ScalingCurve,
    efficiency,
    max_threads_above_efficiency,
    speedup,
    speedup_series,
)

__all__ = [
    "PhaseShare",
    "breakdown",
    "render_breakdown",
    "bench_result_to_dict",
    "curve_to_dict",
    "dump_json",
    "experiment_to_dict",
    "sweep_to_dict",
    "Boundedness",
    "RooflinePoint",
    "analyze_profile",
    "machine_balance",
    "ScalingCurve",
    "efficiency",
    "max_threads_above_efficiency",
    "speedup",
    "speedup_series",
]
