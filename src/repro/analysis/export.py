"""JSON export of experiment results and sweeps.

Downstream users plot the regenerated figures with their own tooling;
this module flattens the experiment/sweep/curve objects into plain JSON.
Every exporter returns a JSON-serialisable dict; ``dump_json`` renders it.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.analysis.speedup import ScalingCurve
from repro.bench.state import BenchResult
from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult
from repro.suite.sweeps import SweepResult

__all__ = [
    "sweep_to_dict",
    "curve_to_dict",
    "bench_result_to_dict",
    "experiment_to_dict",
    "dump_json",
]


def sweep_to_dict(sweep: SweepResult) -> dict[str, Any]:
    """Flatten a problem/thread sweep."""
    return {
        "label": sweep.label,
        "variable": sweep.variable,
        "points": [
            {"x": p.x, "seconds": None if not p.supported else p.seconds}
            for p in sweep.points
        ],
    }


def curve_to_dict(curve: ScalingCurve) -> dict[str, Any]:
    """Flatten a strong-scaling curve, with derived speedups/efficiencies."""
    return {
        "label": curve.label,
        "baseline_seconds": curve.baseline_seconds,
        "threads": list(curve.threads),
        "seconds": list(curve.seconds),
        "speedups": curve.speedups(),
        "efficiencies": curve.efficiencies(),
    }


def bench_result_to_dict(result: BenchResult) -> dict[str, Any]:
    """Flatten a harness result row (Google-Benchmark JSON-ish)."""
    return {
        "name": result.name,
        "iterations": result.iterations,
        "mean_time": result.mean_time,
        "total_time": result.total_time,
        "bytes_per_second": result.bytes_per_second,
        "counters": {
            "instructions": result.counters.instructions,
            "fp_scalar": result.counters.fp_scalar,
            "fp_packed_128": result.counters.fp_packed_128,
            "fp_packed_256": result.counters.fp_packed_256,
            "bytes_read": result.counters.bytes_read,
            "bytes_written": result.counters.bytes_written,
        },
    }


def _convert(value: Any) -> Any:
    """Best-effort conversion of experiment payload values."""
    if isinstance(value, SweepResult):
        return sweep_to_dict(value)
    if isinstance(value, ScalingCurve):
        return curve_to_dict(value)
    if isinstance(value, BenchResult):
        return bench_result_to_dict(value)
    if isinstance(value, Mapping):
        return {str(k): _convert(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_convert(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if hasattr(value, "counters") and hasattr(value, "seconds"):
        # RegionStats-like objects from the counter layer.
        return {
            "calls": getattr(value, "calls", None),
            "seconds": value.seconds,
            "instructions": value.counters.instructions,
            "fp_scalar": value.counters.fp_scalar,
            "fp_packed_256": value.counters.fp_packed_256,
            "data_volume": value.counters.data_volume,
        }
    return repr(value)


def experiment_to_dict(result: ExperimentResult) -> dict[str, Any]:
    """Flatten a whole experiment (id, title, converted payload)."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "data": _convert(result.data),
    }


def dump_json(payload: Any, indent: int = 2) -> str:
    """Serialise a converted payload, rejecting non-finite floats."""
    text = json.dumps(payload, indent=indent, allow_nan=False, sort_keys=True)
    if not text:
        raise ConfigurationError("empty JSON payload")
    return text
