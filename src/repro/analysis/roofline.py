"""Roofline analysis: classify algorithm invocations as compute- or
memory-bound on a machine, and bound their best-case parallel speedup.

The paper's scalability arguments are roofline arguments in prose: find
and reduce saturate at the STREAM ratio because their arithmetic
intensity is tiny; for_each with k_it=1000 scales to the core count
because compute dominates (Sections 5.2-5.5). This module makes the
argument executable: given a work profile and a machine, it computes the
intensity, the machine's balance point, and the resulting speedup bound
-- which the integration tests then check the simulator respects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.machines.cpu import CpuMachine
from repro.sim.work import WorkProfile

__all__ = ["Boundedness", "RooflinePoint", "analyze_profile", "machine_balance"]


class Boundedness(enum.Enum):
    """Which roof an invocation sits under."""

    COMPUTE_BOUND = "compute-bound"
    MEMORY_BOUND = "memory-bound"
    BALANCED = "balanced"


def machine_balance(machine: CpuMachine, parallel: bool = True) -> float:
    """The machine's balance point in instructions per byte.

    Work with intensity above this is compute-bound; below, memory-bound.
    ``parallel=False`` uses the single-core STREAM figure (the balance
    point a sequential run sees -- much lower, which is why sequential
    runs are often compute-bound where the parallel run is memory-bound).
    """
    bw = machine.stream_bw_allcores if parallel else machine.stream_bw_1core
    rate = machine.scalar_instr_rate * (machine.total_cores if parallel else 1)
    return rate / bw


@dataclass(frozen=True)
class RooflinePoint:
    """An invocation's position in roofline coordinates."""

    instructions: float
    bytes_moved: float
    intensity: float  # instructions per byte
    balance: float  # the machine's balance point (parallel)
    boundedness: Boundedness
    #: Best-case parallel speedup vs. one core of the same machine:
    #: min(cores, achievable-bandwidth ratio at this intensity).
    speedup_bound: float


def analyze_profile(
    machine: CpuMachine, profile: WorkProfile, slack: float = 1.25
) -> RooflinePoint:
    """Classify a work profile on ``machine``.

    ``slack`` widens the BALANCED band around the balance point (an
    invocation within [balance/slack, balance*slack] is called balanced).
    """
    if slack < 1.0:
        raise ConfigurationError("slack must be >= 1")
    instructions = 0.0
    bytes_moved = 0.0
    for phase in profile.phases:
        for chunk in phase.chunks:
            instructions += chunk.instr + chunk.fp_ops
            bytes_moved += chunk.bytes_read + chunk.bytes_written
    if bytes_moved <= 0.0:
        # No memory traffic at all: trivially compute-bound.
        return RooflinePoint(
            instructions=instructions,
            bytes_moved=0.0,
            intensity=float("inf"),
            balance=machine_balance(machine),
            boundedness=Boundedness.COMPUTE_BOUND,
            speedup_bound=float(machine.total_cores),
        )

    intensity = instructions / bytes_moved
    balance = machine_balance(machine)
    if intensity > balance * slack:
        kind = Boundedness.COMPUTE_BOUND
    elif intensity < balance / slack:
        kind = Boundedness.MEMORY_BOUND
    else:
        kind = Boundedness.BALANCED

    # Sequential time ~ max of the two single-core roofs; parallel time ~
    # max of the machine roofs. Their ratio bounds any speedup.
    seq_compute = instructions / machine.scalar_instr_rate
    seq_memory = bytes_moved / machine.stream_bw_1core
    par_compute = instructions / (machine.scalar_instr_rate * machine.total_cores)
    par_memory = bytes_moved / machine.stream_bw_allcores
    bound = max(seq_compute, seq_memory) / max(par_compute, par_memory)

    return RooflinePoint(
        instructions=instructions,
        bytes_moved=bytes_moved,
        intensity=intensity,
        balance=balance,
        boundedness=kind,
        speedup_bound=bound,
    )
