"""Service-side wave dispatch to remote executors.

One :class:`RemoteCoordinator` serves one running campaign. It plugs
into the campaign executor's ``dispatch=`` seam: each wave of
cache-miss tasks is sharded across the currently-live executors,
offered as leases through the shared :class:`ExecutorRegistry`, and the
coordinator then drives a small event loop on the campaign's runner
thread -- expiring stale leases (reassignment), ingesting delivered
segments into the shared store, and finally reclaiming anything still
unfinished at the wave deadline for local execution.

Degradation ladder, graceful at every rung:

- no live executors -> ``dispatch`` returns None, the campaign runs its
  normal local paths (exactly the pre-remote behavior);
- an executor dies or stalls mid-wave -> its lease expires and the wave
  is reclaimed by another executor (epoch bump fences the corpse);
- nobody completes by the wave deadline -> the coordinator takes the
  wave back and computes it locally;
- a remote row comes back failed -> it is retried locally through the
  standard serial wave path with the campaign's retry budget.

Because the simulator is deterministic, a task computed remotely,
recomputed after reassignment, or computed locally yields identical
bytes -- which is why the ingest dedup (ledger + index) can collapse
every duplicate and the whole campaign stays bit-identical to a
single-process run.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable

from repro.campaign.executor import _execute_serial_wave, _shard_wave
from repro.campaign.plan import PointTask
from repro.campaign.store import FAILED, ResultStore
from repro.errors import SegmentError
from repro.remote.registry import DONE as WAVE_DONE
from repro.remote.registry import LEASED as WAVE_LEASED
from repro.remote.registry import ExecutorRegistry
from repro.remote.ship import IngestReport, SegmentIngestor
from repro.trace import get_tracer

#: Storable remote statuses: these rows landed via ingest, everything
#: else re-runs locally.
_REMOTE_TERMINAL = ("done", "na")


class RemoteCoordinator:
    """Dispatches one campaign's waves across registered remote executors."""

    def __init__(self, registry: ExecutorRegistry, *,
                 store: ResultStore,
                 campaign: str,
                 ledger_path: str | os.PathLike,
                 retries: int = 1,
                 wave_timeout: float = 60.0,
                 poll: float = 0.05,
                 clock: Callable[[], float] = time.monotonic) -> None:
        """Coordinate ``campaign``'s waves through ``registry``.

        ``store`` is the campaign's shared result store (ingest target);
        ``ledger_path`` locates the campaign's segment-ingest ledger;
        ``wave_timeout`` bounds how long a wave may stay remote before
        the coordinator reclaims it for local execution.
        """
        self.registry = registry
        self.campaign = campaign
        self.retries = int(retries)
        self.wave_timeout = float(wave_timeout)
        self.poll = float(poll)
        self.clock = clock
        self.ingestor = SegmentIngestor(store, ledger_path)
        self.rejected_segments = 0
        self.waves_dispatched = 0
        self.waves_local = 0

    # -- the dispatch= hook ---------------------------------------------

    def dispatch(self, tasks: list[PointTask]) -> dict[str, dict] | None:
        """Execute one wave remotely; None when no executor is live.

        Returns a complete ``task_id -> payload`` map. Rows that landed
        via segment ingest are marked ``persisted``; rows the remote
        side failed (or never shipped) are computed locally here and
        returned unmarked so the campaign's normal record path persists
        them.
        """
        if not tasks:
            return {}
        live = self.registry.live()
        if not live:
            return None
        started = time.perf_counter()
        self.waves_dispatched += 1
        shards = _shard_wave(list(tasks), len(live))
        offers = [
            self.registry.offer(self.campaign, [
                {"task_id": task.task_id, "point": task.point.to_dict()}
                for task in shard
            ])
            for shard in shards
        ]
        wave_ids = [offer.wave_id for offer in offers]
        remote_rows = self._await_waves(wave_ids)
        payloads = self._settle(tasks, remote_rows)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.record(
                "remote.dispatch", time.perf_counter() - started,
                category="remote", track="remote", campaign=self.campaign,
                tasks=len(tasks), shards=len(shards),
                remote=sum(1 for p in payloads.values() if p.get("persisted")))
        return payloads

    # -- internals -------------------------------------------------------

    def _await_waves(self, wave_ids: list[str]) -> dict[str, dict]:
        """Drive the wave loop until every offer is done or the deadline.

        Ingests deliveries as they arrive (including stale/duplicate
        ships -- dedup absorbs them) and returns ``task_id -> row`` for
        every row that arrived in a verified segment.
        """
        deadline = self.clock() + self.wave_timeout
        rows_by_task: dict[str, dict] = {}
        while True:
            self.registry.expire_stale()
            self._ingest_pending(wave_ids, rows_by_task)
            states = self.registry.state_of(wave_ids)
            if all(state == WAVE_DONE for state in states.values()):
                break
            if self.clock() >= deadline:
                break
            if not any(state == WAVE_LEASED for state in states.values()) \
                    and not self.registry.live():
                # Nobody holds a lease and nobody is alive to claim one:
                # waiting out the full deadline would just stall the
                # campaign, so reclaim now and run locally.
                break
            self.registry.wait(self.poll)
        # Final drain: a ship may have raced the loop exit.
        self._ingest_pending(wave_ids, rows_by_task)
        for wave_id in wave_ids:
            if self.registry.take_back(wave_id) is not None:
                self.waves_local += 1
            else:
                self.registry.forget(wave_id)
        return rows_by_task

    def _ingest_pending(self, wave_ids: list[str],
                        rows_by_task: dict[str, dict]) -> None:
        """Drain queued deliveries, ingest them, and fold rows per task."""
        for _, manifest, rows in self.registry.drain_deliveries(wave_ids):
            try:
                self.ingestor.ingest(manifest, rows)
            except SegmentError:
                # A corrupt shipment never lands anything; the wave will
                # be reassigned or reclaimed, so correctness is kept --
                # we only count the rejection for observability.
                self.rejected_segments += 1
                continue
            for row in rows:
                task_id = row.get("task_id")
                if isinstance(task_id, str):
                    rows_by_task.setdefault(task_id, dict(row))

    def _settle(self, tasks: list[PointTask],
                remote_rows: dict[str, dict]) -> dict[str, dict]:
        """Complete the payload map: remote rows + local fallback/retry."""
        payloads: dict[str, dict] = {}
        fallback: list[PointTask] = []
        for task in tasks:
            row = remote_rows.get(task.task_id)
            result = (row or {}).get("result") or {}
            if row is not None and result.get("status") in _REMOTE_TERMINAL:
                payloads[task.task_id] = {
                    "status": result.get("status"),
                    "seconds": result.get("seconds"),
                    "error": result.get("error"),
                    "wall_ms": row.get("wall_ms"),
                    "attempts": 1,
                    "persisted": True,
                }
            else:
                # Never shipped, or shipped as failed: both re-run
                # locally with the campaign's retry budget.
                fallback.append(task)
        if fallback:
            local = _execute_serial_wave(fallback, self.retries)
            for task in fallback:
                payload = dict(local[task.task_id])
                if payload["status"] == FAILED:
                    remote_error = ((remote_rows.get(task.task_id) or {})
                                    .get("result") or {}).get("error")
                    if remote_error and not payload.get("error"):
                        payload["error"] = remote_error
                payloads[task.task_id] = payload
        return payloads

    def counters(self) -> dict[str, Any]:
        """Per-campaign dispatch/ingest counters (merged into /metrics)."""
        report: IngestReport = self.ingestor.report
        return {
            "waves_dispatched": self.waves_dispatched,
            "waves_reclaimed_local": self.waves_local,
            "segments_rejected": self.rejected_segments,
            **{f"ingest_{k}": v for k, v in report.to_dict().items()
               if k != "by_executor"},
        }
