"""Private leased journal segments and their sealed manifests.

A *segment* is one executor's private result log for one wave lease:
an append-only journal (one canonical-JSON row per line, same
torn-tail-healing discipline as the campaign journal) whose appends are
fenced by the executor's lease. When the wave finishes, the executor
*seals* the segment: a manifest is published next to it recording the
row count, byte size, and a content checksum, after which the segment
is immutable and ready to ship.

The checksum is defined over the canonical serialization of the rows
(exactly the bytes a fence-disciplined writer produced), so the
coordinator can verify a shipped segment from its JSON body alone --
no shared filesystem required -- and two executors that computed the
same rows independently produce byte-identical segments, which is what
lets the ingest ledger deduplicate re-shipped and reassigned work.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.campaign.spec import canonical_json
from repro.campaign.store import Journal
from repro.errors import SegmentError

MANIFEST_SUFFIX = ".manifest.json"
SEGMENT_SUFFIX = ".seg.jsonl"


def rows_checksum(rows: Sequence[Mapping[str, Any]]) -> str:
    """sha256 (hex) over the canonical line serialization of ``rows``."""
    digest = hashlib.sha256()
    for row in rows:
        digest.update((canonical_json(dict(row)) + "\n").encode("utf-8"))
    return digest.hexdigest()


@dataclass(frozen=True)
class SegmentManifest:
    """Immutable description of a sealed segment, shipped alongside its rows."""

    segment: str
    executor: str
    epoch: int
    wave: str
    rows: int
    size: int
    checksum: str

    def to_dict(self) -> dict[str, Any]:
        """Serialize to the on-disk / on-wire JSON shape."""
        return {
            "segment": self.segment,
            "executor": self.executor,
            "epoch": self.epoch,
            "wave": self.wave,
            "rows": self.rows,
            "size": self.size,
            "checksum": self.checksum,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SegmentManifest":
        """Rebuild a manifest from JSON; malformed input raises SegmentError."""
        try:
            return cls(
                segment=str(payload["segment"]),
                executor=str(payload["executor"]),
                epoch=int(payload["epoch"]),
                wave=str(payload["wave"]),
                rows=int(payload["rows"]),
                size=int(payload["size"]),
                checksum=str(payload["checksum"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SegmentError(f"malformed segment manifest: {exc}") from None


def verify_rows(manifest: SegmentManifest,
                rows: Sequence[Mapping[str, Any]]) -> None:
    """Check shipped ``rows`` against their ``manifest``; raise on mismatch.

    Both the row count and the content checksum must match -- a dropped
    row, an extra row, or any mutated field changes the canonical
    serialization and is rejected before a single row is ingested.
    """
    if len(rows) != manifest.rows:
        raise SegmentError(
            f"segment {manifest.segment}: manifest says {manifest.rows} "
            f"row(s), shipment carries {len(rows)}")
    actual = rows_checksum(rows)
    if actual != manifest.checksum:
        raise SegmentError(
            f"segment {manifest.segment}: checksum mismatch "
            f"(manifest {manifest.checksum[:16]}..., rows {actual[:16]}...)")


class SegmentWriter:
    """Appends fenced result rows to a private segment, then seals it.

    The segment lives at ``<root>/<name>.seg.jsonl``; rows append
    through a :class:`~repro.campaign.store.Journal` carrying the
    executor's lease fence, so a writer whose lease lapsed or was taken
    over raises instead of writing. ``seal()`` publishes the manifest
    atomically and returns it; further appends are a programming error.
    """

    def __init__(self, root: str | os.PathLike, name: str, *,
                 executor: str, epoch: int, wave: str,
                 fence: Callable[[], None] | None = None) -> None:
        """Open (or create) segment ``name`` under ``root``."""
        self.root = Path(root)
        self.name = name
        self.executor = executor
        self.epoch = int(epoch)
        self.wave = wave
        self.path = self.root / f"{name}{SEGMENT_SUFFIX}"
        self.manifest_path = self.root / f"{name}{MANIFEST_SUFFIX}"
        self._journal = Journal(self.path, fence=fence)
        self._sealed = False

    def append(self, row: Mapping[str, Any]) -> None:
        """Append one result row (fenced; raises after seal)."""
        if self._sealed:
            raise SegmentError(f"segment {self.name} is sealed; appends rejected")
        self._journal.append(row)

    def rows(self) -> list[dict]:
        """All intact rows currently in the segment, in append order."""
        return self._journal.entries()

    def seal(self) -> SegmentManifest:
        """Freeze the segment and publish its manifest atomically.

        Re-reads the rows actually on disk (a fenced append that raised
        never landed) so the manifest always describes real content.
        """
        rows = self.rows()
        manifest = SegmentManifest(
            segment=self.name,
            executor=self.executor,
            epoch=self.epoch,
            wave=self.wave,
            rows=len(rows),
            size=self.path.stat().st_size if self.path.exists() else 0,
            checksum=rows_checksum(rows),
        )
        tmp = self.manifest_path.with_name(
            f".{self.manifest_path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(manifest.to_dict(), sort_keys=True, indent=2) + "\n",
                       encoding="utf-8")
        os.replace(tmp, self.manifest_path)
        self._sealed = True
        return manifest


def read_segment(path: str | os.PathLike) -> tuple[SegmentManifest, list[dict]]:
    """Load a sealed segment from disk and verify it against its manifest.

    ``path`` is the segment file (``*.seg.jsonl``); the manifest is
    expected next to it. Raises :class:`SegmentError` when the manifest
    is missing or the content fails verification.
    """
    seg_path = Path(path)
    name = seg_path.name
    if name.endswith(SEGMENT_SUFFIX):
        name = name[: -len(SEGMENT_SUFFIX)]
    manifest_path = seg_path.with_name(f"{name}{MANIFEST_SUFFIX}")
    try:
        manifest = SegmentManifest.from_dict(
            json.loads(manifest_path.read_text(encoding="utf-8")))
    except FileNotFoundError:
        raise SegmentError(f"segment {name}: no manifest at {manifest_path}") from None
    except json.JSONDecodeError as exc:
        raise SegmentError(f"segment {name}: corrupt manifest: {exc}") from None
    rows = Journal(seg_path).entries()
    verify_rows(manifest, rows)
    return manifest, rows


def result_row(task_id: str, point: Mapping[str, Any],
               payload: Mapping[str, Any],
               wall_ms: float | None = None) -> dict[str, Any]:
    """Build the canonical segment row for one finished task.

    ``payload`` is the executor's result dict (``status`` / ``seconds``
    / ``error``); ``point`` is the task's point spec as a dict. Rows
    deliberately carry no timestamps or host names in the checksummed
    body -- determinism of the row content is what makes re-shipped and
    reassigned segments collapse to one ingest.
    """
    row = {
        "task_id": task_id,
        "point": dict(point),
        "result": {
            "status": payload.get("status"),
            "seconds": payload.get("seconds"),
            "error": payload.get("error"),
        },
    }
    if wall_ms is not None:
        row["wall_ms"] = wall_ms
    return row


def iter_segments(root: str | os.PathLike) -> Iterable[Path]:
    """Yield every sealed segment file under ``root`` (sorted for determinism)."""
    root = Path(root)
    if not root.is_dir():
        return
    for seg in sorted(root.glob(f"*{SEGMENT_SUFFIX}")):
        manifest = seg.with_name(
            seg.name[: -len(SEGMENT_SUFFIX)] + MANIFEST_SUFFIX)
        if manifest.exists():
            yield seg
