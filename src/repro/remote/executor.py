"""The remote wave executor: claim, compute, seal, ship, repeat.

A :class:`RemoteExecutor` is one simulated "host": a process (or
thread, in tests) with a *private* working directory -- its lease files
and journal segments live under its own root, never on shared storage.
All coordination happens over the service's HTTP executor protocol:

1. ``POST /executors`` to register (returns the executor id and lease
   TTL);
2. ``POST /executors/{id}/lease`` to claim a pending wave (doubles as
   the idle heartbeat);
3. compute the wave through the same fused
   :func:`~repro.campaign.executor.execute_wave` path local campaigns
   use -- bit-identity starts with running identical code;
4. append each result row to a private leased journal segment whose
   appends are fenced by the local lease file (a lapsed lease raises
   instead of writing), then seal it with a manifest;
5. ``POST /executors/{id}/segments`` to ship the sealed segment, with
   a bounded re-ship loop absorbing lost deliveries.

Chaos hooks (driven by the same deterministic
:class:`~repro.faults.FaultPlan` as everything else): ``executor_dead``
SIGKILLs the process right after a claim, and ``segment_dup_ship``
ships a sealed segment twice -- both of which the coordinator-side
protocol must absorb without losing or duplicating a single row.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any, Callable

from repro.campaign.executor import execute_wave
from repro.errors import (
    LeaseExpiredError,
    QuotaExceededError,
    ServiceError,
    StaleWriterError,
)
from repro.faults import FaultInjector, FaultPlan
from repro.remote.lease import LeaseFile
from repro.remote.segment import SegmentWriter, result_row
from repro.service.client import ServiceClient

__all__ = ["RemoteExecutor"]

#: Bounded re-ship attempts per sealed segment (absorbs ``segment_lost``).
SHIP_ATTEMPTS = 4


def _safe(name: str) -> str:
    """Filesystem-safe token for wave ids (``campaign/w1`` -> ``campaign_w1``)."""
    return "".join(ch if ch.isalnum() or ch in "-_." else "_" for ch in name)


class RemoteExecutor:
    """One executor process/thread bound to a daemon and a private root."""

    def __init__(self, base_url: str, root: str | os.PathLike, *,
                 host: str | None = None,
                 faults: FaultPlan | None = None,
                 poll: float = 0.05,
                 clock: Callable[[], float] = time.time) -> None:
        """Serve waves from the daemon at ``base_url``.

        ``root`` is this executor's private directory (segments +
        leases); ``host`` is the advertised host label (defaults to a
        pid-derived name, simulating distinct hosts in tests);
        ``faults`` activates the executor-side chaos sites.
        """
        self.root = os.fspath(root)
        self.host = host if host is not None else f"host-{os.getpid()}"
        self.poll = float(poll)
        self.clock = clock
        self.client = ServiceClient(base_url, api_key=f"executor:{self.host}")
        self.injector = FaultInjector(faults) if faults is not None else None
        self.id: str | None = None
        self.lease_ttl = 5.0
        self.waves = 0
        self.rows = 0
        self.reships = 0
        self.dup_ships = 0

    # -- lifecycle --------------------------------------------------------

    def register(self) -> str:
        """Join the daemon's registry; returns the assigned executor id."""
        doc = self.client.register_executor(self.host, os.getpid())
        self.id = doc["id"]
        self.lease_ttl = float(doc.get("lease_ttl", self.lease_ttl))
        return self.id

    def run(self, *, max_idle: float = 60.0, max_waves: int | None = None,
            should_stop: Callable[[], bool] | None = None) -> dict[str, Any]:
        """Serve waves until idle for ``max_idle`` seconds (or stopped).

        Returns a summary counter dict. A daemon that goes away mid-run
        ends the loop cleanly -- executors are disposable by design.
        """
        if self.id is None:
            self.register()
        idle_since = time.monotonic()
        while True:
            if should_stop is not None and should_stop():
                break
            if max_waves is not None and self.waves >= max_waves:
                break
            try:
                offer = self.client.claim_wave(self.id)
            except (ServiceError, QuotaExceededError):
                break  # daemon gone or draining: nothing left to serve
            if offer is None:
                if time.monotonic() - idle_since >= max_idle:
                    break
                time.sleep(self.poll)
                continue
            self.serve_wave(offer)
            idle_since = time.monotonic()
        return self.summary()

    def summary(self) -> dict[str, Any]:
        """Counters for CLI output and tests."""
        return {
            "executor": self.id,
            "host": self.host,
            "waves": self.waves,
            "rows": self.rows,
            "reships": self.reships,
            "dup_ships": self.dup_ships,
        }

    # -- one wave ---------------------------------------------------------

    def serve_wave(self, offer: dict[str, Any]) -> None:
        """Compute, seal and ship one claimed wave."""
        wave_id = offer["wave"]
        epoch = int(offer["epoch"])
        payloads = offer["payloads"]
        if self.injector is not None \
                and self.injector.claim_executor_dead(wave_id):
            # Abrupt host death: no cleanup, no goodbye -- the lease
            # expires by deadline and the coordinator reassigns.
            os.kill(os.getpid(), signal.SIGKILL)
        outs = execute_wave([dict(p["point"]) for p in payloads])
        manifest, rows = self._write_segment(wave_id, epoch, payloads, outs)
        self._ship(wave_id, epoch, manifest, rows)
        self.waves += 1
        self.rows += len(rows)

    def _write_segment(self, wave_id: str, epoch: int,
                       payloads: list[dict], outs: list[dict]):
        """Append rows to a fenced private segment and seal it.

        The local lease file fences every append; if the lease lapses
        mid-write (slow host), the writer re-acquires -- bumping the
        local epoch -- and rewrites into a fresh segment, so a sealed
        segment is always the product of one uninterrupted lease.
        """
        lease_file = LeaseFile(
            os.path.join(self.root, "leases", f"{_safe(wave_id)}.json"),
            clock=self.clock)
        assert self.id is not None
        last_error: Exception | None = None
        for _ in range(3):
            lease = lease_file.acquire(self.id, self.lease_ttl)
            writer = SegmentWriter(
                os.path.join(self.root, "segments"),
                f"{_safe(wave_id)}-e{epoch}-l{lease.epoch}",
                executor=self.id, epoch=epoch, wave=wave_id,
                fence=lease_file.guard(lease))
            try:
                for payload, out in zip(payloads, outs):
                    writer.append(result_row(
                        payload["task_id"], payload["point"], out,
                        wall_ms=out.get("wall_ms")))
                return writer.seal(), writer.rows()
            except (LeaseExpiredError, StaleWriterError) as exc:
                last_error = exc
                continue
        raise last_error  # type: ignore[misc]  # three straight lease lapses

    def _ship(self, wave_id: str, epoch: int, manifest, rows: list[dict]) -> None:
        """Deliver a sealed segment; bounded re-ships absorb lost ones."""
        assert self.id is not None
        ident = f"{wave_id}:{manifest.checksum[:16]}"
        ships = 1
        if self.injector is not None \
                and self.injector.claim_segment_dup_ship(ident):
            ships = 2
            self.dup_ships += 1
        for _ in range(ships):
            for attempt in range(SHIP_ATTEMPTS):
                try:
                    self.client.ship_segment(
                        self.id, manifest.to_dict(), rows)
                    break
                except QuotaExceededError as exc:
                    # Retryable: the wire "lost" the shipment (or the
                    # daemon asked us to back off). Re-ship.
                    self.reships += 1
                    if attempt + 1 >= SHIP_ATTEMPTS:
                        raise
                    time.sleep(min(exc.retry_after, 0.2))
