"""``pstl-executor``: run one remote wave executor against a daemon.

A multi-host deployment is N shells running::

    pstl-executor --url http://coordinator:8631 --root /scratch/ex1
    pstl-executor --url http://coordinator:8631 --root /scratch/ex2
    ...

Each process registers with the daemon's executor registry, then loops:
claim a wave lease, compute it through the shared simulator, seal the
rows into a private leased journal segment, ship the sealed segment
back. ``--root`` must be private to the process (lease files and
segments live there); nothing is ever written to shared storage -- all
coordination is over HTTP.

Like the other CLIs, the daemon address can be given as ``--url`` or
resolved from a service root's ``service.json`` via ``--service-root``.
The run ends after ``--max-idle`` seconds without work (or
``--max-waves`` served) and prints a JSON summary of waves, rows and
re-ships.

``--faults`` activates the executor-side chaos sites
(``executor_dead``, ``segment_dup_ship``) from a standard fault plan;
the distributed identity harness uses this to kill executors mid-wave.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.faults import load_fault_plan
from repro.remote.executor import RemoteExecutor

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    """The ``pstl-executor`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="pstl-executor",
        description="remote wave executor for the campaign service")
    parser.add_argument("--url", help="daemon base URL (http://host:port)")
    parser.add_argument("--service-root",
                        help="service root; reads its service.json for the URL")
    parser.add_argument("--root", required=True,
                        help="this executor's private directory "
                             "(leases + segments)")
    parser.add_argument("--host",
                        help="advertised host label (default: pid-derived)")
    parser.add_argument("--poll", type=float, default=0.05,
                        help="idle claim-poll interval in seconds")
    parser.add_argument("--max-idle", type=float, default=60.0,
                        help="exit after this many idle seconds")
    parser.add_argument("--max-waves", type=int,
                        help="exit after serving this many waves")
    parser.add_argument("--faults", help="fault plan JSON (executor chaos)")
    parser.add_argument("--fault-seed", type=int,
                        help="override the fault plan's seed")
    return parser


def _base_url(args: argparse.Namespace) -> str:
    """Resolve the daemon address from ``--url`` or a service root."""
    if args.url:
        return args.url
    if args.service_root:
        meta = json.loads((Path(args.service_root) / "service.json")
                          .read_text(encoding="utf-8"))
        return f"http://{meta['host']}:{meta['port']}"
    raise ReproError("pass --url or --service-root to locate the daemon")


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit status."""
    args = _build_parser().parse_args(argv)
    try:
        faults = None
        if args.faults:
            faults = load_fault_plan(args.faults)
            if args.fault_seed is not None:
                faults = faults.with_seed(args.fault_seed)
        executor = RemoteExecutor(
            _base_url(args), args.root,
            host=args.host, faults=faults, poll=args.poll)
        summary = executor.run(
            max_idle=args.max_idle, max_waves=args.max_waves)
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"pstl-executor: {exc}", file=sys.stderr)
        return 1
    json.dump(summary, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
