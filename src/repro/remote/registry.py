"""Executor registry and wave leases: the coordinator's shared state.

The registry is the meeting point between three kinds of actors:

- **executors** register, heartbeat, claim wave leases and deliver
  sealed segments (over HTTP, so these calls arrive on the daemon's
  event loop);
- **coordinators** (one per running campaign, on a runner thread)
  offer waves, drain deliveries for ingest, and expire stale leases;
- **operators** read the counters through ``GET /executors`` and
  ``/metrics``.

Everything is guarded by one condition variable: registry operations
are tiny (no I/O under the lock -- segment ingest happens on the
coordinator's thread *after* draining), so a single lock stays far off
any hot path while making the state machine easy to reason about.

Wave lease lifecycle::

    pending --claim--> leased --deliver(current epoch)--> done
       ^                  |
       '---expire_stale---'      (deadline passed, or an injected
                                  ``lease_expire`` fault; each
                                  reassignment bumps the epoch at the
                                  next claim)

A delivery presenting a *stale* epoch -- its holder was expired and the
wave reassigned -- does not complete the wave, but its rows are still
queued for ingest: results are deterministic, so the ledger and index
dedup collapse them into the exactly-once outcome, and the counter
``stale_ships`` records that fencing did its job.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.faults import FaultInjector
from repro.remote.segment import SegmentManifest
from repro.trace import get_tracer

PENDING = "pending"
LEASED = "leased"
DONE = "done"


@dataclass
class ExecutorInfo:
    """One registered executor process ("host")."""

    id: str
    host: str
    pid: int
    registered_at: float
    last_seen: float
    waves_done: int = 0
    stale_ships: int = 0

    def to_dict(self, now: float, executor_ttl: float) -> dict[str, Any]:
        """Wire shape for ``GET /executors`` (liveness computed at read time)."""
        return {
            "id": self.id,
            "host": self.host,
            "pid": self.pid,
            "live": (now - self.last_seen) < executor_ttl,
            "age_s": round(now - self.registered_at, 3),
            "idle_s": round(now - self.last_seen, 3),
            "waves_done": self.waves_done,
            "stale_ships": self.stale_ships,
        }


@dataclass
class WaveOffer:
    """One wave's worth of tasks offered to remote executors."""

    wave_id: str
    campaign: str
    payloads: list[dict]
    state: str = PENDING
    executor: str | None = None
    epoch: int = 0
    expires_at: float = 0.0
    reassignments: int = 0
    #: (manifest, rows) shipments queued for the coordinator to ingest;
    #: includes stale-epoch and duplicate ships (dedup happens at ingest).
    deliveries: list[tuple[SegmentManifest, list[dict]]] = field(default_factory=list)

    def to_wire(self) -> dict[str, Any]:
        """The lease document an executor receives from a claim."""
        return {
            "wave": self.wave_id,
            "campaign": self.campaign,
            "epoch": self.epoch,
            "payloads": self.payloads,
        }


class ExecutorRegistry:
    """Thread-safe executor + wave-lease state shared by daemon and runners."""

    def __init__(self, *, lease_ttl: float = 5.0, executor_ttl: float = 10.0,
                 clock: Callable[[], float] = time.monotonic,
                 injector: FaultInjector | None = None) -> None:
        """``lease_ttl`` bounds a claimed wave; ``executor_ttl`` bounds liveness.

        The ``injector`` (the service's fault injector, when chaos
        testing) powers two wire/lease fault sites here: ``lease_expire``
        (a claimed lease is treated as lapsed on the next sweep) and
        ``segment_lost`` (a delivery is dropped once, forcing the
        executor's re-ship path).
        """
        self.lease_ttl = float(lease_ttl)
        self.executor_ttl = float(executor_ttl)
        self.clock = clock
        self.injector = injector
        self._cond = threading.Condition()
        self._executors: dict[str, ExecutorInfo] = {}
        self._offers: dict[str, WaveOffer] = {}
        self._serial = 0
        # counters (monotonic; surfaced via /metrics and GET /executors)
        self.waves_offered = 0
        self.waves_completed = 0
        self.waves_reassigned = 0
        self.stale_ships = 0
        self.lost_ships = 0
        self.duplicate_ships = 0

    # -- executor side ---------------------------------------------------

    def register(self, host: str, pid: int) -> dict[str, Any]:
        """Add an executor; returns its assigned id + protocol parameters."""
        now = self.clock()
        with self._cond:
            self._serial += 1
            eid = f"ex-{self._serial}"
            self._executors[eid] = ExecutorInfo(
                id=eid, host=str(host), pid=int(pid),
                registered_at=now, last_seen=now)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.record("remote.register", 0.0, category="remote",
                          track="remote", executor=eid, host=str(host))
        return {"id": eid, "lease_ttl": self.lease_ttl,
                "executor_ttl": self.executor_ttl}

    def heartbeat(self, eid: str) -> bool:
        """Refresh an executor's liveness; False when it was never registered."""
        with self._cond:
            info = self._executors.get(eid)
            if info is None:
                return False
            info.last_seen = self.clock()
            return True

    def claim(self, eid: str) -> dict[str, Any] | None:
        """Lease the oldest pending wave to ``eid`` (None when none pending).

        Every grant -- first claim or post-expiry reclaim -- bumps the
        offer's epoch, so a ship from a previous holder is identifiable
        as stale no matter how delayed it arrives.
        """
        now = self.clock()
        with self._cond:
            info = self._executors.get(eid)
            if info is None:
                return None
            info.last_seen = now
            for offer in self._offers.values():
                if offer.state != PENDING:
                    continue
                offer.state = LEASED
                offer.executor = eid
                offer.epoch += 1
                offer.expires_at = now + self.lease_ttl
                doc = offer.to_wire()
                break
            else:
                return None
        tracer = get_tracer()
        if tracer.enabled:
            tracer.record("remote.lease", 0.0, category="remote",
                          track="remote", executor=eid, wave=doc["wave"],
                          epoch=doc["epoch"])
        return doc

    def deliver(self, eid: str, wave_id: str, epoch: int,
                manifest: SegmentManifest,
                rows: Sequence[Mapping[str, Any]]) -> str:
        """Accept a shipped segment for ``wave_id``; returns a status string.

        - ``"accepted"``: current-epoch ship; the wave is done.
        - ``"duplicate"``: the wave already completed (re-ship after a
          lost ack, or the duplicate-ship fault); queued anyway, ingest
          dedups.
        - ``"stale"``: the presenting epoch was fenced out by a
          reassignment; queued for ingest but does not complete the wave.
        - ``"lost"``: injected ``segment_lost`` -- the shipment is
          dropped as if the wire ate it; the executor must re-ship.
        - ``"unknown"``: no such wave (coordinator already reclaimed it).
        """
        now = self.clock()
        ident = f"{wave_id}:{manifest.checksum[:16]}"
        if self.injector is not None and self.injector.claim_segment_lost(ident):
            with self._cond:
                self.lost_ships += 1
            self._trace_ship("lost", eid, wave_id, epoch, manifest)
            return "lost"
        with self._cond:
            info = self._executors.get(eid)
            if info is not None:
                info.last_seen = now
            offer = self._offers.get(wave_id)
            if offer is None:
                status = "unknown"
            else:
                queue_rows = [dict(row) for row in rows]
                if offer.state == DONE:
                    status = "duplicate"
                    self.duplicate_ships += 1
                    offer.deliveries.append((manifest, queue_rows))
                elif offer.state == LEASED and offer.executor == eid \
                        and offer.epoch == int(epoch):
                    status = "accepted"
                    offer.state = DONE
                    offer.deliveries.append((manifest, queue_rows))
                    self.waves_completed += 1
                    if info is not None:
                        info.waves_done += 1
                else:
                    status = "stale"
                    self.stale_ships += 1
                    if info is not None:
                        info.stale_ships += 1
                    offer.deliveries.append((manifest, queue_rows))
            self._cond.notify_all()
        self._trace_ship(status, eid, wave_id, epoch, manifest)
        return status

    # -- coordinator side ------------------------------------------------

    def live(self) -> list[ExecutorInfo]:
        """Executors whose heartbeat is within ``executor_ttl``."""
        now = self.clock()
        with self._cond:
            return [info for info in self._executors.values()
                    if (now - info.last_seen) < self.executor_ttl]

    def offer(self, campaign: str, payloads: list[dict]) -> WaveOffer:
        """Queue one wave of task payloads for executors to claim."""
        with self._cond:
            self.waves_offered += 1
            wave_id = f"{campaign}/w{self.waves_offered}"
            wave = WaveOffer(wave_id=wave_id, campaign=campaign,
                             payloads=payloads)
            self._offers[wave_id] = wave
            self._cond.notify_all()
            return wave

    def expire_stale(self) -> list[str]:
        """Return expired leases to the pending queue; list of wave ids.

        A lease expires when its deadline passed -- the holder died, or
        is too slow -- or when the chaos plan's ``lease_expire`` site
        fires for this (wave, epoch), which simulates the deadline
        passing while the holder still computes.
        """
        now = self.clock()
        expired: list[str] = []
        with self._cond:
            for offer in self._offers.values():
                if offer.state != LEASED:
                    continue
                lapse = now >= offer.expires_at
                if not lapse and self.injector is not None:
                    lapse = self.injector.claim_lease_expire(
                        f"{offer.wave_id}#{offer.epoch}")
                if lapse:
                    offer.state = PENDING
                    offer.executor = None
                    offer.reassignments += 1
                    self.waves_reassigned += 1
                    expired.append(offer.wave_id)
            if expired:
                self._cond.notify_all()
        if expired:
            tracer = get_tracer()
            if tracer.enabled:
                for wave_id in expired:
                    tracer.record("remote.reassign", 0.0, category="remote",
                                  track="remote", wave=wave_id)
        return expired

    def drain_deliveries(self, wave_ids: Sequence[str]
                         ) -> list[tuple[str, SegmentManifest, list[dict]]]:
        """Remove and return queued deliveries for ``wave_ids`` (FIFO)."""
        out: list[tuple[str, SegmentManifest, list[dict]]] = []
        with self._cond:
            for wave_id in wave_ids:
                offer = self._offers.get(wave_id)
                if offer is None:
                    continue
                while offer.deliveries:
                    manifest, rows = offer.deliveries.pop(0)
                    out.append((wave_id, manifest, rows))
        return out

    def state_of(self, wave_ids: Sequence[str]) -> dict[str, str]:
        """Current state per wave id (``"unknown"`` for reclaimed waves)."""
        with self._cond:
            return {
                wave_id: (self._offers[wave_id].state
                          if wave_id in self._offers else "unknown")
                for wave_id in wave_ids
            }

    def take_back(self, wave_id: str) -> WaveOffer | None:
        """Reclaim an unfinished wave for local execution (None when done).

        Removing the offer means a ship that arrives later reads
        ``"unknown"`` -- the executor drops its segment and moves on.
        """
        with self._cond:
            offer = self._offers.get(wave_id)
            if offer is None or offer.state == DONE:
                return None
            return self._offers.pop(wave_id)

    def forget(self, wave_id: str) -> None:
        """Drop a finished offer once its deliveries are fully ingested."""
        with self._cond:
            self._offers.pop(wave_id, None)

    def wait(self, timeout: float) -> None:
        """Block until registry state changes (or ``timeout`` seconds pass)."""
        with self._cond:
            self._cond.wait(timeout)

    # -- observability ---------------------------------------------------

    def executors(self) -> list[dict[str, Any]]:
        """Wire docs for every registered executor (``GET /executors``)."""
        now = self.clock()
        with self._cond:
            return [info.to_dict(now, self.executor_ttl)
                    for info in self._executors.values()]

    def counters(self) -> dict[str, Any]:
        """Monotonic protocol counters for ``/metrics``."""
        now = self.clock()
        with self._cond:
            live = sum(1 for info in self._executors.values()
                       if (now - info.last_seen) < self.executor_ttl)
            return {
                "executors_registered": len(self._executors),
                "executors_live": live,
                "waves_offered": self.waves_offered,
                "waves_completed": self.waves_completed,
                "waves_reassigned": self.waves_reassigned,
                "stale_ships": self.stale_ships,
                "lost_ships": self.lost_ships,
                "duplicate_ships": self.duplicate_ships,
            }

    @staticmethod
    def _trace_ship(status: str, eid: str, wave_id: str, epoch: int,
                    manifest: SegmentManifest) -> None:
        """Emit one ``remote.ship`` span per delivery attempt."""
        tracer = get_tracer()
        if tracer.enabled:
            tracer.record("remote.ship", 0.0, category="remote",
                          track="remote", status=status, executor=eid,
                          wave=wave_id, epoch=epoch, rows=manifest.rows)
