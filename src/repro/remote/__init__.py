"""Multi-host result shipping: leases, journal segments, remote executors.

The campaign store (:mod:`repro.campaign.store`) is safe for many
writers *on one host* -- ``flock`` plus single-``write()`` appends. This
package extends that contract across hosts without assuming a shared
filesystem lock, using a lease-based log-shipping protocol:

1. **Leases** (:mod:`repro.remote.lease`): epoch-fenced lease files
   with expiry and takeover. A holder that lapses is superseded by a
   higher epoch; its later writes fail with a typed error instead of
   landing silently.
2. **Segments** (:mod:`repro.remote.segment`): each executor appends
   results to a *private* leased journal segment, then seals it with a
   manifest carrying the row count and content checksum.
3. **Shipping** (:mod:`repro.remote.ship`): sealed segments travel to
   the coordinator, which verifies them against their manifest and
   ingests rows into the sharded v2 store with dedup against the
   persistent index plus a segment ledger -- re-shipped or duplicated
   segments ingest exactly once.
4. **Dispatch** (:mod:`repro.remote.registry`,
   :mod:`repro.remote.coordinator`, :mod:`repro.remote.executor`): the
   service daemon registers executors (``POST /executors``), leases
   campaign waves to them with heartbeat-based liveness, reassigns
   expired leases, and degrades gracefully to local execution when no
   executor is live.

The headline invariant, pinned by the distributed harness in
``tests/integration/test_distributed_identity.py``: a campaign executed
across 4 remote executors with injected lease expiries, duplicated
ships, and a SIGKILLed executor is *bit-identical* to a single-process
fault-free run.
"""

from __future__ import annotations

from repro.errors import (
    LeaseError,
    LeaseExpiredError,
    RemoteError,
    SegmentError,
    StaleWriterError,
)
from repro.remote.coordinator import RemoteCoordinator
from repro.remote.executor import RemoteExecutor
from repro.remote.lease import Lease, LeaseFile
from repro.remote.registry import ExecutorInfo, ExecutorRegistry, WaveOffer
from repro.remote.segment import SegmentManifest, SegmentWriter, read_segment
from repro.remote.ship import IngestReport, SegmentIngestor

__all__ = [
    "ExecutorInfo",
    "ExecutorRegistry",
    "IngestReport",
    "Lease",
    "LeaseError",
    "LeaseExpiredError",
    "LeaseFile",
    "RemoteCoordinator",
    "RemoteError",
    "RemoteExecutor",
    "SegmentError",
    "SegmentIngestor",
    "SegmentManifest",
    "SegmentWriter",
    "StaleWriterError",
    "WaveOffer",
]
