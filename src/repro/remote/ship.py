"""Coordinator-side segment ingest: verify, dedup, land in the shared store.

The ingest path is what makes multi-host shipping *exactly-once*
without a shared filesystem lock. Three layers of defense, cheapest
first:

1. **Manifest verification** -- a shipped segment whose row count or
   content checksum disagrees with its sealed manifest is rejected
   whole (:class:`~repro.errors.SegmentError`); no partial ingest.
2. **Segment ledger** -- every ingested segment's content checksum is
   recorded in an append-only ledger next to the campaign journal.
   Because result rows are deterministic and carry no
   timestamps/host names, a re-shipped segment (duplicate ship fault,
   retry after a lost ack) or an identical segment recomputed by a
   reassigned executor hashes identically and is skipped whole.
3. **Index dedup** -- rows from *overlapping but non-identical*
   segments (a reassigned wave sharded differently) are deduplicated
   one by one against the store: a key that already resolves is
   counted ``deduped`` and not re-put, so the persistent shard index
   gains exactly one row per unique result.

Ingest deliberately does **not** append to the campaign journal: the
campaign executor's single finish path journals every dispatched task
exactly once (with ``persist=False`` since the rows already landed
here), keeping the journal shape identical between local and remote
execution -- which is half of the bit-identity story.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.campaign.spec import PointSpec
from repro.campaign.store import DONE, NA, Journal, ResultStore
from repro.errors import CampaignError, SegmentError
from repro.remote.segment import SegmentManifest, verify_rows
from repro.trace import get_tracer

#: Statuses ingest will land in the store; anything else (failed rows,
#: unknown drift) is skipped and left for the coordinator to retry.
_STORABLE = (DONE, NA)


@dataclass
class IngestReport:
    """Cumulative counters for one ingestor (one campaign's coordinator)."""

    segments: int = 0            #: segments verified and processed
    duplicate_segments: int = 0  #: whole segments skipped via the ledger
    rows: int = 0                #: rows examined across processed segments
    ingested: int = 0            #: rows newly landed in the store
    deduped: int = 0             #: rows already present (index/object hit)
    skipped: int = 0             #: non-storable rows (failed / drifted)
    by_executor: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Serialize for metrics endpoints and CLI summaries."""
        return {
            "segments": self.segments,
            "duplicate_segments": self.duplicate_segments,
            "rows": self.rows,
            "ingested": self.ingested,
            "deduped": self.deduped,
            "skipped": self.skipped,
            "by_executor": dict(sorted(self.by_executor.items())),
        }


class SegmentLedger:
    """Append-only record of ingested segment checksums (one campaign).

    One JSON line per ingested segment; appends go through
    :class:`~repro.campaign.store.Journal` so they inherit the flock +
    single-``write()`` discipline and torn-tail healing. The ledger is
    the idempotency barrier: :meth:`seen` answers "was this exact
    content ingested already?" across process restarts, which is what
    keeps a resume from double-ingesting segments that landed before a
    crash.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        """Bind to ``path`` (created on first record)."""
        self.path = Path(path)
        self._journal = Journal(self.path)
        self._seen: set[str] | None = None

    def _load(self) -> set[str]:
        if self._seen is None:
            self._seen = {
                entry["checksum"] for entry in self._journal.entries()
                if isinstance(entry.get("checksum"), str)
            }
        return self._seen

    def seen(self, checksum: str) -> bool:
        """True when a segment with this content checksum was ingested."""
        return checksum in self._load()

    def record(self, manifest: SegmentManifest, ingested: int, deduped: int) -> None:
        """Durably record ``manifest`` as ingested."""
        self._journal.append({
            "checksum": manifest.checksum,
            "segment": manifest.segment,
            "executor": manifest.executor,
            "epoch": manifest.epoch,
            "wave": manifest.wave,
            "rows": manifest.rows,
            "ingested": ingested,
            "deduped": deduped,
        })
        self._load().add(manifest.checksum)


class SegmentIngestor:
    """Lands shipped segments in one campaign's shared store, exactly once."""

    def __init__(self, store: ResultStore, ledger_path: str | os.PathLike) -> None:
        """Ingest into ``store``, recording segments at ``ledger_path``."""
        self.store = store
        self.ledger = SegmentLedger(ledger_path)
        self.report = IngestReport()

    def ingest(self, manifest: SegmentManifest,
               rows: Sequence[Mapping[str, Any]]) -> IngestReport:
        """Verify and ingest one shipped segment; returns the running report.

        Raises :class:`SegmentError` (nothing ingested) when the rows
        fail manifest verification; otherwise idempotent -- duplicate
        segments and already-present rows are counted, not re-landed.
        """
        started = time.perf_counter()
        verify_rows(manifest, rows)
        if self.ledger.seen(manifest.checksum):
            self.report.duplicate_segments += 1
            self._trace(manifest, started, duplicate=True)
            return self.report
        self.report.segments += 1
        ingested = deduped = 0
        for row in rows:
            self.report.rows += 1
            point = self._point(row)
            status = (row.get("result") or {}).get("status")
            if point is None or status not in _STORABLE:
                self.report.skipped += 1
                continue
            key = self.store.key_for(point)
            if self.store.contains(key):
                deduped += 1
                continue
            self.store.put(point, dict(row["result"]), wall_ms=row.get("wall_ms"))
            ingested += 1
        self.ledger.record(manifest, ingested, deduped)
        self.report.ingested += ingested
        self.report.deduped += deduped
        by = self.report.by_executor
        by[manifest.executor] = by.get(manifest.executor, 0) + ingested
        self._trace(manifest, started, duplicate=False)
        return self.report

    @staticmethod
    def _point(row: Mapping[str, Any]) -> PointSpec | None:
        """Parse a row's point spec; schema drift reads as non-storable."""
        payload = row.get("point")
        if not isinstance(payload, Mapping):
            return None
        try:
            return PointSpec.from_dict(payload, ignore_unknown=True)
        except (CampaignError, TypeError):
            # missing fields surface as TypeError from the constructor
            return None

    @staticmethod
    def _trace(manifest: SegmentManifest, started: float, duplicate: bool) -> None:
        """Emit one ``remote.ingest`` span for a processed segment."""
        tracer = get_tracer()
        if tracer.enabled:
            tracer.record(
                "remote.ingest", time.perf_counter() - started,
                category="remote", track="remote",
                segment=manifest.segment, executor=manifest.executor,
                wave=manifest.wave, rows=manifest.rows, duplicate=duplicate)
