"""Epoch-fenced on-disk leases with expiry and takeover.

A lease file is a small JSON document naming the current ``holder``, a
monotonically increasing ``epoch``, and an expiry deadline. The rules:

- **Acquire**: a free or *expired* lease may be claimed by any holder;
  every grant bumps the epoch, so the previous holder's (holder, epoch)
  pair can never be mistaken for the current one.
- **Renew**: only the current (holder, epoch) may extend the deadline.
- **Fencing**: guarded operations re-validate the lease immediately
  before acting. A lapsed deadline raises
  :class:`~repro.errors.LeaseExpiredError`; a takeover (the file now
  names someone else, or a higher epoch) raises
  :class:`~repro.errors.StaleWriterError`. Either way the write never
  happens -- the zombie writer fails loudly instead of corrupting state
  the new holder owns.

All reads and writes of the lease file happen under an exclusive
``flock`` on the file itself, so acquire/renew/check are atomic with
respect to each other even across processes. The clock is injectable
(``clock=time.time`` by default) so tests drive expiry deterministically
without sleeping.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.errors import LeaseError, LeaseExpiredError, StaleWriterError

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Lease:
    """An immutable grant: ``holder`` owns ``name`` at ``epoch`` until expiry."""

    name: str
    holder: str
    epoch: int
    granted_at: float
    ttl: float

    @property
    def expires_at(self) -> float:
        """Wall-clock deadline after which the lease may be taken over."""
        return self.granted_at + self.ttl

    def expired(self, now: float) -> bool:
        """True when ``now`` is past the deadline (takeover is allowed)."""
        return now >= self.expires_at

    def to_dict(self) -> dict[str, Any]:
        """Serialize to the on-disk JSON shape."""
        return {
            "name": self.name,
            "holder": self.holder,
            "epoch": self.epoch,
            "granted_at": self.granted_at,
            "ttl": self.ttl,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Lease":
        """Rebuild a lease from its on-disk JSON shape."""
        try:
            return cls(
                name=str(payload["name"]),
                holder=str(payload["holder"]),
                epoch=int(payload["epoch"]),
                granted_at=float(payload["granted_at"]),
                ttl=float(payload["ttl"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise LeaseError(f"malformed lease payload: {exc}") from None


class LeaseFile:
    """One named lease persisted at ``path``; see the module docstring."""

    def __init__(self, path: str | os.PathLike,
                 clock: Callable[[], float] = time.time) -> None:
        """Bind to ``path`` (created on first acquire) with an injectable clock."""
        self.path = Path(path)
        self.clock = clock

    # -- locked file primitives ------------------------------------------

    def _locked(self, mutate: Callable[[Lease | None], Lease | None]) -> Lease | None:
        """Run ``mutate(current)`` under an exclusive lock on the lease file.

        ``mutate`` returns the lease to persist (or None to leave the
        file as-is); its exceptions propagate with the file untouched.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            try:
                size = os.fstat(fd).st_size
                current: Lease | None = None
                if size:
                    raw = os.pread(fd, size, 0)
                    try:
                        current = Lease.from_dict(json.loads(raw.decode("utf-8")))
                    except (json.JSONDecodeError, UnicodeDecodeError, LeaseError):
                        current = None  # torn lease file: treat as free
                updated = mutate(current)
                if updated is not None and updated is not current:
                    data = (json.dumps(updated.to_dict(), sort_keys=True) + "\n").encode("utf-8")
                    os.ftruncate(fd, 0)
                    os.pwrite(fd, data, 0)
                    os.fsync(fd)
                return updated
            finally:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    # -- protocol --------------------------------------------------------

    def read(self) -> Lease | None:
        """The current lease on disk, or None when free/torn."""
        seen: list[Lease | None] = [None]

        def peek(current: Lease | None) -> None:
            seen[0] = current
            return None

        self._locked(peek)
        return seen[0]

    def acquire(self, holder: str, ttl: float) -> Lease:
        """Claim the lease for ``holder``, bumping the epoch.

        Succeeds when the lease is free, expired, or already held by
        ``holder`` (re-acquire after a suspected lapse). A live lease
        held by someone else raises :class:`LeaseError`. Every grant --
        including a re-acquire -- increments the epoch, fencing out any
        writer still presenting the previous grant.
        """
        if ttl <= 0:
            raise LeaseError(f"lease ttl must be positive, got {ttl}")
        now = self.clock()

        def grant(current: Lease | None) -> Lease:
            if current is not None and current.holder != holder \
                    and not current.expired(now):
                raise LeaseError(
                    f"lease {self.path.name} held by {current.holder!r} "
                    f"(epoch {current.epoch}) for another "
                    f"{current.expires_at - now:.3f}s")
            epoch = 1 if current is None else current.epoch + 1
            return Lease(name=self.path.stem, holder=holder, epoch=epoch,
                         granted_at=now, ttl=float(ttl))

        granted = self._locked(grant)
        assert granted is not None
        return granted

    def renew(self, lease: Lease, ttl: float | None = None) -> Lease:
        """Extend ``lease`` from now; only the current (holder, epoch) may.

        Raises :class:`StaleWriterError` when the file names a different
        holder or epoch (takeover happened), and
        :class:`LeaseExpiredError` when the grant lapsed before the
        renewal -- even if nobody took over yet, the holder must
        re-acquire so the epoch advances.
        """
        now = self.clock()

        def extend(current: Lease | None) -> Lease:
            self._validate(current, lease, now)
            return Lease(name=lease.name, holder=lease.holder, epoch=lease.epoch,
                         granted_at=now, ttl=float(ttl if ttl is not None else lease.ttl))

        renewed = self._locked(extend)
        assert renewed is not None
        return renewed

    def check(self, lease: Lease) -> None:
        """Validate that ``lease`` is still the live grant; raise if not.

        The fence primitive: :class:`LeaseExpiredError` for a lapsed
        deadline, :class:`StaleWriterError` for a takeover.
        """
        now = self.clock()

        def validate(current: Lease | None) -> None:
            self._validate(current, lease, now)
            return None

        self._locked(validate)

    def guard(self, lease: Lease) -> Callable[[], None]:
        """A zero-argument fence closure for ``Journal(path, fence=...)``.

        Each call re-reads the lease file under its lock and raises the
        typed error when ``lease`` is no longer the live grant, so every
        fenced journal append re-validates immediately before writing.
        """
        return lambda: self.check(lease)

    def _validate(self, current: Lease | None, lease: Lease, now: float) -> None:
        """Shared check/renew validation (runs under the file lock)."""
        if current is None or current.holder != lease.holder \
                or current.epoch != lease.epoch:
            held = "free" if current is None else (
                f"held by {current.holder!r} at epoch {current.epoch}")
            raise StaleWriterError(
                f"lease {self.path.name}: writer {lease.holder!r} at epoch "
                f"{lease.epoch} was superseded (now {held})")
        if current.expired(now):
            raise LeaseExpiredError(
                f"lease {self.path.name}: holder {lease.holder!r} epoch "
                f"{lease.epoch} expired {now - current.expires_at:.3f}s ago")
