"""Benchmark registration, mirroring Google Benchmark's BENCHMARK macros."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.bench.state import BenchState
from repro.errors import BenchmarkError

__all__ = ["BenchmarkDef", "BenchmarkRegistry"]

BenchFn = Callable[[BenchState], None]


@dataclass(frozen=True)
class BenchmarkDef:
    """One registered benchmark: a function plus its range arguments."""

    name: str
    fn: BenchFn
    ranges: tuple[tuple[int, ...], ...] = ((),)
    min_time: float = 5.0

    def instances(self) -> list[tuple[str, tuple[int, ...]]]:
        """Expanded (display name, ranges) pairs, one per range tuple."""
        out = []
        for r in self.ranges:
            label = self.name if not r else f"{self.name}/{'/'.join(map(str, r))}"
            out.append((label, r))
        return out


@dataclass
class BenchmarkRegistry:
    """A collection of benchmarks to run together."""

    benchmarks: list[BenchmarkDef] = field(default_factory=list)

    def register(
        self,
        name: str,
        fn: BenchFn,
        ranges: Sequence[Sequence[int]] | None = None,
        min_time: float = 5.0,
    ) -> BenchmarkDef:
        """Register ``fn`` under ``name`` with optional range sweeps."""
        if any(b.name == name for b in self.benchmarks):
            raise BenchmarkError(f"benchmark {name!r} already registered")
        norm: tuple[tuple[int, ...], ...]
        if ranges is None:
            norm = ((),)
        else:
            norm = tuple(tuple(int(x) for x in r) for r in ranges)
            if not norm:
                raise BenchmarkError("ranges must not be empty when given")
        definition = BenchmarkDef(name=name, fn=fn, ranges=norm, min_time=min_time)
        self.benchmarks.append(definition)
        return definition

    def benchmark(
        self,
        name: str,
        ranges: Sequence[Sequence[int]] | None = None,
        min_time: float = 5.0,
    ) -> Callable[[BenchFn], BenchFn]:
        """Decorator form of :meth:`register`."""

        def deco(fn: BenchFn) -> BenchFn:
            self.register(name, fn, ranges=ranges, min_time=min_time)
            return fn

        return deco

    def filter(self, pattern: str) -> list[BenchmarkDef]:
        """Benchmarks whose name contains ``pattern``."""
        return [b for b in self.benchmarks if pattern in b.name]
