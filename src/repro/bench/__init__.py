"""Google-Benchmark-like harness running in simulated time."""

from repro.bench.registry import BenchmarkDef, BenchmarkRegistry
from repro.bench.reporters import console_report, csv_report, json_report
from repro.bench.runner import run_benchmarks, run_one
from repro.bench.state import BenchResult, BenchState

__all__ = [
    "BenchmarkDef",
    "BenchmarkRegistry",
    "console_report",
    "csv_report",
    "json_report",
    "run_benchmarks",
    "run_one",
    "BenchResult",
    "BenchState",
]
