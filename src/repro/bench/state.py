"""Benchmark state object, modeled on Google Benchmark's ``State``.

pSTL-Bench runs every micro-benchmark under Google Benchmark with
``--benchmark_min_time=5s`` and manual timing (``SetIterationTime`` inside
``WRAP_TIMING``). The reproduction keeps that discipline in *simulated*
seconds: the loop repeats until at least ``min_time`` of simulated time
has accumulated (or the iteration cap is reached), then reports averages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import BenchmarkError
from repro.sim.report import Counters, SimReport

__all__ = ["BenchState", "BenchResult"]


@dataclass
class BenchState:
    """Mutable per-run benchmark state.

    Use as an iterator (``for _ in state:``) exactly like Google
    Benchmark; each pass through the loop is one measured iteration whose
    time the body must report via :meth:`set_iteration_time` (the
    WRAP_TIMING contract).
    """

    ranges: Sequence[int] = ()
    min_time: float = 5.0
    max_iterations: int = 1_000_000_000
    min_iterations: int = 1

    _iterations: int = field(default=0, init=False)
    _total_time: float = field(default=0.0, init=False)
    _iteration_times: list[float] = field(default_factory=list, init=False)
    _bytes_processed: int = field(default=0, init=False)
    _items_processed: int = field(default=0, init=False)
    _counters: Counters = field(default_factory=Counters, init=False)
    _pending: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.min_time <= 0:
            raise BenchmarkError("min_time must be positive")
        if self.max_iterations < self.min_iterations:
            raise BenchmarkError("max_iterations must be >= min_iterations")

    def range(self, index: int = 0) -> int:
        """The index-th range argument (problem size etc.)."""
        try:
            return int(self.ranges[index])
        except IndexError:
            raise BenchmarkError(
                f"benchmark has no range({index}); ranges={list(self.ranges)}"
            ) from None

    def __iter__(self) -> Iterator[None]:
        while self.keep_running():
            yield None

    def keep_running(self) -> bool:
        """Whether another measured iteration should execute."""
        if self._pending:
            raise BenchmarkError(
                "previous iteration did not call set_iteration_time() "
                "(WRAP_TIMING contract violated)"
            )
        if self._iterations >= self.max_iterations:
            return False
        if (
            self._iterations >= self.min_iterations
            and self._total_time >= self.min_time
        ):
            return False
        self._pending = True
        return True

    def set_iteration_time(self, seconds: float) -> None:
        """Report the (simulated) duration of the current iteration."""
        if not self._pending:
            raise BenchmarkError("set_iteration_time() outside an iteration")
        if seconds < 0:
            raise BenchmarkError("iteration time must be non-negative")
        self._pending = False
        self._iterations += 1
        self._total_time += seconds
        self._iteration_times.append(seconds)

    def record_report(self, report: SimReport, repeat: int = 1) -> None:
        """Accumulate a simulation report: time + hardware counters.

        Equivalent to WRAP_TIMING's combination of MEASURE_TIME and the
        hw_counters_begin/end bracket. ``repeat > 1`` batch-records the
        same deterministic iteration multiple times -- the simulator's
        equivalent of Google Benchmark extrapolating its iteration count
        instead of spinning a hot loop (the results are identical because
        the simulation is deterministic).
        """
        if repeat < 1:
            raise BenchmarkError("repeat must be >= 1")
        self._counters = self._counters + report.counters.scaled(repeat)
        self.set_iteration_time(report.seconds)
        if repeat > 1:
            extra = repeat - 1
            self._iterations += extra
            self._total_time += report.seconds * extra
            self._iteration_times.extend([report.seconds] * min(extra, 16))

    def set_bytes_processed(self, nbytes: int) -> None:
        """Total bytes processed over all iterations (throughput metric)."""
        if nbytes < 0:
            raise BenchmarkError("bytes processed must be non-negative")
        self._bytes_processed = int(nbytes)

    def set_items_processed(self, items: int) -> None:
        """Total items processed over all iterations."""
        if items < 0:
            raise BenchmarkError("items processed must be non-negative")
        self._items_processed = int(items)

    @property
    def iterations(self) -> int:
        """Iterations completed so far."""
        return self._iterations

    @property
    def accumulated_time(self) -> float:
        """Simulated seconds accumulated so far."""
        return self._total_time

    def finish(self, name: str) -> "BenchResult":
        """Freeze into a result row."""
        if self._pending:
            raise BenchmarkError("benchmark ended mid-iteration")
        if self._iterations == 0:
            raise BenchmarkError(f"benchmark {name!r} ran zero iterations")
        return BenchResult(
            name=name,
            iterations=self._iterations,
            total_time=self._total_time,
            mean_time=self._total_time / self._iterations,
            bytes_processed=self._bytes_processed,
            items_processed=self._items_processed,
            counters=self._counters,
        )


@dataclass(frozen=True)
class BenchResult:
    """One benchmark's aggregated outcome."""

    name: str
    iterations: int
    total_time: float
    mean_time: float
    bytes_processed: int = 0
    items_processed: int = 0
    counters: Counters = field(default_factory=Counters)

    @property
    def bytes_per_second(self) -> float:
        """Throughput derived the way Google Benchmark derives it."""
        if self.total_time <= 0 or self.bytes_processed <= 0:
            return 0.0
        return self.bytes_processed / self.total_time
