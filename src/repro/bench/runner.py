"""Benchmark runner: executes a registry and collects results.

When the global tracer is enabled (``repro.trace``), every benchmark
instance is wrapped in a ``bench:<name>`` span recording its iteration
count and accumulated simulated seconds, so a traced registry run shows
each instance's measurement window on the timeline (the warmup/measure
split inside the window is emitted by ``repro.suite.wrappers``).
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.registry import BenchmarkDef, BenchmarkRegistry
from repro.bench.state import BenchResult, BenchState
from repro.trace.core import get_tracer

__all__ = ["run_benchmarks", "run_one"]


def run_one(
    definition: BenchmarkDef,
    ranges: Sequence[int],
    name: str | None = None,
    min_time: float | None = None,
    max_iterations: int = 1_000_000_000,
) -> BenchResult:
    """Run a single benchmark instance to completion.

    Parameters
    ----------
    definition:
        The registered benchmark: its ``fn(state)`` body is called once
        and drives the min-time iteration loop itself via
        :class:`~repro.bench.state.BenchState` (the Google-Benchmark
        contract -- the body loops ``while state.keep_running()``).
    ranges:
        Range arguments for this instance (problem size, thread count,
        ...), exposed to the body as ``state.range(i)``. Usually one
        entry of ``definition.instances()``.
    name:
        Display name for the result row; defaults to
        ``definition.name``. :func:`run_benchmarks` passes the expanded
        per-instance label (``"name/1024"``).
    min_time:
        Minimum *simulated* seconds the measurement loop must accumulate
        before stopping (the suite's ``--benchmark_min_time`` analogue);
        ``None`` uses ``definition.min_time`` (default 5.0 s).
    max_iterations:
        Hard cap on loop iterations, applied even if ``min_time`` was
        not reached (guards against zero-cost bodies).

    Returns
    -------
    BenchResult
        The frozen aggregate (iterations, mean/total simulated time,
        throughput inputs, accumulated counters) for this instance.
    """
    state = BenchState(
        ranges=tuple(ranges),
        min_time=min_time if min_time is not None else definition.min_time,
        max_iterations=max_iterations,
    )
    label = name or definition.name
    tracer = get_tracer()
    if not tracer.enabled:
        definition.fn(state)
        return state.finish(label)
    with tracer.span(
        f"bench:{label}",
        category="bench",
        benchmark=definition.name,
        ranges=list(ranges),
    ) as span:
        definition.fn(state)
        span.set_attribute("iterations", state.iterations)
        span.set_attribute("simulated_seconds", state.accumulated_time)
    return state.finish(label)


def run_benchmarks(
    registry: BenchmarkRegistry,
    pattern: str = "",
    min_time: float | None = None,
    max_iterations: int = 1_000_000_000,
) -> list[BenchResult]:
    """Run all (matching) registered benchmarks, expanding range sweeps.

    ``pattern`` is a substring filter on benchmark names (empty = all);
    ``min_time``/``max_iterations`` override per-instance loop bounds as
    in :func:`run_one`. Returns one :class:`BenchResult` per expanded
    (benchmark, ranges) instance, in registration order.
    """
    results: list[BenchResult] = []
    for definition in registry.filter(pattern) if pattern else registry.benchmarks:
        for label, ranges in definition.instances():
            results.append(
                run_one(
                    definition,
                    ranges,
                    name=label,
                    min_time=min_time,
                    max_iterations=max_iterations,
                )
            )
    return results
