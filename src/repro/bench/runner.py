"""Benchmark runner: executes a registry and collects results."""

from __future__ import annotations

from typing import Sequence

from repro.bench.registry import BenchmarkDef, BenchmarkRegistry
from repro.bench.state import BenchResult, BenchState

__all__ = ["run_benchmarks", "run_one"]


def run_one(
    definition: BenchmarkDef,
    ranges: Sequence[int],
    name: str | None = None,
    min_time: float | None = None,
    max_iterations: int = 1_000_000_000,
) -> BenchResult:
    """Run a single benchmark instance to completion."""
    state = BenchState(
        ranges=tuple(ranges),
        min_time=min_time if min_time is not None else definition.min_time,
        max_iterations=max_iterations,
    )
    definition.fn(state)
    return state.finish(name or definition.name)


def run_benchmarks(
    registry: BenchmarkRegistry,
    pattern: str = "",
    min_time: float | None = None,
    max_iterations: int = 1_000_000_000,
) -> list[BenchResult]:
    """Run all (matching) registered benchmarks, expanding range sweeps."""
    results: list[BenchResult] = []
    for definition in registry.filter(pattern) if pattern else registry.benchmarks:
        for label, ranges in definition.instances():
            results.append(
                run_one(
                    definition,
                    ranges,
                    name=label,
                    min_time=min_time,
                    max_iterations=max_iterations,
                )
            )
    return results
