"""Console / CSV / JSON reporters for benchmark results."""

from __future__ import annotations

import csv
import io
import json
from typing import Sequence

from repro.bench.state import BenchResult
from repro.util.tables import TextTable
from repro.util.units import format_bytes, format_count, format_seconds

__all__ = ["console_report", "csv_report", "json_report"]


def console_report(results: Sequence[BenchResult], title: str | None = None) -> str:
    """Aligned console table, Google-Benchmark style."""
    table = TextTable(
        headers=["Benchmark", "Time", "Iterations", "Throughput", "Instructions"],
        title=title,
    )
    for r in results:
        throughput = (
            f"{format_bytes(r.bytes_per_second)}/s" if r.bytes_processed else "-"
        )
        instr = (
            format_count(r.counters.instructions) if r.counters.instructions else "-"
        )
        table.add_row(
            [r.name, format_seconds(r.mean_time), r.iterations, throughput, instr]
        )
    return table.render()


def csv_report(results: Sequence[BenchResult]) -> str:
    """CSV with one row per benchmark instance."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(
        [
            "name",
            "iterations",
            "mean_time_s",
            "total_time_s",
            "bytes_per_second",
            "instructions",
            "fp_scalar",
            "fp_packed_128",
            "fp_packed_256",
            "data_volume_bytes",
        ]
    )
    for r in results:
        writer.writerow(
            [
                r.name,
                r.iterations,
                f"{r.mean_time:.9g}",
                f"{r.total_time:.9g}",
                f"{r.bytes_per_second:.9g}",
                f"{r.counters.instructions:.9g}",
                f"{r.counters.fp_scalar:.9g}",
                f"{r.counters.fp_packed_128:.9g}",
                f"{r.counters.fp_packed_256:.9g}",
                f"{r.counters.data_volume:.9g}",
            ]
        )
    return buf.getvalue()


def json_report(results: Sequence[BenchResult]) -> str:
    """JSON in the shape of Google Benchmark's --benchmark_format=json."""
    payload = {
        "benchmarks": [
            {
                "name": r.name,
                "iterations": r.iterations,
                "real_time": r.mean_time,
                "time_unit": "s",
                "bytes_per_second": r.bytes_per_second,
                "counters": {
                    "instructions": r.counters.instructions,
                    "fp_scalar": r.counters.fp_scalar,
                    "fp_packed_128": r.counters.fp_packed_128,
                    "fp_packed_256": r.counters.fp_packed_256,
                    "data_volume": r.counters.data_volume,
                },
            }
            for r in results
        ]
    }
    return json.dumps(payload, indent=2)
