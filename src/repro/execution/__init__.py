"""Execution layer: policies, thread placement, partitioning."""

from repro.execution.affinity import ThreadPlacement
from repro.execution.partition import (
    BlockCyclicPartitioner,
    Chunk,
    Partition,
    Partitioner,
    StaticPartitioner,
    WorkStealingPartitioner,
)
from repro.execution.policy import PAR, PAR_UNSEQ, SEQ, ExecutionPolicy

__all__ = [
    "ThreadPlacement",
    "BlockCyclicPartitioner",
    "Chunk",
    "Partition",
    "Partitioner",
    "StaticPartitioner",
    "WorkStealingPartitioner",
    "PAR",
    "PAR_UNSEQ",
    "SEQ",
    "ExecutionPolicy",
]
