"""ExecutionContext: one (machine, backend, threads, allocator, mode) tuple.

Every algorithm call takes a context; the context decides sequential
fallback, builds partitions, allocates arrays with the right placement and
dispatches work profiles to the CPU or GPU cost engine. The ``mode``
field selects *run* (materialised NumPy data, real results) vs *model*
(analytic profiles only), per DESIGN.md section 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Union

import numpy as np

from repro.backends.base import Backend
from repro.errors import ConfigurationError
from repro.execution.affinity import ThreadPlacement
from repro.execution.policy import PAR, ExecutionPolicy
from repro.machines.cpu import CpuMachine
from repro.machines.gpu import GpuMachine
from repro.memory.allocators import (
    Allocator,
    DefaultAllocator,
    HpxNumaAllocator,
    ParallelFirstTouchAllocator,
)
from repro.memory.array import SimArray
from repro.memory.layout import PagePlacement
from repro.sim.engine import simulate_cpu
from repro.sim.gpu import GpuExecution, simulate_gpu
from repro.sim.report import SimReport
from repro.sim.work import WorkProfile
from repro.trace.core import get_tracer
from repro.types import ElemType

__all__ = ["ExecutionContext", "RUN_MODE_MAX_ELEMS"]

Machine = Union[CpuMachine, GpuMachine]

#: Hard cap on materialised array sizes; beyond this the paper's sweeps
#: must use model mode (a 2^30 double array is 8 GiB).
RUN_MODE_MAX_ELEMS = 1 << 25


def _default_allocator(backend: Backend) -> Allocator:
    """The allocator the paper uses with this backend (Section 5.1)."""
    if backend.runtime == "HPX":
        return HpxNumaAllocator()
    if backend.runtime == "CUDA":
        return DefaultAllocator()  # residency handled by unified memory
    if backend.is_sequential:
        return DefaultAllocator()
    return ParallelFirstTouchAllocator()


@dataclass(frozen=True)
class ExecutionContext:
    """Execution environment for parallel STL calls."""

    machine: Machine
    backend: Backend
    threads: int = 1
    policy: ExecutionPolicy = PAR
    allocator: Allocator | None = None
    mode: str = "model"
    gpu_options: GpuExecution = field(default_factory=GpuExecution)
    rng_seed: int = 0x5EED

    def __post_init__(self) -> None:
        if self.mode not in ("run", "model"):
            raise ConfigurationError(f"mode must be 'run' or 'model', got {self.mode!r}")
        if self.threads < 1:
            raise ConfigurationError("threads must be >= 1")
        if self.is_gpu:
            if self.backend.runtime != "CUDA":
                raise ConfigurationError(
                    f"machine {self.machine.name} is a GPU; use the NVC-CUDA backend"
                )
        else:
            if self.backend.runtime == "CUDA":
                raise ConfigurationError(
                    "NVC-CUDA backend requires a GPU machine (Mach D / Mach E)"
                )
            if self.threads > self.machine.total_cores:
                raise ConfigurationError(
                    f"threads={self.threads} exceeds {self.machine.name}'s "
                    f"{self.machine.total_cores} cores"
                )
        if self.allocator is None:
            object.__setattr__(self, "allocator", _default_allocator(self.backend))

    # --- basic properties --------------------------------------------------------
    @property
    def is_gpu(self) -> bool:
        """Whether this context targets a GPU machine."""
        return isinstance(self.machine, GpuMachine)

    @property
    def thread_placement(self) -> ThreadPlacement:
        """Thread->node placement (CPU contexts only)."""
        if self.is_gpu:
            raise ConfigurationError("GPU contexts have no NUMA thread placement")
        return ThreadPlacement(
            self.machine, self.threads, strategy=self.backend.affinity_strategy
        )

    @property
    def threads_per_node(self) -> tuple[int, ...]:
        """Threads per NUMA node (CPU), or a single pseudo-node (GPU)."""
        if self.is_gpu:
            return (self.threads,)
        return self.thread_placement.threads_per_node

    def with_(self, **changes) -> "ExecutionContext":
        """A modified copy (threads, mode, allocator...)."""
        return replace(self, **changes)

    # --- dispatch ----------------------------------------------------------------
    def runs_parallel(self, alg: str, n: int) -> bool:
        """Whether this invocation executes in parallel.

        Combines the execution policy, the backend's capability matrix and
        its sequential-fallback thresholds (GNU below 2^10 etc.).
        """
        if self.is_gpu:
            return True
        if not self.policy.is_parallel:
            return False
        return self.backend.runs_parallel(alg, n, self.threads)

    # --- memory ------------------------------------------------------------------
    def allocate(self, n: int, elem: ElemType) -> SimArray:
        """Allocate per this context's allocator; materialised in run mode."""
        materialize = self.mode == "run"
        if materialize and n > RUN_MODE_MAX_ELEMS:
            raise ConfigurationError(
                f"run mode caps arrays at 2^25 elements; {n} requested. "
                "Use mode='model' for the paper-scale sweeps."
            )
        if self.is_gpu:
            data = np.zeros(n, dtype=elem.dtype) if materialize else None
            return SimArray(
                n=n,
                elem=elem,
                placement=PagePlacement.single_node(0, 1, policy="default"),
                data=data,
            )
        return self.allocator.allocate(
            n,
            elem,
            self.machine,
            self.threads_per_node,
            materialize=materialize,
        )

    def array_from(self, data: np.ndarray, elem: ElemType) -> SimArray:
        """Wrap existing data (run-mode convenience for examples/tests)."""
        arr = self.allocate(len(data), elem)
        if arr.data is not None:
            arr.data[:] = np.asarray(data, dtype=elem.dtype)
        return arr

    # --- costing -----------------------------------------------------------------
    def simulate(
        self, profile: WorkProfile, arrays: tuple[SimArray, ...] = ()
    ) -> SimReport:
        """Cost a work profile on this context's machine.

        When the global tracer is enabled (``repro.trace``), the call is
        wrapped in a root span named after the algorithm, carrying this
        context's machine/backend/threads/mode/policy attributes; the
        engine's phase and lane spans nest inside it on the timeline.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            if self.is_gpu:
                return simulate_gpu(self.machine, profile, arrays, self.gpu_options)
            return simulate_cpu(self.machine, self.backend, profile)
        with tracer.span(
            profile.alg,
            category="call",
            machine=self.machine.name,
            backend=self.backend.name,
            threads=self.threads,
            mode=self.mode,
            policy=self.policy.value,
            n=profile.n,
        ) as span:
            if self.is_gpu:
                report = simulate_gpu(
                    self.machine, profile, arrays, self.gpu_options
                )
            else:
                report = simulate_cpu(self.machine, self.backend, profile)
            span.set_attribute("seconds", report.seconds)
        return report

    def rng(self) -> np.random.Generator:
        """Deterministic per-context RNG (data generation, shuffles)."""
        return np.random.default_rng(self.rng_seed)
