"""Chunk partitioners: how a range [0, n) is split over threads.

The backends differ visibly here: OpenMP static scheduling produces one
contiguous chunk per thread; TBB's auto_partitioner produces a few chunks
per thread balanced by work stealing; HPX creates many small tasks, which
is where its instruction overhead (Table 3: up to 2.5x more instructions)
comes from.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "Chunk",
    "Partition",
    "Partitioner",
    "StaticPartitioner",
    "BlockCyclicPartitioner",
    "WorkStealingPartitioner",
]


@dataclass(frozen=True)
class Chunk:
    """A contiguous slice of the iteration space assigned to one thread."""

    index: int
    start: int
    stop: int
    thread: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ConfigurationError(f"bad chunk bounds [{self.start}, {self.stop})")
        if self.thread < 0:
            raise ConfigurationError("thread id must be non-negative")

    def __len__(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class Partition:
    """A full partition of [0, n) into chunks."""

    n: int
    threads: int
    chunks: tuple[Chunk, ...]
    strategy: str

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ConfigurationError("n must be non-negative")
        if self.threads <= 0:
            raise ConfigurationError("threads must be positive")
        for chunk in self.chunks:
            if chunk.thread >= self.threads:
                raise ConfigurationError("chunk assigned to out-of-range thread")
            if chunk.stop > self.n:
                raise ConfigurationError(
                    f"chunk [{chunk.start}, {chunk.stop}) exceeds n={self.n}"
                )
        # The chunks must tile [0, n) exactly, but their *sequence* order is
        # a scheduling detail (block-cyclic partitions listed per-thread are
        # just as valid as the same chunks in ascending-start order), so
        # validate against the sorted view: no gaps, no overlaps, full
        # coverage. Empty chunks carry no elements and may sit anywhere.
        cursor = 0
        for chunk in sorted(
            (c for c in self.chunks if len(c) > 0), key=lambda c: c.start
        ):
            if chunk.start < cursor:
                raise ConfigurationError(
                    f"chunks overlap at [{chunk.start}, {cursor})"
                )
            if chunk.start > cursor:
                raise ConfigurationError(
                    f"chunks leave [{cursor}, {chunk.start}) uncovered"
                )
            cursor = chunk.stop
        if cursor != self.n:
            raise ConfigurationError(
                f"chunks cover [0, {cursor}), expected [0, {self.n})"
            )

    @property
    def num_chunks(self) -> int:
        """Total number of chunks (the fork/join scheduling unit count)."""
        return len(self.chunks)

    def chunks_of_thread(self, thread: int) -> list[Chunk]:
        """Chunks executed by ``thread``, in execution order."""
        return [c for c in self.chunks if c.thread == thread]

    def elements_per_thread(self) -> list[int]:
        """Total elements each thread processes."""
        counts = [0] * self.threads
        for c in self.chunks:
            counts[c.thread] += len(c)
        return counts


class Partitioner(ABC):
    """Strategy turning (n, threads) into a :class:`Partition`."""

    name: str = "abstract"

    @abstractmethod
    def partition(self, n: int, threads: int) -> Partition:
        """Split [0, n) for ``threads`` workers."""

    @staticmethod
    def _check(n: int, threads: int) -> None:
        if n < 0:
            raise ConfigurationError("n must be non-negative")
        if threads <= 0:
            raise ConfigurationError("threads must be positive")


def _even_bounds(n: int, parts: int) -> list[tuple[int, int]]:
    """Split [0, n) into ``parts`` near-equal contiguous ranges."""
    bounds = []
    base, extra = divmod(n, parts)
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


class StaticPartitioner(Partitioner):
    """One contiguous chunk per thread (OpenMP ``schedule(static)``)."""

    name = "static"

    def partition(self, n: int, threads: int) -> Partition:
        self._check(n, threads)
        chunks = tuple(
            Chunk(index=i, start=lo, stop=hi, thread=i)
            for i, (lo, hi) in enumerate(_even_bounds(n, threads))
        )
        return Partition(n=n, threads=threads, chunks=chunks, strategy=self.name)


class BlockCyclicPartitioner(Partitioner):
    """Fixed-size blocks dealt round-robin (OpenMP ``schedule(static, c)``).

    Also models OpenMP dynamic scheduling in the deterministic simulator:
    the steady-state assignment of a dynamic schedule on symmetric chunks
    is round-robin.
    """

    name = "block-cyclic"

    def __init__(self, chunks_per_thread: int = 4) -> None:
        if chunks_per_thread <= 0:
            raise ConfigurationError("chunks_per_thread must be positive")
        self.chunks_per_thread = chunks_per_thread

    def partition(self, n: int, threads: int) -> Partition:
        self._check(n, threads)
        parts = min(max(1, n), threads * self.chunks_per_thread)
        chunks = tuple(
            Chunk(index=i, start=lo, stop=hi, thread=i % threads)
            for i, (lo, hi) in enumerate(_even_bounds(n, parts))
        )
        return Partition(n=n, threads=threads, chunks=chunks, strategy=self.name)


class WorkStealingPartitioner(Partitioner):
    """TBB-style recursive range splitting with a balanced steady state.

    ``auto_partitioner`` splits ranges until there are a few chunks per
    worker; stealing balances them. Deterministically we assign the
    resulting chunks so every thread gets an equal contiguous run, which is
    the steady state for uniform work.
    """

    name = "work-stealing"

    def __init__(self, split_factor: int = 8) -> None:
        if split_factor <= 0:
            raise ConfigurationError("split_factor must be positive")
        self.split_factor = split_factor

    def partition(self, n: int, threads: int) -> Partition:
        self._check(n, threads)
        parts = min(max(1, n), threads * self.split_factor)
        bounds = _even_bounds(n, parts)
        chunks = tuple(
            Chunk(
                index=i,
                start=lo,
                stop=hi,
                thread=min(i * threads // parts, threads - 1),
            )
            for i, (lo, hi) in enumerate(bounds)
        )
        return Partition(n=n, threads=threads, chunks=chunks, strategy=self.name)
