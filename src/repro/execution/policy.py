"""Execution policies mirroring ``std::execution`` (C++17).

pSTL-Bench invokes every algorithm through an execution policy; the
reproduction keeps the same three-policy surface. ``PAR_UNSEQ`` permits
vectorisation, which is how backends that emit packed FP (ICC, HPX in
Table 4) are distinguished from scalar ones.
"""

from __future__ import annotations

import enum

__all__ = ["ExecutionPolicy", "SEQ", "PAR", "PAR_UNSEQ"]


class ExecutionPolicy(enum.Enum):
    """C++17 execution policy equivalents."""

    SEQ = "seq"
    PAR = "par"
    PAR_UNSEQ = "par_unseq"

    @property
    def is_parallel(self) -> bool:
        """Whether the policy allows multi-threaded execution."""
        return self is not ExecutionPolicy.SEQ

    @property
    def allows_vectorization(self) -> bool:
        """Whether the policy allows SIMD execution."""
        return self is ExecutionPolicy.PAR_UNSEQ

    @classmethod
    def parse(cls, name: str) -> "ExecutionPolicy":
        """Parse ``"seq"``/``"par"``/``"par_unseq"`` (and C++ spellings)."""
        key = name.strip().lower().replace("::", "_").replace("-", "_")
        for member in cls:
            if key in (member.value, f"execution_{member.value}", f"std_execution_{member.value}"):
                return member
        raise ValueError(f"unknown execution policy {name!r}")


SEQ = ExecutionPolicy.SEQ
PAR = ExecutionPolicy.PAR
PAR_UNSEQ = ExecutionPolicy.PAR_UNSEQ
