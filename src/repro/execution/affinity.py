"""Thread-placement model.

The paper deliberately runs *unpinned* (Section 4.2) to test each runtime's
own placement. We model the resulting steady state with two canonical
strategies: ``scatter`` (threads balanced across NUMA nodes, which is what
the Linux scheduler converges to for bandwidth-hungry threads on an idle
node) and ``compact`` (fill node 0 first). Backends pick their strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ConfigurationError, PlacementError
from repro.machines.cpu import CpuMachine

__all__ = ["ThreadPlacement"]

_STRATEGIES = ("scatter", "compact")


@lru_cache(maxsize=1024)
def _node_map(
    num_nodes: int, cores_per_node: int, threads: int, strategy: str
) -> tuple[int, ...]:
    """thread -> NUMA node for every thread, memoized.

    The map is a pure function of the topology numbers, the thread count
    and the strategy, and campaign-scale sweeps ask for the same handful
    of maps tens of thousands of times -- profiling showed the per-call
    loop in ``threads_per_node`` as one of the last scalar hot spots.
    """
    if strategy == "scatter":
        return tuple(t % num_nodes for t in range(threads))
    return tuple(
        min(t // cores_per_node, num_nodes - 1) for t in range(threads)
    )


@lru_cache(maxsize=1024)
def _node_counts(
    num_nodes: int, cores_per_node: int, threads: int, strategy: str
) -> tuple[int, ...]:
    """Threads hosted on each node, memoized alongside :func:`_node_map`."""
    counts = [0] * num_nodes
    for node in _node_map(num_nodes, cores_per_node, threads, strategy):
        counts[node] += 1
    return tuple(counts)


@dataclass(frozen=True)
class ThreadPlacement:
    """Assignment of ``threads`` software threads to cores/NUMA nodes."""

    machine: CpuMachine
    threads: int
    strategy: str = "scatter"

    def __post_init__(self) -> None:
        if self.strategy not in _STRATEGIES:
            raise ConfigurationError(
                f"unknown placement strategy {self.strategy!r}; known: {_STRATEGIES}"
            )
        if not 1 <= self.threads <= self.machine.total_cores:
            raise ConfigurationError(
                f"threads must be in [1, {self.machine.total_cores}], "
                f"got {self.threads}"
            )

    def node_of_thread(self, thread: int) -> int:
        """NUMA node a given thread runs on."""
        if not 0 <= thread < self.threads:
            raise PlacementError(f"thread {thread} out of range")
        return self.node_map[thread]

    @property
    def node_map(self) -> tuple[int, ...]:
        """thread -> node for every thread (memoized per topology)."""
        topo = self.machine.topology
        return _node_map(
            topo.num_nodes, topo.cores_per_node, self.threads, self.strategy
        )

    @property
    def threads_per_node(self) -> tuple[int, ...]:
        """Thread count on each NUMA node."""
        topo = self.machine.topology
        return _node_counts(
            topo.num_nodes, topo.cores_per_node, self.threads, self.strategy
        )

    @property
    def nodes_used(self) -> int:
        """How many NUMA nodes host at least one thread."""
        return sum(1 for c in self.threads_per_node if c > 0)
