"""Thread-placement model.

The paper deliberately runs *unpinned* (Section 4.2) to test each runtime's
own placement. We model the resulting steady state with two canonical
strategies: ``scatter`` (threads balanced across NUMA nodes, which is what
the Linux scheduler converges to for bandwidth-hungry threads on an idle
node) and ``compact`` (fill node 0 first). Backends pick their strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, PlacementError
from repro.machines.cpu import CpuMachine

__all__ = ["ThreadPlacement"]

_STRATEGIES = ("scatter", "compact")


@dataclass(frozen=True)
class ThreadPlacement:
    """Assignment of ``threads`` software threads to cores/NUMA nodes."""

    machine: CpuMachine
    threads: int
    strategy: str = "scatter"

    def __post_init__(self) -> None:
        if self.strategy not in _STRATEGIES:
            raise ConfigurationError(
                f"unknown placement strategy {self.strategy!r}; known: {_STRATEGIES}"
            )
        if not 1 <= self.threads <= self.machine.total_cores:
            raise ConfigurationError(
                f"threads must be in [1, {self.machine.total_cores}], "
                f"got {self.threads}"
            )

    def node_of_thread(self, thread: int) -> int:
        """NUMA node a given thread runs on."""
        if not 0 <= thread < self.threads:
            raise PlacementError(f"thread {thread} out of range")
        nodes = self.machine.topology.num_nodes
        if self.strategy == "scatter":
            return thread % nodes
        cores_per_node = self.machine.topology.cores_per_node
        return min(thread // cores_per_node, nodes - 1)

    @property
    def threads_per_node(self) -> tuple[int, ...]:
        """Thread count on each NUMA node."""
        counts = [0] * self.machine.topology.num_nodes
        for t in range(self.threads):
            counts[self.node_of_thread(t)] += 1
        return tuple(counts)

    @property
    def nodes_used(self) -> int:
        """How many NUMA nodes host at least one thread."""
        return sum(1 for c in self.threads_per_node if c > 0)
