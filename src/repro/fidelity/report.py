"""Rendering and persistence of fidelity reports.

A :class:`~repro.fidelity.engine.FidelityReport` can be rendered three
ways:

* :func:`render_text` -- the human-facing per-artifact breakdown the
  ``pstl-fidelity run``/``report`` commands print;
* :func:`report_to_json` -- a stable machine-readable document
  (schema ``pstl-fidelity-report/1``) stamped with the model
  fingerprint, which :func:`diff_reports` compares across runs;
* :func:`render_markdown` -- the summary table spliced into
  EXPERIMENTS.md between the ``pstl-fidelity summary`` markers by
  :func:`update_experiments_md` (``pstl-fidelity report --markdown``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.errors import FidelityError
from repro.fidelity.engine import (
    DEVIATION,
    PASS,
    WAIVED,
    ArtifactReport,
    ClaimResult,
    FidelityReport,
)

__all__ = [
    "REPORT_SCHEMA",
    "report_to_json",
    "render_text",
    "render_markdown",
    "update_experiments_md",
    "diff_reports",
    "load_report_json",
    "MARKER_BEGIN",
    "MARKER_END",
]

#: Schema tag of the JSON report document.
REPORT_SCHEMA = "pstl-fidelity-report/1"

#: Markers delimiting the generated summary table in EXPERIMENTS.md.
MARKER_BEGIN = "<!-- BEGIN pstl-fidelity summary (generated; do not edit by hand) -->"
MARKER_END = "<!-- END pstl-fidelity summary -->"

_STATUS_GLYPH = {PASS: "ok", WAIVED: "waived", DEVIATION: "DEVIATION"}


def _claim_to_json(result: ClaimResult) -> dict[str, Any]:
    doc: dict[str, Any] = {
        "id": result.claim.id,
        "kind": result.claim.kind,
        "tier": result.claim.tier,
        "status": result.status,
        "measured": result.measured,
        "detail": result.detail,
    }
    if result.waiver is not None:
        doc["waiver"] = {
            "reason": result.waiver.reason,
            "experiments_md": result.waiver.experiments_md,
        }
    return doc


def report_to_json(report: FidelityReport) -> dict[str, Any]:
    """The stable machine-readable form of a fidelity run."""
    return {
        "schema": REPORT_SCHEMA,
        "fingerprint": report.fingerprint,
        "elapsed_seconds": round(report.elapsed_seconds, 3),
        "totals": {
            "claims": report.total_claims,
            "pass": report.count(PASS),
            "waived": report.count(WAIVED),
            "deviation": report.count(DEVIATION),
        },
        "ok": report.ok,
        "artifacts": [
            {
                "artifact": art.artifact,
                "title": art.title,
                "source": art.source,
                "ok": art.ok,
                "pass": art.count(PASS),
                "waived": art.count(WAIVED),
                "deviation": art.count(DEVIATION),
                "claims": [_claim_to_json(r) for r in art.results],
            }
            for art in report.artifacts
        ],
    }


def _artifact_line(art: ArtifactReport) -> str:
    verdict = "OK" if art.ok else "DEVIATION"
    return (
        f"{art.artifact:<8} {verdict:<9} "
        f"{art.count(PASS):>3} pass  {art.count(WAIVED):>2} waived  "
        f"{art.count(DEVIATION):>2} deviation   {art.title}"
    )


def render_text(report: FidelityReport, *, verbose: bool = False) -> str:
    """The human-facing report ``pstl-fidelity run`` prints.

    ``verbose`` additionally lists every claim; otherwise only waived
    and deviating claims are detailed.
    """
    lines = [
        "pstl-fidelity: paper-conformance report",
        f"model fingerprint: {report.fingerprint}",
        "",
    ]
    for art in report.artifacts:
        lines.append(_artifact_line(art))
        for result in art.results:
            if not verbose and result.status == PASS:
                continue
            glyph = _STATUS_GLYPH[result.status]
            lines.append(f"    [{glyph}] {result.claim.id} ({result.claim.tier}): {result.detail}")
            if result.waiver is not None:
                lines.append(f"        waived: {result.waiver.reason}")
    lines.append("")
    lines.append(
        f"total: {report.total_claims} claims -- {report.count(PASS)} pass, "
        f"{report.count(WAIVED)} waived, {report.count(DEVIATION)} unwaived deviations "
        f"({report.elapsed_seconds:.1f}s)"
    )
    lines.append("verdict: " + ("OK" if report.ok else "DEVIATIONS FOUND"))
    return "\n".join(lines)


def render_markdown(report: FidelityReport) -> str:
    """The EXPERIMENTS.md summary table (one row per artifact)."""
    lines = [
        "| Artifact | Source | Claims | Pass | Waived | Deviations | Verdict |",
        "| --- | --- | ---: | ---: | ---: | ---: | --- |",
    ]
    for art in report.artifacts:
        verdict = "ok" if art.ok else "**deviation**"
        lines.append(
            f"| {art.artifact} | {art.source} | {len(art.results)} "
            f"| {art.count(PASS)} | {art.count(WAIVED)} "
            f"| {art.count(DEVIATION)} | {verdict} |"
        )
    lines.append(
        f"\nTotals: {report.total_claims} claims, {report.count(PASS)} pass, "
        f"{report.count(WAIVED)} waived, {report.count(DEVIATION)} unwaived "
        f"deviations. Model fingerprint `{report.fingerprint}`."
    )
    return "\n".join(lines)


def update_experiments_md(report: FidelityReport, path: Path) -> str:
    """Splice the generated summary table between the markers in ``path``.

    Returns the updated document text (the caller writes it); raises
    :class:`~repro.errors.FidelityError` when the markers are missing or
    malformed so a hand-edited file is never silently clobbered.
    """
    text = path.read_text(encoding="utf-8")
    begin = text.find(MARKER_BEGIN)
    end = text.find(MARKER_END)
    if begin == -1 or end == -1 or end < begin:
        raise FidelityError(
            f"{path} lacks the '{MARKER_BEGIN}' / '{MARKER_END}' marker pair"
        )
    head = text[: begin + len(MARKER_BEGIN)]
    tail = text[end:]
    return head + "\n" + render_markdown(report) + "\n" + tail


def diff_reports(
    old: Mapping[str, Any], new: Mapping[str, Any]
) -> list[str]:
    """Human-readable changes between two JSON report documents.

    Flags per-claim status flips, added/removed claims and artifacts,
    and a model fingerprint change. An empty list means the runs agree.
    """
    for doc, name in ((old, "old"), (new, "new")):
        if doc.get("schema") != REPORT_SCHEMA:
            raise FidelityError(
                f"{name} report has schema {doc.get('schema')!r}, "
                f"expected {REPORT_SCHEMA!r}"
            )
    changes: list[str] = []
    if old.get("fingerprint") != new.get("fingerprint"):
        changes.append(
            f"model fingerprint changed: {old.get('fingerprint')} -> "
            f"{new.get('fingerprint')}"
        )

    def claim_index(doc: Mapping[str, Any]) -> dict[tuple[str, str], Mapping[str, Any]]:
        return {
            (art["artifact"], claim["id"]): claim
            for art in doc.get("artifacts", ())
            for claim in art.get("claims", ())
        }

    old_claims = claim_index(old)
    new_claims = claim_index(new)
    for key in sorted(old_claims.keys() - new_claims.keys()):
        changes.append(f"claim removed: {key[0]}:{key[1]}")
    for key in sorted(new_claims.keys() - old_claims.keys()):
        changes.append(f"claim added: {key[0]}:{key[1]} ({new_claims[key]['status']})")
    for key in sorted(old_claims.keys() & new_claims.keys()):
        before, after = old_claims[key], new_claims[key]
        if before["status"] != after["status"]:
            changes.append(
                f"{key[0]}:{key[1]}: {before['status']} -> {after['status']}"
                f" ({after['detail']})"
            )
    return changes


def load_report_json(path: Path) -> dict[str, Any]:
    """Read a JSON report document from disk, validating its schema."""
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise FidelityError(f"cannot read report {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != REPORT_SCHEMA:
        raise FidelityError(f"{path} is not a {REPORT_SCHEMA} document")
    return doc
