"""Reference-data schema: the paper's numbers as versioned JSON.

One file per artifact under ``refdata/`` (``fig1.json`` ... ``fig9.json``,
``table3.json`` ... ``table7.json``). Each file transcribes the ICPP 2024
paper's values for that figure or table as a list of machine-checkable
**claims**, plus the **waivers** that encode the documented deviations of
EXPERIMENTS.md. The schema is deliberately small (see docs/FIDELITY.md):

``claims``
    Each claim has a unique ``id``, a ``kind`` and kind-specific fields:

    * ``ordering`` -- ``cell`` must be the ``expect`` (``"max"``/``"min"``)
      of the non-N/A cells in ``group`` (the *who wins* tier);
    * ``ratio`` -- ``measured / paper`` must land inside the
      multiplicative ``band`` ``[lo, hi]`` (the *by what factor* tier);
    * ``bound`` -- the cell must fall inside an absolute ``[min, max]``
      interval (ratio tier; used for paper statements like "never
      exceeds the STREAM ratio");
    * ``na`` -- the cell must be N/A, reproducing the paper's capability
      gaps (ordering tier: the N/A pattern is structural);
    * ``crossover`` -- the x where ``curve_a`` first beats ``curve_b``
      must land within ``steps`` sweep steps of ``paper_x`` (the *where
      crossovers fall* tier);
    * ``golden`` -- the measured object named by ``cell`` must equal the
      artifact's stored golden (ratio tier; pins structure, e.g. the
      fig3 trace-event summary).

``waivers``
    ``{"claim": id, "reason": ..., "experiments_md": ...}`` --
    ``experiments_md`` must quote the matching EXPERIMENTS.md deviation
    note verbatim (``tests/fidelity/test_refdata.py`` enforces it).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.errors import FidelityError

__all__ = [
    "Claim",
    "Waiver",
    "ArtifactRef",
    "CLAIM_KINDS",
    "TIER_BY_KIND",
    "ARTIFACT_IDS",
    "refdata_dir",
    "refdata_path",
    "load_refdata",
    "load_all_refdata",
    "save_refdata",
]

#: Every artifact of the paper's evaluation section, in report order.
ARTIFACT_IDS = (
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    "table3", "table4", "table5", "table6", "table7",
)

#: Recognised claim kinds.
CLAIM_KINDS = ("ordering", "ratio", "bound", "na", "crossover", "golden")

#: Claim kind -> claim tier (the three tiers of EXPERIMENTS.md's thesis:
#: *who wins*, *by roughly what factor*, *where crossovers fall*).
TIER_BY_KIND = {
    "ordering": "ordering",
    "na": "ordering",
    "ratio": "ratio",
    "bound": "ratio",
    "golden": "ratio",
    "crossover": "crossover",
}


@dataclass(frozen=True)
class Claim:
    """One machine-checkable statement transcribed from the paper."""

    id: str
    kind: str
    cell: str | None = None
    group: tuple[str, ...] = ()
    expect: str | None = None
    paper: float | None = None
    band: tuple[float, float] | None = None
    min: float | None = None
    max: float | None = None
    curve_a: str | None = None
    curve_b: str | None = None
    paper_x: float | None = None
    steps: int = 1
    note: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in CLAIM_KINDS:
            raise FidelityError(
                f"claim {self.id!r}: unknown kind {self.kind!r}; known: {CLAIM_KINDS}"
            )
        if self.kind == "ordering":
            if not self.cell or len(self.group) < 2 or self.expect not in ("max", "min"):
                raise FidelityError(
                    f"claim {self.id!r}: ordering needs cell, group (>= 2) "
                    "and expect in {'max', 'min'}"
                )
            if self.cell not in self.group:
                raise FidelityError(
                    f"claim {self.id!r}: ordering cell must be in its group"
                )
        elif self.kind == "ratio":
            if not self.cell or self.paper is None or self.band is None:
                raise FidelityError(
                    f"claim {self.id!r}: ratio needs cell, paper and band"
                )
            lo, hi = self.band
            if not (0 < lo <= hi):
                raise FidelityError(f"claim {self.id!r}: band must be 0 < lo <= hi")
        elif self.kind == "bound":
            if not self.cell or (self.min is None and self.max is None):
                raise FidelityError(
                    f"claim {self.id!r}: bound needs cell and min and/or max"
                )
        elif self.kind == "na":
            if not self.cell:
                raise FidelityError(f"claim {self.id!r}: na needs cell")
        elif self.kind == "crossover":
            if not self.curve_a or not self.curve_b or self.paper_x is None:
                raise FidelityError(
                    f"claim {self.id!r}: crossover needs curve_a, curve_b, paper_x"
                )
            if self.steps < 0:
                raise FidelityError(f"claim {self.id!r}: steps must be >= 0")
        elif self.kind == "golden":
            if not self.cell:
                raise FidelityError(f"claim {self.id!r}: golden needs cell")

    @property
    def tier(self) -> str:
        """The claim's tier: ``ordering``, ``ratio`` or ``crossover``."""
        return TIER_BY_KIND[self.kind]

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Claim":
        """Build from one JSON claim object."""
        known = {
            "id", "kind", "cell", "group", "expect", "paper", "band",
            "min", "max", "curve_a", "curve_b", "paper_x", "steps", "note",
        }
        unknown = set(payload) - known
        if unknown:
            raise FidelityError(
                f"claim {payload.get('id')!r}: unknown fields {sorted(unknown)}"
            )
        if "id" not in payload or "kind" not in payload:
            raise FidelityError(f"claim missing id/kind: {dict(payload)!r}")
        band = payload.get("band")
        return cls(
            id=payload["id"],
            kind=payload["kind"],
            cell=payload.get("cell"),
            group=tuple(payload.get("group", ())),
            expect=payload.get("expect"),
            paper=payload.get("paper"),
            band=tuple(band) if band is not None else None,
            min=payload.get("min"),
            max=payload.get("max"),
            curve_a=payload.get("curve_a"),
            curve_b=payload.get("curve_b"),
            paper_x=payload.get("paper_x"),
            steps=int(payload.get("steps", 1)),
            note=payload.get("note"),
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON form (kind-specific fields only, stable order)."""
        out: dict[str, Any] = {"id": self.id, "kind": self.kind}
        for key in ("cell", "expect", "paper", "min", "max",
                    "curve_a", "curve_b", "paper_x", "note"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.group:
            out["group"] = list(self.group)
        if self.band is not None:
            out["band"] = list(self.band)
        if self.kind == "crossover":
            out["steps"] = self.steps
        return out


@dataclass(frozen=True)
class Waiver:
    """A documented deviation: the claim it covers and its citation."""

    claim: str
    reason: str
    experiments_md: str

    def __post_init__(self) -> None:
        if not self.claim or not self.reason or not self.experiments_md:
            raise FidelityError(
                "waivers need claim, reason and an experiments_md citation"
            )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Waiver":
        """Build from one JSON waiver object."""
        unknown = set(payload) - {"claim", "reason", "experiments_md"}
        if unknown:
            raise FidelityError(
                f"waiver {payload.get('claim')!r}: unknown fields {sorted(unknown)}"
            )
        return cls(
            claim=payload.get("claim", ""),
            reason=payload.get("reason", ""),
            experiments_md=payload.get("experiments_md", ""),
        )

    def to_dict(self) -> dict[str, str]:
        """JSON form."""
        return {
            "claim": self.claim,
            "reason": self.reason,
            "experiments_md": self.experiments_md,
        }


@dataclass(frozen=True)
class ArtifactRef:
    """One artifact's reference data: claims, waivers and goldens."""

    artifact: str
    title: str
    source: str
    claims: tuple[Claim, ...]
    waivers: tuple[Waiver, ...] = ()
    goldens: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        ids = [c.id for c in self.claims]
        dupes = {i for i in ids if ids.count(i) > 1}
        if dupes:
            raise FidelityError(
                f"{self.artifact}: duplicate claim ids {sorted(dupes)}"
            )
        known = set(ids)
        for waiver in self.waivers:
            if waiver.claim not in known:
                raise FidelityError(
                    f"{self.artifact}: waiver for unknown claim {waiver.claim!r}"
                )
        for claim in self.claims:
            if claim.kind == "golden" and claim.cell not in self.goldens:
                raise FidelityError(
                    f"{self.artifact}: golden claim {claim.id!r} has no "
                    f"stored golden {claim.cell!r}"
                )

    def waiver_for(self, claim_id: str) -> Waiver | None:
        """The waiver covering ``claim_id``, if any."""
        for waiver in self.waivers:
            if waiver.claim == claim_id:
                return waiver
        return None

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ArtifactRef":
        """Build from one refdata JSON document."""
        unknown = set(payload) - {"artifact", "title", "source", "claims",
                                  "waivers", "goldens"}
        if unknown:
            raise FidelityError(
                f"refdata {payload.get('artifact')!r}: unknown fields "
                f"{sorted(unknown)}"
            )
        for key in ("artifact", "title", "source", "claims"):
            if key not in payload:
                raise FidelityError(f"refdata missing {key!r}: {sorted(payload)}")
        return cls(
            artifact=payload["artifact"],
            title=payload["title"],
            source=payload["source"],
            claims=tuple(Claim.from_dict(c) for c in payload["claims"]),
            waivers=tuple(Waiver.from_dict(w) for w in payload.get("waivers", ())),
            goldens=dict(payload.get("goldens", {})),
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON form (round-trips through :meth:`from_dict`)."""
        out: dict[str, Any] = {
            "artifact": self.artifact,
            "title": self.title,
            "source": self.source,
            "claims": [c.to_dict() for c in self.claims],
        }
        if self.waivers:
            out["waivers"] = [w.to_dict() for w in self.waivers]
        if self.goldens:
            out["goldens"] = dict(self.goldens)
        return out


def refdata_dir() -> Path:
    """The repository's ``refdata/`` directory."""
    return Path(__file__).resolve().parents[3] / "refdata"


def refdata_path(artifact: str, root: str | Path | None = None) -> Path:
    """The JSON file holding ``artifact``'s reference data."""
    return (Path(root) if root is not None else refdata_dir()) / f"{artifact}.json"


def load_refdata(artifact: str, root: str | Path | None = None) -> ArtifactRef:
    """Load and validate one artifact's reference file."""
    path = refdata_path(artifact, root)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise FidelityError(f"no reference data for {artifact!r} at {path}") from None
    except json.JSONDecodeError as exc:
        raise FidelityError(f"corrupt reference data at {path}: {exc}") from None
    ref = ArtifactRef.from_dict(payload)
    if ref.artifact != artifact:
        raise FidelityError(
            f"{path} declares artifact {ref.artifact!r}, expected {artifact!r}"
        )
    return ref


def load_all_refdata(
    artifacts: Sequence[str] | None = None, root: str | Path | None = None
) -> list[ArtifactRef]:
    """Load reference data for ``artifacts`` (default: all known)."""
    ids = tuple(artifacts) if artifacts is not None else ARTIFACT_IDS
    unknown = [a for a in ids if a not in ARTIFACT_IDS]
    if unknown:
        raise FidelityError(
            f"unknown artifacts {unknown}; known: {list(ARTIFACT_IDS)}"
        )
    return [load_refdata(a, root) for a in ids]


def save_refdata(ref: ArtifactRef, root: str | Path | None = None) -> Path:
    """Write ``ref`` back to its JSON file (pretty, stable order)."""
    path = refdata_path(ref.artifact, root)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(ref.to_dict(), indent=2) + "\n", encoding="utf-8")
    return path
