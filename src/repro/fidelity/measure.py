"""Measured artifacts: the checkable form of a regenerated figure/table.

The experiment drivers render human-readable charts and tables; fidelity
checks need flat numbers. A :class:`MeasuredArtifact` carries three maps:

* ``cells`` -- scalar values keyed like the refdata claims reference them
  (``"GCC-TBB/find/A"``, ``"scaling/GCC-TBB/max_speedup"`` ...); ``None``
  is an N/A cell (a capability gap the paper also reports as N/A);
* ``curves`` -- (x, y) series for crossover claims (problem-size or
  thread sweeps);
* ``objects`` -- JSON-able structures for golden claims (e.g. the fig3
  trace-event summary).

:func:`crossover_x` implements the crossover-tier semantics: the first x
of the common grid where curve *a* becomes faster (smaller y) than curve
*b* and stays comparable on a shared axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.errors import FidelityError

__all__ = [
    "MeasuredArtifact",
    "Curve",
    "crossover_x",
    "step_distance",
    "trace_structure_summary",
]

#: A measured series: ordered (x, y) pairs.
Curve = Sequence[tuple[float, float]]


@dataclass(frozen=True)
class MeasuredArtifact:
    """One regenerated artifact in checkable form."""

    artifact: str
    cells: Mapping[str, float | None] = field(default_factory=dict)
    curves: Mapping[str, Curve] = field(default_factory=dict)
    objects: Mapping[str, Any] = field(default_factory=dict)

    def cell(self, key: str) -> float | None:
        """The value of one cell; raises if the key was never measured.

        A missing key is a *harness* bug (the extractor and the refdata
        disagree about naming), distinct from a measured N/A (``None``).
        """
        if key not in self.cells:
            raise FidelityError(
                f"{self.artifact}: no measured cell {key!r} "
                f"({len(self.cells)} cells present)"
            )
        return self.cells[key]

    def curve(self, key: str) -> Curve:
        """One measured series; raises if absent."""
        if key not in self.curves:
            raise FidelityError(
                f"{self.artifact}: no measured curve {key!r} "
                f"(known: {sorted(self.curves)})"
            )
        return self.curves[key]


def crossover_x(curve_a: Curve, curve_b: Curve) -> float | None:
    """First common x where ``curve_a`` is faster (smaller y) than ``curve_b``.

    Both curves are restricted to their common x grid first, so a backend
    whose sweep skips unsupported points still compares fairly. Returns
    ``None`` when *a* never beats *b* on the common grid.
    """
    a = dict(curve_a)
    b = dict(curve_b)
    common = sorted(set(a) & set(b))
    if not common:
        raise FidelityError("crossover: curves share no x values")
    for x in common:
        if a[x] < b[x]:
            return x
    return None


def step_distance(curve_a: Curve, curve_b: Curve, x_from: float, x_to: float) -> int:
    """Distance between two x positions in sweep steps of the common grid.

    Positions are indices into the sorted common x grid; off-grid values
    snap to the nearest grid point (the paper quotes round thresholds
    like "around 2^16" that need not be exact sweep points).
    """
    a = dict(curve_a)
    b = dict(curve_b)
    common = sorted(set(a) & set(b))
    if not common:
        raise FidelityError("step distance: curves share no x values")

    def index_of(x: float) -> int:
        return min(range(len(common)), key=lambda i: abs(common[i] - x))

    return abs(index_of(x_from) - index_of(x_to))


def trace_structure_summary(doc: Mapping[str, Any]) -> dict[str, Any]:
    """Structure-level summary of a Chrome trace-event document.

    Pins track names, span names per category and event counts -- not
    floating-point durations -- so the golden stays stable across cost
    model tuning. This is the summary the fig3 golden claim compares
    (promoted from the former bespoke ``tests/trace`` golden file).
    """
    events = doc["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]
    tracks = sorted(
        e["args"]["name"] for e in events if e.get("name") == "thread_name"
    )
    by_cat: dict[str, int] = {}
    for e in xs:
        by_cat[e["cat"]] = by_cat.get(e["cat"], 0) + 1
    return {
        "tracks": tracks,
        "events_by_category": dict(sorted(by_cat.items())),
        "call_span_names": sorted({e["name"] for e in xs if e["cat"] == "call"}),
        "phase_span_names": sorted({e["name"] for e in xs if e["cat"] == "phase"}),
        "overhead_span_names": sorted(
            {e["name"] for e in xs if e["cat"] == "overhead"}
        ),
        "total_events": len(events),
    }
