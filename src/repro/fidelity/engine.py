"""The conformance engine: evaluate refdata claims against measurements.

:func:`check_artifact` applies one artifact's claims to its measured
grid, producing a :class:`ClaimResult` per claim with one of three
statuses:

* ``pass`` -- the paper's statement holds in the reproduction;
* ``waived`` -- the claim fails, but a waiver documents it as a known
  deviation (with its EXPERIMENTS.md citation);
* ``deviation`` -- the claim fails and nothing waives it: a regression
  in the model, the drivers or the batch engine flipped a winner, moved
  a factor out of band, or shifted a crossover.

:func:`run_fidelity` orchestrates the full suite -- build each measured
artifact (through the shared campaign store when given), check it, and
collect a :class:`FidelityReport` -- emitting one ``fidelity.artifact``
trace span per artifact via ``repro.trace`` when tracing is enabled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.errors import FidelityError
from repro.fidelity.artifacts import MeasureOptions, build_artifact
from repro.fidelity.measure import MeasuredArtifact, crossover_x, step_distance
from repro.fidelity.refdata import (
    ArtifactRef,
    Claim,
    Waiver,
    load_all_refdata,
)
from repro.trace import get_tracer

__all__ = [
    "ClaimResult",
    "ArtifactReport",
    "FidelityReport",
    "check_claim",
    "check_artifact",
    "run_fidelity",
    "PASS",
    "WAIVED",
    "DEVIATION",
]

#: Claim statuses.
PASS = "pass"
WAIVED = "waived"
DEVIATION = "deviation"

#: Track name for fidelity trace spans.
FIDELITY_TRACK = "fidelity"


@dataclass(frozen=True)
class ClaimResult:
    """The outcome of checking one claim."""

    claim: Claim
    status: str
    measured: float | None = None
    detail: str = ""
    waiver: Waiver | None = None

    @property
    def ok(self) -> bool:
        """Whether the claim does not block a strict run."""
        return self.status != DEVIATION


def _check_ordering(claim: Claim, measured: MeasuredArtifact) -> tuple[bool, str, float | None]:
    value = measured.cell(claim.cell)
    if value is None:
        return False, f"{claim.cell} is N/A but should be the group {claim.expect}", None
    present = {
        key: measured.cell(key)
        for key in claim.group
        if measured.cell(key) is not None
    }
    pick = max if claim.expect == "max" else min
    winner = pick(present, key=present.get)
    detail = ", ".join(f"{k}={v:.4g}" for k, v in present.items())
    if winner != claim.cell:
        return False, f"group {claim.expect} is {winner}, not {claim.cell} ({detail})", value
    return True, detail, value


def _check_ratio(claim: Claim, measured: MeasuredArtifact) -> tuple[bool, str, float | None]:
    value = measured.cell(claim.cell)
    if value is None:
        return False, f"{claim.cell} is N/A, paper reports {claim.paper:g}", None
    if claim.paper == 0:
        ok = value == 0
        return ok, f"paper value 0, measured {value:g}", value
    ratio = value / claim.paper
    lo, hi = claim.band
    ok = lo <= ratio <= hi
    return ok, (
        f"measured {value:.4g} vs paper {claim.paper:g} "
        f"(ratio {ratio:.3f}, band [{lo:g}, {hi:g}])"
    ), value


def _check_bound(claim: Claim, measured: MeasuredArtifact) -> tuple[bool, str, float | None]:
    value = measured.cell(claim.cell)
    if value is None:
        return False, f"{claim.cell} is N/A but a bound is claimed", None
    ok = True
    if claim.min is not None and value < claim.min:
        ok = False
    if claim.max is not None and value > claim.max:
        ok = False
    lo = "-inf" if claim.min is None else f"{claim.min:g}"
    hi = "+inf" if claim.max is None else f"{claim.max:g}"
    return ok, f"measured {value:.4g}, bound [{lo}, {hi}]", value


def _check_na(claim: Claim, measured: MeasuredArtifact) -> tuple[bool, str, float | None]:
    value = measured.cell(claim.cell)
    if value is None:
        return True, f"{claim.cell} is N/A as the paper reports", None
    return False, f"{claim.cell} measured {value:.4g} but the paper reports N/A", value


def _check_crossover(claim: Claim, measured: MeasuredArtifact) -> tuple[bool, str, float | None]:
    a = measured.curve(claim.curve_a)
    b = measured.curve(claim.curve_b)
    x = crossover_x(a, b)
    if x is None:
        return False, (
            f"{claim.curve_a} never beats {claim.curve_b}; paper crossover "
            f"near {claim.paper_x:g}"
        ), None
    steps = step_distance(a, b, x, claim.paper_x)
    ok = steps <= claim.steps
    return ok, (
        f"crossover at {x:g}, paper near {claim.paper_x:g} "
        f"({steps} sweep step(s) apart, tolerance {claim.steps})"
    ), float(x)


def _check_golden(
    claim: Claim, measured: MeasuredArtifact, ref: ArtifactRef
) -> tuple[bool, str, float | None]:
    if claim.cell not in measured.objects:
        raise FidelityError(
            f"{measured.artifact}: no measured object {claim.cell!r} for "
            f"golden claim {claim.id!r}"
        )
    ours = measured.objects[claim.cell]
    golden = ref.goldens[claim.cell]
    if ours == golden:
        return True, f"{claim.cell} matches the stored golden", None
    changed = []
    if isinstance(ours, dict) and isinstance(golden, dict):
        for key in sorted(set(ours) | set(golden)):
            if ours.get(key) != golden.get(key):
                changed.append(key)
    return False, (
        f"{claim.cell} diverges from the stored golden"
        + (f" (fields: {', '.join(changed)})" if changed else "")
    ), None


def check_claim(
    claim: Claim, measured: MeasuredArtifact, ref: ArtifactRef
) -> ClaimResult:
    """Evaluate one claim; waivers turn a failure into ``waived``."""
    if claim.kind == "ordering":
        ok, detail, value = _check_ordering(claim, measured)
    elif claim.kind == "ratio":
        ok, detail, value = _check_ratio(claim, measured)
    elif claim.kind == "bound":
        ok, detail, value = _check_bound(claim, measured)
    elif claim.kind == "na":
        ok, detail, value = _check_na(claim, measured)
    elif claim.kind == "crossover":
        ok, detail, value = _check_crossover(claim, measured)
    else:  # golden (kinds are validated at load time)
        ok, detail, value = _check_golden(claim, measured, ref)
    if ok:
        return ClaimResult(claim=claim, status=PASS, measured=value, detail=detail)
    waiver = ref.waiver_for(claim.id)
    if waiver is not None:
        return ClaimResult(
            claim=claim, status=WAIVED, measured=value, detail=detail, waiver=waiver
        )
    return ClaimResult(claim=claim, status=DEVIATION, measured=value, detail=detail)


@dataclass(frozen=True)
class ArtifactReport:
    """All claim results of one artifact."""

    artifact: str
    title: str
    source: str
    results: tuple[ClaimResult, ...]

    def count(self, status: str) -> int:
        """How many claims ended in ``status``."""
        return sum(1 for r in self.results if r.status == status)

    @property
    def deviations(self) -> tuple[ClaimResult, ...]:
        """The unwaived failures (what a strict run blocks on)."""
        return tuple(r for r in self.results if r.status == DEVIATION)

    @property
    def ok(self) -> bool:
        """True when no unwaived deviation remains."""
        return not self.deviations


@dataclass(frozen=True)
class FidelityReport:
    """A full conformance run over (a subset of) the artifacts."""

    artifacts: tuple[ArtifactReport, ...]
    fingerprint: str = ""
    elapsed_seconds: float = 0.0

    def count(self, status: str) -> int:
        """Total claims across artifacts that ended in ``status``."""
        return sum(a.count(status) for a in self.artifacts)

    @property
    def total_claims(self) -> int:
        """Number of claims checked."""
        return sum(len(a.results) for a in self.artifacts)

    @property
    def deviations(self) -> tuple[tuple[str, ClaimResult], ...]:
        """(artifact, result) for every unwaived deviation."""
        return tuple(
            (a.artifact, r) for a in self.artifacts for r in a.deviations
        )

    @property
    def ok(self) -> bool:
        """True when the whole run has zero unwaived deviations."""
        return not self.deviations


def check_artifact(ref: ArtifactRef, measured: MeasuredArtifact) -> ArtifactReport:
    """Apply one artifact's reference claims to its measured grid."""
    if ref.artifact != measured.artifact:
        raise FidelityError(
            f"refdata is for {ref.artifact!r} but measurement is "
            f"{measured.artifact!r}"
        )
    results = tuple(check_claim(claim, measured, ref) for claim in ref.claims)
    return ArtifactReport(
        artifact=ref.artifact, title=ref.title, source=ref.source, results=results
    )


def run_fidelity(
    artifacts: Sequence[str] | None = None,
    *,
    refdata_root: Path | None = None,
    options: MeasureOptions | None = None,
    progress=None,
) -> FidelityReport:
    """Regenerate and check ``artifacts`` (default: every figure/table).

    ``options`` threads the campaign store/worker knobs to the grid
    builders; ``progress`` (artifact_id, ArtifactReport) is invoked as
    each artifact finishes. One ``fidelity.artifact`` span is recorded
    per artifact when tracing is enabled.
    """
    from repro.campaign.fingerprint import model_fingerprint

    opts = options if options is not None else MeasureOptions()
    refs = load_all_refdata(artifacts, refdata_root)
    tracer = get_tracer()
    reports: list[ArtifactReport] = []
    t0 = time.perf_counter()
    for ref in refs:
        span = tracer.begin(
            "fidelity.artifact", category="fidelity", track=FIDELITY_TRACK,
            artifact=ref.artifact,
        ) if tracer.enabled else None
        try:
            measured = build_artifact(ref.artifact, opts)
            report = check_artifact(ref, measured)
        finally:
            if span is not None:
                span.set_attribute("claims", len(ref.claims))
                tracer.end()
        reports.append(report)
        if progress is not None:
            progress(ref.artifact, report)
    return FidelityReport(
        artifacts=tuple(reports),
        fingerprint=model_fingerprint(),
        elapsed_seconds=time.perf_counter() - t0,
    )
