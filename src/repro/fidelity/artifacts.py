"""Artifact registry: regenerate each figure/table in checkable form.

Each builder now measures through the **scenario registry**
(:mod:`repro.scenarios`): the artifact's registered scenario spec is
executed by its analysis kind and the resulting cells/curves become the
:class:`~repro.fidelity.measure.MeasuredArtifact`. The legacy bespoke
drivers in ``repro.experiments`` remain as the pinned reference
implementation -- ``tools/scenario_equiv.py`` proves each scenario
bit-identical to them -- so a scenario regression fails conformance
here too.

The campaign-backed grids (Tables 5 and 6) accept the shared
:class:`~repro.campaign.store.ResultStore`, so fidelity runs reuse the
campaign cache: a second ``pstl-fidelity run --campaign-dir D`` serves
both tables entirely from cache.

The fig3 builder additionally runs a small traced sweep and records the
Chrome-trace structure summary as a golden object -- the conformance
home of the former bespoke ``tests/trace`` golden file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.campaign.store import ResultStore
from repro.errors import FidelityError
from repro.fidelity.measure import MeasuredArtifact, trace_structure_summary
from repro.fidelity.refdata import ARTIFACT_IDS

__all__ = ["MeasureOptions", "build_artifact", "artifact_builders"]

#: Size exponent of the traced fig3 golden sweep (small on purpose: the
#: trace *structure* is size-independent and the check stays fast).
FIG3_TRACE_SIZE_EXP = 16


@dataclass(frozen=True)
class MeasureOptions:
    """Knobs shared by all artifact builders.

    ``store`` and ``workers`` only affect the campaign-backed grids
    (Tables 5/6); ``size_step`` coarsens the problem-size sweeps of the
    figure panels (1 = the paper's full 2^3..2^30 grid).
    """

    store: ResultStore | None = None
    workers: int = 0
    size_step: int = 1


def _run_options(opts: MeasureOptions):
    """Map fidelity's measure knobs onto the scenario runner's."""
    from repro.scenarios.runner import RunOptions

    return RunOptions(
        store=opts.store, workers=opts.workers, size_step=opts.size_step
    )


def _scenario_builder(artifact: str) -> Callable[[MeasureOptions], MeasuredArtifact]:
    """A builder that measures ``artifact`` through its registered scenario."""

    def build(opts: MeasureOptions) -> MeasuredArtifact:
        from repro.scenarios.runner import run_scenario

        return run_scenario(artifact, _run_options(opts)).artifact()

    return build


def _fig3(opts: MeasureOptions) -> MeasuredArtifact:
    """fig3 via the registry, plus the traced-sweep golden object."""
    from repro.experiments.fig3 import foreach_scaling_curve
    from repro.scenarios.runner import run_scenario
    from repro.trace import Tracer, to_chrome_trace, use_tracer

    run = run_scenario("fig3", _run_options(opts))
    with use_tracer(Tracer()) as tracer:
        foreach_scaling_curve("A", "GCC-TBB", 1000, FIG3_TRACE_SIZE_EXP)
    summary = trace_structure_summary(to_chrome_trace(tracer))
    return MeasuredArtifact(
        "fig3",
        cells=dict(run.cells),
        curves=dict(run.curves),
        objects={"trace_summary": summary},
    )


_BUILDERS: Mapping[str, Callable[[MeasureOptions], MeasuredArtifact]] = {
    artifact: (_fig3 if artifact == "fig3" else _scenario_builder(artifact))
    for artifact in ARTIFACT_IDS
}


def artifact_builders() -> dict[str, Callable[[MeasureOptions], MeasuredArtifact]]:
    """All registered builders, keyed by artifact id (report order)."""
    return {a: _BUILDERS[a] for a in ARTIFACT_IDS}


def build_artifact(
    artifact: str, opts: MeasureOptions | None = None
) -> MeasuredArtifact:
    """Regenerate one artifact's measured grid."""
    if artifact not in _BUILDERS:
        raise FidelityError(
            f"unknown artifact {artifact!r}; known: {list(ARTIFACT_IDS)}"
        )
    return _BUILDERS[artifact](opts if opts is not None else MeasureOptions())
