"""Artifact registry: regenerate each figure/table in checkable form.

Each builder runs the corresponding ``repro.experiments`` driver and
flattens its result through the driver's ``*_cells``/``*_curves``
exporters into a :class:`~repro.fidelity.measure.MeasuredArtifact`. The
campaign-backed grids (Tables 5 and 6) accept the shared
:class:`~repro.campaign.store.ResultStore`, so fidelity runs reuse the
campaign cache: a second ``pstl-fidelity run --campaign-dir D`` serves
both tables entirely from cache.

The fig3 builder additionally runs a small traced sweep and records the
Chrome-trace structure summary as a golden object -- the conformance
home of the former bespoke ``tests/trace`` golden file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.campaign.store import ResultStore
from repro.errors import FidelityError
from repro.fidelity.measure import MeasuredArtifact, trace_structure_summary
from repro.fidelity.refdata import ARTIFACT_IDS

__all__ = ["MeasureOptions", "build_artifact", "artifact_builders"]

#: Size exponent of the traced fig3 golden sweep (small on purpose: the
#: trace *structure* is size-independent and the check stays fast).
FIG3_TRACE_SIZE_EXP = 16


@dataclass(frozen=True)
class MeasureOptions:
    """Knobs shared by all artifact builders.

    ``store`` and ``workers`` only affect the campaign-backed grids
    (Tables 5/6); ``size_step`` coarsens the problem-size sweeps of the
    figure panels (1 = the paper's full 2^3..2^30 grid).
    """

    store: ResultStore | None = None
    workers: int = 0
    size_step: int = 1


def _fig1(opts: MeasureOptions) -> MeasuredArtifact:
    from repro.experiments.fig1 import fig1_cells, run_fig1

    return MeasuredArtifact("fig1", cells=fig1_cells(run_fig1()))


def _fig2(opts: MeasureOptions) -> MeasuredArtifact:
    from repro.experiments.fig2 import fig2_cells, fig2_curves, run_fig2

    result = run_fig2(size_step=opts.size_step)
    return MeasuredArtifact(
        "fig2", cells=fig2_cells(result), curves=fig2_curves(result)
    )


def _fig3(opts: MeasureOptions) -> MeasuredArtifact:
    from repro.experiments.fig3 import (
        fig3_cells,
        fig3_curves,
        foreach_scaling_curve,
        run_fig3,
    )
    from repro.trace import Tracer, to_chrome_trace, use_tracer

    result = run_fig3()
    with use_tracer(Tracer()) as tracer:
        foreach_scaling_curve("A", "GCC-TBB", 1000, FIG3_TRACE_SIZE_EXP)
    summary = trace_structure_summary(to_chrome_trace(tracer))
    return MeasuredArtifact(
        "fig3",
        cells=fig3_cells(result),
        curves=fig3_curves(result),
        objects={"trace_summary": summary},
    )


def _panel_builder(artifact: str) -> Callable[[MeasureOptions], MeasuredArtifact]:
    def build(opts: MeasureOptions) -> MeasuredArtifact:
        import importlib

        mod = importlib.import_module(f"repro.experiments.{artifact}")
        result = getattr(mod, f"run_{artifact}")(size_step=opts.size_step)
        return MeasuredArtifact(
            artifact,
            cells=getattr(mod, f"{artifact}_cells")(result),
            curves=getattr(mod, f"{artifact}_curves")(result),
        )

    return build


def _table3(opts: MeasureOptions) -> MeasuredArtifact:
    from repro.experiments.table3 import run_table3, table3_cells

    return MeasuredArtifact("table3", cells=table3_cells(run_table3()))


def _table4(opts: MeasureOptions) -> MeasuredArtifact:
    from repro.experiments.table4 import run_table4, table4_cells

    return MeasuredArtifact("table4", cells=table4_cells(run_table4()))


def _table5(opts: MeasureOptions) -> MeasuredArtifact:
    from repro.experiments.table5 import run_table5, table5_cells

    result = run_table5(store=opts.store, workers=opts.workers)
    return MeasuredArtifact("table5", cells=table5_cells(result))


def _table6(opts: MeasureOptions) -> MeasuredArtifact:
    from repro.experiments.table6 import run_table6, table6_cells

    result = run_table6(store=opts.store, workers=opts.workers)
    return MeasuredArtifact("table6", cells=table6_cells(result))


def _table7(opts: MeasureOptions) -> MeasuredArtifact:
    from repro.experiments.table7 import run_table7, table7_cells

    return MeasuredArtifact("table7", cells=table7_cells(run_table7()))


_BUILDERS: Mapping[str, Callable[[MeasureOptions], MeasuredArtifact]] = {
    "fig1": _fig1,
    "fig2": _fig2,
    "fig3": _fig3,
    "fig4": _panel_builder("fig4"),
    "fig5": _panel_builder("fig5"),
    "fig6": _panel_builder("fig6"),
    "fig7": _panel_builder("fig7"),
    "fig8": _panel_builder("fig8"),
    "fig9": _panel_builder("fig9"),
    "table3": _table3,
    "table4": _table4,
    "table5": _table5,
    "table6": _table6,
    "table7": _table7,
}

assert set(_BUILDERS) == set(ARTIFACT_IDS)


def artifact_builders() -> dict[str, Callable[[MeasureOptions], MeasuredArtifact]]:
    """All registered builders, keyed by artifact id (report order)."""
    return {a: _BUILDERS[a] for a in ARTIFACT_IDS}


def build_artifact(
    artifact: str, opts: MeasureOptions | None = None
) -> MeasuredArtifact:
    """Regenerate one artifact's measured grid."""
    if artifact not in _BUILDERS:
        raise FidelityError(
            f"unknown artifact {artifact!r}; known: {list(ARTIFACT_IDS)}"
        )
    return _BUILDERS[artifact](opts if opts is not None else MeasureOptions())
