"""``pstl-fidelity`` command-line entry point.

Examples::

    pstl-fidelity run                          # regenerate + check all 14 artifacts
    pstl-fidelity run --artifact table5 --strict
    pstl-fidelity run --campaign-dir campaigns/fid --workers 4 --json report.json
    pstl-fidelity report --markdown            # EXPERIMENTS.md summary table
    pstl-fidelity report --write-experiments EXPERIMENTS.md
    pstl-fidelity diff old.json new.json
    pstl-fidelity waive table5 t5-hpx-find-c --reason "..." --cite "HPX find"

Exit codes: 0 = success; 1 = ``run --strict`` found unwaived deviations
(or ``diff`` found differences); 2 = bad invocation or malformed
refdata/report files.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from contextlib import nullcontext
from pathlib import Path

from repro.errors import ReproError
from repro.fidelity.artifacts import MeasureOptions, build_artifact
from repro.fidelity.engine import run_fidelity
from repro.fidelity.refdata import (
    ARTIFACT_IDS,
    Waiver,
    load_refdata,
    refdata_path,
    save_refdata,
)
from repro.fidelity.report import (
    diff_reports,
    load_report_json,
    render_markdown,
    render_text,
    report_to_json,
    update_experiments_md,
)
from repro.trace import Tracer, use_tracer, write_chrome_trace

__all__ = ["main", "build_parser"]

#: Default EXPERIMENTS.md location (repo root, two levels above src/).
_EXPERIMENTS_MD = Path(__file__).resolve().parents[3] / "EXPERIMENTS.md"


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="pstl-fidelity",
        description="Check the reproduction against the paper's figures and "
        "tables (refdata/ claims; see docs/FIDELITY.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="regenerate artifacts and check claims")
    run.add_argument("--artifact", action="append", choices=ARTIFACT_IDS,
                     default=None, metavar="ID",
                     help="check only this artifact (repeatable; default all)")
    run.add_argument("--refdata", default=None, metavar="DIR",
                     help="reference-data directory (default: repo refdata/)")
    run.add_argument("--strict", action="store_true",
                     help="exit 1 when any unwaived deviation remains")
    run.add_argument("--json", default=None, metavar="OUT.json",
                     help="also write the machine-readable report")
    run.add_argument("--campaign-dir", default=None, metavar="DIR",
                     help="campaign directory whose cache the table grids "
                     "reuse (cache lives under DIR/cache)")
    run.add_argument("--workers", type=int, default=0,
                     help="process-pool width for the campaign-backed grids "
                     "(default 0 = inline)")
    run.add_argument("--size-step", type=int, default=1,
                     help="coarsen figure problem-size sweeps (default 1 = "
                     "the paper's full grid)")
    run.add_argument("--trace", metavar="OUT.json", default=None,
                     help="write a Chrome trace (one fidelity.artifact span "
                     "per artifact plus the underlying model spans)")
    run.add_argument("--verbose", action="store_true",
                     help="list every claim, not just waived/deviating ones")
    run.add_argument("--update-golden", action="store_true",
                     help="refresh stored golden objects from this run "
                     "(review the refdata diff before committing)")

    report = sub.add_parser(
        "report", help="render a report (fresh run or a saved --from JSON)"
    )
    report.add_argument("--from", dest="from_json", default=None,
                        metavar="REPORT.json",
                        help="render a saved report instead of re-running")
    report.add_argument("--refdata", default=None, metavar="DIR")
    report.add_argument("--markdown", action="store_true",
                        help="emit the EXPERIMENTS.md summary table")
    report.add_argument("--write-experiments", default=None, metavar="PATH",
                        nargs="?", const=str(_EXPERIMENTS_MD),
                        help="splice the summary table into EXPERIMENTS.md "
                        "between the generated-table markers (default: the "
                        "repo's EXPERIMENTS.md)")

    diff = sub.add_parser("diff", help="compare two saved JSON reports")
    diff.add_argument("old", help="baseline report JSON")
    diff.add_argument("new", help="candidate report JSON")

    waive = sub.add_parser(
        "waive", help="record a documented deviation for one claim"
    )
    waive.add_argument("artifact", choices=ARTIFACT_IDS)
    waive.add_argument("claim", help="claim id inside the artifact's refdata")
    waive.add_argument("--reason", required=True,
                       help="why the reproduction deviates")
    waive.add_argument("--cite", required=True,
                       help="verbatim snippet of the matching EXPERIMENTS.md "
                       "deviation note")
    waive.add_argument("--refdata", default=None, metavar="DIR")
    waive.add_argument("--experiments", default=str(_EXPERIMENTS_MD),
                       help="EXPERIMENTS.md to validate --cite against")
    return parser


def _measure_options(args) -> MeasureOptions:
    """Build the measurement knobs shared by ``run`` and ``report``."""
    store = None
    if args.campaign_dir is not None:
        from repro.campaign.store import ResultStore

        store = ResultStore(Path(args.campaign_dir) / "cache")
    return MeasureOptions(
        store=store, workers=args.workers, size_step=args.size_step
    )


def _update_goldens(artifacts: list[str] | None, refdata_root: str | None) -> int:
    """Rewrite stored golden objects from freshly measured ones."""
    root = Path(refdata_root) if refdata_root else None
    updated = 0
    for artifact in artifacts or ARTIFACT_IDS:
        ref = load_refdata(artifact, root)
        if not ref.goldens:
            continue
        measured = build_artifact(artifact)
        goldens = {key: measured.objects[key] for key in ref.goldens}
        if goldens != dict(ref.goldens):
            save_refdata(dataclasses.replace(ref, goldens=goldens), root)
            updated += 1
            print(f"updated goldens: {refdata_path(artifact, root)}",
                  file=sys.stderr)
    if not updated:
        print("goldens already up to date", file=sys.stderr)
    return 0


def _cmd_run(args) -> int:
    """``pstl-fidelity run``."""
    if args.update_golden:
        return _update_goldens(args.artifact, args.refdata)
    tracer = Tracer() if args.trace else None
    root = Path(args.refdata) if args.refdata else None
    with use_tracer(tracer) if tracer is not None else nullcontext():
        report = run_fidelity(
            args.artifact, refdata_root=root, options=_measure_options(args)
        )
    if tracer is not None:
        n_spans = write_chrome_trace(tracer, args.trace)
        print(f"trace: {n_spans} spans -> {args.trace}", file=sys.stderr)
    print(render_text(report, verbose=args.verbose))
    if args.json is not None:
        Path(args.json).write_text(
            json.dumps(report_to_json(report), indent=2) + "\n", encoding="utf-8"
        )
        print(f"report: {args.json}", file=sys.stderr)
    if args.strict and not report.ok:
        return 1
    return 0


def _cmd_report(args) -> int:
    """``pstl-fidelity report``."""
    if args.from_json is not None and args.write_experiments is None and not args.markdown:
        doc = load_report_json(Path(args.from_json))
        print(json.dumps(doc, indent=2))
        return 0
    if args.from_json is not None:
        raise ReproError(
            "report --from renders saved JSON only; --markdown and "
            "--write-experiments need a fresh run (claims are re-evaluated)"
        )
    report = run_fidelity(None, refdata_root=Path(args.refdata) if args.refdata else None)
    if args.write_experiments is not None:
        target = Path(args.write_experiments)
        target.write_text(update_experiments_md(report, target), encoding="utf-8")
        print(f"updated summary table in {target}", file=sys.stderr)
        return 0
    print(render_markdown(report) if args.markdown else render_text(report))
    return 0


def _cmd_diff(args) -> int:
    """``pstl-fidelity diff``: 0 = identical claim statuses, 1 = changes."""
    changes = diff_reports(
        load_report_json(Path(args.old)), load_report_json(Path(args.new))
    )
    for line in changes:
        print(line)
    if not changes:
        print("reports agree", file=sys.stderr)
        return 0
    return 1


def _cmd_waive(args) -> int:
    """``pstl-fidelity waive``: append a cited waiver to refdata."""
    root = Path(args.refdata) if args.refdata else None
    ref = load_refdata(args.artifact, root)
    known = {c.id for c in ref.claims}
    if args.claim not in known:
        raise ReproError(
            f"{args.artifact} has no claim {args.claim!r}; known: {sorted(known)}"
        )
    experiments = Path(args.experiments).read_text(encoding="utf-8")
    if args.cite not in experiments:
        raise ReproError(
            f"--cite text not found verbatim in {args.experiments}; waivers "
            "must quote a documented deviation note"
        )
    if ref.waiver_for(args.claim) is not None:
        raise ReproError(f"claim {args.claim!r} is already waived")
    waivers = ref.waivers + (
        Waiver(claim=args.claim, reason=args.reason, experiments_md=args.cite),
    )
    save_refdata(dataclasses.replace(ref, waivers=waivers), root)
    print(f"waived {args.artifact}:{args.claim} -> {refdata_path(args.artifact, root)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI main; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "report": _cmd_report,
        "diff": _cmd_diff,
        "waive": _cmd_waive,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
