"""Paper-fidelity conformance harness (``pstl-fidelity``).

Closes the loop between the reproduction and the source paper. For each
of the 14 paper artifacts (Figures 1-9, Tables 3-7), a JSON file under
``refdata/`` transcribes the paper's values and claims; the harness
regenerates the artifact through the existing experiment drivers and
checks three tiers of claims against it:

* **ordering** -- who wins (fastest backend, highest speedup, N/A
  pattern);
* **ratio** -- measured values within a per-cell tolerance band of the
  paper's numbers (plus absolute bounds and golden-object equality);
* **crossover** -- thresholds (e.g. the size where parallel overtakes
  sequential) within one sweep step of the paper's.

Known deviations documented in EXPERIMENTS.md are encoded as *waivers*
that must quote the matching note verbatim, so the strict run
(``pstl-fidelity run --strict``) passes exactly when the reproduction
matches the paper everywhere except the documented deviations. See
docs/FIDELITY.md for the walkthrough.
"""

from repro.fidelity.artifacts import MeasureOptions, artifact_builders, build_artifact
from repro.fidelity.engine import (
    DEVIATION,
    PASS,
    WAIVED,
    ArtifactReport,
    ClaimResult,
    FidelityReport,
    check_artifact,
    check_claim,
    run_fidelity,
)
from repro.fidelity.measure import (
    MeasuredArtifact,
    crossover_x,
    step_distance,
    trace_structure_summary,
)
from repro.fidelity.refdata import (
    ARTIFACT_IDS,
    ArtifactRef,
    Claim,
    Waiver,
    load_all_refdata,
    load_refdata,
    refdata_dir,
    refdata_path,
    save_refdata,
)
from repro.fidelity.report import (
    diff_reports,
    load_report_json,
    render_markdown,
    render_text,
    report_to_json,
    update_experiments_md,
)

__all__ = [
    "ARTIFACT_IDS",
    "ArtifactRef",
    "Claim",
    "Waiver",
    "MeasuredArtifact",
    "MeasureOptions",
    "ArtifactReport",
    "ClaimResult",
    "FidelityReport",
    "PASS",
    "WAIVED",
    "DEVIATION",
    "artifact_builders",
    "build_artifact",
    "check_claim",
    "check_artifact",
    "run_fidelity",
    "crossover_x",
    "step_distance",
    "trace_structure_summary",
    "load_refdata",
    "load_all_refdata",
    "refdata_dir",
    "refdata_path",
    "save_refdata",
    "report_to_json",
    "render_text",
    "render_markdown",
    "update_experiments_md",
    "diff_reports",
    "load_report_json",
]
