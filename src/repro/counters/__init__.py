"""Hardware-performance-counter front ends (PAPI / Likwid emulations)."""

from repro.counters.events import EVENTS, read_event
from repro.counters.likwid import LikwidMarkers, RegionStats
from repro.counters.papi import PapiHighLevel

__all__ = ["EVENTS", "read_event", "LikwidMarkers", "RegionStats", "PapiHighLevel"]
