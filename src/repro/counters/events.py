"""Hardware-counter event names and their mapping onto simulator counters.

Both the PAPI-style and Likwid-style front ends read the same underlying
:class:`~repro.sim.report.Counters`; this module is the shared event
vocabulary.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import CounterError
from repro.sim.report import Counters

__all__ = ["EVENTS", "read_event"]

#: Event name -> extractor. PAPI-preset-style names on the left.
EVENTS: dict[str, Callable[[Counters], float]] = {
    "PAPI_TOT_INS": lambda c: c.instructions,
    "PAPI_FP_OPS": lambda c: c.flops,
    "PAPI_DP_OPS": lambda c: c.flops,
    "FP_SCALAR": lambda c: c.fp_scalar,
    "FP_PACKED_128": lambda c: c.fp_packed_128,
    "FP_PACKED_256": lambda c: c.fp_packed_256,
    "MEM_BYTES_READ": lambda c: c.bytes_read,
    "MEM_BYTES_WRITTEN": lambda c: c.bytes_written,
    "MEM_DATA_VOLUME": lambda c: c.data_volume,
}


def read_event(counters: Counters, event: str) -> float:
    """Extract one event's value, raising on unknown names."""
    try:
        return EVENTS[event](counters)
    except KeyError:
        raise CounterError(
            f"unknown event {event!r}; known: {sorted(EVENTS)}"
        ) from None
