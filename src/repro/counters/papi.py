"""PAPI high-level API emulation (the suite's second counter backend).

Mirrors PAPI's ``PAPI_hl_region_begin`` / ``PAPI_hl_region_end`` flow:
regions accumulate named events, read out as a dict per region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.counters.events import EVENTS, read_event
from repro.errors import CounterError
from repro.sim.report import Counters, SimReport

__all__ = ["PapiHighLevel"]


@dataclass
class _PapiRegion:
    name: str
    calls: int = 0
    counters: Counters = field(default_factory=Counters)


class PapiHighLevel:
    """The high-level region API: begin, record, end, read."""

    def __init__(self, events: tuple[str, ...] | None = None) -> None:
        self.events = tuple(events) if events is not None else tuple(sorted(EVENTS))
        for event in self.events:
            if event not in EVENTS:
                raise CounterError(f"unknown event {event!r}")
        self._regions: dict[str, _PapiRegion] = {}
        self._open: str | None = None

    def hl_region_begin(self, name: str) -> None:
        """Open a region; PAPI's high-level API allows one at a time."""
        if self._open is not None:
            raise CounterError(
                f"region {self._open!r} still open (PAPI-HL is not nested)"
            )
        self._open = name
        self._regions.setdefault(name, _PapiRegion(name=name))

    def record(self, report: SimReport) -> None:
        """Attribute a simulated invocation to the open region."""
        if self._open is None:
            raise CounterError("no open region to record into")
        region = self._regions[self._open]
        region.calls += 1
        region.counters = region.counters + report.counters

    def hl_region_end(self, name: str) -> None:
        """Close the open region (name must match, as in PAPI)."""
        if self._open != name:
            raise CounterError(
                f"hl_region_end({name!r}) but open region is {self._open!r}"
            )
        self._open = None

    def read(self, name: str) -> dict[str, float]:
        """Event values of a region as a name->value dict."""
        try:
            region = self._regions[name]
        except KeyError:
            raise CounterError(f"no region named {name!r}") from None
        return {event: read_event(region.counters, event) for event in self.events}

    def calls(self, name: str) -> int:
        """How many invocations were recorded in ``name``."""
        try:
            return self._regions[name].calls
        except KeyError:
            raise CounterError(f"no region named {name!r}") from None
