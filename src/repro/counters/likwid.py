"""Likwid Marker API emulation (paper Sections 3.2 and 4.2).

pSTL-Bench brackets exactly the STL call with LIKWID_MARKER_START/STOP so
counters exclude setup (data generation, shuffling). The reproduction's
equivalent brackets a region around recorded :class:`SimReport`s::

    markers = LikwidMarkers()
    with markers.region("reduce") as region:
        region.record(result.report)
    print(markers.table())

The per-region table carries the same metrics as the paper's Tables 3/4:
instructions, FP scalar/packed ops, GFLOP/s, memory bandwidth and volume.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import CounterError
from repro.sim.report import Counters, SimReport
from repro.util.tables import TextTable
from repro.util.units import GIB, format_count

__all__ = ["LikwidMarkers", "RegionStats"]


@dataclass
class RegionStats:
    """Accumulated statistics of one marker region."""

    name: str
    calls: int = 0
    seconds: float = 0.0
    counters: Counters = field(default_factory=Counters)

    def record(self, report: SimReport) -> None:
        """Fold one simulated invocation into the region."""
        self.calls += 1
        self.seconds += report.seconds
        self.counters = self.counters + report.counters

    @property
    def gflops(self) -> float:
        """Achieved GFLOP/s over the region's accumulated time."""
        return self.counters.gflops(self.seconds) if self.seconds > 0 else 0.0

    @property
    def bandwidth_gib(self) -> float:
        """Memory bandwidth in GiB/s over the region's accumulated time."""
        return self.counters.bandwidth_gib(self.seconds) if self.seconds > 0 else 0.0

    @property
    def data_volume_gib(self) -> float:
        """Total data volume in GiB."""
        return self.counters.data_volume / GIB


class LikwidMarkers:
    """Collection of named marker regions."""

    def __init__(self) -> None:
        self._regions: dict[str, RegionStats] = {}
        self._open: set[str] = set()

    @contextmanager
    def region(self, name: str):
        """Open a marker region (re-entrant across calls, not nested)."""
        if name in self._open:
            raise CounterError(f"region {name!r} already open")
        stats = self._regions.setdefault(name, RegionStats(name=name))
        self._open.add(name)
        try:
            yield stats
        finally:
            self._open.remove(name)

    def start(self, name: str) -> RegionStats:
        """LIKWID_MARKER_START equivalent (imperative form)."""
        if name in self._open:
            raise CounterError(f"region {name!r} already open")
        self._open.add(name)
        return self._regions.setdefault(name, RegionStats(name=name))

    def stop(self, name: str) -> None:
        """LIKWID_MARKER_STOP equivalent."""
        if name not in self._open:
            raise CounterError(f"region {name!r} is not open")
        self._open.remove(name)

    def get(self, name: str) -> RegionStats:
        """Stats of a closed region."""
        try:
            return self._regions[name]
        except KeyError:
            raise CounterError(f"no region named {name!r}") from None

    def regions(self) -> list[RegionStats]:
        """All regions, in creation order."""
        return list(self._regions.values())

    def table(self) -> str:
        """Render a Likwid-style metric table (cf. paper Tables 3/4)."""
        table = TextTable(
            headers=[
                "Region",
                "Calls",
                "Instructions",
                "FP scalar",
                "FP 128-bit packed",
                "FP 256-bit packed",
                "GFLOP/s",
                "Mem. bandwidth (GiB/s)",
                "Mem. data volume (GiB)",
            ]
        )
        for r in self.regions():
            c = r.counters
            table.add_row(
                [
                    r.name,
                    r.calls,
                    format_count(c.instructions),
                    format_count(c.fp_scalar),
                    format_count(c.fp_packed_128),
                    format_count(c.fp_packed_256),
                    f"{r.gflops:.2f}",
                    f"{r.bandwidth_gib:.1f}",
                    f"{r.data_volume_gib:.2f}",
                ]
            )
        return table.render()
