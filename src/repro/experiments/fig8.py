"""Figure 8: for_each on the GPUs vs host CPU, float data (Section 5.8).

Problem-size sweep with the device-to-host transfer *forced after every
call*, at several arithmetic intensities. Shapes to reproduce: at low
k_it the GPU is transfer-bound and loses to the parallel CPU (and for
small sizes even to sequential); at high k_it the GPUs win by ~23.5x
(Tesla T4) and ~13.3x (Ampere A2) over the parallel CPU.

The NVC volatile quirk applies: this figure uses ``float``, the one type
whose kernel loop is never optimised away on the GPU target.
"""

from __future__ import annotations

from repro.execution.context import ExecutionContext
from repro.experiments.common import ExperimentResult, make_ctx
from repro.sim.gpu import GpuExecution
from repro.suite.cases import _case_for_each
from repro.suite.sweeps import problem_scaling, problem_sizes
from repro.suite.wrappers import measure_case
from repro.types import FLOAT32
from repro.util.ascii_plot import Series, line_plot

__all__ = [
    "run_fig8",
    "fig8_cells",
    "fig8_curves",
    "gpu_ctx",
    "gpu_vs_cpu_ratio",
    "FIG8_KITS",
]

#: Human series labels -> short cell-key names.
FIG8_SERIES_KEYS = {
    "GCC-SEQ (host)": "seq-host",
    "NVC-OMP (host)": "omp-host",
    "NVC-CUDA (Mach D)": "t4",
    "NVC-CUDA (Mach E)": "a2",
}

FIG8_KITS = (1, 1000, 10000)
#: GPU sweeps stop at 2^29 floats (2 GiB) so the A2's 8 GiB UM never thrashes.
GPU_MAX_EXP = 29


def gpu_ctx(machine: str, transfer_back: bool = True) -> ExecutionContext:
    """A CUDA context for Mach D or Mach E.

    Thin shim over the shared resolver (:mod:`repro.scenarios.resolve`),
    like ``common.make_ctx``.
    """
    from repro.scenarios.resolve import make_context

    return make_context(
        machine,
        "nvc-cuda",
        threads=1,
        gpu_options=GpuExecution(transfer_back=transfer_back),
    )


def run_fig8(
    k_values: tuple[int, ...] = FIG8_KITS,
    size_step: int = 2,
    batch: bool | None = None,
) -> ExperimentResult:
    """Regenerate Fig. 8's panels (one per k_it)."""
    sizes = problem_sizes(max_exp=GPU_MAX_EXP, step=size_step)
    panels = {}
    charts = []
    for k_it in k_values:
        case = _case_for_each(k_it)
        series = {}
        series["GCC-SEQ (host)"] = problem_scaling(
            case, make_ctx("gpu-host", "gcc-seq"), sizes, FLOAT32, batch=batch
        )
        series["NVC-OMP (host)"] = problem_scaling(
            case, make_ctx("gpu-host", "nvc-omp"), sizes, FLOAT32, batch=batch
        )
        series["NVC-CUDA (Mach D)"] = problem_scaling(
            case, gpu_ctx("D"), sizes, FLOAT32
        )
        series["NVC-CUDA (Mach E)"] = problem_scaling(
            case, gpu_ctx("E"), sizes, FLOAT32
        )
        panels[f"k{k_it}"] = series
        charts.append(
            line_plot(
                [Series(name=k, x=s.xs(), y=s.ys()) for k, s in series.items()],
                logx=True,
                logy=True,
                title=f"Fig 8 (k_it={k_it}, float): for_each time vs size, D2H forced",
            )
        )
    return ExperimentResult(
        experiment_id="fig8",
        title="for_each on GPUs (float, forced transfer)",
        data=panels,
        rendered="\n\n".join(charts),
    )


def fig8_cells(result: ExperimentResult) -> dict[str, float | None]:
    """Fig. 8's measured grid in checkable form.

    Keys: ``k{k}/{series}/t@2^{exp}`` (per-call seconds, series one of
    ``seq-host``/``omp-host``/``t4``/``a2``) plus the paper's headline
    GPU-vs-parallel-CPU ratios ``k{k}/{gpu}/ratio@2^{max}`` (> 1 means
    the GPU wins).
    """
    from repro.experiments.common import pow2_exp

    cells: dict[str, float | None] = {}
    for panel_key, series in result.data.items():
        by_key: dict[str, dict[int, float]] = {}
        for label, sweep in series.items():
            short = FIG8_SERIES_KEYS[label]
            by_key[short] = dict(zip(sweep.xs(), sweep.ys()))
            for n, seconds in by_key[short].items():
                cells[f"{panel_key}/{short}/t@2^{pow2_exp(n)}"] = seconds
        host = by_key.get("omp-host", {})
        for gpu in ("t4", "a2"):
            common = sorted(set(host) & set(by_key.get(gpu, {})))
            if common:
                n = common[-1]
                cells[f"{panel_key}/{gpu}/ratio@2^{pow2_exp(n)}"] = (
                    host[n] / by_key[gpu][n]
                )
    return cells


def fig8_curves(result: ExperimentResult) -> dict[str, tuple[tuple[float, float], ...]]:
    """Fig. 8's sweeps as (size, seconds) series, keyed ``k{k}/{series}``."""
    curves: dict[str, tuple[tuple[float, float], ...]] = {}
    for panel_key, series in result.data.items():
        for label, sweep in series.items():
            short = FIG8_SERIES_KEYS[label]
            curves[f"{panel_key}/{short}"] = tuple(zip(sweep.xs(), sweep.ys()))
    return curves


def gpu_vs_cpu_ratio(machine: str, k_it: int, size_exp: int = GPU_MAX_EXP) -> float:
    """Parallel-CPU time / GPU time for one configuration (> 1: GPU wins)."""
    n = 1 << size_exp
    case = _case_for_each(k_it)
    cpu = measure_case(case, make_ctx("gpu-host", "nvc-omp"), n, FLOAT32)
    gpu = measure_case(case, gpu_ctx(machine), n, FLOAT32)
    return cpu / gpu
