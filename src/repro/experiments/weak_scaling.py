"""Weak scaling (extension beyond the paper).

The paper studies problem scaling and strong scaling; the third classic
axis is weak scaling: grow the problem with the thread count (n = base x
threads) and watch per-call time, which stays flat for perfectly scalable
work. For bandwidth-bound kernels the curve instead rises once the
per-node memory controllers saturate -- the same NUMA story as Fig. 3,
told from a different angle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnsupportedOperationError
from repro.experiments.common import ExperimentResult, make_ctx
from repro.suite.cases import get_case
from repro.suite.sweeps import thread_counts
from repro.suite.wrappers import measure_case
from repro.util.tables import TextTable

__all__ = ["WeakScalingCurve", "weak_scaling", "run_weak_scaling"]


@dataclass(frozen=True)
class WeakScalingCurve:
    """Per-call times with n growing proportionally to the thread count."""

    label: str
    threads: tuple[int, ...]
    sizes: tuple[int, ...]
    seconds: tuple[float, ...]

    def efficiencies(self) -> list[float]:
        """t(1) / t(p): 1.0 means perfect weak scaling."""
        base = self.seconds[0]
        return [base / s for s in self.seconds]


def weak_scaling(
    machine: str, backend: str, case_name: str, base_exp: int = 24
) -> WeakScalingCurve:
    """Weak-scaling curve with n = 2^base_exp elements *per thread*."""
    case = get_case(case_name)
    ctx = make_ctx(machine, backend)
    threads = thread_counts(ctx.machine.total_cores)
    sizes = []
    seconds = []
    for t in threads:
        n = (1 << base_exp) * t
        sub = ctx.with_(threads=t)
        sizes.append(n)
        seconds.append(measure_case(case, sub, n))
    return WeakScalingCurve(
        label=f"{backend}/{case_name}/{machine}",
        threads=tuple(threads),
        sizes=tuple(sizes),
        seconds=tuple(seconds),
    )


def run_weak_scaling(
    machine: str = "C",
    cases: tuple[str, ...] = ("for_each_k1", "for_each_k1000", "reduce"),
    backends: tuple[str, ...] = ("GCC-TBB", "GCC-GNU", "NVC-OMP"),
    base_exp: int = 24,
) -> ExperimentResult:
    """Run the weak-scaling extension study and render a table."""
    curves: dict[str, WeakScalingCurve] = {}
    table = TextTable(
        headers=["Backend/case", "t=1", "t=max", "weak efficiency"],
        title=(
            f"Weak scaling on Mach {machine} (2^{base_exp} elements per "
            "thread; efficiency = t(1)/t(p), 1.0 is perfect)"
        ),
    )
    for case_name in cases:
        for backend in backends:
            try:
                curve = weak_scaling(machine, backend, case_name, base_exp)
            except UnsupportedOperationError:
                continue
            curves[curve.label] = curve
            eff = curve.efficiencies()[-1]
            table.add_row(
                [
                    f"{backend}/{case_name}",
                    f"{curve.seconds[0]:.4f}s",
                    f"{curve.seconds[-1]:.4f}s",
                    f"{eff:.0%}",
                ]
            )
    return ExperimentResult(
        experiment_id="weak-scaling",
        title="Weak scaling (extension)",
        data=curves,
        rendered=table.render(),
    )
