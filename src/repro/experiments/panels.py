"""Shared two-panel driver for Figures 4-7.

Each of those figures shows the same pair for one algorithm on one
machine: (a) problem scaling at full core count with a sequential
reference, and (b) strong scaling (speedup vs threads) at n = 2^30.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.speedup import ScalingCurve
from repro.errors import UnsupportedOperationError
from repro.experiments.common import (
    PARALLEL_CPU_BACKENDS,
    make_ctx,
    paper_size,
    seq_baseline_seconds,
)
from repro.suite.cases import get_case
from repro.suite.sweeps import SweepResult, problem_scaling, problem_sizes, strong_scaling
from repro.util.ascii_plot import Series, line_plot

__all__ = [
    "AlgoPanels",
    "run_panels",
    "panel_cells",
    "panel_curves",
    "panels_from_result",
]


@dataclass(frozen=True)
class AlgoPanels:
    """Both panels of a Figure 4-7 style artifact."""

    machine: str
    case_name: str
    problem: dict[str, SweepResult]
    scaling: dict[str, ScalingCurve]

    def rendered(self) -> str:
        """ASCII charts of both panels."""
        left = line_plot(
            [
                Series(name=b, x=s.xs(), y=s.ys())
                for b, s in self.problem.items()
                if s.xs()
            ],
            logx=True,
            logy=True,
            title=f"{self.case_name} on Mach {self.machine}: time vs size (all cores)",
        )
        right = line_plot(
            [
                Series(name=b, x=list(c.threads), y=c.speedups())
                for b, c in self.scaling.items()
            ],
            logx=True,
            title=f"{self.case_name} on Mach {self.machine}: speedup vs threads (n=2^30)",
        )
        return left + "\n\n" + right


def panels_from_result(result, machine: str, case_name: str) -> AlgoPanels:
    """Rebuild :class:`AlgoPanels` from a Figure 4-7 ``ExperimentResult``.

    The drivers store the two panel mappings in ``result.data``; the
    machine and algorithm are per-figure constants the caller supplies.
    """
    return AlgoPanels(
        machine=machine,
        case_name=case_name,
        problem=result.data["problem"],
        scaling=result.data["scaling"],
    )


def panel_cells(panels: AlgoPanels) -> dict[str, float | None]:
    """The panels' measured grid as flat, checkable cells.

    Keys: ``problem/{backend}/t@2^{exp}`` (seconds at full core count),
    ``scaling/{backend}/speedup@{threads}`` and
    ``scaling/{backend}/max_speedup``. A parallel backend that raised
    ``UnsupportedOperationError`` for the whole sweep (the paper's N/A,
    e.g. GNU's missing scan) appears as ``max_speedup = None``.
    """
    from repro.experiments.common import pow2_exp

    cells: dict[str, float | None] = {}
    for backend, sweep in panels.problem.items():
        for n, seconds in zip(sweep.xs(), sweep.ys()):
            cells[f"problem/{backend}/t@2^{pow2_exp(n)}"] = seconds
    attempted = tuple(
        b for b in PARALLEL_CPU_BACKENDS
        if not (b == "ICC-TBB" and panels.machine.upper() == "B")
    )
    for backend in attempted:
        curve = panels.scaling.get(backend)
        if curve is None:
            cells[f"scaling/{backend}/max_speedup"] = None
            continue
        for t, s in zip(curve.threads, curve.speedups()):
            cells[f"scaling/{backend}/speedup@{t}"] = s
        cells[f"scaling/{backend}/max_speedup"] = curve.max_speedup()
    return cells


def panel_curves(panels: AlgoPanels) -> dict[str, tuple[tuple[float, float], ...]]:
    """The panels' sweeps as (x, y) series for crossover checks.

    Keys: ``problem/{backend}`` (size vs seconds) and
    ``scaling/{backend}`` (threads vs speedup).
    """
    curves: dict[str, tuple[tuple[float, float], ...]] = {}
    for backend, sweep in panels.problem.items():
        curves[f"problem/{backend}"] = tuple(zip(sweep.xs(), sweep.ys()))
    for backend, curve in panels.scaling.items():
        curves[f"scaling/{backend}"] = tuple(zip(curve.threads, curve.speedups()))
    return curves


def run_panels(
    machine: str,
    case_name: str,
    size_exp: int = 30,
    size_step: int = 1,
    backends: tuple[str, ...] = PARALLEL_CPU_BACKENDS,
    batch: bool | None = None,
) -> AlgoPanels:
    """Build both panels for (machine, algorithm).

    ``batch`` selects the scalar/vectorized sweep path (bit-identical
    results; ``None`` auto-selects, ``False`` forces the scalar loop).
    """
    case = get_case(case_name)
    n = paper_size(size_exp)
    available = tuple(
        b for b in backends if not (b == "ICC-TBB" and machine.upper() == "B")
    )

    problem: dict[str, SweepResult] = {}
    for backend in ("GCC-SEQ", *available):
        ctx = make_ctx(machine, backend)
        problem[backend] = problem_scaling(
            case, ctx, problem_sizes(step=size_step), batch=batch
        )

    scaling: dict[str, ScalingCurve] = {}
    baseline = seq_baseline_seconds(machine, case_name, n, batch=batch)
    for backend in available:
        ctx = make_ctx(machine, backend)
        try:
            sweep = strong_scaling(case, ctx, n, batch=batch)
        except UnsupportedOperationError:
            continue
        if not sweep.xs():
            continue
        scaling[backend] = ScalingCurve(
            label=f"{backend}/{case_name}/{machine}",
            threads=tuple(sweep.xs()),
            seconds=tuple(sweep.ys()),
            baseline_seconds=baseline,
        )
    return AlgoPanels(
        machine=machine, case_name=case_name, problem=problem, scaling=scaling
    )
