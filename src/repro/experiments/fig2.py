"""Figure 2: X::for_each problem scaling across Mach A/B/C (Section 5.2).

Execution time vs problem size (2^3..2^30) at full core count for every
backend, plus the GCC sequential reference, at k_it = 1 and k_it = 1000.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, make_ctx
from repro.suite.cases import get_case
from repro.suite.sweeps import problem_scaling, problem_sizes
from repro.util.ascii_plot import Series, line_plot

__all__ = [
    "run_fig2",
    "fig2_cells",
    "fig2_curves",
    "foreach_problem_series",
    "FIG2_BACKENDS",
]

FIG2_BACKENDS = ("GCC-SEQ", "GCC-TBB", "GCC-GNU", "GCC-HPX", "ICC-TBB", "NVC-OMP")


def foreach_problem_series(
    machine: str,
    k_it: int,
    backends: tuple[str, ...] = FIG2_BACKENDS,
    size_step: int = 1,
    batch: bool | None = None,
):
    """One panel of Fig. 2: {backend: SweepResult} for a machine and k_it."""
    sizes = problem_sizes(step=size_step)
    case = get_case(f"for_each_k{k_it}")
    out = {}
    for backend in backends:
        ctx = make_ctx(machine, backend)
        out[backend] = problem_scaling(case, ctx, sizes, batch=batch)
    return out


def fig2_cells(result: ExperimentResult) -> dict[str, float | None]:
    """Fig. 2's measured grid in checkable form.

    Keys are ``{machine}/k{k}/{backend}/t@2^{exp}`` with seconds per
    call; sizes a backend cannot run are simply absent (the sweep marks
    them unsupported).
    """
    from repro.experiments.common import pow2_exp

    cells: dict[str, float | None] = {}
    for panel_key, series_by_backend in result.data.items():
        for backend, sweep in series_by_backend.items():
            for n, seconds in zip(sweep.xs(), sweep.ys()):
                cells[f"{panel_key}/{backend}/t@2^{pow2_exp(n)}"] = seconds
    return cells


def fig2_curves(result: ExperimentResult) -> dict[str, tuple[tuple[float, float], ...]]:
    """Fig. 2's sweeps as (x, y) series, keyed ``{machine}/k{k}/{backend}``."""
    curves: dict[str, tuple[tuple[float, float], ...]] = {}
    for panel_key, series_by_backend in result.data.items():
        for backend, sweep in series_by_backend.items():
            curves[f"{panel_key}/{backend}"] = tuple(zip(sweep.xs(), sweep.ys()))
    return curves


def run_fig2(
    machines: tuple[str, ...] = ("A", "B", "C"),
    k_values: tuple[int, ...] = (1, 1000),
    size_step: int = 1,
    batch: bool | None = None,
) -> ExperimentResult:
    """Regenerate all panels of Fig. 2."""
    panels = {}
    charts = []
    for machine in machines:
        for k_it in k_values:
            series_by_backend = foreach_problem_series(
                machine, k_it, size_step=size_step, batch=batch
            )
            panels[f"{machine}/k{k_it}"] = series_by_backend
            chart_series = [
                Series(name=backend, x=s.xs(), y=s.ys())
                for backend, s in series_by_backend.items()
            ]
            charts.append(
                line_plot(
                    chart_series,
                    logx=True,
                    logy=True,
                    title=f"Fig 2 ({machine}, k_it={k_it}): for_each time vs size",
                )
            )
    return ExperimentResult(
        experiment_id="fig2",
        title="for_each problem scaling",
        data=panels,
        rendered="\n\n".join(charts),
    )
