"""Figure 1: impact of the custom parallel allocator (paper Section 5.1).

Mach A, 32 threads, n = 2^30: for each (algorithm, backend) pair, the
speedup of the parallel first-touch allocator over the default serial
first-touch allocator. HPX is excluded (it always uses its own
allocator); so is the sequential baseline.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, make_ctx, paper_size
from repro.memory.allocators import DefaultAllocator, ParallelFirstTouchAllocator
from repro.suite.cases import get_case
from repro.suite.wrappers import measure_case
from repro.util.tables import render_grid

__all__ = [
    "run_fig1",
    "fig1_cells",
    "allocator_speedup",
    "FIG1_BACKENDS",
    "FIG1_CASES",
]

#: Backends compared in Fig. 1 (HPX keeps its own allocator).
FIG1_BACKENDS = ("GCC-TBB", "GCC-GNU", "ICC-TBB", "NVC-OMP")
FIG1_CASES = (
    "find",
    "for_each_k1",
    "for_each_k1000",
    "inclusive_scan",
    "reduce",
    "sort",
)


def allocator_speedup(
    machine: str,
    backend: str,
    case_name: str,
    threads: int = 32,
    size_exp: int = 30,
    batch: bool | None = None,
) -> float | None:
    """T_default / T_custom; > 1 means the custom allocator helps.

    ``batch`` selects the scalar/vectorized evaluation path (both agree
    bitwise; ``None`` auto-selects).
    """
    n = paper_size(size_exp)
    case = get_case(case_name)
    from repro.errors import UnsupportedOperationError
    from repro.suite.batch import measure_case_batch, use_batch_path

    try:
        default_ctx = make_ctx(
            machine, backend, threads=threads, allocator=DefaultAllocator()
        )
        custom_ctx = make_ctx(
            machine, backend, threads=threads, allocator=ParallelFirstTouchAllocator()
        )
        if use_batch_path(batch, case_name, default_ctx):
            t_default = measure_case_batch(case_name, default_ctx, n)
            t_custom = measure_case_batch(case_name, custom_ctx, n)
        else:
            t_default = measure_case(case, default_ctx, n)
            t_custom = measure_case(case, custom_ctx, n)
    except UnsupportedOperationError:
        return None
    return t_default / t_custom


def fig1_cells(result: ExperimentResult) -> dict[str, float | None]:
    """Fig. 1's measured grid in checkable form.

    Keys are ``{backend}/{case}`` and values the allocator speedup
    (T_default / T_custom); ``None`` is the paper's N/A (GNU scan).
    """
    return dict(result.data)


def run_fig1(
    threads: int = 32, size_exp: int = 30, batch: bool | None = None
) -> ExperimentResult:
    """Regenerate Fig. 1's allocator-speedup bars."""
    data: dict[str, float | None] = {}
    cells = []
    for backend in FIG1_BACKENDS:
        row = []
        for case_name in FIG1_CASES:
            ratio = allocator_speedup(
                "A", backend, case_name, threads, size_exp, batch=batch
            )
            data[f"{backend}/{case_name}"] = ratio
            row.append("N/A" if ratio is None else f"{ratio:.2f}x")
        cells.append(row)
    rendered = render_grid(
        row_labels=list(FIG1_BACKENDS),
        col_labels=list(FIG1_CASES),
        cells=cells,
        title=(
            f"Fig 1: custom-allocator speedup, Mach A, {threads} threads, "
            f"n=2^{size_exp} (>1: custom allocator faster)"
        ),
    )
    return ExperimentResult(
        experiment_id="fig1",
        title="Impact of the parallel first-touch allocator",
        data=data,
        rendered=rendered,
    )
