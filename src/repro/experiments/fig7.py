"""Figure 7: X::sort on Mach C (Zen 3), Section 5.6.

Shapes to reproduce: TBB falls back to sequential below ~2^9 and HPX
single-threads up to 2^15; NVC-OMP is competitive at low thread counts;
GNU's multiway mergesort is by far the best at high thread counts; the
quicksort-family backends are capped near speedup ~10 by their partition
trees.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.panels import (
    panel_cells,
    panel_curves,
    panels_from_result,
    run_panels,
)

__all__ = ["run_fig7", "fig7_cells", "fig7_curves"]

FIG7_MACHINE = "C"
FIG7_CASE = "sort"


def run_fig7(size_step: int = 1, batch: bool | None = None) -> ExperimentResult:
    """Regenerate both panels of Fig. 7."""
    panels = run_panels(FIG7_MACHINE, FIG7_CASE, size_step=size_step, batch=batch)
    return ExperimentResult(
        experiment_id="fig7",
        title="sort on Mach C (Zen 3)",
        data={"problem": panels.problem, "scaling": panels.scaling},
        rendered=panels.rendered(),
    )


def fig7_cells(result: ExperimentResult) -> dict[str, float | None]:
    """Fig. 7's measured grid in checkable form (see ``panel_cells``)."""
    return panel_cells(panels_from_result(result, FIG7_MACHINE, FIG7_CASE))


def fig7_curves(result: ExperimentResult) -> dict[str, tuple[tuple[float, float], ...]]:
    """Fig. 7's sweeps as (x, y) series (see ``panel_curves``)."""
    return panel_curves(panels_from_result(result, FIG7_MACHINE, FIG7_CASE))
