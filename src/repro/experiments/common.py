"""Shared plumbing for the per-figure/per-table experiment drivers.

Every driver in ``repro.experiments`` regenerates one artifact of the
paper's evaluation section (see DESIGN.md section 3 for the index) and
returns a structured result that the benchmark harness renders and
asserts shapes on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.backends.registry import PARALLEL_CPU_BACKENDS
from repro.errors import ExperimentError
from repro.execution.context import ExecutionContext
from repro.memory.allocators import Allocator
from repro.suite.cases import HEADLINE_CASES, get_case
from repro.suite.wrappers import measure_case
from repro.types import ElemType, FLOAT64

__all__ = [
    "ExperimentResult",
    "make_ctx",
    "seq_baseline_seconds",
    "paper_size",
    "pow2_exp",
    "HEADLINE_CASES",
    "PARALLEL_CPU_BACKENDS",
]

#: The evaluation's standard problem size (Section 4.2 / Table 5).
PAPER_SIZE_EXP = 30


def paper_size(exp: int = PAPER_SIZE_EXP) -> int:
    """2^exp elements."""
    if exp < 0:
        raise ExperimentError("size exponent must be non-negative")
    return 1 << exp


def pow2_exp(n: int) -> int:
    """The exponent of a power-of-two size (inverse of :func:`paper_size`).

    The fidelity cell keys label sweep sizes ``t@2^{exp}``; this keeps the
    conversion in one place and rejects off-grid sizes loudly.
    """
    if n < 1 or n & (n - 1):
        raise ExperimentError(f"size {n} is not a power of two")
    return n.bit_length() - 1


@dataclass(frozen=True)
class ExperimentResult:
    """One regenerated artifact: id, data, and rendered text."""

    experiment_id: str
    title: str
    data: Mapping[str, object] = field(default_factory=dict)
    rendered: str = ""

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.rendered or f"{self.experiment_id}: {self.title}"


def make_ctx(
    machine: str,
    backend: str,
    threads: int | None = None,
    allocator: Allocator | None = None,
    mode: str = "model",
) -> ExecutionContext:
    """Build a context for (machine, backend) with paper defaults.

    ``threads=None`` uses all cores, matching "maximum number of threads
    = physical cores" (Section 4.1). Thin shim over the shared resolver
    (:mod:`repro.scenarios.resolve`), imported lazily because the
    analysis layer imports this module at import time.
    """
    from repro.scenarios.resolve import make_context

    return make_context(
        machine, backend, threads=threads, allocator=allocator, mode=mode
    )


def seq_baseline_seconds(
    machine: str,
    case_name: str,
    n: int,
    elem: ElemType = FLOAT64,
    batch: bool | None = None,
) -> float:
    """GCC sequential baseline time (Table 5's denominator).

    ``batch`` picks the evaluation path as in ``suite.sweeps`` (``None``
    auto-selects the vectorized path; both paths agree bitwise).
    """
    from repro.suite.batch import measure_case_batch, use_batch_path

    ctx = make_ctx(machine, "gcc-seq", threads=1)
    if use_batch_path(batch, case_name, ctx):
        return measure_case_batch(case_name, ctx, n, elem)
    return measure_case(get_case(case_name), ctx, n, elem)
