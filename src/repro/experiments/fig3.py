"""Figure 3: X::for_each strong scaling (Section 5.2).

Speedup vs thread count at n = 2^30 against the GCC sequential baseline,
for k_it = 1 (overhead-dominated) and k_it = 1000 (compute-dominated).
The paper's headline observations: NVC-OMP leads at k_it=1; HPX's curve
is nearly flat past 16 threads; at k_it=1000 everyone but HPX approaches
ideal (on Mach C: HPX ~84.8 vs 102-106.7 for the rest, i.e. 66 % vs
79-83 % parallel efficiency).
"""

from __future__ import annotations

from repro.analysis.speedup import ScalingCurve
from repro.experiments.common import (
    ExperimentResult,
    PARALLEL_CPU_BACKENDS,
    make_ctx,
    paper_size,
    seq_baseline_seconds,
)
from repro.suite.cases import get_case
from repro.suite.sweeps import strong_scaling
from repro.util.ascii_plot import Series, line_plot

__all__ = ["run_fig3", "fig3_cells", "fig3_curves", "foreach_scaling_curve"]


def foreach_scaling_curve(
    machine: str,
    backend: str,
    k_it: int,
    size_exp: int = 30,
    batch: bool | None = None,
) -> ScalingCurve:
    """One strong-scaling curve of Fig. 3."""
    n = paper_size(size_exp)
    case = get_case(f"for_each_k{k_it}")
    ctx = make_ctx(machine, backend)
    sweep = strong_scaling(case, ctx, n, batch=batch)
    baseline = seq_baseline_seconds(machine, f"for_each_k{k_it}", n, batch=batch)
    return ScalingCurve(
        label=f"{backend}/k{k_it}/{machine}",
        threads=tuple(sweep.xs()),
        seconds=tuple(sweep.ys()),
        baseline_seconds=baseline,
    )


def fig3_cells(result: ExperimentResult) -> dict[str, float | None]:
    """Fig. 3's measured grid in checkable form.

    Keys are ``{backend}/k{k}/{machine}/max_speedup`` and
    ``{backend}/k{k}/{machine}/speedup@{threads}`` (speedup vs GCC-SEQ).
    """
    cells: dict[str, float | None] = {}
    for label, curve in result.data.items():
        for t, s in zip(curve.threads, curve.speedups()):
            cells[f"{label}/speedup@{t}"] = s
        cells[f"{label}/max_speedup"] = curve.max_speedup()
    return cells


def fig3_curves(result: ExperimentResult) -> dict[str, tuple[tuple[float, float], ...]]:
    """Fig. 3's scaling curves as (threads, speedup) series."""
    return {
        label: tuple(zip(curve.threads, curve.speedups()))
        for label, curve in result.data.items()
    }


def run_fig3(
    machines: tuple[str, ...] = ("A", "B", "C"),
    k_values: tuple[int, ...] = (1, 1000),
    size_exp: int = 30,
    batch: bool | None = None,
) -> ExperimentResult:
    """Regenerate all panels of Fig. 3."""
    curves: dict[str, ScalingCurve] = {}
    charts = []
    for machine in machines:
        for k_it in k_values:
            panel = []
            for backend in PARALLEL_CPU_BACKENDS:
                if backend == "ICC-TBB" and machine == "B":
                    continue  # not installed on Mach B (Table 2)
                curve = foreach_scaling_curve(
                    machine, backend, k_it, size_exp, batch=batch
                )
                curves[curve.label] = curve
                panel.append(
                    Series(
                        name=backend, x=list(curve.threads), y=curve.speedups()
                    )
                )
            charts.append(
                line_plot(
                    panel,
                    logx=True,
                    title=f"Fig 3 ({machine}, k_it={k_it}): for_each speedup vs threads",
                )
            )
    return ExperimentResult(
        experiment_id="fig3",
        title="for_each strong scaling",
        data=curves,
        rendered="\n\n".join(charts),
    )
