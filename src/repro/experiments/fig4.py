"""Figure 4: X::find on Mach B (Zen 1), Section 5.3.

Shapes to reproduce: sequential wins for small sizes (by orders of
magnitude at the tiny end); GNU switches to parallel at 2^9; the parallel
versions win decisively past ~2^18; the best speedup is ~6 (GCC-TBB at 64
threads), bounded by the ~7x STREAM bandwidth ratio of Table 2.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.panels import run_panels

__all__ = ["run_fig4"]


def run_fig4(size_step: int = 1, batch: bool | None = None) -> ExperimentResult:
    """Regenerate both panels of Fig. 4."""
    panels = run_panels("B", "find", size_step=size_step, batch=batch)
    return ExperimentResult(
        experiment_id="fig4",
        title="find on Mach B (Zen 1)",
        data={"problem": panels.problem, "scaling": panels.scaling},
        rendered=panels.rendered(),
    )
