"""Figure 4: X::find on Mach B (Zen 1), Section 5.3.

Shapes to reproduce: sequential wins for small sizes (by orders of
magnitude at the tiny end); GNU switches to parallel at 2^9; the parallel
versions win decisively past ~2^18; the best speedup is ~6 (GCC-TBB at 64
threads), bounded by the ~7x STREAM bandwidth ratio of Table 2.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.panels import (
    panel_cells,
    panel_curves,
    panels_from_result,
    run_panels,
)

__all__ = ["run_fig4", "fig4_cells", "fig4_curves"]

FIG4_MACHINE = "B"
FIG4_CASE = "find"


def run_fig4(size_step: int = 1, batch: bool | None = None) -> ExperimentResult:
    """Regenerate both panels of Fig. 4."""
    panels = run_panels(FIG4_MACHINE, FIG4_CASE, size_step=size_step, batch=batch)
    return ExperimentResult(
        experiment_id="fig4",
        title="find on Mach B (Zen 1)",
        data={"problem": panels.problem, "scaling": panels.scaling},
        rendered=panels.rendered(),
    )


def fig4_cells(result: ExperimentResult) -> dict[str, float | None]:
    """Fig. 4's measured grid in checkable form (see ``panel_cells``)."""
    return panel_cells(panels_from_result(result, FIG4_MACHINE, FIG4_CASE))


def fig4_curves(result: ExperimentResult) -> dict[str, tuple[tuple[float, float], ...]]:
    """Fig. 4's sweeps as (x, y) series (see ``panel_curves``)."""
    return panel_curves(panels_from_result(result, FIG4_MACHINE, FIG4_CASE))
