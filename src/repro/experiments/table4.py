"""Table 4: hardware counters for 100 calls to reduce on Mach A.

The signature observations to reproduce: HPX executes by far the most
instructions; HPX and ICC run the reduction as 256-bit packed FP with
essentially no scalar FP, while GCC-TBB/GNU/NVC are purely scalar.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.table3 import TABLE3_BACKENDS, _counter_table, counter_cells

__all__ = ["run_table4", "table4_cells"]


def table4_cells(result: ExperimentResult) -> dict[str, float | None]:
    """Table 4's measured grid in checkable form (see ``counter_cells``)."""
    return counter_cells(result)


def run_table4(size_exp: int = 30) -> ExperimentResult:
    """Regenerate Table 4 (reduce, 100 calls, Mach A)."""
    stats, rendered = _counter_table("reduce", TABLE3_BACKENDS, size_exp=size_exp)
    return ExperimentResult(
        experiment_id="table4",
        title="Instructions executed in 100 calls to reduce, Mach A",
        data=stats,
        rendered="Table 4:\n" + rendered,
    )
