"""Experiment drivers: one module per table/figure of the paper.

``EXPERIMENTS`` maps artifact ids to their runner functions; every bench
in ``benchmarks/`` wraps exactly one of these.
"""

from repro.experiments.common import ExperimentResult, make_ctx, paper_size
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.experiments.table6 import run_table6
from repro.experiments.table7 import run_table7
from repro.experiments.weak_scaling import run_weak_scaling

EXPERIMENTS = {
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "table7": run_table7,
    # Extension beyond the paper (see the module's docstring).
    "weak-scaling": run_weak_scaling,
}

__all__ = [
    "ExperimentResult",
    "make_ctx",
    "paper_size",
    "EXPERIMENTS",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
]
