"""Figure 5: X::inclusive_scan on Mach C (Zen 3), Section 5.4.

Shapes to reproduce: GCC-GNU is absent (no parallel scan); NVC-OMP falls
back to sequential (no scaling at all); sequential wins until the working
set leaves the caches; TBB-based backends reach a speedup of only ~5 at
128 threads (memory-bound, extra scan pass); HPX stays near 1.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.panels import (
    panel_cells,
    panel_curves,
    panels_from_result,
    run_panels,
)

__all__ = ["run_fig5", "fig5_cells", "fig5_curves"]

FIG5_MACHINE = "C"
FIG5_CASE = "inclusive_scan"


def run_fig5(size_step: int = 1, batch: bool | None = None) -> ExperimentResult:
    """Regenerate both panels of Fig. 5."""
    panels = run_panels(FIG5_MACHINE, FIG5_CASE, size_step=size_step, batch=batch)
    return ExperimentResult(
        experiment_id="fig5",
        title="inclusive_scan on Mach C (Zen 3)",
        data={"problem": panels.problem, "scaling": panels.scaling},
        rendered=panels.rendered(),
    )


def fig5_cells(result: ExperimentResult) -> dict[str, float | None]:
    """Fig. 5's measured grid in checkable form (see ``panel_cells``)."""
    return panel_cells(panels_from_result(result, FIG5_MACHINE, FIG5_CASE))


def fig5_curves(result: ExperimentResult) -> dict[str, tuple[tuple[float, float], ...]]:
    """Fig. 5's sweeps as (x, y) series (see ``panel_curves``)."""
    return panel_curves(panels_from_result(result, FIG5_MACHINE, FIG5_CASE))
