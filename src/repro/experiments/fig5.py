"""Figure 5: X::inclusive_scan on Mach C (Zen 3), Section 5.4.

Shapes to reproduce: GCC-GNU is absent (no parallel scan); NVC-OMP falls
back to sequential (no scaling at all); sequential wins until the working
set leaves the caches; TBB-based backends reach a speedup of only ~5 at
128 threads (memory-bound, extra scan pass); HPX stays near 1.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.panels import run_panels

__all__ = ["run_fig5"]


def run_fig5(size_step: int = 1, batch: bool | None = None) -> ExperimentResult:
    """Regenerate both panels of Fig. 5."""
    panels = run_panels("C", "inclusive_scan", size_step=size_step, batch=batch)
    return ExperimentResult(
        experiment_id="fig5",
        title="inclusive_scan on Mach C (Zen 3)",
        data={"problem": panels.problem, "scaling": panels.scaling},
        rendered=panels.rendered(),
    )
