"""Table 5: speedup against GCC's sequential implementation.

Grid: 6 algorithm configurations x 5 parallel backends x 3 machines, at
n = 2^30 with all cores. Cells the paper marks N/A are reproduced as
N/A: GNU has no parallel scan, and ICC was not installed on Mach B.

The grid is built through the campaign subsystem (`repro.campaign`): the
planner prunes the N/A cells up front and deduplicates the 18 shared
``GCC-SEQ`` baselines the 90 speedup cells divide by, and the executor
can run the points on a process pool and serve repeats from the
content-addressed cache. ``run_table5()`` with default arguments is the
same serial, uncached computation as before -- pass ``store`` and
``workers`` to get caching and parallelism (see docs/CAMPAIGNS.md).
"""

from __future__ import annotations

from repro.campaign.executor import CampaignOutcome, ResultStore, run_campaign
from repro.campaign.query import speedup_grid
from repro.campaign.spec import CampaignSpec
from repro.errors import UnsupportedOperationError
from repro.experiments.common import (
    ExperimentResult,
    HEADLINE_CASES,
    PARALLEL_CPU_BACKENDS,
    make_ctx,
    paper_size,
    seq_baseline_seconds,
)
from repro.suite.cases import get_case
from repro.suite.wrappers import measure_case
from repro.util.tables import render_grid

__all__ = [
    "run_table5",
    "table5_cells",
    "table5_campaign_spec",
    "table5_result",
    "MACHINES",
    "ICC_AVAILABLE",
]

MACHINES = ("A", "B", "C")

#: Table 2: the Intel compiler was only installed on Mach A and Mach C.
ICC_AVAILABLE = {"A": True, "B": False, "C": True}


def _unavailable_pairs() -> tuple[tuple[str, str], ...]:
    """(machine, backend) pairs absent from the paper's toolchain matrix."""
    return tuple(
        (machine, "ICC-TBB") for machine in MACHINES if not ICC_AVAILABLE[machine]
    )


def table5_campaign_spec(size_exp: int = 30) -> CampaignSpec:
    """The declarative Table 5 grid as a campaign spec."""
    return CampaignSpec(
        name=f"table5-2^{size_exp}",
        machines=MACHINES,
        backends=PARALLEL_CPU_BACKENDS,
        cases=HEADLINE_CASES,
        size_exps=(size_exp,),
        threads=(None,),  # all cores, matching Section 4.1
        exclude=_unavailable_pairs(),
    )


def cell_speedup(
    machine: str,
    backend: str,
    case_name: str,
    size_exp: int = 30,
    batch: bool | None = None,
) -> float | None:
    """One grid cell computed directly; ``None`` renders as N/A.

    The single-cell path the unit tests exercise; ``run_table5`` computes
    the same value through the campaign planner/executor. ``batch``
    selects the scalar/vectorized evaluation path (bit-identical; ``None``
    auto-selects).
    """
    from repro.suite.batch import measure_case_batch, use_batch_path

    if backend == "ICC-TBB" and not ICC_AVAILABLE[machine]:
        return None
    n = paper_size(size_exp)
    case = get_case(case_name)
    try:
        ctx = make_ctx(machine, backend)
        if use_batch_path(batch, case_name, ctx):
            par = measure_case_batch(case_name, ctx, n)
        else:
            par = measure_case(case, ctx, n)
    except UnsupportedOperationError:
        return None
    base = seq_baseline_seconds(machine, case_name, n, batch=batch)
    return base / par


def table5_result(outcome: CampaignOutcome, size_exp: int = 30) -> ExperimentResult:
    """Render a Table 5 campaign outcome; cells are 'A|B|C' like the paper's."""
    grid = speedup_grid(outcome)

    def fmt(value: float | None) -> str:
        return "N/A" if value is None else f"{value:.1f}"

    cells = [
        [
            " | ".join(
                fmt(grid.get(f"{backend}/{case_name}/{machine}"))
                for machine in MACHINES
            )
            for case_name in HEADLINE_CASES
        ]
        for backend in PARALLEL_CPU_BACKENDS
    ]
    rendered = render_grid(
        row_labels=list(PARALLEL_CPU_BACKENDS),
        col_labels=list(HEADLINE_CASES),
        cells=cells,
        title=(
            f"Table 5: speedup vs GCC-SEQ, n=2^{size_exp}, all cores "
            "(cells: Mach A | Mach B | Mach C)"
        ),
    )
    return ExperimentResult(
        experiment_id="table5", title="Speedup vs sequential", data=grid, rendered=rendered
    )


def table5_cells(result: ExperimentResult) -> dict[str, float | None]:
    """Table 5's measured grid in checkable form.

    Keys are ``{backend}/{case}/{machine}`` with speedup vs GCC-SEQ;
    ``None`` cells are the paper's N/A pattern (GNU scan, ICC on Mach B).
    """
    return dict(result.data)


def run_table5(
    size_exp: int = 30,
    *,
    store: ResultStore | None = None,
    workers: int = 0,
    batch: bool = True,
) -> ExperimentResult:
    """Regenerate Table 5 through the campaign subsystem.

    Defaults reproduce the legacy serial behaviour (in-memory store, no
    process pool); a persistent ``store`` makes re-runs cache hits and
    ``workers >= 2`` executes the grid concurrently. ``batch=False``
    forces the scalar per-point executor (results are bit-identical).
    """
    outcome = run_campaign(
        table5_campaign_spec(size_exp), store=store, workers=workers, batch=batch
    )
    return table5_result(outcome, size_exp)
