"""Table 5: speedup against GCC's sequential implementation.

Grid: 6 algorithm configurations x 5 parallel backends x 3 machines, at
n = 2^30 with all cores. Cells the paper marks N/A are reproduced as
N/A: GNU has no parallel scan, and ICC was not installed on Mach B.
"""

from __future__ import annotations

from repro.errors import UnsupportedOperationError
from repro.experiments.common import (
    ExperimentResult,
    HEADLINE_CASES,
    PARALLEL_CPU_BACKENDS,
    make_ctx,
    paper_size,
    seq_baseline_seconds,
)
from repro.suite.cases import get_case
from repro.suite.wrappers import measure_case
from repro.util.tables import render_grid

__all__ = ["run_table5", "MACHINES", "ICC_AVAILABLE"]

MACHINES = ("A", "B", "C")

#: Table 2: the Intel compiler was only installed on Mach A and Mach C.
ICC_AVAILABLE = {"A": True, "B": False, "C": True}


def cell_speedup(
    machine: str, backend: str, case_name: str, size_exp: int = 30
) -> float | None:
    """One grid cell; ``None`` renders as N/A."""
    if backend == "ICC-TBB" and not ICC_AVAILABLE[machine]:
        return None
    n = paper_size(size_exp)
    case = get_case(case_name)
    try:
        ctx = make_ctx(machine, backend)
        par = measure_case(case, ctx, n)
    except UnsupportedOperationError:
        return None
    base = seq_baseline_seconds(machine, case_name, n)
    return base / par


def run_table5(size_exp: int = 30) -> ExperimentResult:
    """Regenerate Table 5; cells are 'A|B|C' strings like the paper's."""
    grid: dict[str, dict[str, float | None]] = {}
    for backend in PARALLEL_CPU_BACKENDS:
        for case_name in HEADLINE_CASES:
            for machine in MACHINES:
                grid[f"{backend}/{case_name}/{machine}"] = cell_speedup(
                    machine, backend, case_name, size_exp
                )

    def fmt(value: float | None) -> str:
        return "N/A" if value is None else f"{value:.1f}"

    cells = [
        [
            " | ".join(
                fmt(grid[f"{backend}/{case_name}/{machine}"]) for machine in MACHINES
            )
            for case_name in HEADLINE_CASES
        ]
        for backend in PARALLEL_CPU_BACKENDS
    ]
    rendered = render_grid(
        row_labels=list(PARALLEL_CPU_BACKENDS),
        col_labels=list(HEADLINE_CASES),
        cells=cells,
        title=(
            f"Table 5: speedup vs GCC-SEQ, n=2^{size_exp}, all cores "
            "(cells: Mach A | Mach B | Mach C)"
        ),
    )
    return ExperimentResult(
        experiment_id="table5", title="Speedup vs sequential", data=grid, rendered=rendered
    )
