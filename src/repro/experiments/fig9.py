"""Figure 9: reduce on the GPUs, with and without the D2H transfer
between chained calls (Section 5.8, float data).

Shapes: when every call faults the data back to the host (panel a), the
execution is communication-limited and the GPU can lose even to the
sequential CPU; when calls chain on device-resident data (panel b), the
GPU outruns both CPU variants.

The chaining effect falls out of the unified-memory residency state: the
benchmark loop reuses the same array, so only the first iteration pays
the host-to-device migration when no transfer-back is forced.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, make_ctx
from repro.experiments.fig8 import GPU_MAX_EXP, gpu_ctx
from repro.suite.cases import get_case
from repro.suite.sweeps import problem_scaling, problem_sizes
from repro.suite.wrappers import run_case
from repro.types import FLOAT32
from repro.util.ascii_plot import Series, line_plot

__all__ = ["run_fig9", "fig9_cells", "fig9_curves", "chained_gpu_reduce_seconds"]

#: Panel labels -> short cell-key names.
FIG9_PANEL_KEYS = {
    "with D2H transfer": "forced",
    "without D2H transfer": "chained",
}

#: Human series labels -> short cell-key names (as in Fig. 8).
FIG9_SERIES_KEYS = {
    "GCC-SEQ (host)": "seq-host",
    "NVC-OMP (host)": "omp-host",
    "NVC-CUDA (Mach D)": "t4",
    "NVC-CUDA (Mach E)": "a2",
}


def chained_gpu_reduce_seconds(
    machine: str, n: int, transfer_back: bool, min_time: float = 5.0
) -> float:
    """Mean per-call time of a chained GPU reduce benchmark loop.

    Without transfer-back, only the first call migrates pages; the
    min-time loop then amortises it away, which is exactly what chaining
    device-side calls does in the paper's experiment.
    """
    ctx = gpu_ctx(machine, transfer_back=transfer_back)
    result = run_case(get_case("reduce"), ctx, n, FLOAT32, min_time=min_time)
    return result.mean_time


def fig9_cells(result: ExperimentResult) -> dict[str, float | None]:
    """Fig. 9's measured grid in checkable form.

    Keys: ``{panel}/{series}/t@2^{exp}`` (panel ``forced``/``chained``)
    plus the headline ``t4/chain_saving`` ratio (forced-transfer time /
    chained time at the largest size; the paper's ">80x per call").
    """
    from repro.experiments.common import pow2_exp

    cells: dict[str, float | None] = {}
    by_key: dict[str, dict[int, float]] = {}
    for panel_label, series in result.data.items():
        panel = FIG9_PANEL_KEYS[panel_label]
        for label, points in series.items():
            short = FIG9_SERIES_KEYS[label]
            by_key[f"{panel}/{short}"] = dict(points)
            for n, seconds in points:
                cells[f"{panel}/{short}/t@2^{pow2_exp(n)}"] = seconds
    forced = by_key.get("forced/t4", {})
    chained = by_key.get("chained/t4", {})
    common = sorted(set(forced) & set(chained))
    if common:
        n = common[-1]
        cells["t4/chain_saving"] = forced[n] / chained[n]
    return cells


def fig9_curves(result: ExperimentResult) -> dict[str, tuple[tuple[float, float], ...]]:
    """Fig. 9's series as (size, seconds) curves, keyed ``{panel}/{series}``."""
    curves: dict[str, tuple[tuple[float, float], ...]] = {}
    for panel_label, series in result.data.items():
        panel = FIG9_PANEL_KEYS[panel_label]
        for label, points in series.items():
            curves[f"{panel}/{FIG9_SERIES_KEYS[label]}"] = tuple(points)
    return curves


def run_fig9(size_step: int = 2, batch: bool | None = None) -> ExperimentResult:
    """Regenerate both panels of Fig. 9."""
    sizes = problem_sizes(max_exp=GPU_MAX_EXP, step=size_step)
    case = get_case("reduce")
    panels: dict[str, dict[str, object]] = {}
    charts = []
    for transfer in (True, False):
        label = "with D2H transfer" if transfer else "without D2H transfer"
        series: dict[str, list[tuple[int, float]]] = {
            "GCC-SEQ (host)": [],
            "NVC-OMP (host)": [],
            "NVC-CUDA (Mach D)": [],
            "NVC-CUDA (Mach E)": [],
        }
        cpu_seq = problem_scaling(
            case, make_ctx("gpu-host", "gcc-seq"), sizes, FLOAT32, batch=batch
        )
        cpu_par = problem_scaling(
            case, make_ctx("gpu-host", "nvc-omp"), sizes, FLOAT32, batch=batch
        )
        series["GCC-SEQ (host)"] = list(zip(cpu_seq.xs(), cpu_seq.ys()))
        series["NVC-OMP (host)"] = list(zip(cpu_par.xs(), cpu_par.ys()))
        for gpu_name, key in (("D", "NVC-CUDA (Mach D)"), ("E", "NVC-CUDA (Mach E)")):
            series[key] = [
                (n, chained_gpu_reduce_seconds(gpu_name, n, transfer))
                for n in sizes
            ]
        panels[label] = series
        charts.append(
            line_plot(
                [
                    Series(name=k, x=[p[0] for p in v], y=[p[1] for p in v])
                    for k, v in series.items()
                ],
                logx=True,
                logy=True,
                title=f"Fig 9 ({label}): reduce time vs size, float",
            )
        )
    return ExperimentResult(
        experiment_id="fig9",
        title="reduce on GPUs: chained calls vs forced transfers",
        data=panels,
        rendered="\n\n".join(charts),
    )
