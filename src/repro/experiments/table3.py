"""Table 3: hardware counters for 100 calls to for_each (k_it=1) on Mach A.

The Likwid-marker region brackets exactly the STL call, so counters cover
only the algorithm (Section 3.2). Columns: instructions, FP scalar, FP
128/256-bit packed, GFLOP/s, memory bandwidth, memory data volume.
"""

from __future__ import annotations

from repro.counters.likwid import LikwidMarkers
from repro.experiments.common import ExperimentResult, make_ctx, paper_size
from repro.suite.cases import get_case
from repro.util.tables import TextTable
from repro.util.units import format_count

__all__ = [
    "run_table3",
    "table3_cells",
    "counter_cells",
    "counters_for_case",
    "TABLE3_BACKENDS",
    "TABLE3_CALLS",
]

TABLE3_BACKENDS = ("GCC-TBB", "GCC-GNU", "GCC-HPX", "ICC-TBB", "NVC-OMP")
TABLE3_CALLS = 100


def counters_for_case(
    machine: str,
    backend: str,
    case_name: str,
    calls: int = TABLE3_CALLS,
    size_exp: int = 30,
):
    """Likwid-style region stats for ``calls`` invocations of one case."""
    ctx = make_ctx(machine, backend)
    case = get_case(case_name)
    arrays = case.setup(ctx, paper_size(size_exp), case.elem)
    markers = LikwidMarkers()
    # One real invocation; the simulation is deterministic, so the
    # remaining calls are identical and the region is scaled.
    with markers.region(case.name) as region:
        result = case.invoke(ctx, arrays, 0)
        region.record(result.report)
        region.calls = calls
        region.seconds = result.report.seconds * calls
        region.counters = result.report.counters.scaled(calls)
    return markers.get(case.name)


def _counter_table(
    case_name: str,
    backends: tuple[str, ...],
    machine: str = "A",
    calls: int = TABLE3_CALLS,
    size_exp: int = 30,
) -> tuple[dict, str]:
    stats = {b: counters_for_case(machine, b, case_name, calls, size_exp) for b in backends}
    table = TextTable(headers=["Metric", *backends])
    rows = [
        ("Instructions", lambda s: format_count(s.counters.instructions)),
        ("FP scalar", lambda s: format_count(s.counters.fp_scalar)),
        ("FP 128-bit packed", lambda s: format_count(s.counters.fp_packed_128)),
        ("FP 256-bit packed", lambda s: format_count(s.counters.fp_packed_256)),
        ("GFLOP/s", lambda s: f"{s.gflops:.2f}"),
        ("Mem. bandwidth (GiB/s)", lambda s: f"{s.bandwidth_gib:.1f}"),
        ("Mem. data volume (GiB)", lambda s: f"{s.data_volume_gib:.0f}"),
    ]
    for label, fmt in rows:
        table.add_row([label, *(fmt(stats[b]) for b in backends)])
    return stats, table.render()


def counter_cells(result: ExperimentResult) -> dict[str, float | None]:
    """A counter table's measured grid in checkable form (Tables 3/4).

    Keys are ``{backend}/{metric}`` with metric one of ``instructions``,
    ``fp_scalar``, ``fp_packed_128``, ``fp_packed_256``, ``gflops``,
    ``bandwidth_gib`` and ``data_volume_gib``.
    """
    cells: dict[str, float | None] = {}
    for backend, stats in result.data.items():
        cells[f"{backend}/instructions"] = float(stats.counters.instructions)
        cells[f"{backend}/fp_scalar"] = float(stats.counters.fp_scalar)
        cells[f"{backend}/fp_packed_128"] = float(stats.counters.fp_packed_128)
        cells[f"{backend}/fp_packed_256"] = float(stats.counters.fp_packed_256)
        cells[f"{backend}/gflops"] = stats.gflops
        cells[f"{backend}/bandwidth_gib"] = stats.bandwidth_gib
        cells[f"{backend}/data_volume_gib"] = stats.data_volume_gib
    return cells


def table3_cells(result: ExperimentResult) -> dict[str, float | None]:
    """Table 3's measured grid in checkable form (see ``counter_cells``)."""
    return counter_cells(result)


def run_table3(size_exp: int = 30) -> ExperimentResult:
    """Regenerate Table 3 (for_each, k_it = 1, 100 calls, Mach A)."""
    stats, rendered = _counter_table("for_each_k1", TABLE3_BACKENDS, size_exp=size_exp)
    return ExperimentResult(
        experiment_id="table3",
        title="Instructions executed in 100 calls to for_each (k_it=1), Mach A",
        data=stats,
        rendered="Table 3:\n" + rendered,
    )
