"""Table 6: maximum thread count with parallel efficiency >= 70 %.

Efficiency is measured against the GCC sequential baseline (like Table
5); the paper's takeaway is that backends rarely use more than ~16
threads efficiently -- the per-NUMA-node core count of Mach A and Mach C
-- except for the compute-bound for_each (k_it = 1000), which stays
efficient at full machine width.

Like Table 5, the grid runs through `repro.campaign`: the spec's thread
axis is the union of every machine's power-of-two sweep (the planner
drops counts wider than a machine), baselines are shared, and the query
layer folds the stored points back into per-cell scaling curves.
"""

from __future__ import annotations

from repro.analysis.speedup import ScalingCurve, max_threads_above_efficiency
from repro.campaign.executor import CampaignOutcome, ResultStore, run_campaign
from repro.campaign.query import efficiency_grid
from repro.campaign.spec import CampaignSpec
from repro.errors import UnsupportedOperationError
from repro.experiments.common import (
    ExperimentResult,
    HEADLINE_CASES,
    PARALLEL_CPU_BACKENDS,
    make_ctx,
    paper_size,
    seq_baseline_seconds,
)
from repro.experiments.table5 import ICC_AVAILABLE, MACHINES, _unavailable_pairs
from repro.machines import get_machine
from repro.suite.cases import get_case
from repro.suite.sweeps import strong_scaling, thread_counts
from repro.util.tables import render_grid

__all__ = [
    "run_table6",
    "table6_cells",
    "table6_campaign_spec",
    "table6_result",
    "cell_max_threads",
    "EFFICIENCY_THRESHOLD",
]

EFFICIENCY_THRESHOLD = 0.70


def table6_campaign_spec(size_exp: int = 30) -> CampaignSpec:
    """The Table 6 strong-scaling grid as a campaign spec.

    The thread axis is the union of each machine's 1, 2, 4, ..., #cores
    sweep; the planner skips counts a machine cannot hold, so Mach A
    (32 cores) contributes 6 points per cell while Mach C contributes 8.
    """
    counts: set[int] = set()
    for machine in MACHINES:
        counts.update(thread_counts(get_machine(machine).total_cores))
    return CampaignSpec(
        name=f"table6-2^{size_exp}",
        machines=MACHINES,
        backends=PARALLEL_CPU_BACKENDS,
        cases=HEADLINE_CASES,
        size_exps=(size_exp,),
        threads=tuple(sorted(counts)),
        exclude=_unavailable_pairs(),
    )


def cell_max_threads(
    machine: str,
    backend: str,
    case_name: str,
    size_exp: int = 30,
    batch: bool | None = None,
) -> int | None:
    """One Table 6 cell computed directly; ``None`` renders as N/A.

    The single-cell path the unit tests exercise; ``run_table6`` computes
    the same value through the campaign planner/executor. ``batch``
    selects the scalar/vectorized evaluation path (bit-identical; ``None``
    auto-selects).
    """
    if backend == "ICC-TBB" and not ICC_AVAILABLE[machine]:
        return None
    n = paper_size(size_exp)
    case = get_case(case_name)
    try:
        ctx = make_ctx(machine, backend)
        sweep = strong_scaling(case, ctx, n, batch=batch)
    except UnsupportedOperationError:
        return None
    if not sweep.xs():
        return None
    curve = ScalingCurve(
        label=f"{backend}/{case_name}/{machine}",
        threads=tuple(sweep.xs()),
        seconds=tuple(sweep.ys()),
        baseline_seconds=seq_baseline_seconds(machine, case_name, n, batch=batch),
    )
    return max_threads_above_efficiency(curve, EFFICIENCY_THRESHOLD)


def table6_result(outcome: CampaignOutcome, size_exp: int = 30) -> ExperimentResult:
    """Render a Table 6 campaign outcome."""
    grid = efficiency_grid(outcome, EFFICIENCY_THRESHOLD)

    def fmt(v: int | None) -> str:
        return "N/A" if v is None else str(v)

    cells = [
        [
            " | ".join(
                fmt(grid.get(f"{backend}/{case_name}/{machine}"))
                for machine in MACHINES
            )
            for case_name in HEADLINE_CASES
        ]
        for backend in PARALLEL_CPU_BACKENDS
    ]
    rendered = render_grid(
        row_labels=list(PARALLEL_CPU_BACKENDS),
        col_labels=list(HEADLINE_CASES),
        cells=cells,
        title=(
            f"Table 6: max threads with efficiency >= 70% vs GCC-SEQ, "
            f"n=2^{size_exp} (cells: Mach A | Mach B | Mach C)"
        ),
    )
    return ExperimentResult(
        experiment_id="table6",
        title="Max threads at >= 70 % parallel efficiency",
        data=grid,
        rendered=rendered,
    )


def table6_cells(result: ExperimentResult) -> dict[str, float | None]:
    """Table 6's measured grid in checkable form.

    Keys are ``{backend}/{case}/{machine}`` with the maximum thread count
    keeping parallel efficiency >= 70 %; ``None`` is the paper's N/A.
    """
    return {
        key: (None if value is None else float(value))
        for key, value in result.data.items()
    }


def run_table6(
    size_exp: int = 30,
    *,
    store: ResultStore | None = None,
    workers: int = 0,
    batch: bool = True,
) -> ExperimentResult:
    """Regenerate Table 6 through the campaign subsystem.

    ``batch=False`` forces the scalar per-point executor (bit-identical).
    """
    outcome = run_campaign(
        table6_campaign_spec(size_exp), store=store, workers=workers, batch=batch
    )
    return table6_result(outcome, size_exp)
