"""Table 6: maximum thread count with parallel efficiency >= 70 %.

Efficiency is measured against the GCC sequential baseline (like Table
5); the paper's takeaway is that backends rarely use more than ~16
threads efficiently -- the per-NUMA-node core count of Mach A and Mach C
-- except for the compute-bound for_each (k_it = 1000), which stays
efficient at full machine width.
"""

from __future__ import annotations

from repro.analysis.speedup import ScalingCurve, max_threads_above_efficiency
from repro.errors import UnsupportedOperationError
from repro.experiments.common import (
    ExperimentResult,
    HEADLINE_CASES,
    PARALLEL_CPU_BACKENDS,
    make_ctx,
    paper_size,
    seq_baseline_seconds,
)
from repro.experiments.table5 import ICC_AVAILABLE, MACHINES
from repro.suite.cases import get_case
from repro.suite.sweeps import strong_scaling
from repro.util.tables import render_grid

__all__ = ["run_table6", "cell_max_threads", "EFFICIENCY_THRESHOLD"]

EFFICIENCY_THRESHOLD = 0.70


def cell_max_threads(
    machine: str, backend: str, case_name: str, size_exp: int = 30
) -> int | None:
    """One Table 6 cell; ``None`` renders as N/A."""
    if backend == "ICC-TBB" and not ICC_AVAILABLE[machine]:
        return None
    n = paper_size(size_exp)
    case = get_case(case_name)
    try:
        ctx = make_ctx(machine, backend)
        sweep = strong_scaling(case, ctx, n)
    except UnsupportedOperationError:
        return None
    if not sweep.xs():
        return None
    curve = ScalingCurve(
        label=f"{backend}/{case_name}/{machine}",
        threads=tuple(sweep.xs()),
        seconds=tuple(sweep.ys()),
        baseline_seconds=seq_baseline_seconds(machine, case_name, n),
    )
    return max_threads_above_efficiency(curve, EFFICIENCY_THRESHOLD)


def run_table6(size_exp: int = 30) -> ExperimentResult:
    """Regenerate Table 6."""
    grid: dict[str, int | None] = {}
    for backend in PARALLEL_CPU_BACKENDS:
        for case_name in HEADLINE_CASES:
            for machine in MACHINES:
                grid[f"{backend}/{case_name}/{machine}"] = cell_max_threads(
                    machine, backend, case_name, size_exp
                )

    def fmt(v: int | None) -> str:
        return "N/A" if v is None else str(v)

    cells = [
        [
            " | ".join(
                fmt(grid[f"{backend}/{case_name}/{machine}"]) for machine in MACHINES
            )
            for case_name in HEADLINE_CASES
        ]
        for backend in PARALLEL_CPU_BACKENDS
    ]
    rendered = render_grid(
        row_labels=list(PARALLEL_CPU_BACKENDS),
        col_labels=list(HEADLINE_CASES),
        cells=cells,
        title=(
            f"Table 6: max threads with efficiency >= 70% vs GCC-SEQ, "
            f"n=2^{size_exp} (cells: Mach A | Mach B | Mach C)"
        ),
    )
    return ExperimentResult(
        experiment_id="table6",
        title="Max threads at >= 70 % parallel efficiency",
        data=grid,
        rendered=rendered,
    )
