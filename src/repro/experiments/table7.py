"""Table 7: benchmark binary sizes per compiler/backend (Section 5.7)."""

from __future__ import annotations

from repro.binaries import binary_size
from repro.experiments.common import ExperimentResult
from repro.util.tables import TextTable
from repro.util.units import MIB

__all__ = ["run_table7", "table7_cells", "TABLE7_BACKENDS"]

#: Column order of the paper's Table 7 (Mach A targets, then Mach D).
TABLE7_BACKENDS = (
    "GCC-SEQ",
    "GCC-TBB",
    "GCC-GNU",
    "GCC-HPX",
    "ICC-TBB",
    "NVC-OMP",
    "NVC-CUDA",
)


def table7_cells(result: ExperimentResult) -> dict[str, float | None]:
    """Table 7's measured grid in checkable form: ``{backend}/mib``."""
    return {f"{backend}/mib": size / MIB for backend, size in result.data.items()}


def run_table7() -> ExperimentResult:
    """Regenerate Table 7 from the compile/link model."""
    sizes = {b: binary_size(b) for b in TABLE7_BACKENDS}
    table = TextTable(
        headers=["Backend", "Bin. size (MiB)"],
        title="Table 7: benchmark binary sizes (Mach A targets; NVC rows are Mach A/D)",
    )
    for backend, size in sizes.items():
        table.add_row([backend, f"{size / MIB:.2f}"])
    return ExperimentResult(
        experiment_id="table7",
        title="Binary sizes",
        data=sizes,
        rendered=table.render(),
    )
