"""Figure 6: X::reduce on Mach A (Skylake), Section 5.5.

Shapes to reproduce: crossover near 2^15; the backends split into two
groups -- {NVC-OMP, GCC-TBB, GCC-GNU} with speedups ~10-11, and
{ICC-TBB, GCC-HPX} which scale well to ~16 threads then suffer across the
NUMA boundary, HPX hardest.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.panels import (
    panel_cells,
    panel_curves,
    panels_from_result,
    run_panels,
)

__all__ = ["run_fig6", "fig6_cells", "fig6_curves"]

FIG6_MACHINE = "A"
FIG6_CASE = "reduce"


def run_fig6(size_step: int = 1, batch: bool | None = None) -> ExperimentResult:
    """Regenerate both panels of Fig. 6."""
    panels = run_panels(FIG6_MACHINE, FIG6_CASE, size_step=size_step, batch=batch)
    return ExperimentResult(
        experiment_id="fig6",
        title="reduce on Mach A (Skylake)",
        data={"problem": panels.problem, "scaling": panels.scaling},
        rendered=panels.rendered(),
    )


def fig6_cells(result: ExperimentResult) -> dict[str, float | None]:
    """Fig. 6's measured grid in checkable form (see ``panel_cells``)."""
    return panel_cells(panels_from_result(result, FIG6_MACHINE, FIG6_CASE))


def fig6_curves(result: ExperimentResult) -> dict[str, tuple[tuple[float, float], ...]]:
    """Fig. 6's sweeps as (x, y) series (see ``panel_curves``)."""
    return panel_curves(panels_from_result(result, FIG6_MACHINE, FIG6_CASE))
