"""Figure 6: X::reduce on Mach A (Skylake), Section 5.5.

Shapes to reproduce: crossover near 2^15; the backends split into two
groups -- {NVC-OMP, GCC-TBB, GCC-GNU} with speedups ~10-11, and
{ICC-TBB, GCC-HPX} which scale well to ~16 threads then suffer across the
NUMA boundary, HPX hardest.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.panels import run_panels

__all__ = ["run_fig6"]


def run_fig6(size_step: int = 1, batch: bool | None = None) -> ExperimentResult:
    """Regenerate both panels of Fig. 6."""
    panels = run_panels("A", "reduce", size_step=size_step, batch=batch)
    return ExperimentResult(
        experiment_id="fig6",
        title="reduce on Mach A (Skylake)",
        data={"problem": panels.problem, "scaling": panels.scaling},
        rendered=panels.rendered(),
    )
