"""Compile/link model for benchmark binary sizes (paper Table 7).

The paper observes that "the internal complexity of the backends is
reflected in the binary sizes": HPX's header-heavy futures machinery
instantiates ~62 MiB of code, TBB's PSTL layer ~17 MiB, GNU parallel mode
doubles the sequential binary, and nvc++ produces remarkably small
binaries because its runtime stays in shared libraries.

The model is a miniature static linker: a base program object, one object
per algorithm instantiation (sized by the backend's template expansion
factor), plus the statically-linked runtime archive after dead-code
elimination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.util.units import KIB, MIB

__all__ = ["ObjectFile", "RuntimeArchive", "LinkerModel", "BackendBuildSpec", "BUILD_SPECS", "binary_size"]


@dataclass(frozen=True)
class ObjectFile:
    """One compiled translation unit / template instantiation."""

    name: str
    text_bytes: int
    data_bytes: int = 0

    def __post_init__(self) -> None:
        if self.text_bytes < 0 or self.data_bytes < 0:
            raise ConfigurationError("section sizes must be non-negative")

    @property
    def size(self) -> int:
        return self.text_bytes + self.data_bytes


@dataclass(frozen=True)
class RuntimeArchive:
    """A backend's statically-linked runtime footprint."""

    name: str
    archive_bytes: int
    #: Fraction surviving --gc-sections / dead-code elimination.
    retained_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.archive_bytes < 0:
            raise ConfigurationError("archive size must be non-negative")
        if not 0.0 < self.retained_fraction <= 1.0:
            raise ConfigurationError("retained_fraction must be in (0, 1]")

    @property
    def linked_bytes(self) -> int:
        return int(self.archive_bytes * self.retained_fraction)


@dataclass(frozen=True)
class BackendBuildSpec:
    """How a backend's toolchain builds the benchmark binary."""

    backend: str
    #: Bytes of program scaffolding (main, harness, I/O).
    base_program: int
    #: Bytes of generated code per benchmarked algorithm instantiation.
    per_algorithm: int
    #: Statically linked runtime pieces.
    archives: tuple[RuntimeArchive, ...] = ()
    #: Fixed ELF overhead (headers, symbol/debug stubs, alignment).
    elf_overhead: int = 128 * KIB


@dataclass
class LinkerModel:
    """Static-link size computation."""

    spec: BackendBuildSpec
    objects: list[ObjectFile] = field(default_factory=list)

    def add_algorithm(self, name: str) -> ObjectFile:
        """Instantiate the benchmark TU for one algorithm."""
        obj = ObjectFile(name=name, text_bytes=self.spec.per_algorithm)
        self.objects.append(obj)
        return obj

    def link(self) -> int:
        """Final binary size in bytes."""
        total = self.spec.base_program + self.spec.elf_overhead
        total += sum(o.size for o in self.objects)
        total += sum(a.linked_bytes for a in self.spec.archives)
        return total


#: Calibrated toolchain specs. The 17 instantiated algorithms are the
#: suite's supported cases; archive sizes approximate the real static
#: libraries (HPX ~150 MiB archive retaining ~37 %, TBB's PSTL headers
#: expanding heavily per instantiation, etc.). Targets: Table 7.
_SUITE_ALGOS = 17

BUILD_SPECS: Mapping[str, BackendBuildSpec] = {
    "GCC-SEQ": BackendBuildSpec(
        backend="GCC-SEQ",
        base_program=1100 * KIB,
        per_algorithm=75 * KIB,
        archives=(RuntimeArchive("libstdc++-bench", int(0.1 * MIB)),),
    ),
    "GCC-TBB": BackendBuildSpec(
        backend="GCC-TBB",
        base_program=1500 * KIB,
        per_algorithm=820 * KIB,  # PSTL headers instantiate deeply
        archives=(RuntimeArchive("tbb-static", int(2.0 * MIB)),),
    ),
    "ICC-TBB": BackendBuildSpec(
        backend="ICC-TBB",
        base_program=2200 * KIB,  # Intel runtime stubs
        per_algorithm=760 * KIB,
        archives=(RuntimeArchive("tbb-static", int(1.8 * MIB)),),
    ),
    "GCC-GNU": BackendBuildSpec(
        backend="GCC-GNU",
        base_program=1200 * KIB,
        per_algorithm=220 * KIB,  # parallel mode roughly doubles codegen
        archives=(RuntimeArchive("gomp-static", int(0.3 * MIB)),),
    ),
    "GCC-HPX": BackendBuildSpec(
        backend="GCC-HPX",
        base_program=2000 * KIB,
        per_algorithm=1400 * KIB,  # futures/executors expand enormously
        archives=(
            RuntimeArchive("hpx-core", int(100 * MIB), retained_fraction=0.36),
        ),
    ),
    "NVC-OMP": BackendBuildSpec(
        backend="NVC-OMP",
        base_program=800 * KIB,
        per_algorithm=55 * KIB,  # runtime kept in shared libnvomp
        archives=(),
        elf_overhead=64 * KIB,
    ),
    "NVC-CUDA": BackendBuildSpec(
        backend="NVC-CUDA",
        base_program=1000 * KIB,
        per_algorithm=180 * KIB,  # embedded device fatbins per kernel
        archives=(RuntimeArchive("cudadevrt", int(3.7 * MIB)),),
        elf_overhead=64 * KIB,
    ),
}


def binary_size(backend: str, algorithms: Sequence[str] | int = _SUITE_ALGOS) -> int:
    """Modeled benchmark-binary size in bytes for ``backend``.

    ``algorithms`` is the list (or count) of instantiated benchmark
    algorithms; the full suite instantiates 17.
    """
    try:
        spec = BUILD_SPECS[backend]
    except KeyError:
        raise ConfigurationError(
            f"no build spec for backend {backend!r}; known: {sorted(BUILD_SPECS)}"
        ) from None
    linker = LinkerModel(spec=spec)
    names = (
        [f"alg{i}" for i in range(algorithms)]
        if isinstance(algorithms, int)
        else list(algorithms)
    )
    for name in names:
        linker.add_algorithm(name)
    return linker.link()
