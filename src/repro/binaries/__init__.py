"""Binary-size (compile/link) model for Table 7."""

from repro.binaries.model import (
    BUILD_SPECS,
    BackendBuildSpec,
    LinkerModel,
    ObjectFile,
    RuntimeArchive,
    binary_size,
)

__all__ = [
    "BUILD_SPECS",
    "BackendBuildSpec",
    "LinkerModel",
    "ObjectFile",
    "RuntimeArchive",
    "binary_size",
]
