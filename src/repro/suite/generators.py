"""Input generators mirroring pSTL-Bench's data setup.

``generate_increment`` builds v = [1, 2, ..., n] (the input of find,
for_each, reduce, inclusive_scan); ``shuffled_permutation`` is the sort
input (a random permutation of 1..n, Section 3.1); ``random_target``
picks the find target. Generation happens *outside* the timed region in
the paper (WRAP_TIMING excludes setup), and likewise here: generators do
not contribute to the simulated time of the algorithm under test.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.execution.context import ExecutionContext
from repro.memory.array import SimArray
from repro.types import ElemType, FLOAT64

__all__ = ["generate_increment", "shuffled_permutation", "random_target", "reshuffle"]


def generate_increment(
    ctx: ExecutionContext, n: int, elem: ElemType = FLOAT64
) -> SimArray:
    """Allocate (with the context's allocator) and fill with 1..n."""
    if n <= 0:
        raise ConfigurationError("n must be positive")
    arr = ctx.allocate(n, elem)
    if arr.materialized:
        arr.view()[:] = np.arange(1, n + 1, dtype=elem.dtype)
    return arr


def shuffled_permutation(
    ctx: ExecutionContext, n: int, elem: ElemType = FLOAT64
) -> SimArray:
    """A random permutation of 1..n (the sort benchmark's input)."""
    arr = generate_increment(ctx, n, elem)
    if arr.materialized:
        ctx.rng().shuffle(arr.view())
    return arr


def reshuffle(ctx: ExecutionContext, arr: SimArray, iteration: int) -> None:
    """Re-shuffle between sort iterations (Listing 3's std::shuffle).

    Deterministic per (context seed, iteration) so repeated runs agree.
    """
    if arr.materialized:
        rng = np.random.default_rng((ctx.rng_seed, iteration))
        rng.shuffle(arr.view())


def random_target(ctx: ExecutionContext, arr: SimArray, iteration: int = 0) -> float:
    """A uniformly random element value of v = 1..n to search for."""
    rng = np.random.default_rng((ctx.rng_seed, 0xF17D, iteration))
    index = int(rng.integers(0, arr.n))
    return float(index + 1)
