"""Benchmark kernels, most importantly Listing 1's ``for_each`` kernel.

The C++ kernel::

    const auto kernel = [](auto & input, const auto k_it) {
        volatile size_t I = k_it;
        pstl::elem_t a{};
        for (auto i = 0; i < I; ++i) { a++; }
        input = a;
    };

stores ``k_it`` through a volatile (so the trip count cannot be constant-
folded), increments an accumulator ``k_it`` times and writes it back. Its
functional result is every element becoming ``k_it``; its cost scales
linearly in ``k_it``. The paper uses ``k_it = 1`` (memory-bound map) and
``k_it = 1000`` (compute-bound map).

**GPU volatile quirk** (Section 5.8): nvc++ targeting the GPU ignores the
volatile -- with a compile-time-known trip count the loop is optimised
away entirely for ``int``, for ``double`` whenever ``k_it < 65001`` (a
magic number in the compiler), and never for 32-bit ``float``.
``listing1_kernel(..., target="gpu")`` reproduces exactly that rule.
"""

from __future__ import annotations

from repro.algorithms._ops import ElementOp
from repro.errors import ConfigurationError
from repro.types import ElemType, FLOAT64

import numpy as np

__all__ = [
    "listing1_kernel",
    "gpu_loop_elided",
    "KERNEL_BASE_INSTR",
    "KERNEL_INSTR_PER_ITER",
    "NVC_GPU_DOUBLE_ELISION_LIMIT",
]

#: Volatile store/load, zero-init, loop setup, final store.
KERNEL_BASE_INSTR = 6.0
#: Increment + compare + branch per loop iteration.
KERNEL_INSTR_PER_ITER = 3.0
#: The compiler's "magic number" for double loops on the GPU target.
NVC_GPU_DOUBLE_ELISION_LIMIT = 65001


def gpu_loop_elided(k_it: int, elem: ElemType) -> bool:
    """Whether nvc++ optimises the Listing-1 loop away on the GPU target."""
    if elem.name == "int" or elem.name == "int64_t":
        return True
    if elem.name == "double":
        return k_it < NVC_GPU_DOUBLE_ELISION_LIMIT
    if elem.name == "float":
        return False
    raise ConfigurationError(f"unknown element type {elem.name!r}")


def listing1_kernel(
    k_it: int, elem: ElemType = FLOAT64, target: str = "cpu"
) -> ElementOp:
    """Build the Listing-1 kernel as an :class:`ElementOp`.

    ``target`` is ``"cpu"`` or ``"gpu"``; the GPU target applies the
    volatile-elision rule above. The functional result is unchanged by
    elision (the loop computes ``k_it`` either way) -- only the cost drops.
    """
    if k_it < 0:
        raise ConfigurationError(f"k_it must be non-negative, got {k_it}")
    if target not in ("cpu", "gpu"):
        raise ConfigurationError(f"target must be 'cpu' or 'gpu', got {target!r}")

    effective_k = k_it
    if target == "gpu" and gpu_loop_elided(k_it, elem):
        effective_k = 0

    instr = KERNEL_BASE_INSTR + KERNEL_INSTR_PER_ITER * effective_k
    if elem.is_float:
        fp = float(effective_k)
    else:
        # Integer increments are plain ALU instructions, not FP events.
        instr += float(effective_k)
        fp = 0.0

    def apply(values: np.ndarray) -> np.ndarray:
        return np.full_like(values, k_it)

    return ElementOp(
        name=f"listing1(k_it={k_it},{elem.name},{target})",
        instr_per_elem=instr,
        fp_per_elem=fp,
        apply=apply,
    )
