"""Benchmark wrappers: Listing 3's ``wrapper`` function, reproduced.

``make_bench_fn`` closes a case + context + size into a harness-ready
function: untimed setup, a min-time measurement loop, WRAP_TIMING around
each invocation (time + counters recorded together), and
``SetBytesProcessed`` for throughput -- matching the C++ suite line for
line. Because the simulation is deterministic, after ``real_iterations``
distinct invocations the remaining iterations up to min-time are
batch-recorded (see ``BenchState.record_report``).
"""

from __future__ import annotations

import math

from repro.bench.state import BenchResult, BenchState
from repro.counters.likwid import LikwidMarkers
from repro.errors import ConfigurationError
from repro.execution.context import ExecutionContext
from repro.suite.cases import BenchCase
from repro.trace.core import get_tracer
from repro.types import ElemType, FLOAT64

__all__ = ["make_bench_fn", "run_case", "measure_case"]

#: Distinct real invocations before batch extrapolation kicks in.
DEFAULT_REAL_ITERATIONS = 3


def make_bench_fn(
    case: BenchCase,
    ctx: ExecutionContext,
    n: int,
    elem: ElemType = FLOAT64,
    markers: LikwidMarkers | None = None,
    real_iterations: int = DEFAULT_REAL_ITERATIONS,
):
    """Build a ``BenchState -> None`` function for the harness."""
    if n <= 0:
        raise ConfigurationError("n must be positive")
    if real_iterations < 1:
        raise ConfigurationError("real_iterations must be >= 1")

    def bench(state: BenchState) -> None:
        tracer = get_tracer()
        # Untimed setup = the warmup the harness excludes from measurement
        # (zero simulated duration: allocation/generation is not costed).
        with tracer.span("warmup", category="bench"):
            arrays = case.setup(ctx, n, elem)
        measure = tracer.begin("measure", category="bench") if tracer.enabled else None
        iteration = 0
        last = None
        try:
            while state.keep_running():
                case.per_iteration_setup(ctx, arrays, iteration)
                result = case.invoke(ctx, arrays, iteration)
                if markers is not None:
                    with markers.region(case.name) as region:
                        region.record(result.report)
                if iteration + 1 >= real_iterations and result.seconds > 0:
                    # Deterministic tail: batch the remaining min-time budget.
                    remaining = max(0.0, state.min_time - state.accumulated_time)
                    repeat = 1 + min(
                        state.max_iterations - state.iterations - 1,
                        int(math.ceil(remaining / result.seconds)),
                    )
                    state.record_report(result.report, repeat=max(1, repeat))
                else:
                    state.record_report(result.report)
                iteration += 1
                last = result
        finally:
            if measure is not None:
                measure.set_attribute("real_invocations", iteration)
                measure.set_attribute("iterations", state.iterations)
                tracer.end()
        del last
        state.set_bytes_processed(state.iterations * n * elem.size)
        state.set_items_processed(state.iterations * n)

    return bench


def run_case(
    case: BenchCase,
    ctx: ExecutionContext,
    n: int,
    elem: ElemType = FLOAT64,
    min_time: float = 5.0,
    markers: LikwidMarkers | None = None,
) -> BenchResult:
    """Run one case through the harness and return its result row."""
    state = BenchState(ranges=(n,), min_time=max(min_time, 1e-12))
    make_bench_fn(case, ctx, n, elem, markers=markers)(state)
    label = f"{case.name}<{ctx.backend.name}>/{n}"
    return state.finish(label)


def measure_case(
    case: BenchCase,
    ctx: ExecutionContext,
    n: int,
    elem: ElemType = FLOAT64,
) -> float:
    """Mean simulated seconds of one invocation (the figures' y-axis).

    A single-invocation shortcut: the simulator is deterministic, so the
    mean over a min-time loop equals one invocation's time. Cases whose
    iterations differ (find's random target) still use their model-mode
    expectation here, matching how the figures average.
    """
    result = run_case(case, ctx, n, elem, min_time=0.0)
    return result.mean_time
