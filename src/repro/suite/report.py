"""Full-suite runner: execute every supported case and render one report.

This is the equivalent of running the C++ pSTL-Bench binary end to end on
one (machine, backend) pair: all registered cases at a chosen size, with
times, throughput and instruction counts, plus a comparison column
against the sequential baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.state import BenchResult
from repro.errors import UnsupportedOperationError
from repro.execution.context import ExecutionContext
from repro.suite.cases import case_names, get_case
from repro.suite.wrappers import run_case
from repro.types import ElemType, FLOAT64
from repro.util.tables import TextTable
from repro.util.units import format_bytes, format_count, format_seconds

__all__ = ["SuiteReport", "run_suite"]


@dataclass(frozen=True)
class SuiteReport:
    """Results of one full-suite run."""

    machine: str
    backend: str
    n: int
    results: dict[str, BenchResult]
    baselines: dict[str, BenchResult]
    unsupported: tuple[str, ...]

    def speedup(self, case: str) -> float | None:
        """Speedup vs the sequential baseline (None for N/A cases)."""
        if case in self.unsupported:
            return None
        return self.baselines[case].mean_time / self.results[case].mean_time

    def render(self) -> str:
        """One aligned table over the whole suite."""
        table = TextTable(
            headers=[
                "Case",
                "Time",
                "Throughput",
                "Instructions",
                "Speedup vs seq",
            ],
            title=(
                f"pSTL-Bench full suite: {self.backend} on Mach "
                f"{self.machine}, n={self.n}"
            ),
        )
        for case in sorted(self.results):
            r = self.results[case]
            table.add_row(
                [
                    case,
                    format_seconds(r.mean_time),
                    f"{format_bytes(r.bytes_per_second)}/s",
                    format_count(r.counters.instructions),
                    f"{self.speedup(case):.1f}x",
                ]
            )
        for case in self.unsupported:
            table.add_row([case, "N/A", "N/A", "N/A", "N/A"])
        return table.render()


def run_suite(
    ctx: ExecutionContext,
    seq_ctx: ExecutionContext,
    n: int,
    elem: ElemType = FLOAT64,
    min_time: float = 1.0,
    cases: list[str] | None = None,
) -> SuiteReport:
    """Run every case on ``ctx``, with ``seq_ctx`` as the baseline."""
    names = cases if cases is not None else case_names()
    results: dict[str, BenchResult] = {}
    baselines: dict[str, BenchResult] = {}
    unsupported: list[str] = []
    for name in names:
        case = get_case(name)
        try:
            results[name] = run_case(case, ctx, n, elem, min_time=min_time)
            baselines[name] = run_case(case, seq_ctx, n, elem, min_time=min_time)
        except UnsupportedOperationError:
            results.pop(name, None)
            unsupported.append(name)
    return SuiteReport(
        machine=ctx.machine.name.replace("Mach ", ""),
        backend=ctx.backend.name,
        n=n,
        results=results,
        baselines=baselines,
        unsupported=tuple(unsupported),
    )
