"""Parameter sweeps: the paper's problem-size and thread grids (Section 4.2).

Problem sizes run 2^3..2^30 and thread counts 1, 2, 4, ..., #cores; these
helpers generate those grids and run a case across them, producing the
(x, y) series the figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, UnsupportedOperationError
from repro.execution.context import ExecutionContext
from repro.suite.cases import BenchCase
from repro.suite.wrappers import measure_case
from repro.types import ElemType, FLOAT64

__all__ = [
    "SweepPoint",
    "SweepResult",
    "problem_sizes",
    "thread_counts",
    "problem_scaling",
    "strong_scaling",
]

#: The paper's sweep bounds (Section 4.2).
MIN_SIZE_EXP = 3
MAX_SIZE_EXP = 30


def problem_sizes(
    min_exp: int = MIN_SIZE_EXP, max_exp: int = MAX_SIZE_EXP, step: int = 1
) -> list[int]:
    """Power-of-two sizes 2^min_exp .. 2^max_exp."""
    if not 0 <= min_exp <= max_exp:
        raise ConfigurationError("need 0 <= min_exp <= max_exp")
    if step < 1:
        raise ConfigurationError("step must be >= 1")
    return [1 << e for e in range(min_exp, max_exp + 1, step)]


def thread_counts(max_threads: int) -> list[int]:
    """1, 2, 4, ..., max_threads (always including the max)."""
    if max_threads < 1:
        raise ConfigurationError("max_threads must be >= 1")
    counts = []
    t = 1
    while t < max_threads:
        counts.append(t)
        t *= 2
    counts.append(max_threads)
    return counts


@dataclass(frozen=True)
class SweepPoint:
    """One measured point of a sweep."""

    x: int
    seconds: float
    supported: bool = True


@dataclass(frozen=True)
class SweepResult:
    """A labelled series of sweep points."""

    label: str
    variable: str  # "size" or "threads"
    points: tuple[SweepPoint, ...]

    def xs(self) -> list[int]:
        """Supported x values."""
        return [p.x for p in self.points if p.supported]

    def ys(self) -> list[float]:
        """Times at the supported x values."""
        return [p.seconds for p in self.points if p.supported]


def problem_scaling(
    case: BenchCase,
    ctx: ExecutionContext,
    sizes: list[int] | None = None,
    elem: ElemType = FLOAT64,
    batch: bool | None = None,
) -> SweepResult:
    """Time vs problem size at fixed thread count (Figs 2, 4a, 5a, 6a).

    ``batch`` selects the evaluation path: ``None`` (auto) uses the
    vectorized ``repro.sim.batch`` path when the case supports it and
    tracing is off, ``True`` requests it explicitly, ``False`` forces the
    scalar per-point path (the ``--no-batch`` debugging escape hatch).
    Both paths produce bit-identical seconds.
    """
    from repro.suite.batch import batch_problem_scaling, use_batch_path

    sizes = sizes if sizes is not None else problem_sizes()
    points = []
    if use_batch_path(batch, case.name, ctx):
        points = [
            SweepPoint(x=x, seconds=seconds, supported=supported)
            for x, seconds, supported in batch_problem_scaling(
                case.name, ctx, sizes, elem
            )
        ]
    else:
        for n in sizes:
            try:
                points.append(
                    SweepPoint(x=n, seconds=measure_case(case, ctx, n, elem))
                )
            except UnsupportedOperationError:
                points.append(SweepPoint(x=n, seconds=float("nan"), supported=False))
    return SweepResult(
        label=f"{case.name}<{ctx.backend.name}>@{ctx.threads}t",
        variable="size",
        points=tuple(points),
    )


def strong_scaling(
    case: BenchCase,
    ctx: ExecutionContext,
    n: int,
    threads: list[int] | None = None,
    elem: ElemType = FLOAT64,
    batch: bool | None = None,
) -> SweepResult:
    """Time vs thread count at fixed size (Figs 3, 4b, 5b, 6b, 7b).

    ``batch`` selects the scalar/vectorized evaluation path exactly as in
    :func:`problem_scaling`.
    """
    from repro.suite.batch import batch_strong_scaling, use_batch_path

    if ctx.is_gpu:
        raise ConfigurationError("strong scaling sweeps are CPU experiments")
    threads = threads if threads is not None else thread_counts(ctx.machine.total_cores)
    points = []
    if use_batch_path(batch, case.name, ctx):
        points = [
            SweepPoint(x=x, seconds=seconds, supported=supported)
            for x, seconds, supported in batch_strong_scaling(
                case.name, ctx, n, threads, elem
            )
        ]
    else:
        for t in threads:
            sub = ctx.with_(threads=t)
            try:
                points.append(SweepPoint(x=t, seconds=measure_case(case, sub, n, elem)))
            except UnsupportedOperationError:
                points.append(SweepPoint(x=t, seconds=float("nan"), supported=False))
    return SweepResult(
        label=f"{case.name}<{ctx.backend.name}>/n={n}",
        variable="threads",
        points=tuple(points),
    )
