"""pSTL-Bench proper: kernels, generators, cases, wrappers, sweeps, CLI."""

from repro.suite.cases import HEADLINE_CASES, BenchCase, case_names, get_case
from repro.suite.generators import (
    generate_increment,
    random_target,
    reshuffle,
    shuffled_permutation,
)
from repro.suite.kernels import gpu_loop_elided, listing1_kernel
from repro.suite.sweeps import (
    SweepPoint,
    SweepResult,
    problem_scaling,
    problem_sizes,
    strong_scaling,
    thread_counts,
)
from repro.suite.report import SuiteReport, run_suite
from repro.suite.wrappers import make_bench_fn, measure_case, run_case

__all__ = [
    "HEADLINE_CASES",
    "BenchCase",
    "case_names",
    "get_case",
    "generate_increment",
    "random_target",
    "reshuffle",
    "shuffled_permutation",
    "gpu_loop_elided",
    "listing1_kernel",
    "SweepPoint",
    "SweepResult",
    "problem_scaling",
    "problem_sizes",
    "strong_scaling",
    "thread_counts",
    "make_bench_fn",
    "measure_case",
    "run_case",
    "SuiteReport",
    "run_suite",
]
