"""Benchmark case definitions: the suite's supported algorithms.

A :class:`BenchCase` knows how to generate its input (untimed, like
Listing 3's setup) and how to run one timed invocation. The headline five
cases of the paper (find, for_each, reduce, inclusive_scan, sort) plus an
extended set covering the other gray algorithms of Table 1 that this
reproduction supports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.algorithms import (
    PLUS,
    SQUARE,
    adjacent_difference,
    copy,
    count,
    equal,
    exclusive_scan,
    fill,
    find,
    for_each,
    inclusive_scan,
    inplace_merge,
    is_heap,
    is_partitioned,
    less_than,
    max_element,
    merge,
    min_element,
    minmax_element,
    nth_element,
    partial_sort,
    reduce,
    remove,
    replace,
    reverse,
    rotate,
    search,
    set_intersection,
    set_union,
    sort,
    stable_partition,
    stable_sort,
    transform,
    transform_reduce,
    unique,
)
from repro.algorithms._result import AlgoResult
from repro.errors import ConfigurationError
from repro.execution.context import ExecutionContext
from repro.memory.array import SimArray
from repro.suite.generators import (
    generate_increment,
    random_target,
    reshuffle,
    shuffled_permutation,
)
from repro.suite.kernels import listing1_kernel
from repro.types import ElemType, FLOAT64

__all__ = ["BenchCase", "get_case", "case_names", "HEADLINE_CASES"]


@dataclass(frozen=True)
class BenchCase:
    """One benchmark case: input setup + one timed invocation.

    ``setup`` returns the input arrays; ``invoke`` runs one iteration (the
    WRAP_TIMING body) and returns the :class:`AlgoResult` whose report the
    harness records. ``per_iteration_setup`` mirrors untimed per-iteration
    work such as sort's re-shuffle.
    """

    name: str
    alg: str
    setup: Callable[[ExecutionContext, int, ElemType], tuple[SimArray, ...]]
    invoke: Callable[
        [ExecutionContext, tuple[SimArray, ...], int], AlgoResult
    ]
    per_iteration_setup: Callable[
        [ExecutionContext, tuple[SimArray, ...], int], None
    ] = field(default=lambda ctx, arrays, it: None)
    elem: ElemType = FLOAT64


def _single_increment(ctx, n, elem):
    return (generate_increment(ctx, n, elem),)


def _case_for_each(k_it: int) -> BenchCase:
    def invoke(ctx, arrays, iteration):
        target = "gpu" if ctx.is_gpu else "cpu"
        kernel = listing1_kernel(k_it, arrays[0].elem, target=target)
        return for_each(ctx, arrays[0], kernel)

    return BenchCase(
        name=f"for_each_k{k_it}",
        alg="for_each",
        setup=_single_increment,
        invoke=invoke,
    )


def _case_find() -> BenchCase:
    def invoke(ctx, arrays, iteration):
        target = random_target(ctx, arrays[0], iteration)
        return find(ctx, arrays[0], target, expected_position=arrays[0].n // 2)

    return BenchCase(name="find", alg="find", setup=_single_increment, invoke=invoke)


def _case_reduce() -> BenchCase:
    return BenchCase(
        name="reduce",
        alg="reduce",
        setup=_single_increment,
        invoke=lambda ctx, arrays, it: reduce(ctx, arrays[0], PLUS),
    )


def _case_inclusive_scan() -> BenchCase:
    def setup(ctx, n, elem):
        return (generate_increment(ctx, n, elem), ctx.allocate(n, elem))

    return BenchCase(
        name="inclusive_scan",
        alg="inclusive_scan",
        setup=setup,
        invoke=lambda ctx, arrays, it: inclusive_scan(ctx, arrays[0], out=arrays[1]),
    )


def _case_sort(stable: bool = False) -> BenchCase:
    fn = stable_sort if stable else sort

    def setup(ctx, n, elem):
        return (shuffled_permutation(ctx, n, elem),)

    return BenchCase(
        name="stable_sort" if stable else "sort",
        alg="sort",
        setup=setup,
        invoke=lambda ctx, arrays, it: fn(ctx, arrays[0]),
        per_iteration_setup=lambda ctx, arrays, it: reshuffle(ctx, arrays[0], it),
    )


def _dual_setup(ctx, n, elem):
    return (generate_increment(ctx, n, elem), ctx.allocate(n, elem))


def _merge_setup(ctx, n, elem):
    half = max(1, n // 2)
    a = generate_increment(ctx, half, elem)
    b = generate_increment(ctx, half, elem)
    out = ctx.allocate(2 * half, elem)
    return (a, b, out)


_CASE_FACTORIES: dict[str, Callable[[], BenchCase]] = {
    "for_each_k1": lambda: _case_for_each(1),
    "for_each_k1000": lambda: _case_for_each(1000),
    "find": _case_find,
    "reduce": _case_reduce,
    "inclusive_scan": _case_inclusive_scan,
    "sort": _case_sort,
    "stable_sort": lambda: _case_sort(stable=True),
    "exclusive_scan": lambda: BenchCase(
        name="exclusive_scan",
        alg="exclusive_scan",
        setup=_dual_setup,
        invoke=lambda ctx, arrays, it: exclusive_scan(ctx, arrays[0], out=arrays[1]),
    ),
    "transform_reduce": lambda: BenchCase(
        name="transform_reduce",
        alg="transform_reduce",
        setup=_single_increment,
        invoke=lambda ctx, arrays, it: transform_reduce(ctx, arrays[0], SQUARE, PLUS),
    ),
    "transform": lambda: BenchCase(
        name="transform",
        alg="transform",
        setup=_dual_setup,
        invoke=lambda ctx, arrays, it: transform(ctx, arrays[0], arrays[1], SQUARE),
    ),
    "copy": lambda: BenchCase(
        name="copy",
        alg="copy",
        setup=_dual_setup,
        invoke=lambda ctx, arrays, it: copy(ctx, arrays[0], arrays[1]),
    ),
    "fill": lambda: BenchCase(
        name="fill",
        alg="fill",
        setup=_single_increment,
        invoke=lambda ctx, arrays, it: fill(ctx, arrays[0], 42.0),
    ),
    "count": lambda: BenchCase(
        name="count",
        alg="count",
        setup=_single_increment,
        invoke=lambda ctx, arrays, it: count(ctx, arrays[0], 1.0),
    ),
    "min_element": lambda: BenchCase(
        name="min_element",
        alg="reduce",
        setup=_single_increment,
        invoke=lambda ctx, arrays, it: min_element(ctx, arrays[0]),
    ),
    "max_element": lambda: BenchCase(
        name="max_element",
        alg="reduce",
        setup=_single_increment,
        invoke=lambda ctx, arrays, it: max_element(ctx, arrays[0]),
    ),
    "minmax_element": lambda: BenchCase(
        name="minmax_element",
        alg="reduce",
        setup=_single_increment,
        invoke=lambda ctx, arrays, it: minmax_element(ctx, arrays[0]),
    ),
    "adjacent_difference": lambda: BenchCase(
        name="adjacent_difference",
        alg="transform",
        setup=_dual_setup,
        invoke=lambda ctx, arrays, it: adjacent_difference(ctx, arrays[0], arrays[1]),
    ),
    "reverse": lambda: BenchCase(
        name="reverse",
        alg="transform",
        setup=_single_increment,
        invoke=lambda ctx, arrays, it: reverse(ctx, arrays[0]),
    ),
    "equal": lambda: BenchCase(
        name="equal",
        alg="find",
        setup=lambda ctx, n, elem: (
            generate_increment(ctx, n, elem),
            generate_increment(ctx, n, elem),
        ),
        invoke=lambda ctx, arrays, it: equal(ctx, arrays[0], arrays[1]),
    ),
    "merge": lambda: BenchCase(
        name="merge",
        alg="merge",
        setup=_merge_setup,
        invoke=lambda ctx, arrays, it: merge(ctx, arrays[0], arrays[1], arrays[2]),
    ),
    # --- extended coverage of Table 1's gray set --------------------------------
    "search": lambda: BenchCase(
        name="search",
        alg="find",
        setup=_single_increment,
        invoke=lambda ctx, arrays, it: search(
            ctx, arrays[0], [float(arrays[0].n), float(arrays[0].n) + 1]
        ),
    ),
    "set_union": lambda: BenchCase(
        name="set_union",
        alg="merge",
        setup=_merge_setup,
        invoke=lambda ctx, arrays, it: set_union(ctx, arrays[0], arrays[1], arrays[2]),
    ),
    "set_intersection": lambda: BenchCase(
        name="set_intersection",
        alg="merge",
        setup=_merge_setup,
        invoke=lambda ctx, arrays, it: set_intersection(
            ctx, arrays[0], arrays[1], arrays[2]
        ),
    ),
    "stable_partition": lambda: BenchCase(
        name="stable_partition",
        alg="inclusive_scan",
        setup=_single_increment,
        invoke=lambda ctx, arrays, it: stable_partition(
            ctx, arrays[0], less_than(arrays[0].n / 2)
        ),
    ),
    "is_partitioned": lambda: BenchCase(
        name="is_partitioned",
        alg="find",
        setup=_single_increment,
        invoke=lambda ctx, arrays, it: is_partitioned(
            ctx, arrays[0], less_than(arrays[0].n / 2)
        ),
    ),
    "nth_element": lambda: BenchCase(
        name="nth_element",
        alg="sort",
        setup=lambda ctx, n, elem: (shuffled_permutation(ctx, n, elem),),
        invoke=lambda ctx, arrays, it: nth_element(ctx, arrays[0], arrays[0].n // 2),
        per_iteration_setup=lambda ctx, arrays, it: reshuffle(ctx, arrays[0], it),
    ),
    "partial_sort": lambda: BenchCase(
        name="partial_sort",
        alg="sort",
        setup=lambda ctx, n, elem: (shuffled_permutation(ctx, n, elem),),
        invoke=lambda ctx, arrays, it: partial_sort(
            ctx, arrays[0], max(1, arrays[0].n // 16)
        ),
        per_iteration_setup=lambda ctx, arrays, it: reshuffle(ctx, arrays[0], it),
    ),
    "inplace_merge": lambda: BenchCase(
        name="inplace_merge",
        alg="merge",
        setup=_single_increment,
        invoke=lambda ctx, arrays, it: inplace_merge(
            ctx, arrays[0], max(1, arrays[0].n // 2)
        ),
    ),
    "unique": lambda: BenchCase(
        name="unique",
        alg="inclusive_scan",
        setup=_single_increment,
        invoke=lambda ctx, arrays, it: unique(ctx, arrays[0]),
    ),
    "remove": lambda: BenchCase(
        name="remove",
        alg="inclusive_scan",
        setup=_single_increment,
        invoke=lambda ctx, arrays, it: remove(ctx, arrays[0], 1.0),
    ),
    "replace": lambda: BenchCase(
        name="replace",
        alg="transform",
        setup=_single_increment,
        invoke=lambda ctx, arrays, it: replace(ctx, arrays[0], 1.0, 0.0),
    ),
    "rotate": lambda: BenchCase(
        name="rotate",
        alg="transform",
        setup=_single_increment,
        invoke=lambda ctx, arrays, it: rotate(ctx, arrays[0], arrays[0].n // 3),
    ),
    "is_heap": lambda: BenchCase(
        name="is_heap",
        alg="find",
        setup=lambda ctx, n, elem: (
            # decreasing values form a valid max-heap: full-scan check
            _reversed_increment(ctx, n, elem),
        ),
        invoke=lambda ctx, arrays, it: is_heap(ctx, arrays[0]),
    ),
}


def _reversed_increment(ctx, n, elem):
    arr = generate_increment(ctx, n, elem)
    if arr.materialized:
        arr.view()[:] = arr.view()[::-1].copy()
    return arr

#: The five algorithms the paper analyses in depth (Section 3.1), with
#: for_each at both arithmetic intensities.
HEADLINE_CASES = (
    "find",
    "for_each_k1",
    "for_each_k1000",
    "inclusive_scan",
    "reduce",
    "sort",
)


def get_case(name: str) -> BenchCase:
    """Look up a benchmark case by name."""
    try:
        return _CASE_FACTORIES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown case {name!r}; known: {case_names()}"
        ) from None


def case_names() -> list[str]:
    """All case names, sorted."""
    return sorted(_CASE_FACTORIES)
