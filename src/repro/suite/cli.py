"""``pstl-bench`` command-line entry point.

Examples::

    pstl-bench --machine A --backend gcc-tbb --case reduce --threads 32
    pstl-bench --machine C --backend all --case sort --size 2^30
    pstl-bench --machine B --backend gcc-gnu --case for_each_k1 --sweep sizes
    pstl-bench --machine A --backend gcc-tbb --case for_each_k1 --trace out.json
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext

from repro.backends import PARALLEL_CPU_BACKENDS, get_backend
from repro.bench.reporters import console_report, csv_report, json_report
from repro.bench.state import BenchResult
from repro.errors import ReproError, UnsupportedOperationError
from repro.execution.context import ExecutionContext
from repro.machines import get_machine
from repro.suite.cases import case_names, get_case
from repro.suite.sweeps import problem_scaling, problem_sizes, strong_scaling
from repro.suite.wrappers import run_case
from repro.trace import Tracer, use_tracer, write_chrome_trace
from repro.types import elem_type
from repro.util.units import parse_size

__all__ = ["main", "build_parser", "sweep_bench_rows", "EXIT_ALL_NA"]

#: Exit code for "every requested backend was N/A" -- distinct from 0
#: (measured something) and 2 (bad invocation), so scripts driving
#: ``--backend all`` can tell an empty grid cell from success.
EXIT_ALL_NA = 3


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="pstl-bench",
        description="pSTL-Bench (Python reproduction): parallel STL scalability "
        "micro-benchmarks on a deterministic machine simulator.",
    )
    parser.add_argument("--machine", default="A", help="machine preset (A..E, skylake, zen3...)")
    parser.add_argument(
        "--backend",
        default="gcc-tbb",
        help="backend name, or 'all' for the study's five parallel backends",
    )
    parser.add_argument(
        "--case", default="reduce", help=f"benchmark case; one of {', '.join(case_names())}"
    )
    parser.add_argument("--threads", type=int, default=0, help="0 = all cores")
    parser.add_argument("--size", default="2^26", help="problem size (2^k or integer)")
    parser.add_argument("--dtype", default="double", help="element type (double/float/int)")
    parser.add_argument("--min-time", type=float, default=5.0, help="min simulated seconds")
    parser.add_argument(
        "--sweep",
        choices=["none", "sizes", "threads"],
        default="none",
        help="sweep problem sizes or thread counts instead of a single point",
    )
    parser.add_argument("--mode", choices=["model", "run"], default="model")
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="force the scalar per-point sweep path instead of the "
        "vectorized repro.sim.batch path (bit-identical results; "
        "debugging aid)",
    )
    parser.add_argument("--format", choices=["console", "csv", "json"], default="console")
    parser.add_argument(
        "--trace",
        metavar="OUT.json",
        default=None,
        help="capture an execution trace and write it as Chrome trace-event "
        "JSON (open in Perfetto or chrome://tracing; see docs/OBSERVABILITY.md)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI main; returns a process exit code."""
    args = build_parser().parse_args(argv)
    tracer = Tracer() if args.trace else None
    try:
        with use_tracer(tracer) if tracer is not None else nullcontext():
            code = _run(args)
        if tracer is not None and code == 0:
            try:
                n_spans = write_chrome_trace(tracer, args.trace)
            except OSError as exc:
                print(f"error: cannot write trace: {exc}", file=sys.stderr)
                return 2
            print(f"trace: {n_spans} spans -> {args.trace}", file=sys.stderr)
        return code
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def sweep_bench_rows(sweep, variable: str) -> list[BenchResult]:
    """A sweep's supported points as reporter-ready rows.

    Each point becomes one single-iteration row named
    ``<sweep label>/<variable>=<x>`` so ``--sweep`` output flows through
    the same csv/json reporters as single-point runs.
    """
    return [
        BenchResult(
            name=f"{sweep.label}/{variable}={point.x}",
            iterations=1,
            total_time=point.seconds,
            mean_time=point.seconds,
        )
        for point in sweep.points
        if point.supported
    ]


def _run(args: argparse.Namespace) -> int:
    """Execute one parsed CLI invocation (tracing already installed)."""
    machine = get_machine(args.machine)
    backends = (
        list(PARALLEL_CPU_BACKENDS) if args.backend == "all" else [args.backend]
    )
    case = get_case(args.case)
    elem = elem_type(args.dtype)
    n = parse_size(args.size)

    results = []
    measured = 0  # backends that produced at least one value
    unavailable: list[str] = []  # backends whose every point was N/A
    for backend_name in backends:
        backend = get_backend(backend_name)
        threads = args.threads or machine.total_cores
        ctx = ExecutionContext(
            machine, backend, threads=threads, mode=args.mode
        )
        if args.sweep != "none":
            batch = False if args.no_batch else None
            if args.sweep == "sizes":
                sweep = problem_scaling(case, ctx, problem_sizes(), elem, batch=batch)
                variable = "n"
            else:
                sweep = strong_scaling(case, ctx, n, elem=elem, batch=batch)
                variable = "t"
            if not any(point.supported for point in sweep.points):
                unavailable.append(backend.name)
                print(f"{backend.name}: N/A (no supported points in "
                      f"{args.sweep} sweep)", file=sys.stderr)
                continue
            measured += 1
            if args.format == "console":
                for point in sweep.points:
                    print(
                        f"{sweep.label} {variable}={point.x}: "
                        + (f"{point.seconds:.6g} s" if point.supported else "N/A")
                    )
            else:
                results.extend(sweep_bench_rows(sweep, variable))
            continue
        try:
            results.append(run_case(case, ctx, n, elem, min_time=args.min_time))
            measured += 1
        except UnsupportedOperationError as exc:
            unavailable.append(backend.name)
            print(f"{backend.name}: N/A ({exc})", file=sys.stderr)

    if results:
        if args.format == "csv":
            print(csv_report(results), end="")
        elif args.format == "json":
            print(json_report(results))
        else:
            print(console_report(results))
    if measured == 0 and unavailable:
        print(
            f"error: no data: all requested backends are N/A for "
            f"{case.name!r} on machine {machine.name!r} "
            f"({', '.join(unavailable)})",
            file=sys.stderr,
        )
        return EXIT_ALL_NA
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
